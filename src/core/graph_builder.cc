// Copyright 2026 The gkmeans Authors.

#include "core/graph_builder.h"

#include <algorithm>

#include "common/distance.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/gk_means.h"

namespace gkm {

KnnGraph BuildKnnGraph(const Matrix& data, const GraphBuildParams& params,
                       GraphBuildStats* stats, const RoundObserver& observer) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK(params.kappa > 0);
  GKM_CHECK(params.xi >= 2);
  GKM_CHECK_MSG(n > params.kappa, "need more points than graph degree");

  Rng rng(params.seed);
  Timer total;
  KnnGraph graph(n, params.kappa);
  graph.InitRandom(data, rng);

  // k0 = floor(n / xi) clusters of expected size xi (Alg. 3 line 5); the 2M
  // tree keeps actual sizes within +/- a few of xi.
  const std::size_t k0 = std::max<std::size_t>(2, n / params.xi);

  std::vector<std::vector<std::uint32_t>> clusters(k0);
  for (std::size_t t = 0; t < params.tau; ++t) {
    // (i) Cluster with the fast k-means itself, guided by the current graph
    // (Alg. 3 line 7). Fresh seed per round so successive 2M-trees explore
    // different partitions — that diversity is what keeps recall climbing.
    GkMeansParams inner;
    inner.k = k0;
    inner.kappa = params.kappa;
    inner.max_iters = params.inner_epochs;
    inner.bisect_epochs = params.bisect_epochs;
    inner.seed = rng.Next();
    const ClusteringResult round = GkMeansWithGraph(data, graph, inner);

    // (ii) Exhaustive comparison inside every cluster (Alg. 3 lines 8-14).
    // Members' rows are first gathered into a contiguous scratch matrix:
    // each row participates in ~xi comparisons, so paying one copy per row
    // keeps the quadratic pair loop inside L1/L2 instead of striding
    // through the full dataset (a large win at high dimensionality).
    for (auto& c : clusters) c.clear();
    for (std::size_t i = 0; i < n; ++i) {
      clusters[round.assignments[i]].push_back(static_cast<std::uint32_t>(i));
    }
    Matrix scratch;
    std::size_t updates = 0;
    for (const auto& members : clusters) {
      const std::size_t m = members.size();
      if (m < 2) continue;
      scratch.Reset(m, d);
      for (std::size_t a = 0; a < m; ++a) {
        scratch.SetRow(a, data.Row(members[a]));
      }
      for (std::size_t a = 0; a < m; ++a) {
        const float* xa = scratch.Row(a);
        for (std::size_t b = a + 1; b < m; ++b) {
          const float dist = L2Sqr(xa, scratch.Row(b), d);
          updates += static_cast<std::size_t>(
              graph.UpdateBoth(members[a], members[b], dist));
        }
      }
    }

    if (stats != nullptr) {
      stats->round_distortion.push_back(round.distortion);
      stats->round_seconds.push_back(total.Seconds());
      stats->round_updates.push_back(updates);
    }
    if (observer) observer(t, graph);
    if (params.early_stop_delta > 0.0 &&
        static_cast<double>(updates) < params.early_stop_delta *
                                           static_cast<double>(n) *
                                           static_cast<double>(params.kappa)) {
      break;
    }
  }
  return graph;
}

}  // namespace gkm
