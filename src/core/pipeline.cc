// Copyright 2026 The gkmeans Authors.

#include "core/pipeline.h"

#include "common/macros.h"
#include "common/timer.h"

namespace gkm {

PipelineResult GkMeansCluster(const Matrix& data,
                              const PipelineParams& params) {
  PipelineResult out;
  Timer timer;
  out.graph = BuildKnnGraph(data, params.graph);
  out.graph_seconds = timer.Seconds();

  GkMeansParams clustering = params.clustering;
  clustering.k = params.k;
  out.clustering = GkMeansWithGraph(data, out.graph, clustering);
  // Fold the graph cost into the reported init/total so pipeline timings
  // match the paper's accounting (Tab. 2 counts graph build as Init.).
  out.clustering.init_seconds += out.graph_seconds;
  out.clustering.total_seconds += out.graph_seconds;
  for (IterStat& s : out.clustering.trace) {
    s.elapsed_seconds += out.graph_seconds;
  }
  return out;
}

}  // namespace gkm
