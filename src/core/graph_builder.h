// Copyright 2026 The gkmeans Authors.
// KNN-graph construction with fast k-means (Alg. 3) — the paper's secondary
// contribution and the default graph supplier for GK-means.
//
// Starting from a random graph, each of the τ rounds (i) partitions the
// data into k0 = ⌊n/ξ⌋ small clusters by calling the fast k-means itself
// (2M-tree init + one graph-guided BKM epoch, guided by the *current*
// graph), then (ii) exhaustively compares points inside every cluster and
// refreshes the KNN lists with any closer pairs found. Graph quality and
// partition quality improve alternately (Fig. 3); unlike NN-Descent the
// resulting graph carries the intermediate clustering structure, which is
// why it yields lower final clustering distortion at equal recall (Fig. 4).

#ifndef GKM_CORE_GRAPH_BUILDER_H_
#define GKM_CORE_GRAPH_BUILDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/matrix.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Options for Alg. 3. Paper defaults (§4.4): τ=10, ξ=50, κ=50.
struct GraphBuildParams {
  std::size_t kappa = 50;         ///< graph out-degree κ
  std::size_t xi = 50;            ///< target cluster size ξ (range [40,100])
  std::size_t tau = 10;           ///< evolution rounds τ (up to ~32 for ANNS)
  std::size_t inner_epochs = 1;   ///< graph-guided epochs per round (paper: 1)
  std::size_t bisect_epochs = 4;  ///< BKM-2 epochs inside each 2M-tree call
  /// Extension beyond the paper (which fixes τ): when > 0, construction
  /// stops as soon as a round changes fewer than early_stop_delta * n * κ
  /// list entries — the update-rate criterion NN-Descent uses. τ remains
  /// the hard cap.
  double early_stop_delta = 0.0;
  std::uint64_t seed = 42;
};

/// Per-round measurements (the series of Fig. 2).
struct GraphBuildStats {
  std::vector<double> round_distortion;  ///< E of the round's k0-clustering
  std::vector<double> round_seconds;     ///< cumulative wall-clock per round
  std::vector<std::size_t> round_updates;///< KNN-list entries changed per round
};

/// Observer invoked after every round with the evolving graph (used by the
/// Fig. 2 bench to track recall against a sampled ground truth).
using RoundObserver = std::function<void(std::size_t round, const KnnGraph&)>;

/// Builds an approximate KNN graph over `data` (Alg. 3).
KnnGraph BuildKnnGraph(const Matrix& data, const GraphBuildParams& params,
                       GraphBuildStats* stats = nullptr,
                       const RoundObserver& observer = {});

}  // namespace gkm

#endif  // GKM_CORE_GRAPH_BUILDER_H_
