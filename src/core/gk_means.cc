// Copyright 2026 The gkmeans Authors.

#include "core/gk_means.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/candidate_harvest.h"
#include "kmeans/cluster_state.h"

namespace gkm {

ClusteringResult GkMeansWithGraph(const Matrix& data, const KnnGraph& graph,
                                  const GkMeansParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);
  GKM_CHECK_MSG(graph.num_nodes() == n, "graph/data size mismatch");
  GKM_CHECK(params.kappa > 0);

  ClusteringResult res;
  res.method = params.traditional ? "gk-means-" : "gk-means";
  Rng rng(params.seed);

  Timer total;
  std::vector<std::uint32_t> labels;
  if (!params.init_labels.empty()) {
    GKM_CHECK(params.init_labels.size() == n);
    labels = params.init_labels;
  } else {
    TwoMeansParams tree;
    tree.k = k;
    tree.bisect_epochs = params.bisect_epochs;
    labels = TwoMeansTree(data, tree, rng);
  }
  // Flattened once per run — the graph is static during batch clustering.
  const std::size_t kappa = std::min(params.kappa, graph.k());
  const std::vector<std::uint32_t> flat = graph.FlattenNeighborIds(kappa);

  ClusterState state(data, labels, k);
  std::vector<float> norms(n);
  RowNormsSqr(data, norms.data());

  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> stamp(k, 0);
  std::uint32_t cur_stamp = 0;
  std::vector<std::uint32_t> cand;
  cand.reserve(kappa + 1);
  res.init_seconds = total.Seconds();

  Timer iter_timer;
  if (!params.traditional) {
    // --- BKM mode: incremental Delta-I moves over harvested candidates.
    // Arrival gains for the whole candidate set come from one batched
    // mixed-precision dot (GainArriveBatch), scanned in harvest order. ---
    std::vector<double> gains;
    gains.reserve(kappa + 1);
    for (std::size_t it = 0; it < params.max_iters; ++it) {
      rng.Shuffle(order);
      std::size_t moves = 0;
      for (const std::uint32_t i : order) {
        const std::uint32_t u = labels[i];
        if (state.CountOf(u) < 2) continue;
        ++cur_stamp;
        HarvestCandidates(flat.data() + static_cast<std::size_t>(i) * kappa,
                          kappa, labels, u, stamp, cur_stamp, cand);
        if (cand.empty()) continue;
        const float* x = data.Row(i);
        const float xn = norms[i];
        gains.resize(cand.size());
        state.GainArriveBatch(x, xn, cand.data(), cand.size(), gains.data());
        double best_gain = -std::numeric_limits<double>::max();
        std::uint32_t best_v = u;
        for (std::size_t ci = 0; ci < cand.size(); ++ci) {
          const double g = gains[ci];
          if (g > best_gain) {
            best_gain = g;
            best_v = cand[ci];
          }
        }
        if (best_v == u) continue;
        if (best_gain + state.GainLeave(x, xn, u) > 0.0) {
          state.Move(x, u, best_v);
          labels[i] = best_v;
          ++moves;
        }
      }
      res.trace.push_back(
          IterStat{it, state.Distortion(), total.Seconds(), moves});
      res.iterations = it + 1;
      if (moves == 0) break;
    }
  } else {
    // --- Traditional mode (GK-means⁻): nearest candidate centroid with
    // batch Lloyd updates. ---
    Matrix centroids = state.Centroids();
    std::vector<const float*> cand_rows;
    std::vector<float> cand_dist;
    for (std::size_t it = 0; it < params.max_iters; ++it) {
      std::size_t moves = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t u = labels[i];
        ++cur_stamp;
        // The current cluster always competes, so pass k (an impossible
        // label) as `skip` and seed the list with u.
        cand.clear();
        cand.push_back(u);
        stamp[u] = cur_stamp;
        HarvestCandidates(flat.data() + i * kappa, kappa, labels,
                          static_cast<std::uint32_t>(k), stamp, cur_stamp,
                          cand);
        // One gathered batch over the harvested candidate centroids.
        const float* x = data.Row(i);
        cand_rows.clear();
        for (const std::uint32_t v : cand) cand_rows.push_back(centroids.Row(v));
        cand_dist.resize(cand.size());
        L2SqrBatchGather(x, cand_rows.data(), cand.size(), d,
                         cand_dist.data());
        float best_dist = std::numeric_limits<float>::max();
        std::uint32_t best_v = u;
        for (std::size_t ci = 0; ci < cand.size(); ++ci) {
          if (cand_dist[ci] < best_dist) {
            best_dist = cand_dist[ci];
            best_v = cand[ci];
          }
        }
        if (best_v != u) {
          ++moves;
          labels[i] = best_v;
        }
      }
      state.Rebuild(data, labels);
      centroids = state.Centroids();
      res.trace.push_back(
          IterStat{it, state.Distortion(), total.Seconds(), moves});
      res.iterations = it + 1;
      if (moves == 0) break;
    }
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
