// Copyright 2026 The gkmeans Authors.
// GK-means (Alg. 2) — the paper's primary contribution. Boost k-means in
// which a sample is compared only against the clusters where its κ nearest
// graph neighbors currently reside, making the per-sample cost O(κ d)
// instead of O(k d) and the overall epoch cost independent of k.
//
// Two modes are provided, matching §4.2:
//   * BKM mode (default): candidates scored by the Delta-I move gain;
//     immediate (incremental) moves. The standard "GK-means" run.
//   * Traditional mode: candidates scored by centroid distance with batch
//     Lloyd updates. The "GK-means minus" run of the configuration test
//     (Fig. 4), kept for completeness and ablation.

#ifndef GKM_CORE_GK_MEANS_H_
#define GKM_CORE_GK_MEANS_H_

#include <cstdint>
#include <vector>

#include "graph/knn_graph.h"
#include "kmeans/two_means_tree.h"
#include "kmeans/types.h"

namespace gkm {

/// Options for GK-means proper (graph already available).
struct GkMeansParams {
  std::size_t k = 8;
  std::size_t kappa = 50;        ///< neighbors harvested per sample (κ, §4.4)
  std::size_t max_iters = 30;    ///< epochs; stops earlier on convergence
  bool traditional = false;      ///< true = GK-means⁻ (Lloyd-style updates)
  std::size_t bisect_epochs = 6; ///< BKM-2 epochs inside the 2M-tree init
  std::uint64_t seed = 42;
  /// When non-empty, skips the 2M-tree and starts from these labels
  /// (Alg. 3 uses this to chain rounds deterministically).
  std::vector<std::uint32_t> init_labels;
};

/// Runs Alg. 2 on `data` with candidate clusters harvested from `graph`.
/// `graph` must span exactly data.rows() nodes. The graph's out-degree may
/// exceed `kappa`; only the `kappa` closest neighbors are consulted.
ClusteringResult GkMeansWithGraph(const Matrix& data, const KnnGraph& graph,
                                  const GkMeansParams& params);

}  // namespace gkm

#endif  // GKM_CORE_GK_MEANS_H_
