// Copyright 2026 The gkmeans Authors.
// The candidate-cluster harvesting step shared by batch GK-means (Alg. 2)
// and the streaming subsystem's mini-batch epochs: collect the distinct
// cluster ids of a sample's graph neighbors. Deduplication uses an
// epoch-stamped array — O(kappa) with no clearing.

#ifndef GKM_CORE_CANDIDATE_HARVEST_H_
#define GKM_CORE_CANDIDATE_HARVEST_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace gkm {

/// Collects the distinct cluster ids of the neighbors in `nbrs[0..kappa)`
/// into `cand`, excluding `skip` (pass an impossible label, e.g. k, to keep
/// all). `nbrs` entries of UINT32_MAX terminate the scan (short lists).
/// `stamp`/`cur_stamp` implement the allocation-free dedup; the caller
/// increments `cur_stamp` before every call.
inline void HarvestCandidates(const std::uint32_t* nbrs, std::size_t kappa,
                              const std::vector<std::uint32_t>& labels,
                              std::uint32_t skip,
                              std::vector<std::uint32_t>& stamp,
                              std::uint32_t cur_stamp,
                              std::vector<std::uint32_t>& cand) {
  cand.clear();
  for (std::size_t j = 0; j < kappa; ++j) {
    const std::uint32_t nb = nbrs[j];
    if (nb == std::numeric_limits<std::uint32_t>::max()) break;
    const std::uint32_t c = labels[nb];
    if (c == skip || stamp[c] == cur_stamp) continue;
    stamp[c] = cur_stamp;
    cand.push_back(c);
  }
}

}  // namespace gkm

#endif  // GKM_CORE_CANDIDATE_HARVEST_H_
