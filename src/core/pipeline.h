// Copyright 2026 The gkmeans Authors.
// The end-to-end GK-means pipeline (§4, summary paragraph): first Alg. 3
// builds an approximate KNN graph by repeatedly calling the fast k-means on
// itself; then Alg. 2 runs the graph-supported clustering to the requested
// k. This is the "GK-means" line in every figure and table of §5, and the
// one-call public entry point for library users.

#ifndef GKM_CORE_PIPELINE_H_
#define GKM_CORE_PIPELINE_H_

#include "core/gk_means.h"
#include "core/graph_builder.h"
#include "kmeans/types.h"

namespace gkm {

/// Options for the full pipeline.
struct PipelineParams {
  std::size_t k = 8;           ///< final number of clusters
  GkMeansParams clustering;    ///< Alg. 2 options (k is overridden)
  GraphBuildParams graph;      ///< Alg. 3 options
};

/// Result of the full pipeline: the clustering plus the graph that powered
/// it (callers often reuse the graph, e.g. for ANN search — §4.3).
struct PipelineResult {
  ClusteringResult clustering;
  KnnGraph graph;
  double graph_seconds = 0.0;  ///< Alg. 3 wall-clock (part of init cost)
};

/// Runs graph construction followed by graph-supported clustering.
PipelineResult GkMeansCluster(const Matrix& data, const PipelineParams& params);

}  // namespace gkm

#endif  // GKM_CORE_PIPELINE_H_
