// Copyright 2026 The gkmeans Authors.
// Mini-Batch k-means (Sculley, WWW 2010 [20]): per step, a random batch is
// assigned to the nearest centroids, which then take a per-center
// learning-rate gradient step. The paper's "fast but high-distortion"
// baseline (Fig. 5–7): it may finish without ever touching some points.

#ifndef GKM_KMEANS_MINI_BATCH_H_
#define GKM_KMEANS_MINI_BATCH_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for MiniBatchKMeans.
struct MiniBatchParams {
  std::size_t k = 8;
  std::size_t batch_size = 1000;
  std::size_t max_iters = 30;        ///< number of batch steps
  std::size_t eval_every = 0;        ///< trace cadence; 0 = only at the end
  std::uint64_t seed = 42;
};

/// Runs Mini-Batch k-means. The trace's distortion entries are only
/// populated on the `eval_every` cadence (full-data evaluation costs
/// O(n k d), dwarfing a batch step); other entries carry distortion = -1.
ClusteringResult MiniBatchKMeans(const Matrix& data,
                                 const MiniBatchParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_MINI_BATCH_H_
