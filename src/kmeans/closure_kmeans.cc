// Copyright 2026 The gkmeans Authors.

#include "kmeans/closure_kmeans.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/rp_forest.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {

ClusteringResult ClosureKMeans(const Matrix& data,
                               const ClosureParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);
  GKM_CHECK(params.leaf_size >= 2);

  ClusteringResult res;
  res.method = "closure";
  Rng rng(params.seed);

  // --- Init: RP forest (built once) + closure-restricted seeding. ---
  Timer total;
  RpForestParams forest_params;
  forest_params.num_trees = params.num_trees;
  forest_params.leaf_size = params.leaf_size;
  forest_params.seed = rng.Next();
  const RpForest forest(data, forest_params);
  const std::vector<std::vector<std::uint32_t>>& leaves = forest.leaves();
  // Seeding: k random data rows become the initial centroids, and the
  // initial assignment is itself closure-restricted — each point considers
  // only the seeds sharing one of its leaves. A full O(n k d) assignment
  // would already be infeasible in the paper's 10M-to-1M-clusters regime.
  const std::vector<std::uint32_t> seed_ids = rng.SampleDistinct(n, k);
  Matrix centroids(k, d);
  for (std::size_t r = 0; r < k; ++r) {
    centroids.SetRow(r, data.Row(seed_ids[r]));
  }
  std::vector<std::int64_t> cluster_of_seed(n, -1);
  for (std::size_t r = 0; r < k; ++r) {
    cluster_of_seed[seed_ids[r]] = static_cast<std::int64_t>(r);
  }
  std::vector<std::vector<std::uint32_t>> seeds_in_leaf(leaves.size());
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    for (const std::uint32_t i : leaves[l]) {
      if (cluster_of_seed[i] >= 0) {
        seeds_in_leaf[l].push_back(
            static_cast<std::uint32_t>(cluster_of_seed[i]));
      }
    }
  }
  std::vector<std::uint32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = data.Row(i);
    float best_dist = std::numeric_limits<float>::max();
    std::int64_t best_v = -1;
    for (std::size_t t = 0; t < params.num_trees; ++t) {
      for (const std::uint32_t v : seeds_in_leaf[forest.LeafOf(t, i)]) {
        const float dist = L2Sqr(x, centroids.Row(v), d);
        if (dist < best_dist) {
          best_dist = dist;
          best_v = static_cast<std::int64_t>(v);
        }
      }
    }
    // Leaf-orphan (no seed shares any leaf): full scan, rare by design.
    labels[i] = best_v >= 0
                    ? static_cast<std::uint32_t>(best_v)
                    : static_cast<std::uint32_t>(NearestRow(centroids, x));
  }
  ClusterState state(data, labels, k);
  centroids = state.Centroids();
  res.init_seconds = total.Seconds();

  // --- Lloyd iterations restricted to closure candidates. ---
  Timer iter_timer;
  std::vector<std::uint32_t> stamp(k, 0);
  std::uint32_t cur_stamp = 0;
  std::vector<std::uint32_t> cand;
  std::vector<std::uint32_t> leaf_labels;  // distinct labels per leaf, CSR
  std::vector<std::uint32_t> leaf_label_start;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // Distinct labels present in every leaf (closure building block).
    leaf_labels.clear();
    leaf_label_start.assign(leaves.size() + 1, 0);
    for (std::size_t l = 0; l < leaves.size(); ++l) {
      leaf_label_start[l] = static_cast<std::uint32_t>(leaf_labels.size());
      ++cur_stamp;
      for (const std::uint32_t i : leaves[l]) {
        const std::uint32_t c = labels[i];
        if (stamp[c] != cur_stamp) {
          stamp[c] = cur_stamp;
          leaf_labels.push_back(c);
        }
      }
    }
    leaf_label_start[leaves.size()] =
        static_cast<std::uint32_t>(leaf_labels.size());

    std::size_t moves = 0;
    std::vector<float> dist_to_assigned(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
      // Candidate clusters: labels seen in any of i's leaves.
      ++cur_stamp;
      cand.clear();
      const std::uint32_t u = labels[i];
      stamp[u] = cur_stamp;
      cand.push_back(u);
      for (std::size_t t = 0; t < params.num_trees; ++t) {
        const std::uint32_t l = forest.LeafOf(t, i);
        for (std::uint32_t p = leaf_label_start[l];
             p < leaf_label_start[l + 1]; ++p) {
          const std::uint32_t c = leaf_labels[p];
          if (stamp[c] != cur_stamp) {
            stamp[c] = cur_stamp;
            cand.push_back(c);
          }
        }
      }
      const float* x = data.Row(i);
      if (cand.size() == 1) {
        // Inactive point: its whole neighborhood lives in its own cluster.
        dist_to_assigned[i] = L2Sqr(x, centroids.Row(u), d);
        continue;
      }
      float best_dist = std::numeric_limits<float>::max();
      std::uint32_t best_v = u;
      for (const std::uint32_t v : cand) {
        const float dist = L2Sqr(x, centroids.Row(v), d);
        if (dist < best_dist) {
          best_dist = dist;
          best_v = v;
        }
      }
      if (best_v != u) {
        labels[i] = best_v;
        ++moves;
      }
      dist_to_assigned[i] = best_dist;
    }

    // Closure candidate sets can starve a cluster to extinction; re-seed
    // every empty cluster with the point currently worst-served by its own
    // centroid (same policy as the Lloyd baseline).
    {
      std::vector<std::uint32_t> counts(k, 0);
      for (std::size_t i = 0; i < n; ++i) ++counts[labels[i]];
      for (std::size_t r = 0; r < k; ++r) {
        if (counts[r] != 0) continue;
        std::size_t worst = 0;
        float worst_dist = -1.0f;
        for (std::size_t i = 0; i < n; ++i) {
          if (counts[labels[i]] > 1 && dist_to_assigned[i] > worst_dist) {
            worst_dist = dist_to_assigned[i];
            worst = i;
          }
        }
        --counts[labels[worst]];
        labels[worst] = static_cast<std::uint32_t>(r);
        ++counts[r];
        ++moves;
      }
    }

    state.Rebuild(data, labels);
    centroids = state.Centroids();
    res.trace.push_back(IterStat{it, state.Distortion(), total.Seconds(),
                                 moves});
    res.iterations = it + 1;
    if (moves == 0) break;
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
