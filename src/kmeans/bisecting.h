// Copyright 2026 The gkmeans Authors.
// Top-down hierarchical (bisecting) k-means (§2.1, [1][40][41]): clustering
// as a sequence of repeated bisections, O(t·log(k)·n·d) instead of
// O(t·k·n·d). The paper's criticism — "poor clustering performance ... as
// it breaks the Lloyd's condition" — is what the quality tests/benches
// verify: each split is locally optimal but nothing re-assigns points
// across subtree boundaries afterwards.
//
// Unlike the two-means tree (Alg. 1), no equal-size adjustment is applied
// and the cluster chosen for splitting is the one with the largest
// *distortion contribution*, the standard criterion for clustering use.

#ifndef GKM_KMEANS_BISECTING_H_
#define GKM_KMEANS_BISECTING_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for BisectingKMeans.
struct BisectingParams {
  std::size_t k = 8;
  std::size_t bisect_epochs = 8;  ///< BKM-2 epochs per bisection
  std::uint64_t seed = 42;
};

/// Runs bisecting k-means until exactly k clusters exist.
ClusteringResult BisectingKMeans(const Matrix& data,
                                 const BisectingParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_BISECTING_H_
