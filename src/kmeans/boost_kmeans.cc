// Copyright 2026 The gkmeans Authors.

#include "kmeans/boost_kmeans.h"

#include <limits>

#include "common/distance.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {

ClusteringResult BoostKMeans(const Matrix& data, const BkmParams& params) {
  const std::size_t n = data.rows();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = "bkm";
  Rng rng(params.seed);

  Timer total;
  std::vector<std::uint32_t> labels;
  if (!params.init_labels.empty()) {
    GKM_CHECK(params.init_labels.size() == n);
    labels = params.init_labels;
  } else {
    labels = BalancedRandomLabels(n, k, rng);
  }
  ClusterState state(data, labels, k);

  std::vector<float> norms(n);
  RowNormsSqr(data, norms.data());

  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  res.init_seconds = total.Seconds();

  Timer iter_timer;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    rng.Shuffle(order);
    std::size_t moves = 0;
    for (const std::uint32_t i : order) {
      const std::uint32_t u = labels[i];
      if (state.CountOf(u) < 2) continue;  // never empty a cluster
      const float* x = data.Row(i);
      const float xn = norms[i];

      // The arrival gain is independent of the source cluster, so the best
      // target is simply argmax_v GainArrive (v != u).
      double best_gain = -std::numeric_limits<double>::max();
      std::size_t best_v = u;
      for (std::size_t v = 0; v < k; ++v) {
        if (v == u) continue;
        const double g = state.GainArrive(x, xn, v);
        if (g > best_gain) {
          best_gain = g;
          best_v = v;
        }
      }
      if (best_v == u) continue;
      const double delta = best_gain + state.GainLeave(x, xn, u);
      if (delta > 0.0) {
        state.Move(x, u, best_v);
        labels[i] = static_cast<std::uint32_t>(best_v);
        ++moves;
      }
    }
    res.trace.push_back(
        IterStat{it, state.Distortion(), total.Seconds(), moves});
    res.iterations = it + 1;
    if (moves == 0) break;  // exact local optimum of I under 1-moves
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
