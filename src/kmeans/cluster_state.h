// Copyright 2026 The gkmeans Authors.
// Composite-vector bookkeeping for incremental (boost) k-means.
//
// BKM maximizes I = sum_r D_r.D_r / n_r (Eqn. 2), where D_r is the sum of
// the vectors assigned to cluster r. ClusterState maintains D_r, n_r and
// ||D_r||^2 under single-sample moves and exposes the two halves of the
// move gain Delta-I (Eqn. 3):
//
//   GainArrive(x, v) = ||D_v + x||^2/(n_v+1) - ||D_v||^2/n_v
//   GainLeave(x, u)  = ||D_u - x||^2/(n_u-1) - ||D_u||^2/n_u
//   Delta-I(x: u->v) = GainArrive(x, v) + GainLeave(x, u)
//
// Both cost one d-dimensional dot product — the same as one distance — so
// a BKM step is exactly as expensive per candidate as a Lloyd step, which
// is the complexity claim of §3.1.
//
// Composite vectors are stored in double precision: they absorb millions of
// incremental +/- updates per run and float accumulation drifts measurably.

#ifndef GKM_KMEANS_CLUSTER_STATE_H_
#define GKM_KMEANS_CLUSTER_STATE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/matrix.h"

namespace gkm {

/// Incrementally-maintained cluster statistics over a fixed dataset.
class ClusterState {
 public:
  /// Builds the state for `labels` (values in [0, k)). O(n d).
  ClusterState(const Matrix& data, const std::vector<std::uint32_t>& labels,
               std::size_t k);

  std::size_t k() const { return counts_.size(); }
  std::size_t dim() const { return dim_; }
  std::uint32_t CountOf(std::size_t r) const { return counts_[r]; }
  double CompositeNormSqr(std::size_t r) const { return dnorm_[r]; }
  const double* Composite(std::size_t r) const { return d_.data() + r * dim_; }

  /// Sum over rows of ||x_i||^2 (constant for the dataset).
  double SumPointNormSqr() const { return sum_point_norms_; }

  /// Gain of inserting `x` into cluster `v` (first two terms of Eqn. 3
  /// involving v).
  double GainArrive(const float* x, float x_norm_sqr, std::size_t v) const;

  /// Gain of removing `x` from cluster `u` (the u-terms of Eqn. 3).
  /// Requires n_u >= 2: BKM never empties a cluster.
  double GainLeave(const float* x, float x_norm_sqr, std::size_t u) const;

  /// Applies the move of row `i` (vector `x`) from cluster `u` to `v`.
  /// O(d). Updates composites, counts and cached norms.
  void Move(const float* x, std::size_t u, std::size_t v);

  /// Objective I = sum_r ||D_r||^2 / n_r (empty clusters contribute 0).
  double ObjectiveI() const;

  /// Average distortion E (Eqn. 4) via the identity
  /// E = (sum_i ||x_i||^2 - I) / n.
  double Distortion() const;

  /// Materializes centroids C_r = D_r / n_r. Rows of empty clusters are
  /// zero.
  Matrix Centroids() const;

  /// Recomputes all cached statistics from `labels` from scratch — used by
  /// long-running loops to cancel any residual floating-point drift and by
  /// tests to validate the incremental path.
  void Rebuild(const Matrix& data, const std::vector<std::uint32_t>& labels);

 private:
  const Matrix* data_;
  std::size_t dim_ = 0;
  std::size_t n_ = 0;
  std::vector<double> d_;        // k x dim composite vectors
  std::vector<std::uint32_t> counts_;
  std::vector<double> dnorm_;    // ||D_r||^2
  double sum_point_norms_ = 0.0;
};

}  // namespace gkm

#endif  // GKM_KMEANS_CLUSTER_STATE_H_
