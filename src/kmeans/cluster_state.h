// Copyright 2026 The gkmeans Authors.
// Composite-vector bookkeeping for incremental (boost) k-means.
//
// BKM maximizes I = sum_r D_r.D_r / n_r (Eqn. 2), where D_r is the sum of
// the vectors assigned to cluster r. ClusterState maintains D_r, n_r and
// ||D_r||^2 under single-sample moves and exposes the two halves of the
// move gain Delta-I (Eqn. 3):
//
//   GainArrive(x, v) = ||D_v + x||^2/(n_v+1) - ||D_v||^2/n_v
//   GainLeave(x, u)  = ||D_u - x||^2/(n_u-1) - ||D_u||^2/n_u
//   Delta-I(x: u->v) = GainArrive(x, v) + GainLeave(x, u)
//
// Both cost one d-dimensional dot product — the same as one distance — so
// a BKM step is exactly as expensive per candidate as a Lloyd step, which
// is the complexity claim of §3.1.
//
// Composite vectors are stored in double precision: they absorb millions of
// incremental +/- updates per run and float accumulation drifts measurably.

#ifndef GKM_KMEANS_CLUSTER_STATE_H_
#define GKM_KMEANS_CLUSTER_STATE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/matrix.h"

namespace gkm {

/// Incrementally-maintained cluster statistics. The classic constructor
/// covers a fixed dataset; the streaming subsystem instead starts empty and
/// grows one sample at a time via AddPoint.
class ClusterState {
 public:
  /// Builds the state for `labels` (values in [0, k)). O(n d).
  ClusterState(const Matrix& data, const std::vector<std::uint32_t>& labels,
               std::size_t k);

  /// Empty state over `k` clusters of dimension `dim` (n = 0). Populate
  /// with AddPoint.
  ClusterState(std::size_t dim, std::size_t k);

  std::size_t k() const { return counts_.size(); }
  std::size_t dim() const { return dim_; }
  std::uint32_t CountOf(std::size_t r) const { return counts_[r]; }
  double CompositeNormSqr(std::size_t r) const { return dnorm_[r]; }
  const double* Composite(std::size_t r) const { return d_.data() + r * dim_; }

  /// Sum over rows of ||x_i||^2 (constant for the dataset).
  double SumPointNormSqr() const { return sum_point_norms_; }

  /// Gain of inserting `x` into cluster `v` (first two terms of Eqn. 3
  /// involving v).
  double GainArrive(const float* x, float x_norm_sqr, std::size_t v) const;

  /// Batched arrival gains: out[i] = GainArrive(x, x_norm_sqr, cands[i]),
  /// evaluated as one gathered mixed-precision dot batch over the
  /// candidate composites (common/kernels.h) — bit-identical to the
  /// per-candidate calls at every dispatch tier. The BKM inner loop.
  void GainArriveBatch(const float* x, float x_norm_sqr,
                       const std::uint32_t* cands, std::size_t m,
                       double* out) const;

  /// Gain of removing `x` from cluster `u` (the u-terms of Eqn. 3).
  /// Requires n_u >= 2: BKM never empties a cluster.
  double GainLeave(const float* x, float x_norm_sqr, std::size_t u) const;

  /// Applies the move of row `i` (vector `x`) from cluster `u` to `v`.
  /// O(d). Updates composites, counts and cached norms.
  void Move(const float* x, std::size_t u, std::size_t v);

  /// Admits a brand-new sample into cluster `v` (n grows by one). O(d).
  /// The streaming ingest path.
  void AddPoint(const float* x, std::size_t v);

  /// Retires member `x` from cluster `u` (n shrinks by one). O(d). The
  /// streaming deletion/TTL path. Unlike BKM moves this may empty a
  /// cluster — decay is allowed to; the streaming maintenance re-seeds
  /// empty clusters on the next window.
  void RemovePoint(const float* x, std::size_t u);

  /// Folds cluster `src` into `dst`, leaving `src` empty. O(d). The caller
  /// owns relabeling the members. Streaming merge maintenance.
  void MergeClusters(std::size_t dst, std::size_t src);

  /// Within-cluster SSE of `r`: sum_{i in r} ||x_i - c_r||^2, via the
  /// identity SSE_r = sum ||x_i||^2 - ||D_r||^2 / n_r. O(1).
  double ClusterSse(std::size_t r) const {
    return counts_[r] == 0 ? 0.0
                           : point_norms_[r] - dnorm_[r] / counts_[r];
  }

  std::size_t n() const { return n_; }

  /// Replaces every cached statistic with externally supplied values — the
  /// checkpoint-restore path, which must reproduce the incremental state
  /// bit-for-bit rather than re-derive it (re-summation changes low-order
  /// float bits). Sizes must match k() * dim().
  void RestoreRaw(std::size_t n, std::vector<double> composites,
                  std::vector<std::uint32_t> counts,
                  std::vector<double> composite_norms,
                  std::vector<double> point_norms, double sum_point_norms);

  const std::vector<std::uint32_t>& counts() const { return counts_; }
  const std::vector<double>& composites() const { return d_; }
  const std::vector<double>& composite_norms() const { return dnorm_; }
  /// Per-cluster sum of member ||x||^2 (the SSE bookkeeping).
  const std::vector<double>& point_norms() const { return point_norms_; }

  /// Objective I = sum_r ||D_r||^2 / n_r (empty clusters contribute 0).
  double ObjectiveI() const;

  /// Average distortion E (Eqn. 4) via the identity
  /// E = (sum_i ||x_i||^2 - I) / n.
  double Distortion() const;

  /// Materializes centroids C_r = D_r / n_r. Rows of empty clusters are
  /// zero.
  Matrix Centroids() const;

  /// Recomputes all cached statistics from `labels` from scratch — used by
  /// long-running loops to cancel any residual floating-point drift and by
  /// tests to validate the incremental path.
  void Rebuild(const Matrix& data, const std::vector<std::uint32_t>& labels);

 private:
  std::size_t dim_ = 0;
  std::size_t n_ = 0;
  std::vector<double> d_;        // k x dim composite vectors
  std::vector<std::uint32_t> counts_;
  std::vector<double> dnorm_;    // ||D_r||^2
  std::vector<double> point_norms_;  // per-cluster sum of ||x_i||^2
  double sum_point_norms_ = 0.0;
};

}  // namespace gkm

#endif  // GKM_KMEANS_CLUSTER_STATE_H_
