// Copyright 2026 The gkmeans Authors.
// Elkan's triangle-inequality-accelerated k-means (ICML 2003, [29] in the
// paper). Produces assignments *identical* to Lloyd's at every iteration
// while skipping most distance computations, at the cost the paper calls
// out in §1: O(k^2) memory for center-center distances plus O(n k) lower
// bounds — which is exactly why it stops scaling once k is very large.

#ifndef GKM_KMEANS_ELKAN_H_
#define GKM_KMEANS_ELKAN_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for ElkanKMeans.
struct ElkanParams {
  std::size_t k = 8;
  std::size_t max_iters = 30;
  bool use_kmeanspp = false;
  std::uint64_t seed = 42;
};

/// Runs Elkan's exact accelerated k-means. With the same seed and seeding
/// strategy it reproduces LloydKMeans' trajectory exactly (tested), only
/// faster.
ClusteringResult ElkanKMeans(const Matrix& data, const ElkanParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_ELKAN_H_
