// Copyright 2026 The gkmeans Authors.

#include "kmeans/cluster_state.h"

#include "common/distance.h"
#include "common/kernels.h"

namespace gkm {
namespace {

// dot(double[], float[]) — the mixed-precision kernel behind the BKM gains.
double DotDF(const double* GKM_RESTRICT a, const float* GKM_RESTRICT b,
             std::size_t d) {
  double s0 = 0.0, s1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += a[i] * static_cast<double>(b[i]);
    s1 += a[i + 1] * static_cast<double>(b[i + 1]);
  }
  if (i < d) s0 += a[i] * static_cast<double>(b[i]);
  return s0 + s1;
}

}  // namespace

ClusterState::ClusterState(const Matrix& data,
                           const std::vector<std::uint32_t>& labels,
                           std::size_t k) {
  counts_.resize(k);
  Rebuild(data, labels);
}

ClusterState::ClusterState(std::size_t dim, std::size_t k)
    : dim_(dim), n_(0) {
  d_.assign(k * dim, 0.0);
  counts_.assign(k, 0);
  dnorm_.assign(k, 0.0);
  point_norms_.assign(k, 0.0);
}

void ClusterState::AddPoint(const float* x, std::size_t v) {
  GKM_DCHECK(v < counts_.size());
  double* dv = d_.data() + v * dim_;
  double nv = 0.0, norm = 0.0;
  for (std::size_t j = 0; j < dim_; ++j) {
    dv[j] += x[j];
    nv += dv[j] * dv[j];
    norm += static_cast<double>(x[j]) * x[j];
  }
  dnorm_[v] = nv;
  ++counts_[v];
  point_norms_[v] += norm;
  sum_point_norms_ += norm;
  ++n_;
}

void ClusterState::RemovePoint(const float* x, std::size_t u) {
  GKM_DCHECK(u < counts_.size());
  GKM_CHECK_MSG(counts_[u] >= 1, "RemovePoint from an empty cluster");
  GKM_DCHECK(n_ >= 1);
  double* du = d_.data() + u * dim_;
  double nu = 0.0, norm = 0.0;
  for (std::size_t j = 0; j < dim_; ++j) {
    du[j] -= x[j];
    nu += du[j] * du[j];
    norm += static_cast<double>(x[j]) * x[j];
  }
  dnorm_[u] = nu;
  --counts_[u];
  point_norms_[u] -= norm;
  sum_point_norms_ -= norm;
  --n_;
}

void ClusterState::MergeClusters(std::size_t dst, std::size_t src) {
  GKM_DCHECK(dst != src);
  double* dd = d_.data() + dst * dim_;
  double* ds = d_.data() + src * dim_;
  double nrm = 0.0;
  for (std::size_t j = 0; j < dim_; ++j) {
    dd[j] += ds[j];
    ds[j] = 0.0;
    nrm += dd[j] * dd[j];
  }
  dnorm_[dst] = nrm;
  dnorm_[src] = 0.0;
  counts_[dst] += counts_[src];
  counts_[src] = 0;
  point_norms_[dst] += point_norms_[src];
  point_norms_[src] = 0.0;
}

void ClusterState::RestoreRaw(std::size_t n, std::vector<double> composites,
                              std::vector<std::uint32_t> counts,
                              std::vector<double> composite_norms,
                              std::vector<double> point_norms,
                              double sum_point_norms) {
  const std::size_t k = counts_.size();
  GKM_CHECK(composites.size() == k * dim_);
  GKM_CHECK(counts.size() == k && composite_norms.size() == k);
  GKM_CHECK(point_norms.size() == k);
  n_ = n;
  d_ = std::move(composites);
  counts_ = std::move(counts);
  dnorm_ = std::move(composite_norms);
  point_norms_ = std::move(point_norms);
  sum_point_norms_ = sum_point_norms;
}

void ClusterState::Rebuild(const Matrix& data,
                           const std::vector<std::uint32_t>& labels) {
  dim_ = data.cols();
  n_ = data.rows();
  GKM_CHECK(labels.size() == n_);
  const std::size_t k = counts_.size();
  d_.assign(k * dim_, 0.0);
  counts_.assign(k, 0);
  dnorm_.assign(k, 0.0);
  point_norms_.assign(k, 0.0);
  sum_point_norms_ = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint32_t r = labels[i];
    GKM_CHECK_MSG(r < k, "label out of range");
    const float* x = data.Row(i);
    double* dr = d_.data() + r * dim_;
    double norm = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) {
      dr[j] += x[j];
      norm += static_cast<double>(x[j]) * x[j];
    }
    ++counts_[r];
    point_norms_[r] += norm;
    sum_point_norms_ += norm;
  }
  for (std::size_t r = 0; r < k; ++r) {
    const double* dr = d_.data() + r * dim_;
    double s = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) s += dr[j] * dr[j];
    dnorm_[r] = s;
  }
}

double ClusterState::GainArrive(const float* x, float x_norm_sqr,
                                std::size_t v) const {
  const std::uint32_t nv = counts_[v];
  if (nv == 0) {
    // Arriving at an empty cluster contributes ||x||^2 / 1.
    return static_cast<double>(x_norm_sqr);
  }
  const double dv_dot_x = DotDF(Composite(v), x, dim_);
  const double grown = dnorm_[v] + 2.0 * dv_dot_x + x_norm_sqr;
  return grown / (nv + 1.0) - dnorm_[v] / nv;
}

void ClusterState::GainArriveBatch(const float* x, float x_norm_sqr,
                                   const std::uint32_t* cands, std::size_t m,
                                   double* out) const {
  // Gather the candidate composites and score them in one batch; empty
  // clusters skip the dot (their composite is zero anyway) and keep the
  // scalar function's ||x||^2 semantics.
  thread_local std::vector<const double*> rows;
  thread_local std::vector<double> dots;
  rows.resize(m);
  dots.resize(m);
  for (std::size_t i = 0; i < m; ++i) rows[i] = Composite(cands[i]);
  DotDFBatchGather(x, rows.data(), m, dim_, dots.data());
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t nv = counts_[cands[i]];
    if (nv == 0) {
      out[i] = static_cast<double>(x_norm_sqr);
      continue;
    }
    const double grown = dnorm_[cands[i]] + 2.0 * dots[i] + x_norm_sqr;
    out[i] = grown / (nv + 1.0) - dnorm_[cands[i]] / nv;
  }
}

double ClusterState::GainLeave(const float* x, float x_norm_sqr,
                               std::size_t u) const {
  const std::uint32_t nu = counts_[u];
  GKM_DCHECK(nu >= 2);
  const double du_dot_x = DotDF(Composite(u), x, dim_);
  const double shrunk = dnorm_[u] - 2.0 * du_dot_x + x_norm_sqr;
  return shrunk / (nu - 1.0) - dnorm_[u] / nu;
}

void ClusterState::Move(const float* x, std::size_t u, std::size_t v) {
  GKM_DCHECK(u != v);
  GKM_DCHECK(counts_[u] >= 1);
  double* du = d_.data() + u * dim_;
  double* dv = d_.data() + v * dim_;
  double nu = 0.0, nv = 0.0, xn = 0.0;
  for (std::size_t j = 0; j < dim_; ++j) {
    du[j] -= x[j];
    dv[j] += x[j];
    nu += du[j] * du[j];
    nv += dv[j] * dv[j];
    xn += static_cast<double>(x[j]) * x[j];
  }
  dnorm_[u] = nu;
  dnorm_[v] = nv;
  --counts_[u];
  ++counts_[v];
  point_norms_[u] -= xn;
  point_norms_[v] += xn;
}

double ClusterState::ObjectiveI() const {
  double total = 0.0;
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    if (counts_[r] > 0) total += dnorm_[r] / counts_[r];
  }
  return total;
}

double ClusterState::Distortion() const {
  GKM_CHECK(n_ > 0);
  return (sum_point_norms_ - ObjectiveI()) / static_cast<double>(n_);
}

Matrix ClusterState::Centroids() const {
  Matrix c(counts_.size(), dim_);
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    if (counts_[r] == 0) continue;
    const double inv = 1.0 / counts_[r];
    const double* dr = Composite(r);
    float* cr = c.Row(r);
    for (std::size_t j = 0; j < dim_; ++j) {
      cr[j] = static_cast<float>(dr[j] * inv);
    }
  }
  return c;
}

}  // namespace gkm
