// Copyright 2026 The gkmeans Authors.
// Closure k-means ("Fast approximate k-means via cluster closures", Wang
// et al., CVPR 2012 [27]) — the strongest competing baseline in the
// paper's evaluation (Fig. 5-7, Tab. 2).
//
// An ensemble of random-projection partition trees is built once; the
// neighborhood of a point is the union of its leaf co-members across
// trees, and a cluster's *closure* is the union of its members'
// neighborhoods. In each Lloyd-style iteration a point is compared only
// against centroids of clusters whose closure contains it — i.e. the
// clusters owning at least one of its leaf co-members. Points whose
// neighborhoods lie entirely inside their own cluster ("inactive" points,
// far from any boundary) skip the distance work altogether.

#ifndef GKM_KMEANS_CLOSURE_KMEANS_H_
#define GKM_KMEANS_CLOSURE_KMEANS_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for ClosureKMeans.
struct ClosureParams {
  std::size_t k = 8;
  std::size_t num_trees = 3;    ///< ensemble size (more = bigger closures)
  std::size_t leaf_size = 50;   ///< RP-tree leaf capacity
  std::size_t max_iters = 30;
  std::uint64_t seed = 42;
};

/// Runs closure k-means.
ClusteringResult ClosureKMeans(const Matrix& data, const ClosureParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_CLOSURE_KMEANS_H_
