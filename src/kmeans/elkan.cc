// Copyright 2026 The gkmeans Authors.

#include "kmeans/elkan.h"

#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {

ClusteringResult ElkanKMeans(const Matrix& data, const ElkanParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = "elkan";
  Rng rng(params.seed);

  Timer total;
  Matrix centroids = params.use_kmeanspp ? KMeansPlusPlus(data, k, rng)
                                         : RandomCentroids(data, k, rng);
  res.init_seconds = total.Seconds();

  // All bounds are kept on *plain* (not squared) distances so the triangle
  // inequality applies directly.
  std::vector<float> upper(n, std::numeric_limits<float>::max());
  std::vector<float> lower(n * k, 0.0f);
  std::vector<std::uint32_t> labels(n, 0);
  std::vector<char> upper_stale(n, 1);
  std::vector<float> cc(k * k, 0.0f);     // center-center distances
  std::vector<float> half_nearest(k, 0.0f);  // s(c) = 0.5 min_{c'!=c} d(c,c')
  std::vector<float> shift(k, 0.0f);
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint32_t> counts(k, 0);

  // Initial full assignment, seeding bounds. The per-point scan over all k
  // centroids is one batched kernel call; sqrt is monotone, so comparing
  // the squared batch output picks the same winner the scalar loop did.
  std::vector<float> scan(k);
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = data.Row(i);
    L2SqrBatch(x, centroids.Row(0), centroids.stride(), k, d, scan.data());
    float best = std::numeric_limits<float>::max();
    std::uint32_t arg = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const float dist = std::sqrt(scan[c]);
      lower[i * k + c] = dist;
      if (dist < best) {
        best = dist;
        arg = static_cast<std::uint32_t>(c);
      }
    }
    labels[i] = arg;
    upper[i] = best;
    upper_stale[i] = 0;
  }

  Timer iter_timer;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // Step 1: center-center distances and s(c), one batched row scan per
    // center (the a == b slot is computed but skipped, as before).
    for (std::size_t a = 0; a < k; ++a) {
      L2SqrBatch(centroids.Row(a), centroids.Row(0), centroids.stride(), k, d,
                 scan.data());
      float nearest = std::numeric_limits<float>::max();
      for (std::size_t b = 0; b < k; ++b) {
        if (a == b) continue;
        const float dist = std::sqrt(scan[b]);
        cc[a * k + b] = dist;
        nearest = std::min(nearest, dist);
      }
      half_nearest[a] = 0.5f * nearest;
    }

    std::size_t moves = 0;
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t a = labels[i];
      // Step 2: skip points whose upper bound already beats every rival.
      if (upper[i] <= half_nearest[a]) {
        inertia += static_cast<double>(upper[i]) * upper[i];
        continue;
      }
      const float* x = data.Row(i);
      bool tightened = false;
      for (std::size_t c = 0; c < k; ++c) {
        if (c == a) continue;
        // Step 3 filters: lower bound and center-center pruning.
        if (upper[i] <= lower[i * k + c]) continue;
        if (upper[i] <= 0.5f * cc[a * k + c]) continue;
        // Step 3a: tighten the upper bound once per point per iteration.
        if (!tightened) {
          upper[i] = std::sqrt(L2Sqr(x, centroids.Row(a), d));
          lower[i * k + a] = upper[i];
          upper_stale[i] = 0;
          tightened = true;
          if (upper[i] <= lower[i * k + c] || upper[i] <= 0.5f * cc[a * k + c]) {
            continue;
          }
        }
        // Step 3b: exact distance to the rival.
        const float dist = std::sqrt(L2Sqr(x, centroids.Row(c), d));
        lower[i * k + c] = dist;
        if (dist < upper[i]) {
          a = static_cast<std::uint32_t>(c);
          upper[i] = dist;
        }
      }
      if (a != labels[i]) {
        labels[i] = a;
        ++moves;
      }
      inertia += static_cast<double>(upper[i]) * upper[i];
    }

    // Step 4/7: recompute centroids from scratch (numerically safest).
    sums.assign(k * d, 0.0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* x = data.Row(i);
      double* s = sums.data() + labels[i] * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
      ++counts[labels[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        shift[c] = 0.0f;  // empty cluster: centroid frozen in place
        continue;
      }
      const double inv = 1.0 / counts[c];
      float* row = centroids.Row(c);
      float delta = 0.0f;
      for (std::size_t j = 0; j < d; ++j) {
        const auto updated = static_cast<float>(sums[c * d + j] * inv);
        const float diff = updated - row[j];
        delta += diff * diff;
        row[j] = updated;
      }
      shift[c] = std::sqrt(delta);
    }

    // Step 5/6: drift the bounds by the centroid movements.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        lower[i * k + c] = std::max(0.0f, lower[i * k + c] - shift[c]);
      }
      upper[i] += shift[labels[i]];
      upper_stale[i] = 1;
    }

    res.trace.push_back(IterStat{it, inertia / static_cast<double>(n),
                                 total.Seconds(), moves});
    res.iterations = it + 1;
    if (it > 0 && moves == 0) break;
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  ClusterState state(data, labels, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
