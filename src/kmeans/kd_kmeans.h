// Copyright 2026 The gkmeans Authors.
// KD-tree accelerated k-means (Kanungo et al. [35], §2.1): Lloyd's
// algorithm whose assignment step answers nearest-centroid queries through
// a KD-tree over the k centroids (rebuilt per iteration, O(k log k) —
// negligible next to assignment). Produces assignments identical to Lloyd.
//
// The reason the paper dismisses this family: the tree's pruning power
// collapses with dimensionality ("only feasible when the dimension of data
// is in few tens"). The per-iteration average number of centroid distance
// evaluations is reported so benches can show exactly that collapse.

#ifndef GKM_KMEANS_KD_KMEANS_H_
#define GKM_KMEANS_KD_KMEANS_H_

#include <cstdint>
#include <vector>

#include "kmeans/types.h"

namespace gkm {

/// Options for KdKMeans.
struct KdKMeansParams {
  std::size_t k = 8;
  std::size_t max_iters = 30;
  std::size_t leaf_size = 4;  ///< centroid-tree leaf capacity
  std::uint64_t seed = 42;
};

/// Per-iteration pruning diagnostics.
struct KdKMeansStats {
  /// Average centroids actually compared per point, per iteration. Equals
  /// ~log(k) in low dimension and approaches k as d grows.
  std::vector<double> avg_centroids_compared;
};

/// Runs KD-tree accelerated Lloyd's k-means.
ClusteringResult KdKMeans(const Matrix& data, const KdKMeansParams& params,
                          KdKMeansStats* stats = nullptr);

}  // namespace gkm

#endif  // GKM_KMEANS_KD_KMEANS_H_
