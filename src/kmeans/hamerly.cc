// Copyright 2026 The gkmeans Authors.

#include "kmeans/hamerly.h"

#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

// Exact distances of x to all centroids via one batched kernel call;
// returns the best and second-best. The tracking loop runs on the same
// sqrt'ed values in the same order as the scalar version did, so winners,
// ties and the k == 1 sentinel behave identically.
void TwoNearest(const Matrix& centroids, const float* x, std::size_t d,
                std::vector<float>& scan, std::uint32_t* best,
                float* best_dist, float* second_dist) {
  const std::size_t k = centroids.rows();
  scan.resize(k);
  L2SqrBatch(x, centroids.Row(0), centroids.stride(), k, d, scan.data());
  float b1 = std::numeric_limits<float>::max();
  float b2 = std::numeric_limits<float>::max();
  std::uint32_t arg = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const float dist = std::sqrt(scan[c]);
    if (dist < b1) {
      b2 = b1;
      b1 = dist;
      arg = static_cast<std::uint32_t>(c);
    } else if (dist < b2) {
      b2 = dist;
    }
  }
  *best = arg;
  *best_dist = b1;
  *second_dist = b2;
}

}  // namespace

ClusteringResult HamerlyKMeans(const Matrix& data, const HamerlyParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = "hamerly";
  Rng rng(params.seed);

  Timer total;
  Matrix centroids = params.use_kmeanspp ? KMeansPlusPlus(data, k, rng)
                                         : RandomCentroids(data, k, rng);
  res.init_seconds = total.Seconds();

  std::vector<float> upper(n), lower(n);
  std::vector<std::uint32_t> labels(n);
  std::vector<float> half_nearest(k), shift(k);
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint32_t> counts(k, 0);
  std::vector<float> scan(k);

  for (std::size_t i = 0; i < n; ++i) {
    TwoNearest(centroids, data.Row(i), d, scan, &labels[i], &upper[i],
               &lower[i]);
  }

  Timer iter_timer;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // s(c) = half the distance from c to its nearest other center, one
    // batched row scan per center.
    for (std::size_t a = 0; a < k; ++a) {
      L2SqrBatch(centroids.Row(a), centroids.Row(0), centroids.stride(), k, d,
                 scan.data());
      float nearest = std::numeric_limits<float>::max();
      for (std::size_t b = 0; b < k; ++b) {
        if (a == b) continue;
        nearest = std::min(nearest, std::sqrt(scan[b]));
      }
      half_nearest[a] = 0.5f * nearest;
    }

    std::size_t moves = 0;
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float bound = std::max(half_nearest[labels[i]], lower[i]);
      if (upper[i] > bound) {
        // First tighten the upper bound, then re-test before a full scan.
        upper[i] = std::sqrt(L2Sqr(data.Row(i), centroids.Row(labels[i]), d));
        if (upper[i] > bound) {
          const std::uint32_t old = labels[i];
          TwoNearest(centroids, data.Row(i), d, scan, &labels[i], &upper[i],
                     &lower[i]);
          if (labels[i] != old) ++moves;
        }
      }
      inertia += static_cast<double>(upper[i]) * upper[i];
    }

    sums.assign(k * d, 0.0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* x = data.Row(i);
      double* s = sums.data() + labels[i] * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
      ++counts[labels[i]];
    }
    float max_shift = 0.0f, second_shift = 0.0f;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        shift[c] = 0.0f;
        continue;
      }
      const double inv = 1.0 / counts[c];
      float* row = centroids.Row(c);
      float delta = 0.0f;
      for (std::size_t j = 0; j < d; ++j) {
        const auto updated = static_cast<float>(sums[c * d + j] * inv);
        const float diff = updated - row[j];
        delta += diff * diff;
        row[j] = updated;
      }
      shift[c] = std::sqrt(delta);
      if (shift[c] > max_shift) {
        second_shift = max_shift;
        max_shift = shift[c];
      } else if (shift[c] > second_shift) {
        second_shift = shift[c];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      upper[i] += shift[labels[i]];
      // The lower bound shrinks by the largest shift of any *other* center.
      lower[i] -= (shift[labels[i]] == max_shift) ? second_shift : max_shift;
      if (lower[i] < 0.0f) lower[i] = 0.0f;
    }

    res.trace.push_back(IterStat{it, inertia / static_cast<double>(n),
                                 total.Seconds(), moves});
    res.iterations = it + 1;
    if (it > 0 && moves == 0) break;
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  ClusterState state(data, labels, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
