// Copyright 2026 The gkmeans Authors.

#include "kmeans/init.h"

#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"

namespace gkm {
namespace {

// Batched distances of every data row to one centroid, blockwise so the
// scratch stays cache-resident. `fn(i, dist)` sees rows in order — the
// D^2-sampling updates below depend on that.
template <typename Fn>
void ForEachRowDist(const Matrix& data, const float* center, Fn&& fn) {
  constexpr std::size_t kBlock = 1024;
  float buf[kBlock];
  const std::size_t n = data.rows();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    L2SqrBatch(center, data.Row(b), data.stride(), len, data.cols(), buf);
    for (std::size_t i = 0; i < len; ++i) fn(b + i, buf[i]);
  }
}

}  // namespace

Matrix RandomCentroids(const Matrix& data, std::size_t k, Rng& rng) {
  GKM_CHECK(k > 0 && k <= data.rows());
  const std::vector<std::uint32_t> picks = rng.SampleDistinct(data.rows(), k);
  Matrix c(k, data.cols());
  for (std::size_t r = 0; r < k; ++r) c.SetRow(r, data.Row(picks[r]));
  return c;
}

std::vector<std::uint32_t> BalancedRandomLabels(std::size_t n, std::size_t k,
                                                Rng& rng) {
  GKM_CHECK(k > 0 && k <= n);
  std::vector<std::uint32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::uint32_t>(i % k);
  }
  rng.Shuffle(labels);
  return labels;
}

Matrix KMeansPlusPlus(const Matrix& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK(k > 0 && k <= n);
  Matrix c(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());

  std::size_t first = rng.Index(n);
  c.SetRow(0, data.Row(first));
  for (std::size_t picked = 1; picked < k; ++picked) {
    const float* last = c.Row(picked - 1);
    double total = 0.0;
    ForEachRowDist(data, last, [&](std::size_t i, float fdist) {
      const double dist = fdist;
      if (dist < min_dist[i]) min_dist[i] = dist;
      total += min_dist[i];
    });
    if (total <= 0.0) {
      // Degenerate data (all remaining points coincide with a centroid):
      // fall back to uniform sampling.
      c.SetRow(picked, data.Row(rng.Index(n)));
      continue;
    }
    double target = rng.UniformDouble() * total;
    std::size_t choice = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        choice = i;
        break;
      }
    }
    c.SetRow(picked, data.Row(choice));
  }
  return c;
}

Matrix KMeansParallel(const Matrix& data, std::size_t k, std::size_t rounds,
                      double oversample, Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK(k > 0 && k <= n);
  GKM_CHECK(oversample > 0.0);

  // Phase 1: oversampling. Start from one uniform seed; each round adds
  // every point independently with probability min(1, l * D^2 / cost).
  std::vector<std::uint32_t> sketch;
  sketch.push_back(static_cast<std::uint32_t>(rng.Index(n)));
  std::vector<double> min_dist(n);
  double cost = 0.0;
  ForEachRowDist(data, data.Row(sketch[0]), [&](std::size_t i, float dist) {
    min_dist[i] = dist;
    cost += min_dist[i];
  });
  for (std::size_t r = 0; r < rounds && cost > 0.0; ++r) {
    std::vector<std::uint32_t> fresh;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = oversample * static_cast<double>(k) * min_dist[i] / cost;
      if (rng.UniformDouble() < p) fresh.push_back(static_cast<std::uint32_t>(i));
    }
    for (const std::uint32_t f : fresh) {
      sketch.push_back(f);
      // Refresh distances against the newly added center only.
      ForEachRowDist(data, data.Row(f), [&](std::size_t i, float fdist) {
        const double dist = fdist;
        if (dist < min_dist[i]) min_dist[i] = dist;
      });
    }
    cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) cost += min_dist[i];
  }
  // Ensure at least k candidates.
  while (sketch.size() < k) {
    sketch.push_back(static_cast<std::uint32_t>(rng.Index(n)));
  }

  // Phase 2: weight each candidate by the number of points closest to it,
  // then run weighted k-means++ over the (small) candidate set.
  Matrix cand(sketch.size(), d);
  for (std::size_t s = 0; s < sketch.size(); ++s) {
    cand.SetRow(s, data.Row(sketch[s]));
  }
  std::vector<double> weight(sketch.size(), 0.0);
  {
    std::vector<std::uint32_t> nearest(n);
    AssignNearestBlocked(data, cand, nullptr, nullptr, nearest.data());
    for (std::size_t i = 0; i < n; ++i) weight[nearest[i]] += 1.0;
  }

  Matrix out(k, d);
  std::vector<double> cand_dist(sketch.size(),
                                std::numeric_limits<double>::max());
  // Weighted D^2 sampling over candidates.
  double wtotal = 0.0;
  for (const double w : weight) wtotal += w;
  double target = rng.UniformDouble() * wtotal;
  std::size_t first = 0;
  for (std::size_t s = 0; s < sketch.size(); ++s) {
    target -= weight[s];
    if (target <= 0.0) {
      first = s;
      break;
    }
  }
  out.SetRow(0, cand.Row(first));
  for (std::size_t picked = 1; picked < k; ++picked) {
    const float* last = out.Row(picked - 1);
    double total = 0.0;
    for (std::size_t s = 0; s < sketch.size(); ++s) {
      const double dist = L2Sqr(cand.Row(s), last, d);
      if (dist < cand_dist[s]) cand_dist[s] = dist;
      total += weight[s] * cand_dist[s];
    }
    if (total <= 0.0) {
      out.SetRow(picked, cand.Row(rng.Index(sketch.size())));
      continue;
    }
    double t2 = rng.UniformDouble() * total;
    std::size_t choice = sketch.size() - 1;
    for (std::size_t s = 0; s < sketch.size(); ++s) {
      t2 -= weight[s] * cand_dist[s];
      if (t2 <= 0.0) {
        choice = s;
        break;
      }
    }
    out.SetRow(picked, cand.Row(choice));
  }
  return out;
}

std::vector<std::uint32_t> AssignAll(const Matrix& data,
                                     const Matrix& centroids) {
  std::vector<std::uint32_t> labels(data.rows());
  AssignNearestBlocked(data, centroids, nullptr, nullptr, labels.data());
  return labels;
}

}  // namespace gkm
