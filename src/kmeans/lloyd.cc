// Copyright 2026 The gkmeans Authors.

#include "kmeans/lloyd.h"

#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

// Re-seeds every empty cluster with the point that is currently farthest
// from its assigned centroid, stealing it from its (necessarily non-
// singleton) donor cluster.
void FixEmptyClusters(const Matrix& data, std::vector<std::uint32_t>& labels,
                      std::vector<std::uint32_t>& counts,
                      const std::vector<float>& dist_to_assigned) {
  const std::size_t k = counts.size();
  for (std::size_t r = 0; r < k; ++r) {
    if (counts[r] != 0) continue;
    std::size_t worst = 0;
    float worst_dist = -1.0f;
    for (std::size_t i = 0; i < data.rows(); ++i) {
      if (counts[labels[i]] > 1 && dist_to_assigned[i] > worst_dist) {
        worst_dist = dist_to_assigned[i];
        worst = i;
      }
    }
    --counts[labels[worst]];
    labels[worst] = static_cast<std::uint32_t>(r);
    ++counts[r];
  }
}

}  // namespace

ClusteringResult LloydKMeans(const Matrix& data, const LloydParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = params.use_kmeanspp ? "kmeans++" : "kmeans";
  Rng rng(params.seed);

  Timer total;
  Matrix centroids = params.use_kmeanspp ? KMeansPlusPlus(data, k, rng)
                                         : RandomCentroids(data, k, rng);
  res.init_seconds = total.Seconds();

  std::vector<std::uint32_t> labels(n, 0);
  std::vector<std::uint32_t> counts(k, 0);
  std::vector<float> dist_to_assigned(n, 0.0f);
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint32_t> fresh(n, 0);

  // Norm caches for the blocked assignment kernel: point norms are fixed
  // for the whole run; centroid norms are invalidated once per update step
  // instead of being recomputed once per point.
  std::vector<float> point_norms(n);
  RowNormsSqr(data, point_norms.data());
  RowNormCache centroid_norms;

  Timer iter_timer;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // Assignment step: blocked nearest-row over all points (exact labels
    // and distances — see AssignNearestBlocked's contract).
    AssignNearestBlocked(data, centroids, point_norms.data(),
                         centroid_norms.Refresh(centroids), fresh.data(),
                         dist_to_assigned.data());
    std::size_t moves = 0;
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (it == 0 || fresh[i] != labels[i]) {
        ++moves;
        labels[i] = fresh[i];
      }
      inertia += dist_to_assigned[i];
    }
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[labels[i]];
    FixEmptyClusters(data, labels, counts, dist_to_assigned);

    // Update step.
    sums.assign(k * d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* x = data.Row(i);
      double* s = sums.data() + labels[i] * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
    }
    for (std::size_t r = 0; r < k; ++r) {
      if (counts[r] == 0) continue;
      const double inv = 1.0 / counts[r];
      float* c = centroids.Row(r);
      const double* s = sums.data() + r * d;
      for (std::size_t j = 0; j < d; ++j) c[j] = static_cast<float>(s[j] * inv);
    }
    centroid_norms.InvalidateAll();

    res.trace.push_back(IterStat{it, inertia / static_cast<double>(n),
                                 total.Seconds(), moves});
    res.iterations = it + 1;
    const bool converged =
        (it > 0 && moves == 0) ||
        (params.tol_moves > 0.0 &&
         static_cast<double>(moves) <= params.tol_moves * static_cast<double>(n));
    if (converged) break;
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  ClusterState state(data, labels, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
