// Copyright 2026 The gkmeans Authors.
// Two-means (2M) tree (Alg. 1, [31]): hierarchical bisecting that always
// splits the largest cluster with a boost-2-means and then rebalances the
// two halves to equal size. O(d n log k) — cheaper than a single Lloyd
// iteration once k is non-trivial — which is why GK-means uses it as its
// initializer (§3.2) and why Alg. 3 can afford to call it every round.

#ifndef GKM_KMEANS_TWO_MEANS_TREE_H_
#define GKM_KMEANS_TWO_MEANS_TREE_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "kmeans/types.h"

namespace gkm {

/// Options for the 2M tree.
struct TwoMeansParams {
  std::size_t k = 8;
  std::size_t bisect_epochs = 6;  ///< BKM-2 epochs per bisection
  std::uint64_t seed = 42;
};

/// Partitions `data` into exactly `k` clusters of near-equal size
/// (|S_a| - |S_b| <= 1 after every bisection). Returns the label vector.
std::vector<std::uint32_t> TwoMeansTree(const Matrix& data,
                                        const TwoMeansParams& params);

/// Convenience overload drawing randomness from an external Rng so callers
/// embedding the tree in a larger loop (Alg. 3) stay deterministic.
std::vector<std::uint32_t> TwoMeansTree(const Matrix& data,
                                        const TwoMeansParams& params,
                                        Rng& rng);

/// Full ClusteringResult wrapper (distortion/centroids/timings) for use as
/// a standalone method in benches.
ClusteringResult TwoMeansTreeClustering(const Matrix& data,
                                        const TwoMeansParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_TWO_MEANS_TREE_H_
