// Copyright 2026 The gkmeans Authors.
// Traditional k-means (Lloyd's algorithm, [5][6]) — the reference baseline
// in every experiment of the paper. O(n k d) per iteration.

#ifndef GKM_KMEANS_LLOYD_H_
#define GKM_KMEANS_LLOYD_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for LloydKMeans.
struct LloydParams {
  std::size_t k = 8;
  std::size_t max_iters = 30;   ///< paper fixes 30 iterations in §5.4
  bool use_kmeanspp = false;    ///< k-means++ instead of random seeding
  double tol_moves = 0.0;       ///< stop when moved fraction <= tol_moves
  std::uint64_t seed = 42;
};

/// Runs Lloyd's algorithm on `data`. Empty clusters are re-seeded with the
/// point currently farthest from its assigned centroid.
ClusteringResult LloydKMeans(const Matrix& data, const LloydParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_LLOYD_H_
