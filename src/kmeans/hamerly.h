// Copyright 2026 The gkmeans Authors.
// Hamerly's accelerated k-means (SDM 2010): like Elkan exact-equivalent to
// Lloyd, but with a single lower bound per point — O(n) extra memory
// instead of O(n k) — trading some pruning power for scalability in k.
// Included as the second member of the "triangle-inequality family" the
// paper contrasts GK-means against.

#ifndef GKM_KMEANS_HAMERLY_H_
#define GKM_KMEANS_HAMERLY_H_

#include <cstdint>

#include "kmeans/types.h"

namespace gkm {

/// Options for HamerlyKMeans.
struct HamerlyParams {
  std::size_t k = 8;
  std::size_t max_iters = 30;
  bool use_kmeanspp = false;
  std::uint64_t seed = 42;
};

/// Runs Hamerly's exact accelerated k-means.
ClusteringResult HamerlyKMeans(const Matrix& data, const HamerlyParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_HAMERLY_H_
