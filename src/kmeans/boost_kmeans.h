// Copyright 2026 The gkmeans Authors.
// Boost k-means (BKM) [16]: incremental stochastic optimization of the
// composite-vector objective I (Eqn. 2). Each epoch visits every sample in
// a fresh random order and greedily applies the single-sample move with the
// largest positive Delta-I (Eqn. 3), scanning all k clusters. This is the
// quality reference the paper builds GK-means upon (§3.1): same per-epoch
// complexity as Lloyd, considerably better local optima.

#ifndef GKM_KMEANS_BOOST_KMEANS_H_
#define GKM_KMEANS_BOOST_KMEANS_H_

#include <cstdint>
#include <vector>

#include "kmeans/types.h"

namespace gkm {

/// Options for BoostKMeans.
struct BkmParams {
  std::size_t k = 8;
  std::size_t max_iters = 30;       ///< epochs over the dataset
  std::uint64_t seed = 42;
  /// When non-empty, used as the initial partition instead of a balanced
  /// random one (GK-means passes the 2M-tree labels through this).
  std::vector<std::uint32_t> init_labels;
};

/// Runs full (unaccelerated) boost k-means.
ClusteringResult BoostKMeans(const Matrix& data, const BkmParams& params);

}  // namespace gkm

#endif  // GKM_KMEANS_BOOST_KMEANS_H_
