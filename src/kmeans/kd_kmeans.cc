// Copyright 2026 The gkmeans Authors.

#include "kmeans/kd_kmeans.h"

#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/kd_tree.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {

ClusteringResult KdKMeans(const Matrix& data, const KdKMeansParams& params,
                          KdKMeansStats* stats) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = "kd-kmeans";
  Rng rng(params.seed);

  Timer total;
  Matrix centroids = RandomCentroids(data, k, rng);
  res.init_seconds = total.Seconds();

  std::vector<std::uint32_t> labels(n, 0);
  std::vector<std::uint32_t> counts(k, 0);
  std::vector<double> sums(k * d, 0.0);

  Timer iter_timer;
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    // Assignment through a fresh centroid tree.
    const KdTree tree(centroids, params.leaf_size);
    std::size_t moves = 0;
    std::size_t compared = 0;
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      float dist = 0.0f;
      const std::uint32_t best = tree.Nearest(data.Row(i), &dist, &compared);
      if (it == 0 || best != labels[i]) {
        ++moves;
        labels[i] = best;
      }
      inertia += dist;
    }
    if (stats != nullptr) {
      stats->avg_centroids_compared.push_back(
          static_cast<double>(compared) / static_cast<double>(n));
    }

    // Standard Lloyd update (empty clusters keep their centroid).
    sums.assign(k * d, 0.0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* x = data.Row(i);
      double* s = sums.data() + labels[i] * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
      ++counts[labels[i]];
    }
    for (std::size_t r = 0; r < k; ++r) {
      if (counts[r] == 0) continue;
      const double inv = 1.0 / counts[r];
      float* c = centroids.Row(r);
      const double* s = sums.data() + r * d;
      for (std::size_t j = 0; j < d; ++j) c[j] = static_cast<float>(s[j] * inv);
    }

    res.trace.push_back(IterStat{it, inertia / static_cast<double>(n),
                                 total.Seconds(), moves});
    res.iterations = it + 1;
    if (it > 0 && moves == 0) break;
  }
  res.iter_seconds = iter_timer.Seconds();
  res.total_seconds = total.Seconds();

  ClusterState state(data, labels, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
