// Copyright 2026 The gkmeans Authors.
// Result and trace types shared by every clustering algorithm in the
// library, so benches can treat Lloyd / BKM / Mini-Batch / closure /
// GK-means uniformly.

#ifndef GKM_KMEANS_TYPES_H_
#define GKM_KMEANS_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace gkm {

/// Distortion/time pair recorded after each iteration — the raw series
/// behind the paper's Fig. 5 plots.
struct IterStat {
  std::size_t iteration = 0;
  double distortion = 0.0;     ///< E of Eqn. 4 at the end of this iteration
  double elapsed_seconds = 0.0;///< cumulative wall-clock since algorithm start
  std::size_t moves = 0;       ///< samples that changed cluster this iteration
};

/// Output of a clustering run.
struct ClusteringResult {
  std::vector<std::uint32_t> assignments;  ///< cluster id per input row
  Matrix centroids;                        ///< k x d cluster means
  double distortion = 0.0;                 ///< final E (Eqn. 4)
  std::size_t iterations = 0;              ///< iterations actually executed
  double init_seconds = 0.0;               ///< seeding / graph / tree time
  double iter_seconds = 0.0;               ///< optimization loop time
  double total_seconds = 0.0;              ///< init + iter
  std::vector<IterStat> trace;             ///< per-iteration series
  std::string method;                      ///< identifier for reports
};

}  // namespace gkm

#endif  // GKM_KMEANS_TYPES_H_
