// Copyright 2026 The gkmeans Authors.

#include "kmeans/mini_batch.h"

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {

ClusteringResult MiniBatchKMeans(const Matrix& data,
                                 const MiniBatchParams& params) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);
  const std::size_t batch = std::min(params.batch_size, n);

  ClusteringResult res;
  res.method = "mini-batch";
  Rng rng(params.seed);

  Timer total;
  Matrix centroids = RandomCentroids(data, k, rng);
  std::vector<double> counts(k, 0.0);  // per-center streaming counts
  res.init_seconds = total.Seconds();

  // Norm caches for the blocked assignment kernel. Point norms are fixed;
  // centroid norms survive across iterations and only the centers a
  // gradient step touched are recomputed.
  std::vector<float> point_norms(n);
  RowNormsSqr(data, point_norms.data());
  RowNormCache centroid_norms;

  Timer iter_timer;
  std::vector<std::uint32_t> batch_ids(batch);
  std::vector<std::uint32_t> batch_label(batch);
  std::vector<const float*> batch_rows(batch);
  std::vector<float> batch_norms(batch);
  std::vector<std::uint32_t> all_labels(n);
  for (std::size_t it = 0; it < params.max_iters; ++it) {
    for (std::size_t b = 0; b < batch; ++b) {
      batch_ids[b] = static_cast<std::uint32_t>(rng.Index(n));
      batch_rows[b] = data.Row(batch_ids[b]);
      batch_norms[b] = point_norms[batch_ids[b]];
    }
    // Assign the cached batch (blocked one-to-many kernel over the sampled
    // rows), then take per-center gradient steps.
    AssignNearestBlockedGather(batch_rows.data(), batch_norms.data(), batch,
                               centroids, centroid_norms.Refresh(centroids),
                               batch_label.data());
    for (std::size_t b = 0; b < batch; ++b) {
      const std::uint32_t c = batch_label[b];
      counts[c] += 1.0;
      const float eta = static_cast<float>(1.0 / counts[c]);
      float* cc = centroids.Row(c);
      const float* x = data.Row(batch_ids[b]);
      for (std::size_t j = 0; j < d; ++j) {
        cc[j] += eta * (x[j] - cc[j]);
      }
      centroid_norms.Invalidate(c);
    }

    double distortion = -1.0;
    if (params.eval_every > 0 && (it + 1) % params.eval_every == 0) {
      AssignNearestBlocked(data, centroids, point_norms.data(),
                           centroid_norms.Refresh(centroids),
                           all_labels.data());
      distortion = Inertia(data, centroids, all_labels);
    }
    res.trace.push_back(IterStat{it, distortion, total.Seconds(), batch});
    res.iterations = it + 1;
  }
  res.iter_seconds = iter_timer.Seconds();

  // Final full assignment for a comparable E (Eqn. 4).
  AssignNearestBlocked(data, centroids, point_norms.data(),
                       centroid_norms.Refresh(centroids), all_labels.data());
  res.assignments = all_labels;
  res.total_seconds = total.Seconds();
  ClusterState state(data, res.assignments, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  return res;
}

}  // namespace gkm
