// Copyright 2026 The gkmeans Authors.
// Seeding strategies for the k-means family: random centroid sampling,
// balanced random partitions (BKM's native init) and k-means++ [14].

#ifndef GKM_KMEANS_INIT_H_
#define GKM_KMEANS_INIT_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace gkm {

/// k distinct data rows drawn uniformly at random, copied as centroids.
Matrix RandomCentroids(const Matrix& data, std::size_t k, Rng& rng);

/// A random label vector where every cluster receives either
/// floor(n/k) or ceil(n/k) points — the balanced partition BKM starts from.
std::vector<std::uint32_t> BalancedRandomLabels(std::size_t n, std::size_t k,
                                                Rng& rng);

/// k-means++ seeding: iterative D^2-weighted sampling. O(n k d).
Matrix KMeansPlusPlus(const Matrix& data, std::size_t k, Rng& rng);

/// Scalable k-means++ (k-means||, Bahmani et al. [21]): `rounds` passes
/// each sampling points with probability proportional to l * D^2/cost,
/// then reducing the oversampled set to k centers by weighted k-means++.
/// Far fewer passes over the data than k-means++ (rounds ~ 5 vs k).
Matrix KMeansParallel(const Matrix& data, std::size_t k, std::size_t rounds,
                      double oversample, Rng& rng);

/// Assigns every row of `data` to its nearest row of `centroids`.
std::vector<std::uint32_t> AssignAll(const Matrix& data,
                                     const Matrix& centroids);

}  // namespace gkm

#endif  // GKM_KMEANS_INIT_H_
