// Copyright 2026 The gkmeans Authors.

#include "kmeans/two_means_tree.h"

#include <algorithm>
#include <queue>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"

namespace gkm {
namespace {

// Incremental 2-means state over a subset of rows: composite vectors and
// counts for the two sides, mirroring ClusterState but specialized (and
// allocation-light) for the innermost loop of the tree.
//
// Unlike ClusterState, the composites here are kept in *float*: bisection
// is a throwaway heuristic (the equal-size adjustment re-ranks all points
// afterwards), the per-subset member counts are modest, and pure-float
// arithmetic auto-vectorizes at full width — this inner loop dominates
// graph construction at high dimensionality.
struct BisectState {
  std::vector<float> d0, d1;
  double n0 = 0.0, n1 = 0.0;
  double norm0 = 0.0, norm1 = 0.0;

  void Build(const Matrix& data, const std::vector<std::uint32_t>& members,
             const std::vector<std::uint8_t>& side) {
    const std::size_t dim = data.cols();
    d0.assign(dim, 0.0f);
    d1.assign(dim, 0.0f);
    n0 = n1 = 0.0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      const float* GKM_RESTRICT x = data.Row(members[m]);
      float* GKM_RESTRICT dst = side[m] == 0 ? d0.data() : d1.data();
      for (std::size_t j = 0; j < dim; ++j) dst[j] += x[j];
      (side[m] == 0 ? n0 : n1) += 1.0;
    }
    norm0 = NormSqr(d0.data(), dim);
    norm1 = NormSqr(d1.data(), dim);
  }

  // Delta-I (Eqn. 3) for moving `x` to the other side; `from0` says which
  // side it currently occupies. The two interleaved dots run as one SSE
  // register of four lanes [dot_s0, dot_s1, dot_d0, dot_d1] on x86 —
  // bit-identical to the scalar even/odd accumulator loop, which remains
  // the portable fallback.
  double MoveGain(const float* GKM_RESTRICT x, float xn, bool from0,
                  std::size_t dim) const {
    const float* GKM_RESTRICT src = (from0 ? d0 : d1).data();
    const float* GKM_RESTRICT dst = (from0 ? d1 : d0).data();
    const double ns = from0 ? n0 : n1;
    const double nd = from0 ? n1 : n0;
    const double norm_s = from0 ? norm0 : norm1;
    const double norm_d = from0 ? norm1 : norm0;
    float dot_s0 = 0.0f, dot_s1 = 0.0f, dot_d0 = 0.0f, dot_d1 = 0.0f;
    std::size_t j = 0;
#if defined(__SSE2__)
    __m128 acc = _mm_setzero_ps();
    for (; j + 2 <= dim; j += 2) {
      const __m128 xv = _mm_castsi128_ps(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + j)));
      const __m128 sv = _mm_castsi128_ps(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + j)));
      const __m128 dv = _mm_castsi128_ps(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(dst + j)));
      acc = _mm_add_ps(
          acc, _mm_mul_ps(_mm_movelh_ps(xv, xv), _mm_movelh_ps(sv, dv)));
    }
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, acc);
    dot_s0 = lanes[0];
    dot_s1 = lanes[1];
    dot_d0 = lanes[2];
    dot_d1 = lanes[3];
#else
    for (; j + 2 <= dim; j += 2) {
      dot_s0 += src[j] * x[j];
      dot_s1 += src[j + 1] * x[j + 1];
      dot_d0 += dst[j] * x[j];
      dot_d1 += dst[j + 1] * x[j + 1];
    }
#endif
    if (j < dim) {
      dot_s0 += src[j] * x[j];
      dot_d0 += dst[j] * x[j];
    }
    const double dot_s = static_cast<double>(dot_s0) + dot_s1;
    const double dot_d = static_cast<double>(dot_d0) + dot_d1;
    const double grown = norm_d + 2.0 * dot_d + xn;
    const double shrunk = norm_s - 2.0 * dot_s + xn;
    return grown / (nd + 1.0) + shrunk / (ns - 1.0) - norm_d / nd -
           norm_s / ns;
  }

  void Move(const float* GKM_RESTRICT x, bool from0, std::size_t dim) {
    float* GKM_RESTRICT src = (from0 ? d0 : d1).data();
    float* GKM_RESTRICT dst = (from0 ? d1 : d0).data();
    float ns0 = 0.0f, ns1 = 0.0f, nd0 = 0.0f, nd1 = 0.0f;
    std::size_t j = 0;
    for (; j + 2 <= dim; j += 2) {
      src[j] -= x[j];
      src[j + 1] -= x[j + 1];
      dst[j] += x[j];
      dst[j + 1] += x[j + 1];
      ns0 += src[j] * src[j];
      ns1 += src[j + 1] * src[j + 1];
      nd0 += dst[j] * dst[j];
      nd1 += dst[j + 1] * dst[j + 1];
    }
    if (j < dim) {
      src[j] -= x[j];
      dst[j] += x[j];
      ns0 += src[j] * src[j];
      nd0 += dst[j] * dst[j];
    }
    (from0 ? norm0 : norm1) = static_cast<double>(ns0) + ns1;
    (from0 ? norm1 : norm0) = static_cast<double>(nd0) + nd1;
    (from0 ? n0 : n1) -= 1.0;
    (from0 ? n1 : n0) += 1.0;
  }
};

// Bisects `members` into two near-equal halves with boost-2-means followed
// by the equal-size adjustment of Alg. 1 step 9. Returns the side of each
// member (0/1).
std::vector<std::uint8_t> BisectEqual(const Matrix& data,
                                      const std::vector<std::uint32_t>& members,
                                      std::size_t epochs, Rng& rng) {
  const std::size_t s = members.size();
  const std::size_t dim = data.cols();
  GKM_CHECK(s >= 2);

  // Balanced random initial split.
  std::vector<std::uint8_t> side(s);
  std::vector<std::uint32_t> perm(s);
  for (std::size_t m = 0; m < s; ++m) perm[m] = static_cast<std::uint32_t>(m);
  rng.Shuffle(perm);
  for (std::size_t m = 0; m < s; ++m) side[perm[m]] = m < s / 2 ? 0 : 1;

  BisectState st;
  st.Build(data, members, side);

  // Member norms in one gathered batch (||x||^2 == L2Sqr(0, x) bit-for-bit
  // — same trick RowNormsSqrBatch uses for strided rows).
  std::vector<const float*> member_rows(s);
  for (std::size_t m = 0; m < s; ++m) member_rows[m] = data.Row(members[m]);
  std::vector<float> norms(s);
  {
    std::vector<float> zeros(dim, 0.0f);
    L2SqrBatchGather(zeros.data(), member_rows.data(), s, dim, norms.data());
  }

  // Boost-2-means epochs (incremental, immediate moves).
  for (std::size_t e = 0; e < epochs; ++e) {
    rng.Shuffle(perm);
    std::size_t moves = 0;
    for (const std::uint32_t m : perm) {
      const bool from0 = side[m] == 0;
      if ((from0 ? st.n0 : st.n1) < 2.0) continue;
      const float* x = data.Row(members[m]);
      if (st.MoveGain(x, norms[m], from0, dim) > 0.0) {
        st.Move(x, from0, dim);
        side[m] = from0 ? 1 : 0;
        ++moves;
      }
    }
    if (moves == 0) break;
  }

  // Equal-size adjustment: rank members by affinity difference between the
  // two centroids and split at the median.
  std::vector<float> c0(dim), c1(dim);
  const double inv0 = st.n0 > 0.0 ? 1.0 / st.n0 : 0.0;
  const double inv1 = st.n1 > 0.0 ? 1.0 / st.n1 : 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    c0[j] = static_cast<float>(st.d0[j] * inv0);
    c1[j] = static_cast<float>(st.d1[j] * inv1);
  }
  // Affinity margins via two gathered one-to-many batches (centroid as the
  // shared query): identical floats to the per-member L2Sqr pairs.
  std::vector<float> dist0(s), dist1(s);
  L2SqrBatchGather(c0.data(), member_rows.data(), s, dim, dist0.data());
  L2SqrBatchGather(c1.data(), member_rows.data(), s, dim, dist1.data());
  std::vector<std::pair<float, std::uint32_t>> margin(s);
  for (std::size_t m = 0; m < s; ++m) {
    margin[m] = {dist0[m] - dist1[m], static_cast<std::uint32_t>(m)};
  }
  std::sort(margin.begin(), margin.end());
  const std::size_t half = (s + 1) / 2;
  for (std::size_t rank = 0; rank < s; ++rank) {
    side[margin[rank].second] = rank < half ? 0 : 1;
  }
  return side;
}

}  // namespace

std::vector<std::uint32_t> TwoMeansTree(const Matrix& data,
                                        const TwoMeansParams& params,
                                        Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  std::vector<std::vector<std::uint32_t>> clusters;
  clusters.reserve(2 * k);
  clusters.emplace_back(n);
  for (std::size_t i = 0; i < n; ++i) {
    clusters[0][i] = static_cast<std::uint32_t>(i);
  }

  // Max-heap on (size, cluster slot): always split the largest cluster.
  using Entry = std::pair<std::size_t, std::size_t>;
  std::priority_queue<Entry> heap;
  heap.emplace(n, 0);

  while (clusters.size() < k) {
    const auto [size, slot] = heap.top();
    heap.pop();
    GKM_CHECK_MSG(size >= 2, "cannot split a singleton; is k <= n?");
    std::vector<std::uint32_t> members = std::move(clusters[slot]);
    const std::vector<std::uint8_t> side =
        BisectEqual(data, members, params.bisect_epochs, rng);

    std::vector<std::uint32_t> left, right;
    left.reserve(members.size() / 2 + 1);
    right.reserve(members.size() / 2 + 1);
    for (std::size_t m = 0; m < members.size(); ++m) {
      (side[m] == 0 ? left : right).push_back(members[m]);
    }
    GKM_CHECK(!left.empty() && !right.empty());

    clusters[slot] = std::move(left);
    heap.emplace(clusters[slot].size(), slot);
    clusters.push_back(std::move(right));
    heap.emplace(clusters.back().size(), clusters.size() - 1);
  }

  std::vector<std::uint32_t> labels(n);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::uint32_t i : clusters[c]) {
      labels[i] = static_cast<std::uint32_t>(c);
    }
  }
  return labels;
}

std::vector<std::uint32_t> TwoMeansTree(const Matrix& data,
                                        const TwoMeansParams& params) {
  Rng rng(params.seed);
  return TwoMeansTree(data, params, rng);
}

ClusteringResult TwoMeansTreeClustering(const Matrix& data,
                                        const TwoMeansParams& params) {
  ClusteringResult res;
  res.method = "2m-tree";
  Timer total;
  res.assignments = TwoMeansTree(data, params);
  res.init_seconds = total.Seconds();
  res.iter_seconds = 0.0;
  res.total_seconds = res.init_seconds;
  res.iterations = 1;
  ClusterState state(data, res.assignments, params.k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.trace.push_back(IterStat{0, res.distortion, res.total_seconds, 0});
  return res;
}

}  // namespace gkm
