// Copyright 2026 The gkmeans Authors.

#include "kmeans/bisecting.h"

#include <queue>

#include "common/distance.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/cluster_state.h"

namespace gkm {
namespace {

// Sum of squared distances of `members` to their mean — the split
// priority. Computed via the composite-vector identity to stay O(|S| d).
double DistortionContribution(const Matrix& data,
                              const std::vector<std::uint32_t>& members) {
  const std::size_t dim = data.cols();
  std::vector<double> composite(dim, 0.0);
  double sum_norms = 0.0;
  for (const std::uint32_t i : members) {
    const float* x = data.Row(i);
    double norm = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      composite[j] += x[j];
      norm += static_cast<double>(x[j]) * x[j];
    }
    sum_norms += norm;
  }
  double comp_norm = 0.0;
  for (std::size_t j = 0; j < dim; ++j) comp_norm += composite[j] * composite[j];
  return sum_norms - comp_norm / static_cast<double>(members.size());
}

// Boost-2-means split of `members` (no equal-size adjustment — this is
// plain bisecting, not the 2M tree). Returns per-member side bits.
std::vector<std::uint8_t> Bisect(const Matrix& data,
                                 const std::vector<std::uint32_t>& members,
                                 std::size_t epochs, Rng& rng) {
  const std::size_t s = members.size();
  const std::size_t dim = data.cols();
  std::vector<std::uint8_t> side(s);
  std::vector<std::uint32_t> perm(s);
  for (std::size_t m = 0; m < s; ++m) perm[m] = static_cast<std::uint32_t>(m);
  rng.Shuffle(perm);
  for (std::size_t m = 0; m < s; ++m) side[perm[m]] = m < s / 2 ? 0 : 1;

  // Local composite state (float; see two_means_tree.cc for rationale).
  std::vector<float> d0(dim, 0.0f), d1(dim, 0.0f);
  double n0 = 0.0, n1 = 0.0, norm0 = 0.0, norm1 = 0.0;
  for (std::size_t m = 0; m < s; ++m) {
    const float* x = data.Row(members[m]);
    float* dst = side[m] == 0 ? d0.data() : d1.data();
    for (std::size_t j = 0; j < dim; ++j) dst[j] += x[j];
    (side[m] == 0 ? n0 : n1) += 1.0;
  }
  norm0 = NormSqr(d0.data(), dim);
  norm1 = NormSqr(d1.data(), dim);

  for (std::size_t e = 0; e < epochs; ++e) {
    rng.Shuffle(perm);
    std::size_t moves = 0;
    for (const std::uint32_t m : perm) {
      const bool from0 = side[m] == 0;
      if ((from0 ? n0 : n1) < 2.0) continue;
      const float* GKM_RESTRICT x = data.Row(members[m]);
      const float* GKM_RESTRICT src = from0 ? d0.data() : d1.data();
      const float* GKM_RESTRICT dst = from0 ? d1.data() : d0.data();
      float dot_s = 0.0f, dot_d = 0.0f;
      for (std::size_t j = 0; j < dim; ++j) {
        dot_s += src[j] * x[j];
        dot_d += dst[j] * x[j];
      }
      const float xn = NormSqr(x, dim);
      const double ns = from0 ? n0 : n1;
      const double nd = from0 ? n1 : n0;
      const double norm_s = from0 ? norm0 : norm1;
      const double norm_d = from0 ? norm1 : norm0;
      const double gain = (norm_d + 2.0 * dot_d + xn) / (nd + 1.0) +
                          (norm_s - 2.0 * dot_s + xn) / (ns - 1.0) -
                          norm_d / nd - norm_s / ns;
      if (gain > 0.0) {
        float* GKM_RESTRICT msrc = from0 ? d0.data() : d1.data();
        float* GKM_RESTRICT mdst = from0 ? d1.data() : d0.data();
        float new_ns = 0.0f, new_nd = 0.0f;
        for (std::size_t j = 0; j < dim; ++j) {
          msrc[j] -= x[j];
          mdst[j] += x[j];
          new_ns += msrc[j] * msrc[j];
          new_nd += mdst[j] * mdst[j];
        }
        (from0 ? norm0 : norm1) = new_ns;
        (from0 ? norm1 : norm0) = new_nd;
        (from0 ? n0 : n1) -= 1.0;
        (from0 ? n1 : n0) += 1.0;
        side[m] = from0 ? 1 : 0;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  // Guard against a degenerate all-one-side split (possible on duplicate
  // data): force a minimal split.
  if (n0 == 0.0 || n1 == 0.0) {
    side.assign(s, 0);
    side[0] = 1;
  }
  return side;
}

}  // namespace

ClusteringResult BisectingKMeans(const Matrix& data,
                                 const BisectingParams& params) {
  const std::size_t n = data.rows();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && k <= n);

  ClusteringResult res;
  res.method = "bisecting";
  Rng rng(params.seed);
  Timer total;

  std::vector<std::vector<std::uint32_t>> clusters;
  clusters.reserve(2 * k);
  clusters.emplace_back(n);
  for (std::size_t i = 0; i < n; ++i) {
    clusters[0][i] = static_cast<std::uint32_t>(i);
  }
  // Max-heap on distortion contribution: split where the error lives.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry> heap;
  heap.emplace(DistortionContribution(data, clusters[0]), 0);

  while (clusters.size() < k) {
    // Pop the splittable cluster with the largest contribution. Singleton
    // clusters have zero contribution but may still need splitting when
    // k approaches n; skip-and-retry handles both.
    auto [contrib, slot] = heap.top();
    heap.pop();
    if (clusters[slot].size() < 2) {
      // Re-queue at the bottom; find any splittable cluster instead.
      std::size_t fallback = clusters.size();
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        if (clusters[c].size() >= 2) {
          fallback = c;
          break;
        }
      }
      GKM_CHECK_MSG(fallback < clusters.size(), "no splittable cluster left");
      heap.emplace(contrib, slot);
      slot = fallback;
    }
    std::vector<std::uint32_t> members = std::move(clusters[slot]);
    const std::vector<std::uint8_t> side =
        Bisect(data, members, params.bisect_epochs, rng);
    std::vector<std::uint32_t> left, right;
    for (std::size_t m = 0; m < members.size(); ++m) {
      (side[m] == 0 ? left : right).push_back(members[m]);
    }
    GKM_CHECK(!left.empty() && !right.empty());
    clusters[slot] = std::move(left);
    heap.emplace(DistortionContribution(data, clusters[slot]), slot);
    clusters.push_back(std::move(right));
    heap.emplace(DistortionContribution(data, clusters.back()),
                 clusters.size() - 1);
  }

  std::vector<std::uint32_t> labels(n);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::uint32_t i : clusters[c]) {
      labels[i] = static_cast<std::uint32_t>(c);
    }
  }
  res.iterations = k - 1;  // number of bisections
  res.init_seconds = 0.0;
  res.iter_seconds = total.Seconds();
  res.total_seconds = res.iter_seconds;

  ClusterState state(data, labels, k);
  res.distortion = state.Distortion();
  res.centroids = state.Centroids();
  res.trace.push_back(IterStat{0, res.distortion, res.total_seconds, 0});
  res.assignments = std::move(labels);
  return res;
}

}  // namespace gkm
