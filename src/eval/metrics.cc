// Copyright 2026 The gkmeans Authors.

#include "eval/metrics.h"

#include <algorithm>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"

namespace gkm {

double AverageDistortion(const Matrix& data,
                         const std::vector<std::uint32_t>& labels,
                         std::size_t k) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK(labels.size() == n);
  GKM_CHECK(n > 0);
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint32_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    GKM_CHECK(labels[i] < k);
    const float* x = data.Row(i);
    double* s = sums.data() + labels[i] * d;
    for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
    ++counts[labels[i]];
  }
  Matrix centroids(k, d);
  for (std::size_t r = 0; r < k; ++r) {
    if (counts[r] == 0) continue;
    const double inv = 1.0 / counts[r];
    float* c = centroids.Row(r);
    const double* s = sums.data() + r * d;
    for (std::size_t j = 0; j < d; ++j) c[j] = static_cast<float>(s[j] * inv);
  }
  return Inertia(data, centroids, labels);
}

double Inertia(const Matrix& data, const Matrix& centroids,
               const std::vector<std::uint32_t>& labels) {
  GKM_CHECK(labels.size() == data.rows());
  // Grouped one-to-many batches: each centroid is the shared query, its
  // members the gathered rows. Per-pair float distances are bit-identical
  // to the scalar loop; only the double accumulation order changes (by
  // cluster instead of by row), which moves the total by O(1e-12)
  // relative — far inside every consumer's tolerance.
  const std::size_t k = centroids.rows();
  std::vector<std::vector<const float*>> members(k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    GKM_CHECK(labels[i] < k);
    members[labels[i]].push_back(data.Row(i));
  }
  double total = 0.0;
  std::vector<float> dist;
  for (std::size_t r = 0; r < k; ++r) {
    if (members[r].empty()) continue;
    dist.resize(members[r].size());
    L2SqrBatchGather(centroids.Row(r), members[r].data(), members[r].size(),
                     data.cols(), dist.data());
    for (const float v : dist) total += v;
  }
  return total / static_cast<double>(data.rows());
}

double GraphRecallAt1(const KnnGraph& graph, const KnnGraph& truth) {
  return GraphRecallAtK(graph, truth, 1);
}

double GraphRecallAtK(const KnnGraph& graph, const KnnGraph& truth,
                      std::size_t at) {
  const std::size_t n = graph.num_nodes();
  GKM_CHECK(truth.num_nodes() == n);
  GKM_CHECK(at > 0);
  GKM_CHECK_MSG(truth.k() >= at, "ground truth is shallower than `at`");
  double hits = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> true_top = truth.SortedNeighbors(i);
    const std::vector<Neighbor>& approx = graph.NeighborsOf(i);
    std::size_t found = 0;
    const std::size_t limit = std::min(at, true_top.size());
    for (std::size_t r = 0; r < limit; ++r) {
      const std::uint32_t want = true_top[r].id;
      for (const Neighbor& nb : approx) {
        if (nb.id == want) {
          ++found;
          break;
        }
      }
    }
    hits += static_cast<double>(found) / static_cast<double>(at);
  }
  return hits / static_cast<double>(n);
}

double SampledRecallAt1(const KnnGraph& graph,
                        const std::vector<std::uint32_t>& subset,
                        const std::vector<std::uint32_t>& truth_ids) {
  GKM_CHECK(subset.size() == truth_ids.size());
  GKM_CHECK(!subset.empty());
  double hits = 0.0;
  for (std::size_t s = 0; s < subset.size(); ++s) {
    for (const Neighbor& nb : graph.NeighborsOf(subset[s])) {
      if (nb.id == truth_ids[s]) {
        hits += 1.0;
        break;
      }
    }
  }
  return hits / static_cast<double>(subset.size());
}

std::vector<double> CoOccurrenceByRank(const KnnGraph& truth,
                                       const std::vector<std::uint32_t>& labels,
                                       std::size_t max_rank) {
  const std::size_t n = truth.num_nodes();
  GKM_CHECK(labels.size() == n);
  GKM_CHECK_MSG(truth.k() >= max_rank, "need a deep enough exact graph");
  std::vector<double> prob(max_rank, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> sorted = truth.SortedNeighbors(i);
    const std::size_t limit = std::min(max_rank, sorted.size());
    for (std::size_t r = 0; r < limit; ++r) {
      if (labels[sorted[r].id] == labels[i]) prob[r] += 1.0;
    }
  }
  for (double& p : prob) p /= static_cast<double>(n);
  return prob;
}

ClusterSizeStats SummarizeClusterSizes(const std::vector<std::uint32_t>& labels,
                                       std::size_t k) {
  std::vector<std::size_t> counts(k, 0);
  for (const std::uint32_t l : labels) {
    GKM_CHECK(l < k);
    ++counts[l];
  }
  ClusterSizeStats stats;
  stats.min = *std::min_element(counts.begin(), counts.end());
  stats.max = *std::max_element(counts.begin(), counts.end());
  stats.mean = static_cast<double>(labels.size()) / static_cast<double>(k);
  stats.empty = static_cast<std::size_t>(
      std::count(counts.begin(), counts.end(), std::size_t{0}));
  return stats;
}

}  // namespace gkm
