// Copyright 2026 The gkmeans Authors.
// Evaluation protocol of §5.1: average distortion (Eqn. 4), KNN-graph
// recall (exact and sampled), plus the co-occurrence statistic behind
// Fig. 1 and cluster-size summaries used in tests and reports.

#ifndef GKM_EVAL_METRICS_H_
#define GKM_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Average distortion E (Eqn. 4) computed directly: the mean squared
/// distance between each row and the centroid of its assigned cluster,
/// with centroids recomputed as cluster means. O(n d); the authoritative
/// number every bench reports.
double AverageDistortion(const Matrix& data,
                         const std::vector<std::uint32_t>& labels,
                         std::size_t k);

/// Mean squared distance of each row to the *given* centroid of its label
/// (no recomputation) — the classic inertia.
double Inertia(const Matrix& data, const Matrix& centroids,
               const std::vector<std::uint32_t>& labels);

/// Recall@1 of `graph` against the exact graph `truth`: the fraction of
/// nodes whose true nearest neighbor appears anywhere in their list
/// (§5.1 measures top-1 recall).
double GraphRecallAt1(const KnnGraph& graph, const KnnGraph& truth);

/// Recall of the top-`at` true neighbors: |list ∩ true-top-at| / at,
/// averaged over nodes.
double GraphRecallAtK(const KnnGraph& graph, const KnnGraph& truth,
                      std::size_t at);

/// Sampled recall@1: `truth_ids[s]` is the exact nearest neighbor of node
/// `subset[s]` (the VLAD10M protocol: 100 random samples).
double SampledRecallAt1(const KnnGraph& graph,
                        const std::vector<std::uint32_t>& subset,
                        const std::vector<std::uint32_t>& truth_ids);

/// P(sample and its rank-r nearest neighbor share a cluster) for each rank
/// r in [1, max_rank] — the statistic plotted in Fig. 1. `truth` must have
/// out-degree >= max_rank.
std::vector<double> CoOccurrenceByRank(const KnnGraph& truth,
                                       const std::vector<std::uint32_t>& labels,
                                       std::size_t max_rank);

/// Min / max / mean of cluster sizes (empty clusters included in min).
struct ClusterSizeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  std::size_t empty = 0;
};
ClusterSizeStats SummarizeClusterSizes(const std::vector<std::uint32_t>& labels,
                                       std::size_t k);

}  // namespace gkm

#endif  // GKM_EVAL_METRICS_H_
