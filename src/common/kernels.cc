// Copyright 2026 The gkmeans Authors.
//
// Batched distance kernels with runtime SIMD dispatch. Read the contract in
// kernels.h first. The load-bearing invariant throughout this file: the
// EXACT kernels keep each row's arithmetic in the scalar code's 4-lane
// accumulator structure —
//
//   lane j accumulates elements j, j+4, j+8, ... with mul-then-add
//   (two roundings, never FMA), the tail (d % 4 elements) folds into
//   lane 0 sequentially, and the final reduction is (s0+s1)+(s2+s3)
//
// — which is exactly what L2Sqr/Dot in common/distance.cc compute. A SIMD
// tier widens this by processing MORE ROWS per instruction (2 rows per
// 256-bit register, 4 per 512-bit), never by widening a single row's
// accumulator, so every tier is bit-identical to scalar. This TU (and
// distance.cc) is compiled with -ffp-contract=off so a -march=native build
// cannot fuse the mul+add into an FMA behind our back; the dot-trick
// kernels, which are allowed to be fast-and-loose, use explicit FMA
// intrinsics instead.

#include "common/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/macros.h"
#include "obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define GKM_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define GKM_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace gkm {
namespace {

// ---------------------------------------------------------------------------
// Exact scalar cores — verbatim the arithmetic of distance.cc, the golden
// semantics every tier must reproduce.
// ---------------------------------------------------------------------------

inline float L2One(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
                   std::size_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const float df = a[i] - b[i];
    s0 += df * df;
  }
  return (s0 + s1) + (s2 + s3);
}

inline float DotOne(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
                    std::size_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

// Mixed-precision dot — verbatim the arithmetic of DotDF in
// kmeans/cluster_state.cc: two double accumulators over even/odd elements,
// tail into s0, final s0 + s1.
inline double DotDFOne(const double* GKM_RESTRICT a,
                       const float* GKM_RESTRICT b, std::size_t d) {
  double s0 = 0.0, s1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += a[i] * static_cast<double>(b[i]);
    s1 += a[i + 1] * static_cast<double>(b[i + 1]);
  }
  if (i < d) s0 += a[i] * static_cast<double>(b[i]);
  return s0 + s1;
}

// Software prefetch for the gathered L2 kernels. Gathered row pointers
// come from graph-walk expansions — scattered arena slots the hardware
// prefetcher sees no stream in — so each block hints the next block's rows
// (first line plus the line one ahead, covering ~32 floats of a row)
// while the current block's FLOPs hide the latency. Prefetch is
// architecturally invisible: it cannot change a single result bit, so the
// exact-kernel contract (kernels.h) is untouched; bench/micro_kernels's
// cold-gather benches measure the effect.
constexpr std::size_t kPrefetchLookahead = 2;  // blocks ahead per tier loop

inline void PrefetchRows(const float* const* rows, std::size_t count) {
  for (std::size_t r = 0; r < count; ++r) {
    __builtin_prefetch(rows[r], 0, 1);
    __builtin_prefetch(rows[r] + 16, 0, 1);
  }
}

// ---------------------------------------------------------------------------
// Scalar tier.
// ---------------------------------------------------------------------------

void ScalarL2Strided(const float* q, const float* base, std::size_t stride,
                     std::size_t n, std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = L2One(q, base + i * stride, d);
}

void ScalarL2Gather(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchLookahead < n) {
      PrefetchRows(rows + i + kPrefetchLookahead, 1);
    }
    out[i] = L2One(q, rows[i], d);
  }
}

void ScalarDotDFGather(const float* q, const double* const* rows,
                       std::size_t n, std::size_t d, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = DotDFOne(rows[i], q, d);
}

void ScalarDot4(const float* q0, const float* q1, const float* q2,
                const float* q3, const float* c, std::size_t d, float* out4) {
  out4[0] = DotOne(q0, c, d);
  out4[1] = DotOne(q1, c, d);
  out4[2] = DotOne(q2, c, d);
  out4[3] = DotOne(q3, c, d);
}

float ScalarDot1(const float* a, const float* b, std::size_t d) {
  return DotOne(a, b, d);
}

void ScalarDotStrided(const float* q, const float* base, std::size_t stride,
                      std::size_t n, std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = DotOne(q, base + i * stride, d);
}

void ScalarDotGather(const float* q, const float* const* rows, std::size_t n,
                     std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchLookahead < n) {
      PrefetchRows(rows + i + kPrefetchLookahead, 1);
    }
    out[i] = DotOne(q, rows[i], d);
  }
}

// SQ8 integer core, scalar reference. Integer arithmetic is exact, so this
// simple loop IS the cross-tier contract: any reassociation a SIMD tier
// performs produces the same i32.
inline std::int32_t Sq8IdotOne(const std::int8_t* GKM_RESTRICT a,
                               const std::uint8_t* GKM_RESTRICT b,
                               std::size_t d) {
  std::int32_t s = 0;
  for (std::size_t i = 0; i < d; ++i) {
    s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return s;
}

void ScalarSq8Gather(const std::int8_t* q, const std::uint8_t* const* rows,
                     std::size_t n, std::size_t d, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = Sq8IdotOne(q, rows[i], d);
}

#if defined(GKM_KERNELS_X86)

// ---------------------------------------------------------------------------
// AVX2 tier. 256-bit registers hold TWO rows' 4-lane accumulators (low
// half row A, high half row B); the query chunk is broadcast to both
// halves. The per-row serial mul-then-add chain is the exactness contract,
// so throughput comes entirely from parallel row chains: NREG independent
// accumulator registers process 2*NREG rows per step.
// ---------------------------------------------------------------------------

template <int NREG>
__attribute__((target("avx2,fma"))) inline void Avx2L2Rows(
    const float* q, const float* const* rows, std::size_t d, float* out) {
  __m256 acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256 qq =
        _mm256_broadcast_ps(reinterpret_cast<const __m128*>(q + j));
    for (int r = 0; r < NREG; ++r) {
      const __m256 rr = _mm256_insertf128_ps(
          _mm256_castps128_ps256(_mm_loadu_ps(rows[2 * r] + j)),
          _mm_loadu_ps(rows[2 * r + 1] + j), 1);
      const __m256 df = _mm256_sub_ps(qq, rr);
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(df, df));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(32) float l[8];
    _mm256_store_ps(l, acc[r]);
    for (int h = 0; h < 2; ++h) {
      const float* row = rows[2 * r + h];
      float s0 = l[4 * h];
      for (std::size_t t = j; t < d; ++t) {
        const float df = q[t] - row[t];
        s0 += df * df;
      }
      out[2 * r + h] = (s0 + l[4 * h + 1]) + (l[4 * h + 2] + l[4 * h + 3]);
    }
  }
}

__attribute__((target("avx2,fma"))) void Avx2L2Gather(
    const float* q, const float* const* rows, std::size_t n, std::size_t d,
    float* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 8 < n) {
      PrefetchRows(rows + i + 8, std::min<std::size_t>(8, n - (i + 8)));
    }
    Avx2L2Rows<4>(q, rows + i, d, out + i);
  }
  for (; i + 2 <= n; i += 2) Avx2L2Rows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = L2One(q, rows[i], d);
}

__attribute__((target("avx2,fma"))) void Avx2L2Strided(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t d, float* out) {
  const float* ptrs[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t r = 0; r < 8; ++r) ptrs[r] = base + (i + r) * stride;
    Avx2L2Rows<4>(q, ptrs, d, out + i);
  }
  for (; i + 2 <= n; i += 2) {
    ptrs[0] = base + i * stride;
    ptrs[1] = ptrs[0] + stride;
    Avx2L2Rows<1>(q, ptrs, d, out + i);
  }
  for (; i < n; ++i) out[i] = L2One(q, base + i * stride, d);
}

// Mixed-precision dot, 2 rows per 256-bit double register (each row owns
// its even/odd accumulator pair); NREG registers of independent chains.
template <int NREG>
__attribute__((target("avx2,fma"))) inline void Avx2DotDFRows(
    const float* q, const double* const* rows, std::size_t d, double* out) {
  __m256d acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d qd = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j))));
    const __m256d qq = _mm256_set_m128d(qd, qd);
    for (int r = 0; r < NREG; ++r) {
      const __m256d rr = _mm256_set_m128d(_mm_loadu_pd(rows[2 * r + 1] + j),
                                          _mm_loadu_pd(rows[2 * r] + j));
      acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(qq, rr));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(32) double l[4];
    _mm256_store_pd(l, acc[r]);
    for (int h = 0; h < 2; ++h) {
      double s0 = l[2 * h], s1 = l[2 * h + 1];
      if (j < d) s0 += rows[2 * r + h][j] * static_cast<double>(q[j]);
      out[2 * r + h] = s0 + s1;
    }
  }
}

__attribute__((target("avx2,fma"))) void Avx2DotDFGather(
    const float* q, const double* const* rows, std::size_t n, std::size_t d,
    double* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) Avx2DotDFRows<4>(q, rows + i, d, out + i);
  for (; i + 2 <= n; i += 2) Avx2DotDFRows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = DotDFOne(rows[i], q, d);
}

__attribute__((target("avx2,fma"))) inline float Avx2Hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) void Avx2Dot4(
    const float* q0, const float* q1, const float* q2, const float* q3,
    const float* c, std::size_t d, float* out4) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 cc = _mm256_loadu_ps(c + j);
    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(q0 + j), cc, a0);
    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(q1 + j), cc, a1);
    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(q2 + j), cc, a2);
    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(q3 + j), cc, a3);
  }
  out4[0] = Avx2Hsum(a0);
  out4[1] = Avx2Hsum(a1);
  out4[2] = Avx2Hsum(a2);
  out4[3] = Avx2Hsum(a3);
  for (; j < d; ++j) {
    out4[0] += q0[j] * c[j];
    out4[1] += q1[j] * c[j];
    out4[2] += q2[j] * c[j];
    out4[3] += q3[j] * c[j];
  }
}

// Exact dot rows — the same two-rows-per-register 4-lane layout as
// Avx2L2Rows, with mul/add instead of sub/mul/add, reproducing DotOne
// bit-for-bit.
template <int NREG>
__attribute__((target("avx2,fma"))) inline void Avx2DotRows(
    const float* q, const float* const* rows, std::size_t d, float* out) {
  __m256 acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256 qq =
        _mm256_broadcast_ps(reinterpret_cast<const __m128*>(q + j));
    for (int r = 0; r < NREG; ++r) {
      const __m256 rr = _mm256_insertf128_ps(
          _mm256_castps128_ps256(_mm_loadu_ps(rows[2 * r] + j)),
          _mm_loadu_ps(rows[2 * r + 1] + j), 1);
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(qq, rr));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(32) float l[8];
    _mm256_store_ps(l, acc[r]);
    for (int h = 0; h < 2; ++h) {
      const float* row = rows[2 * r + h];
      float s0 = l[4 * h];
      for (std::size_t t = j; t < d; ++t) s0 += q[t] * row[t];
      out[2 * r + h] = (s0 + l[4 * h + 1]) + (l[4 * h + 2] + l[4 * h + 3]);
    }
  }
}

__attribute__((target("avx2,fma"))) void Avx2DotGather(
    const float* q, const float* const* rows, std::size_t n, std::size_t d,
    float* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 8 < n) {
      PrefetchRows(rows + i + 8, std::min<std::size_t>(8, n - (i + 8)));
    }
    Avx2DotRows<4>(q, rows + i, d, out + i);
  }
  for (; i + 2 <= n; i += 2) Avx2DotRows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = DotOne(q, rows[i], d);
}

__attribute__((target("avx2,fma"))) void Avx2DotStrided(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t d, float* out) {
  const float* ptrs[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t r = 0; r < 8; ++r) ptrs[r] = base + (i + r) * stride;
    Avx2DotRows<4>(q, ptrs, d, out + i);
  }
  for (; i + 2 <= n; i += 2) {
    ptrs[0] = base + i * stride;
    ptrs[1] = ptrs[0] + stride;
    Avx2DotRows<1>(q, ptrs, d, out + i);
  }
  for (; i < n; ++i) out[i] = DotOne(q, base + i * stride, d);
}

// SQ8 integer dot, one row per call. The u8 and i8 operands are WIDENED to
// i16 before _mm256_madd_epi16 (pair products <= 127*255 fit i16 inputs,
// pair sums <= 64770 land in i32). Deliberately not _mm256_maddubs_epi16:
// its i16 pair-sum saturates at 32767, which a saturation-edge row (all
// codes 255 against |q|=127) would trip — the widening form is exact for
// the full input range, keeping the scalar bit-identity contract.
__attribute__((target("avx2"))) inline std::int32_t Avx2Sq8IdotRow(
    const std::int8_t* a, const std::uint8_t* b, std::size_t d) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 32 <= d; j += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  for (; j + 16 <= d; j += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + j)));
    const __m256i b16 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  std::int32_t out = _mm_cvtsi128_si32(s);
  for (; j < d; ++j) {
    out += static_cast<std::int32_t>(a[j]) * static_cast<std::int32_t>(b[j]);
  }
  return out;
}

__attribute__((target("avx2"))) void Avx2Sq8Gather(
    const std::int8_t* q, const std::uint8_t* const* rows, std::size_t n,
    std::size_t d, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchLookahead < n) {
      __builtin_prefetch(rows[i + kPrefetchLookahead], 0, 1);
    }
    out[i] = Avx2Sq8IdotRow(q, rows[i], d);
  }
}

__attribute__((target("avx2,fma"))) float Avx2Dot1(const float* a,
                                                   const float* b,
                                                   std::size_t d) {
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), s0);
    s1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8), _mm256_loadu_ps(b + j + 8),
                         s1);
  }
  for (; j + 8 <= d; j += 8) {
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j), s0);
  }
  float out = Avx2Hsum(_mm256_add_ps(s0, s1));
  for (; j < d; ++j) out += a[j] * b[j];
  return out;
}

// ---------------------------------------------------------------------------
// AVX-512 tier. 512-bit registers hold FOUR rows' 4-lane accumulators; the
// query chunk is broadcast to all four 128-bit sub-lanes. Two accumulator
// registers per step = 8 rows in flight.
//
// GCC 12's avx512fintrin.h trips a bogus -Wuninitialized on
// _mm512_loadu_ps (GCC PR105593); silence it for this block only.
// ---------------------------------------------------------------------------
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

template <int NREG>
__attribute__((target("avx2,fma,avx512f"))) inline void Avx512L2Rows(
    const float* q, const float* const* rows, std::size_t d, float* out) {
  __m512 acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m512 qq = _mm512_broadcast_f32x4(_mm_loadu_ps(q + j));
    for (int r = 0; r < NREG; ++r) {
      __m512 rr = _mm512_castps128_ps512(_mm_loadu_ps(rows[4 * r] + j));
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 1] + j), 1);
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 2] + j), 2);
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 3] + j), 3);
      const __m512 df = _mm512_sub_ps(qq, rr);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(df, df));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, acc[r]);
    for (int h = 0; h < 4; ++h) {
      const float* row = rows[4 * r + h];
      float s0 = lanes[4 * h];
      for (std::size_t t = j; t < d; ++t) {
        const float df = q[t] - row[t];
        s0 += df * df;
      }
      out[4 * r + h] =
          (s0 + lanes[4 * h + 1]) + (lanes[4 * h + 2] + lanes[4 * h + 3]);
    }
  }
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512L2Gather(
    const float* q, const float* const* rows, std::size_t n, std::size_t d,
    float* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if (i + 16 < n) {
      PrefetchRows(rows + i + 16, std::min<std::size_t>(16, n - (i + 16)));
    }
    Avx512L2Rows<4>(q, rows + i, d, out + i);
  }
  for (; i + 4 <= n; i += 4) Avx512L2Rows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = L2One(q, rows[i], d);
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512L2Strided(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t d, float* out) {
  const float* ptrs[16];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (std::size_t r = 0; r < 16; ++r) ptrs[r] = base + (i + r) * stride;
    Avx512L2Rows<4>(q, ptrs, d, out + i);
  }
  for (; i + 4 <= n; i += 4) {
    for (std::size_t r = 0; r < 4; ++r) ptrs[r] = base + (i + r) * stride;
    Avx512L2Rows<1>(q, ptrs, d, out + i);
  }
  for (; i < n; ++i) out[i] = L2One(q, base + i * stride, d);
}

// Mixed-precision dot, 4 rows per 512-bit double register.
template <int NREG>
__attribute__((target("avx2,fma,avx512f"))) inline void Avx512DotDFRows(
    const float* q, const double* const* rows, std::size_t d, double* out) {
  __m512d acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d qd = _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j))));
    const __m256d q4 = _mm256_set_m128d(qd, qd);
    const __m512d qq =
        _mm512_insertf64x4(_mm512_castpd256_pd512(q4), q4, 1);
    for (int r = 0; r < NREG; ++r) {
      const __m256d lo = _mm256_set_m128d(_mm_loadu_pd(rows[4 * r + 1] + j),
                                          _mm_loadu_pd(rows[4 * r] + j));
      const __m256d hi = _mm256_set_m128d(_mm_loadu_pd(rows[4 * r + 3] + j),
                                          _mm_loadu_pd(rows[4 * r + 2] + j));
      const __m512d rr =
          _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1);
      acc[r] = _mm512_add_pd(acc[r], _mm512_mul_pd(qq, rr));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(64) double l[8];
    _mm512_store_pd(l, acc[r]);
    for (int h = 0; h < 4; ++h) {
      double s0 = l[2 * h], s1 = l[2 * h + 1];
      if (j < d) s0 += rows[4 * r + h][j] * static_cast<double>(q[j]);
      out[4 * r + h] = s0 + s1;
    }
  }
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512DotDFGather(
    const float* q, const double* const* rows, std::size_t n, std::size_t d,
    double* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) Avx512DotDFRows<2>(q, rows + i, d, out + i);
  for (; i + 4 <= n; i += 4) Avx512DotDFRows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = DotDFOne(rows[i], q, d);
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512Dot4(
    const float* q0, const float* q1, const float* q2, const float* q3,
    const float* c, std::size_t d, float* out4) {
  __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
  __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m512 cc = _mm512_loadu_ps(c + j);
    a0 = _mm512_fmadd_ps(_mm512_loadu_ps(q0 + j), cc, a0);
    a1 = _mm512_fmadd_ps(_mm512_loadu_ps(q1 + j), cc, a1);
    a2 = _mm512_fmadd_ps(_mm512_loadu_ps(q2 + j), cc, a2);
    a3 = _mm512_fmadd_ps(_mm512_loadu_ps(q3 + j), cc, a3);
  }
  out4[0] = _mm512_reduce_add_ps(a0);
  out4[1] = _mm512_reduce_add_ps(a1);
  out4[2] = _mm512_reduce_add_ps(a2);
  out4[3] = _mm512_reduce_add_ps(a3);
  for (; j < d; ++j) {
    out4[0] += q0[j] * c[j];
    out4[1] += q1[j] * c[j];
    out4[2] += q2[j] * c[j];
    out4[3] += q3[j] * c[j];
  }
}

__attribute__((target("avx2,fma,avx512f"))) float Avx512Dot1(const float* a,
                                                             const float* b,
                                                             std::size_t d) {
  __m512 s0 = _mm512_setzero_ps(), s1 = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 32 <= d; j += 32) {
    s0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j), s0);
    s1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j + 16),
                         _mm512_loadu_ps(b + j + 16), s1);
  }
  for (; j + 16 <= d; j += 16) {
    s0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j), s0);
  }
  float out = _mm512_reduce_add_ps(_mm512_add_ps(s0, s1));
  for (; j < d; ++j) out += a[j] * b[j];
  return out;
}

// Exact dot rows — four rows' 4-lane accumulators per 512-bit register,
// mirroring Avx512L2Rows.
template <int NREG>
__attribute__((target("avx2,fma,avx512f"))) inline void Avx512DotRows(
    const float* q, const float* const* rows, std::size_t d, float* out) {
  __m512 acc[NREG];
  for (int r = 0; r < NREG; ++r) acc[r] = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m512 qq = _mm512_broadcast_f32x4(_mm_loadu_ps(q + j));
    for (int r = 0; r < NREG; ++r) {
      __m512 rr = _mm512_castps128_ps512(_mm_loadu_ps(rows[4 * r] + j));
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 1] + j), 1);
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 2] + j), 2);
      rr = _mm512_insertf32x4(rr, _mm_loadu_ps(rows[4 * r + 3] + j), 3);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(qq, rr));
    }
  }
  for (int r = 0; r < NREG; ++r) {
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, acc[r]);
    for (int h = 0; h < 4; ++h) {
      const float* row = rows[4 * r + h];
      float s0 = lanes[4 * h];
      for (std::size_t t = j; t < d; ++t) s0 += q[t] * row[t];
      out[4 * r + h] =
          (s0 + lanes[4 * h + 1]) + (lanes[4 * h + 2] + lanes[4 * h + 3]);
    }
  }
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512DotGather(
    const float* q, const float* const* rows, std::size_t n, std::size_t d,
    float* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if (i + 16 < n) {
      PrefetchRows(rows + i + 16, std::min<std::size_t>(16, n - (i + 16)));
    }
    Avx512DotRows<4>(q, rows + i, d, out + i);
  }
  for (; i + 4 <= n; i += 4) Avx512DotRows<1>(q, rows + i, d, out + i);
  for (; i < n; ++i) out[i] = DotOne(q, rows[i], d);
}

__attribute__((target("avx2,fma,avx512f"))) void Avx512DotStrided(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t d, float* out) {
  const float* ptrs[16];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    for (std::size_t r = 0; r < 16; ++r) ptrs[r] = base + (i + r) * stride;
    Avx512DotRows<4>(q, ptrs, d, out + i);
  }
  for (; i + 4 <= n; i += 4) {
    for (std::size_t r = 0; r < 4; ++r) ptrs[r] = base + (i + r) * stride;
    Avx512DotRows<1>(q, ptrs, d, out + i);
  }
  for (; i < n; ++i) out[i] = DotOne(q, base + i * stride, d);
}

// SQ8 integer dot via AVX512BW widening madd (same structure as the AVX2
// row kernel, 64 codes per step).
__attribute__((target("avx512f,avx512bw"))) inline std::int32_t
Avx512Sq8IdotRow(const std::int8_t* a, const std::uint8_t* b, std::size_t d) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t j = 0;
  for (; j + 32 <= d; j += 32) {
    const __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j)));
    const __m512i b16 = _mm512_cvtepu8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
  }
  std::int32_t out = _mm512_reduce_add_epi32(acc);
  for (; j < d; ++j) {
    out += static_cast<std::int32_t>(a[j]) * static_cast<std::int32_t>(b[j]);
  }
  return out;
}

// SQ8 integer dot via AVX512-VNNI: vpdpbusd takes u8 (first multiplicand)
// × i8 (second) with i32 accumulate — exactly the asymmetric operand
// layout, no widening needed. Results are identical to the widening form
// (integer math is exact), so runtime selection between the two cannot
// change a bit.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) inline std::int32_t
Avx512VnniSq8IdotRow(const std::int8_t* a, const std::uint8_t* b,
                     std::size_t d) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t j = 0;
  for (; j + 64 <= d; j += 64) {
    const __m512i va =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + j));
    const __m512i vb =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + j));
    acc = _mm512_dpbusd_epi32(acc, vb, va);
  }
  std::int32_t out = _mm512_reduce_add_epi32(acc);
  for (; j < d; ++j) {
    out += static_cast<std::int32_t>(a[j]) * static_cast<std::int32_t>(b[j]);
  }
  return out;
}

// BestSupportedTier only requires avx512f, so the BW/VNNI sub-features are
// gated here at first use; CPUs without them fall back to the scalar row
// core (same bits, fewer instructions per cycle).
__attribute__((target("avx512f"))) void Avx512Sq8Gather(
    const std::int8_t* q, const std::uint8_t* const* rows, std::size_t n,
    std::size_t d, std::int32_t* out) {
  static const bool has_bw = __builtin_cpu_supports("avx512bw");
  static const bool has_vnni =
      has_bw && __builtin_cpu_supports("avx512vnni");
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchLookahead < n) {
      __builtin_prefetch(rows[i + kPrefetchLookahead], 0, 1);
    }
    if (has_vnni) {
      out[i] = Avx512VnniSq8IdotRow(q, rows[i], d);
    } else if (has_bw) {
      out[i] = Avx512Sq8IdotRow(q, rows[i], d);
    } else {
      out[i] = Sq8IdotOne(q, rows[i], d);
    }
  }
}
#pragma GCC diagnostic pop

#elif defined(GKM_KERNELS_NEON)

// ---------------------------------------------------------------------------
// NEON tier. 128-bit registers are exactly one row's 4-lane accumulator;
// the win over scalar comes from running two rows' independent chains per
// step and keeping the query chunk in a register.
// ---------------------------------------------------------------------------

inline void NeonL2RowPair(const float* q, const float* r0, const float* r1,
                          std::size_t d, float* out2) {
  float32x4_t accA = vdupq_n_f32(0.0f);
  float32x4_t accB = vdupq_n_f32(0.0f);
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const float32x4_t qq = vld1q_f32(q + j);
    const float32x4_t da = vsubq_f32(qq, vld1q_f32(r0 + j));
    const float32x4_t db = vsubq_f32(qq, vld1q_f32(r1 + j));
    accA = vaddq_f32(accA, vmulq_f32(da, da));
    accB = vaddq_f32(accB, vmulq_f32(db, db));
  }
  float la[4], lb[4];
  vst1q_f32(la, accA);
  vst1q_f32(lb, accB);
  for (std::size_t t = j; t < d; ++t) {
    const float da = q[t] - r0[t];
    la[0] += da * da;
    const float db = q[t] - r1[t];
    lb[0] += db * db;
  }
  out2[0] = (la[0] + la[1]) + (la[2] + la[3]);
  out2[1] = (lb[0] + lb[1]) + (lb[2] + lb[3]);
}

void NeonL2Strided(const float* q, const float* base, std::size_t stride,
                   std::size_t n, std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    NeonL2RowPair(q, base + i * stride, base + (i + 1) * stride, d, out + i);
  }
  for (; i < n; ++i) out[i] = L2One(q, base + i * stride, d);
}

void NeonL2Gather(const float* q, const float* const* rows, std::size_t n,
                  std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (i + 2 < n) {
      PrefetchRows(rows + i + 2, std::min<std::size_t>(2, n - (i + 2)));
    }
    NeonL2RowPair(q, rows[i], rows[i + 1], d, out + i);
  }
  for (; i < n; ++i) out[i] = L2One(q, rows[i], d);
}

// Mixed-precision dot: one row's even/odd double accumulators per 128-bit
// register, two independent row chains per step.
inline void NeonDotDFRowPair(const float* q, const double* r0,
                             const double* r1, std::size_t d, double* out2) {
  float64x2_t a0 = vdupq_n_f64(0.0);
  float64x2_t a1 = vdupq_n_f64(0.0);
  std::size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const float64x2_t qd = vcvt_f64_f32(vld1_f32(q + j));
    a0 = vaddq_f64(a0, vmulq_f64(qd, vld1q_f64(r0 + j)));
    a1 = vaddq_f64(a1, vmulq_f64(qd, vld1q_f64(r1 + j)));
  }
  double l0[2], l1[2];
  vst1q_f64(l0, a0);
  vst1q_f64(l1, a1);
  if (j < d) {
    l0[0] += r0[j] * static_cast<double>(q[j]);
    l1[0] += r1[j] * static_cast<double>(q[j]);
  }
  out2[0] = l0[0] + l0[1];
  out2[1] = l1[0] + l1[1];
}

void NeonDotDFGather(const float* q, const double* const* rows, std::size_t n,
                     std::size_t d, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    NeonDotDFRowPair(q, rows[i], rows[i + 1], d, out + i);
  }
  for (; i < n; ++i) out[i] = DotDFOne(rows[i], q, d);
}

inline float NeonHsum(float32x4_t v) {
  float l[4];
  vst1q_f32(l, v);
  return (l[0] + l[1]) + (l[2] + l[3]);
}

void NeonDot4(const float* q0, const float* q1, const float* q2,
              const float* q3, const float* c, std::size_t d, float* out4) {
  float32x4_t a0 = vdupq_n_f32(0.0f), a1 = vdupq_n_f32(0.0f);
  float32x4_t a2 = vdupq_n_f32(0.0f), a3 = vdupq_n_f32(0.0f);
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const float32x4_t cc = vld1q_f32(c + j);
    a0 = vfmaq_f32(a0, vld1q_f32(q0 + j), cc);
    a1 = vfmaq_f32(a1, vld1q_f32(q1 + j), cc);
    a2 = vfmaq_f32(a2, vld1q_f32(q2 + j), cc);
    a3 = vfmaq_f32(a3, vld1q_f32(q3 + j), cc);
  }
  out4[0] = NeonHsum(a0);
  out4[1] = NeonHsum(a1);
  out4[2] = NeonHsum(a2);
  out4[3] = NeonHsum(a3);
  for (; j < d; ++j) {
    out4[0] += q0[j] * c[j];
    out4[1] += q1[j] * c[j];
    out4[2] += q2[j] * c[j];
    out4[3] += q3[j] * c[j];
  }
}

// Exact dot, two rows' independent 4-lane chains per step (mirror of
// NeonL2RowPair with mul/add).
inline void NeonDotRowPair(const float* q, const float* r0, const float* r1,
                           std::size_t d, float* out2) {
  float32x4_t accA = vdupq_n_f32(0.0f);
  float32x4_t accB = vdupq_n_f32(0.0f);
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const float32x4_t qq = vld1q_f32(q + j);
    accA = vaddq_f32(accA, vmulq_f32(qq, vld1q_f32(r0 + j)));
    accB = vaddq_f32(accB, vmulq_f32(qq, vld1q_f32(r1 + j)));
  }
  float la[4], lb[4];
  vst1q_f32(la, accA);
  vst1q_f32(lb, accB);
  for (std::size_t t = j; t < d; ++t) {
    la[0] += q[t] * r0[t];
    lb[0] += q[t] * r1[t];
  }
  out2[0] = (la[0] + la[1]) + (la[2] + la[3]);
  out2[1] = (lb[0] + lb[1]) + (lb[2] + lb[3]);
}

void NeonDotStrided(const float* q, const float* base, std::size_t stride,
                    std::size_t n, std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    NeonDotRowPair(q, base + i * stride, base + (i + 1) * stride, d, out + i);
  }
  for (; i < n; ++i) out[i] = DotOne(q, base + i * stride, d);
}

void NeonDotGather(const float* q, const float* const* rows, std::size_t n,
                   std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (i + 2 < n) {
      PrefetchRows(rows + i + 2, std::min<std::size_t>(2, n - (i + 2)));
    }
    NeonDotRowPair(q, rows[i], rows[i + 1], d, out + i);
  }
  for (; i < n; ++i) out[i] = DotOne(q, rows[i], d);
}

// SQ8 integer dot: widen i8/u8 to i16 and multiply-accumulate into i32
// lanes (vmlal_s16). Exact integer arithmetic — bit-identical to the
// scalar core by construction.
inline std::int32_t NeonSq8IdotRow(const std::int8_t* a,
                                   const std::uint8_t* b, std::size_t d) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const int16x8_t a16 = vmovl_s8(vld1_s8(a + j));
    const int16x8_t b16 =
        vreinterpretq_s16_u16(vmovl_u8(vld1_u8(b + j)));
    acc = vmlal_s16(acc, vget_low_s16(a16), vget_low_s16(b16));
    acc = vmlal_s16(acc, vget_high_s16(a16), vget_high_s16(b16));
  }
  std::int32_t l[4];
  vst1q_s32(l, acc);
  std::int32_t out = (l[0] + l[1]) + (l[2] + l[3]);
  for (; j < d; ++j) {
    out += static_cast<std::int32_t>(a[j]) * static_cast<std::int32_t>(b[j]);
  }
  return out;
}

void NeonSq8Gather(const std::int8_t* q, const std::uint8_t* const* rows,
                   std::size_t n, std::size_t d, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchLookahead < n) {
      __builtin_prefetch(rows[i + kPrefetchLookahead], 0, 1);
    }
    out[i] = NeonSq8IdotRow(q, rows[i], d);
  }
}

float NeonDot1(const float* a, const float* b, std::size_t d) {
  float32x4_t s0 = vdupq_n_f32(0.0f), s1 = vdupq_n_f32(0.0f);
  std::size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    s0 = vfmaq_f32(s0, vld1q_f32(a + j), vld1q_f32(b + j));
    s1 = vfmaq_f32(s1, vld1q_f32(a + j + 4), vld1q_f32(b + j + 4));
  }
  for (; j + 4 <= d; j += 4) {
    s0 = vfmaq_f32(s0, vld1q_f32(a + j), vld1q_f32(b + j));
  }
  float out = NeonHsum(vaddq_f32(s0, s1));
  for (; j < d; ++j) out += a[j] * b[j];
  return out;
}

#endif  // tier implementations

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

constexpr internal::KernelOps kScalarTable = {
    ScalarL2Strided, ScalarL2Gather, ScalarDotDFGather, ScalarDot4,
    ScalarDot1,      ScalarDotStrided, ScalarDotGather, ScalarSq8Gather,
    false};
#if defined(GKM_KERNELS_X86)
constexpr internal::KernelOps kAvx2Table = {
    Avx2L2Strided, Avx2L2Gather,  Avx2DotDFGather, Avx2Dot4,
    Avx2Dot1,      Avx2DotStrided, Avx2DotGather,  Avx2Sq8Gather,
    true};
constexpr internal::KernelOps kAvx512Table = {
    Avx512L2Strided, Avx512L2Gather,  Avx512DotDFGather, Avx512Dot4,
    Avx512Dot1,      Avx512DotStrided, Avx512DotGather,  Avx512Sq8Gather,
    true};
#elif defined(GKM_KERNELS_NEON)
constexpr internal::KernelOps kNeonTable = {
    NeonL2Strided, NeonL2Gather,  NeonDotDFGather, NeonDot4,
    NeonDot1,      NeonDotStrided, NeonDotGather,  NeonSq8Gather,
    true};
#endif

bool ForceScalarEnv() {
  const char* f = std::getenv("GKM_FORCE_SCALAR");
  return f != nullptr && f[0] != '\0' && !(f[0] == '0' && f[1] == '\0');
}

const internal::KernelOps& Ops() {
  static const internal::KernelOps& table = internal::OpsForTier(ActiveSimdTier());
  return table;
}

}  // namespace

namespace internal {

SimdTier BestSupportedTier() {
#if defined(GKM_KERNELS_X86)
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdTier::kAvx2;
  }
  return SimdTier::kScalar;
#elif defined(GKM_KERNELS_NEON)
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
}

const KernelOps& OpsForTier(SimdTier tier) {
  if (tier != SimdTier::kScalar) {
    GKM_CHECK_MSG(tier == BestSupportedTier() ||
                      (tier == SimdTier::kAvx2 &&
                       BestSupportedTier() == SimdTier::kAvx512),
                  "requested SIMD tier unsupported on this CPU");
  }
  switch (tier) {
#if defined(GKM_KERNELS_X86)
    case SimdTier::kAvx512:
      return kAvx512Table;
    case SimdTier::kAvx2:
      return kAvx2Table;
#elif defined(GKM_KERNELS_NEON)
    case SimdTier::kNeon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

}  // namespace internal

SimdTier ActiveSimdTier() {
  static const SimdTier tier =
      ForceScalarEnv() ? SimdTier::kScalar : internal::BestSupportedTier();
  // Export the dispatch decision once per process: the tier as a gauge
  // (numeric enum value) plus a per-tier-name dispatch counter, so a stats
  // scrape always shows which kernel table this process runs on. The hot
  // kernels themselves stay uninstrumented (overhead contract in
  // docs/observability.md).
  static const bool recorded = [] {
    GKM_GAUGE_SET("kernels.simd_tier", static_cast<std::int64_t>(tier));
    GKM_COUNTER_ADD(std::string("kernels.dispatch.") + SimdTierName(tier), 1);
    return true;
  }();
  (void)recorded;
  return tier;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

// ---------------------------------------------------------------------------
// Public exact kernels.
// ---------------------------------------------------------------------------

void L2SqrBatch(const float* q, const float* base, std::size_t stride,
                std::size_t n, std::size_t d, float* out) {
  Ops().l2_strided(q, base, stride, n, d, out);
}

void L2SqrBatchGather(const float* q, const float* const* rows, std::size_t n,
                      std::size_t d, float* out) {
  Ops().l2_gather(q, rows, n, d, out);
}

void RowNormsSqrBatch(const float* base, std::size_t stride, std::size_t n,
                      std::size_t d, float* out) {
  // ||x||^2 as L2Sqr(0, x): (0 - x_i)^2 multiplies out to x_i * x_i with
  // identical rounding, so this is bit-equal to Dot(x, x) while reusing
  // the multi-row L2 kernels. The zero query is per-thread scratch.
  if (n == 0) return;
  thread_local std::vector<float> zeros;
  if (zeros.size() < d) zeros.resize(d, 0.0f);
  Ops().l2_strided(zeros.data(), base, stride, n, d, out);
}

std::size_t NearestRowBatch(const float* q, const float* base,
                            std::size_t stride, std::size_t n, std::size_t d,
                            float* dist_out) {
  GKM_CHECK(n > 0);
  constexpr std::size_t kBlock = 256;
  float buf[kBlock];
  std::size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    Ops().l2_strided(q, base + b * stride, stride, len, d, buf);
    for (std::size_t i = 0; i < len; ++i) {
      if (buf[i] < best_d) {
        best_d = buf[i];
        best = b + i;
      }
    }
  }
  if (dist_out != nullptr) *dist_out = best_d;
  return best;
}

void DotDFBatchGather(const float* q, const double* const* rows,
                      std::size_t n, std::size_t d, double* out) {
  Ops().dot_df_gather(q, rows, n, d, out);
}

void DotBatch(const float* q, const float* base, std::size_t stride,
              std::size_t n, std::size_t d, float* out) {
  Ops().dot_strided(q, base, stride, n, d, out);
}

void DotBatchGather(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  Ops().dot_gather(q, rows, n, d, out);
}

void ScoreBatch(Metric metric, const float* q, float q_norm_sqr,
                const float* base, std::size_t stride, std::size_t n,
                std::size_t d, const float* row_norms_sqr, float* out) {
  if (n == 0) return;
  switch (metric) {
    case Metric::kL2:
      Ops().l2_strided(q, base, stride, n, d, out);
      return;
    case Metric::kInnerProduct:
      Ops().dot_strided(q, base, stride, n, d, out);
      for (std::size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
    case Metric::kCosine: {
      std::vector<float> rn_buf;
      if (row_norms_sqr == nullptr) {
        rn_buf.resize(n);
        RowNormsSqrBatch(base, stride, n, d, rn_buf.data());
        row_norms_sqr = rn_buf.data();
      }
      Ops().dot_strided(q, base, stride, n, d, out);
      for (std::size_t i = 0; i < n; ++i) {
        const float rn = row_norms_sqr[i];
        out[i] = (q_norm_sqr > 0.0f && rn > 0.0f)
                     ? 1.0f - out[i] / std::sqrt(q_norm_sqr * rn)
                     : 1.0f;
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// SQ8 quantizer + asymmetric kernels.
// ---------------------------------------------------------------------------

namespace {

Sq8Quantizer Sq8FromMinMax(const std::vector<float>& mn,
                           const std::vector<float>& mx, std::size_t d) {
  Sq8Quantizer qz;
  qz.offset.assign(mn.begin(), mn.end());
  qz.scale.resize(d);
  for (std::size_t j = 0; j < d; ++j) qz.scale[j] = (mx[j] - mn[j]) / 255.0f;
  return qz;
}

// Fixed-order scalar epilogue of the asymmetric L2 decomposition: identical
// at every tier because the integer dot is exact and these four float ops
// run here, not in the tier kernels.
inline float Sq8L2Score(const Sq8Query& q, std::int32_t idot, float norm) {
  return std::max(
      0.0f, q.rq - 2.0f * (q.l2_scale * static_cast<float>(idot)) + norm);
}

}  // namespace

Sq8Quantizer Sq8Train(const float* base, std::size_t stride, std::size_t n,
                      std::size_t d) {
  if (n == 0) {
    Sq8Quantizer qz;
    qz.scale.assign(d, 0.0f);
    qz.offset.assign(d, 0.0f);
    return qz;
  }
  std::vector<float> mn(base, base + d), mx(base, base + d);
  for (std::size_t i = 1; i < n; ++i) {
    const float* row = base + i * stride;
    for (std::size_t j = 0; j < d; ++j) {
      mn[j] = std::min(mn[j], row[j]);
      mx[j] = std::max(mx[j], row[j]);
    }
  }
  return Sq8FromMinMax(mn, mx, d);
}

Sq8Quantizer Sq8TrainGather(const float* const* rows, std::size_t n,
                            std::size_t d) {
  if (n == 0) {
    Sq8Quantizer qz;
    qz.scale.assign(d, 0.0f);
    qz.offset.assign(d, 0.0f);
    return qz;
  }
  std::vector<float> mn(rows[0], rows[0] + d), mx(rows[0], rows[0] + d);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      mn[j] = std::min(mn[j], rows[i][j]);
      mx[j] = std::max(mx[j], rows[i][j]);
    }
  }
  return Sq8FromMinMax(mn, mx, d);
}

void Sq8Encode(const Sq8Quantizer& qz, const float* x, std::size_t d,
               std::uint8_t* code, float* norm_out) {
  double norm = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const float s = qz.scale[j];
    std::uint8_t c = 0;
    if (s > 0.0f) {
      // Half-away-from-zero rounding; the negated comparison routes any
      // non-finite quotient to code 0 instead of an out-of-range cast.
      const float r = std::floor((x[j] - qz.offset[j]) / s + 0.5f);
      if (!(r > 0.0f)) {
        c = 0;
      } else if (r >= 255.0f) {
        c = 255;
      } else {
        c = static_cast<std::uint8_t>(r);
      }
    }
    code[j] = c;
    const double sc = static_cast<double>(s) * static_cast<double>(c);
    norm += sc * sc;
  }
  if (norm_out != nullptr) *norm_out = static_cast<float>(norm);
}

void Sq8Decode(const Sq8Quantizer& qz, const std::uint8_t* code,
               std::size_t d, float* x) {
  for (std::size_t j = 0; j < d; ++j) {
    x[j] = qz.offset[j] + qz.scale[j] * static_cast<float>(code[j]);
  }
}

void Sq8PrepareQuery(const Sq8Quantizer& qz, const float* q, std::size_t d,
                     Sq8Query& out) {
  GKM_CHECK(qz.scale.size() == d && qz.offset.size() == d);
  thread_local std::vector<float> t, u;
  t.resize(d);
  u.resize(d);
  double rq = 0.0, qo = 0.0;
  float tmax = 0.0f, umax = 0.0f;
  for (std::size_t j = 0; j < d; ++j) {
    const float r = q[j] - qz.offset[j];
    rq += static_cast<double>(r) * static_cast<double>(r);
    qo += static_cast<double>(q[j]) * static_cast<double>(qz.offset[j]);
    t[j] = r * qz.scale[j];
    u[j] = q[j] * qz.scale[j];
    tmax = std::max(tmax, std::fabs(t[j]));
    umax = std::max(umax, std::fabs(u[j]));
  }
  out.rq = static_cast<float>(rq);
  out.qo = static_cast<float>(qo);
  out.l2_scale = tmax / 127.0f;
  out.ip_scale = umax / 127.0f;
  out.l2_code.resize(d);
  out.ip_code.resize(d);
  const auto quant = [](float v, float s) -> std::int8_t {
    if (!(s > 0.0f)) return 0;
    const float r = std::floor(v / s + 0.5f);
    if (!(r >= -127.0f)) return -127;
    if (r >= 127.0f) return 127;
    return static_cast<std::int8_t>(r);
  };
  for (std::size_t j = 0; j < d; ++j) {
    out.l2_code[j] = quant(t[j], out.l2_scale);
    out.ip_code[j] = quant(u[j], out.ip_scale);
  }
}

void L2SqrBatchSq8Gather(const Sq8Query& query,
                         const std::uint8_t* const* rows, const float* norms,
                         std::size_t n, std::size_t d, float* out) {
  constexpr std::size_t kBlock = 256;
  std::int32_t ibuf[kBlock];
  const internal::KernelOps& ops = Ops();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    ops.sq8_gather(query.l2_code.data(), rows + b, len, d, ibuf);
    for (std::size_t i = 0; i < len; ++i) {
      out[b + i] = Sq8L2Score(query, ibuf[i], norms[b + i]);
    }
  }
}

void L2SqrBatchSq8(const Sq8Query& query, const std::uint8_t* codes,
                   std::size_t stride, std::size_t n, std::size_t d,
                   const float* norms, float* out) {
  constexpr std::size_t kBlock = 256;
  const std::uint8_t* ptrs[kBlock];
  std::int32_t ibuf[kBlock];
  const internal::KernelOps& ops = Ops();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    for (std::size_t i = 0; i < len; ++i) ptrs[i] = codes + (b + i) * stride;
    ops.sq8_gather(query.l2_code.data(), ptrs, len, d, ibuf);
    for (std::size_t i = 0; i < len; ++i) {
      out[b + i] = Sq8L2Score(query, ibuf[i], norms[b + i]);
    }
  }
}

void DotBatchSq8Gather(const Sq8Query& query, const std::uint8_t* const* rows,
                       std::size_t n, std::size_t d, float* out) {
  constexpr std::size_t kBlock = 256;
  std::int32_t ibuf[kBlock];
  const internal::KernelOps& ops = Ops();
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    ops.sq8_gather(query.ip_code.data(), rows + b, len, d, ibuf);
    for (std::size_t i = 0; i < len; ++i) {
      out[b + i] =
          query.qo + query.ip_scale * static_cast<float>(ibuf[i]);
    }
  }
}

void AssignNearestSq8(const Sq8Quantizer& qz, const Matrix& queries,
                      const std::uint8_t* codes, std::size_t code_stride,
                      const float* norms, std::size_t n, std::uint32_t* labels,
                      float* dists) {
  GKM_CHECK(n > 0);
  const std::size_t d = queries.cols();
  GKM_CHECK(qz.scale.size() == d);
  const std::size_t nq = queries.rows();
  if (nq == 0) return;
  GKM_COUNTER_ADD("kernels.sq8.assign.queries",
                  static_cast<std::int64_t>(nq));
  float max_norm = 0.0f;
  for (std::size_t r = 0; r < n; ++r) max_norm = std::max(max_norm, norms[r]);

  constexpr std::size_t kBlock = 256;
  const std::uint8_t* ptrs[kBlock];
  std::int32_t ibuf[kBlock];
  const internal::KernelOps& ops = Ops();
  thread_local Sq8Query sq;
  thread_local std::vector<float> dec;
  dec.resize(d);

  for (std::size_t i = 0; i < nq; ++i) {
    const float* q = queries.Row(i);
    Sq8PrepareQuery(qz, q, d, sq);
    float best = std::numeric_limits<float>::max();
    float second = std::numeric_limits<float>::max();
    std::uint32_t arg = 0;
    for (std::size_t b = 0; b < n; b += kBlock) {
      const std::size_t len = std::min(kBlock, n - b);
      for (std::size_t r = 0; r < len; ++r) {
        ptrs[r] = codes + (b + r) * code_stride;
      }
      ops.sq8_gather(sq.l2_code.data(), ptrs, len, d, ibuf);
      for (std::size_t r = 0; r < len; ++r) {
        const float dist = Sq8L2Score(sq, ibuf[r], norms[b + r]);
        if (dist < best) {
          second = best;
          best = dist;
          arg = static_cast<std::uint32_t>(b + r);
        } else if (dist < second) {
          second = dist;
        }
      }
    }
    // Per-row error bound E = query-quantization term + float cushion; a
    // winner only stands when the approximate margin clears 2E (each of
    // the two rows may err by E in opposite directions).
    const float e =
        sq.l2_scale * 255.0f * static_cast<float>(d) +
        1e-5f * (static_cast<float>(d) + 16.0f) * (sq.rq + max_norm + 1.0f);
    if (second - best > 2.0f * e) {
      labels[i] = arg;
      if (dists != nullptr) {
        Sq8Decode(qz, codes + arg * code_stride, d, dec.data());
        const float* row = dec.data();
        ops.l2_gather(q, &row, 1, d, &dists[i]);
      }
    } else {
      GKM_COUNTER_ADD("kernels.sq8.assign.exact_fallback", 1);
      float bd = std::numeric_limits<float>::max();
      std::uint32_t bi = 0;
      for (std::size_t r = 0; r < n; ++r) {
        Sq8Decode(qz, codes + r * code_stride, d, dec.data());
        const float* row = dec.data();
        float dist = 0.0f;
        ops.l2_gather(q, &row, 1, d, &dist);
        if (dist < bd) {
          bd = dist;
          bi = static_cast<std::uint32_t>(r);
        }
      }
      labels[i] = bi;
      if (dists != nullptr) dists[i] = bd;
    }
  }
}

void L2SqrToTopK(const float* q, const float* base, std::size_t stride,
                 std::size_t n, std::size_t d, std::uint32_t id_offset,
                 std::uint32_t skip_id, TopK& top) {
  constexpr std::size_t kBlock = 256;
  float buf[kBlock];
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    Ops().l2_strided(q, base + b * stride, stride, len, d, buf);
    for (std::size_t i = 0; i < len; ++i) {
      const auto id = static_cast<std::uint32_t>(id_offset + b + i);
      if (id == skip_id) continue;
      if (!top.full() || buf[i] < top.WorstDist()) top.Push(id, buf[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked dot-trick kernels.
// ---------------------------------------------------------------------------

void L2SqrBatchDotTrick(const float* q, float qnorm, const float* base,
                        std::size_t stride, std::size_t n, std::size_t d,
                        const float* row_norms, float* out) {
  const internal::KernelOps& ops = Ops();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r = base + i * stride;
    float dots[4];
    ops.dot4(r, r + stride, r + 2 * stride, r + 3 * stride, q, d, dots);
    for (std::size_t j = 0; j < 4; ++j) {
      out[i + j] =
          std::max(0.0f, qnorm - 2.0f * dots[j] + row_norms[i + j]);
    }
  }
  for (; i < n; ++i) {
    out[i] = std::max(
        0.0f, qnorm - 2.0f * ops.dot1(q, base + i * stride, d) + row_norms[i]);
  }
}

namespace {

// Shared driver of both AssignNearestBlocked variants. The dot-trick pass
// finds each query's best/second candidate; a winner only stands when its
// margin clears a conservative float-error bound (see kernels.h), else the
// query is rescanned with the exact kernel. Winners that stand are
// rescored exactly when distances are requested, so outputs never carry
// dot-trick error.
void AssignCore(const float* const* queries, const float* query_norms,
                std::size_t nq, const Matrix& rows, const float* row_norms,
                std::uint32_t* labels, float* dists) {
  GKM_CHECK(rows.rows() > 0);
  const std::size_t k = rows.rows();
  const std::size_t d = rows.cols();
  const std::size_t rstride = rows.stride();
  const float* rbase = rows.Row(0);
  const internal::KernelOps& ops = Ops();
  // Per-block counter (one Add per driver call, never per row — the
  // per-query work below must stay pure kernel arithmetic).
  GKM_COUNTER_ADD("kernels.assign.queries", static_cast<std::int64_t>(nq));

  if (!ops.dot_trick) {
    for (std::size_t i = 0; i < nq; ++i) {
      float dist = 0.0f;
      labels[i] = static_cast<std::uint32_t>(
          NearestRowBatch(queries[i], rbase, rstride, k, d, &dist));
      if (dists != nullptr) dists[i] = dist;
    }
    return;
  }

  std::vector<float> rnorm_buf;
  if (row_norms == nullptr) {
    rnorm_buf.resize(k);
    RowNormsSqrBatch(rbase, rstride, k, d, rnorm_buf.data());
    row_norms = rnorm_buf.data();
  }
  float max_rn = 0.0f;
  for (std::size_t r = 0; r < k; ++r) max_rn = std::max(max_rn, row_norms[r]);

  for (std::size_t i = 0; i < nq; i += 4) {
    const std::size_t lim = std::min<std::size_t>(4, nq - i);
    const float* q[4];
    float qn[4];
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t src = i + (j < lim ? j : 0);
      q[j] = queries[src];
      qn[j] = query_norms != nullptr ? query_norms[src]
                                     : ops.dot1(q[j], q[j], d);
    }
    float best[4], second[4];
    std::uint32_t arg[4] = {0, 0, 0, 0};
    for (std::size_t j = 0; j < 4; ++j) {
      best[j] = std::numeric_limits<float>::max();
      second[j] = std::numeric_limits<float>::max();
    }
    for (std::size_t r = 0; r < k; ++r) {
      float dots[4];
      ops.dot4(q[0], q[1], q[2], q[3], rbase + r * rstride, d, dots);
      const float rn = row_norms[r];
      for (std::size_t j = 0; j < 4; ++j) {
        const float dist = qn[j] - 2.0f * dots[j] + rn;
        if (dist < best[j]) {
          second[j] = best[j];
          best[j] = dist;
          arg[j] = static_cast<std::uint32_t>(r);
        } else if (dist < second[j]) {
          second[j] = dist;
        }
      }
    }
    for (std::size_t j = 0; j < lim; ++j) {
      // Conservative bound on |dot-trick - exact| for this query: the
      // per-lane series has ~d/8 sequential adds of terms bounded by the
      // norm scale; the constant carries a >30x cushion.
      const float err = 1e-6f * (0.25f * static_cast<float>(d) + 8.0f) *
                        (qn[j] + max_rn);
      if (second[j] - best[j] > err) {
        labels[i + j] = arg[j];
        if (dists != nullptr) {
          const float* row = rbase + arg[j] * rstride;
          ops.l2_gather(q[j], &row, 1, d, &dists[i + j]);
        }
      } else {
        // Counting here is in-budget: the fallback already pays a full
        // exact rescan over all k rows.
        GKM_COUNTER_ADD("kernels.assign.exact_fallback", 1);
        float dist = 0.0f;
        labels[i + j] = static_cast<std::uint32_t>(
            NearestRowBatch(q[j], rbase, rstride, k, d, &dist));
        if (dists != nullptr) dists[i + j] = dist;
      }
    }
  }
}

}  // namespace

void AssignNearestBlocked(const Matrix& queries, const Matrix& rows,
                          const float* query_norms, const float* row_norms,
                          std::uint32_t* labels, float* dists) {
  GKM_CHECK(queries.cols() == rows.cols());
  const std::size_t nq = queries.rows();
  if (nq == 0) return;
  std::vector<const float*> ptrs(nq);
  for (std::size_t i = 0; i < nq; ++i) ptrs[i] = queries.Row(i);
  AssignCore(ptrs.data(), query_norms, nq, rows, row_norms, labels, dists);
}

void AssignNearestBlockedGather(const float* const* queries,
                                const float* query_norms, std::size_t nq,
                                const Matrix& rows, const float* row_norms,
                                std::uint32_t* labels, float* dists) {
  if (nq == 0) return;
  AssignCore(queries, query_norms, nq, rows, row_norms, labels, dists);
}

// ---------------------------------------------------------------------------
// RowNormCache.
// ---------------------------------------------------------------------------

void RowNormCache::Invalidate(std::size_t row) {
  if (!all_stale_) stale_.push_back(static_cast<std::uint32_t>(row));
}

const float* RowNormCache::Refresh(const Matrix& m) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  if (n == 0) return nullptr;
  if (all_stale_ || norms_.size() != n) {
    norms_.resize(n);
    RowNormsSqrBatch(m.Row(0), m.stride(), n, d, norms_.data());
    all_stale_ = false;
    stale_.clear();
    return norms_.data();
  }
  for (const std::uint32_t r : stale_) {
    if (r < n) RowNormsSqrBatch(m.Row(r), m.stride(), 1, d, &norms_[r]);
  }
  stale_.clear();
  return norms_.data();
}

}  // namespace gkm
