// Copyright 2026 The gkmeans Authors.
// Bounded nearest-neighbor list: the per-node building block of every KNN
// graph in the library. Keeps the k closest (id, distance) pairs seen so
// far, rejecting duplicates, with O(log k) insertion via a max-heap.

#ifndef GKM_COMMON_TOP_K_H_
#define GKM_COMMON_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace gkm {

/// One directed KNN-graph edge: `id` is the neighbor, `dist` the squared L2
/// distance to it. Ordering is by distance, ties broken by id so sorts are
/// deterministic.
struct Neighbor {
  std::uint32_t id = 0;
  float dist = 0.0f;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist == b.dist;
  }
};

/// Fixed-capacity set of the `k` closest neighbors observed so far.
///
/// Insertion keeps a max-heap on distance so the current worst element is
/// inspected in O(1); a linear duplicate scan over <= k entries precedes any
/// structural change (k is ~50 here, so the scan is cheaper in practice than
/// maintaining a side hash set).
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { GKM_CHECK(k > 0); heap_.reserve(k); }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Distance of the current worst retained neighbor; +inf semantics are the
  /// caller's concern when not full().
  float WorstDist() const {
    GKM_DCHECK(!heap_.empty());
    return heap_.front().dist;
  }

  /// Attempts to add (id, dist). Returns true when the set changed.
  bool Push(std::uint32_t id, float dist) {
    if (full() && dist >= heap_.front().dist) return false;
    for (const Neighbor& nb : heap_) {
      if (nb.id == id) return false;
    }
    if (full()) {
      std::pop_heap(heap_.begin(), heap_.end(), ByDist);
      heap_.back() = Neighbor{id, dist};
    } else {
      heap_.push_back(Neighbor{id, dist});
    }
    std::push_heap(heap_.begin(), heap_.end(), ByDist);
    return true;
  }

  /// Removes the entry with `id` if present; returns true when one was
  /// removed. O(k) scan plus an O(k) re-heapify — removal is the cold path
  /// (tombstone purges and in-edge repair), so no index is maintained.
  bool EraseId(std::uint32_t id) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].id != id) continue;
      heap_.erase(heap_.begin() + static_cast<std::ptrdiff_t>(i));
      std::make_heap(heap_.begin(), heap_.end(), ByDist);
      return true;
    }
    return false;
  }

  /// Extracts the contents sorted ascending by distance, leaving the set
  /// empty.
  std::vector<Neighbor> TakeSorted() {
    std::sort(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

  /// Read-only view of the unordered contents.
  const std::vector<Neighbor>& items() const { return heap_; }

 private:
  static bool ByDist(const Neighbor& a, const Neighbor& b) { return a < b; }

  std::size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace gkm

#endif  // GKM_COMMON_TOP_K_H_
