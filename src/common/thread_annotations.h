// Copyright 2026 The gkmeans Authors.
// Clang thread-safety-analysis capability macros, the compile-time face of
// the concurrency contracts prose-documented in docs/architecture.md
// ("Threading model"). Annotating a lock as a GKM_CAPABILITY and its
// guarded fields with GKM_GUARDED_BY turns "searches hold the reader side,
// commits hold the writer side" from a comment the next refactor can break
// into a build error (-Wthread-safety -Werror, the GKM_THREAD_SAFETY CMake
// option and its CI job).
//
// Every macro expands to nothing on compilers without the attribute (GCC,
// MSVC), so annotated headers stay portable; only Clang builds analyze.
// Conventions — which fields to guard, how to express the audited
// single-writer unlocked reads, when GKM_NO_THREAD_SAFETY_ANALYSIS is
// acceptable — live in docs/static-analysis.md.

#ifndef GKM_COMMON_THREAD_ANNOTATIONS_H_
#define GKM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define GKM_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define GKM_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

/// Marks a type as a lock ("capability"): its acquire/release members carry
/// the GKM_ACQUIRE*/GKM_RELEASE* attributes below, and GKM_GUARDED_BY
/// references instances of it.
#define GKM_CAPABILITY(name) GKM_THREAD_ANNOTATION_IMPL(capability(name))

/// Marks an RAII guard type: constructing acquires, destructing releases.
#define GKM_SCOPED_CAPABILITY GKM_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Field may only be read/written while holding `x` (shared suffices for
/// reads, exclusive for writes).
#define GKM_GUARDED_BY(x) GKM_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define GKM_PT_GUARDED_BY(x) GKM_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Function requires the capability exclusively (resp. shared) on entry and
/// does not release it.
#define GKM_REQUIRES(...) \
  GKM_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define GKM_REQUIRES_SHARED(...) \
  GKM_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return.
#define GKM_ACQUIRE(...) \
  GKM_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define GKM_ACQUIRE_SHARED(...) \
  GKM_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (either mode for the plain form).
#define GKM_RELEASE(...) \
  GKM_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define GKM_RELEASE_SHARED(...) \
  GKM_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
#define GKM_RELEASE_GENERIC(...) \
  GKM_THREAD_ANNOTATION_IMPL(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire and reports success as `ret`.
#define GKM_TRY_ACQUIRE(ret, ...) \
  GKM_THREAD_ANNOTATION_IMPL(try_acquire_capability(ret, __VA_ARGS__))
#define GKM_TRY_ACQUIRE_SHARED(ret, ...) \
  GKM_THREAD_ANNOTATION_IMPL(try_acquire_shared_capability(ret, __VA_ARGS__))

/// Function must NOT be called while holding `x` (deadlock guard for
/// re-entrant call graphs).
#define GKM_EXCLUDES(...) \
  GKM_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability IS held here without acquiring it —
/// the annotation for externally-serialized access (e.g. the documented
/// single-ingest-thread unlocked reads). Each call site must carry a
/// comment naming the serialization source; see docs/static-analysis.md.
#define GKM_ASSERT_CAPABILITY(x) \
  GKM_THREAD_ANNOTATION_IMPL(assert_capability(x))
#define GKM_ASSERT_SHARED_CAPABILITY(x) \
  GKM_THREAD_ANNOTATION_IMPL(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define GKM_RETURN_CAPABILITY(x) \
  GKM_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: function body is not analyzed. Reserved for audited
/// trylock/condition-variable patterns the analysis cannot express; each
/// use must carry an inline justification (enforced by review, tallied in
/// docs/static-analysis.md). Not permitted in src/stream/.
#define GKM_NO_THREAD_SAFETY_ANALYSIS \
  GKM_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // GKM_COMMON_THREAD_ANNOTATIONS_H_
