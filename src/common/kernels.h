// Copyright 2026 The gkmeans Authors.
// Batched distance kernels behind runtime SIMD dispatch — the single
// compute substrate under every hot path in the library (k-means
// assignment, graph construction, graph walks, serving-path search, eval).
//
// Two families, two contracts:
//
//  * EXACT one-to-many kernels (L2SqrBatch / L2SqrBatchGather /
//    RowNormsSqrBatch / NearestRowBatch / L2SqrToTopK): bit-identical to
//    the scalar L2Sqr/Dot in common/distance.h at EVERY dispatch tier.
//    The SIMD implementations process several rows per step but keep each
//    row's arithmetic in the same 4-lane accumulator structure (and the
//    same mul-then-add rounding) as the scalar code, so checkpoints,
//    graph edges and cluster assignments do not depend on the host CPU.
//
//  * BLOCKED dot-trick kernels (L2SqrBatchDotTrick and the
//    AssignNearestBlocked* drivers): compute ||x||^2 - 2 x.c + ||c||^2
//    with cached row norms and free-association FMA at full vector width.
//    Raw distances carry a ~1e-4 relative accuracy contract and are NOT
//    bit-stable across tiers. The Assign* drivers are still exact-by-
//    construction: any query whose top-2 margin falls inside the float
//    error bound is rescanned with the exact kernel, and every winner's
//    distance is exactly rescored, so returned labels and distances match
//    the scalar scan bit-for-bit — only the FLOP count changes.
//
// Dispatch: the tier (AVX-512 / AVX2+FMA / NEON / scalar) is detected once
// at first use. GKM_FORCE_SCALAR=1 in the environment pins the scalar tier
// (useful for bit-reproducing runs recorded on unknown hardware); the
// scalar tier also disables the dot-trick entirely, making every code path
// identical to the pre-kernel-layer library.

#ifndef GKM_COMMON_KERNELS_H_
#define GKM_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/top_k.h"

namespace gkm {

/// Instruction-set tier the dispatcher selected (or can select).
enum class SimdTier { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// Tier serving all public kernel entry points in this process. Detected
/// once (CPU features + GKM_FORCE_SCALAR) and then immutable.
SimdTier ActiveSimdTier();

/// Human-readable tier name ("avx512", "avx2", "neon", "scalar").
const char* SimdTierName(SimdTier tier);

// ---------------------------------------------------------------------------
// Exact one-to-many kernels (bit-identical to scalar at every tier).
// ---------------------------------------------------------------------------

/// out[i] = L2Sqr(q, base + i*stride, d) for i in [0, n).
void L2SqrBatch(const float* q, const float* base, std::size_t stride,
                std::size_t n, std::size_t d, float* out);

/// out[i] = L2Sqr(q, rows[i], d) — gathered-row variant for adjacency
/// walks and candidate lists.
void L2SqrBatchGather(const float* q, const float* const* rows,
                      std::size_t n, std::size_t d, float* out);

/// out[i] = NormSqr(base + i*stride, d) — vectorized row norms, bit-equal
/// to Dot(row, row).
void RowNormsSqrBatch(const float* base, std::size_t stride, std::size_t n,
                      std::size_t d, float* out);

/// Index of the row minimizing L2Sqr(q, row) over n strided rows, scanning
/// in row order with strict less-than — identical winner and distance to
/// the scalar NearestRow loop. `dist_out` (optional) receives the winning
/// distance. n must be > 0.
std::size_t NearestRowBatch(const float* q, const float* base,
                            std::size_t stride, std::size_t n, std::size_t d,
                            float* dist_out = nullptr);

/// Streams rows [0, n) into `top` as (id_offset + i, L2Sqr(q, row_i)),
/// skipping i == skip_id - id_offset when skip_id != kNoSkip; push order is
/// row order, so the resulting set matches the scalar loop exactly.
inline constexpr std::uint32_t kNoSkipRow = 0xffffffffu;
void L2SqrToTopK(const float* q, const float* base, std::size_t stride,
                 std::size_t n, std::size_t d, std::uint32_t id_offset,
                 std::uint32_t skip_id, TopK& top);

/// out[i] = dot(rows[i], q) where rows are double-precision composite
/// vectors and q is a float sample — the mixed-precision kernel behind the
/// BKM Delta-I gains. Bit-identical at every tier to the scalar
/// 2-accumulator loop in kmeans/cluster_state.cc (even/odd element lanes,
/// mul-then-add, tail into lane 0).
void DotDFBatchGather(const float* q, const double* const* rows,
                      std::size_t n, std::size_t d, double* out);

// ---------------------------------------------------------------------------
// Metric parameter + exact dot kernels.
// ---------------------------------------------------------------------------

/// Similarity the score kernels evaluate. Scores are smaller-is-closer in
/// every metric so TopK/NearestRow logic is metric-agnostic.
enum class Metric { kL2 = 0, kInnerProduct = 1, kCosine = 2 };

/// out[i] = dot(q, base + i*stride) — EXACT family: bit-identical at every
/// tier to the scalar 4-lane DotOne loop (mul-then-add, tail into lane 0,
/// reduction (s0+s1)+(s2+s3)).
void DotBatch(const float* q, const float* base, std::size_t stride,
              std::size_t n, std::size_t d, float* out);

/// out[i] = dot(q, rows[i]) — gathered-row variant, same exactness.
void DotBatchGather(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out);

/// Batched smaller-is-closer scores under `metric`:
///   kL2           → L2SqrBatch (bit-identical to scalar at every tier)
///   kInnerProduct → -dot(q, row) (the dot is bit-identical; the negation
///                   is a sign flip, also bit-stable)
///   kCosine       → 1 - dot / sqrt(qn * rn): the dot and both norms are
///                   exact-family values, the sqrt/divide epilogue runs in
///                   fixed scalar order — deterministic and bit-stable
///                   across tiers, but not decomposable into scalar
///                   distance.h calls. Rows or queries with zero norm score
///                   a neutral 1.0.
/// `q_norm_sqr` / `row_norms_sqr` are only read for kCosine; pass cached
/// values or nullptr row norms to have them computed internally.
void ScoreBatch(Metric metric, const float* q, float q_norm_sqr,
                const float* base, std::size_t stride, std::size_t n,
                std::size_t d, const float* row_norms_sqr, float* out);

// ---------------------------------------------------------------------------
// SQ8 asymmetric kernels: fp32 query vs u8-coded rows.
//
// Rows are stored as per-dimension affine codes c_j with
// decode(c)_j = offset_j + scale_j * c_j. Queries are re-quantized once per
// query to i8 so the inner loop is a pure u8×i8 integer dot — integer
// arithmetic is exact, so the accumulation is bit-identical across SIMD
// tiers by construction and tiers are free to reorder it. The float
// epilogue (rq - 2*st*idot + norm) runs in fixed scalar order in the
// public wrappers, so batch outputs are bit-identical across tiers too.
// Approximation error vs the decoded-row exact distance is bounded by the
// query-side quantization step: |approx - exact| <= st * 255 * d plus a
// float-rounding cushion (see docs/kernels.md).
// ---------------------------------------------------------------------------

/// Per-dimension affine quantizer: decode(c)_j = offset[j] + scale[j]*c_j.
struct Sq8Quantizer {
  std::vector<float> scale;   // >= 0; 0 marks a constant dimension
  std::vector<float> offset;
};

/// Trains offset_j = min_j, scale_j = (max_j - min_j)/255 over n rows.
/// Min/max are order-independent, so training is deterministic regardless
/// of row order or thread count.
Sq8Quantizer Sq8Train(const float* base, std::size_t stride, std::size_t n,
                      std::size_t d);
Sq8Quantizer Sq8TrainGather(const float* const* rows, std::size_t n,
                            std::size_t d);

/// code[j] = clamp(round((x[j]-offset_j)/scale_j), 0, 255) (0 where
/// scale_j == 0; non-finite inputs clamp like any out-of-range value).
/// *norm_out (optional) receives float(sum_j (scale_j*code_j)^2),
/// accumulated in double and rounded once — the row constant of the
/// asymmetric L2 decomposition.
void Sq8Encode(const Sq8Quantizer& q, const float* x, std::size_t d,
               std::uint8_t* code, float* norm_out = nullptr);

/// x[j] = offset_j + scale_j*code[j] — the decoded row that every "exact"
/// SQ8 result below is defined against.
void Sq8Decode(const Sq8Quantizer& q, const std::uint8_t* code,
               std::size_t d, float* x);

/// Per-query state for the asymmetric kernels, filled by Sq8PrepareQuery.
/// L2 path: with r_j = q_j - offset_j and t_j = r_j*scale_j,
///   L2Sqr(q, decode(c)) = rq - 2*sum_j t_j c_j + norm(c);
/// t is re-quantized to i8 (l2_code = round(t/l2_scale)). IP path: with
/// u_j = q_j*scale_j, dot(q, decode(c)) = qo + sum_j u_j c_j, u re-quantized
/// likewise.
struct Sq8Query {
  std::vector<std::int8_t> l2_code;
  float l2_scale = 0.0f;  // st: max|t_j| / 127
  float rq = 0.0f;        // sum (q_j - offset_j)^2
  std::vector<std::int8_t> ip_code;
  float ip_scale = 0.0f;  // su: max|u_j| / 127
  float qo = 0.0f;        // sum q_j * offset_j
};

void Sq8PrepareQuery(const Sq8Quantizer& qz, const float* q, std::size_t d,
                     Sq8Query& out);

/// out[i] = max(0, rq - 2*l2_scale*idot(l2_code, row_i) + norms[i]) over n
/// strided code rows (stride in BYTES/codes, typically == d: codes are
/// stored packed). Bit-identical across tiers; approximate vs the decoded
/// exact distance per the error bound above.
void L2SqrBatchSq8(const Sq8Query& query, const std::uint8_t* codes,
                   std::size_t stride, std::size_t n, std::size_t d,
                   const float* norms, float* out);

/// Gathered-row variant: rows[i] is a code row, norms[i] its row constant.
void L2SqrBatchSq8Gather(const Sq8Query& query,
                         const std::uint8_t* const* rows, const float* norms,
                         std::size_t n, std::size_t d, float* out);

/// out[i] = qo + ip_scale*idot(ip_code, row_i) ≈ dot(q, decode(row_i)) —
/// the inner-product face of the asymmetric kernels. Same bit-stability
/// and error-bound structure as the L2 path (bound uses |c| <= 255d).
void DotBatchSq8Gather(const Sq8Query& query, const std::uint8_t* const* rows,
                       std::size_t n, std::size_t d, float* out);

/// Assigns each query row to its nearest DECODED code row:
/// labels[i] = argmin_r L2Sqr(query_i, decode(row_r)), first winner on
/// ties; dists[i] (optional) = the exact winning decoded distance. Same
/// contract as AssignNearestBlocked: the quantized scan is only a filter —
/// queries whose top-2 approximate margin falls inside the error bound are
/// re-ranked with a full decode-and-exact-scan, and every winner's
/// distance is rescored exactly, so labels and distances are bit-identical
/// to a scalar decode-and-scan at every tier. `code_stride` in codes
/// (packed rows pass d). n must be > 0.
void AssignNearestSq8(const Sq8Quantizer& qz, const Matrix& queries,
                      const std::uint8_t* codes, std::size_t code_stride,
                      const float* norms, std::size_t n, std::uint32_t* labels,
                      float* dists = nullptr);

// ---------------------------------------------------------------------------
// Blocked dot-trick kernels (cached norms, FMA, ~1e-4 relative accuracy).
// ---------------------------------------------------------------------------

/// out[i] = max(0, qnorm - 2*dot(q, row_i) + row_norms[i]). Fast, not
/// bit-stable across tiers; see the accuracy contract in the file comment.
/// On the scalar tier this still evaluates the dot-trick (scalar FLOPs).
void L2SqrBatchDotTrick(const float* q, float qnorm, const float* base,
                        std::size_t stride, std::size_t n, std::size_t d,
                        const float* row_norms, float* out);

/// Assigns each query row of `queries` to its nearest row of `rows`:
/// labels[i] = argmin_r L2Sqr(query_i, row_r), dists[i] (optional) = the
/// exact winning distance. Results are bit-identical to a scalar
/// NearestRow scan at every tier (see file comment: the dot-trick is only
/// a filter; small-margin queries fall back to the exact kernel and every
/// winner is rescored exactly). `query_norms` / `row_norms` may be null
/// (computed internally); pass cached norms to skip the recomputation —
/// the point of RowNormCache below.
void AssignNearestBlocked(const Matrix& queries, const Matrix& rows,
                          const float* query_norms, const float* row_norms,
                          std::uint32_t* labels, float* dists = nullptr);

/// Gathered-query variant (mini-batch sampling): queries[i] points at a
/// d-dimensional vector with norm query_norms[i] (may be null).
void AssignNearestBlockedGather(const float* const* queries,
                                const float* query_norms, std::size_t nq,
                                const Matrix& rows, const float* row_norms,
                                std::uint32_t* labels, float* dists = nullptr);

/// Cached squared row norms of a mutating matrix: recompute only rows that
/// were invalidated (or appeared) since the last Refresh. Callers hand the
/// refreshed pointer to the blocked kernels, fixing the per-call norm
/// recomputation the naive dot-trick would do — mini-batch invalidates
/// only the centers a gradient step touched; Lloyd invalidates all once
/// per centroid update instead of once per point.
class RowNormCache {
 public:
  /// Marks one row stale (cheap, idempotent).
  void Invalidate(std::size_t row);
  /// Marks every row stale (after a whole-table centroid update).
  void InvalidateAll() { all_stale_ = true; }

  /// Returns a pointer to `m.rows()` up-to-date norms. O(changed rows * d).
  const float* Refresh(const Matrix& m);

 private:
  std::vector<float> norms_;
  std::vector<std::uint32_t> stale_;  // row indices pending recompute
  bool all_stale_ = true;
};

namespace internal {

/// Per-tier kernel table — exposed so tests and benches can pin a tier and
/// compare implementations inside one process. Entries mirror the public
/// functions; `dot_trick` is false on the scalar tier (the Assign* drivers
/// then use the exact scan directly).
struct KernelOps {
  void (*l2_strided)(const float* q, const float* base, std::size_t stride,
                     std::size_t n, std::size_t d, float* out);
  void (*l2_gather)(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out);
  void (*dot_df_gather)(const float* q, const double* const* rows,
                        std::size_t n, std::size_t d, double* out);
  void (*dot4)(const float* q0, const float* q1, const float* q2,
               const float* q3, const float* c, std::size_t d, float* out4);
  float (*dot1)(const float* a, const float* b, std::size_t d);
  // Exact dot family (bit-identical to the scalar 4-lane DotOne).
  void (*dot_strided)(const float* q, const float* base, std::size_t stride,
                      std::size_t n, std::size_t d, float* out);
  void (*dot_gather)(const float* q, const float* const* rows, std::size_t n,
                     std::size_t d, float* out);
  // SQ8 integer core: out[i] = sum_j q[j]*rows[i][j] in i32 (exact, so
  // bit-identical across tiers regardless of accumulation order).
  void (*sq8_gather)(const std::int8_t* q, const std::uint8_t* const* rows,
                     std::size_t n, std::size_t d, std::int32_t* out);
  bool dot_trick;
};

/// Table for `tier`; aborts if the current CPU cannot execute it. Tiers at
/// or below BestSupportedTier() are always safe.
const KernelOps& OpsForTier(SimdTier tier);

/// Best tier the CPU supports, ignoring GKM_FORCE_SCALAR.
SimdTier BestSupportedTier();

}  // namespace internal

}  // namespace gkm

#endif  // GKM_COMMON_KERNELS_H_
