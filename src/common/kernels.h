// Copyright 2026 The gkmeans Authors.
// Batched distance kernels behind runtime SIMD dispatch — the single
// compute substrate under every hot path in the library (k-means
// assignment, graph construction, graph walks, serving-path search, eval).
//
// Two families, two contracts:
//
//  * EXACT one-to-many kernels (L2SqrBatch / L2SqrBatchGather /
//    RowNormsSqrBatch / NearestRowBatch / L2SqrToTopK): bit-identical to
//    the scalar L2Sqr/Dot in common/distance.h at EVERY dispatch tier.
//    The SIMD implementations process several rows per step but keep each
//    row's arithmetic in the same 4-lane accumulator structure (and the
//    same mul-then-add rounding) as the scalar code, so checkpoints,
//    graph edges and cluster assignments do not depend on the host CPU.
//
//  * BLOCKED dot-trick kernels (L2SqrBatchDotTrick and the
//    AssignNearestBlocked* drivers): compute ||x||^2 - 2 x.c + ||c||^2
//    with cached row norms and free-association FMA at full vector width.
//    Raw distances carry a ~1e-4 relative accuracy contract and are NOT
//    bit-stable across tiers. The Assign* drivers are still exact-by-
//    construction: any query whose top-2 margin falls inside the float
//    error bound is rescanned with the exact kernel, and every winner's
//    distance is exactly rescored, so returned labels and distances match
//    the scalar scan bit-for-bit — only the FLOP count changes.
//
// Dispatch: the tier (AVX-512 / AVX2+FMA / NEON / scalar) is detected once
// at first use. GKM_FORCE_SCALAR=1 in the environment pins the scalar tier
// (useful for bit-reproducing runs recorded on unknown hardware); the
// scalar tier also disables the dot-trick entirely, making every code path
// identical to the pre-kernel-layer library.

#ifndef GKM_COMMON_KERNELS_H_
#define GKM_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/top_k.h"

namespace gkm {

/// Instruction-set tier the dispatcher selected (or can select).
enum class SimdTier { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// Tier serving all public kernel entry points in this process. Detected
/// once (CPU features + GKM_FORCE_SCALAR) and then immutable.
SimdTier ActiveSimdTier();

/// Human-readable tier name ("avx512", "avx2", "neon", "scalar").
const char* SimdTierName(SimdTier tier);

// ---------------------------------------------------------------------------
// Exact one-to-many kernels (bit-identical to scalar at every tier).
// ---------------------------------------------------------------------------

/// out[i] = L2Sqr(q, base + i*stride, d) for i in [0, n).
void L2SqrBatch(const float* q, const float* base, std::size_t stride,
                std::size_t n, std::size_t d, float* out);

/// out[i] = L2Sqr(q, rows[i], d) — gathered-row variant for adjacency
/// walks and candidate lists.
void L2SqrBatchGather(const float* q, const float* const* rows,
                      std::size_t n, std::size_t d, float* out);

/// out[i] = NormSqr(base + i*stride, d) — vectorized row norms, bit-equal
/// to Dot(row, row).
void RowNormsSqrBatch(const float* base, std::size_t stride, std::size_t n,
                      std::size_t d, float* out);

/// Index of the row minimizing L2Sqr(q, row) over n strided rows, scanning
/// in row order with strict less-than — identical winner and distance to
/// the scalar NearestRow loop. `dist_out` (optional) receives the winning
/// distance. n must be > 0.
std::size_t NearestRowBatch(const float* q, const float* base,
                            std::size_t stride, std::size_t n, std::size_t d,
                            float* dist_out = nullptr);

/// Streams rows [0, n) into `top` as (id_offset + i, L2Sqr(q, row_i)),
/// skipping i == skip_id - id_offset when skip_id != kNoSkip; push order is
/// row order, so the resulting set matches the scalar loop exactly.
inline constexpr std::uint32_t kNoSkipRow = 0xffffffffu;
void L2SqrToTopK(const float* q, const float* base, std::size_t stride,
                 std::size_t n, std::size_t d, std::uint32_t id_offset,
                 std::uint32_t skip_id, TopK& top);

/// out[i] = dot(rows[i], q) where rows are double-precision composite
/// vectors and q is a float sample — the mixed-precision kernel behind the
/// BKM Delta-I gains. Bit-identical at every tier to the scalar
/// 2-accumulator loop in kmeans/cluster_state.cc (even/odd element lanes,
/// mul-then-add, tail into lane 0).
void DotDFBatchGather(const float* q, const double* const* rows,
                      std::size_t n, std::size_t d, double* out);

// ---------------------------------------------------------------------------
// Blocked dot-trick kernels (cached norms, FMA, ~1e-4 relative accuracy).
// ---------------------------------------------------------------------------

/// out[i] = max(0, qnorm - 2*dot(q, row_i) + row_norms[i]). Fast, not
/// bit-stable across tiers; see the accuracy contract in the file comment.
/// On the scalar tier this still evaluates the dot-trick (scalar FLOPs).
void L2SqrBatchDotTrick(const float* q, float qnorm, const float* base,
                        std::size_t stride, std::size_t n, std::size_t d,
                        const float* row_norms, float* out);

/// Assigns each query row of `queries` to its nearest row of `rows`:
/// labels[i] = argmin_r L2Sqr(query_i, row_r), dists[i] (optional) = the
/// exact winning distance. Results are bit-identical to a scalar
/// NearestRow scan at every tier (see file comment: the dot-trick is only
/// a filter; small-margin queries fall back to the exact kernel and every
/// winner is rescored exactly). `query_norms` / `row_norms` may be null
/// (computed internally); pass cached norms to skip the recomputation —
/// the point of RowNormCache below.
void AssignNearestBlocked(const Matrix& queries, const Matrix& rows,
                          const float* query_norms, const float* row_norms,
                          std::uint32_t* labels, float* dists = nullptr);

/// Gathered-query variant (mini-batch sampling): queries[i] points at a
/// d-dimensional vector with norm query_norms[i] (may be null).
void AssignNearestBlockedGather(const float* const* queries,
                                const float* query_norms, std::size_t nq,
                                const Matrix& rows, const float* row_norms,
                                std::uint32_t* labels, float* dists = nullptr);

/// Cached squared row norms of a mutating matrix: recompute only rows that
/// were invalidated (or appeared) since the last Refresh. Callers hand the
/// refreshed pointer to the blocked kernels, fixing the per-call norm
/// recomputation the naive dot-trick would do — mini-batch invalidates
/// only the centers a gradient step touched; Lloyd invalidates all once
/// per centroid update instead of once per point.
class RowNormCache {
 public:
  /// Marks one row stale (cheap, idempotent).
  void Invalidate(std::size_t row);
  /// Marks every row stale (after a whole-table centroid update).
  void InvalidateAll() { all_stale_ = true; }

  /// Returns a pointer to `m.rows()` up-to-date norms. O(changed rows * d).
  const float* Refresh(const Matrix& m);

 private:
  std::vector<float> norms_;
  std::vector<std::uint32_t> stale_;  // row indices pending recompute
  bool all_stale_ = true;
};

namespace internal {

/// Per-tier kernel table — exposed so tests and benches can pin a tier and
/// compare implementations inside one process. Entries mirror the public
/// functions; `dot_trick` is false on the scalar tier (the Assign* drivers
/// then use the exact scan directly).
struct KernelOps {
  void (*l2_strided)(const float* q, const float* base, std::size_t stride,
                     std::size_t n, std::size_t d, float* out);
  void (*l2_gather)(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out);
  void (*dot_df_gather)(const float* q, const double* const* rows,
                        std::size_t n, std::size_t d, double* out);
  void (*dot4)(const float* q0, const float* q1, const float* q2,
               const float* q3, const float* c, std::size_t d, float* out4);
  float (*dot1)(const float* a, const float* b, std::size_t d);
  bool dot_trick;
};

/// Table for `tier`; aborts if the current CPU cannot execute it. Tiers at
/// or below BestSupportedTier() are always safe.
const KernelOps& OpsForTier(SimdTier tier);

/// Best tier the CPU supports, ignoring GKM_FORCE_SCALAR.
SimdTier BestSupportedTier();

}  // namespace internal

}  // namespace gkm

#endif  // GKM_COMMON_KERNELS_H_
