// Copyright 2026 The gkmeans Authors.
// Annotated lock types: thin wrappers over std::mutex / std::shared_mutex
// carrying the thread-safety-analysis capability attributes from
// common/thread_annotations.h, plus their RAII guards and a condition
// variable that keeps the capability visible across waits.
//
// The standard-library lock types cannot be annotated (libstdc++ ships
// them bare), so the library's concurrency-bearing classes hold these
// wrappers instead; under any compiler but Clang they compile to exactly
// the std type plus nothing. Lock/Unlock are spelled both ways — Pascal
// for annotated call sites, lowercase std-style so std::unique_lock and
// std::condition_variable_any still interoperate where needed.

#ifndef GKM_COMMON_MUTEX_H_
#define GKM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace gkm {

/// Annotated exclusive mutex. All operations are usable on a const object
/// (the inner mutex is mutable) so const accessors can take the lock, as
/// with std practice for synchronization members.
class GKM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() const GKM_ACQUIRE() { mu_.lock(); }
  void Unlock() const GKM_RELEASE() { mu_.unlock(); }
  bool TryLock() const GKM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// std Lockable surface (std::condition_variable_any, std::unique_lock).
  void lock() const GKM_ACQUIRE() { mu_.lock(); }
  void unlock() const GKM_RELEASE() { mu_.unlock(); }
  bool try_lock() const GKM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  mutable std::mutex mu_;
};

/// RAII exclusive guard over a Mutex.
class GKM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(const Mutex& mu) GKM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() GKM_RELEASE() { mu_.Unlock(); }

 private:
  const Mutex& mu_;
};

/// Condition variable bound to Mutex. Waits take the locked Mutex itself
/// (it is the Lockable); the transient release inside a wait is invisible
/// to the analysis, which is sound for the predicate-loop idiom — the
/// capability is re-held whenever caller code runs. Annotate wait
/// predicates with GKM_REQUIRES(mu) so their guarded-field reads check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(const Mutex& mu) GKM_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(const Mutex& mu, Pred pred) GKM_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  /// Returns pred()'s value on wake (false = timed out with pred false).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(const Mutex& mu, const std::chrono::duration<Rep, Period>& d,
               Pred pred) GKM_REQUIRES(mu) {
    return cv_.wait_for(mu, d, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// Annotated reader-writer mutex. Copy/move construct a FRESH mutex: the
/// lock guards its owning object's state, which is never shared with a
/// copy — the semantics the stream graph types rely on to stay movable
/// (copying/moving while locked is the caller's bug, as with any
/// mutex-owning type). All operations are const (mutable inner mutex).
class GKM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) {}
  SharedMutex& operator=(const SharedMutex&) { return *this; }

  void Lock() const GKM_ACQUIRE() { mu_.lock(); }
  void Unlock() const GKM_RELEASE() { mu_.unlock(); }
  void LockShared() const GKM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() const GKM_RELEASE_SHARED() { mu_.unlock_shared(); }

  /// Externally-serialized access claims: tell the analysis the capability
  /// is held without taking it. For the audited patterns only — a pool
  /// worker borrowing the shared capability its submitter holds for the
  /// whole fan-out, or a documented quiescent/single-ingest-thread
  /// accessor — each call site must say which (docs/static-analysis.md).
  void AssertHeld() const GKM_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const GKM_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  mutable std::shared_mutex mu_;
};

/// RAII shared (reader) guard over a SharedMutex.
class GKM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(const SharedMutex& mu) GKM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() GKM_RELEASE_GENERIC() { mu_.UnlockShared(); }

 private:
  const SharedMutex& mu_;
};

/// RAII exclusive (writer) guard over a SharedMutex.
class GKM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(const SharedMutex& mu) GKM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() GKM_RELEASE() { mu_.Unlock(); }

 private:
  const SharedMutex& mu_;
};

}  // namespace gkm

#endif  // GKM_COMMON_MUTEX_H_
