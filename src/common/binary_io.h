// Copyright 2026 The gkmeans Authors.
// RAII stdio handle plus checked scalar/array primitives — the shared
// substrate of every binary reader/writer in the library (the *vecs
// formats of dataset/io, KnnGraph serialization, stream checkpoints).
// Lives in common/ so lower-level modules never depend on dataset/.

#ifndef GKM_COMMON_BINARY_IO_H_
#define GKM_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/matrix.h"

namespace gkm {
namespace io {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// Opens `path` with `mode`, aborting with the path on failure.
inline File OpenOrDie(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  GKM_CHECK_MSG(f != nullptr, path.c_str());
  return f;
}

template <typename T>
void WriteRaw(std::FILE* f, const T& v) {
  GKM_CHECK(std::fwrite(&v, sizeof(T), 1, f) == 1);
}

template <typename T>
void WriteArray(std::FILE* f, const T* p, std::size_t count) {
  if (count == 0) return;
  GKM_CHECK(std::fwrite(p, sizeof(T), count, f) == count);
}

template <typename T>
T ReadRaw(std::FILE* f) {
  T v{};
  GKM_CHECK_MSG(std::fread(&v, sizeof(T), 1, f) == 1, "truncated file");
  return v;
}

template <typename T>
void ReadArray(std::FILE* f, T* p, std::size_t count) {
  if (count == 0) return;
  GKM_CHECK_MSG(std::fread(p, sizeof(T), count, f) == count, "truncated file");
}

/// Failure-latching bounded reader: the substrate of the Try* loaders
/// (stream checkpoints, fuzz harnesses). Every primitive returns false
/// instead of aborting, and any count read from the file is checked
/// against the bytes actually remaining in the stream BEFORE memory is
/// allocated for it — a size field that lies (truncated file, bit flip,
/// fuzzed input) produces a clean load error, never an OOM or a
/// multi-gigabyte allocation. Requires a seekable stream (regular files,
/// fmemopen buffers); construction latches failure otherwise.
class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {
    const long pos = std::ftell(f_);
    if (pos < 0 || std::fseek(f_, 0, SEEK_END) != 0) {
      ok_ = false;
      return;
    }
    const long end = std::ftell(f_);
    if (end < pos || std::fseek(f_, pos, SEEK_SET) != 0) {
      ok_ = false;
      return;
    }
    remaining_ = static_cast<std::uint64_t>(end - pos);
  }

  /// False once any read failed; every later read no-ops and fails too.
  bool ok() const { return ok_; }
  /// Bytes between the cursor and the end of the stream.
  std::uint64_t remaining() const { return remaining_; }

  /// True when `count` items of T could still be present in the stream —
  /// the pre-allocation guard for file-supplied counts.
  template <typename T>
  bool Fits(std::uint64_t count) const {
    return ok_ && count <= remaining_ / sizeof(T);
  }

  template <typename T>
  bool Read(T* out) {
    return ReadArray(out, 1);
  }

  template <typename T>
  bool ReadArray(T* p, std::size_t count) {
    if (!ok_) return false;
    if (count == 0) return true;
    if (!Fits<T>(count) || std::fread(p, sizeof(T), count, f_) != count) {
      ok_ = false;
      return false;
    }
    remaining_ -= count * sizeof(T);
    return true;
  }

  /// Bounds-checks `count` against the remaining bytes, then resizes and
  /// fills `out` — the only way a file-supplied count may reach resize().
  template <typename T>
  bool ReadVector(std::vector<T>& out, std::uint64_t count) {
    if (!Fits<T>(count)) {
      ok_ = false;
      return false;
    }
    out.resize(static_cast<std::size_t>(count));
    return ReadArray(out.data(), out.size());
  }

  /// Non-aborting counterpart of io::ReadMatrix: same dimension caps, plus
  /// the payload must fit in the remaining bytes before the allocation.
  bool ReadMatrix(Matrix* out);

 private:
  std::FILE* f_;
  std::uint64_t remaining_ = 0;
  bool ok_ = true;
};

/// Writes `m` as a raw block: u64 rows, u64 cols, then row payloads
/// (padding stripped). Counterpart of ReadMatrix.
void WriteMatrix(std::FILE* f, const Matrix& m);

/// Reads a WriteMatrix block. Headers are untrusted input: implausible
/// dimensions abort rather than feeding an overflowed allocation.
Matrix ReadMatrix(std::FILE* f);

}  // namespace io
}  // namespace gkm

#endif  // GKM_COMMON_BINARY_IO_H_
