// Copyright 2026 The gkmeans Authors.
// RAII stdio handle plus checked scalar/array primitives — the shared
// substrate of every binary reader/writer in the library (the *vecs
// formats of dataset/io, KnnGraph serialization, stream checkpoints).
// Lives in common/ so lower-level modules never depend on dataset/.

#ifndef GKM_COMMON_BINARY_IO_H_
#define GKM_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/matrix.h"

namespace gkm {
namespace io {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// Opens `path` with `mode`, aborting with the path on failure.
inline File OpenOrDie(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  GKM_CHECK_MSG(f != nullptr, path.c_str());
  return f;
}

template <typename T>
void WriteRaw(std::FILE* f, const T& v) {
  GKM_CHECK(std::fwrite(&v, sizeof(T), 1, f) == 1);
}

template <typename T>
void WriteArray(std::FILE* f, const T* p, std::size_t count) {
  if (count == 0) return;
  GKM_CHECK(std::fwrite(p, sizeof(T), count, f) == count);
}

template <typename T>
T ReadRaw(std::FILE* f) {
  T v{};
  GKM_CHECK_MSG(std::fread(&v, sizeof(T), 1, f) == 1, "truncated file");
  return v;
}

template <typename T>
void ReadArray(std::FILE* f, T* p, std::size_t count) {
  if (count == 0) return;
  GKM_CHECK_MSG(std::fread(p, sizeof(T), count, f) == count, "truncated file");
}

/// Writes `m` as a raw block: u64 rows, u64 cols, then row payloads
/// (padding stripped). Counterpart of ReadMatrix.
void WriteMatrix(std::FILE* f, const Matrix& m);

/// Reads a WriteMatrix block. Headers are untrusted input: implausible
/// dimensions abort rather than feeding an overflowed allocation.
Matrix ReadMatrix(std::FILE* f);

}  // namespace io
}  // namespace gkm

#endif  // GKM_COMMON_BINARY_IO_H_
