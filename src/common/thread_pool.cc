// Copyright 2026 The gkmeans Authors.

#include "common/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace gkm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    GKM_CHECK_MSG(!stop_, "Submit after destruction began");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this]() GKM_REQUIRES(mu_) { return in_flight_ == 0; });
}

namespace {

// Per-call completion latch: each ParallelFor* invocation counts down its
// own tasks, so concurrent submitters on one pool never observe each
// other's completion (the global in_flight_ counter behind Wait() cannot
// distinguish owners).
struct CallLatch {
  Mutex mu;
  CondVar cv;
  std::size_t remaining GKM_GUARDED_BY(mu);

  explicit CallLatch(std::size_t n) : remaining(n) {}

  void CountDown() {
    MutexLock lock(mu);
    if (--remaining == 0) cv.NotifyAll();
  }
  void Await() {
    MutexLock lock(mu);
    cv.Wait(mu, [this]() GKM_REQUIRES(mu) { return remaining == 0; });
  }
};

}  // namespace

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = num_threads();
  if (n < 2 || threads < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t live = (n + chunk - 1) / chunk;  // chunks actually issued
  CallLatch latch(live);
  for (std::size_t c = 0; c < live; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    Submit([&fn, &latch, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      latch.CountDown();
    });
  }
  latch.Await();
}

void ThreadPool::ParallelForSlots(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = num_threads();
  if (n < 2 || threads < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(0, i);
    return;
  }
  // One contiguous chunk per slot: slot s is owned by exactly one task, so
  // per-slot caller state needs no locking.
  const std::size_t chunks = std::min(n, threads);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t live = (n + chunk - 1) / chunk;
  CallLatch latch(live);
  for (std::size_t c = 0; c < live; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    Submit([&fn, &latch, c, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(c, i);
      latch.CountDown();
    });
  }
  latch.Await();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      task_cv_.Wait(
          mu_, [this]() GKM_REQUIRES(mu_) { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace gkm
