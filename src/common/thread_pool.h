// Copyright 2026 The gkmeans Authors.
// Minimal fixed-size thread pool with blocking ParallelFor variants. Used
// for embarrassingly-parallel evaluation work (brute-force ground truth,
// recall estimation) and for the streaming subsystem's window ingest, whose
// parallel phase is a pure fan-out over read-only state. The batch
// clustering algorithms themselves stay single-threaded to match the
// paper's measurement protocol.
//
// ParallelFor/ParallelForSlots track completion with a per-call latch, so
// any number of threads may fan out on one pool concurrently without
// observing each other's completion — the sharded online graph runs one
// per-shard ingest driver per writer thread over a single shared pool.
// The submitting threads must not themselves be pool workers (a worker
// blocking in a nested ParallelFor could deadlock the pool). The raw
// Submit/Wait pair still assumes a single submitting thread: Wait returns
// when *all* in-flight tasks finish, whoever submitted them.

#ifndef GKM_COMMON_THREAD_POOL_H_
#define GKM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gkm {

/// Fixed pool of worker threads executing queued std::function tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs `fn(i)` for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool, and blocks until done. Falls back to inline
  /// execution for trivially small ranges. Safe to call from several
  /// (non-worker) threads concurrently on one pool.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Like ParallelFor, but `fn(slot, i)` also receives a slot index in
  /// [0, num_threads()): the range is split into exactly one contiguous
  /// chunk per slot and no two indices with the same slot ever run
  /// concurrently, so callers can keep per-slot scratch (visited stamps,
  /// buffers) without any further synchronization. Coarser chunking than
  /// ParallelFor — slot affinity is traded against load balance. The inline
  /// fallback for small ranges or single-threaded pools uses slot 0.
  /// Concurrent submitters each get the full slot range; per-slot state
  /// must therefore be per-submitter too (as with the per-shard ingest
  /// scratch in the sharded online graph).
  void ParallelForSlots(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  // Guards the queue and its bookkeeping between submitters and workers.
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ GKM_GUARDED_BY(mu_);
  CondVar task_cv_;  // signaled on enqueue and shutdown
  CondVar done_cv_;  // signaled when in_flight_ drains to zero
  std::size_t in_flight_ GKM_GUARDED_BY(mu_) = 0;
  bool stop_ GKM_GUARDED_BY(mu_) = false;
};

}  // namespace gkm

#endif  // GKM_COMMON_THREAD_POOL_H_
