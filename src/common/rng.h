// Copyright 2026 The gkmeans Authors.
// Deterministic, fast pseudo-random number generation. Every stochastic
// algorithm in the library (BKM sample order, 2M-tree bisections, random
// graph init, NN-Descent sampling, dataset synthesis) draws from an explicit
// Rng so that a fixed seed reproduces results bit-for-bit across runs.

#ifndef GKM_COMMON_RNG_H_
#define GKM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace gkm {

/// Full generator state, exposed so long-running consumers (the stream
/// checkpoint) can persist and resume a random stream exactly.
struct RngSnapshot {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool have_spare = false;
  double spare = 0.0;
};

/// splitmix64-seeded xoshiro256** generator. Not cryptographic; chosen for
/// speed, tiny state and excellent statistical quality for simulation use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; the full state is derived via splitmix64 so
  /// nearby seeds yield uncorrelated streams.
  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t UniformInt(std::uint64_t bound) {
    GKM_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and division-free
    // on the common path.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (GKM_UNLIKELY(lo < bound)) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n).
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(UniformInt(n));
  }

  /// Uniform float in [0, 1).
  float UniformFloat() {
    return static_cast<float>(Next() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = Sqrt(-2.0 * Log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// `count` distinct indices drawn uniformly from [0, n), in arbitrary
  /// order. Requires count <= n. O(count) expected time via Floyd's method.
  std::vector<std::uint32_t> SampleDistinct(std::size_t n, std::size_t count);

  /// Captures the exact generator state.
  RngSnapshot Snapshot() const {
    RngSnapshot snap;
    for (int i = 0; i < 4; ++i) snap.s[i] = s_[i];
    snap.have_spare = have_spare_;
    snap.spare = spare_;
    return snap;
  }

  /// Restores a previously captured state; the stream continues bit-exact.
  void Restore(const RngSnapshot& snap) {
    for (int i = 0; i < 4; ++i) s_[i] = snap.s[i];
    have_spare_ = snap.have_spare;
    spare_ = snap.spare;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Thin wrappers keep <cmath> out of this widely-included header.
  static double Sqrt(double x);
  static double Log(double x);

  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gkm

#endif  // GKM_COMMON_RNG_H_
