// Copyright 2026 The gkmeans Authors.
// Lightweight invariant checking and compiler hints shared by every module.
//
// GKM_CHECK survives Release builds: the library's correctness-critical
// invariants (non-empty clusters, index bounds on untrusted input, ...) must
// hold in the exact configuration benchmarks run in. GKM_DCHECK compiles out
// of Release builds and is for hot-path assertions only.

#ifndef GKM_COMMON_MACROS_H_
#define GKM_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define GKM_LIKELY(x) (__builtin_expect(!!(x), 1))
#define GKM_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#define GKM_RESTRICT __restrict__
#else
#define GKM_LIKELY(x) (x)
#define GKM_UNLIKELY(x) (x)
#define GKM_RESTRICT
#endif

namespace gkm {
namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const char* msg) {
  std::fprintf(stderr, "GKM_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace gkm

/// Aborts with a diagnostic when `cond` is false. Active in all build types.
#define GKM_CHECK(cond)                                                 \
  (GKM_LIKELY(cond)                                                     \
       ? (void)0                                                        \
       : ::gkm::internal::CheckFail(#cond, __FILE__, __LINE__, ""))

/// GKM_CHECK with an explanatory message.
#define GKM_CHECK_MSG(cond, msg)                                        \
  (GKM_LIKELY(cond)                                                     \
       ? (void)0                                                        \
       : ::gkm::internal::CheckFail(#cond, __FILE__, __LINE__, (msg)))

/// Debug-only check; compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define GKM_DCHECK(cond) ((void)0)
#else
#define GKM_DCHECK(cond) GKM_CHECK(cond)
#endif

#endif  // GKM_COMMON_MACROS_H_
