// Copyright 2026 The gkmeans Authors.

#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace gkm {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

std::vector<std::uint32_t> Rng::SampleDistinct(std::size_t n,
                                               std::size_t count) {
  GKM_CHECK_MSG(count <= n, "cannot sample more distinct values than exist");
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count * 2 >= n) {
    // Dense regime: shuffle a full index vector and truncate.
    std::vector<std::uint32_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
    Shuffle(all);
    all.resize(count);
    return all;
  }
  // Sparse regime: Floyd's algorithm, O(count) expected insertions.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(count * 2);
  for (std::size_t j = n - count; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(Index(j + 1));
    if (!seen.insert(t).second) t = static_cast<std::uint32_t>(j);
    seen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace gkm
