// Copyright 2026 The gkmeans Authors.
// One-pair scalar distance primitives, written so GCC/Clang auto-vectorize
// them at -O3, plus matrix-level helpers that are thin wrappers over the
// batched SIMD kernel layer in common/kernels.h. The scalar pair functions
// define the library's reference arithmetic: every batched kernel tier is
// bit-identical to them on the exact paths. Hot loops that score many rows
// against one query should call the kernels directly.

#ifndef GKM_COMMON_DISTANCE_H_
#define GKM_COMMON_DISTANCE_H_

#include <cstddef>

#include "common/macros.h"
#include "common/matrix.h"

namespace gkm {

/// Squared Euclidean distance between two d-dimensional vectors.
float L2Sqr(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
            std::size_t d);

/// Inner product of two d-dimensional vectors.
float Dot(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
          std::size_t d);

/// Squared L2 norm of a d-dimensional vector.
float NormSqr(const float* a, std::size_t d);

/// Index of the row of `centroids` closest (squared L2) to `x`.
/// `dist_out`, when non-null, receives the winning squared distance.
std::size_t NearestRow(const Matrix& centroids, const float* x,
                       float* dist_out = nullptr);

/// Fills `out[i] = ||row_i||^2` for every row of `m`. `out` must hold
/// `m.rows()` floats.
void RowNormsSqr(const Matrix& m, float* out);

}  // namespace gkm

#endif  // GKM_COMMON_DISTANCE_H_
