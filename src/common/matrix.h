// Copyright 2026 The gkmeans Authors.
// Row-major float matrix with 64-byte aligned rows — the canonical container
// for datasets and centroid tables across the library.

#ifndef GKM_COMMON_MATRIX_H_
#define GKM_COMMON_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace gkm {

/// Dense row-major matrix of `float`. Rows are padded so every row starts on
/// a 64-byte boundary, which keeps the distance kernels on their fast path
/// regardless of the logical dimension.
///
/// The matrix owns its storage; copies are deep. Row access returns raw
/// pointers — the intended usage is tight numeric loops, not element sugar.
class Matrix {
 public:
  Matrix() = default;

  /// Creates an `n x d` zero-initialized matrix.
  Matrix(std::size_t n, std::size_t d) { Reset(n, d); }

  /// Re-shapes to `n x d`, zero-initializing all elements.
  void Reset(std::size_t n, std::size_t d) {
    n_ = n;
    d_ = d;
    stride_ = PaddedDim(d);
    data_.assign(n_ * stride_ + kAlignFloats, 0.0f);
    base_ = AlignedBase();
  }

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return d_; }
  /// Number of floats between consecutive rows (>= cols()).
  std::size_t stride() const { return stride_; }
  bool empty() const { return n_ == 0; }

  /// Pointer to row `i` (64-byte aligned).
  float* Row(std::size_t i) {
    GKM_DCHECK(i < n_);
    return base_ + i * stride_;
  }
  const float* Row(std::size_t i) const {
    GKM_DCHECK(i < n_);
    return base_ + i * stride_;
  }

  float& At(std::size_t i, std::size_t j) {
    GKM_DCHECK(j < d_);
    return Row(i)[j];
  }
  float At(std::size_t i, std::size_t j) const {
    GKM_DCHECK(j < d_);
    return Row(i)[j];
  }

  /// Copies `d` floats from `src` into row `i`.
  void SetRow(std::size_t i, const float* src) {
    std::memcpy(Row(i), src, d_ * sizeof(float));
  }

  /// Grows backing storage to hold at least `rows` rows without moving
  /// existing data logically. The column count must already be set.
  void Reserve(std::size_t rows) {
    GKM_CHECK_MSG(stride_ > 0, "Reserve before column count is set");
    const std::size_t need = rows * stride_ + kAlignFloats;
    if (need <= data_.size()) return;
    // Reallocation can land on a different alignment offset, so rows are
    // copied into a fresh buffer at its own aligned base rather than
    // resized in place.
    std::vector<float> fresh(need, 0.0f);
    float* fresh_base = AlignedIn(fresh);
    if (n_ > 0) {
      std::memcpy(fresh_base, base_, n_ * stride_ * sizeof(float));
    }
    data_ = std::move(fresh);
    base_ = AlignedBase();
  }

  /// Appends one row (amortized O(d) via capacity doubling) — the growth
  /// path of the streaming subsystem. Use `Matrix(0, d)` to fix `d` first.
  void AppendRow(const float* src) {
    GKM_CHECK_MSG(stride_ > 0, "AppendRow before column count is set");
    if ((n_ + 1) * stride_ + kAlignFloats > data_.size()) {
      Reserve(n_ < 8 ? 16 : n_ * 2);
    }
    ++n_;
    SetRow(n_ - 1, src);
  }

  /// Logical equality on shape and row contents (padding ignored).
  bool operator==(const Matrix& o) const {
    if (n_ != o.n_ || d_ != o.d_) return false;
    for (std::size_t i = 0; i < n_; ++i) {
      if (std::memcmp(Row(i), o.Row(i), d_ * sizeof(float)) != 0) return false;
    }
    return true;
  }

  Matrix(const Matrix& o) { CopyFrom(o); }
  Matrix& operator=(const Matrix& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  Matrix(Matrix&& o) noexcept { MoveFrom(std::move(o)); }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }

 private:
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

  static std::size_t PaddedDim(std::size_t d) {
    return (d + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  static float* AlignedIn(std::vector<float>& buf) {
    auto addr = reinterpret_cast<std::uintptr_t>(buf.data());
    std::uintptr_t aligned = (addr + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
    return buf.data() + (aligned - addr) / sizeof(float);
  }

  float* AlignedBase() { return AlignedIn(data_); }

  void CopyFrom(const Matrix& o) {
    Reset(o.n_, o.d_);
    for (std::size_t i = 0; i < n_; ++i) SetRow(i, o.Row(i));
  }

  void MoveFrom(Matrix&& o) {
    n_ = o.n_;
    d_ = o.d_;
    stride_ = o.stride_;
    data_ = std::move(o.data_);
    base_ = AlignedBase();
    o.n_ = o.d_ = o.stride_ = 0;
    o.base_ = nullptr;
  }

  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::size_t stride_ = 0;
  std::vector<float> data_;
  float* base_ = nullptr;
};

/// Deep-copies rows [begin, end) of `m` into a new matrix. The canonical
/// way to carve a base/query split out of one generated sample so both
/// sides share a distribution.
inline Matrix SliceRows(const Matrix& m, std::size_t begin, std::size_t end) {
  GKM_CHECK(begin <= end && end <= m.rows());
  Matrix out(end - begin, m.cols());
  for (std::size_t i = begin; i < end; ++i) {
    out.SetRow(i - begin, m.Row(i));
  }
  return out;
}

}  // namespace gkm

#endif  // GKM_COMMON_MATRIX_H_
