// Copyright 2026 The gkmeans Authors.

#include "common/binary_io.h"

namespace gkm {
namespace io {

void WriteMatrix(std::FILE* f, const Matrix& m) {
  WriteRaw<std::uint64_t>(f, m.rows());
  WriteRaw<std::uint64_t>(f, m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    WriteArray(f, m.Row(i), m.cols());
  }
}

bool Reader::ReadMatrix(Matrix* out) {
  std::uint64_t rows = 0, cols = 0;
  if (!Read(&rows) || !Read(&cols)) return false;
  // Same caps as the aborting ReadMatrix below, plus two robust-loader
  // tightenings: a dimensioned-but-columnless matrix is rejected (no
  // writer produces one), and the payload must actually be present in the
  // stream before the allocation happens.
  if (rows > (1ull << 40) || cols > (1ull << 24) ||
      (cols == 0 && rows != 0) ||
      (cols != 0 && rows > (1ull << 40) / cols) ||
      !Fits<float>(rows * cols)) {
    ok_ = false;
    return false;
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (!ReadArray(m.Row(i), m.cols())) return false;
  }
  *out = std::move(m);
  return true;
}

Matrix ReadMatrix(std::FILE* f) {
  const auto rows64 = ReadRaw<std::uint64_t>(f);
  const auto cols64 = ReadRaw<std::uint64_t>(f);
  // The header comes from an untrusted file: bound each dimension and the
  // product so Matrix::Reset's rows * stride arithmetic cannot wrap into a
  // short allocation that the payload read then overruns.
  GKM_CHECK_MSG(rows64 <= (1ull << 40) && cols64 <= (1ull << 24) &&
                    (cols64 == 0 || rows64 <= (1ull << 40) / cols64),
                "implausible matrix header");
  const auto rows = static_cast<std::size_t>(rows64);
  const auto cols = static_cast<std::size_t>(cols64);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    ReadArray(f, m.Row(i), cols);
  }
  return m;
}

}  // namespace io
}  // namespace gkm
