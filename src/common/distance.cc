// Copyright 2026 The gkmeans Authors.

#include "common/distance.h"

#include <limits>

namespace gkm {

float L2Sqr(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
            std::size_t d) {
  // Four independent accumulators break the loop-carried dependency so the
  // compiler can keep several vector FMAs in flight.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const float df = a[i] - b[i];
    s0 += df * df;
  }
  return (s0 + s1) + (s2 + s3);
}

float Dot(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
          std::size_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float NormSqr(const float* a, std::size_t d) { return Dot(a, a, d); }

std::size_t NearestRow(const Matrix& centroids, const float* x,
                       float* dist_out) {
  GKM_CHECK(centroids.rows() > 0);
  std::size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  const std::size_t d = centroids.cols();
  for (std::size_t r = 0; r < centroids.rows(); ++r) {
    const float dist = L2Sqr(centroids.Row(r), x, d);
    if (dist < best_d) {
      best_d = dist;
      best = r;
    }
  }
  if (dist_out != nullptr) *dist_out = best_d;
  return best;
}

void RowNormsSqr(const Matrix& m, float* out) {
  for (std::size_t i = 0; i < m.rows(); ++i) out[i] = NormSqr(m.Row(i), m.cols());
}

}  // namespace gkm
