// Copyright 2026 The gkmeans Authors.

#include "common/distance.h"

#include <limits>

#include "common/kernels.h"

namespace gkm {

float L2Sqr(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
            std::size_t d) {
  // Four independent accumulators break the loop-carried dependency so the
  // compiler can keep several vector FMAs in flight.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const float df = a[i] - b[i];
    s0 += df * df;
  }
  return (s0 + s1) + (s2 + s3);
}

float Dot(const float* GKM_RESTRICT a, const float* GKM_RESTRICT b,
          std::size_t d) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < d; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float NormSqr(const float* a, std::size_t d) { return Dot(a, a, d); }

// Both of the matrix-level helpers are thin wrappers over the batched
// kernel layer (common/kernels.h) — same results bit-for-bit as the
// original scalar loops at every dispatch tier, see the kernel contract.

std::size_t NearestRow(const Matrix& centroids, const float* x,
                       float* dist_out) {
  GKM_CHECK(centroids.rows() > 0);
  return NearestRowBatch(x, centroids.Row(0), centroids.stride(),
                         centroids.rows(), centroids.cols(), dist_out);
}

void RowNormsSqr(const Matrix& m, float* out) {
  if (m.rows() == 0) return;
  RowNormsSqrBatch(m.Row(0), m.stride(), m.rows(), m.cols(), out);
}

}  // namespace gkm
