// Copyright 2026 The gkmeans Authors.
// Wall-clock timing for the benchmark harnesses and per-phase cost reports.

#ifndef GKM_COMMON_TIMER_H_
#define GKM_COMMON_TIMER_H_

#include <chrono>

namespace gkm {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gkm

#endif  // GKM_COMMON_TIMER_H_
