// Copyright 2026 The gkmeans Authors.
// Wall-clock timing for the benchmark harnesses and per-phase cost reports.
// Thin stopwatch over the tree's single steady-clock source (obs/clock.h),
// so every latency number — bench tables, trace spans, sampler uptimes —
// comes off the same monotonic clock.

#ifndef GKM_COMMON_TIMER_H_
#define GKM_COMMON_TIMER_H_

#include <cstdint>

#include "obs/clock.h"

namespace gkm {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_ns_(obs::MonotonicNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ns_ = obs::MonotonicNanos(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return obs::NanosToSeconds(obs::MonotonicNanos() - start_ns_);
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double Micros() const {
    return obs::NanosToMicros(obs::MonotonicNanos() - start_ns_);
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace gkm

#endif  // GKM_COMMON_TIMER_H_
