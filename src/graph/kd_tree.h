// Copyright 2026 The gkmeans Authors.
// Exact KD-tree (Bentley [36]) with branch-and-bound nearest-neighbor
// search. Substrate for the Kanungo-style KD-tree-accelerated k-means
// baseline ([35], §2.1): effective in tens of dimensions, degenerating to
// a full scan as d grows — the "curse of dimensionality" behaviour the
// paper uses to motivate graph-based pruning. The search reports how many
// points it actually compared so benches can expose that degeneration.

#ifndef GKM_GRAPH_KD_TREE_H_
#define GKM_GRAPH_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace gkm {

/// Static KD-tree over the rows of a Matrix (not owned; must outlive the
/// tree). Splits on the dimension of largest spread at the median.
class KdTree {
 public:
  explicit KdTree(const Matrix& data, std::size_t leaf_size = 8);

  /// Exact nearest row to `q`. `dist_out` receives the squared distance;
  /// `points_compared` (when non-null) is incremented by the number of
  /// candidate rows whose distance was evaluated.
  std::uint32_t Nearest(const float* q, float* dist_out = nullptr,
                        std::size_t* points_compared = nullptr) const;

  std::size_t num_points() const { return order_.size(); }

 private:
  struct Node {
    // Internal node: children indices; leaf: left == -1.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t split_dim = 0;
    float split_val = 0.0f;
    std::uint32_t begin = 0;  // leaf payload range in order_
    std::uint32_t end = 0;
  };

  std::int32_t Build(std::size_t begin, std::size_t end, std::size_t leaf_size);
  void Search(std::int32_t node, const float* q, float* best,
              std::uint32_t* best_id, std::size_t* compared) const;

  const Matrix& data_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> order_;
  std::int32_t root_ = -1;
};

}  // namespace gkm

#endif  // GKM_GRAPH_KD_TREE_H_
