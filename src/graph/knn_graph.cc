// Copyright 2026 The gkmeans Authors.

#include "graph/knn_graph.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/distance.h"
#include "common/macros.h"

namespace gkm {

KnnGraph::KnnGraph(std::size_t n, std::size_t k) : k_(k) {
  GKM_CHECK(k > 0);
  lists_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) lists_.emplace_back(k);
}

std::vector<Neighbor> KnnGraph::SortedNeighbors(std::size_t i) const {
  std::vector<Neighbor> out = lists_[i].items();
  std::sort(out.begin(), out.end());
  return out;
}

bool KnnGraph::Update(std::size_t i, std::uint32_t j, float dist) {
  GKM_DCHECK(i < lists_.size());
  if (static_cast<std::uint32_t>(i) == j) return false;
  return lists_[i].Push(j, dist);
}

int KnnGraph::UpdateBoth(std::size_t i, std::size_t j, float dist) {
  int changed = 0;
  changed += Update(i, static_cast<std::uint32_t>(j), dist) ? 1 : 0;
  changed += Update(j, static_cast<std::uint32_t>(i), dist) ? 1 : 0;
  return changed;
}

void KnnGraph::InitRandom(const Matrix& data, Rng& rng) {
  const std::size_t n = num_nodes();
  GKM_CHECK(data.rows() == n);
  GKM_CHECK_MSG(n > k_, "need more nodes than neighbors for a random init");
  for (std::size_t i = 0; i < n; ++i) {
    // Draw k_+1 candidates so that dropping a potential self-reference still
    // leaves k_ distinct neighbors.
    std::vector<std::uint32_t> cand = rng.SampleDistinct(n, k_ + 1);
    std::size_t added = 0;
    for (std::uint32_t c : cand) {
      if (c == i || added == k_) continue;
      Update(i, c, L2Sqr(data.Row(i), data.Row(c), data.cols()));
      ++added;
    }
  }
}

void KnnGraph::SetList(std::size_t i, const std::vector<Neighbor>& neighbors) {
  GKM_DCHECK(i < lists_.size());
  TopK fresh(k_);
  for (const Neighbor& nb : neighbors) fresh.Push(nb.id, nb.dist);
  lists_[i] = std::move(fresh);
}

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

void KnnGraph::Save(const std::string& path) const {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  GKM_CHECK_MSG(f != nullptr, path.c_str());
  const std::uint64_t n = num_nodes();
  const std::uint64_t k = k_;
  GKM_CHECK(std::fwrite(&n, sizeof(n), 1, f.get()) == 1);
  GKM_CHECK(std::fwrite(&k, sizeof(k), 1, f.get()) == 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> nbs = SortedNeighbors(i);
    const std::uint32_t len = static_cast<std::uint32_t>(nbs.size());
    GKM_CHECK(std::fwrite(&len, sizeof(len), 1, f.get()) == 1);
    if (len > 0) {
      GKM_CHECK(std::fwrite(nbs.data(), sizeof(Neighbor), len, f.get()) == len);
    }
  }
}

KnnGraph KnnGraph::Load(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  GKM_CHECK_MSG(f != nullptr, path.c_str());
  std::uint64_t n = 0, k = 0;
  GKM_CHECK(std::fread(&n, sizeof(n), 1, f.get()) == 1);
  GKM_CHECK(std::fread(&k, sizeof(k), 1, f.get()) == 1);
  KnnGraph g(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
  std::vector<Neighbor> buf;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t len = 0;
    GKM_CHECK(std::fread(&len, sizeof(len), 1, f.get()) == 1);
    buf.resize(len);
    if (len > 0) {
      GKM_CHECK(std::fread(buf.data(), sizeof(Neighbor), len, f.get()) == len);
    }
    g.SetList(i, buf);
  }
  return g;
}

}  // namespace gkm
