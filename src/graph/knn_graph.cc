// Copyright 2026 The gkmeans Authors.

#include "graph/knn_graph.h"

#include <algorithm>
#include <limits>

#include "common/binary_io.h"
#include "common/distance.h"
#include "common/macros.h"

namespace gkm {

KnnGraph::KnnGraph(std::size_t n, std::size_t k) : k_(k) {
  GKM_CHECK(k > 0);
  lists_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) lists_.emplace_back(k);
}

std::size_t KnnGraph::NumEdges() const {
  std::size_t total = 0;
  for (const TopK& list : lists_) total += list.size();
  return total;
}

std::vector<Neighbor> KnnGraph::SortedNeighbors(std::size_t i) const {
  std::vector<Neighbor> out;
  SortedNeighborsInto(i, out);
  return out;
}

void KnnGraph::SortedNeighborsInto(std::size_t i,
                                   std::vector<Neighbor>& out) const {
  const std::vector<Neighbor>& items = lists_[i].items();
  out.assign(items.begin(), items.end());
  std::sort(out.begin(), out.end());
}

std::vector<std::uint32_t> KnnGraph::FlattenNeighborIds(
    std::size_t kappa) const {
  const std::size_t n = num_nodes();
  std::vector<std::uint32_t> flat(n * kappa,
                                  std::numeric_limits<std::uint32_t>::max());
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> sorted = SortedNeighbors(i);
    const std::size_t take = std::min(kappa, sorted.size());
    for (std::size_t j = 0; j < take; ++j) flat[i * kappa + j] = sorted[j].id;
  }
  return flat;
}

std::uint32_t KnnGraph::AddNode() {
  GKM_CHECK_MSG(k_ > 0, "AddNode on a default-constructed graph");
  lists_.emplace_back(k_);
  return static_cast<std::uint32_t>(lists_.size() - 1);
}

bool KnnGraph::Update(std::size_t i, std::uint32_t j, float dist) {
  GKM_DCHECK(i < lists_.size());
  if (static_cast<std::uint32_t>(i) == j) return false;
  return lists_[i].Push(j, dist);
}

int KnnGraph::UpdateBoth(std::size_t i, std::size_t j, float dist) {
  int changed = 0;
  changed += Update(i, static_cast<std::uint32_t>(j), dist) ? 1 : 0;
  changed += Update(j, static_cast<std::uint32_t>(i), dist) ? 1 : 0;
  return changed;
}

bool KnnGraph::RemoveNeighbor(std::size_t i, std::uint32_t j) {
  GKM_DCHECK(i < lists_.size());
  return lists_[i].EraseId(j);
}

void KnnGraph::ClearList(std::size_t i) {
  GKM_DCHECK(i < lists_.size());
  lists_[i] = TopK(k_);
}

void KnnGraph::InitRandom(const Matrix& data, Rng& rng) {
  const std::size_t n = num_nodes();
  GKM_CHECK(data.rows() == n);
  GKM_CHECK_MSG(n > k_, "need more nodes than neighbors for a random init");
  for (std::size_t i = 0; i < n; ++i) {
    // Draw k_+1 candidates so that dropping a potential self-reference still
    // leaves k_ distinct neighbors.
    std::vector<std::uint32_t> cand = rng.SampleDistinct(n, k_ + 1);
    std::size_t added = 0;
    for (std::uint32_t c : cand) {
      if (c == i || added == k_) continue;
      Update(i, c, L2Sqr(data.Row(i), data.Row(c), data.cols()));
      ++added;
    }
  }
}

void KnnGraph::SetList(std::size_t i, const std::vector<Neighbor>& neighbors) {
  GKM_DCHECK(i < lists_.size());
  TopK fresh(k_);
  for (const Neighbor& nb : neighbors) fresh.Push(nb.id, nb.dist);
  lists_[i] = std::move(fresh);
}

void KnnGraph::SaveTo(std::FILE* f) const {
  const std::uint64_t n = num_nodes();
  io::WriteRaw<std::uint64_t>(f, n);
  io::WriteRaw<std::uint64_t>(f, k_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor> nbs = SortedNeighbors(i);
    io::WriteRaw<std::uint32_t>(f, static_cast<std::uint32_t>(nbs.size()));
    io::WriteArray(f, nbs.data(), nbs.size());
  }
}

KnnGraph KnnGraph::LoadFrom(std::FILE* f) {
  const auto n64 = io::ReadRaw<std::uint64_t>(f);
  const auto k64 = io::ReadRaw<std::uint64_t>(f);
  // The header is untrusted file input: bound it so a corrupt file aborts
  // cleanly instead of attempting a terabyte-scale allocation.
  GKM_CHECK_MSG(n64 <= (1ull << 40) && k64 > 0 && k64 <= (1u << 24),
                "implausible graph header");
  const auto n = static_cast<std::size_t>(n64);
  const auto k = static_cast<std::size_t>(k64);
  KnnGraph g(n, k);
  std::vector<Neighbor> buf;
  for (std::size_t i = 0; i < n; ++i) {
    const auto len = io::ReadRaw<std::uint32_t>(f);
    GKM_CHECK_MSG(len <= k, "graph list longer than capacity");
    buf.resize(len);
    io::ReadArray(f, buf.data(), buf.size());
    g.SetList(i, buf);
  }
  return g;
}

bool KnnGraph::TryLoadFrom(io::Reader& r, KnnGraph* out) {
  std::uint64_t n64 = 0;
  std::uint64_t k64 = 0;
  if (!r.Read(&n64) || !r.Read(&k64)) return false;
  // Robust-loader plausibility cap: no k-NN graph has anywhere near 2^16
  // neighbors per node (the aborting LoadFrom tolerates up to 2^24).
  if (k64 == 0 || k64 > (1u << 16)) return false;
  // Every node contributes at least its u32 list length, so the node count
  // is bounded by the bytes actually present in the stream.
  if (!r.Fits<std::uint32_t>(n64)) return false;
  // The arena allocation is n*k Neighbor slots even when most lists are
  // empty (tombstoned slots serialize as a bare length). Bound it by a
  // constant plus a multiple of the remaining bytes: legitimate files —
  // even mostly-tombstoned arenas — fit comfortably, while a size-lying
  // header cannot turn a small file into a huge allocation.
  const std::uint64_t arena_cap = (1ull << 26) + 16 * r.remaining();
  if (n64 > arena_cap / k64) return false;
  const auto n = static_cast<std::size_t>(n64);
  const auto k = static_cast<std::size_t>(k64);
  KnnGraph g(n, k);
  std::vector<Neighbor> buf;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t len = 0;
    if (!r.Read(&len) || len > k) return false;
    buf.resize(len);
    if (!r.ReadArray(buf.data(), buf.size())) return false;
    g.SetList(i, buf);
  }
  *out = std::move(g);
  return true;
}

void KnnGraph::Save(const std::string& path) const {
  io::File f = io::OpenOrDie(path, "wb");
  SaveTo(f.get());
}

KnnGraph KnnGraph::Load(const std::string& path) {
  io::File f = io::OpenOrDie(path, "rb");
  return LoadFrom(f.get());
}

}  // namespace gkm
