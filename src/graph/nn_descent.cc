// Copyright 2026 The gkmeans Authors.

#include "graph/nn_descent.h"

#include <algorithm>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"

namespace gkm {
namespace {

// NN-Descent needs a per-edge "new" flag on top of the (id, dist) pair, so
// it keeps its own sorted adjacency lists rather than reusing TopK.
struct Entry {
  std::uint32_t id;
  float dist;
  bool is_new;
};

// Sorted fixed-capacity list; returns true when (id, dist) was inserted.
bool InsertSorted(std::vector<Entry>& list, std::size_t cap, std::uint32_t id,
                  float dist) {
  if (list.size() == cap && dist >= list.back().dist) return false;
  for (const Entry& e : list) {
    if (e.id == id) return false;
  }
  const Entry fresh{id, dist, true};
  auto pos = std::lower_bound(
      list.begin(), list.end(), fresh,
      [](const Entry& a, const Entry& b) { return a.dist < b.dist; });
  list.insert(pos, fresh);
  if (list.size() > cap) list.pop_back();
  return true;
}

}  // namespace

KnnGraph NnDescent(const Matrix& data, const NnDescentParams& params,
                   NnDescentStats* stats) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = params.k;
  GKM_CHECK(k > 0 && n > k);
  Rng rng(params.seed);

  // Random initialization, all edges flagged new. Candidate rows are
  // scored with one gathered batch per node.
  std::vector<std::vector<Entry>> lists(n);
  std::vector<const float*> rows_buf;
  std::vector<float> dist_buf;
  for (std::size_t i = 0; i < n; ++i) {
    lists[i].reserve(k + 1);
    const std::vector<std::uint32_t> cand = rng.SampleDistinct(n, k + 1);
    rows_buf.clear();
    for (const std::uint32_t c : cand) rows_buf.push_back(data.Row(c));
    dist_buf.resize(cand.size());
    L2SqrBatchGather(data.Row(i), rows_buf.data(), cand.size(), d,
                     dist_buf.data());
    for (std::size_t ci = 0; ci < cand.size(); ++ci) {
      const std::uint32_t c = cand[ci];
      if (c == i || lists[i].size() == k) continue;
      InsertSorted(lists[i], k, c, dist_buf[ci]);
    }
  }

  const auto sample_cap = static_cast<std::size_t>(
      std::max(1.0, params.rho * static_cast<double>(k)));
  std::vector<std::vector<std::uint32_t>> fwd_new(n), fwd_old(n);
  std::vector<std::vector<std::uint32_t>> rev_new(n), rev_old(n);
  std::size_t distance_evals = 0;

  for (std::size_t round = 0; round < params.max_iters; ++round) {
    // Phase 1: sample forward new/old lists; sampled "new" edges become old.
    for (std::size_t v = 0; v < n; ++v) {
      fwd_new[v].clear();
      fwd_old[v].clear();
      rev_new[v].clear();
      rev_old[v].clear();
    }
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t new_budget = sample_cap;
      for (Entry& e : lists[v]) {
        if (e.is_new) {
          if (new_budget > 0 && rng.UniformDouble() < params.rho) {
            fwd_new[v].push_back(e.id);
            e.is_new = false;  // consumed: will act as old next round
            --new_budget;
          }
        } else {
          fwd_old[v].push_back(e.id);
        }
      }
    }
    // Phase 2: reverse lists.
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t u : fwd_new[v]) {
        rev_new[u].push_back(static_cast<std::uint32_t>(v));
      }
      for (const std::uint32_t u : fwd_old[v]) {
        rev_old[u].push_back(static_cast<std::uint32_t>(v));
      }
    }

    // Phase 3: local join around every node.
    std::size_t updates = 0;
    std::vector<std::uint32_t> join_new, join_old;
    for (std::size_t v = 0; v < n; ++v) {
      join_new = fwd_new[v];
      if (rev_new[v].size() > sample_cap) {
        rng.Shuffle(rev_new[v]);
        rev_new[v].resize(sample_cap);
      }
      join_new.insert(join_new.end(), rev_new[v].begin(), rev_new[v].end());

      join_old = fwd_old[v];
      if (rev_old[v].size() > sample_cap) {
        rng.Shuffle(rev_old[v]);
        rev_old[v].resize(sample_cap);
      }
      join_old.insert(join_old.end(), rev_old[v].begin(), rev_old[v].end());

      // The join pairs u1 with every later "new" member and every "old"
      // member: one gathered one-to-many batch per u1 scores both groups
      // at once, then the sorted-list updates replay in the original pair
      // order.
      for (std::size_t a = 0; a < join_new.size(); ++a) {
        const std::uint32_t u1 = join_new[a];
        rows_buf.clear();
        for (std::size_t b = a + 1; b < join_new.size(); ++b) {
          rows_buf.push_back(data.Row(join_new[b]));
        }
        for (const std::uint32_t u2 : join_old) rows_buf.push_back(data.Row(u2));
        dist_buf.resize(rows_buf.size());
        L2SqrBatchGather(data.Row(u1), rows_buf.data(), rows_buf.size(), d,
                         dist_buf.data());
        std::size_t cursor = 0;
        // new x new (unordered pairs)
        for (std::size_t b = a + 1; b < join_new.size(); ++b) {
          const std::uint32_t u2 = join_new[b];
          const float dist = dist_buf[cursor++];
          if (u1 == u2) continue;
          ++distance_evals;
          updates += InsertSorted(lists[u1], k, u2, dist) ? 1 : 0;
          updates += InsertSorted(lists[u2], k, u1, dist) ? 1 : 0;
        }
        // new x old
        for (const std::uint32_t u2 : join_old) {
          const float dist = dist_buf[cursor++];
          if (u1 == u2) continue;
          ++distance_evals;
          updates += InsertSorted(lists[u1], k, u2, dist) ? 1 : 0;
          updates += InsertSorted(lists[u2], k, u1, dist) ? 1 : 0;
        }
      }
    }

    if (stats != nullptr) stats->updates_per_round.push_back(updates);
    if (static_cast<double>(updates) <
        params.delta * static_cast<double>(n) * static_cast<double>(k)) {
      break;
    }
  }
  if (stats != nullptr) stats->distance_evals = distance_evals;

  KnnGraph g(n, k);
  std::vector<Neighbor> row;
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    for (const Entry& e : lists[i]) row.push_back(Neighbor{e.id, e.dist});
    g.SetList(i, row);
  }
  return g;
}

}  // namespace gkm
