// Copyright 2026 The gkmeans Authors.

#include "graph/kd_tree.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/macros.h"

namespace gkm {

KdTree::KdTree(const Matrix& data, std::size_t leaf_size) : data_(data) {
  GKM_CHECK(data.rows() > 0);
  GKM_CHECK(leaf_size >= 1);
  order_.resize(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  nodes_.reserve(2 * data.rows() / leaf_size + 2);
  root_ = Build(0, data.rows(), leaf_size);
}

std::int32_t KdTree::Build(std::size_t begin, std::size_t end,
                           std::size_t leaf_size) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size) {
    nodes_[id].begin = static_cast<std::uint32_t>(begin);
    nodes_[id].end = static_cast<std::uint32_t>(end);
    return id;
  }
  // Split dimension: largest spread (max - min) across the subset.
  const std::size_t d = data_.cols();
  std::vector<float> lo(d, std::numeric_limits<float>::max());
  std::vector<float> hi(d, std::numeric_limits<float>::lowest());
  for (std::size_t p = begin; p < end; ++p) {
    const float* x = data_.Row(order_[p]);
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], x[j]);
      hi[j] = std::max(hi[j], x[j]);
    }
  }
  std::size_t dim = 0;
  float spread = -1.0f;
  for (std::size_t j = 0; j < d; ++j) {
    if (hi[j] - lo[j] > spread) {
      spread = hi[j] - lo[j];
      dim = j;
    }
  }
  if (spread <= 0.0f) {
    // All points identical on every dimension: leaf.
    nodes_[id].begin = static_cast<std::uint32_t>(begin);
    nodes_[id].end = static_cast<std::uint32_t>(end);
    return id;
  }
  const std::size_t mid = (begin + end) / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return data_.Row(a)[dim] < data_.Row(b)[dim];
                   });
  nodes_[id].split_dim = static_cast<std::uint32_t>(dim);
  nodes_[id].split_val = data_.Row(order_[mid])[dim];
  const std::int32_t left = Build(begin, mid, leaf_size);
  const std::int32_t right = Build(mid, end, leaf_size);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

std::uint32_t KdTree::Nearest(const float* q, float* dist_out,
                              std::size_t* points_compared) const {
  float best = std::numeric_limits<float>::max();
  std::uint32_t best_id = 0;
  std::size_t compared = 0;
  Search(root_, q, &best, &best_id, &compared);
  if (dist_out != nullptr) *dist_out = best;
  if (points_compared != nullptr) *points_compared += compared;
  return best_id;
}

void KdTree::Search(std::int32_t node, const float* q, float* best,
                    std::uint32_t* best_id, std::size_t* compared) const {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.left < 0) {
    const std::size_t d = data_.cols();
    for (std::uint32_t p = nd.begin; p < nd.end; ++p) {
      const float dist = L2Sqr(q, data_.Row(order_[p]), d);
      ++*compared;
      if (dist < *best || (dist == *best && order_[p] < *best_id)) {
        *best = dist;
        *best_id = order_[p];
      }
    }
    return;
  }
  const float diff = q[nd.split_dim] - nd.split_val;
  const std::int32_t near = diff < 0.0f ? nd.left : nd.right;
  const std::int32_t far = diff < 0.0f ? nd.right : nd.left;
  Search(near, q, best, best_id, compared);
  // Prune the far subtree unless the splitting plane is closer than the
  // current best.
  if (diff * diff < *best) {
    Search(far, q, best, best_id, compared);
  }
}

}  // namespace gkm
