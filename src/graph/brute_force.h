// Copyright 2026 The gkmeans Authors.
// Exact KNN graph by exhaustive pairwise comparison — O(d n^2). Used as the
// ground truth for recall measurements (§5.1: "the ground-truth of KNN
// graph is produced by brute-force search"). Parallelized over rows since
// this is evaluation machinery, not a measured algorithm.

#ifndef GKM_GRAPH_BRUTE_FORCE_H_
#define GKM_GRAPH_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Builds the exact k-NN graph of `data`.
KnnGraph BruteForceGraph(const Matrix& data, std::size_t k,
                         std::size_t threads = 0);

/// Exact top-k neighbors of each query row among `base` rows (for ANNS
/// ground truth). Result[i] is sorted ascending by distance.
std::vector<std::vector<Neighbor>> BruteForceSearch(const Matrix& base,
                                                    const Matrix& queries,
                                                    std::size_t k,
                                                    std::size_t threads = 0);

/// Exact nearest neighbor ids for a subset of nodes within `data`
/// (self excluded) — the sampled ground truth used for very large sets,
/// mirroring the paper's VLAD10M protocol (§5.1).
std::vector<std::uint32_t> ExactNearestForSubset(
    const Matrix& data, const std::vector<std::uint32_t>& subset,
    std::size_t threads = 0);

}  // namespace gkm

#endif  // GKM_GRAPH_BRUTE_FORCE_H_
