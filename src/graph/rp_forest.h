// Copyright 2026 The gkmeans Authors.
// Random-projection partition forest: an ensemble of trees that each
// recursively split the data at the median of a random projection until
// leaves hold <= leaf_size points.
//
// Two consumers: closure k-means [27] uses the leaves as neighborhoods
// (a cluster's closure = union of its members' leaves), and the
// divide-and-conquer KNN-graph baseline of [42][43]/EFANNA [33] joins
// points within each leaf to build an approximate graph — the approach
// §2.2 credits with efficiency but "very low" recall, which
// RpForestGraph's tests and the Fig. 4-style comparisons confirm.

#ifndef GKM_GRAPH_RP_FOREST_H_
#define GKM_GRAPH_RP_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Options for RpForest.
struct RpForestParams {
  std::size_t num_trees = 4;
  std::size_t leaf_size = 50;
  std::uint64_t seed = 42;
};

/// An immutable ensemble of random-projection partition trees over a
/// dataset (not owned; must outlive the forest).
class RpForest {
 public:
  RpForest(const Matrix& data, const RpForestParams& params);

  std::size_t num_trees() const { return num_trees_; }
  std::size_t num_points() const { return n_; }

  /// All leaves across all trees, each a list of row ids.
  const std::vector<std::vector<std::uint32_t>>& leaves() const {
    return leaves_;
  }

  /// Index (into leaves()) of the leaf containing `point` in `tree`.
  std::uint32_t LeafOf(std::size_t tree, std::size_t point) const {
    return leaf_of_[tree * n_ + point];
  }

 private:
  std::size_t num_trees_;
  std::size_t n_;
  std::vector<std::vector<std::uint32_t>> leaves_;
  std::vector<std::uint32_t> leaf_of_;  // tree-major
};

/// Divide-and-conquer KNN-graph construction ([42][43], §2.2): joins all
/// pairs inside every forest leaf. One more tree = one more chance for
/// true neighbors to share a leaf.
KnnGraph RpForestGraph(const Matrix& data, std::size_t k,
                       const RpForestParams& params);

}  // namespace gkm

#endif  // GKM_GRAPH_RP_FOREST_H_
