// Copyright 2026 The gkmeans Authors.

#include "graph/rp_forest.h"

#include <algorithm>
#include <utility>

#include "common/distance.h"
#include "common/macros.h"

namespace gkm {
namespace {

// Recursively splits ids[lo, hi) by projection onto the direction between
// two random members, at the median. Degenerate (zero) directions fall
// back to a random split so duplicate-heavy data still terminates.
void BuildTree(const Matrix& data, std::vector<std::uint32_t>& ids,
               std::size_t lo, std::size_t hi, std::size_t leaf_size,
               Rng& rng, std::vector<std::vector<std::uint32_t>>& leaves) {
  const std::size_t count = hi - lo;
  if (count <= leaf_size) {
    leaves.emplace_back(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                        ids.begin() + static_cast<std::ptrdiff_t>(hi));
    return;
  }
  const std::size_t d = data.cols();
  const std::uint32_t a = ids[lo + rng.Index(count)];
  const std::uint32_t b = ids[lo + rng.Index(count)];
  std::vector<float> dir(d);
  float norm = 0.0f;
  {
    const float* xa = data.Row(a);
    const float* xb = data.Row(b);
    for (std::size_t j = 0; j < d; ++j) {
      dir[j] = xb[j] - xa[j];
      norm += dir[j] * dir[j];
    }
  }
  std::vector<std::pair<float, std::uint32_t>> proj(count);
  if (norm == 0.0f) {
    for (std::size_t m = 0; m < count; ++m) {
      proj[m] = {rng.UniformFloat(), ids[lo + m]};
    }
  } else {
    for (std::size_t m = 0; m < count; ++m) {
      proj[m] = {Dot(data.Row(ids[lo + m]), dir.data(), d), ids[lo + m]};
    }
  }
  const std::size_t mid = count / 2;
  std::nth_element(proj.begin(), proj.begin() + static_cast<std::ptrdiff_t>(mid),
                   proj.end());
  for (std::size_t m = 0; m < count; ++m) ids[lo + m] = proj[m].second;
  BuildTree(data, ids, lo, lo + mid, leaf_size, rng, leaves);
  BuildTree(data, ids, lo + mid, hi, leaf_size, rng, leaves);
}

}  // namespace

RpForest::RpForest(const Matrix& data, const RpForestParams& params)
    : num_trees_(params.num_trees), n_(data.rows()) {
  GKM_CHECK(params.num_trees >= 1);
  GKM_CHECK(params.leaf_size >= 2);
  GKM_CHECK(n_ > 0);
  Rng rng(params.seed);
  leaf_of_.resize(num_trees_ * n_);
  std::vector<std::uint32_t> ids(n_);
  for (std::size_t t = 0; t < num_trees_; ++t) {
    for (std::size_t i = 0; i < n_; ++i) {
      ids[i] = static_cast<std::uint32_t>(i);
    }
    const std::size_t first_leaf = leaves_.size();
    BuildTree(data, ids, 0, n_, params.leaf_size, rng, leaves_);
    for (std::size_t l = first_leaf; l < leaves_.size(); ++l) {
      for (const std::uint32_t i : leaves_[l]) {
        leaf_of_[t * n_ + i] = static_cast<std::uint32_t>(l);
      }
    }
  }
}

KnnGraph RpForestGraph(const Matrix& data, std::size_t k,
                       const RpForestParams& params) {
  GKM_CHECK(k > 0 && data.rows() > k);
  const RpForest forest(data, params);
  const std::size_t d = data.cols();
  KnnGraph graph(data.rows(), k);
  Matrix scratch;
  for (const auto& members : forest.leaves()) {
    const std::size_t m = members.size();
    if (m < 2) continue;
    scratch.Reset(m, d);
    for (std::size_t a = 0; a < m; ++a) scratch.SetRow(a, data.Row(members[a]));
    for (std::size_t a = 0; a < m; ++a) {
      const float* xa = scratch.Row(a);
      for (std::size_t b = a + 1; b < m; ++b) {
        graph.UpdateBoth(members[a], members[b], L2Sqr(xa, scratch.Row(b), d));
      }
    }
  }
  return graph;
}

}  // namespace gkm
