// Copyright 2026 The gkmeans Authors.
// Navigable small-world graph construction (Malkov & Yashunin [34], flat
// single-layer variant): points are inserted in random order; each new
// point beam-searches the graph built so far for its ef_construction
// closest reachable nodes, links to the best `degree` of them, and adds
// trimmed reverse links. §4.3 compares Alg. 3's construction cost against
// this method ("at least two times faster than ... small world graph
// construction [34]") — the anns_search bench reproduces that comparison.

#ifndef GKM_GRAPH_NSW_H_
#define GKM_GRAPH_NSW_H_

#include <cstdint>

#include "common/matrix.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Options for NswBuild.
struct NswParams {
  std::size_t degree = 20;           ///< links kept per node (M)
  std::size_t ef_construction = 64;  ///< beam width during insertion
  std::uint64_t seed = 42;
};

/// Per-build diagnostics.
struct NswStats {
  std::size_t distance_evals = 0;
};

/// Builds a (flat) navigable small-world graph and returns it in KnnGraph
/// form — directly usable by GraphSearcher and GK-means.
KnnGraph NswBuild(const Matrix& data, const NswParams& params,
                  NswStats* stats = nullptr);

}  // namespace gkm

#endif  // GKM_GRAPH_NSW_H_
