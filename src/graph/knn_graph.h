// Copyright 2026 The gkmeans Authors.
// The KNN graph container shared by the graph builders (Alg. 3, NN-Descent,
// brute force), the GK-means candidate harvesting loop and the ANN search
// layer. Each node keeps its κ best neighbors found so far as a bounded
// max-heap (TopK).

#ifndef GKM_GRAPH_KNN_GRAPH_H_
#define GKM_GRAPH_KNN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/top_k.h"

namespace gkm {

/// Approximate k-nearest-neighbor graph over `n` nodes with out-degree κ.
class KnnGraph {
 public:
  KnnGraph() = default;

  /// Creates an empty graph (no edges yet) with capacity κ per node.
  KnnGraph(std::size_t n, std::size_t k);

  std::size_t num_nodes() const { return lists_.size(); }
  std::size_t k() const { return k_; }

  /// Neighbor list of node `i` (unsorted; see SortedNeighbors).
  const std::vector<Neighbor>& NeighborsOf(std::size_t i) const {
    return lists_[i].items();
  }

  /// Neighbors of node `i` sorted ascending by distance (copies).
  std::vector<Neighbor> SortedNeighbors(std::size_t i) const;

  /// Attempts to insert the directed edge i -> (j, dist). Self-loops are
  /// rejected. Returns true when the list changed.
  bool Update(std::size_t i, std::uint32_t j, float dist);

  /// Attempts both directed edges between i and j. Returns the number of
  /// lists changed (0..2).
  int UpdateBoth(std::size_t i, std::size_t j, float dist);

  /// Fills every list with `k` distinct random neighbors and their true
  /// distances w.r.t. `data` (the random initialization of Alg. 3 line 4).
  void InitRandom(const Matrix& data, Rng& rng);

  /// Replaces node i's list. Intended for builders that stage updates.
  void SetList(std::size_t i, const std::vector<Neighbor>& neighbors);

  /// Binary serialization (for building once and reusing across benches).
  void Save(const std::string& path) const;
  static KnnGraph Load(const std::string& path);

 private:
  std::size_t k_ = 0;
  std::vector<TopK> lists_;
};

}  // namespace gkm

#endif  // GKM_GRAPH_KNN_GRAPH_H_
