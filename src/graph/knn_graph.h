// Copyright 2026 The gkmeans Authors.
// The KNN graph container shared by the graph builders (Alg. 3, NN-Descent,
// brute force), the GK-means candidate harvesting loop and the ANN search
// layer. Each node keeps its κ best neighbors found so far as a bounded
// max-heap (TopK).

#ifndef GKM_GRAPH_KNN_GRAPH_H_
#define GKM_GRAPH_KNN_GRAPH_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/top_k.h"

namespace gkm {
namespace io {
class Reader;
}  // namespace io

/// Approximate k-nearest-neighbor graph over `n` nodes with out-degree κ.
class KnnGraph {
 public:
  KnnGraph() = default;

  /// Creates an empty graph (no edges yet) with capacity κ per node.
  KnnGraph(std::size_t n, std::size_t k);

  std::size_t num_nodes() const { return lists_.size(); }
  std::size_t k() const { return k_; }

  /// Total number of directed edges currently stored (<= num_nodes * k).
  std::size_t NumEdges() const;

  /// Neighbor list of node `i` (unsorted; see SortedNeighbors).
  const std::vector<Neighbor>& NeighborsOf(std::size_t i) const {
    return lists_[i].items();
  }

  /// Neighbors of node `i` sorted ascending by distance (copies).
  std::vector<Neighbor> SortedNeighbors(std::size_t i) const;

  /// Allocation-free variant: fills the caller's buffer instead. For hot
  /// loops that fetch lists live from a mutating graph (streaming epochs).
  void SortedNeighborsInto(std::size_t i, std::vector<Neighbor>& out) const;

  /// Flattened, distance-sorted neighbor ids truncated to `kappa` per node:
  /// one cache-friendly row of length `kappa` per node, short lists padded
  /// with UINT32_MAX. The export GK-means iterates over and serializers
  /// walk — callers never touch the heap internals.
  std::vector<std::uint32_t> FlattenNeighborIds(std::size_t kappa) const;

  /// Appends a node with an empty neighbor list; returns its id. The
  /// incremental-build entry point of the streaming subsystem.
  std::uint32_t AddNode();

  /// Attempts to insert the directed edge i -> (j, dist). Self-loops are
  /// rejected. Returns true when the list changed.
  bool Update(std::size_t i, std::uint32_t j, float dist);

  /// Attempts both directed edges between i and j. Returns the number of
  /// lists changed (0..2).
  int UpdateBoth(std::size_t i, std::size_t j, float dist);

  /// Removes the directed edge i -> j if present; returns true when it
  /// existed. The deletion path of the streaming subsystem (in-edge repair
  /// and tombstone purges).
  bool RemoveNeighbor(std::size_t i, std::uint32_t j);

  /// Empties node i's neighbor list (the node stays allocated). Used when a
  /// node is tombstoned: its slot must stop referencing live nodes.
  void ClearList(std::size_t i);

  /// Fills every list with `k` distinct random neighbors and their true
  /// distances w.r.t. `data` (the random initialization of Alg. 3 line 4).
  void InitRandom(const Matrix& data, Rng& rng);

  /// Replaces node i's list. Intended for builders that stage updates.
  void SetList(std::size_t i, const std::vector<Neighbor>& neighbors);

  /// Binary serialization (for building once and reusing across benches).
  void Save(const std::string& path) const;
  static KnnGraph Load(const std::string& path);

  /// Stream variants, for embedding a graph inside a larger file (the
  /// stream checkpoint format).
  void SaveTo(std::FILE* f) const;
  static KnnGraph LoadFrom(std::FILE* f);

  /// Non-aborting LoadFrom for untrusted input (the Try* checkpoint
  /// loaders and the fuzz harnesses): returns false on truncation or an
  /// implausible header instead of aborting, and bounds the n*k arena
  /// allocation by the bytes actually present in the stream, so a header
  /// that lies cannot request an unbounded allocation. Slightly stricter
  /// caps than LoadFrom (see the implementation); any graph this library
  /// writes loads fine.
  static bool TryLoadFrom(io::Reader& r, KnnGraph* out);

 private:
  std::size_t k_ = 0;
  std::vector<TopK> lists_;
};

}  // namespace gkm

#endif  // GKM_GRAPH_KNN_GRAPH_H_
