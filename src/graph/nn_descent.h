// Copyright 2026 The gkmeans Authors.
// NN-Descent (Dong, Moses & Li, WWW 2011 [32]) — the "KGraph" baseline the
// paper compares its Alg. 3 against ("KGraph+GK-means" runs). Built on the
// observation that "a neighbor of a neighbor is also likely to be a
// neighbor": each round locally joins every node's sampled new/old
// neighbors and reverse neighbors, terminating when updates fall below
// delta * n * k.

#ifndef GKM_GRAPH_NN_DESCENT_H_
#define GKM_GRAPH_NN_DESCENT_H_

#include <cstdint>

#include "common/matrix.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Options for NnDescent. Defaults follow the reference implementation.
struct NnDescentParams {
  std::size_t k = 50;        ///< graph out-degree
  double rho = 0.5;          ///< sample rate for the local join
  double delta = 0.001;      ///< termination threshold on the update rate
  std::size_t max_iters = 30;
  std::uint64_t seed = 42;
};

/// Per-round diagnostics (update counts drive the termination rule).
struct NnDescentStats {
  std::vector<std::size_t> updates_per_round;
  std::size_t distance_evals = 0;
};

/// Builds an approximate KNN graph with NN-Descent.
KnnGraph NnDescent(const Matrix& data, const NnDescentParams& params,
                   NnDescentStats* stats = nullptr);

}  // namespace gkm

#endif  // GKM_GRAPH_NN_DESCENT_H_
