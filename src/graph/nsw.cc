// Copyright 2026 The gkmeans Authors.

#include "graph/nsw.h"

#include <algorithm>
#include <vector>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/rng.h"

namespace gkm {
namespace {

struct Candidate {
  std::uint32_t id;
  float dist;
  bool expanded;
};

}  // namespace

KnnGraph NswBuild(const Matrix& data, const NswParams& params,
                  NswStats* stats) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t degree = params.degree;
  GKM_CHECK(degree > 0 && n > degree);
  Rng rng(params.seed);

  // Adjacency under construction. Lists may transiently exceed `degree`
  // before trimming.
  std::vector<std::vector<Neighbor>> adj(n);
  for (auto& list : adj) list.reserve(2 * degree);

  std::vector<std::uint32_t> insertion_order(n);
  for (std::size_t i = 0; i < n; ++i) {
    insertion_order[i] = static_cast<std::uint32_t>(i);
  }
  rng.Shuffle(insertion_order);

  std::vector<char> visited(n, 0);
  std::vector<std::uint32_t> touched;
  std::vector<Candidate> pool;
  std::vector<std::uint32_t> pending;
  std::vector<const float*> pending_rows;
  std::vector<float> pending_dist;
  std::size_t evals = 0;

  auto trim = [&](std::uint32_t node) {
    std::vector<Neighbor>& list = adj[node];
    if (list.size() <= degree) return;
    std::sort(list.begin(), list.end());
    list.resize(degree);
  };

  for (std::size_t step = 0; step < n; ++step) {
    const std::uint32_t id = insertion_order[step];
    const float* x = data.Row(id);
    if (step == 0) continue;  // first node has nothing to link to

    // Beam search over the graph built so far, seeded from random inserted
    // nodes (the flat-NSW entry policy).
    pool.clear();
    touched.clear();
    const std::size_t beam = std::max(params.ef_construction, degree);
    const std::size_t num_seeds = std::min<std::size_t>(step, 4);
    auto offer = [&](std::uint32_t c, float dist) {
      ++evals;
      if (pool.size() == beam && dist >= pool.back().dist) return;
      const Candidate fresh{c, dist, false};
      auto pos = std::lower_bound(pool.begin(), pool.end(), fresh,
                                  [](const Candidate& a, const Candidate& b) {
                                    return a.dist < b.dist;
                                  });
      pool.insert(pos, fresh);
      if (pool.size() > beam) pool.pop_back();
    };
    auto try_add = [&](std::uint32_t c) {
      if (visited[c]) return;
      visited[c] = 1;
      touched.push_back(c);
      offer(c, L2Sqr(x, data.Row(c), d));
    };
    for (std::size_t s = 0; s < num_seeds; ++s) {
      try_add(insertion_order[rng.Index(step)]);
    }
    // Beam expansion: the unvisited neighbors of the expanded node are
    // scored with one gathered batch, then offered in adjacency order —
    // identical pool evolution to per-neighbor scoring.
    for (;;) {
      std::size_t next = pool.size();
      for (std::size_t p = 0; p < pool.size(); ++p) {
        if (!pool[p].expanded) {
          next = p;
          break;
        }
      }
      if (next == pool.size()) break;
      pool[next].expanded = true;
      pending.clear();
      pending_rows.clear();
      for (const Neighbor& nb : adj[pool[next].id]) {
        if (visited[nb.id]) continue;
        visited[nb.id] = 1;
        touched.push_back(nb.id);
        pending.push_back(nb.id);
        pending_rows.push_back(data.Row(nb.id));
      }
      pending_dist.resize(pending.size());
      L2SqrBatchGather(x, pending_rows.data(), pending.size(), d,
                       pending_dist.data());
      for (std::size_t p = 0; p < pending.size(); ++p) {
        offer(pending[p], pending_dist[p]);
      }
    }
    for (const std::uint32_t t : touched) visited[t] = 0;

    // Link to the closest `degree` candidates; give each a reverse edge.
    const std::size_t links = std::min(degree, pool.size());
    for (std::size_t p = 0; p < links; ++p) {
      adj[id].push_back(Neighbor{pool[p].id, pool[p].dist});
      adj[pool[p].id].push_back(Neighbor{id, pool[p].dist});
      trim(pool[p].id);
    }
    trim(id);
  }
  if (stats != nullptr) stats->distance_evals = evals;

  KnnGraph graph(n, degree);
  for (std::size_t i = 0; i < n; ++i) {
    graph.SetList(i, adj[i]);
  }
  return graph;
}

}  // namespace gkm
