// Copyright 2026 The gkmeans Authors.

#include "graph/brute_force.h"

#include <limits>

#include "common/distance.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/top_k.h"

namespace gkm {

KnnGraph BruteForceGraph(const Matrix& data, std::size_t k,
                         std::size_t threads) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK_MSG(k < n, "k must be smaller than the number of points");
  KnnGraph g(n, k);
  ThreadPool pool(threads);
  pool.ParallelFor(0, n, [&](std::size_t i) {
    TopK top(k);
    const float* xi = data.Row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const float dist = L2Sqr(xi, data.Row(j), d);
      if (!top.full() || dist < top.WorstDist()) {
        top.Push(static_cast<std::uint32_t>(j), dist);
      }
    }
    g.SetList(i, top.items());
  });
  return g;
}

std::vector<std::vector<Neighbor>> BruteForceSearch(const Matrix& base,
                                                    const Matrix& queries,
                                                    std::size_t k,
                                                    std::size_t threads) {
  GKM_CHECK(base.cols() == queries.cols());
  GKM_CHECK(k <= base.rows());
  std::vector<std::vector<Neighbor>> out(queries.rows());
  ThreadPool pool(threads);
  pool.ParallelFor(0, queries.rows(), [&](std::size_t q) {
    TopK top(k);
    const float* xq = queries.Row(q);
    for (std::size_t j = 0; j < base.rows(); ++j) {
      const float dist = L2Sqr(xq, base.Row(j), base.cols());
      if (!top.full() || dist < top.WorstDist()) {
        top.Push(static_cast<std::uint32_t>(j), dist);
      }
    }
    out[q] = top.TakeSorted();
  });
  return out;
}

std::vector<std::uint32_t> ExactNearestForSubset(
    const Matrix& data, const std::vector<std::uint32_t>& subset,
    std::size_t threads) {
  std::vector<std::uint32_t> out(subset.size());
  ThreadPool pool(threads);
  pool.ParallelFor(0, subset.size(), [&](std::size_t s) {
    const std::size_t i = subset[s];
    const float* xi = data.Row(i);
    float best = std::numeric_limits<float>::max();
    std::uint32_t best_id = 0;
    for (std::size_t j = 0; j < data.rows(); ++j) {
      if (j == i) continue;
      const float dist = L2Sqr(xi, data.Row(j), data.cols());
      if (dist < best) {
        best = dist;
        best_id = static_cast<std::uint32_t>(j);
      }
    }
    out[s] = best_id;
  });
  return out;
}

}  // namespace gkm
