// Copyright 2026 The gkmeans Authors.

#include "graph/brute_force.h"

#include "common/kernels.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/top_k.h"

namespace gkm {

KnnGraph BruteForceGraph(const Matrix& data, std::size_t k,
                         std::size_t threads) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  GKM_CHECK_MSG(k < n, "k must be smaller than the number of points");
  KnnGraph g(n, k);
  ThreadPool pool(threads);
  pool.ParallelFor(0, n, [&](std::size_t i) {
    TopK top(k);
    L2SqrToTopK(data.Row(i), data.Row(0), data.stride(), n, d, 0,
                static_cast<std::uint32_t>(i), top);
    g.SetList(i, top.items());
  });
  return g;
}

std::vector<std::vector<Neighbor>> BruteForceSearch(const Matrix& base,
                                                    const Matrix& queries,
                                                    std::size_t k,
                                                    std::size_t threads) {
  GKM_CHECK(base.cols() == queries.cols());
  GKM_CHECK(k <= base.rows());
  std::vector<std::vector<Neighbor>> out(queries.rows());
  ThreadPool pool(threads);
  pool.ParallelFor(0, queries.rows(), [&](std::size_t q) {
    TopK top(k);
    L2SqrToTopK(queries.Row(q), base.Row(0), base.stride(), base.rows(),
                base.cols(), 0, kNoSkipRow, top);
    out[q] = top.TakeSorted();
  });
  return out;
}

std::vector<std::uint32_t> ExactNearestForSubset(
    const Matrix& data, const std::vector<std::uint32_t>& subset,
    std::size_t threads) {
  std::vector<std::uint32_t> out(subset.size());
  ThreadPool pool(threads);
  pool.ParallelFor(0, subset.size(), [&](std::size_t s) {
    const std::size_t i = subset[s];
    TopK top(1);
    L2SqrToTopK(data.Row(i), data.Row(0), data.stride(), data.rows(),
                data.cols(), 0, static_cast<std::uint32_t>(i), top);
    out[s] = top.size() > 0 ? top.items()[0].id : 0;
  });
  return out;
}

}  // namespace gkm
