// Copyright 2026 The gkmeans Authors.
// Readers/writers for the *vecs interchange formats used by the paper's
// corpora (TEXMEX SIFT/GIST releases): each record is a little-endian
// int32 dimension header followed by `dim` values — float32 for .fvecs,
// int32 for .ivecs, uint8 for .bvecs. Real datasets can therefore be
// dropped into every bench unchanged.

#ifndef GKM_DATASET_IO_H_
#define GKM_DATASET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace gkm {

/// Reads an .fvecs file into a Matrix. Aborts on malformed input.
/// `max_rows` == 0 means read everything.
Matrix ReadFvecs(const std::string& path, std::size_t max_rows = 0);

/// Writes `m` in .fvecs format.
void WriteFvecs(const std::string& path, const Matrix& m);

/// Reads a .bvecs file (uint8 payload) into a float Matrix.
Matrix ReadBvecs(const std::string& path, std::size_t max_rows = 0);

/// Writes `m` in .bvecs format; values are clamped to [0, 255] and rounded.
void WriteBvecs(const std::string& path, const Matrix& m);

/// Reads an .ivecs file (e.g. ground-truth neighbor ids).
std::vector<std::vector<std::int32_t>> ReadIvecs(const std::string& path,
                                                 std::size_t max_rows = 0);

/// Writes integer lists in .ivecs format. All rows must be equal length.
void WriteIvecs(const std::string& path,
                const std::vector<std::vector<std::int32_t>>& rows);

}  // namespace gkm

#endif  // GKM_DATASET_IO_H_
