// Copyright 2026 The gkmeans Authors.

#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/distance.h"
#include "common/macros.h"
#include "common/rng.h"

namespace gkm {
namespace {

// Draws a component id from a Zipf(s) distribution over [0, modes) using an
// inverse-CDF table.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t modes, double s) : cdf_(modes) {
    double total = 0.0;
    for (std::size_t i = 0; i < modes; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::size_t Draw(Rng& rng) const {
    const double u = rng.UniformDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

void L2NormalizeRows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.Row(i);
    const float norm = std::sqrt(NormSqr(row, m.cols()));
    if (norm > 0.0f) {
      const float inv = 1.0f / norm;
      for (std::size_t j = 0; j < m.cols(); ++j) row[j] *= inv;
    }
  }
}

}  // namespace

SyntheticData MakeGaussianMixture(const SyntheticSpec& spec) {
  GKM_CHECK(spec.n > 0);
  GKM_CHECK(spec.dim > 0);
  GKM_CHECK(spec.modes > 0);
  Rng rng(spec.seed);

  // Component centers and per-component anisotropic spreads.
  Matrix centers(spec.modes, spec.dim);
  std::vector<float> mode_scale(spec.modes);
  for (std::size_t m = 0; m < spec.modes; ++m) {
    float* c = centers.Row(m);
    for (std::size_t j = 0; j < spec.dim; ++j) {
      c[j] = static_cast<float>(rng.Gaussian() * spec.center_spread);
    }
    const double jitter = 1.0 + spec.spread_jitter * (2.0 * rng.UniformDouble() - 1.0);
    mode_scale[m] = static_cast<float>(spec.cluster_spread * jitter);
  }
  // A light per-dimension modulation makes components anisotropic, which is
  // closer to real descriptor statistics than spherical blobs.
  std::vector<float> dim_scale(spec.dim);
  for (std::size_t j = 0; j < spec.dim; ++j) {
    dim_scale[j] = static_cast<float>(0.5 + rng.UniformDouble());
  }

  ZipfSampler zipf(spec.modes, spec.zipf_s);
  SyntheticData out;
  out.vectors.Reset(spec.n, spec.dim);
  out.mode_of.resize(spec.n);
  out.family = "gmm";

  const auto kNoiseMode = static_cast<std::uint32_t>(spec.modes);
  for (std::size_t i = 0; i < spec.n; ++i) {
    float* x = out.vectors.Row(i);
    if (rng.UniformDouble() < spec.noise_fraction) {
      // Background point: broad Gaussian over the whole embedding box.
      for (std::size_t j = 0; j < spec.dim; ++j) {
        x[j] = static_cast<float>(rng.Gaussian() * spec.center_spread * 1.2);
      }
      out.mode_of[i] = kNoiseMode;
      continue;
    }
    const std::size_t m = zipf.Draw(rng);
    const float* c = centers.Row(m);
    const float scale = mode_scale[m];
    for (std::size_t j = 0; j < spec.dim; ++j) {
      x[j] = c[j] + static_cast<float>(rng.Gaussian()) * scale * dim_scale[j];
    }
    out.mode_of[i] = static_cast<std::uint32_t>(m);
  }
  return out;
}

SyntheticData MakeSiftLike(std::size_t n, std::size_t dim, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = std::max<std::size_t>(1, n / 400);
  spec.zipf_s = 0.9;
  spec.center_spread = 24.0;
  spec.cluster_spread = 11.0;
  spec.noise_fraction = 0.03;
  spec.seed = seed;
  SyntheticData data = MakeGaussianMixture(spec);
  // SIFT descriptors are non-negative integer histogram bins in [0, ~180].
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    float* row = data.vectors.Row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      const float shifted = row[j] + 60.0f;
      row[j] = std::round(std::clamp(shifted, 0.0f, 255.0f));
    }
  }
  data.family = "sift";
  return data;
}

SyntheticData MakeGistLike(std::size_t n, std::size_t dim, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = std::max<std::size_t>(1, n / 500);
  spec.zipf_s = 0.7;
  spec.center_spread = 0.05;
  spec.cluster_spread = 0.035;  // low contrast: GIST clusters overlap heavily
  spec.noise_fraction = 0.02;
  spec.seed = seed;
  SyntheticData data = MakeGaussianMixture(spec);
  // GIST features are dense small positive energies.
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    float* row = data.vectors.Row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = std::max(0.0f, row[j] + 0.1f);
    }
  }
  data.family = "gist";
  return data;
}

SyntheticData MakeGloveLike(std::size_t n, std::size_t dim, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = std::max<std::size_t>(1, n / 250);
  spec.zipf_s = 1.1;          // word frequencies are strongly Zipfian
  spec.center_spread = 1.0;
  spec.cluster_spread = 0.65; // embeddings overlap much more than SIFT
  spec.noise_fraction = 0.05;
  spec.seed = seed;
  SyntheticData data = MakeGaussianMixture(spec);
  L2NormalizeRows(data.vectors);
  data.family = "glove";
  return data;
}

SyntheticData MakeVladLike(std::size_t n, std::size_t dim, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = std::max<std::size_t>(1, n / 300);
  spec.zipf_s = 0.8;
  spec.center_spread = 1.0;
  spec.cluster_spread = 0.5;
  spec.noise_fraction = 0.02;
  spec.seed = seed;
  SyntheticData data = MakeGaussianMixture(spec);
  // VLAD+PCA coordinates decay in energy with index (leading principal
  // components carry most of the variance).
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    float* row = data.vectors.Row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      const float decay =
          1.0f / std::sqrt(1.0f + static_cast<float>(j) * 0.05f);
      row[j] *= decay;
    }
  }
  L2NormalizeRows(data.vectors);
  data.family = "vlad";
  return data;
}

SyntheticData MakeByFamily(const std::string& family, std::size_t n,
                           std::uint64_t seed) {
  if (family == "sift") return MakeSiftLike(n, 128, seed);
  if (family == "gist") return MakeGistLike(n, 960, seed);
  if (family == "glove") return MakeGloveLike(n, 100, seed);
  if (family == "vlad") return MakeVladLike(n, 512, seed);
  GKM_CHECK_MSG(family == "gmm", "unknown dataset family");
  SyntheticSpec spec;
  spec.n = n;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

}  // namespace gkm
