// Copyright 2026 The gkmeans Authors.

#include "dataset/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/binary_io.h"
#include "common/macros.h"

namespace gkm {
namespace {

using io::File;
using io::OpenOrDie;

// Reads one record header; returns false on clean EOF, aborts on corruption.
bool ReadDim(std::FILE* f, std::int32_t* dim) {
  const std::size_t got = std::fread(dim, sizeof(*dim), 1, f);
  if (got == 0) return false;
  GKM_CHECK_MSG(*dim > 0, "non-positive record dimension");
  return true;
}

}  // namespace

Matrix ReadFvecs(const std::string& path, std::size_t max_rows) {
  File f = OpenOrDie(path, "rb");
  std::vector<std::vector<float>> rows;
  std::int32_t dim = 0;
  while ((max_rows == 0 || rows.size() < max_rows) && ReadDim(f.get(), &dim)) {
    std::vector<float> row(static_cast<std::size_t>(dim));
    const std::size_t got = std::fread(row.data(), sizeof(float), row.size(), f.get());
    GKM_CHECK_MSG(got == row.size(), "truncated fvecs record");
    GKM_CHECK_MSG(rows.empty() || row.size() == rows[0].size(),
                  "inconsistent dimensions in fvecs file");
    rows.push_back(std::move(row));
  }
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i].data());
  return m;
}

void WriteFvecs(const std::string& path, const Matrix& m) {
  File f = OpenOrDie(path, "wb");
  const auto dim = static_cast<std::int32_t>(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    GKM_CHECK(std::fwrite(&dim, sizeof(dim), 1, f.get()) == 1);
    GKM_CHECK(std::fwrite(m.Row(i), sizeof(float), m.cols(), f.get()) == m.cols());
  }
}

Matrix ReadBvecs(const std::string& path, std::size_t max_rows) {
  File f = OpenOrDie(path, "rb");
  std::vector<std::vector<std::uint8_t>> rows;
  std::int32_t dim = 0;
  while ((max_rows == 0 || rows.size() < max_rows) && ReadDim(f.get(), &dim)) {
    std::vector<std::uint8_t> row(static_cast<std::size_t>(dim));
    const std::size_t got =
        std::fread(row.data(), sizeof(std::uint8_t), row.size(), f.get());
    GKM_CHECK_MSG(got == row.size(), "truncated bvecs record");
    GKM_CHECK_MSG(rows.empty() || row.size() == rows[0].size(),
                  "inconsistent dimensions in bvecs file");
    rows.push_back(std::move(row));
  }
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    float* dst = m.Row(i);
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      dst[j] = static_cast<float>(rows[i][j]);
    }
  }
  return m;
}

void WriteBvecs(const std::string& path, const Matrix& m) {
  File f = OpenOrDie(path, "wb");
  const auto dim = static_cast<std::int32_t>(m.cols());
  std::vector<std::uint8_t> row(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* src = m.Row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row[j] = static_cast<std::uint8_t>(
          std::lround(std::clamp(src[j], 0.0f, 255.0f)));
    }
    GKM_CHECK(std::fwrite(&dim, sizeof(dim), 1, f.get()) == 1);
    GKM_CHECK(std::fwrite(row.data(), 1, row.size(), f.get()) == row.size());
  }
}

std::vector<std::vector<std::int32_t>> ReadIvecs(const std::string& path,
                                                 std::size_t max_rows) {
  File f = OpenOrDie(path, "rb");
  std::vector<std::vector<std::int32_t>> rows;
  std::int32_t dim = 0;
  while ((max_rows == 0 || rows.size() < max_rows) && ReadDim(f.get(), &dim)) {
    std::vector<std::int32_t> row(static_cast<std::size_t>(dim));
    const std::size_t got =
        std::fread(row.data(), sizeof(std::int32_t), row.size(), f.get());
    GKM_CHECK_MSG(got == row.size(), "truncated ivecs record");
    rows.push_back(std::move(row));
  }
  return rows;
}

void WriteIvecs(const std::string& path,
                const std::vector<std::vector<std::int32_t>>& rows) {
  File f = OpenOrDie(path, "wb");
  for (const auto& row : rows) {
    GKM_CHECK_MSG(rows.empty() || row.size() == rows[0].size(),
                  "ivecs rows must share one dimension");
    const auto dim = static_cast<std::int32_t>(row.size());
    GKM_CHECK(std::fwrite(&dim, sizeof(dim), 1, f.get()) == 1);
    GKM_CHECK(std::fwrite(row.data(), sizeof(std::int32_t), row.size(),
                          f.get()) == row.size());
  }
}

}  // namespace gkm
