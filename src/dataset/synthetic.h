// Copyright 2026 The gkmeans Authors.
// Synthetic dataset generators standing in for the paper's corpora
// (SIFT100K/1M, GIST1M, GloVe1M, VLAD10M — Tab. 1). Each generator draws
// from a Gaussian mixture with Zipf-distributed component weights plus a
// configurable fraction of unclustered background noise, then applies a
// per-family post-transform that mimics the family's coordinate statistics
// (non-negative histogram bins for SIFT, L2-normalized signed embeddings for
// GloVe, ...). See DESIGN.md "Data substitution" for the rationale.

#ifndef GKM_DATASET_SYNTHETIC_H_
#define GKM_DATASET_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace gkm {

/// Parameters of the Gaussian-mixture generator.
struct SyntheticSpec {
  std::size_t n = 10000;       ///< number of vectors
  std::size_t dim = 128;       ///< dimensionality
  std::size_t modes = 100;     ///< number of mixture components
  double zipf_s = 0.8;         ///< Zipf exponent for component weights (0 = uniform)
  double center_spread = 10.0; ///< std-dev of component centers
  double cluster_spread = 1.0; ///< base within-component std-dev
  double spread_jitter = 0.5;  ///< relative per-component spread variation
  double noise_fraction = 0.02;///< fraction of points drawn from background
  std::uint64_t seed = 42;
};

/// A generated dataset together with the mixture-component ids used to
/// produce each vector (handy as a sanity oracle in tests; the clustering
/// algorithms never see it).
struct SyntheticData {
  Matrix vectors;
  std::vector<std::uint32_t> mode_of;  ///< generating component per row
  std::string family;                  ///< "sift" | "gist" | "glove" | "vlad" | "gmm"
};

/// Raw Gaussian mixture without any family post-transform.
SyntheticData MakeGaussianMixture(const SyntheticSpec& spec);

/// SIFT-like: 128-d by default, non-negative, heavy-tailed bin magnitudes,
/// rounded to integer grid like real SIFT descriptors.
SyntheticData MakeSiftLike(std::size_t n, std::size_t dim = 128,
                           std::uint64_t seed = 42);

/// GIST-like: 960-d by default, low-contrast dense positive features.
SyntheticData MakeGistLike(std::size_t n, std::size_t dim = 960,
                           std::uint64_t seed = 42);

/// GloVe-like: 100-d by default, signed, L2-normalized, strong cluster
/// overlap (text embeddings cluster far less cleanly than SIFT).
SyntheticData MakeGloveLike(std::size_t n, std::size_t dim = 100,
                            std::uint64_t seed = 42);

/// VLAD-like: 512-d by default, signed with power-law per-block energy,
/// L2-normalized (as produced by VLAD + PCA pipelines).
SyntheticData MakeVladLike(std::size_t n, std::size_t dim = 512,
                           std::uint64_t seed = 42);

/// Dispatch by family name ("sift", "gist", "glove", "vlad", "gmm").
SyntheticData MakeByFamily(const std::string& family, std::size_t n,
                           std::uint64_t seed = 42);

}  // namespace gkm

#endif  // GKM_DATASET_SYNTHETIC_H_
