// Copyright 2026 The gkmeans Authors.
// Sharded online KNN graph: S independent OnlineKnnGraph arenas, each with
// its own reader-writer lock, RNG, scratch and deletion bookkeeping.
// Incoming points are assigned to shards by a deterministic content hash,
// per-shard ingest runs on concurrent writer threads (commits no longer
// serialize globally), and cross-shard search fans SearchKnn over the
// shards and merges by the Neighbor ordering of the top_k machinery —
// a query only ever waits for the brief commit window of the one shard it
// is currently reading, never for a commit in another shard.
//
// Why partitioning preserves quality: Debatty et al. ("Fast Online k-nn
// Graph Building") show partitioned online construction with local repair
// keeps the approximation sound, and cluster-locality ("Cluster-and-
// Conquer") keeps cross-partition edges rare — which the streaming
// clusterer's cluster-routed seed hints give each shard for free.
//
// Identity scheme ("GlobalId"): a point living in shard s at arena slot t
// is published as the global id t*S + s (shard = g % S, slot = g / S).
// Interleaving keeps global ids dense while shards stay balanced, and for
// S == 1 the global id IS the slot id — every id-indexed consumer
// (labels, TTL clocks, checkpoints) is bit-identical to the unsharded
// graph, which the golden checkpoint test pins.

#ifndef GKM_STREAM_SHARDED_ONLINE_KNN_GRAPH_H_
#define GKM_STREAM_SHARDED_ONLINE_KNN_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "stream/online_knn_graph.h"

namespace gkm {

class ThreadPool;

/// Shard-qualified point identity. Thin by design: conversions are two
/// integer ops, so global ids travel as plain u32 everywhere (labels,
/// checkpoints, touched sets) and only ingest/search translate.
struct GlobalId {
  std::uint32_t shard = 0;
  std::uint32_t slot = 0;

  static GlobalId Split(std::uint32_t global, std::size_t num_shards) {
    return GlobalId{static_cast<std::uint32_t>(global % num_shards),
                    static_cast<std::uint32_t>(global / num_shards)};
  }
  static std::uint32_t Join(std::uint32_t shard, std::uint32_t slot,
                            std::size_t num_shards) {
    return static_cast<std::uint32_t>(slot * num_shards + shard);
  }
};

/// Exclusive upper bound on the interleaved global ids of shards with
/// these arena row counts: max over shards of (rows_s - 1)*S + s + 1.
/// The single definition of the persisted-format invariant shared by
/// ShardedOnlineKnnGraph::size() and the checkpoint loader's label/birth
/// count validation.
std::size_t ShardedArenaBound(const std::size_t* rows_per_shard,
                              std::size_t num_shards);

/// Checkpointed per-shard state, consumed by the restore constructor. The
/// fields mirror OnlineKnnGraph's restore constructor arguments.
struct OnlineShardParts {
  Matrix points;
  KnnGraph graph;
  RngSnapshot rng;
  AdaptiveSeedState seeds;
  RemovalState removal;
  /// SQ8 arena payload (GKMC v5). Default (`trained == false`) restores an
  /// fp32-resident shard; `points` must then hold the rows, exactly as in
  /// v2–v4 checkpoints.
  Sq8ArenaParts sq8;
  /// Per-mode adaptive seed budgets (GKMC v6). Empty for earlier versions
  /// or modeless streams.
  std::vector<AdaptiveSeedState> mode_seeds;
};

/// Immutable routing table published by the streaming clusterer after each
/// committed window: the cluster centroids as of that commit, each
/// cluster's home shard, and which clusters are non-empty. A query routes
/// to the home shard of its nearest active cluster, spilling to the best
/// cluster on a *different* shard when the two scores are within the
/// margin — `d2 <= (1 + spill_margin) * d1` in squared-distance space —
/// so near-boundary queries still see both plausible shards.
///
/// Everything here is a pure function of checkpointed clusterer state
/// (centroids, counts, home assignment), never of load or timing, so
/// routing is arrival-order / thread-count / restart independent.
struct ShardRouter {
  Matrix centroids;                  ///< k x dim, post-commit values
  std::vector<std::uint32_t> home;   ///< cluster -> home shard, size k
  std::vector<std::uint8_t> active;  ///< 1 = non-empty cluster, size k
  double spill_margin = 0.35;        ///< runner-up tolerance (squared space)
};

/// One generation of per-shard read replicas: snapshot copies of every
/// shard graph taken by the ingest caller after a committed window, plus
/// the router frozen with them. Query workers fan out across replica
/// lanes (graphs[s * per_shard + r]) so read throughput scales past the
/// writer count; every lane of a shard is an identical copy restored from
/// the same snapshot, so which lane answers never changes the answer.
struct ReplicaTable {
  std::vector<std::unique_ptr<OnlineKnnGraph>> graphs;  ///< S * per_shard
  std::size_t per_shard = 0;
  std::uint64_t window = 0;  ///< ingest commit the snapshot trails
  std::shared_ptr<const ShardRouter> router;  ///< null = merged reads
};

/// S independent online graphs behind one global-id facade.
///
/// Concurrency model: one *logical* ingest caller (the streaming clusterer
/// or an ingest loop) calls InsertBatch/Remove/CompactTombstones; inside
/// InsertBatch, per-shard commits run on S concurrent writer threads, each
/// taking only its own shard's writer lock. Any number of serving threads
/// call SearchKnn/SearchKnnBatch concurrently with all of it. Determinism:
/// shard assignment is a pure content hash, every shard is itself
/// deterministic, and merged results are ordered by (dist, global id) — so
/// the whole structure stays a pure function of the input sequence at any
/// writer/pool thread count, for a fixed shard count.
///
/// Lock discipline: this facade owns no lock. `shards_` and `params_` are
/// written only during construction (immutable afterwards); every mutable
/// field lives inside an OnlineKnnGraph shard under that shard's annotated
/// SharedMutex, so the thread-safety analysis checks each shard
/// independently. The Unsynchronized accessors below (Point,
/// SortedNeighborsInto, AppendNeighborIds, IsAliveUnlocked) delegate to
/// OnlineKnnGraph's audited AssertReaderHeld claims — ingest-thread or
/// quiescent use only, exactly as documented there.
class ShardedOnlineKnnGraph {
 public:
  /// Empty structure over `dim`-dimensional points with `params.shards`
  /// shards. Shard s draws from seed `params.seed + s` (splitmix-expanded,
  /// so nearby seeds are uncorrelated streams); shard 0 therefore matches
  /// the unsharded graph exactly.
  ShardedOnlineKnnGraph(std::size_t dim, const OnlineGraphParams& params);

  /// Re-assembles from checkpointed per-shard parts (`parts.size()` must
  /// equal `params.shards`).
  ShardedOnlineKnnGraph(std::vector<OnlineShardParts> parts,
                        const OnlineGraphParams& params);

  std::size_t num_shards() const { return shards_.size(); }
  const OnlineKnnGraph& shard(std::size_t s) const { return shards_[s]; }
  const OnlineGraphParams& params() const { return params_; }
  std::size_t dim() const { return shards_[0].dim(); }

  /// Deterministic shard of a point: FNV-1a over the row's float bytes,
  /// mod S. Content-addressed, so the partition is independent of arrival
  /// order, thread count and process restarts.
  std::uint32_t ShardOf(const float* x) const;

  /// Exclusive upper bound on global ids. Interleaving leaves holes when
  /// shards are momentarily unbalanced; IsAlive is false for a hole.
  /// Monotonically non-decreasing. Safe during ingest.
  std::size_t size() const;
  /// Live points across all shards. Safe during ingest.
  std::size_t num_alive() const;
  /// Whether global id `g` names a live point. Safe during ingest.
  bool IsAlive(std::uint32_t g) const;
  /// Ingest-thread / quiescent variant (see OnlineKnnGraph::IsAliveUnlocked).
  bool IsAliveUnlocked(std::uint32_t g) const;
  /// Entry points per walk currently in force (max across shards).
  std::size_t live_num_seeds() const;

  /// Coordinates of the live point `g`. Unsynchronized: ingest thread or
  /// quiescent use only (serving threads go through SearchKnn). In SQ8 mode
  /// the pointer targets a decoded thread-local ring slot (see
  /// OnlineKnnGraph::PointPtr for the lifetime rules).
  const float* Point(std::uint32_t g) const;

  /// Re-trains every shard's SQ8 quantizer from its decoded live rows
  /// (no-op for untrained / fp32 shards). Ingest-caller only.
  void RequantizeArena();

  /// Neighbor list of `g` sorted ascending by distance, ids global.
  /// Unsynchronized, like Point.
  void SortedNeighborsInto(std::uint32_t g, std::vector<Neighbor>& out) const;

  /// Appends the global ids of `g`'s current neighbors to `out`
  /// (unsorted). Unsynchronized, like Point.
  void AppendNeighborIds(std::uint32_t g, std::vector<std::uint32_t>& out)
      const;

  /// Batch insert of every row of `rows`, partitioned to shards by
  /// `placement` when given (one target shard per row — the streaming
  /// clusterer's cluster-routed assignment), else by ShardOf. Per-shard
  /// ingest runs on one writer thread per non-empty shard (walks
  /// additionally fan out over `pool` when given), and commits of
  /// different shards proceed concurrently under their own locks.
  /// `assigned` (when non-null) receives every row's *global* id in row
  /// order; the first row's id is returned. `touched` collects global ids
  /// of pre-existing nodes whose lists changed (sorted, deduplicated).
  /// `seed_hints`, when non-null, supplies one *global-id* hint vector per
  /// row; hints living in a foreign shard are dropped (a walk cannot enter
  /// another shard's arena). `modes`, when non-null, tags each row with
  /// its cluster id for the per-mode adaptive seed budgets (forwarded to
  /// the row's shard). Deterministic at any thread count.
  std::uint32_t InsertBatch(
      const Matrix& rows, ThreadPool* pool,
      std::vector<std::uint32_t>* touched = nullptr,
      const std::vector<std::vector<std::uint32_t>>* seed_hints = nullptr,
      std::vector<std::uint32_t>* assigned = nullptr,
      const std::vector<std::uint32_t>* placement = nullptr,
      const std::vector<std::uint32_t>* modes = nullptr);

  /// Tombstones global id `g` in its shard (repair + amortized purge as in
  /// OnlineKnnGraph::Remove). `repaired` collects global ids (sorted,
  /// deduplicated). Ingest-caller only.
  void Remove(std::uint32_t g, std::vector<std::uint32_t>* repaired = nullptr);

  /// Purges tombstones of every shard (see CompactTombstones there).
  void CompactTombstones();

  /// Approximate top-k nearest live points across all shards, ids global,
  /// sorted ascending by (dist, id). Fans the per-shard walk over the
  /// shards sequentially, acquiring one shard's reader lock at a time —
  /// a commit in shard s delays a query only while it reads shard s.
  /// Safe from any number of threads concurrently with ingest.
  std::vector<Neighbor> SearchKnn(const float* q, std::size_t topk) const;
  std::vector<Neighbor> SearchKnn(const float* q, std::size_t topk,
                                  SearchScratch& scratch) const;

  /// Single-shard query, ids global: the routed-serving fast path when the
  /// caller knows the target shard (e.g. cluster-affine routing), and the
  /// stall-independence primitive — it takes only shard `s`'s reader lock,
  /// so it can never block on any other shard's commit. Returns nullopt
  /// when `s` is out of range (a routing-table bug at the caller) instead
  /// of silently answering from the wrong arena or aborting.
  std::optional<std::vector<Neighbor>> SearchKnnInShard(
      std::size_t s, const float* q, std::size_t topk,
      SearchScratch& scratch) const;

  /// Publishes a routing table (null clears routing). The ingest caller
  /// installs a fresh table after each committed window; readers snapshot
  /// it per query, so an in-flight search keeps the generation it started
  /// with. The table must have `home` entries < num_shards.
  void SetRouter(std::shared_ptr<const ShardRouter> router);
  /// Current routing table (null when routing is off / not yet published).
  std::shared_ptr<const ShardRouter> router() const;

  /// Routed single-shard query: scores `q` against the router's centroids,
  /// searches only the nearest active cluster's home shard — plus the
  /// runner-up shard when the margin guard trips — and returns global ids
  /// sorted by (dist, id). Falls back to the merged SearchKnn when no
  /// router is installed or S == 1. ~S x less walk work than the merged
  /// fan-out when the spill rate is low (the bench-gated claim).
  std::vector<Neighbor> SearchKnnRouted(const float* q,
                                        std::size_t topk) const;
  std::vector<Neighbor> SearchKnnRouted(const float* q, std::size_t topk,
                                        SearchScratch& scratch) const;
  /// Batched routed queries, element-wise identical to per-query
  /// SearchKnnRouted calls against the same router generation.
  std::vector<std::vector<Neighbor>> SearchKnnBatchRouted(
      const Matrix& queries, std::size_t topk) const;
  std::vector<std::vector<Neighbor>> SearchKnnBatchRouted(
      const Matrix& queries, std::size_t topk, SearchScratch& scratch) const;

  /// Rebuilds the read-replica table: `per_shard` snapshot copies of every
  /// shard (restored from the leader's checkpoint parts, so replica
  /// searches are element-wise identical to leader searches against the
  /// same state), stamped with the ingest commit `window` and carrying the
  /// current router. per_shard == 0 clears the table. Ingest-caller only
  /// (requires the shards quiescent); readers snapshot the table per
  /// batch, so queries in flight keep the generation they started with.
  void RefreshReplicas(std::size_t per_shard, std::uint64_t window);
  /// Current replica table (null until the first refresh).
  std::shared_ptr<const ReplicaTable> replica_table() const;

  /// Batched queries answered from the replica table: each call picks the
  /// next replica lane round-robin and answers entirely from that lane's
  /// snapshot copies — routed when the table carries a router, merged
  /// otherwise — so concurrent query workers spread across lanes and
  /// never contend on the leader's shard locks. Falls back to the leader
  /// (routed when a router is installed) when no table is published.
  /// Lane choice never changes answers: all lanes of a generation are
  /// identical copies.
  std::vector<std::vector<Neighbor>> SearchKnnBatchReplica(
      const Matrix& queries, std::size_t topk, SearchScratch& scratch) const;

  /// Routing / replica telemetry: queries answered via the routed path,
  /// routed queries that spilled to a second shard, and batch queries
  /// answered from a replica lane. Monotonic, relaxed.
  std::uint64_t route_hits() const { return route_hits_.Load(); }
  std::uint64_t route_spills() const { return route_spills_.Load(); }
  std::uint64_t replica_reads() const { return replica_reads_.Load(); }

  /// Batched serving queries: per-shard SearchKnnBatch (one reader
  /// acquisition per shard per batch), merged per query. Element-wise
  /// identical to per-query SearchKnn calls.
  std::vector<std::vector<Neighbor>> SearchKnnBatch(const Matrix& queries,
                                                    std::size_t topk) const;
  std::vector<std::vector<Neighbor>> SearchKnnBatch(
      const Matrix& queries, std::size_t topk, SearchScratch& scratch) const;

 private:
  std::uint32_t ToGlobal(std::uint32_t shard, std::uint32_t slot) const {
    return GlobalId::Join(shard, slot, shards_.size());
  }

  /// Scores `q` against `router`'s centroids and fills `out` with the home
  /// shard of the nearest active cluster, plus the runner-up shard when
  /// the spill margin trips. Returns the shard count (0 = no active
  /// cluster, caller falls back to merged search). `dist` is scratch.
  std::size_t RouteShards(const ShardRouter& router, const float* q,
                          std::uint32_t out[2], std::vector<float>& dist) const;

  /// Merges per-shard results (already global-id-translated by the caller
  /// via `shard_of[i]`) into one (dist, id)-ordered top-k.
  std::vector<Neighbor> MergeRouted(const std::uint32_t* shard_ids,
                                    std::vector<Neighbor>* parts,
                                    std::size_t count, std::size_t topk) const;

  // Movable monotonic counter (mirrors OnlineKnnGraph's pattern: the copy
  // hooks only ever run before concurrent use, when the owning streaming
  // model is moved into place).
  struct RelaxedCounter {
    std::atomic<std::uint64_t> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(const RelaxedCounter& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void Add(std::uint64_t inc) { v.fetch_add(inc, std::memory_order_relaxed); }
    std::uint64_t Next() { return v.fetch_add(1, std::memory_order_relaxed); }
    std::uint64_t Load() const { return v.load(std::memory_order_relaxed); }
  };

  OnlineGraphParams params_;
  std::vector<OnlineKnnGraph> shards_;
  // Published routing/replica generations: written by the ingest caller
  // (pointer swap under the writer side), snapshotted by readers under the
  // shared side. SharedMutex copy/move semantics (fresh mutex) keep the
  // facade movable like its shards.
  SharedMutex publish_mu_;
  std::shared_ptr<const ShardRouter> router_ GKM_GUARDED_BY(publish_mu_);
  std::shared_ptr<const ReplicaTable> replicas_ GKM_GUARDED_BY(publish_mu_);
  // Round-robin replica lane cursor. Relaxed: lane choice is pure load
  // spreading — every lane of a generation answers identically.
  mutable RelaxedCounter replica_lane_;
  mutable RelaxedCounter route_hits_;
  mutable RelaxedCounter route_spills_;
  mutable RelaxedCounter replica_reads_;
};

}  // namespace gkm

#endif  // GKM_STREAM_SHARDED_ONLINE_KNN_GRAPH_H_
