// Copyright 2026 The gkmeans Authors.

#include "stream/streaming_gkmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "core/candidate_harvest.h"
#include "kmeans/two_means_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm {
namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

// Both constructors funnel through this: params restored from a checkpoint
// are as untrusted as caller-supplied ones.
void ValidateParams(const StreamingGkMeansParams& params) {
  GKM_CHECK(params.k >= 2);
  GKM_CHECK(params.kappa > 0);
  GKM_CHECK_MSG(params.bootstrap_min > 2 * params.k,
                "bootstrap window too small for k clusters");
}

}  // namespace

const char* ValidateStreamSnapshot(const StreamSnapshot& snap) {
  const StreamingGkMeansParams& p = snap.params;
  if (p.k < 2) return "snapshot k out of range";
  if (p.kappa == 0) return "snapshot kappa out of range";
  if (p.bootstrap_min <= 2 * p.k) {
    return "snapshot bootstrap window too small for k clusters";
  }
  if (!(std::isfinite(p.spill_margin) && p.spill_margin >= 0.0)) {
    return "snapshot spill margin out of range";
  }
  if (!(std::isfinite(p.rebalance_threshold) && p.rebalance_threshold >= 0.0)) {
    return "snapshot rebalance threshold out of range";
  }
  const std::size_t num_shards = snap.shards.size();
  if (num_shards == 0 || num_shards != p.graph.shards) {
    return "snapshot shard count does not match params";
  }
  // Shard arena shape is storage-dependent: an SQ8-trained shard carries
  // codes + quantizer (and an empty fp32 matrix), an fp32 shard carries the
  // matrix. Validate against whichever representation is present.
  const auto shard_rows = [](const OnlineShardParts& shard) {
    return shard.sq8.trained ? shard.sq8.norms.size() : shard.points.rows();
  };
  const auto shard_cols = [](const OnlineShardParts& shard) {
    return shard.sq8.trained ? shard.sq8.quant.scale.size()
                             : shard.points.cols();
  };
  const std::size_t dim = shard_cols(snap.shards[0]);
  std::vector<std::size_t> rows(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const OnlineShardParts& shard = snap.shards[s];
    if (shard.sq8.trained && shard.points.rows() != 0) {
      return "snapshot SQ8 shard also carries fp32 rows";
    }
    if (shard_cols(shard) != dim) return "snapshot shard dimension mismatch";
    rows[s] = shard_rows(shard);
    if (const char* msg = ValidateOnlineGraphRestoreParts(
            rows[s], dim, shard.graph, p.graph, shard.removal)) {
      return msg;
    }
    if (const char* msg =
            ValidateSq8ArenaParts(shard.sq8, rows[s], dim, p.graph)) {
      return msg;
    }
    // Per-mode seed budgets (v6): modes are cluster ids, so the table can
    // never be wider than k. live_seeds == 0 marks an uninitialized mode.
    if (shard.mode_seeds.size() > p.k) {
      return "snapshot per-mode seed table wider than k";
    }
    for (const AdaptiveSeedState& ms : shard.mode_seeds) {
      if (!(std::isfinite(ms.fail_ewma) && ms.fail_ewma >= 0.0 &&
            ms.fail_ewma <= 1.0)) {
        return "snapshot per-mode seed EWMA out of range";
      }
      if (ms.live_seeds > (1u << 24)) {
        return "snapshot per-mode seed count implausible";
      }
    }
  }
  const std::size_t bound = ShardedArenaBound(rows.data(), num_shards);
  if (snap.labels.size() != bound) {
    return "labels/points size mismatch in snapshot";
  }
  // Liveness per global id, computed from the raw parts (the graphs are
  // not constructed yet): the slot must exist in its shard — interleaving
  // leaves holes when shards are unbalanced — and be neither tombstoned
  // nor reclaimed.
  std::vector<std::uint8_t> alive(bound, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const OnlineShardParts& shard = snap.shards[s];
    std::vector<std::uint8_t> dead(rows[s], 0);
    for (const std::uint32_t id : shard.removal.pending_dead) dead[id] = 1;
    for (const std::uint32_t id : shard.removal.free_slots) dead[id] = 1;
    for (std::size_t t = 0; t < rows[s]; ++t) {
      if (dead[t] == 0) alive[t * num_shards + s] = 1;
    }
  }
  for (std::size_t i = 0; i < snap.labels.size(); ++i) {
    const std::uint32_t l = snap.labels[i];
    if (l >= p.k && l != kUnassigned) return "snapshot label out of range";
    if (l == kUnassigned && snap.bootstrapped && alive[i] != 0) {
      return "live point unlabeled in bootstrapped snapshot";
    }
    if (l != kUnassigned && alive[i] == 0) {
      return "tombstoned slot still labeled in snapshot";
    }
  }
  if (!snap.cluster_reps.empty() && snap.cluster_reps.size() != p.k) {
    return "snapshot cluster-representative count mismatch";
  }
  for (const std::uint32_t rep : snap.cluster_reps) {
    if (rep == kUnassigned) continue;
    if (rep >= bound || alive[rep] == 0) {
      return "snapshot cluster representative out of range";
    }
  }
  if (!snap.cluster_home.empty() && snap.cluster_home.size() != p.k) {
    return "snapshot cluster-home count mismatch";
  }
  for (const std::uint32_t h : snap.cluster_home) {
    if (h >= num_shards) return "snapshot cluster home out of range";
  }
  if (p.routed_placement && snap.bootstrapped &&
      snap.cluster_home.size() != p.k) {
    return "routed snapshot missing cluster homes";
  }
  if (!p.routed_placement && !snap.cluster_home.empty()) {
    return "snapshot cluster homes present without routed placement";
  }
  if (!snap.birth_windows.empty() &&
      snap.birth_windows.size() != snap.labels.size()) {
    return "snapshot birth-window count mismatch";
  }
  for (const std::uint64_t b : snap.birth_windows) {
    if (b > snap.windows) return "snapshot birth window in the future";
  }
  if (snap.counts.size() != p.k) return "snapshot counts have wrong size";
  std::uint64_t total = 0;
  for (const std::uint32_t c : snap.counts) total += c;
  if (total != snap.n) return "snapshot counts do not sum to n";
  if (snap.n > snap.labels.size()) return "snapshot n exceeds point count";
  if (snap.prev_centroids.rows() != 0 &&
      (snap.prev_centroids.rows() != p.k ||
       snap.prev_centroids.cols() != dim)) {
    return "snapshot drift baseline has wrong shape";
  }
  // The raw state blocks are handed to ClusterState::RestoreRaw unchecked.
  if (snap.composites.size() != p.k * dim) {
    return "snapshot composite block has wrong size";
  }
  if (snap.composite_norms.size() != p.k || snap.point_norms.size() != p.k) {
    return "snapshot norm caches have wrong size";
  }
  return nullptr;
}

StreamingGkMeans::StreamingGkMeans(std::size_t dim,
                                   const StreamingGkMeansParams& params)
    : params_(params),
      pool_(std::make_unique<ThreadPool>(params.ingest_threads)),
      graph_(dim, params.graph),
      state_(dim, params.k),
      cluster_reps_(params.k, kUnassigned),
      rng_(params.seed),
      stamp_(params.k, 0) {
  ValidateParams(params);
  cand_.reserve(params.kappa + 1);
}

StreamingGkMeans::StreamingGkMeans(StreamSnapshot snap)
    : params_(snap.params),
      pool_(std::make_unique<ThreadPool>(snap.params.ingest_threads)),
      graph_(std::move(snap.shards), snap.params.graph),
      labels_(std::move(snap.labels)),
      state_(graph_.dim(), snap.params.k),
      prev_centroids_(std::move(snap.prev_centroids)),
      cluster_reps_(std::move(snap.cluster_reps)),
      cluster_home_(std::move(snap.cluster_home)),
      birth_window_(std::move(snap.birth_windows)),
      rng_(snap.params.seed),
      windows_(snap.windows),
      bootstrapped_(snap.bootstrapped),
      stamp_(snap.params.k, 0) {
  // Every snapshot invariant was checked by ValidateStreamSnapshot in
  // FromSnapshot — the only route here — before this body runs (the
  // per-shard graph parts additionally re-validate inside the graph
  // restore constructors above, in the init list).
  if (cluster_reps_.empty()) cluster_reps_.assign(params_.k, kUnassigned);
  // Pre-deletion (v2) snapshots carry no birth windows: every slot counts
  // as born at restore time, which a ttl_windows=0 model never reads.
  if (birth_window_.empty()) birth_window_.assign(graph_.size(), windows_);
  state_.RestoreRaw(static_cast<std::size_t>(snap.n),
                    std::move(snap.composites), std::move(snap.counts),
                    std::move(snap.composite_norms),
                    std::move(snap.point_norms), snap.sum_point_norms);
  rng_.Restore(snap.rng);
  cand_.reserve(params_.kappa + 1);
}

void StreamingGkMeans::ObserveWindow(const Matrix& window) {
  ObserveWindow(window, nullptr);
}

void StreamingGkMeans::ObserveWindow(const Matrix& window,
                                     std::vector<std::uint32_t>* assigned) {
  GKM_CHECK_MSG(window.cols() == dim(), "window dimension mismatch");
  GKM_TRACE_SPAN("stream.window");
  WindowStats ws;
  ws.window = static_cast<std::size_t>(windows_);
  ws.points = window.rows();

  // TTL expiry runs before ingest, against the window cursor the points
  // were aged by — so a checkpoint cut between windows resumes with the
  // exact same expiry schedule. Nodes whose lists the removal repair
  // touched join the window's re-optimization scope below.
  std::vector<std::uint32_t> touched;
  ws.expired = ExpireTtl(&touched);

  // Centroids snapshotted at window start: they steer both insert routing
  // and the nearest-centroid assignment fallback.
  const bool was_bootstrapped = bootstrapped_;
  Matrix centroids;
  if (was_bootstrapped) centroids = state_.Centroids();

  // Route hints per row, computed in parallel against the window-start
  // centroid snapshot (cluster state is read-only here). Routed placement
  // additionally tags every row with its nearest cluster (its "mode"): the
  // tag picks the row's home shard below and selects its per-mode adaptive
  // seed budget inside the graph.
  const std::size_t rows = window.rows();
  std::vector<std::vector<std::uint32_t>> hints;
  std::vector<std::uint32_t> modes;
  const bool use_hints = was_bootstrapped && params_.route_hints > 0;
  const bool mode_tagged = was_bootstrapped && params_.routed_placement;
  if (use_hints || mode_tagged) {
    PrepareRouteQuantizer(centroids);
    if (use_hints) hints.resize(rows);
    if (mode_tagged) modes.resize(rows);
    pool_->ParallelFor(0, rows, [&](std::size_t r) {
      thread_local std::vector<std::uint32_t> hint_scratch;
      std::vector<std::uint32_t>& h = use_hints ? hints[r] : hint_scratch;
      ComputeRouteHints(window.Row(r), centroids, h,
                        mode_tagged ? &modes[r] : nullptr);
    });
  }
  // Cluster-routed shard assignment: each row lands on its mode's home
  // shard — a pure function of the checkpointed centroid state, so the
  // partition stays arrival-order/thread/restart independent. Rows with no
  // live cluster (every cluster drained) fall back to the content hash.
  std::vector<std::uint32_t> placement;
  const bool routed_place =
      mode_tagged && graph_.num_shards() > 1 && !cluster_home_.empty();
  if (routed_place) {
    placement.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      placement[r] = modes[r] != kUnassigned ? cluster_home_[modes[r]]
                                             : graph_.ShardOf(window.Row(r));
    }
  }

  // Batched graph ingest: walks fan out over the pool against a frozen
  // snapshot, edges commit serially — bit-identical at any thread count.
  // Removals make assigned ids non-contiguous (reclaimed slots come
  // first), so the graph reports them explicitly.
  std::vector<std::uint32_t> fresh;
  graph_.InsertBatch(window, pool_.get(), &touched,
                     use_hints ? &hints : nullptr, &fresh,
                     routed_place ? &placement : nullptr,
                     mode_tagged ? &modes : nullptr);
  labels_.resize(graph_.size(), kUnassigned);
  birth_window_.resize(graph_.size(), windows_);
  for (const std::uint32_t id : fresh) {
    labels_[id] = kUnassigned;  // reclaimed slots carry no stale label
    birth_window_[id] = windows_;
  }

  if (!bootstrapped_) {
    if (graph_.num_alive() >= params_.bootstrap_min) Bootstrap();
  } else {
    for (const std::uint32_t id : fresh) AssignNew(id, centroids);

    // The re-optimization scope: the new points, every node whose neighbor
    // list adopted one of them, and the immediate graph neighborhood of
    // the new points — everything whose local density the window changed.
    for (const std::uint32_t id : fresh) {
      touched.push_back(id);
      graph_.AppendNeighborIds(id, touched);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    ws.touched = touched.size();

    ws.moves = RunEpochs(touched, params_.epochs_per_window, &ws.epochs);
    DriftAndReseed(touched, ws);
    SplitMergeMaintain(ws);

    // Routed-placement maintenance: re-home clusters when TTL churn skewed
    // the shard loads, then drain a budgeted slice of the rows the window
    // (or a re-home) left on foreign shards. Both read only checkpointed
    // state, so placement stays a pure function of the stream.
    if (params_.routed_placement && !cluster_home_.empty()) {
      ws.rehomed = RebalanceHomes();
      ws.migrated = MigrateMisplaced(params_.migrate_budget);
    }
  }

  if (bootstrapped_ && state_.n() > 0) ws.distortion = state_.Distortion();
  GKM_COUNTER_ADD("stream.window.count", 1);
  GKM_COUNTER_ADD("stream.window.points", static_cast<std::int64_t>(ws.points));
  GKM_COUNTER_ADD("stream.window.expired",
                  static_cast<std::int64_t>(ws.expired));
  GKM_COUNTER_ADD("stream.window.touched",
                  static_cast<std::int64_t>(ws.touched));
  GKM_COUNTER_ADD("stream.window.split_merges",
                  static_cast<std::int64_t>(ws.split_merges));
  GKM_GAUGE_SET("stream.points_alive",
                static_cast<std::int64_t>(graph_.num_alive()));
  ++windows_;
  // Publish the derived read state for this commit: the query router built
  // on the post-window centroids, and the replica snapshots serving reads
  // until the next commit.
  PublishReadState();
  if (params_.history_limit > 0 && history_.size() >= params_.history_limit) {
    history_.pop_front();
  }
  history_.push_back(ws);
  if (assigned != nullptr) *assigned = std::move(fresh);
}

void StreamingGkMeans::Bootstrap() {
  TwoMeansParams tp;
  tp.k = params_.k;
  tp.bisect_epochs = params_.bisect_epochs;
  // Cluster a compacted copy of the live rows (ascending global id — for a
  // dense single-shard arena that is exactly the arena order, so the copy
  // changes no value the clustering sees), then scatter the labels back to
  // their global slots. One path covers dense, tombstoned and sharded
  // arenas alike.
  const std::vector<std::uint32_t> alive = AliveIds();
  Matrix live(alive.size(), dim());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    live.SetRow(i, graph_.Point(alive[i]));
  }
  const std::vector<std::uint32_t> live_labels = TwoMeansTree(live, tp, rng_);
  state_.Rebuild(live, live_labels);
  labels_.assign(graph_.size(), kUnassigned);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    labels_[alive[i]] = live_labels[i];
  }
  for (const std::uint32_t i : alive) {
    cluster_reps_[labels_[i]] = i;
  }
  bootstrapped_ = true;

  RunEpochs(alive, params_.bootstrap_epochs, nullptr);
  prev_centroids_ = state_.Centroids();

  // Routed placement starts here: every cluster gets its home shard, and
  // the pre-bootstrap rows — content-hashed across shards until now — take
  // a one-time unbudgeted migration to their homes. Later windows insert
  // directly onto the home shard, so only churn strands rows after this.
  if (params_.routed_placement) {
    AssignClusterHomes();
    MigrateMisplaced(std::numeric_limits<std::size_t>::max());
  }
}

void StreamingGkMeans::PrepareRouteQuantizer(const Matrix& centroids) {
  route_sq8_ = params_.graph.storage == StorageMode::kSq8;
  if (!route_sq8_) {
    route_codes_.clear();
    route_norms_.clear();
    return;
  }
  // k is small, so re-training per window is cheap and the table always
  // matches the snapshot the window's hints are defined against. Train +
  // encode are deterministic, so hints — and through them the graph — stay
  // a pure function of the input stream.
  const std::size_t d = dim();
  route_qz_ = Sq8Train(centroids.Row(0), centroids.stride(), params_.k, d);
  route_codes_.assign(params_.k * d, 0);
  route_norms_.assign(params_.k, 0.0f);
  for (std::size_t c = 0; c < params_.k; ++c) {
    Sq8Encode(route_qz_, centroids.Row(c), d, route_codes_.data() + c * d,
              &route_norms_[c]);
  }
}

void StreamingGkMeans::ComputeRouteHints(const float* x,
                                         const Matrix& centroids,
                                         std::vector<std::uint32_t>& hints,
                                         std::uint32_t* nearest_active)
    const {
  // One strided batch over the centroid table (runs per inserted point, so
  // this is an ingest hot path); pushes visit clusters in the same order
  // as the scalar loop did.
  hints.clear();
  thread_local std::vector<float> dist;
  dist.resize(params_.k);
  if (route_sq8_) {
    // Quantized routing: rank centroids with the asymmetric SQ8 kernel
    // over the per-window encoded table. Approximate distances are fine
    // here — a mis-ranked hint costs one extra walk hop, never correctness
    // — and the integer path keeps the ranking bit-identical across tiers.
    thread_local Sq8Query sq;
    Sq8PrepareQuery(route_qz_, x, dim(), sq);
    L2SqrBatchSq8(sq, route_codes_.data(), dim(), params_.k, dim(),
                  route_norms_.data(), dist.data());
  } else {
    L2SqrBatch(x, centroids.Row(0), centroids.stride(), params_.k, dim(),
               dist.data());
  }
  // The routing mode: nearest non-empty cluster (tie → lowest id; strict <
  // over an ascending scan gives exactly that). Unlike a hint, a mode does
  // not need a live representative — it names a cluster, not a node.
  if (nearest_active != nullptr) {
    std::uint32_t best = kUnassigned;
    float best_dist = std::numeric_limits<float>::max();
    for (std::size_t c = 0; c < params_.k; ++c) {
      if (state_.CountOf(c) == 0) continue;
      if (dist[c] < best_dist) {
        best_dist = dist[c];
        best = static_cast<std::uint32_t>(c);
      }
    }
    *nearest_active = best;
  }
  if (params_.route_hints == 0) return;  // mode-only call (hints disabled)
  TopK nearest(params_.route_hints);
  for (std::size_t c = 0; c < params_.k; ++c) {
    if (state_.CountOf(c) == 0 || cluster_reps_[c] == kUnassigned) continue;
    nearest.Push(static_cast<std::uint32_t>(c), dist[c]);
  }
  for (const Neighbor& nb : nearest.items()) {
    hints.push_back(cluster_reps_[nb.id]);
  }
}

void StreamingGkMeans::AssignNew(std::uint32_t id, const Matrix& centroids) {
  const float* x = graph_.Point(id);
  const float xn = NormSqr(x, dim());
  const std::size_t kappa = std::min(params_.kappa, params_.graph.kappa);

  graph_.SortedNeighborsInto(id, nbr_scratch_);
  const std::size_t take = std::min(kappa, nbr_scratch_.size());
  nbr_ids_.assign(kappa, kUnassigned);
  for (std::size_t j = 0; j < take; ++j) nbr_ids_[j] = nbr_scratch_[j].id;
  // skip = kUnassigned keeps same-window not-yet-assigned neighbors out.
  ++cur_stamp_;
  HarvestCandidates(nbr_ids_.data(), kappa, labels_, kUnassigned, stamp_,
                    cur_stamp_, cand_);
  gain_scratch_.resize(cand_.size());
  state_.GainArriveBatch(x, xn, cand_.data(), cand_.size(),
                         gain_scratch_.data());
  double best_gain = -std::numeric_limits<double>::max();
  std::uint32_t best = kUnassigned;
  for (std::size_t ci = 0; ci < cand_.size(); ++ci) {
    const double g = gain_scratch_[ci];
    if (g > best_gain) {
      best_gain = g;
      best = cand_[ci];
    }
  }
  if (best == kUnassigned) {
    best = static_cast<std::uint32_t>(NearestRow(centroids, x));
  }
  state_.AddPoint(x, best);
  labels_[id] = best;
  cluster_reps_[best] = id;
}

std::size_t StreamingGkMeans::RunEpochs(const std::vector<std::uint32_t>& ids,
                                        std::size_t epochs,
                                        std::size_t* epochs_run) {
  const std::size_t d = dim();
  const std::size_t kappa = std::min(params_.kappa, params_.graph.kappa);
  std::vector<std::uint32_t> order(ids);
  std::vector<std::uint32_t> nbr(kappa);

  std::size_t total_moves = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    rng_.Shuffle(order);
    std::size_t moves = 0;
    for (const std::uint32_t i : order) {
      const std::uint32_t u = labels_[i];
      // Tombstoned slots (and same-window unassigned ids a caller might
      // pass) own no composite statistics — skip before indexing by label.
      if (u == kUnassigned) continue;
      if (state_.CountOf(u) < 2) continue;
      // The graph mutates between windows, so neighbor rows are fetched
      // live rather than flattened once as in the batch algorithm (into a
      // reused buffer — this runs once per visited sample per epoch).
      graph_.SortedNeighborsInto(i, nbr_scratch_);
      const std::vector<Neighbor>& sorted = nbr_scratch_;
      // Unlabeled neighbors (stale edges to tombstones awaiting the purge
      // sweep, or same-window inserts) contribute no candidate cluster.
      std::size_t take = 0;
      for (std::size_t j = 0; j < sorted.size() && take < kappa; ++j) {
        if (labels_[sorted[j].id] == kUnassigned) continue;
        nbr[take++] = sorted[j].id;
      }
      for (std::size_t j = take; j < kappa; ++j) nbr[j] = kUnassigned;
      ++cur_stamp_;
      HarvestCandidates(nbr.data(), kappa, labels_, u, stamp_, cur_stamp_,
                        cand_);
      if (cand_.empty()) continue;
      const float* x = graph_.Point(i);
      const float xn = NormSqr(x, d);
      // One batched mixed-precision dot over the candidate composites
      // (bit-identical to per-candidate GainArrive — checkpoint replay
      // and the golden test depend on that).
      gain_scratch_.resize(cand_.size());
      state_.GainArriveBatch(x, xn, cand_.data(), cand_.size(),
                             gain_scratch_.data());
      double best_gain = -std::numeric_limits<double>::max();
      std::uint32_t best_v = u;
      for (std::size_t ci = 0; ci < cand_.size(); ++ci) {
        const double g = gain_scratch_[ci];
        if (g > best_gain) {
          best_gain = g;
          best_v = cand_[ci];
        }
      }
      if (best_v == u) continue;
      if (best_gain + state_.GainLeave(x, xn, u) > 0.0) {
        state_.Move(x, u, best_v);
        labels_[i] = best_v;
        cluster_reps_[best_v] = i;
        ++moves;
      }
    }
    total_moves += moves;
    if (epochs_run != nullptr) ++*epochs_run;
    if (moves == 0) break;
  }
  return total_moves;
}

void StreamingGkMeans::DriftAndReseed(
    const std::vector<std::uint32_t>& touched, WindowStats& ws) {
  const std::size_t k = params_.k;
  const std::size_t d = dim();
  Matrix cur = state_.Centroids();

  if (params_.drift_threshold > 0.0 && prev_centroids_.rows() == k) {
    const double rms = std::sqrt(std::max(state_.Distortion(), 1e-30));
    std::size_t drifted = 0;
    double max_rel = 0.0;
    for (std::size_t r = 0; r < k; ++r) {
      if (state_.CountOf(r) == 0) continue;
      const double rel =
          std::sqrt(L2Sqr(cur.Row(r), prev_centroids_.Row(r), d)) / rms;
      max_rel = std::max(max_rel, rel);
      if (rel > params_.drift_threshold) ++drifted;
    }
    ws.drifted = drifted;
    ws.max_drift = max_rel;
    if (drifted > 0 && params_.max_extra_epochs > 0) {
      // Drift means the window genuinely moved the model: grant the
      // touched neighborhoods extra settling epochs before the next window
      // lands on a stale partition.
      ws.moves += RunEpochs(touched, params_.max_extra_epochs, &ws.epochs);
      cur = state_.Centroids();
    }
  }

  // Re-seed empty clusters (possible when the bootstrap partition starved
  // one, or after Restore of a degenerate state): move the worst-fit
  // member of the most populous cluster in as the new seed.
  for (std::size_t r = 0; r < k; ++r) {
    if (state_.CountOf(r) != 0) continue;
    std::size_t donor = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (state_.CountOf(c) > state_.CountOf(donor)) donor = c;
    }
    if (state_.CountOf(donor) < 2) break;
    std::uint32_t seed_id = kUnassigned;
    float worst = -1.0f;
    for (const std::uint32_t i : touched) {
      if (labels_[i] != donor) continue;
      const float dist = L2Sqr(graph_.Point(i), cur.Row(donor), d);
      if (dist > worst) {
        worst = dist;
        seed_id = i;
      }
    }
    if (seed_id == kUnassigned) {
      // Rare fallback: no touched member of the donor — full scan.
      for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i] != donor) continue;
        const float dist = L2Sqr(graph_.Point(i), cur.Row(donor), d);
        if (dist > worst) {
          worst = dist;
          seed_id = static_cast<std::uint32_t>(i);
        }
      }
    }
    if (seed_id == kUnassigned) break;
    state_.Move(graph_.Point(seed_id), donor, r);
    labels_[seed_id] = r;
    cluster_reps_[r] = seed_id;
    ++ws.reseeded;
    cur = state_.Centroids();
  }

  // Quantizer refresh on drift / re-seed: the per-dimension grid was
  // trained on the bootstrap distribution, and a window that moved
  // centroids (or re-seeded a cluster) is evidence the point distribution
  // moved with them — re-train the arena quantizer on the decoded live
  // rows so code resolution tracks the data. No-op in fp32 mode.
  if (ws.drifted > 0 || ws.reseeded > 0) graph_.RequantizeArena();

  prev_centroids_ = std::move(cur);
}

void StreamingGkMeans::SplitMergeMaintain(WindowStats& ws) {
  const std::size_t k = params_.k;
  if (k < 3 || params_.max_splits_per_window == 0) return;
  const std::size_t d = dim();

  for (std::size_t op = 0; op < params_.max_splits_per_window; ++op) {
    // Cheapest merge: the pair whose union loses the least Delta-I,
    //   loss(a,b) = ||Da||^2/na + ||Db||^2/nb - ||Da+Db||^2/(na+nb).
    // O(k^2 d) on the composite vectors — no point data touched.
    double best_loss = std::numeric_limits<double>::max();
    std::size_t ma = k, mb = k;
    for (std::size_t a = 0; a < k; ++a) {
      if (state_.CountOf(a) == 0) continue;
      const double* da = state_.Composite(a);
      for (std::size_t b = a + 1; b < k; ++b) {
        if (state_.CountOf(b) == 0) continue;
        const double* db = state_.Composite(b);
        double dot = 0.0;
        for (std::size_t j = 0; j < d; ++j) dot += da[j] * db[j];
        const double na = state_.CountOf(a);
        const double nb = state_.CountOf(b);
        const double merged = state_.CompositeNormSqr(a) + 2.0 * dot +
                              state_.CompositeNormSqr(b);
        const double loss = state_.CompositeNormSqr(a) / na +
                            state_.CompositeNormSqr(b) / nb -
                            merged / (na + nb);
        if (loss < best_loss) {
          best_loss = loss;
          ma = a;
          mb = b;
        }
      }
    }
    if (ma == k) break;

    // Split target: the highest-SSE cluster with enough members to carve.
    double best_sse = 0.0;
    std::size_t sc = k;
    for (std::size_t c = 0; c < k; ++c) {
      if (c == ma || c == mb || state_.CountOf(c) < 8) continue;
      const double sse = state_.ClusterSse(c);
      if (sse > best_sse) {
        best_sse = sse;
        sc = c;
      }
    }
    // Restructure only when the split's (conservatively estimated) gain
    // clearly buys back the merge's loss. `break`, not return: earlier ops
    // this window may have moved centroids, and the final baseline refresh
    // below must still run.
    if (sc == k || best_loss >= params_.split_gain_factor * best_sse) break;

    // Execute. One label scan: fold mb's members into ma, gather sc's.
    std::vector<std::uint32_t> members;
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      if (labels_[i] == mb) {
        labels_[i] = ma;
        cluster_reps_[ma] = static_cast<std::uint32_t>(i);
      } else if (labels_[i] == sc) {
        members.push_back(static_cast<std::uint32_t>(i));
      }
    }
    state_.MergeClusters(ma, mb);

    // Split sc in two with a short 2-means over its members: seeds are the
    // member farthest from the centroid and the member farthest from that
    // seed (a cheap stand-in for the principal axis extremes).
    std::vector<float> c1(d), c2(d);
    {
      const double* ds = state_.Composite(sc);
      const double inv = 1.0 / state_.CountOf(sc);
      for (std::size_t j = 0; j < d; ++j) {
        c1[j] = static_cast<float>(ds[j] * inv);
      }
    }
    std::uint32_t m1 = members[0];
    float worst = -1.0f;
    for (const std::uint32_t i : members) {
      const float dist = L2Sqr(graph_.Point(i), c1.data(), d);
      if (dist > worst) {
        worst = dist;
        m1 = i;
      }
    }
    std::uint32_t m2 = members[0];
    worst = -1.0f;
    for (const std::uint32_t i : members) {
      const float dist = L2Sqr(graph_.Point(i), graph_.Point(m1), d);
      if (dist > worst) {
        worst = dist;
        m2 = i;
      }
    }
    std::vector<char> side(members.size(), 0);
    std::memcpy(c1.data(), graph_.Point(m1), d * sizeof(float));
    std::memcpy(c2.data(), graph_.Point(m2), d * sizeof(float));
    for (int pass = 0; pass < 3; ++pass) {
      std::vector<double> s1(d, 0.0), s2(d, 0.0);
      std::size_t n1 = 0, n2 = 0;
      for (std::size_t m = 0; m < members.size(); ++m) {
        const float* x = graph_.Point(members[m]);
        side[m] = L2Sqr(x, c2.data(), d) < L2Sqr(x, c1.data(), d) ? 1 : 0;
        double* s = side[m] ? s2.data() : s1.data();
        for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
        (side[m] ? n2 : n1) += 1;
      }
      if (n1 == 0 || n2 == 0) break;
      for (std::size_t j = 0; j < d; ++j) {
        c1[j] = static_cast<float>(s1[j] / static_cast<double>(n1));
        c2[j] = static_cast<float>(s2[j] / static_cast<double>(n2));
      }
    }
    // Side 2 becomes the freed cluster id; keep at least one point on each
    // side (degenerate splits just leave mb empty for the re-seeder).
    const double sse_before = state_.ClusterSse(sc);
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (side[m] == 0) continue;
      if (state_.CountOf(sc) < 2) break;
      state_.Move(graph_.Point(members[m]), sc, mb);
      labels_[members[m]] = mb;
      cluster_reps_[mb] = members[m];
    }
    ++ws.split_merges;
    // One settling epoch over the restructured region refines the new
    // boundary against neighboring clusters.
    RunEpochs(members, 1, nullptr);
    // Stop when restructuring stops paying: the split's realized SSE
    // reduction no longer covers the merge's loss.
    const double realized =
        sse_before - state_.ClusterSse(sc) - state_.ClusterSse(mb);
    if (realized <= best_loss) break;
  }
  prev_centroids_ = state_.Centroids();
}

void StreamingGkMeans::AssignClusterHomes() {
  const std::size_t S = graph_.num_shards();
  const std::size_t k = params_.k;
  cluster_home_.assign(k, 0);
  if (S < 2) return;
  // Deterministic LPT greedy over the checkpointed counts: largest
  // clusters first, each onto the least-loaded shard so far (ties break to
  // the lowest cluster id / shard index).
  std::vector<std::uint32_t> order(k);
  for (std::size_t c = 0; c < k; ++c) order[c] = static_cast<std::uint32_t>(c);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t ca = state_.CountOf(a);
    const std::uint64_t cb = state_.CountOf(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  std::vector<std::uint64_t> load(S, 0);
  for (const std::uint32_t c : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < S; ++s) {
      if (load[s] < load[best]) best = s;
    }
    cluster_home_[c] = static_cast<std::uint32_t>(best);
    load[best] += state_.CountOf(c);
  }
}

std::size_t StreamingGkMeans::RebalanceHomes() {
  const std::size_t S = graph_.num_shards();
  const std::size_t k = params_.k;
  if (params_.rebalance_threshold <= 0.0 || S < 2) return 0;
  std::size_t moves = 0;
  for (std::size_t iter = 0; iter < k; ++iter) {
    std::vector<std::uint64_t> load(S, 0);
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const std::uint64_t n = state_.CountOf(c);
      load[cluster_home_[c]] += n;
      total += n;
    }
    if (total == 0) break;
    std::size_t hi = 0, lo = 0;
    for (std::size_t s = 1; s < S; ++s) {
      if (load[s] > load[hi]) hi = s;
      if (load[s] < load[lo]) lo = s;
    }
    const double avg = static_cast<double>(total) / static_cast<double>(S);
    if (static_cast<double>(load[hi]) / avg - 1.0 <=
        params_.rebalance_threshold) {
      break;
    }
    // Victim: the hot shard's smallest non-empty cluster (tie → lowest
    // id) — the cheapest physical move that can help.
    std::uint32_t victim = kUnassigned;
    std::uint64_t victim_count = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_home_[c] != hi) continue;
      const std::uint64_t n = state_.CountOf(c);
      if (n == 0) continue;
      if (victim == kUnassigned || n < victim_count) {
        victim = static_cast<std::uint32_t>(c);
        victim_count = n;
      }
    }
    if (victim == kUnassigned) break;
    // Move only while it strictly shrinks the spread, else the loop would
    // bounce one cluster between two shards forever.
    if (std::max(load[hi] - victim_count, load[lo] + victim_count) >=
        load[hi]) {
      break;
    }
    cluster_home_[victim] = static_cast<std::uint32_t>(lo);
    ++moves;
  }
  if (moves > 0) {
    GKM_COUNTER_ADD("stream.rebalance.rehomed",
                    static_cast<std::int64_t>(moves));
  }
  return moves;
}

std::size_t StreamingGkMeans::MigrateMisplaced(std::size_t budget) {
  const std::size_t S = graph_.num_shards();
  if (S < 2 || cluster_home_.empty() || budget == 0) return 0;
  GKM_TRACE_SPAN("stream.migrate");
  Matrix one(1, dim());
  std::vector<std::uint32_t> place1(1), mode1(1), fresh1;
  std::size_t moved = 0;
  // The scan bound is frozen: a re-inserted row that lands past it is
  // already home, and a slot reclaimed behind the cursor waits for the
  // next window's sweep. No resume cursor on purpose — a checkpoint cut
  // mid-sweep captures everything the next sweep needs in cluster_home_
  // and labels_.
  const std::size_t limit = labels_.size();
  for (std::size_t i = 0; i < limit && moved < budget; ++i) {
    const std::uint32_t l = labels_[i];
    if (l == kUnassigned) continue;
    const std::uint32_t home = cluster_home_[l];
    const auto id = static_cast<std::uint32_t>(i);
    if (GlobalId::Split(id, S).shard == home) continue;
    // Copy the row out before the tombstone: in SQ8 mode Point() decodes
    // into a transient ring slot the repair walk may recycle.
    one.SetRow(0, graph_.Point(id));
    const std::uint64_t birth = birth_window_[i];
    // Graph-only move — Remove, then re-insert on the home shard. The
    // cluster statistics never see the hop (the point does not change
    // cluster), so composites stay bit-identical across any migration
    // schedule.
    labels_[i] = kUnassigned;
    graph_.Remove(id, nullptr);
    place1[0] = home;
    mode1[0] = l;
    fresh1.clear();
    graph_.InsertBatch(one, pool_.get(), nullptr, nullptr, &fresh1, &place1,
                       &mode1);
    const std::uint32_t ng = fresh1[0];
    labels_.resize(graph_.size(), kUnassigned);
    birth_window_.resize(graph_.size(), windows_);
    labels_[ng] = l;
    birth_window_[ng] = birth;  // TTL clock survives the move
    for (std::uint32_t& rep : cluster_reps_) {
      if (rep == id) rep = ng;
    }
    ++moved;
  }
  if (moved > 0) {
    GKM_COUNTER_ADD("stream.migrate.rows", static_cast<std::int64_t>(moved));
  }
  return moved;
}

void StreamingGkMeans::PublishReadState() {
  if (params_.routed_placement && graph_.num_shards() > 1 && bootstrapped_ &&
      !cluster_home_.empty()) {
    auto router = std::make_shared<ShardRouter>();
    router->centroids = state_.Centroids();
    router->home = cluster_home_;
    router->active.assign(params_.k, 0);
    for (std::size_t c = 0; c < params_.k; ++c) {
      router->active[c] = state_.CountOf(c) > 0 ? 1 : 0;
    }
    router->spill_margin = params_.spill_margin;
    graph_.SetRouter(std::move(router));
  }
  if (params_.read_replicas > 0) {
    graph_.RefreshReplicas(params_.read_replicas, windows_);
  }
}

void StreamingGkMeans::Consolidate(std::size_t epochs) {
  GKM_CHECK_MSG(bootstrapped_, "Consolidate before bootstrap");
  const std::vector<std::uint32_t> all = AliveIds();
  WindowStats scratch;
  for (std::size_t e = 0; e < epochs; ++e) {
    RunEpochs(all, 1, nullptr);
    SplitMergeMaintain(scratch);
  }
  prev_centroids_ = state_.Centroids();
}

std::vector<std::uint32_t> StreamingGkMeans::AliveIds() const {
  // Ingest-thread context: unlocked flag reads, not one lock round-trip
  // per slot (labels_ is sized to the arena, so no size() lock either).
  std::vector<std::uint32_t> ids;
  ids.reserve(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (graph_.IsAliveUnlocked(id)) ids.push_back(id);
  }
  return ids;
}

void StreamingGkMeans::RetirePoint(std::uint32_t id,
                                   std::vector<std::uint32_t>* repaired) {
  if (labels_[id] != kUnassigned) {
    state_.RemovePoint(graph_.Point(id), labels_[id]);
    labels_[id] = kUnassigned;
  }
  // A representative must stay a live routable node; the cluster regains
  // one on its next assignment or move.
  for (std::uint32_t& rep : cluster_reps_) {
    if (rep == id) rep = kUnassigned;
  }
  graph_.Remove(id, repaired);
}

void StreamingGkMeans::RemovePoint(std::uint32_t id) {
  GKM_CHECK_MSG(id < labels_.size() && graph_.IsAliveUnlocked(id),
                "RemovePoint of a dead or out-of-range id");
  RetirePoint(id, nullptr);
}

std::size_t StreamingGkMeans::ExpireTtl(
    std::vector<std::uint32_t>* repaired) {
  if (params_.ttl_windows == 0 || windows_ < params_.ttl_windows) return 0;
  const std::uint64_t cutoff = windows_ - params_.ttl_windows;
  std::size_t expired = 0;
  // Unlocked liveness reads: this O(arena) sweep runs on the ingest thread
  // before every window, and per-slot lock round-trips would contend with
  // concurrent searches for no benefit (only this thread flips the flags).
  for (std::size_t i = 0; i < birth_window_.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (!graph_.IsAliveUnlocked(id) || birth_window_[i] > cutoff) continue;
    RetirePoint(id, repaired);
    ++expired;
  }
  return expired;
}

ClusteringResult StreamingGkMeans::Result() const {
  ClusteringResult res;
  res.method = "streaming-gk-means";
  res.assignments = labels_;
  res.centroids = state_.Centroids();
  if (state_.n() > 0) res.distortion = state_.Distortion();
  res.iterations = static_cast<std::size_t>(windows_);
  return res;
}

StreamSnapshot StreamingGkMeans::Snapshot() const {
  StreamSnapshot s;
  s.params = params_;
  s.shards.resize(graph_.num_shards());
  for (std::size_t i = 0; i < graph_.num_shards(); ++i) {
    const OnlineKnnGraph& shard = graph_.shard(i);
    s.shards[i].points = shard.points();
    s.shards[i].graph = shard.graph();
    s.shards[i].rng = shard.rng_state();
    s.shards[i].seeds = shard.seed_state();
    s.shards[i].removal = shard.removal_state();
    s.shards[i].mode_seeds = shard.mode_seed_states();
    if (shard.sq8_trained()) {
      Sq8ArenaParts& sq8 = s.shards[i].sq8;
      sq8.trained = true;
      sq8.rows = shard.sq8_norms().size();
      sq8.codes = shard.sq8_codes();
      sq8.norms = shard.sq8_norms();
      sq8.quant = shard.sq8_quantizer();
    }
  }
  s.labels = labels_;
  s.n = state_.n();
  s.composites = state_.composites();
  s.counts = state_.counts();
  s.composite_norms = state_.composite_norms();
  s.point_norms = state_.point_norms();
  s.sum_point_norms = state_.SumPointNormSqr();
  s.prev_centroids = prev_centroids_;
  s.cluster_reps = cluster_reps_;
  s.cluster_home = cluster_home_;
  s.windows = windows_;
  s.bootstrapped = bootstrapped_;
  s.rng = rng_.Snapshot();
  s.birth_windows = birth_window_;
  return s;
}

StreamingGkMeans StreamingGkMeans::FromSnapshot(StreamSnapshot snap) {
  // Snapshots come from untrusted files: validate every index the model
  // later uses unchecked, so a bit-flipped checkpoint aborts cleanly here
  // instead of corrupting the heap in an epoch loop. (The Try* loaders run
  // the same validator first and turn violations into load errors.)
  const char* bad = ValidateStreamSnapshot(snap);
  GKM_CHECK_MSG(bad == nullptr, bad);
  return StreamingGkMeans(std::move(snap));
}

}  // namespace gkm
