// Copyright 2026 The gkmeans Authors.
// Streaming GK-means: graph-supported clustering (Alg. 2's Delta-I move
// machinery) over a corpus that arrives in windows. Each window is (1)
// inserted into an OnlineKnnGraph, (2) assigned to clusters by the BKM
// arrival gain over its graph neighbors' clusters, and (3) re-optimized by
// a bounded number of mini-batch epochs that only visit the neighborhoods
// the window touched — per-window cost is proportional to the window, not
// the corpus. Cluster drift is detected by centroid displacement between
// windows, and clusters that end up empty are re-seeded from the worst-fit
// member of the most populous cluster.
//
// The clusterer's entire state — vectors, graph, labels, composite-vector
// statistics, stream cursor, RNG — round-trips through the checkpoint
// format (see stream/checkpoint.h), so a serving process can restart
// mid-stream without recomputation.

#ifndef GKM_STREAM_STREAMING_GKMEANS_H_
#define GKM_STREAM_STREAMING_GKMEANS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kmeans/cluster_state.h"
#include "kmeans/types.h"
#include "stream/sharded_online_knn_graph.h"

namespace gkm {

/// Knobs of the streaming clusterer.
struct StreamingGkMeansParams {
  std::size_t k = 8;                ///< number of clusters
  std::size_t kappa = 20;           ///< neighbors consulted per sample
  /// Online graph knobs (degree >= kappa). `graph.shards` > 1 shards the
  /// arena for multi-writer ingest and stall-free serving; point ids seen
  /// through labels()/RemovePoint/history are global ids (slot*S + shard).
  OnlineGraphParams graph;
  std::size_t epochs_per_window = 2;///< bounded mini-batch epochs per window
  std::size_t bootstrap_min = 256;  ///< points accumulated before clustering
  std::size_t bootstrap_epochs = 4; ///< full epochs right after bootstrap
  std::size_t bisect_epochs = 6;    ///< 2M-tree refinement at bootstrap
  /// A cluster whose centroid moves more than this fraction of the RMS
  /// point-to-centroid distance in one window counts as drifted; any drift
  /// grants up to `max_extra_epochs` additional epochs. 0 disables.
  double drift_threshold = 0.25;
  std::size_t max_extra_epochs = 1;
  /// Split/merge maintenance ops allowed per window (0 disables). Each op
  /// merges the cheapest cluster pair and splits the highest-SSE cluster —
  /// the global restructuring single-sample Delta-I moves cannot perform,
  /// without which a streamed model locks into its bootstrap partition.
  /// The loop also stops early once an op's realized SSE reduction no
  /// longer covers its merge loss. Each op costs O(k^2 d) on composite
  /// vectors plus one label scan and a local epoch over the split cluster.
  std::size_t max_splits_per_window = 4;
  /// A split/merge runs only when the merge's Delta-I loss is below this
  /// fraction of the split target's SSE (conservative estimate of the
  /// split's gain).
  double split_gain_factor = 0.35;
  /// Insert-routing: seed each point's graph walk from representatives of
  /// this many nearest clusters (0 disables). Couples the clustering back
  /// into graph construction — rare modes own a cluster (split/merge sees
  /// to that), so their representative routes the walk where random entry
  /// points rarely land.
  std::size_t route_hints = 8;
  /// Per-window time-to-live: a point ingested in window w is retired at
  /// the start of window w + ttl_windows (its graph node tombstoned, its
  /// cluster statistics decremented). 0 disables expiry. The windowed-churn
  /// setting of Debatty et al.'s online graph building: the model tracks a
  /// sliding corpus instead of an ever-growing one.
  std::size_t ttl_windows = 0;
  /// Diagnostics retained: history() keeps the stats of the most recent
  /// this-many windows (the stream is unbounded; the process must not be).
  std::size_t history_limit = 4096;
  /// Worker threads for window ingest (route-hint scoring and candidate
  /// walks); 0 means all hardware threads. Pure execution knob: the model
  /// produced is bit-identical at any value, so it is not persisted in
  /// checkpoints — a resumed process picks its own.
  std::size_t ingest_threads = 0;
  std::uint64_t seed = 42;
  /// Cluster-routed shard placement ("Cluster-and-Conquer"): every cluster
  /// gets a deterministic home shard, new points land on their nearest
  /// cluster's home shard, and routed queries search one shard instead of
  /// merging all S. Model state — it changes where every point lives — so
  /// it is persisted; enabling it makes checkpoints emit GKMC v6 (off
  /// keeps the v4/v5 bytes golden-pinned). Also enables the per-mode
  /// adaptive seed budgets (rows are tagged with their nearest cluster).
  bool routed_placement = false;
  /// Routed-query spill tolerance: also search the runner-up shard when
  /// the best foreign-shard cluster scores within (1 + spill_margin) of
  /// the best cluster, in squared-distance space. Recall-vs-work knob;
  /// persisted (v6).
  double spill_margin = 0.35;
  /// Home-shard rebalance trigger: when the most loaded shard exceeds the
  /// mean load by this fraction (skew = max/avg - 1), its smallest cluster
  /// is re-homed to the least loaded shard. 0 disables. Loads are the
  /// checkpointed cluster counts — never wall-clock measurements — so
  /// rebalancing stays a pure function of the stream. Persisted (v6).
  double rebalance_threshold = 0.0;
  /// Rows physically migrated to their home shard per window. TTL churn
  /// and re-homing strand rows on foreign shards; a budgeted sweep drains
  /// them lowest global slot first. Persisted (v6).
  std::size_t migrate_budget = 1024;
  /// Read replicas per shard (snapshot copies refreshed after every
  /// committed ingest op; 0 disables). Queries against the replica table
  /// never touch the writers' locks, so read throughput scales past the
  /// writer count. Persisted (v6); the replicas themselves are derived
  /// state, rebuilt from the leader on resume.
  std::size_t read_replicas = 0;
};

/// Per-window diagnostics (the streaming analogue of IterStat).
struct WindowStats {
  std::size_t window = 0;       ///< 0-based window index
  std::size_t points = 0;       ///< rows ingested this window
  std::size_t touched = 0;      ///< nodes re-optimized by the epochs
  std::size_t epochs = 0;       ///< epochs actually run (incl. drift extras)
  std::size_t moves = 0;        ///< label changes across those epochs
  std::size_t drifted = 0;      ///< clusters beyond the drift threshold
  std::size_t reseeded = 0;     ///< empty clusters re-seeded
  std::size_t split_merges = 0; ///< split/merge maintenance ops executed
  std::size_t expired = 0;      ///< points retired by TTL this window
  std::size_t migrated = 0;     ///< rows moved to their home shard
  std::size_t rehomed = 0;      ///< clusters re-homed by the rebalancer
  double max_drift = 0.0;       ///< max centroid shift / RMS radius
  double distortion = 0.0;      ///< E (Eqn. 4) over all points so far
};

/// Everything needed to reconstruct a StreamingGkMeans exactly — produced
/// by Snapshot(), consumed by FromSnapshot(), serialized by
/// stream/checkpoint.{h,cc}.
struct StreamSnapshot {
  StreamingGkMeansParams params;
  /// Per-shard graph state: points, edges, RNG, adaptive seeds and removal
  /// bookkeeping — one entry per shard (params.graph.shards of them; a
  /// single entry for the unsharded S=1 default). Slot-local ids inside;
  /// every other field below indexes by global id.
  std::vector<OnlineShardParts> shards;
  std::vector<std::uint32_t> labels;      ///< cluster per global slot
  std::uint64_t n = 0;                    ///< points admitted to the state
  std::vector<double> composites;         ///< k x dim composite vectors
  std::vector<std::uint32_t> counts;      ///< cluster sizes
  std::vector<double> composite_norms;    ///< ||D_r||^2 cache
  std::vector<double> point_norms;        ///< per-cluster sum ||x||^2
  double sum_point_norms = 0.0;
  Matrix prev_centroids;                  ///< drift baseline (may be empty)
  std::vector<std::uint32_t> cluster_reps;///< routing representative per cluster
  /// Home shard per cluster (routed placement). Empty when routing is off
  /// or the model is not yet bootstrapped; size k with entries <
  /// params.graph.shards otherwise.
  std::vector<std::uint32_t> cluster_home;
  std::uint64_t windows = 0;              ///< stream cursor: windows consumed
  bool bootstrapped = false;
  RngSnapshot rng;                        ///< clusterer RNG
  std::vector<std::uint64_t> birth_windows; ///< per-slot ingest window (TTL)
};

/// Validates `snap` against every invariant FromSnapshot requires:
/// parameter sanity, per-shard graph parts (via
/// ValidateOnlineGraphRestoreParts), label/representative/birth-window
/// consistency with the sharded arena's liveness, count/centroid shapes.
/// Returns nullptr when the snapshot is safe to restore from, else a
/// static description of the first violation. Single source of truth:
/// FromSnapshot aborts via this validator, and the Try* checkpoint
/// loaders call it first so a malformed file is a clean load error.
const char* ValidateStreamSnapshot(const StreamSnapshot& snap);

/// Online GK-means over an unbounded stream of fixed-dimension vectors.
class StreamingGkMeans {
 public:
  StreamingGkMeans(std::size_t dim, const StreamingGkMeansParams& params);

  /// Ingests one window (any number of rows, dim columns): inserts into the
  /// graph, assigns, and re-optimizes the touched neighborhoods. Before
  /// `bootstrap_min` points have accumulated the rows are only inserted;
  /// the first window that crosses the threshold triggers batch
  /// initialization of the clustering. Route-hint scoring and the graph
  /// candidate walks fan out over `ingest_threads` workers; the result is
  /// bit-identical at any thread count. Serving threads may call
  /// graph().SearchKnn concurrently with this.
  void ObserveWindow(const Matrix& window);

  /// As above, additionally reporting the global id assigned to each row
  /// (row order). Removals make ids non-contiguous — reclaimed slots are
  /// reused lowest-first — so ingest front-ends (the serving daemon's
  /// insert opcode) need the explicit mapping to answer clients.
  void ObserveWindow(const Matrix& window,
                     std::vector<std::uint32_t>* assigned);

  /// Explicitly retires point `id` (which must be alive): its graph node
  /// is tombstoned (concurrent searches skip it without blocking), its
  /// neighborhood repaired, and — when bootstrapped — its cluster's
  /// composite statistics decremented. A cluster emptied by removals is
  /// re-seeded by the next window's maintenance pass. Ingest-thread only.
  /// Deterministic: the model stays a pure function of the interleaved
  /// window/remove sequence, which delta-checkpoint replay relies on.
  void RemovePoint(std::uint32_t id);

  /// Runs `epochs` Delta-I epochs over *all* live points — the periodic
  /// consolidation a server can schedule off-peak. Cost O(n kappa d).
  void Consolidate(std::size_t epochs);

  std::size_t dim() const { return graph_.dim(); }
  /// Arena slots (== exclusive upper bound on point ids); removals do not
  /// shrink it. points_alive() is the live count.
  std::size_t points_seen() const { return graph_.size(); }
  std::size_t points_alive() const { return graph_.num_alive(); }
  std::size_t windows_seen() const { return windows_; }
  bool bootstrapped() const { return bootstrapped_; }
  const ShardedOnlineKnnGraph& graph() const { return graph_; }
  /// Per-slot labels; tombstoned slots hold UINT32_MAX ("unassigned").
  const std::vector<std::uint32_t>& labels() const { return labels_; }
  /// Home shard per cluster (routed placement); empty until bootstrap or
  /// when routing is off.
  const std::vector<std::uint32_t>& cluster_home() const {
    return cluster_home_;
  }

  /// Rebuilds and republishes the derived read state — the query router
  /// (post-window centroids + cluster homes) and the read replicas — from
  /// the current checkpointed model. ObserveWindow calls this at the end
  /// of every window; ingest front-ends call it after out-of-band
  /// mutations (the serving daemon's remove opcode) and once after a
  /// checkpoint resume, so replica contents stay a pure function of the
  /// accepted-op sequence. No-op unless routing or replicas are enabled.
  void PublishReadState();
  /// Read-only view of the composite-vector statistics (live points only).
  const ClusterState& cluster_state() const { return state_; }
  /// Per-window diagnostics, most recent `history_limit` windows only.
  const std::deque<WindowStats>& history() const { return history_; }
  const StreamingGkMeansParams& params() const { return params_; }

  /// Average distortion E over everything ingested so far (bootstrapped
  /// streams only).
  double Distortion() const { return state_.Distortion(); }

  /// Snapshot of the clustering in the shape batch algorithms report, so
  /// streaming and batch results drop into the same benches.
  ClusteringResult Result() const;

  /// Checkpoint support.
  StreamSnapshot Snapshot() const;
  static StreamingGkMeans FromSnapshot(StreamSnapshot snap);

 private:
  explicit StreamingGkMeans(StreamSnapshot snap);

  /// Fills `hints` with the representatives of the route_hints clusters
  /// whose centroids are nearest `x` — the walk entry points for Insert.
  /// Reads only cluster state (and the per-window route quantizer), so rows
  /// of a window run it concurrently. In SQ8 mode centroids are scored
  /// through the quantized asymmetric kernel — hints are routing aids, not
  /// invariants, so the cheaper approximate ranking is sound.
  /// When `nearest_active` is non-null it additionally receives the id of
  /// the nearest non-empty cluster (tie → lowest id; UINT32_MAX when every
  /// cluster is empty) — the row's routing mode for placement and the
  /// per-mode seed budgets.
  void ComputeRouteHints(const float* x, const Matrix& centroids,
                         std::vector<std::uint32_t>& hints,
                         std::uint32_t* nearest_active = nullptr) const;

  /// Rebuilds the per-window SQ8 centroid table ComputeRouteHints scores
  /// against (kSq8 mode only; clears it otherwise). Called once per window
  /// before the parallel hint pass, on the window-start centroid snapshot.
  void PrepareRouteQuantizer(const Matrix& centroids);

  /// Assigns a freshly inserted node by the best arrival gain among its
  /// graph neighbors' clusters (nearest centroid when none are labeled
  /// yet, e.g. the first rows of a window).
  void AssignNew(std::uint32_t id, const Matrix& centroids);

  /// Batch initialization once bootstrap_min points have accumulated.
  void Bootstrap();

  /// `epochs` shuffled Delta-I passes over `ids`; returns moves made.
  std::size_t RunEpochs(const std::vector<std::uint32_t>& ids,
                        std::size_t epochs, std::size_t* epochs_run);

  /// Drift bookkeeping + empty-cluster re-seeding after a window's epochs.
  void DriftAndReseed(const std::vector<std::uint32_t>& touched,
                      WindowStats& ws);

  /// Shared removal path of RemovePoint and TTL expiry: cluster statistics,
  /// labels, representative invalidation, then the graph tombstone.
  void RetirePoint(std::uint32_t id, std::vector<std::uint32_t>* repaired);

  /// Retires every point whose TTL elapsed as of the current window cursor;
  /// returns how many, appending repair-touched node ids to `repaired`.
  /// Ascending id order (deterministic).
  std::size_t ExpireTtl(std::vector<std::uint32_t>* repaired);

  /// Ids of all live points, ascending — the scope of full epochs.
  std::vector<std::uint32_t> AliveIds() const;

  /// Bounded ISODATA-style restructuring: merge the cheapest cluster pair,
  /// split the highest-SSE cluster in two. Runs at most
  /// max_splits_per_window times per call.
  void SplitMergeMaintain(WindowStats& ws);

  /// Greedy deterministic home assignment at bootstrap: clusters ordered
  /// by (count desc, id asc), each to the least-loaded shard so far (tie →
  /// lowest shard index). Sizes cluster_home_ to k.
  void AssignClusterHomes();

  /// Re-homes clusters when checkpointed shard loads skew beyond
  /// rebalance_threshold: repeatedly moves the most loaded shard's
  /// smallest non-empty cluster to the least loaded shard while that
  /// strictly reduces the spread (at most k moves). Updates cluster_home_
  /// only; MigrateMisplaced performs the physical row moves.
  std::size_t RebalanceHomes();

  /// Budgeted migration sweep: scans global slots ascending and moves up
  /// to `budget` live rows whose shard differs from their cluster's home —
  /// graph node re-inserted on the home shard, label/birth-window/
  /// representative bookkeeping carried over, cluster statistics untouched
  /// (the point never leaves its cluster). Stateless by design (no resume
  /// cursor): a checkpoint taken mid-migration captures everything the
  /// next sweep needs in cluster_home_ + labels_. Returns rows moved.
  std::size_t MigrateMisplaced(std::size_t budget);

  // Lock discipline: the clusterer owns no lock, and every field below is
  // ingest-thread-owned — written only inside ObserveWindow/RemovePoint/
  // Snapshot callers, which the API contract serializes on one logical
  // ingest thread. Concurrent serving threads touch only graph_, whose
  // OnlineKnnGraph shards carry the annotated SharedMutex capabilities;
  // the thread-safety analysis therefore checks the serving boundary
  // inside the graph, and nothing here needs GKM_GUARDED_BY.
  StreamingGkMeansParams params_;
  // Ingest worker pool (behind unique_ptr so the clusterer stays movable);
  // idle outside ObserveWindow.
  std::unique_ptr<ThreadPool> pool_;
  ShardedOnlineKnnGraph graph_;
  std::vector<std::uint32_t> labels_;
  ClusterState state_;
  Matrix prev_centroids_;
  /// One member node id per cluster (the most recently assigned), used as
  /// a walk entry point when inserting nearby new points. Staleness after
  /// relabeling is harmless — a hint is a routing aid, not an invariant.
  std::vector<std::uint32_t> cluster_reps_;
  /// Home shard per cluster (routed placement; empty until bootstrap or
  /// when routing is off). Checkpointed — placement must survive restarts
  /// bit-for-bit.
  std::vector<std::uint32_t> cluster_home_;
  /// Window index each slot's point was ingested in (TTL bookkeeping;
  /// resized with the arena, stale for reclaimed slots until reuse).
  std::vector<std::uint64_t> birth_window_;
  Rng rng_;
  std::uint64_t windows_ = 0;
  bool bootstrapped_ = false;
  std::deque<WindowStats> history_;  // bounded ring: O(1) trim per window
  // Epoch-stamped scratch for candidate harvesting, plus a reused buffer
  // for live sorted-neighbor fetches in the epoch hot path.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t cur_stamp_ = 0;
  std::vector<std::uint32_t> cand_;
  std::vector<Neighbor> nbr_scratch_;
  std::vector<std::uint32_t> nbr_ids_;
  std::vector<double> gain_scratch_;  // batched GainArrive results
  // Per-window SQ8 route-hint table (kSq8 mode, rebuilt each window from
  // the centroid snapshot): quantizer + packed centroid codes/norms.
  // Ephemeral routing state — never checkpointed.
  bool route_sq8_ = false;
  Sq8Quantizer route_qz_;
  std::vector<std::uint8_t> route_codes_;
  std::vector<float> route_norms_;
};

}  // namespace gkm

#endif  // GKM_STREAM_STREAMING_GKMEANS_H_
