// Copyright 2026 The gkmeans Authors.

#include "stream/checkpoint.h"

#include <cstring>

#include "common/binary_io.h"
#include "common/macros.h"

namespace gkm {
namespace {

constexpr char kMagic[4] = {'G', 'K', 'M', 'C'};
constexpr char kTrailer[4] = {'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void WriteParams(std::FILE* f, const StreamingGkMeansParams& p) {
  io::WriteRaw<std::uint64_t>(f, p.k);
  io::WriteRaw<std::uint64_t>(f, p.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.beam_width);
  io::WriteRaw<std::uint64_t>(f, p.graph.num_seeds);
  io::WriteRaw<std::uint64_t>(f, p.graph.bootstrap);
  io::WriteRaw<std::uint64_t>(f, p.graph.seed);
  io::WriteRaw<std::uint64_t>(f, p.epochs_per_window);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_min);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_epochs);
  io::WriteRaw<std::uint64_t>(f, p.bisect_epochs);
  io::WriteRaw<double>(f, p.drift_threshold);
  io::WriteRaw<std::uint64_t>(f, p.max_extra_epochs);
  io::WriteRaw<std::uint64_t>(f, p.max_splits_per_window);
  io::WriteRaw<double>(f, p.split_gain_factor);
  io::WriteRaw<std::uint64_t>(f, p.route_hints);
  io::WriteRaw<std::uint64_t>(f, p.history_limit);
  io::WriteRaw<std::uint64_t>(f, p.seed);
}

StreamingGkMeansParams ReadParams(std::FILE* f) {
  StreamingGkMeansParams p;
  p.k = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.kappa = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.kappa = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.beam_width = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.num_seeds = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.bootstrap = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.seed = io::ReadRaw<std::uint64_t>(f);
  p.epochs_per_window =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bootstrap_min = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bootstrap_epochs =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bisect_epochs = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.drift_threshold = io::ReadRaw<double>(f);
  p.max_extra_epochs =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.max_splits_per_window =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.split_gain_factor = io::ReadRaw<double>(f);
  p.route_hints = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.history_limit = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.seed = io::ReadRaw<std::uint64_t>(f);
  return p;
}

void WriteRng(std::FILE* f, const RngSnapshot& r) {
  io::WriteArray(f, r.s, 4);
  io::WriteRaw<std::uint8_t>(f, r.have_spare ? 1 : 0);
  io::WriteRaw<double>(f, r.spare);
}

RngSnapshot ReadRng(std::FILE* f) {
  RngSnapshot r;
  io::ReadArray(f, r.s, 4);
  r.have_spare = io::ReadRaw<std::uint8_t>(f) != 0;
  r.spare = io::ReadRaw<double>(f);
  return r;
}

}  // namespace

void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model) {
  const StreamSnapshot snap = model.Snapshot();
  io::File f = io::OpenOrDie(path, "wb");

  io::WriteArray(f.get(), kMagic, 4);
  io::WriteRaw<std::uint32_t>(f.get(), kVersion);
  WriteParams(f.get(), snap.params);

  io::WriteRaw<std::uint64_t>(f.get(), snap.windows);
  io::WriteRaw<std::uint8_t>(f.get(), snap.bootstrapped ? 1 : 0);
  WriteRng(f.get(), snap.rng);
  WriteRng(f.get(), snap.graph_rng);

  io::WriteMatrix(f.get(), snap.points);
  snap.graph.SaveTo(f.get());
  io::WriteRaw<std::uint64_t>(f.get(), snap.labels.size());
  io::WriteArray(f.get(), snap.labels.data(), snap.labels.size());
  io::WriteArray(f.get(), snap.cluster_reps.data(), snap.cluster_reps.size());

  io::WriteRaw<std::uint64_t>(f.get(), snap.n);
  io::WriteArray(f.get(), snap.counts.data(), snap.counts.size());
  io::WriteArray(f.get(), snap.composites.data(), snap.composites.size());
  io::WriteArray(f.get(), snap.composite_norms.data(),
                 snap.composite_norms.size());
  io::WriteArray(f.get(), snap.point_norms.data(), snap.point_norms.size());
  io::WriteRaw<double>(f.get(), snap.sum_point_norms);

  io::WriteMatrix(f.get(), snap.prev_centroids);
  io::WriteArray(f.get(), kTrailer, 4);
}

StreamingGkMeans LoadStreamCheckpoint(const std::string& path) {
  io::File f = io::OpenOrDie(path, "rb");

  char magic[4];
  io::ReadArray(f.get(), magic, 4);
  GKM_CHECK_MSG(std::memcmp(magic, kMagic, 4) == 0,
                "not a GKMC checkpoint file");
  const auto version = io::ReadRaw<std::uint32_t>(f.get());
  GKM_CHECK_MSG(version == kVersion, "unsupported checkpoint version");

  StreamSnapshot snap;
  snap.params = ReadParams(f.get());
  // Plausibility bounds on file-supplied sizes, mirroring io::ReadMatrix:
  // a bit-flipped header must abort cleanly, not feed resize() a
  // terabyte-scale or size_t-wrapping request.
  GKM_CHECK_MSG(snap.params.k > 0 && snap.params.k <= (1u << 24),
                "implausible checkpoint k");
  snap.windows = io::ReadRaw<std::uint64_t>(f.get());
  snap.bootstrapped = io::ReadRaw<std::uint8_t>(f.get()) != 0;
  snap.rng = ReadRng(f.get());
  snap.graph_rng = ReadRng(f.get());

  snap.points = io::ReadMatrix(f.get());
  snap.graph = KnnGraph::LoadFrom(f.get());
  const auto n_labels =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f.get()));
  GKM_CHECK_MSG(n_labels == snap.points.rows(),
                "checkpoint label count does not match point count");
  snap.labels.resize(n_labels);
  io::ReadArray(f.get(), snap.labels.data(), n_labels);
  const std::size_t k = snap.params.k;
  snap.cluster_reps.resize(k);
  io::ReadArray(f.get(), snap.cluster_reps.data(), k);

  GKM_CHECK_MSG(k * snap.points.cols() <= (1ull << 40),
                "implausible checkpoint state size");
  snap.n = io::ReadRaw<std::uint64_t>(f.get());
  snap.counts.resize(k);
  io::ReadArray(f.get(), snap.counts.data(), k);
  snap.composites.resize(k * snap.points.cols());
  io::ReadArray(f.get(), snap.composites.data(), snap.composites.size());
  snap.composite_norms.resize(k);
  io::ReadArray(f.get(), snap.composite_norms.data(), k);
  snap.point_norms.resize(k);
  io::ReadArray(f.get(), snap.point_norms.data(), k);
  snap.sum_point_norms = io::ReadRaw<double>(f.get());

  snap.prev_centroids = io::ReadMatrix(f.get());
  char trailer[4];
  io::ReadArray(f.get(), trailer, 4);
  GKM_CHECK_MSG(std::memcmp(trailer, kTrailer, 4) == 0,
                "corrupt checkpoint: missing trailer");

  return StreamingGkMeans::FromSnapshot(std::move(snap));
}

}  // namespace gkm
