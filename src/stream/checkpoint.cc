// Copyright 2026 The gkmeans Authors.

#include "stream/checkpoint.h"

#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "common/macros.h"

namespace gkm {
namespace {

constexpr char kMagic[4] = {'G', 'K', 'M', 'C'};
constexpr char kTrailer[4] = {'C', 'K', 'P', 'T'};
// v2: adds the adaptive-seed state to the cursor block.
constexpr std::uint32_t kVersion = 2;

void WriteParams(std::FILE* f, const StreamingGkMeansParams& p) {
  io::WriteRaw<std::uint64_t>(f, p.k);
  io::WriteRaw<std::uint64_t>(f, p.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.beam_width);
  io::WriteRaw<std::uint64_t>(f, p.graph.num_seeds);
  io::WriteRaw<std::uint64_t>(f, p.graph.bootstrap);
  io::WriteRaw<std::uint64_t>(f, p.graph.seed);
  io::WriteRaw<std::uint64_t>(f, p.epochs_per_window);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_min);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_epochs);
  io::WriteRaw<std::uint64_t>(f, p.bisect_epochs);
  io::WriteRaw<double>(f, p.drift_threshold);
  io::WriteRaw<std::uint64_t>(f, p.max_extra_epochs);
  io::WriteRaw<std::uint64_t>(f, p.max_splits_per_window);
  io::WriteRaw<double>(f, p.split_gain_factor);
  io::WriteRaw<std::uint64_t>(f, p.route_hints);
  io::WriteRaw<std::uint64_t>(f, p.history_limit);
  io::WriteRaw<std::uint64_t>(f, p.seed);
  // ingest_threads is deliberately not persisted: it is an execution knob
  // with no effect on results, and a resumed process sizes its own pool.
}

StreamingGkMeansParams ReadParams(std::FILE* f) {
  StreamingGkMeansParams p;
  p.k = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.kappa = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.kappa = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.beam_width = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.num_seeds = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.bootstrap = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.graph.seed = io::ReadRaw<std::uint64_t>(f);
  p.epochs_per_window =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bootstrap_min = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bootstrap_epochs =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.bisect_epochs = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.drift_threshold = io::ReadRaw<double>(f);
  p.max_extra_epochs =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.max_splits_per_window =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.split_gain_factor = io::ReadRaw<double>(f);
  p.route_hints = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.history_limit = static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f));
  p.seed = io::ReadRaw<std::uint64_t>(f);
  return p;
}

void WriteRng(std::FILE* f, const RngSnapshot& r) {
  io::WriteArray(f, r.s, 4);
  io::WriteRaw<std::uint8_t>(f, r.have_spare ? 1 : 0);
  io::WriteRaw<double>(f, r.spare);
}

RngSnapshot ReadRng(std::FILE* f) {
  RngSnapshot r;
  io::ReadArray(f, r.s, 4);
  r.have_spare = io::ReadRaw<std::uint8_t>(f) != 0;
  r.spare = io::ReadRaw<double>(f);
  return r;
}

// Mirrors the invariants the StreamingGkMeans/OnlineKnnGraph constructors
// enforce with GKM_CHECK, so a malformed checkpoint surfaces as a load
// error at the file boundary instead of an abort deep inside construction.
// Returns nullptr when everything is sane.
const char* ValidateLoadedParams(const StreamingGkMeansParams& p,
                                 const AdaptiveSeedState& seeds) {
  if (p.k < 2 || p.k > (1u << 24)) return "implausible checkpoint k";
  if (p.kappa == 0 || p.kappa > (1u << 24)) {
    return "implausible checkpoint kappa";
  }
  if (p.graph.kappa == 0 || p.graph.kappa > (1u << 24)) {
    return "implausible checkpoint graph kappa";
  }
  if (p.graph.beam_width < p.graph.kappa ||
      p.graph.beam_width > (1u << 24)) {
    return "checkpoint beam_width below graph kappa or implausible";
  }
  if (p.graph.num_seeds == 0 || p.graph.num_seeds > (1u << 24)) {
    return "checkpoint num_seeds out of range";
  }
  if (p.graph.bootstrap > (1ull << 40)) {
    return "implausible checkpoint bootstrap threshold";
  }
  if (p.bootstrap_min <= 2 * p.k) {
    return "checkpoint bootstrap window too small for k";
  }
  if (seeds.live_seeds == 0 || seeds.live_seeds > (1u << 24)) {
    return "checkpoint adaptive seed state out of range";
  }
  if (!(seeds.fail_ewma >= 0.0 && seeds.fail_ewma <= 1.0)) {
    return "checkpoint adaptive failure rate out of range";
  }
  return nullptr;
}

}  // namespace

void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model) {
  const StreamSnapshot snap = model.Snapshot();
  io::File f = io::OpenOrDie(path, "wb");

  io::WriteArray(f.get(), kMagic, 4);
  io::WriteRaw<std::uint32_t>(f.get(), kVersion);
  WriteParams(f.get(), snap.params);

  io::WriteRaw<std::uint64_t>(f.get(), snap.windows);
  io::WriteRaw<std::uint8_t>(f.get(), snap.bootstrapped ? 1 : 0);
  WriteRng(f.get(), snap.rng);
  WriteRng(f.get(), snap.graph_rng);
  io::WriteRaw<std::uint64_t>(f.get(), snap.seed_state.live_seeds);
  io::WriteRaw<double>(f.get(), snap.seed_state.fail_ewma);
  io::WriteRaw<std::uint64_t>(f.get(), snap.seed_state.audit_tick);

  io::WriteMatrix(f.get(), snap.points);
  snap.graph.SaveTo(f.get());
  io::WriteRaw<std::uint64_t>(f.get(), snap.labels.size());
  io::WriteArray(f.get(), snap.labels.data(), snap.labels.size());
  io::WriteArray(f.get(), snap.cluster_reps.data(), snap.cluster_reps.size());

  io::WriteRaw<std::uint64_t>(f.get(), snap.n);
  io::WriteArray(f.get(), snap.counts.data(), snap.counts.size());
  io::WriteArray(f.get(), snap.composites.data(), snap.composites.size());
  io::WriteArray(f.get(), snap.composite_norms.data(),
                 snap.composite_norms.size());
  io::WriteArray(f.get(), snap.point_norms.data(), snap.point_norms.size());
  io::WriteRaw<double>(f.get(), snap.sum_point_norms);

  io::WriteMatrix(f.get(), snap.prev_centroids);
  io::WriteArray(f.get(), kTrailer, 4);
}

std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(
    const std::string& path, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::optional<StreamingGkMeans>();
  };

  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) return fail("cannot open checkpoint: " + path);
  io::File f(raw);

  char magic[4];
  io::ReadArray(f.get(), magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return fail("not a GKMC checkpoint file");
  }
  const auto version = io::ReadRaw<std::uint32_t>(f.get());
  if (version != kVersion) return fail("unsupported checkpoint version");

  StreamSnapshot snap;
  snap.params = ReadParams(f.get());
  snap.windows = io::ReadRaw<std::uint64_t>(f.get());
  snap.bootstrapped = io::ReadRaw<std::uint8_t>(f.get()) != 0;
  snap.rng = ReadRng(f.get());
  snap.graph_rng = ReadRng(f.get());
  snap.seed_state.live_seeds = io::ReadRaw<std::uint64_t>(f.get());
  snap.seed_state.fail_ewma = io::ReadRaw<double>(f.get());
  snap.seed_state.audit_tick = io::ReadRaw<std::uint64_t>(f.get());
  if (const char* msg = ValidateLoadedParams(snap.params, snap.seed_state)) {
    return fail(msg);
  }

  snap.points = io::ReadMatrix(f.get());
  snap.graph = KnnGraph::LoadFrom(f.get());
  const auto n_labels =
      static_cast<std::size_t>(io::ReadRaw<std::uint64_t>(f.get()));
  if (n_labels != snap.points.rows()) {
    return fail("checkpoint label count does not match point count");
  }
  snap.labels.resize(n_labels);
  io::ReadArray(f.get(), snap.labels.data(), n_labels);
  const std::size_t k = snap.params.k;
  snap.cluster_reps.resize(k);
  io::ReadArray(f.get(), snap.cluster_reps.data(), k);

  // Plausibility bound on the file-supplied state size, mirroring
  // io::ReadMatrix: a bit-flipped header must fail cleanly, not feed
  // resize() a terabyte-scale or size_t-wrapping request.
  if (k * snap.points.cols() > (1ull << 40)) {
    return fail("implausible checkpoint state size");
  }
  snap.n = io::ReadRaw<std::uint64_t>(f.get());
  snap.counts.resize(k);
  io::ReadArray(f.get(), snap.counts.data(), k);
  snap.composites.resize(k * snap.points.cols());
  io::ReadArray(f.get(), snap.composites.data(), snap.composites.size());
  snap.composite_norms.resize(k);
  io::ReadArray(f.get(), snap.composite_norms.data(), k);
  snap.point_norms.resize(k);
  io::ReadArray(f.get(), snap.point_norms.data(), k);
  snap.sum_point_norms = io::ReadRaw<double>(f.get());

  snap.prev_centroids = io::ReadMatrix(f.get());
  char trailer[4];
  io::ReadArray(f.get(), trailer, 4);
  if (std::memcmp(trailer, kTrailer, 4) != 0) {
    return fail("corrupt checkpoint: missing trailer");
  }

  return StreamingGkMeans::FromSnapshot(std::move(snap));
}

StreamingGkMeans LoadStreamCheckpoint(const std::string& path) {
  std::string error;
  std::optional<StreamingGkMeans> model =
      TryLoadStreamCheckpoint(path, &error);
  GKM_CHECK_MSG(model.has_value(), error.c_str());
  return std::move(*model);
}

}  // namespace gkm
