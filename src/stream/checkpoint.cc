// Copyright 2026 The gkmeans Authors.

#include "stream/checkpoint.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm {
namespace {

constexpr char kMagic[4] = {'G', 'K', 'M', 'C'};
constexpr char kTrailer[4] = {'C', 'K', 'P', 'T'};
constexpr char kDeltaMagic[4] = {'G', 'K', 'M', 'D'};
// v2: adds the adaptive-seed state to the cursor block.
// v3: adds ttl_windows to the params block and the removal block (graph
//     tombstones, free slots, last-inserted slot, per-slot birth windows)
//     before the trailer. v2 files still load; see ReadParams.
// v4: adds graph.shards to the params block and, between the removal block
//     and the trailer, a shard section table (u64 shard count + one u64
//     byte size per extra shard) followed by one section per shard beyond
//     shard 0 (whose state occupies the v3-position sections, so an S=1
//     file is the v3 layout plus 16 appended bytes). v2/v3 files load as
//     S=1. See docs/checkpoint-format.md.
// v5: adds graph.storage to the params block and replaces every per-shard
//     points matrix with an arena block (u8 trained flag; a bare matrix
//     when 0, packed SQ8 codes + row norms + quantizer when 1). Emitted
//     ONLY for kSq8 models: fp32 models keep writing version-4 bytes, so
//     the pinned v4 golden stays byte-identical. v2-v4 files load with
//     storage = kFp32. See docs/checkpoint-format.md.
// v6: routed placement. Appends the routing params tail (routed_placement,
//     spill_margin, rebalance_threshold, migrate_budget, read_replicas) to
//     the params block, shard 0's per-mode seed table to the cursor block,
//     a cluster-home block after the representatives, and a per-mode seed
//     table to every extra shard section. Emitted ONLY when
//     routed_placement is set — non-routed models keep writing v4/v5
//     bytes, so both pinned goldens stay byte-identical. v6 always uses
//     the v5 arena framing (u8 trained flag) regardless of storage.
//     v2-v5 files load with routing off. See docs/checkpoint-format.md.
constexpr std::uint32_t kVersion = 6;
constexpr std::uint32_t kSq8Version = 5;
constexpr std::uint32_t kFp32Version = 4;
constexpr std::uint32_t kOldestReadable = 2;
constexpr std::uint32_t kDeltaVersion = 1;

constexpr std::uint32_t kNoSlot = RemovalState::kNoSlot;

// FNV-1a 64-bit, incremental: binds a delta journal to its base snapshot
// and digests cluster state for the 'C' verification record.
constexpr std::uint64_t kFnvSeed = 1469598103934665603ULL;

std::uint64_t FnvMix(std::uint64_t h, const void* bytes, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void WriteParams(std::FILE* f, const StreamingGkMeansParams& p,
                 std::uint32_t version) {
  io::WriteRaw<std::uint64_t>(f, p.k);
  io::WriteRaw<std::uint64_t>(f, p.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.kappa);
  io::WriteRaw<std::uint64_t>(f, p.graph.beam_width);
  io::WriteRaw<std::uint64_t>(f, p.graph.num_seeds);
  io::WriteRaw<std::uint64_t>(f, p.graph.bootstrap);
  io::WriteRaw<std::uint64_t>(f, p.graph.seed);
  io::WriteRaw<std::uint64_t>(f, p.epochs_per_window);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_min);
  io::WriteRaw<std::uint64_t>(f, p.bootstrap_epochs);
  io::WriteRaw<std::uint64_t>(f, p.bisect_epochs);
  io::WriteRaw<double>(f, p.drift_threshold);
  io::WriteRaw<std::uint64_t>(f, p.max_extra_epochs);
  io::WriteRaw<std::uint64_t>(f, p.max_splits_per_window);
  io::WriteRaw<double>(f, p.split_gain_factor);
  io::WriteRaw<std::uint64_t>(f, p.route_hints);
  io::WriteRaw<std::uint64_t>(f, p.history_limit);
  io::WriteRaw<std::uint64_t>(f, p.seed);
  io::WriteRaw<std::uint64_t>(f, p.ttl_windows);   // v3+
  io::WriteRaw<std::uint64_t>(f, p.graph.shards);  // v4+
  if (version >= 5) {                              // v5+
    io::WriteRaw<std::uint64_t>(f, static_cast<std::uint64_t>(p.graph.storage));
  }
  if (version >= 6) {                              // v6+: routing tail
    io::WriteRaw<std::uint8_t>(f, p.routed_placement ? 1 : 0);
    io::WriteRaw<double>(f, p.spill_margin);
    io::WriteRaw<double>(f, p.rebalance_threshold);
    io::WriteRaw<std::uint64_t>(f, p.migrate_budget);
    io::WriteRaw<std::uint64_t>(f, p.read_replicas);
  }
  // ingest_threads is deliberately not persisted: it is an execution knob
  // with no effect on results, and a resumed process sizes its own pool.
  // graph.shards IS persisted: the shard count partitions the id space and
  // the stream, so it is model state like any other.
}

// Non-aborting size_t field read (the format stores every count as u64).
bool ReadSize(io::Reader& r, std::size_t* out) {
  std::uint64_t v = 0;
  if (!r.Read(&v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool ReadParams(io::Reader& r, std::uint32_t version,
                StreamingGkMeansParams* p) {
  bool ok = ReadSize(r, &p->k) && ReadSize(r, &p->kappa) &&
            ReadSize(r, &p->graph.kappa) &&
            ReadSize(r, &p->graph.beam_width) &&
            ReadSize(r, &p->graph.num_seeds) &&
            ReadSize(r, &p->graph.bootstrap) && r.Read(&p->graph.seed) &&
            ReadSize(r, &p->epochs_per_window) &&
            ReadSize(r, &p->bootstrap_min) &&
            ReadSize(r, &p->bootstrap_epochs) &&
            ReadSize(r, &p->bisect_epochs) && r.Read(&p->drift_threshold) &&
            ReadSize(r, &p->max_extra_epochs) &&
            ReadSize(r, &p->max_splits_per_window) &&
            r.Read(&p->split_gain_factor) && ReadSize(r, &p->route_hints) &&
            ReadSize(r, &p->history_limit) && r.Read(&p->seed);
  // v2 predates deletion: the field defaults to "TTL disabled".
  p->ttl_windows = 0;
  if (ok && version >= 3) ok = ReadSize(r, &p->ttl_windows);
  // v2/v3 predate sharding: a single arena, i.e. S=1.
  p->graph.shards = 1;
  if (ok && version >= 4) ok = ReadSize(r, &p->graph.shards);
  // v2-v4 predate quantized storage: the arena is fp32-resident.
  p->graph.storage = StorageMode::kFp32;
  if (ok && version >= 5) {
    std::uint64_t storage = 0;
    ok = r.Read(&storage) && storage <= 1;
    if (ok) {
      p->graph.storage =
          storage == 1 ? StorageMode::kSq8 : StorageMode::kFp32;
    }
  }
  // v2-v5 predate routed placement: routing off, defaults for the knobs.
  p->routed_placement = false;
  p->spill_margin = 0.35;
  p->rebalance_threshold = 0.0;
  p->migrate_budget = 1024;
  p->read_replicas = 0;
  if (ok && version >= 6) {
    std::uint8_t routed = 0;
    ok = r.Read(&routed) && routed <= 1 && r.Read(&p->spill_margin) &&
         r.Read(&p->rebalance_threshold) && ReadSize(r, &p->migrate_budget) &&
         ReadSize(r, &p->read_replicas);
    if (ok) p->routed_placement = routed != 0;
  }
  return ok;
}

void WriteRng(std::FILE* f, const RngSnapshot& r) {
  io::WriteArray(f, r.s, 4);
  io::WriteRaw<std::uint8_t>(f, r.have_spare ? 1 : 0);
  io::WriteRaw<double>(f, r.spare);
}

bool ReadRng(io::Reader& r, RngSnapshot* out) {
  std::uint8_t have = 0;
  if (!r.ReadArray(out->s, 4) || !r.Read(&have) || !r.Read(&out->spare)) {
    return false;
  }
  out->have_spare = have != 0;
  return true;
}

void WriteIdList(std::FILE* f, const std::vector<std::uint32_t>& ids) {
  io::WriteRaw<std::uint64_t>(f, ids.size());
  io::WriteArray(f, ids.data(), ids.size());
}

// Per-mode adaptive seed table (v6): u64 count, then one (live_seeds u64,
// fail_ewma double, audit_tick u64) triple per mode. live_seeds == 0 marks
// an uninitialized mode that defers to the shard's global budget.
void WriteModeSeeds(std::FILE* f, const std::vector<AdaptiveSeedState>& ms) {
  io::WriteRaw<std::uint64_t>(f, ms.size());
  for (const AdaptiveSeedState& s : ms) {
    io::WriteRaw<std::uint64_t>(f, s.live_seeds);
    io::WriteRaw<double>(f, s.fail_ewma);
    io::WriteRaw<std::uint64_t>(f, s.audit_tick);
  }
}

// Counterpart of WriteModeSeeds. Modes are cluster ids, so the table can
// never be wider than k; the entry values are validated in depth by
// ValidateStreamSnapshot afterwards.
bool ReadModeSeeds(io::Reader& r, std::size_t k,
                   std::vector<AdaptiveSeedState>* out) {
  std::uint64_t count = 0;
  if (!r.Read(&count) || count > k) return false;
  out->resize(static_cast<std::size_t>(count));
  for (AdaptiveSeedState& s : *out) {
    if (!r.Read(&s.live_seeds) || !r.Read(&s.fail_ewma) ||
        !r.Read(&s.audit_tick)) {
      return false;
    }
  }
  return true;
}

// Arena shape, independent of storage: an SQ8-trained shard's rows live in
// its code arena (its points matrix is empty), an fp32 shard's in the
// matrix. Every shape check in the loader goes through these.
std::size_t ShardRows(const OnlineShardParts& shard) {
  return shard.sq8.trained ? shard.sq8.norms.size() : shard.points.rows();
}

std::size_t ShardCols(const OnlineShardParts& shard) {
  return shard.sq8.trained ? shard.sq8.quant.scale.size()
                           : shard.points.cols();
}

// Arena block: the storage-dependent point payload of one shard. v4-
// projections are a bare matrix; v5 prefixes a u8 trained flag and carries
// packed SQ8 codes + row norms + per-dimension quantizer when it is set.
void WriteArena(std::FILE* f, const OnlineShardParts& shard, bool v5) {
  if (!v5) {
    io::WriteMatrix(f, shard.points);
    return;
  }
  io::WriteRaw<std::uint8_t>(f, shard.sq8.trained ? 1 : 0);
  if (!shard.sq8.trained) {
    io::WriteMatrix(f, shard.points);
    return;
  }
  const Sq8ArenaParts& sq8 = shard.sq8;
  const std::uint64_t rows = sq8.norms.size();
  const std::uint64_t cols = sq8.quant.scale.size();
  io::WriteRaw<std::uint64_t>(f, rows);
  io::WriteRaw<std::uint64_t>(f, cols);
  io::WriteArray(f, sq8.codes.data(), sq8.codes.size());
  io::WriteArray(f, sq8.norms.data(), sq8.norms.size());
  io::WriteArray(f, sq8.quant.scale.data(), sq8.quant.scale.size());
  io::WriteArray(f, sq8.quant.offset.data(), sq8.quant.offset.size());
}

// Counterpart of WriteArena; false on truncation or implausible shape
// (same caps as matrix reads: the quantizer payload is validated in depth
// by ValidateStreamSnapshot afterwards).
bool ReadArena(io::Reader& r, std::uint32_t version, OnlineShardParts* shard) {
  if (version < 5) return r.ReadMatrix(&shard->points);
  std::uint8_t trained = 0;
  if (!r.Read(&trained) || trained > 1) return false;
  if (trained == 0) return r.ReadMatrix(&shard->points);
  std::uint64_t rows = 0, cols = 0;
  if (!r.Read(&rows) || !r.Read(&cols)) return false;
  if (cols == 0 || cols > (1u << 24)) return false;
  if (rows > (1ull << 40) / cols) return false;  // bounds rows*cols too
  Sq8ArenaParts& sq8 = shard->sq8;
  sq8.trained = true;
  sq8.rows = static_cast<std::size_t>(rows);
  return r.ReadVector(sq8.codes, rows * cols) &&
         r.ReadVector(sq8.norms, rows) &&
         r.ReadVector(sq8.quant.scale, cols) &&
         r.ReadVector(sq8.quant.offset, cols);
}

// Exclusive upper bound on global ids encoded by the shard parts (via the
// shared ShardedArenaBound invariant): the size the global-indexed blocks
// (labels, birth windows) must match.
std::size_t GlobalArenaBound(const std::vector<OnlineShardParts>& shards) {
  std::vector<std::size_t> rows(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    rows[s] = ShardRows(shards[s]);
  }
  return ShardedArenaBound(rows.data(), rows.size());
}

// One extra-shard section (shards 1..S-1; shard 0 lives in the v3-position
// sections): cursor-style RNG + adaptive seeds, then stores and removal
// lists. Counterpart of ReadShardSection.
void WriteShardSection(std::FILE* f, const OnlineShardParts& shard,
                       std::uint32_t version) {
  WriteRng(f, shard.rng);
  io::WriteRaw<std::uint64_t>(f, shard.seeds.live_seeds);
  io::WriteRaw<double>(f, shard.seeds.fail_ewma);
  io::WriteRaw<std::uint64_t>(f, shard.seeds.audit_tick);
  WriteArena(f, shard, version >= 5);
  shard.graph.SaveTo(f);
  WriteIdList(f, shard.removal.pending_dead);
  WriteIdList(f, shard.removal.free_slots);
  io::WriteRaw<std::uint32_t>(f, shard.removal.last_inserted);
  if (version >= 6) WriteModeSeeds(f, shard.mode_seeds);
}

// Per-shard adaptive-seed sanity, applied to shard 0's cursor-block state
// and to every extra shard section.
const char* ValidateSeedState(const AdaptiveSeedState& seeds) {
  if (seeds.live_seeds == 0 || seeds.live_seeds > (1u << 24)) {
    return "checkpoint adaptive seed state out of range";
  }
  if (!(seeds.fail_ewma >= 0.0 && seeds.fail_ewma <= 1.0)) {
    return "checkpoint adaptive failure rate out of range";
  }
  return nullptr;
}

// Mirrors the invariants the StreamingGkMeans/OnlineKnnGraph constructors
// enforce with GKM_CHECK, so a malformed checkpoint surfaces as a load
// error at the file boundary instead of an abort deep inside construction.
// Returns nullptr when everything is sane. (The shard count is validated
// at its read site in TryLoadStreamCheckpoint — it gates a resize that
// happens before params validation can run.)
const char* ValidateLoadedParams(const StreamingGkMeansParams& p,
                                 const AdaptiveSeedState& seeds) {
  if (p.k < 2 || p.k > (1u << 24)) return "implausible checkpoint k";
  if (p.kappa == 0 || p.kappa > (1u << 24)) {
    return "implausible checkpoint kappa";
  }
  if (p.graph.kappa == 0 || p.graph.kappa > (1u << 24)) {
    return "implausible checkpoint graph kappa";
  }
  if (p.graph.beam_width < p.graph.kappa ||
      p.graph.beam_width > (1u << 24)) {
    return "checkpoint beam_width below graph kappa or implausible";
  }
  if (p.graph.num_seeds == 0 || p.graph.num_seeds > (1u << 24)) {
    return "checkpoint num_seeds out of range";
  }
  if (p.graph.bootstrap > (1ull << 40)) {
    return "implausible checkpoint bootstrap threshold";
  }
  if (p.bootstrap_min <= 2 * p.k) {
    return "checkpoint bootstrap window too small for k";
  }
  return ValidateSeedState(seeds);
}

// The removal block's lists index the arena unchecked later (tombstone
// flags, slot reuse): enforce sortedness, range and disjointness here so a
// corrupt v3 file is a load error, not memory corruption.
const char* ValidateRemovalState(const RemovalState& r, std::size_t n) {
  auto sorted_in_range = [n](const std::vector<std::uint32_t>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] >= n) return false;
      if (i > 0 && v[i] <= v[i - 1]) return false;
    }
    return true;
  };
  if (!sorted_in_range(r.pending_dead)) {
    return "checkpoint tombstone list corrupt";
  }
  if (!sorted_in_range(r.free_slots)) {
    return "checkpoint free-slot list corrupt";
  }
  std::size_t i = 0, j = 0;
  while (i < r.pending_dead.size() && j < r.free_slots.size()) {
    if (r.pending_dead[i] == r.free_slots[j]) {
      return "checkpoint slot both tombstoned and free";
    }
    if (r.pending_dead[i] < r.free_slots[j]) ++i; else ++j;
  }
  if (r.last_inserted != kNoSlot && r.last_inserted >= n) {
    return "checkpoint last-inserted slot out of range";
  }
  return nullptr;
}

// Digest of the replay-visible cluster state (record 'C'): composite
// vectors, counts and labels. Everything else that matters (graph edges,
// RNG) feeds into these within a window, so divergence shows up here.
std::uint64_t StateDigest(const StreamingGkMeans& model) {
  const ClusterState& state = model.cluster_state();
  std::uint64_t h = kFnvSeed;
  h = FnvMix(h, state.composites().data(),
             state.composites().size() * sizeof(double));
  h = FnvMix(h, state.counts().data(),
             state.counts().size() * sizeof(std::uint32_t));
  h = FnvMix(h, model.labels().data(),
             model.labels().size() * sizeof(std::uint32_t));
  return h;
}

// Hash of a whole file's bytes; false when unreadable. `size_out` (when
// non-null) receives the byte count — the auto-compaction policy's base
// size comes along for free with the journal-binding hash.
bool HashFileBytes(const std::string& path, std::uint64_t* out,
                   std::size_t* size_out = nullptr) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) return false;
  io::File f(raw);
  std::uint64_t h = kFnvSeed;
  std::size_t total = 0;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    h = FnvMix(h, buf, got);
    total += got;
  }
  *out = h;
  if (size_out != nullptr) *size_out = total;
  return true;
}

}  // namespace

void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model) {
  // Telemetry here observes the save; it never feeds the written bytes
  // (the checkpoint stays byte-identical with stats compiled out).
  GKM_TRACE_SPAN("ckpt.save");
  const StreamSnapshot snap = model.Snapshot();
  const OnlineShardParts& shard0 = snap.shards[0];
  io::File f = io::OpenOrDie(path, "wb");

  // Version is feature-dependent: only routed models need the v6 blocks
  // and only kSq8 models need the v5 arena framing. Non-routed models keep
  // emitting v4/v5 bytes, so every pre-existing checkpoint stays
  // byte-identical (the golden tests pin this).
  const bool sq8 = snap.params.graph.storage == StorageMode::kSq8;
  const std::uint32_t version = snap.params.routed_placement
                                    ? kVersion
                                    : (sq8 ? kSq8Version : kFp32Version);
  const bool v5 = version >= 5;  // arena framing carries the trained flag
  io::WriteArray(f.get(), kMagic, 4);
  io::WriteRaw<std::uint32_t>(f.get(), version);
  WriteParams(f.get(), snap.params, version);

  // Cursor block. The graph RNG/adaptive-seed fields at the v3 positions
  // belong to shard 0 — for S=1 that IS the whole graph, which keeps the
  // projected layout byte-identical to v3.
  io::WriteRaw<std::uint64_t>(f.get(), snap.windows);
  io::WriteRaw<std::uint8_t>(f.get(), snap.bootstrapped ? 1 : 0);
  WriteRng(f.get(), snap.rng);
  WriteRng(f.get(), shard0.rng);
  io::WriteRaw<std::uint64_t>(f.get(), shard0.seeds.live_seeds);
  io::WriteRaw<double>(f.get(), shard0.seeds.fail_ewma);
  io::WriteRaw<std::uint64_t>(f.get(), shard0.seeds.audit_tick);
  if (version >= 6) WriteModeSeeds(f.get(), shard0.mode_seeds);

  WriteArena(f.get(), shard0, v5);
  shard0.graph.SaveTo(f.get());
  io::WriteRaw<std::uint64_t>(f.get(), snap.labels.size());
  io::WriteArray(f.get(), snap.labels.data(), snap.labels.size());
  io::WriteArray(f.get(), snap.cluster_reps.data(), snap.cluster_reps.size());
  if (version >= 6) {
    // Cluster-home block: empty before bootstrap, k entries after.
    io::WriteRaw<std::uint64_t>(f.get(), snap.cluster_home.size());
    io::WriteArray(f.get(), snap.cluster_home.data(),
                   snap.cluster_home.size());
  }

  io::WriteRaw<std::uint64_t>(f.get(), snap.n);
  io::WriteArray(f.get(), snap.counts.data(), snap.counts.size());
  io::WriteArray(f.get(), snap.composites.data(), snap.composites.size());
  io::WriteArray(f.get(), snap.composite_norms.data(),
                 snap.composite_norms.size());
  io::WriteArray(f.get(), snap.point_norms.data(), snap.point_norms.size());
  io::WriteRaw<double>(f.get(), snap.sum_point_norms);

  io::WriteMatrix(f.get(), snap.prev_centroids);

  // Removal block (v3): shard 0's deletion bookkeeping (slot-local ids)
  // plus the global TTL birth windows.
  WriteIdList(f.get(), shard0.removal.pending_dead);
  WriteIdList(f.get(), shard0.removal.free_slots);
  io::WriteRaw<std::uint32_t>(f.get(), shard0.removal.last_inserted);
  io::WriteRaw<std::uint64_t>(f.get(), snap.birth_windows.size());
  io::WriteArray(f.get(), snap.birth_windows.data(),
                 snap.birth_windows.size());

  // Shard section table (v4): shard count, one byte-size entry per extra
  // shard (so readers and tools can skip sections), then the sections.
  // Sizes are back-patched after the sections are written; the content is
  // deterministic, so the patched bytes are too.
  const std::size_t num_shards = snap.shards.size();
  io::WriteRaw<std::uint64_t>(f.get(), num_shards);
  const long table_pos = std::ftell(f.get());
  GKM_CHECK(table_pos >= 0);
  for (std::size_t s = 1; s < num_shards; ++s) {
    io::WriteRaw<std::uint64_t>(f.get(), 0);  // placeholder
  }
  std::vector<std::uint64_t> section_bytes;
  section_bytes.reserve(num_shards > 0 ? num_shards - 1 : 0);
  for (std::size_t s = 1; s < num_shards; ++s) {
    const long begin = std::ftell(f.get());
    WriteShardSection(f.get(), snap.shards[s], version);
    const long end = std::ftell(f.get());
    GKM_CHECK(begin >= 0 && end >= begin);
    section_bytes.push_back(static_cast<std::uint64_t>(end - begin));
  }
  if (!section_bytes.empty()) {
    GKM_CHECK(std::fseek(f.get(), table_pos, SEEK_SET) == 0);
    io::WriteArray(f.get(), section_bytes.data(), section_bytes.size());
    GKM_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0);
  }

  io::WriteArray(f.get(), kTrailer, 4);
  const long total_bytes = std::ftell(f.get());
  if (total_bytes > 0) {
    GKM_COUNTER_ADD("ckpt.save.bytes", static_cast<std::int64_t>(total_bytes));
  }
}

std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(std::FILE* file,
                                                        std::string* error) {
  GKM_TRACE_SPAN("ckpt.load");
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::optional<StreamingGkMeans>();
  };
  constexpr const char* kTruncated = "truncated or unreadable checkpoint";
  io::Reader r(file);

  char magic[4];
  if (!r.ReadArray(magic, 4)) return fail(kTruncated);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return fail("not a GKMC checkpoint file");
  }
  std::uint32_t version = 0;
  if (!r.Read(&version)) return fail(kTruncated);
  if (version < kOldestReadable || version > kVersion) {
    return fail("unsupported checkpoint version");
  }

  StreamSnapshot snap;
  if (!ReadParams(r, version, &snap.params)) return fail(kTruncated);
  const std::size_t num_shards = snap.params.graph.shards;
  if (num_shards == 0 || num_shards > (1u << 16)) {
    return fail("checkpoint shard count out of range");
  }
  snap.shards.resize(num_shards);
  OnlineShardParts& shard0 = snap.shards[0];
  std::uint8_t bootstrapped = 0;
  if (!r.Read(&snap.windows) || !r.Read(&bootstrapped) ||
      !ReadRng(r, &snap.rng) || !ReadRng(r, &shard0.rng) ||
      !r.Read(&shard0.seeds.live_seeds) || !r.Read(&shard0.seeds.fail_ewma) ||
      !r.Read(&shard0.seeds.audit_tick)) {
    return fail(kTruncated);
  }
  snap.bootstrapped = bootstrapped != 0;
  if (const char* msg = ValidateLoadedParams(snap.params, shard0.seeds)) {
    return fail(msg);
  }
  if (version >= 6 &&
      !ReadModeSeeds(r, snap.params.k, &shard0.mode_seeds)) {
    return fail("implausible checkpoint per-mode seed table");
  }

  if (!ReadArena(r, version, &shard0)) {
    return fail("truncated or implausible checkpoint points");
  }
  if (!KnnGraph::TryLoadFrom(r, &shard0.graph)) {
    return fail("truncated or implausible checkpoint graph");
  }
  // Labels (and birth windows below) index the GLOBAL arena. With a single
  // shard that equals shard 0's rows and is checked here; with more shards
  // the bound depends on sections not read yet, so the exact check is
  // deferred until after the shard table (ReadVector still bounds the
  // resize by the bytes actually present).
  std::uint64_t n_labels64 = 0;
  if (!r.Read(&n_labels64)) return fail(kTruncated);
  if (num_shards == 1 && n_labels64 != ShardRows(shard0)) {
    return fail("checkpoint label count does not match point count");
  }
  if (!r.ReadVector(snap.labels, n_labels64)) {
    return fail("implausible checkpoint label count");
  }
  const std::size_t n_labels = snap.labels.size();
  const std::size_t k = snap.params.k;
  if (!r.ReadVector(snap.cluster_reps, k)) return fail(kTruncated);
  if (version >= 6) {
    std::uint64_t homes = 0;
    if (!r.Read(&homes)) return fail(kTruncated);
    if (homes != 0 && homes != k) {
      return fail("checkpoint cluster-home count mismatch");
    }
    if (!r.ReadVector(snap.cluster_home, homes)) return fail(kTruncated);
  }

  // k and cols are individually capped (ValidateLoadedParams, ReadMatrix),
  // so the product cannot wrap; ReadVector then bounds each block by the
  // remaining bytes before any allocation.
  if (k * ShardCols(shard0) > (1ull << 40)) {
    return fail("implausible checkpoint state size");
  }
  if (!r.Read(&snap.n) || !r.ReadVector(snap.counts, k) ||
      !r.ReadVector(snap.composites,
                    static_cast<std::uint64_t>(k) * ShardCols(shard0)) ||
      !r.ReadVector(snap.composite_norms, k) ||
      !r.ReadVector(snap.point_norms, k) || !r.Read(&snap.sum_point_norms)) {
    return fail(kTruncated);
  }

  if (!r.ReadMatrix(&snap.prev_centroids)) {
    return fail("truncated or implausible checkpoint drift baseline");
  }

  if (version >= 3) {
    auto read_ids = [&r](std::vector<std::uint32_t>& out, std::size_t bound) {
      std::uint64_t count = 0;
      if (!r.Read(&count) || count > bound) return false;
      return r.ReadVector(out, count);
    };
    if (!read_ids(shard0.removal.pending_dead, ShardRows(shard0)) ||
        !read_ids(shard0.removal.free_slots, ShardRows(shard0))) {
      return fail("implausible checkpoint removal-list size");
    }
    if (!r.Read(&shard0.removal.last_inserted)) return fail(kTruncated);
    if (const char* msg =
            ValidateRemovalState(shard0.removal, ShardRows(shard0))) {
      return fail(msg);
    }
    std::uint64_t births = 0;
    if (!r.Read(&births)) return fail(kTruncated);
    if (births != n_labels) {
      return fail("checkpoint birth-window count does not match labels");
    }
    if (!r.ReadVector(snap.birth_windows, births)) return fail(kTruncated);

    // Shard section table (v4): one section per shard beyond shard 0.
    if (version >= 4) {
      std::uint64_t table_shards = 0;
      if (!r.Read(&table_shards)) return fail(kTruncated);
      if (table_shards != num_shards) {
        return fail("checkpoint shard table disagrees with params");
      }
      std::vector<std::uint64_t> section_bytes;
      if (!r.ReadVector(section_bytes,
                        static_cast<std::uint64_t>(num_shards) - 1)) {
        return fail(kTruncated);
      }
      for (std::size_t s = 1; s < num_shards; ++s) {
        OnlineShardParts& shard = snap.shards[s];
        const std::uint64_t begin_remaining = r.remaining();
        if (!ReadRng(r, &shard.rng) || !r.Read(&shard.seeds.live_seeds) ||
            !r.Read(&shard.seeds.fail_ewma) ||
            !r.Read(&shard.seeds.audit_tick)) {
          return fail(kTruncated);
        }
        if (const char* msg = ValidateSeedState(shard.seeds)) {
          return fail(msg);
        }
        if (!ReadArena(r, version, &shard)) {
          return fail("truncated or implausible checkpoint points");
        }
        if (ShardCols(shard) != ShardCols(shard0)) {
          return fail("checkpoint shard dimension mismatch");
        }
        if (!KnnGraph::TryLoadFrom(r, &shard.graph)) {
          return fail("truncated or implausible checkpoint graph");
        }
        if (!read_ids(shard.removal.pending_dead, ShardRows(shard)) ||
            !read_ids(shard.removal.free_slots, ShardRows(shard))) {
          return fail("implausible checkpoint removal-list size");
        }
        if (!r.Read(&shard.removal.last_inserted)) return fail(kTruncated);
        if (const char* msg =
                ValidateRemovalState(shard.removal, ShardRows(shard))) {
          return fail(msg);
        }
        if (version >= 6 && !ReadModeSeeds(r, k, &shard.mode_seeds)) {
          return fail("implausible checkpoint per-mode seed table");
        }
        if (begin_remaining - r.remaining() != section_bytes[s - 1]) {
          return fail("checkpoint shard section size mismatch");
        }
      }
    }
    // Deferred global-arena check (see the labels read above).
    if (n_labels != GlobalArenaBound(snap.shards)) {
      return fail("checkpoint label count does not match the sharded arena");
    }
  }
  // v2: removal state stays default-empty and birth windows are filled in
  // by the model constructor ("born at restore").

  char trailer[4];
  if (!r.ReadArray(trailer, 4)) return fail(kTruncated);
  if (std::memcmp(trailer, kTrailer, 4) != 0) {
    return fail("corrupt checkpoint: missing trailer");
  }

  // The file-shaped checks above are necessarily piecemeal; this is the
  // authoritative gate — the same validator FromSnapshot aborts through,
  // run here first so deep payload corruption (bad edges, label/liveness
  // violations) is a clean load error.
  if (const char* msg = ValidateStreamSnapshot(snap)) return fail(msg);
  return StreamingGkMeans::FromSnapshot(std::move(snap));
}

std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(
    const std::string& path, std::string* error) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) {
    if (error != nullptr) *error = "cannot open checkpoint: " + path;
    return std::nullopt;
  }
  io::File f(raw);
  return TryLoadStreamCheckpoint(f.get(), error);
}

StreamingGkMeans LoadStreamCheckpoint(const std::string& path) {
  std::string error;
  std::optional<StreamingGkMeans> model =
      TryLoadStreamCheckpoint(path, &error);
  GKM_CHECK_MSG(model.has_value(), error.c_str());
  return std::move(*model);
}

// --- Delta checkpointing ----------------------------------------------------

StreamDeltaLog::StreamDeltaLog(std::string base_path, std::string delta_path,
                               const StreamingGkMeans& model)
    : base_path_(std::move(base_path)), delta_path_(std::move(delta_path)) {
  SaveStreamCheckpoint(base_path_, model);
  StartJournal(model);
}

void StreamDeltaLog::StartJournal(const StreamingGkMeans& model) {
  std::uint64_t base_hash = 0;
  GKM_CHECK_MSG(HashFileBytes(base_path_, &base_hash, &base_bytes_),
                "cannot re-read base snapshot for journal header");
  f_ = io::OpenOrDie(delta_path_, "wb");
  io::WriteArray(f_.get(), kDeltaMagic, 4);
  io::WriteRaw<std::uint32_t>(f_.get(), kDeltaVersion);
  io::WriteRaw<std::uint64_t>(f_.get(), base_hash);
  io::WriteRaw<std::uint64_t>(f_.get(), model.windows_seen());
  std::fflush(f_.get());
  journal_bytes_ = 4 + 4 + 8 + 8;
  replay_windows_ = 0;
}

void StreamDeltaLog::AppendWindow(const Matrix& window) {
  GKM_TRACE_SPAN("ckpt.delta.append_window");
  io::WriteRaw<std::uint8_t>(f_.get(), 'W');
  io::WriteMatrix(f_.get(), window);
  std::fflush(f_.get());
  journal_bytes_ += 1 + 16 + window.rows() * window.cols() * sizeof(float);
  ++replay_windows_;
  GKM_GAUGE_SET("ckpt.delta.journal_bytes",
                static_cast<std::int64_t>(journal_bytes_));
}

void StreamDeltaLog::AppendRemoval(std::uint32_t id) {
  io::WriteRaw<std::uint8_t>(f_.get(), 'R');
  io::WriteRaw<std::uint32_t>(f_.get(), id);
  std::fflush(f_.get());
  journal_bytes_ += 1 + 4;
}

void StreamDeltaLog::AppendStateCheck(const StreamingGkMeans& model) {
  io::WriteRaw<std::uint8_t>(f_.get(), 'C');
  io::WriteRaw<std::uint64_t>(f_.get(), StateDigest(model));
  std::fflush(f_.get());
  journal_bytes_ += 1 + 8;
}

bool StreamDeltaLog::MaybeCompact(const StreamingGkMeans& model) {
  const bool over_size =
      policy_.max_journal_fraction > 0.0 &&
      static_cast<double>(journal_bytes_) >
          policy_.max_journal_fraction * static_cast<double>(base_bytes_);
  const bool over_replay = policy_.max_replay_windows > 0 &&
                           replay_windows_ > policy_.max_replay_windows;
  if (!over_size && !over_replay) return false;
  Compact(model);
  return true;
}

void StreamDeltaLog::Compact(const StreamingGkMeans& model) {
  GKM_TRACE_SPAN("ckpt.delta.compact");
  f_.reset();  // close before rewriting under the journal's feet
  // Crash safety, in two pieces. (1) The base is never truncated in
  // place: the new snapshot lands in a side file and renames over the
  // original, so a crash mid-write leaves the old base + old journal
  // fully resumable. (2) A crash between the rename and the journal
  // rewrite leaves the new base beside the stale journal — resume detects
  // that shape (base cursor ahead of the journal anchor) and treats the
  // base as authoritative, since it already contains the journal's inputs.
  const std::string tmp = base_path_ + ".compact.tmp";
  SaveStreamCheckpoint(tmp, model);
  GKM_CHECK_MSG(std::rename(tmp.c_str(), base_path_.c_str()) == 0,
                "cannot rename compacted base snapshot into place");
  StartJournal(model);
}

std::optional<StreamingGkMeans> TryResumeStreamCheckpoint(
    const std::string& base_path, std::FILE* journal, std::string* error) {
  GKM_TRACE_SPAN("ckpt.delta.replay");
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::optional<StreamingGkMeans>();
  };
  constexpr const char* kTruncated = "truncated or unreadable delta journal";

  std::optional<StreamingGkMeans> model =
      TryLoadStreamCheckpoint(base_path, error);
  if (!model.has_value()) return std::nullopt;

  io::Reader r(journal);
  char magic[4];
  if (!r.ReadArray(magic, 4) || std::memcmp(magic, kDeltaMagic, 4) != 0) {
    return fail("not a GKMD delta journal");
  }
  std::uint32_t journal_version = 0;
  if (!r.Read(&journal_version)) return fail(kTruncated);
  if (journal_version != kDeltaVersion) {
    return fail("unsupported delta journal version");
  }
  std::uint64_t base_hash = 0;
  if (!HashFileBytes(base_path, &base_hash)) {
    return fail("cannot re-read base snapshot: " + base_path);
  }
  std::uint64_t journal_hash = 0;
  std::uint64_t journal_windows = 0;
  if (!r.Read(&journal_hash) || !r.Read(&journal_windows)) {
    return fail(kTruncated);
  }
  if (journal_hash != base_hash) {
    // One mismatch shape is legitimate: Compact renames the new base into
    // place before it rewrites the journal, so a crash in between leaves a
    // completed newer base beside a stale journal whose inputs the base
    // already contains. The base's window cursor being strictly ahead of
    // the journal's anchor identifies it; the base alone is the state.
    if (model->windows_seen() > journal_windows) return model;
    return fail("delta journal does not match this base snapshot");
  }
  if (journal_windows != model->windows_seen()) {
    return fail("delta journal window cursor does not match base");
  }

  // Replay. Each record goes through the same public API the original
  // process used, so the deterministic-model contract makes the result
  // bit-identical to the state that produced the journal. A journal cut
  // mid-record is a clean error (the process may have crashed mid-append;
  // the caller decides whether to fall back to the base alone).
  while (r.remaining() > 0) {
    std::uint8_t tag = 0;
    if (!r.Read(&tag)) return fail(kTruncated);
    switch (tag) {
      case 'W': {
        Matrix window;
        if (!r.ReadMatrix(&window)) {
          return fail("truncated or implausible delta window");
        }
        if (window.cols() != model->dim()) {
          return fail("delta window dimension does not match model");
        }
        model->ObserveWindow(window);
        break;
      }
      case 'R': {
        std::uint32_t id = 0;
        if (!r.Read(&id)) return fail(kTruncated);
        if (id >= model->points_seen() || !model->graph().IsAlive(id)) {
          return fail("delta removal of a dead or out-of-range id");
        }
        model->RemovePoint(id);
        break;
      }
      case 'C': {
        std::uint64_t want = 0;
        if (!r.Read(&want)) return fail(kTruncated);
        if (StateDigest(*model) != want) {
          return fail("delta state digest mismatch: journal and base "
                      "disagree with the replayed model");
        }
        break;
      }
      default:
        return fail("unknown delta journal record tag");
    }
  }
  return model;
}

std::optional<StreamingGkMeans> TryResumeStreamCheckpoint(
    const std::string& base_path, const std::string& delta_path,
    std::string* error) {
  errno = 0;
  std::FILE* raw = std::fopen(delta_path.c_str(), "rb");
  if (raw == nullptr) {
    // Only a genuinely absent journal means "the base is the state". Any
    // other open failure (permissions, fd exhaustion, I/O error) would
    // silently drop journaled-and-flushed inputs if treated the same.
    if (errno == ENOENT) return TryLoadStreamCheckpoint(base_path, error);
    if (error != nullptr) *error = "cannot open delta journal: " + delta_path;
    return std::nullopt;
  }
  io::File f(raw);
  return TryResumeStreamCheckpoint(base_path, f.get(), error);
}

StreamingGkMeans ResumeStreamCheckpoint(const std::string& base_path,
                                        const std::string& delta_path) {
  std::string error;
  std::optional<StreamingGkMeans> model =
      TryResumeStreamCheckpoint(base_path, delta_path, &error);
  GKM_CHECK_MSG(model.has_value(), error.c_str());
  return std::move(*model);
}

}  // namespace gkm
