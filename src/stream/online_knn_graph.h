// Copyright 2026 The gkmeans Authors.
// Incrementally-maintained approximate KNN graph for continuously-arriving
// points, after "Fast Online k-nn Graph Building" (Debatty et al.): each
// insert runs a bounded graph-walk search over the current graph to find
// the new point's kappa nearest neighbors, then offers the new point back
// to every node inspected (reverse-edge repair), so old nodes' lists keep
// improving as the stream flows. Per-insert work is O(beam * kappa)
// distance evaluations — sub-linear in the corpus — versus the O(n) of a
// brute-force insert.
//
// The structure owns both the vectors (an append-only Matrix) and the
// graph, because insertion must read existing rows to score candidates.

#ifndef GKM_STREAM_ONLINE_KNN_GRAPH_H_
#define GKM_STREAM_ONLINE_KNN_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Knobs of the online builder.
struct OnlineGraphParams {
  std::size_t kappa = 20;      ///< graph out-degree (neighbors kept per node)
  std::size_t beam_width = 48; ///< insert-search candidate pool (recall knob)
  /// Walk entry points per insert, drawn fresh from the builder's RNG each
  /// time. On multi-modal data the graph is near-disconnected across
  /// modes, so a walk only succeeds when a seed lands in the query's mode;
  /// fresh draws make consecutive inserts fail independently instead of
  /// isolating whole stretches of a mode the way a fixed seed set would.
  std::size_t num_seeds = 64;
  std::size_t bootstrap = 128; ///< below this size, inserts are brute-force
  std::uint64_t seed = 42;     ///< RNG seed for entry-point draws
};

/// Growing KNN graph + vector store. Deterministic: the graph produced is a
/// pure function of the insertion sequence and the RNG seed, which the
/// streaming replay test relies on; the RNG state round-trips through
/// checkpoints so restarts continue the same stream.
class OnlineKnnGraph {
 public:
  /// Empty structure over `dim`-dimensional points.
  OnlineKnnGraph(std::size_t dim, const OnlineGraphParams& params);

  /// Re-assembles a structure from checkpointed parts. `rng` must be the
  /// snapshot taken alongside the parts for insertions to continue
  /// bit-exact.
  OnlineKnnGraph(Matrix points, KnnGraph graph, const OnlineGraphParams& params,
                 const RngSnapshot& rng);

  std::size_t size() const { return points_.rows(); }
  std::size_t dim() const { return points_.cols(); }
  const Matrix& points() const { return points_; }
  const KnnGraph& graph() const { return graph_; }
  const OnlineGraphParams& params() const { return params_; }
  RngSnapshot rng_state() const { return rng_.Snapshot(); }

  /// Inserts `x` (dim floats): finds its kappa approximate nearest
  /// neighbors, links both directions and locally joins the surrounding
  /// lists; returns the new node's id. When `touched` is non-null, ids of
  /// pre-existing nodes whose neighbor lists changed are appended to it —
  /// possibly with duplicates — forming the set the streaming clusterer
  /// re-optimizes. `seed_hints` (optional) adds caller-supplied walk entry
  /// points on top of the random ones — the streaming clusterer passes
  /// representatives of the clusters nearest `x`, which routes the walk
  /// into rare modes that random entry would miss.
  std::uint32_t Insert(const float* x,
                       std::vector<std::uint32_t>* touched = nullptr,
                       const std::vector<std::uint32_t>* seed_hints = nullptr);

  /// Approximate top-k nearest existing points to `q` via the same bounded
  /// graph walk the insert path uses. Sorted ascending by distance.
  /// Thread-safe against other concurrent SearchKnn calls (each query
  /// carries its own visited scratch); not against concurrent Insert.
  std::vector<Neighbor> SearchKnn(const float* q, std::size_t topk) const;

 private:
  /// Bounded best-first walk seeded from `rng` plus optional hint entry
  /// points; returns up to beam_width exact-scored candidates sorted
  /// ascending. Falls back to scanning everything while the corpus is
  /// below the bootstrap threshold. `stamp`/`epoch` are the caller's
  /// visited markers (one slot per node, epoch-stamped so walks never
  /// clear O(n) state).
  std::vector<Neighbor> CollectCandidates(
      const float* q, Rng& rng, const std::vector<std::uint32_t>* seed_hints,
      std::vector<std::uint32_t>& stamp, std::uint32_t& epoch) const;

  OnlineGraphParams params_;
  Matrix points_;
  KnnGraph graph_;
  Rng rng_;
  // Insert-path visited markers; read-only queries use per-call scratch
  // instead so concurrent searches never share state.
  std::vector<std::uint32_t> visit_stamp_;
  std::uint32_t visit_epoch_ = 0;
};

}  // namespace gkm

#endif  // GKM_STREAM_ONLINE_KNN_GRAPH_H_
