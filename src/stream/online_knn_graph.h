// Copyright 2026 The gkmeans Authors.
// Incrementally-maintained approximate KNN graph for continuously-arriving
// points, after "Fast Online k-nn Graph Building" (Debatty et al.): each
// insert runs a bounded graph-walk search over the current graph to find
// the new point's kappa nearest neighbors, then offers the new point back
// to every node inspected (reverse-edge repair), so old nodes' lists keep
// improving as the stream flows. Per-insert work is O(beam * kappa)
// distance evaluations — sub-linear in the corpus — versus the O(n) of a
// brute-force insert.
//
// Ingest is batched and two-phase: a window of rows is split into
// sub-batches whose walks all run against the same read-snapshot of the
// graph (thread-parallel over a ThreadPool, each walk scored exactly
// against its sub-batch predecessors so intra-window neighborhoods are not
// lost), followed by a serial commit phase that applies AddNode/Update
// edge mutations in row order. The committed graph is a pure function of
// the insertion sequence and the RNG seed — independent of thread count —
// which checkpoint replay relies on.
//
// The structure owns both the vectors (an append-only Matrix) and the
// graph, because insertion must read existing rows to score candidates.

#ifndef GKM_STREAM_ONLINE_KNN_GRAPH_H_
#define GKM_STREAM_ONLINE_KNN_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include <atomic>

#include "common/kernels.h"
#include "common/matrix.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "graph/knn_graph.h"

namespace gkm {

class ThreadPool;

/// How the arena stores row coordinates.
///  kFp32 — full-precision rows (the historical mode; byte-identical
///          behavior and checkpoints to before this enum existed).
///  kSq8  — rows are held as packed u8 codes + one fp32 norm once the
///          corpus crosses the bootstrap threshold (the quantizer trains on
///          the bootstrap window); walks and batch search score candidates
///          through the asymmetric SQ8 kernels and exact-re-rank the final
///          pool against decoded rows. ~3.5x+ smaller arena; results are
///          exact over DECODED rows, so recall carries the quantization
///          error — gated in bench/online_search.
enum class StorageMode : std::uint8_t { kFp32 = 0, kSq8 = 1 };

/// Knobs of the online builder.
struct OnlineGraphParams {
  std::size_t kappa = 20;      ///< graph out-degree (neighbors kept per node)
  std::size_t beam_width = 48; ///< insert-search candidate pool (recall knob)
  /// Initial walk entry points per insert, drawn fresh per walk from a
  /// deterministic per-row generator. On multi-modal data the graph is
  /// near-disconnected across modes, so a walk only succeeds when a seed
  /// lands in the query's mode; fresh draws make consecutive inserts fail
  /// independently instead of isolating whole stretches of a mode the way
  /// a fixed seed set would. This is only the starting value: the live
  /// count adapts to the observed walk-failure rate (see
  /// AdaptiveSeedState), so it no longer needs hand-tuning per dataset.
  std::size_t num_seeds = 64;
  std::size_t bootstrap = 128; ///< below this size, inserts are brute-force
  std::uint64_t seed = 42;     ///< RNG seed for entry-point draws
  /// Shard count consumed by ShardedOnlineKnnGraph (a single OnlineKnnGraph
  /// ignores it): S independent arenas ingested by S concurrent writers.
  /// 1 keeps the single-arena behavior bit-for-bit. Model state — changing
  /// it re-partitions the stream, so it is persisted in checkpoints (v4).
  std::size_t shards = 1;
  /// Arena storage mode. Model state: it changes committed graph edges
  /// (SQ8 walks score decoded rows), so it is persisted in checkpoints —
  /// kSq8 saves emit GKMC v5, kFp32 keeps emitting v4 bytes.
  StorageMode storage = StorageMode::kFp32;
};

/// Checkpointed SQ8 arena state: packed codes (stride == dim, no padding),
/// one fp32 row constant per slot, and the trained quantizer. `trained ==
/// false` (the default) means the arena is still in its fp32 bootstrap
/// phase and `points` carries the rows as in every fp32 checkpoint.
struct Sq8ArenaParts {
  bool trained = false;
  std::size_t rows = 0;
  std::vector<std::uint8_t> codes;  ///< rows * dim, packed
  std::vector<float> norms;         ///< rows
  Sq8Quantizer quant;
};

/// Reusable visited-marker scratch for graph walks: one stamp slot per
/// node, epoch-tagged so opening a fresh walk never clears O(n) state.
/// Keep one instance per thread and pass it to SearchKnn for
/// allocation-free serving-path queries; a default-constructed instance
/// adapts to any graph size (and may be shared across graphs, since every
/// Prepare opens an epoch newer than any stamp previously written). The
/// pending_* buffers are reused by the batched candidate scoring inside
/// each walk expansion.
struct SearchScratch {
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> pending;
  std::vector<const float*> pending_rows;
  std::vector<float> pending_dist;
  // SQ8-mode buffers: gathered code rows + norms for walk expansion, the
  // per-walk prepared query, and a decode buffer for the exact re-rank.
  std::vector<const std::uint8_t*> pending_codes;
  std::vector<float> pending_norms;
  Sq8Query sq8_query;
  std::vector<float> decode_buf;

  /// Grows the stamp array to cover `n` nodes and opens a fresh epoch.
  /// The 32-bit epoch wraps after 2^32 walks; stamps are zeroed on wrap,
  /// because a wrapped epoch re-issues old values and stale entries would
  /// otherwise make `stamp[id] == epoch` spuriously true, silently
  /// dropping candidates from every later walk.
  void Prepare(std::size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
};

/// State of the adaptive entry-point policy, persisted through checkpoints
/// so a resumed stream continues with the seed count it had converged to.
/// `live_seeds == 0` means "not yet initialized" — the graph starts from
/// params.num_seeds.
///
/// Besides the global instance, the graph keeps one of these per caller
/// -supplied mode (the streaming clusterer's route-hint cluster): audit
/// verdicts of rows tagged with a mode adjust that mode's budget, so a
/// rare hard cluster can run 4x the seeds of an easy dense one instead of
/// dragging the global count up for everyone. A mode whose state is still
/// uninitialized (live_seeds == 0) inherits the global budget.
struct AdaptiveSeedState {
  std::uint64_t live_seeds = 0;  ///< entry points currently in force
  double fail_ewma = 0.125;      ///< audit-walk disagreement rate (EWMA)
  std::uint64_t audit_tick = 0;  ///< inserts observed (audit cadence cursor)
};

/// Deletion bookkeeping of the online graph, persisted through checkpoints
/// (GKMC v3) so a resumed stream reproduces slot reuse bit-exact. Slots move
/// through three states: alive -> tombstoned (`pending_dead`: walks skip
/// them, stale in-edges may still reference them) -> reclaimed
/// (`free_slots`: all in-edges purged by compaction, slot awaits reuse by a
/// later insert). Both lists are kept sorted ascending.
struct RemovalState {
  /// The "no such slot" sentinel shared by every consumer of slot ids
  /// (walk recency seed, checkpoint serialization): one definition, so
  /// the persisted value cannot drift between writer and reader.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::vector<std::uint32_t> pending_dead;  ///< tombstoned, not yet purged
  std::vector<std::uint32_t> free_slots;    ///< purged, reusable
  /// Slot id of the most recently committed insert (each walk seeds it:
  /// streams are locally correlated). kNoSlot when nothing was inserted.
  std::uint32_t last_inserted = kNoSlot;
};

/// Validates checkpointed per-arena parts against every invariant the
/// restore constructor requires: parameter sanity, points/graph shape
/// agreement, well-formed (sorted, in-range, disjoint) removal lists, and
/// the full edge audit (no out-of-range/self edges, tombstoned slots keep
/// no out-edges, reclaimed slots keep no in-edges). Returns nullptr when
/// the parts are safe to construct from, else a static description of the
/// first violation. This is the single source of truth: the restore
/// constructor aborts via this validator, and the Try* checkpoint loaders
/// call it first so a malformed file is a clean load error instead.
const char* ValidateOnlineGraphRestoreParts(const Matrix& points,
                                            const KnnGraph& graph,
                                            const OnlineGraphParams& params,
                                            const RemovalState& removal);

/// Shape-based variant for arenas whose rows are not a Matrix (the SQ8
/// code arena): identical checks with `rows`/`cols` standing in for the
/// points matrix shape. The Matrix overload delegates here.
const char* ValidateOnlineGraphRestoreParts(std::size_t rows, std::size_t cols,
                                            const KnnGraph& graph,
                                            const OnlineGraphParams& params,
                                            const RemovalState& removal);

/// Validates checkpointed SQ8 arena parts against `params` and the arena
/// shape: size agreement (codes == rows*dim, norms == rows, quantizer ==
/// dim), finite non-negative scales, and trained-implies-kSq8. nullptr
/// when safe, else a static description (same contract as above).
const char* ValidateSq8ArenaParts(const Sq8ArenaParts& sq8, std::size_t rows,
                                  std::size_t dim,
                                  const OnlineGraphParams& params);

/// Growing KNN graph + vector store. Deterministic: the graph produced is a
/// pure function of the insertion sequence and the RNG seed (thread count
/// included — parallel and serial ingest commit identical edges), which the
/// streaming replay test relies on; the RNG state round-trips through
/// checkpoints so restarts continue the same stream.
///
/// Concurrency model: one ingest thread calls Insert/InsertBatch/Remove/
/// CompactTombstones; any number of serving threads call SearchKnn
/// concurrently with it. Ingest
/// holds a reader-writer lock — shared while walks read the graph, unique
/// only for the serial commit phase — so searches interleave with the
/// expensive part of ingest and block only during edge application.
class OnlineKnnGraph {
 public:
  /// Sentinel mode id for "no mode": rows tagged with it (and rows of a
  /// modeless batch) use and adjust the global adaptive seed budget.
  static constexpr std::uint32_t kNoMode = 0xffffffffu;

  /// Empty structure over `dim`-dimensional points.
  OnlineKnnGraph(std::size_t dim, const OnlineGraphParams& params);

  /// Re-assembles a structure from checkpointed parts. `rng` must be the
  /// snapshot taken alongside the parts for insertions to continue
  /// bit-exact, `seeds` the adaptive-policy state captured with it, and
  /// `removal` the deletion bookkeeping (empty for pre-deletion
  /// checkpoints: every slot alive, last insert = highest id).
  OnlineKnnGraph(Matrix points, KnnGraph graph, const OnlineGraphParams& params,
                 const RngSnapshot& rng,
                 const AdaptiveSeedState& seeds = AdaptiveSeedState(),
                 const RemovalState& removal = RemovalState());

  /// Restore overload carrying a (possibly trained) SQ8 arena. When
  /// `sq8.trained`, `points` must be empty (the fp32 rows were dropped at
  /// training time) and the code arena supplies the row shape.
  /// `mode_seeds` restores the per-mode adaptive budgets (empty for
  /// checkpoints written before per-mode budgets, or for streams that
  /// never tagged rows with modes).
  OnlineKnnGraph(Matrix points, KnnGraph graph, const OnlineGraphParams& params,
                 const RngSnapshot& rng, const AdaptiveSeedState& seeds,
                 const RemovalState& removal, Sq8ArenaParts sq8,
                 std::vector<AdaptiveSeedState> mode_seeds = {});

  /// Number of arena slots (== the exclusive upper bound on node ids).
  /// Removal tombstones a slot without shrinking the arena, so this is
  /// monotonically non-decreasing; see num_alive() for the live count.
  /// Safe to call from serving threads while an ingest is running.
  std::size_t size() const {
    ReaderMutexLock guard(mu_);
    return ArenaRowsLocked();
  }
  /// Number of live (non-tombstoned) points. Safe during ingest.
  std::size_t num_alive() const {
    ReaderMutexLock guard(mu_);
    return ArenaRowsLocked() - pending_dead_.size() - free_slots_.size();
  }
  /// Whether slot `id` currently holds a live point. Safe during ingest.
  bool IsAlive(std::uint32_t id) const {
    ReaderMutexLock guard(mu_);
    return id < dead_.size() && dead_[id] == 0;
  }
  /// Unsynchronized variant, mirroring points()/graph(): for the ingest
  /// thread (the only writer of the flags — its own reads cannot race) or
  /// quiescent use. Avoids one lock round-trip per slot in O(n) sweeps
  /// like TTL expiry. Serving threads must use IsAlive.
  bool IsAliveUnlocked(std::uint32_t id) const {
    // Externally serialized: caller is the single ingest thread (sole
    // writer of dead_) or the structure is quiescent.
    mu_.AssertReaderHeld();
    return id < dead_.size() && dead_[id] == 0;
  }
  std::size_t dim() const { return dim_; }
  /// Direct views of the stores. Unsynchronized: for quiescent use only
  /// (no concurrent ingest) — serving threads should go through SearchKnn.
  const Matrix& points() const {
    mu_.AssertReaderHeld();  // externally serialized: quiescent use only
    return points_;
  }
  const KnnGraph& graph() const {
    mu_.AssertReaderHeld();  // externally serialized: quiescent use only
    return graph_;
  }
  /// Coordinates of slot `id`, storage-mode agnostic. fp32 mode returns the
  /// arena row pointer; a trained SQ8 arena decodes into a thread_local
  /// ring of buffers, so up to kDecodeRing pointers obtained on one thread
  /// stay simultaneously valid (callers in this repo use at most two).
  /// Unsynchronized, like points(): quiescent or ingest-thread use only.
  const float* PointPtr(std::uint32_t id) const {
    mu_.AssertReaderHeld();  // externally serialized: quiescent use only
    if (!sq8_trained_) return points_.Row(id);
    return DecodeToRing(id);
  }
  const OnlineGraphParams& params() const { return params_; }
  RngSnapshot rng_state() const { return rng_.Snapshot(); }
  /// SQ8 arena views for checkpointing. Unsynchronized (quiescent use).
  bool sq8_trained() const {
    mu_.AssertReaderHeld();
    return sq8_trained_;
  }
  const std::vector<std::uint8_t>& sq8_codes() const {
    mu_.AssertReaderHeld();
    return sq8_codes_;
  }
  const std::vector<float>& sq8_norms() const {
    mu_.AssertReaderHeld();
    return sq8_norms_;
  }
  const Sq8Quantizer& sq8_quantizer() const {
    mu_.AssertReaderHeld();
    return sq8_quant_;
  }
  /// Bytes the arena holds per slot (coordinate storage only): padded fp32
  /// stride, or d u8 codes + one fp32 norm once SQ8-trained. Safe during
  /// ingest.
  std::size_t arena_bytes_per_point() const {
    ReaderMutexLock guard(mu_);
    if (sq8_trained_) return dim_ * sizeof(std::uint8_t) + sizeof(float);
    return points_.stride() * sizeof(float);
  }
  /// Cumulative SQ8 telemetry: candidates scored through the quantized
  /// kernels, and candidates exact-re-ranked against decoded rows. Both 0
  /// in fp32 mode; their ratio is the bench's `sq8_rerank_fraction`.
  std::uint64_t sq8_scored() const { return sq8_scored_.Load(); }
  std::uint64_t sq8_reranked() const { return sq8_reranked_.Load(); }

  /// Re-trains the quantizer from the decoded live rows and re-encodes the
  /// arena in place (no-op until the SQ8 arena is trained). The streaming
  /// layer calls this on drift re-seed so codes track the moved
  /// distribution. Ingest-thread only (takes the writer lock).
  void RequantizeArena();
  /// Adaptive-policy snapshot for checkpointing. Safe during ingest.
  AdaptiveSeedState seed_state() const;
  /// Per-mode adaptive budgets for checkpointing (index == mode id; an
  /// entry with live_seeds == 0 has never adjusted and inherits the global
  /// budget). Empty when no batch ever carried modes. Safe during ingest.
  std::vector<AdaptiveSeedState> mode_seed_states() const;
  /// Deletion-bookkeeping snapshot for checkpointing. Safe during ingest.
  RemovalState removal_state() const;
  /// Entry points currently used per walk (adapts; see AdaptiveSeedState).
  /// Safe to poll from serving/monitoring threads during ingest.
  std::size_t live_num_seeds() const {
    ReaderMutexLock guard(mu_);
    return live_seeds_;
  }

  /// Inserts `x` (dim floats): finds its kappa approximate nearest
  /// neighbors, links both directions and locally joins the surrounding
  /// lists; returns the new node's id. When `touched` is non-null, ids of
  /// pre-existing nodes whose neighbor lists changed are appended to it
  /// and the whole vector is sorted and deduplicated before returning —
  /// the set the streaming clusterer re-optimizes, each id exactly once.
  /// `seed_hints` (optional) adds caller-supplied walk entry points on top
  /// of the random ones — the streaming clusterer passes representatives
  /// of the clusters nearest `x`, which routes the walk into rare modes
  /// that random entry would miss.
  std::uint32_t Insert(const float* x,
                       std::vector<std::uint32_t>* touched = nullptr,
                       const std::vector<std::uint32_t>* seed_hints = nullptr);

  /// Batch insert of every row of `rows`. Ids are assigned in row order —
  /// reclaimed slots first (lowest id first, keeping the arena dense), then
  /// fresh appends; the first row's id is returned and `assigned`, when
  /// non-null, receives every row's id in order. Candidate walks run
  /// thread-parallel on `pool` (nullptr or a single-thread pool runs them
  /// inline) against a frozen snapshot of the graph, then edges are
  /// committed serially in row order — the result is bit-identical at any
  /// thread count. `touched` behaves as in Insert (sorted, deduplicated).
  /// `seed_hints`, when non-null, supplies one hint vector per row.
  /// `modes`, when non-null, tags each row with a caller-defined mode id
  /// (the streaming clusterer's nearest cluster): the row's walk uses that
  /// mode's adaptive seed budget (global budget until the mode's own state
  /// initializes) and its audit verdict adjusts the per-mode state instead
  /// of the global one. nullptr keeps the purely global policy and is
  /// byte-identical to the behavior before modes existed.
  std::uint32_t InsertBatch(
      const Matrix& rows, ThreadPool* pool,
      std::vector<std::uint32_t>* touched = nullptr,
      const std::vector<std::vector<std::uint32_t>>* seed_hints = nullptr,
      std::vector<std::uint32_t>* assigned = nullptr,
      const std::vector<std::uint32_t>* modes = nullptr);

  /// Tombstones point `id` (which must be alive): concurrent SearchKnn and
  /// SearchKnnBatch readers skip it from then on without blocking, and its
  /// in-edges within the 1-hop neighborhood are routed through a repair
  /// pass that cross-links the removed node's neighbors with each other
  /// (the same local-join machinery the insert path uses), so the
  /// neighborhood stays connected once the node drops out. Stale in-edges
  /// from further away remain until the amortized compaction pass — walks
  /// ignore them. Ids of nodes whose lists changed are appended to
  /// `repaired` (sorted, deduplicated) when non-null.
  ///
  /// Must be called from the ingest thread (it serializes with commits
  /// under the writer lock). Deterministic: the graph remains a pure
  /// function of the interleaved insert/remove sequence.
  void Remove(std::uint32_t id,
              std::vector<std::uint32_t>* repaired = nullptr);

  /// Purges every edge pointing at a tombstoned slot (one O(n*kappa)
  /// sweep) and moves those slots to the reusable free list, so later
  /// inserts fill them instead of growing the arena. Runs automatically
  /// once tombstones reach a fixed fraction of the arena; public for
  /// callers that want the sweep at a quiet moment. Ingest-thread only.
  void CompactTombstones();

  /// Approximate top-k nearest existing points to `q` via the same bounded
  /// graph walk the insert path uses, seeded with the adaptive entry-point
  /// count. Sorted ascending by distance. Safe to call from any number of
  /// threads concurrently with each other *and* with a single ingest
  /// thread running Insert/InsertBatch. The scratch overload reuses the
  /// caller's per-thread scratch; the plain overload uses a thread_local
  /// one. Read-only: never perturbs the insert RNG stream.
  ///
  /// Liveness caveat: platform rwlocks commonly prefer readers, so many
  /// threads issuing back-to-back searches with no think time can delay
  /// ingest commits unboundedly. If ingest latency matters under a
  /// sustained query flood, pace the query loops or shard the graph.
  std::vector<Neighbor> SearchKnn(const float* q, std::size_t topk) const;
  std::vector<Neighbor> SearchKnn(const float* q, std::size_t topk,
                                  SearchScratch& scratch) const;

  /// Batched serving queries: one result vector per row of `queries`,
  /// element-wise identical to calling SearchKnn row by row, but the
  /// reader lock is acquired once for the whole batch instead of once per
  /// query — the lock-amortization path for hot query tiers (a large
  /// batch does delay ingest commits for its whole duration; size batches
  /// accordingly). The scratch overload reuses the caller's per-thread
  /// scratch; the plain overload uses a thread_local one.
  std::vector<std::vector<Neighbor>> SearchKnnBatch(const Matrix& queries,
                                                    std::size_t topk) const;
  std::vector<std::vector<Neighbor>> SearchKnnBatch(
      const Matrix& queries, std::size_t topk, SearchScratch& scratch) const;

 private:
  /// Lock-free core of SearchKnn; the caller must hold the reader lock.
  std::vector<Neighbor> SearchKnnLocked(const float* q, std::size_t topk,
                                        SearchScratch& scratch) const
      GKM_REQUIRES_SHARED(mu_);
  struct PlannedInsert;

  /// Bounded best-first walk seeded from `rng` plus optional hint entry
  /// points; returns up to beam_width exact-scored candidates sorted
  /// ascending. Falls back to scanning everything while the corpus is
  /// below the bootstrap threshold. Reads only graph/point state — callers
  /// must hold the read lock (or be the single writer).
  std::vector<Neighbor> CollectCandidates(
      const float* q, Rng& rng, const std::vector<std::uint32_t>* seed_hints,
      SearchScratch& scratch, std::size_t num_seeds) const
      GKM_REQUIRES_SHARED(mu_);

  /// Parallel phase of one row: walk + audit + intra-batch scoring + local
  /// join distance table, all against the sub-batch's graph snapshot.
  void PlanRow(const Matrix& rows, std::size_t batch_begin, std::size_t r,
               std::uint64_t row_seed, std::size_t num_seeds,
               std::uint64_t tick,
               const std::vector<std::uint32_t>* seed_hints,
               SearchScratch& scratch, PlannedInsert& plan) const
      GKM_REQUIRES_SHARED(mu_);

  /// Serial phase of one row: slot allocation (reclaimed slots first),
  /// forward/reverse edges, local join from the precomputed table,
  /// adaptive-policy bookkeeping. Candidate ids at or above `snapshot_n`
  /// are sub-batch predecessors and resolve through `batch_ids` (the ids
  /// already committed for earlier rows of the sub-batch). `mode` routes
  /// the audit verdict (kNoMode = global policy).
  std::uint32_t CommitRow(const Matrix& rows, std::size_t r,
                          std::size_t snapshot_n,
                          const std::vector<std::uint32_t>& batch_ids,
                          PlannedInsert& plan,
                          std::vector<std::uint32_t>* touched,
                          std::uint32_t mode)
      GKM_REQUIRES(mu_);

  /// Unlocked core of CompactTombstones; requires the writer lock.
  void PurgeTombstonesLocked() GKM_REQUIRES(mu_);

  /// Arena slot count, storage-mode agnostic (code rows once SQ8-trained).
  std::size_t ArenaRowsLocked() const GKM_REQUIRES_SHARED(mu_) {
    return sq8_trained_ ? sq8_norms_.size() : points_.rows();
  }

  /// Decodes slot `id` into the next buffer of a thread_local ring (see
  /// PointPtr). Requires a trained SQ8 arena.
  const float* DecodeToRing(std::uint32_t id) const GKM_REQUIRES_SHARED(mu_);

  /// Trains the quantizer on every live fp32 row, encodes the whole arena
  /// (dead slots included — deterministic, and their codes are never
  /// scored), and releases the fp32 rows. Called once, from the commit
  /// phase that grows the arena past params_.bootstrap.
  void TrainSq8Locked() GKM_REQUIRES(mu_);

  /// Appends or overwrites slot `id`'s code row from fp32 coordinates.
  void EncodeSlotLocked(std::uint32_t id, const float* x) GKM_REQUIRES(mu_);

  /// Folds one audit verdict into the failure EWMA and adjusts the live
  /// seed count when the rate crosses a policy threshold. A valid `mode`
  /// adjusts that mode's state (initialized from the global budget on its
  /// first audit); kNoMode adjusts the global policy.
  void ApplyAudit(bool failed, std::uint32_t mode) GKM_REQUIRES(mu_);

  /// Seed budget in force for a row of mode `mode` (kNoMode or an
  /// uninitialized mode falls back to the global budget).
  std::size_t EffectiveSeedsLocked(std::uint32_t mode) const
      GKM_REQUIRES_SHARED(mu_);

  void EnsureScratch(std::size_t slots);

  // Immutable after construction: readable from any thread without mu_.
  OnlineGraphParams params_;
  std::size_t dim_ = 0;
  // Guards every reader-visible piece of model state below between the
  // single ingest thread (shared for walks, unique for commits) and
  // concurrent SearchKnn readers (shared). Declared first so the analysis
  // sees the capability before its guarded fields.
  SharedMutex mu_;
  Matrix points_ GKM_GUARDED_BY(mu_);
  KnnGraph graph_ GKM_GUARDED_BY(mu_);
  // SQ8 arena (kSq8 mode only). Codes are PACKED (stride == dim_, no
  // padding) — the memory win is the point — with one fp32 row constant
  // per slot. sq8_trained_ flips true exactly once, under the writer lock,
  // when the arena crosses params_.bootstrap; points_ is released then.
  bool sq8_trained_ GKM_GUARDED_BY(mu_) = false;
  std::vector<std::uint8_t> sq8_codes_ GKM_GUARDED_BY(mu_);
  std::vector<float> sq8_norms_ GKM_GUARDED_BY(mu_);
  Sq8Quantizer sq8_quant_ GKM_GUARDED_BY(mu_);
  // Telemetry only (never read back into model state): approximate scores
  // issued / candidates exact-re-ranked. Relaxed: monotonic counters. The
  // copy/move hooks exist solely to keep OnlineKnnGraph movable (shards
  // live in a vector); they race-freely apply only before concurrent use.
  struct RelaxedCounter {
    std::atomic<std::uint64_t> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(const RelaxedCounter& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void Add(std::uint64_t inc) {
      v.fetch_add(inc, std::memory_order_relaxed);
    }
    std::uint64_t Load() const { return v.load(std::memory_order_relaxed); }
  };
  mutable RelaxedCounter sq8_scored_;
  mutable RelaxedCounter sq8_reranked_;
  // Per-slot tombstone flags (1 = dead), always sized to the arena. Walks
  // and the brute-force phase skip dead slots; serving readers only ever
  // see a slot flip alive->dead under the writer lock.
  std::vector<std::uint8_t> dead_ GKM_GUARDED_BY(mu_);
  // Tombstoned slots not yet purged (stale in-edges may reference them),
  // sorted ascending, and purged slots awaiting reuse, sorted DESCENDING
  // so the lowest-slot-first reuse policy is an O(1) pop_back even after
  // a mass expiry frees a whole window. (RemovalState serializes both
  // ascending; the constructor and removal_state() convert.)
  std::vector<std::uint32_t> pending_dead_ GKM_GUARDED_BY(mu_);
  std::vector<std::uint32_t> free_slots_ GKM_GUARDED_BY(mu_);
  // Most recently committed insert (see RemovalState::last_inserted).
  std::uint32_t last_inserted_ GKM_GUARDED_BY(mu_) = RemovalState::kNoSlot;
  // Ingest-thread-owned: consumed only by Insert/InsertBatch callers (one
  // serial draw per row), never reader-visible, so not guarded by mu_.
  Rng rng_;
  // Adaptive entry-point policy (see "Adaptive seed policy" in the .cc).
  std::size_t live_seeds_ GKM_GUARDED_BY(mu_) = 0;
  double fail_ewma_ GKM_GUARDED_BY(mu_) = 0.125;
  std::uint64_t audit_tick_ GKM_GUARDED_BY(mu_) = 0;
  // Per-mode budgets, indexed by the caller's mode id; grows on demand at
  // the start of a mode-tagged batch. Entries with live_seeds == 0 are
  // uninitialized and defer to the global policy above.
  std::vector<AdaptiveSeedState> mode_seeds_ GKM_GUARDED_BY(mu_);
  // Per-slot walk scratch for the parallel ingest phase (each pool slot
  // owns one entry); serving threads bring their own SearchScratch.
  std::vector<SearchScratch> ingest_scratch_;
};

}  // namespace gkm

#endif  // GKM_STREAM_ONLINE_KNN_GRAPH_H_
