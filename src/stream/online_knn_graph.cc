// Copyright 2026 The gkmeans Authors.

#include "stream/online_knn_graph.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm {
namespace {

// Pool entry ordered by distance; `expanded` marks walked candidates.
struct PoolEntry {
  std::uint32_t id;
  float dist;
  bool expanded;
};

// Shared by both constructors: restored params are as untrusted as fresh
// ones, and the walk assumes every one of these.
void ValidateParams(const OnlineGraphParams& params) {
  GKM_CHECK(params.kappa > 0);
  GKM_CHECK(params.beam_width >= params.kappa);
  GKM_CHECK(params.num_seeds > 0);
}

// --- Adaptive seed policy ---------------------------------------------------
// Every kAuditPeriod-th insert runs a second, independently seeded walk and
// compares best candidate distances. Two successful walks converge on the
// same nearest candidate (identical distance), so disagreement means at
// least one walk missed the query's region — the directly observable
// symptom of too few entry points. The disagreement rate is tracked as an
// EWMA: sustained failure doubles the live seed count, sustained agreement
// halves it, within bounds derived from params.num_seeds. After each
// adjustment the EWMA resets to a neutral midpoint so the policy re-measures
// at the new count instead of oscillating on stale evidence.
constexpr std::uint64_t kAuditPeriod = 16;  // every 16th insert: ~6% extra walks
constexpr double kEwmaAlpha = 1.0 / 16.0;
constexpr double kRaiseThreshold = 0.25;
constexpr double kLowerThreshold = 0.05;
constexpr double kNeutralEwma = 0.125;

std::size_t MinSeeds(const OnlineGraphParams& p) {
  return std::max<std::size_t>(8, p.num_seeds / 4);
}

std::size_t MaxSeeds(const OnlineGraphParams& p) {
  return std::max<std::size_t>(p.num_seeds * 4, 256);
}

// Sub-batch granularity of InsertBatch: rows of a sub-batch walk one graph
// snapshot in parallel and are scored exactly against their sub-batch
// predecessors; commits land between sub-batches, so later sub-batches see
// earlier rows as ordinary graph nodes.
constexpr std::size_t kSubBatch = 256;

constexpr std::uint32_t kNoSlot = RemovalState::kNoSlot;

// Tombstone compaction triggers once pending tombstones reach this fraction
// of the arena (and at least this many, so tiny graphs don't sweep per
// removal). The sweep is O(n*kappa), so amortized against >= n/4 removals
// it adds O(kappa) per removal.
constexpr std::size_t kPurgeDenominator = 4;
constexpr std::size_t kPurgeMinPending = 64;

// Inserts `id` into the ascending-sorted `v` (absent by precondition).
void InsertSorted(std::vector<std::uint32_t>& v, std::uint32_t id) {
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

}  // namespace

// One row's planned insert: produced against the sub-batch snapshot by the
// parallel phase, consumed by the serial commit. Candidate ids at or above
// the snapshot size denote sub-batch predecessors — because commits run in
// row order, such an id is exactly the node id the predecessor receives.
struct OnlineKnnGraph::PlannedInsert {
  std::vector<Neighbor> cand;  // walk + intra-batch candidates, ascending
  std::vector<float> join;     // cand.size() x take local-join distance table
  std::size_t take = 0;        // forward-edge count = min(kappa, cand.size())
  bool audited = false;
  bool audit_failed = false;
};

OnlineKnnGraph::OnlineKnnGraph(std::size_t dim,
                               const OnlineGraphParams& params)
    : params_(params), dim_(dim), points_(0, dim), graph_(0, params.kappa),
      rng_(params.seed), live_seeds_(params.num_seeds) {
  GKM_CHECK(dim > 0);
  ValidateParams(params);
}

const char* ValidateOnlineGraphRestoreParts(const Matrix& points,
                                            const KnnGraph& graph,
                                            const OnlineGraphParams& params,
                                            const RemovalState& removal) {
  return ValidateOnlineGraphRestoreParts(points.rows(), points.cols(), graph,
                                         params, removal);
}

const char* ValidateSq8ArenaParts(const Sq8ArenaParts& sq8, std::size_t rows,
                                  std::size_t dim,
                                  const OnlineGraphParams& params) {
  if (!sq8.trained) {
    if (!sq8.codes.empty() || !sq8.norms.empty()) {
      return "untrained SQ8 arena carries codes";
    }
    return nullptr;
  }
  if (params.storage != StorageMode::kSq8) {
    return "trained SQ8 arena under fp32 storage mode";
  }
  if (sq8.rows != rows) return "SQ8 arena row count mismatch";
  if (sq8.quant.scale.size() != dim || sq8.quant.offset.size() != dim) {
    return "SQ8 quantizer dimension mismatch";
  }
  if (sq8.norms.size() != rows) return "SQ8 norm count mismatch";
  if (sq8.codes.size() != rows * dim) return "SQ8 code arena size mismatch";
  for (std::size_t j = 0; j < dim; ++j) {
    if (!std::isfinite(sq8.quant.offset[j]) ||
        !std::isfinite(sq8.quant.scale[j]) || sq8.quant.scale[j] < 0.0f) {
      return "corrupt SQ8 quantizer";
    }
  }
  for (const float n : sq8.norms) {
    if (!std::isfinite(n) || n < 0.0f) return "corrupt SQ8 row norm";
  }
  return nullptr;
}

const char* ValidateOnlineGraphRestoreParts(std::size_t rows, std::size_t cols,
                                            const KnnGraph& graph,
                                            const OnlineGraphParams& params,
                                            const RemovalState& removal) {
  if (params.kappa == 0) return "graph kappa must be positive";
  if (params.beam_width < params.kappa) return "beam width below graph kappa";
  if (params.num_seeds == 0) return "graph num_seeds must be positive";
  if (cols == 0) return "restored points have zero dimension";
  if (rows != graph.num_nodes()) return "points/graph size mismatch";
  if (graph.k() != params.kappa) return "graph capacity does not match kappa";
  const std::size_t n = rows;
  // Deletion bookkeeping precedes edge validation: which edges are legal
  // depends on which slots are tombstoned vs reclaimed.
  std::vector<std::uint8_t> tomb(n, 0);
  std::vector<std::uint8_t> freed(n, 0);
  auto mark = [n](const std::vector<std::uint32_t>& ids,
                  std::vector<std::uint8_t>& flags,
                  const std::vector<std::uint8_t>& other) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint32_t id = ids[i];
      if (id >= n) return false;
      if (i > 0 && id <= ids[i - 1]) return false;  // sorted, duplicate-free
      if (flags[id] != 0 || other[id] != 0) return false;  // disjoint
      flags[id] = 1;
    }
    return true;
  };
  if (!mark(removal.pending_dead, tomb, freed)) {
    return "corrupt tombstone list";
  }
  if (!mark(removal.free_slots, freed, tomb)) {
    return "corrupt free-slot list";
  }
  if (removal.last_inserted != RemovalState::kNoSlot &&
      removal.last_inserted >= n) {
    return "corrupt last-inserted slot";
  }
  // Edge ids come from an untrusted checkpoint and are dereferenced
  // unchecked by every later walk: reject out-of-range and self edges, and
  // enforce the deletion invariants — tombstoned slots keep no out-edges,
  // reclaimed slots keep no in-edges (a stale edge into a reused slot
  // would silently score the wrong vector).
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Neighbor>& nbs = graph.NeighborsOf(i);
    if ((tomb[i] != 0 || freed[i] != 0) && !nbs.empty()) {
      return "tombstoned slot still has out-edges";
    }
    for (const Neighbor& nb : nbs) {
      if (nb.id >= n || nb.id == i) return "corrupt graph edge";
      if (freed[nb.id] != 0) return "edge into a reclaimed slot";
    }
  }
  return nullptr;
}

OnlineKnnGraph::OnlineKnnGraph(Matrix points, KnnGraph graph,
                               const OnlineGraphParams& params,
                               const RngSnapshot& rng,
                               const AdaptiveSeedState& seeds,
                               const RemovalState& removal)
    : OnlineKnnGraph(std::move(points), std::move(graph), params, rng, seeds,
                     removal, Sq8ArenaParts()) {}

OnlineKnnGraph::OnlineKnnGraph(Matrix points, KnnGraph graph,
                               const OnlineGraphParams& params,
                               const RngSnapshot& rng,
                               const AdaptiveSeedState& seeds,
                               const RemovalState& removal, Sq8ArenaParts sq8,
                               std::vector<AdaptiveSeedState> mode_seeds)
    : params_(params), points_(std::move(points)), graph_(std::move(graph)) {
  // A trained SQ8 arena supplies the row shape; the fp32 matrix must have
  // been released at training time, so a trained restore carries none.
  GKM_CHECK_MSG(!sq8.trained || points_.rows() == 0,
                "trained SQ8 restore must not carry fp32 rows");
  dim_ = sq8.trained ? sq8.quant.scale.size() : points_.cols();
  const std::size_t n = sq8.trained ? sq8.norms.size() : points_.rows();
  // Restore invariants live in ValidateOnlineGraphRestoreParts, shared
  // with the Try* checkpoint loaders (which reject a malformed file cleanly
  // before getting here); a caller that bypassed them still aborts.
  const char* bad =
      ValidateOnlineGraphRestoreParts(n, dim_, graph_, params, removal);
  GKM_CHECK_MSG(bad == nullptr, bad);
  bad = ValidateSq8ArenaParts(sq8, n, dim_, params);
  GKM_CHECK_MSG(bad == nullptr, bad);
  sq8_trained_ = sq8.trained;
  sq8_codes_ = std::move(sq8.codes);
  sq8_norms_ = std::move(sq8.norms);
  sq8_quant_ = std::move(sq8.quant);
  // Normalize the released staging matrix to the shape training leaves
  // behind, so restored and uninterrupted instances compare equal.
  if (sq8_trained_) points_ = Matrix(0, dim_);
  dead_.assign(n, 0);
  pending_dead_ = removal.pending_dead;
  free_slots_ = removal.free_slots;
  for (const std::uint32_t id : pending_dead_) dead_[id] = 1;
  for (const std::uint32_t id : free_slots_) dead_[id] = 1;
  last_inserted_ = removal.last_inserted;
  if (last_inserted_ == kNoSlot && n > 0 && pending_dead_.empty() &&
      free_slots_.empty()) {
    // Pre-deletion checkpoint: ids were contiguous, the newest is n-1.
    last_inserted_ = static_cast<std::uint32_t>(n - 1);
  }
  // Internal free-list order is descending (O(1) lowest-first pops); the
  // serialized form just validated is ascending.
  std::reverse(free_slots_.begin(), free_slots_.end());
  rng_.Restore(rng);
  live_seeds_ = seeds.live_seeds == 0
                    ? params.num_seeds
                    : static_cast<std::size_t>(seeds.live_seeds);
  live_seeds_ = std::min(live_seeds_, MaxSeeds(params));
  fail_ewma_ = seeds.fail_ewma;
  audit_tick_ = seeds.audit_tick;
  // Per-mode budgets restore verbatim (0 = uninitialized, defers to the
  // global budget), clamped to the same policy bounds as the global count.
  mode_seeds_ = std::move(mode_seeds);
  for (AdaptiveSeedState& s : mode_seeds_) {
    GKM_CHECK_MSG(std::isfinite(s.fail_ewma) && s.fail_ewma >= 0.0 &&
                      s.fail_ewma <= 1.0,
                  "corrupt per-mode seed state");
    if (s.live_seeds != 0) {
      s.live_seeds = std::min<std::uint64_t>(s.live_seeds, MaxSeeds(params));
    }
  }
}

AdaptiveSeedState OnlineKnnGraph::seed_state() const {
  ReaderMutexLock guard(mu_);
  AdaptiveSeedState s;
  s.live_seeds = live_seeds_;
  s.fail_ewma = fail_ewma_;
  s.audit_tick = audit_tick_;
  return s;
}

std::vector<AdaptiveSeedState> OnlineKnnGraph::mode_seed_states() const {
  ReaderMutexLock guard(mu_);
  return mode_seeds_;
}

RemovalState OnlineKnnGraph::removal_state() const {
  ReaderMutexLock guard(mu_);
  RemovalState s;
  s.pending_dead = pending_dead_;
  s.free_slots = free_slots_;
  std::reverse(s.free_slots.begin(), s.free_slots.end());  // ascending on disk
  s.last_inserted = last_inserted_;
  return s;
}

std::vector<Neighbor> OnlineKnnGraph::CollectCandidates(
    const float* q, Rng& rng, const std::vector<std::uint32_t>* seed_hints,
    SearchScratch& scratch, std::size_t num_seeds) const {
  const std::size_t n = ArenaRowsLocked();
  const std::size_t d = dim_;
  if (n == 0) return {};

  if (n <= params_.bootstrap) {
    // Small corpus: exact scan, every live point is a candidate — one
    // strided batch over the whole store, tombstones dropped afterwards
    // (the batch is cheaper than a gather over the survivors).
    std::vector<Neighbor> all;
    all.reserve(n);
    std::vector<float>& dist = scratch.pending_dist;
    dist.resize(n);
    L2SqrBatch(q, points_.Row(0), points_.stride(), n, d, dist.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (dead_[i]) continue;
      all.push_back(Neighbor{static_cast<std::uint32_t>(i), dist[i]});
    }
    std::sort(all.begin(), all.end());
    return all;
  }

  const std::size_t beam = params_.beam_width;
  scratch.Prepare(n);
  std::vector<std::uint32_t>& stamp = scratch.stamp;
  const std::uint32_t epoch = scratch.epoch;
  std::vector<PoolEntry> pool;
  pool.reserve(beam + 1);

  // SQ8 mode: the walk scores candidates through the quantized asymmetric
  // kernel (u8 codes stay hot, no decode on the expansion path); the final
  // pool — the top-(beam) = top-k·α set — is exact-re-ranked against
  // decoded rows below, so the returned candidate order and distances
  // match a full-precision walk over the decoded arena wherever the
  // quantization margin holds. Approximate scores are bit-identical across
  // SIMD tiers (integer accumulation), keeping walks deterministic.
  const bool sq8 = sq8_trained_;
  if (sq8) Sq8PrepareQuery(sq8_quant_, q, d, scratch.sq8_query);
  std::uint64_t scored = 0;

  // Strict total order on (dist, id): the pool's content and order are a
  // pure function of the offered SET, never of arrival order. Quantized
  // scores are coarse integers scaled to floats, so ties are common in SQ8
  // mode — and arrival order depends on adjacency-list order, which a
  // checkpoint round-trip canonicalizes. Without the id tie-break a
  // restored model's walks could diverge from the uninterrupted one's.
  auto pool_less = [](const PoolEntry& a, const PoolEntry& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  };
  auto offer = [&](std::uint32_t id, float dist) {
    const PoolEntry fresh{id, dist, false};
    if (pool.size() == beam && !pool_less(fresh, pool.back())) return;
    auto pos = std::lower_bound(pool.begin(), pool.end(), fresh, pool_less);
    pool.insert(pos, fresh);
    if (pool.size() > beam) pool.pop_back();
  };
  auto try_add = [&](std::uint32_t id) {
    if (stamp[id] == epoch) return;
    stamp[id] = epoch;
    // Tombstoned slots are stamped (never re-inspected) but not offered:
    // the pool only ever holds live nodes, so walks neither return nor
    // route through removed points. Connectivity across a removal is the
    // repair join's job, not the walk's.
    if (dead_[id]) return;
    if (sq8) {
      const std::uint8_t* code =
          sq8_codes_.data() + static_cast<std::size_t>(id) * d;
      float dist = 0.0f;
      L2SqrBatchSq8Gather(scratch.sq8_query, &code, &sq8_norms_[id], 1, d,
                          &dist);
      ++scored;
      offer(id, dist);
    } else {
      offer(id, L2Sqr(q, points_.Row(id), d));
    }
  };

  // Hint entry points first: callers with structural knowledge (the
  // streaming clusterer's per-cluster representatives) route the walk
  // straight into the query's region.
  if (seed_hints != nullptr) {
    for (const std::uint32_t h : *seed_hints) {
      if (h < n) try_add(h);
    }
  }
  // Fresh random entry points every walk, so failures to land in the
  // query's mode are independent across inserts. The most recent node is
  // always seeded too — streams are often locally correlated and the
  // newest region is exactly where lists are thinnest.
  for (std::size_t s = 0; s < num_seeds; ++s) {
    try_add(static_cast<std::uint32_t>(rng.Index(n)));
  }
  if (last_inserted_ != kNoSlot) try_add(last_inserted_);

  // Best-first expansion. Each expanded node's unstamped neighbors are
  // scored with one gathered batch and offered in adjacency order, which
  // evolves the pool exactly as per-neighbor try_add did.
  std::vector<std::uint32_t>& pending = scratch.pending;
  std::vector<const float*>& pending_rows = scratch.pending_rows;
  std::vector<float>& pending_dist = scratch.pending_dist;
  std::vector<const std::uint8_t*>& pending_codes = scratch.pending_codes;
  std::vector<float>& pending_norms = scratch.pending_norms;
  for (;;) {
    std::size_t next = pool.size();
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (!pool[p].expanded) {
        next = p;
        break;
      }
    }
    if (next == pool.size()) break;
    pool[next].expanded = true;
    pending.clear();
    pending_rows.clear();
    pending_codes.clear();
    pending_norms.clear();
    for (const Neighbor& nb : graph_.NeighborsOf(pool[next].id)) {
      if (stamp[nb.id] == epoch) continue;
      stamp[nb.id] = epoch;
      // Stale edges may still reference tombstones until the next purge
      // sweep — skip them without scoring.
      if (dead_[nb.id]) continue;
      pending.push_back(nb.id);
      if (sq8) {
        pending_codes.push_back(sq8_codes_.data() +
                                static_cast<std::size_t>(nb.id) * d);
        pending_norms.push_back(sq8_norms_[nb.id]);
      } else {
        pending_rows.push_back(points_.Row(nb.id));
      }
    }
    pending_dist.resize(pending.size());
    if (sq8) {
      L2SqrBatchSq8Gather(scratch.sq8_query, pending_codes.data(),
                          pending_norms.data(), pending.size(), d,
                          pending_dist.data());
      scored += pending.size();
    } else {
      L2SqrBatchGather(q, pending_rows.data(), pending.size(), d,
                       pending_dist.data());
    }
    for (std::size_t p = 0; p < pending.size(); ++p) {
      offer(pending[p], pending_dist[p]);
    }
  }

  if (sq8 && !pool.empty()) {
    // Compact exact re-rank: decode the final top-k·α pool (α =
    // beam/topk) and rescore it with the bit-exact fp32 kernel, then
    // re-sort. Candidate distances committed to edges or returned from
    // SearchKnn are therefore always exact over decoded rows; only the
    // pool MEMBERSHIP carries quantization error. stable_sort keeps ties
    // in approximate-score order, which is itself deterministic.
    std::vector<float>& dec = scratch.decode_buf;
    dec.resize(pool.size() * d);
    pending_rows.clear();
    for (std::size_t p = 0; p < pool.size(); ++p) {
      float* row = dec.data() + p * d;
      Sq8Decode(sq8_quant_,
                sq8_codes_.data() + static_cast<std::size_t>(pool[p].id) * d,
                d, row);
      pending_rows.push_back(row);
    }
    pending_dist.resize(pool.size());
    L2SqrBatchGather(q, pending_rows.data(), pool.size(), d,
                     pending_dist.data());
    for (std::size_t p = 0; p < pool.size(); ++p) {
      pool[p].dist = pending_dist[p];
    }
    std::stable_sort(pool.begin(), pool.end(),
                     [](const PoolEntry& a, const PoolEntry& b) {
                       return a.dist < b.dist;
                     });
    sq8_reranked_.Add(pool.size());
  }
  if (sq8) sq8_scored_.Add(scored);

  std::vector<Neighbor> out;
  out.reserve(pool.size());
  for (const PoolEntry& e : pool) out.push_back(Neighbor{e.id, e.dist});
  return out;
}

void OnlineKnnGraph::PlanRow(const Matrix& rows, std::size_t batch_begin,
                             std::size_t r, std::uint64_t row_seed,
                             std::size_t num_seeds, std::uint64_t tick,
                             const std::vector<std::uint32_t>* seed_hints,
                             SearchScratch& scratch,
                             PlannedInsert& plan) const {
  const float* x = rows.Row(r);
  const std::size_t n = ArenaRowsLocked();  // snapshot size, frozen this phase
  const std::size_t d = dim_;
  const bool exact = n <= params_.bootstrap;

  // Walks consume a private generator derived from one serial rng_ draw,
  // so the plan is a pure function of (row, snapshot, seed) regardless of
  // which thread runs it.
  Rng walk_rng(row_seed);
  plan.cand = CollectCandidates(x, walk_rng, seed_hints, scratch, num_seeds);
  plan.join.clear();
  plan.audited = false;
  plan.audit_failed = false;

  // Audit walk (adaptive seed policy): a second independent walk over the
  // same snapshot. Disagreement on the best distance means at least one
  // walk missed the query's region. Exact-phase scans cannot fail, so no
  // audits there.
  if (!exact && !plan.cand.empty() && (tick + 1) % kAuditPeriod == 0) {
    plan.audited = true;
    Rng audit_rng(row_seed ^ 0x5851f42d4c957f2dULL);
    const std::vector<Neighbor> check =
        CollectCandidates(x, audit_rng, seed_hints, scratch, num_seeds);
    const float a = plan.cand.front().dist;
    const float b = check.empty() ? -1.0f : check.front().dist;
    const float lo = std::min(a, b);
    plan.audit_failed = std::fabs(a - b) > 1e-6f * (1.0f + lo);
  }

  // Intra-batch candidates: exact distances to the sub-batch predecessors,
  // which the snapshot walk cannot see. Their ids (>= n) resolve to real
  // node ids once the in-order commit assigns them. One strided batch over
  // the window rows, merged in row order as before.
  const std::size_t beam = params_.beam_width;
  if (r > batch_begin) {
    std::vector<float>& dist_buf = scratch.pending_dist;
    dist_buf.resize(r - batch_begin);
    L2SqrBatch(x, rows.Row(batch_begin), rows.stride(), r - batch_begin, d,
               dist_buf.data());
    for (std::size_t j = batch_begin; j < r; ++j) {
      const float dist = dist_buf[j - batch_begin];
      if (plan.cand.size() >= beam && dist >= plan.cand.back().dist) continue;
      const Neighbor fresh{static_cast<std::uint32_t>(n + (j - batch_begin)),
                           dist};
      auto pos = std::lower_bound(plan.cand.begin(), plan.cand.end(), fresh,
                                  [](const Neighbor& a, const Neighbor& b) {
                                    return a.dist < b.dist;
                                  });
      plan.cand.insert(pos, fresh);
      if (plan.cand.size() > beam) plan.cand.pop_back();
    }
  }

  plan.take = std::min(params_.kappa, plan.cand.size());

  // Local-join distance table, precomputed here so the serial commit phase
  // is pure heap updates: all candidate coordinates are readable during
  // the parallel phase (snapshot rows or window rows).
  const std::size_t n_before = n + (r - batch_begin);
  if (n_before > params_.bootstrap && plan.take > 0) {
    // SQ8 mode: arena candidates are decoded into scratch (slot l of
    // decode_buf for take target l, slot plan.take for the per-t row) so
    // the join table holds the same exact-over-decoded distances the walk
    // re-rank produced. Window rows are still fp32.
    const bool sq8 = sq8_trained_;
    std::vector<float>& dec = scratch.decode_buf;
    if (sq8) dec.resize((plan.take + 1) * d);
    auto resolve = [&](std::uint32_t id, std::size_t slot) -> const float* {
      if (id >= n) return rows.Row(batch_begin + (id - n));
      if (!sq8) return points_.Row(id);
      float* buf = dec.data() + slot * d;
      Sq8Decode(sq8_quant_,
                sq8_codes_.data() + static_cast<std::size_t>(id) * d, d, buf);
      return buf;
    };
    // Each table row is one gathered one-to-many batch: candidate t
    // against the plan.take forward-edge targets.
    std::vector<const float*>& take_rows = scratch.pending_rows;
    take_rows.clear();
    for (std::size_t l = 0; l < plan.take; ++l) {
      take_rows.push_back(resolve(plan.cand[l].id, l));
    }
    std::vector<float>& dist_buf = scratch.pending_dist;
    dist_buf.resize(plan.take);
    plan.join.assign(plan.cand.size() * plan.take, 0.0f);
    for (std::size_t t = 0; t < plan.cand.size(); ++t) {
      const float* pt = resolve(plan.cand[t].id, plan.take);
      L2SqrBatchGather(pt, take_rows.data(), plan.take, d, dist_buf.data());
      for (std::size_t l = 0; l < plan.take; ++l) {
        if (l == t) continue;
        plan.join[t * plan.take + l] = dist_buf[l];
      }
    }
  }
}

std::uint32_t OnlineKnnGraph::CommitRow(const Matrix& rows, std::size_t r,
                                        std::size_t snapshot_n,
                                        const std::vector<std::uint32_t>& batch_ids,
                                        PlannedInsert& plan,
                                        std::vector<std::uint32_t>* touched,
                                        std::uint32_t mode) {
  const float* x = rows.Row(r);
  // Slot allocation: reclaim the lowest free slot (keeps the arena dense)
  // before growing. A reclaimed slot has an empty neighbor list and no
  // in-edges (the purge sweep guarantees both), so overwriting its vector
  // makes it an ordinary fresh node.
  std::uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();  // descending order: back is the lowest slot
    free_slots_.pop_back();
    dead_[id] = 0;
    if (sq8_trained_) {
      EncodeSlotLocked(id, x);
    } else {
      points_.SetRow(id, x);
    }
  } else {
    id = graph_.AddNode();
    if (sq8_trained_) {
      EncodeSlotLocked(id, x);
    } else {
      points_.AppendRow(x);
    }
    dead_.push_back(0);
  }
  last_inserted_ = id;

  // SQ8 training trigger: the first commit that grows the arena past the
  // bootstrap threshold trains the quantizer on the bootstrap window and
  // converts the arena. Exact-phase sub-batches are single-row, so this
  // fires between rows and the next sub-batch's walks already run
  // quantized. Rows never shrink, so it fires exactly once.
  if (params_.storage == StorageMode::kSq8 && !sq8_trained_ &&
      points_.rows() > params_.bootstrap) {
    TrainSq8Locked();
  }

  // Plans encode sub-batch predecessors as virtual ids >= the snapshot
  // arena size (walk candidates are always below it); resolve them to the
  // ids those rows actually received — slot reuse makes them non-contiguous.
  for (Neighbor& nb : plan.cand) {
    if (nb.id >= snapshot_n) nb.id = batch_ids[nb.id - snapshot_n];
  }

  // Forward edges: the kappa closest candidates become the new node's list.
  const std::size_t take = plan.take;
  for (std::size_t j = 0; j < take; ++j) {
    graph_.Update(id, plan.cand[j].id, plan.cand[j].dist);
  }
  // Reverse-edge repair: offer the new point to every node the walk
  // scored. Each Push is O(log kappa) against an already-known distance,
  // and it is what keeps early nodes' lists converging toward the true
  // neighborhood as the corpus fills in around them.
  std::vector<std::uint32_t> adopters;  // candidate indices, ascending dist
  for (std::size_t t = 0; t < plan.cand.size(); ++t) {
    const Neighbor& nb = plan.cand[t];
    if (graph_.Update(nb.id, id, nb.dist)) {
      adopters.push_back(static_cast<std::uint32_t>(t));
      if (touched != nullptr) touched->push_back(nb.id);
    }
  }

  // Local join (NN-Descent's join step, applied once around each insert):
  // a node whose own insertion walk failed — likely in a rare mode no
  // entry point hit — has a list full of far points; reverse pushes alone
  // only hand it this one new id. Cross-linking each adopter with the new
  // node's accepted neighbor list reconnects such nodes to their real
  // neighborhood through the new point. Bounded to the kappa closest
  // adopters; distances come from the plan's precomputed table.
  if (!plan.join.empty()) {
    const std::size_t join = std::min(params_.kappa, adopters.size());
    for (std::size_t a = 0; a < join; ++a) {
      const std::size_t t = adopters[a];
      const std::uint32_t t_id = plan.cand[t].id;
      for (std::size_t l = 0; l < take; ++l) {
        const std::uint32_t l_id = plan.cand[l].id;
        if (l_id == t_id) continue;
        const float dist = plan.join[t * take + l];
        const bool t_changed = graph_.Update(t_id, l_id, dist);
        const bool l_changed = graph_.Update(l_id, t_id, dist);
        if (touched != nullptr) {
          if (t_changed) touched->push_back(t_id);
          if (l_changed) touched->push_back(l_id);
        }
      }
    }
  }

  ++audit_tick_;
  if (plan.audited) ApplyAudit(plan.audit_failed, mode);
  return id;
}

std::size_t OnlineKnnGraph::EffectiveSeedsLocked(std::uint32_t mode) const {
  if (mode != kNoMode && mode < mode_seeds_.size() &&
      mode_seeds_[mode].live_seeds != 0) {
    return static_cast<std::size_t>(mode_seeds_[mode].live_seeds);
  }
  return live_seeds_;
}

void OnlineKnnGraph::ApplyAudit(bool failed, std::uint32_t mode) {
  // Per-mode route: the first audit of a mode forks its budget off the
  // current global count, after which the mode converges independently.
  // The EWMA/threshold machinery is identical to the global policy's.
  if (mode != kNoMode && mode < mode_seeds_.size()) {
    AdaptiveSeedState& s = mode_seeds_[mode];
    if (s.live_seeds == 0) s.live_seeds = live_seeds_;
    ++s.audit_tick;
    s.fail_ewma = s.fail_ewma * (1.0 - kEwmaAlpha) + (failed ? kEwmaAlpha : 0.0);
    if (s.fail_ewma > kRaiseThreshold && s.live_seeds < MaxSeeds(params_)) {
      s.live_seeds = std::min<std::uint64_t>(s.live_seeds * 2, MaxSeeds(params_));
      s.fail_ewma = kNeutralEwma;
    } else if (s.fail_ewma < kLowerThreshold &&
               s.live_seeds > MinSeeds(params_)) {
      s.live_seeds = std::max<std::uint64_t>(s.live_seeds / 2, MinSeeds(params_));
      s.fail_ewma = kNeutralEwma;
    }
    return;
  }
  fail_ewma_ = fail_ewma_ * (1.0 - kEwmaAlpha) + (failed ? kEwmaAlpha : 0.0);
  if (fail_ewma_ > kRaiseThreshold && live_seeds_ < MaxSeeds(params_)) {
    live_seeds_ = std::min(live_seeds_ * 2, MaxSeeds(params_));
    fail_ewma_ = kNeutralEwma;
  } else if (fail_ewma_ < kLowerThreshold && live_seeds_ > MinSeeds(params_)) {
    live_seeds_ = std::max(live_seeds_ / 2, MinSeeds(params_));
    fail_ewma_ = kNeutralEwma;
  }
}

void OnlineKnnGraph::EnsureScratch(std::size_t slots) {
  if (ingest_scratch_.size() < std::max<std::size_t>(slots, 1)) {
    ingest_scratch_.resize(std::max<std::size_t>(slots, 1));
  }
}

std::uint32_t OnlineKnnGraph::Insert(
    const float* x, std::vector<std::uint32_t>* touched,
    const std::vector<std::uint32_t>* seed_hints) {
  Matrix one(1, dim_);
  one.SetRow(0, x);
  if (seed_hints == nullptr) return InsertBatch(one, nullptr, touched);
  const std::vector<std::vector<std::uint32_t>> hints(1, *seed_hints);
  return InsertBatch(one, nullptr, touched, &hints);
}

std::uint32_t OnlineKnnGraph::InsertBatch(
    const Matrix& rows, ThreadPool* pool,
    std::vector<std::uint32_t>* touched,
    const std::vector<std::vector<std::uint32_t>>* seed_hints,
    std::vector<std::uint32_t>* assigned,
    const std::vector<std::uint32_t>* modes) {
  GKM_CHECK_MSG(rows.cols() == dim_, "batch dimension mismatch");
  GKM_CHECK_MSG(seed_hints == nullptr || seed_hints->size() == rows.rows(),
                "one seed-hint vector per row required");
  GKM_CHECK_MSG(modes == nullptr || modes->size() == rows.rows(),
                "one mode id per row required");
  const std::size_t total = rows.rows();
  if (total == 0) return kNoSlot;
  const std::size_t slots =
      pool != nullptr ? std::max<std::size_t>(pool->num_threads(), 1) : 1;
  EnsureScratch(slots);

  // Grow the per-mode table up front so the commit phase never reallocates
  // it mid-batch. kNoMode entries keep the global policy.
  if (modes != nullptr) {
    std::uint32_t max_mode = 0;
    bool any = false;
    for (const std::uint32_t m : *modes) {
      if (m == kNoMode) continue;
      max_mode = std::max(max_mode, m);
      any = true;
    }
    if (any) {
      WriterMutexLock guard(mu_);
      if (mode_seeds_.size() <= max_mode) mode_seeds_.resize(max_mode + 1);
    }
  }

  std::uint32_t first_id = kNoSlot;
  std::vector<PlannedInsert> plans;
  std::vector<std::uint64_t> row_seeds;
  std::vector<std::size_t> row_live;
  std::vector<std::uint32_t> batch_ids;
  std::size_t begin = 0;
  while (begin < total) {
    std::size_t width, snapshot_n;
    std::uint64_t base_tick;
    {
      // Sub-batch setup reads reader-visible state (arena size, adaptive
      // policy counters) — one brief shared acquisition per sub-batch. No
      // writer can intervene (this thread is the only one), so the values
      // match what the unlocked reads saw before annotation.
      ReaderMutexLock guard(mu_);
      // Exact phase: single-row sub-batches, so every brute-force scan sees
      // all predecessors — identical to sequential insertion.
      // snapshot_n is the arena size the sub-batch's plans are made
      // against: predecessor rows are encoded as virtual ids at or above
      // it (see CommitRow).
      snapshot_n = ArenaRowsLocked();
      width = snapshot_n <= params_.bootstrap ? 1
                                              : std::min(kSubBatch, total - begin);
      // Per-row seed budgets, snapshotted like the old global `live` so
      // mid-batch audits (which run in the commit phase) cannot perturb
      // the walks already planned against this snapshot.
      base_tick = audit_tick_;
      row_live.resize(width);
      for (std::size_t i = 0; i < width; ++i) {
        row_live[i] = EffectiveSeedsLocked(
            modes != nullptr ? (*modes)[begin + i] : kNoMode);
      }
    }
    // One serial rng_ draw per row, in row order: the only RNG consumption
    // of the batch, so thread count cannot perturb the stream.
    row_seeds.resize(width);
    for (auto& s : row_seeds) s = rng_.Next();
    plans.resize(width);

    auto plan_one = [&](std::size_t slot, std::size_t i) {
      // Borrowed shared capability: the submitting thread below holds the
      // reader lock across the entire ParallelForSlots fan-out (workers
      // finish before the guard releases), so every invocation — inline or
      // on a pool worker — runs with mu_ held shared.
      mu_.AssertReaderHeld();
      const std::size_t r = begin + i;
      const std::vector<std::uint32_t>* hints =
          seed_hints != nullptr ? &(*seed_hints)[r] : nullptr;
      PlanRow(rows, begin, r, row_seeds[i], row_live[i], base_tick + i, hints,
              ingest_scratch_[slot], plans[i]);
    };
    {
      // Walks read a frozen graph: the ingest thread holds the shared side
      // for the whole phase, which also lets concurrent SearchKnn readers
      // proceed while excluding the commit phase below.
      GKM_TRACE_SPAN("stream.ingest.walk");
      ReaderMutexLock read_guard(mu_);
      if (pool != nullptr && width > 1) {
        pool->ParallelForSlots(0, width, plan_one);
      } else {
        for (std::size_t i = 0; i < width; ++i) plan_one(0, i);
      }
    }
    {
      GKM_TRACE_SPAN("stream.ingest.commit");
      WriterMutexLock write_guard(mu_);
      batch_ids.clear();
      for (std::size_t i = 0; i < width; ++i) {
        const std::uint32_t id = CommitRow(
            rows, begin + i, snapshot_n, batch_ids, plans[i], touched,
            modes != nullptr ? (*modes)[begin + i] : kNoMode);
        batch_ids.push_back(id);
        if (first_id == kNoSlot) first_id = id;
        if (assigned != nullptr) assigned->push_back(id);
      }
    }
    begin += width;
  }
  GKM_COUNTER_ADD("stream.ingest.rows", static_cast<std::int64_t>(total));

  if (touched != nullptr) {
    std::sort(touched->begin(), touched->end());
    touched->erase(std::unique(touched->begin(), touched->end()),
                   touched->end());
  }
  return first_id;
}

void OnlineKnnGraph::Remove(std::uint32_t id,
                            std::vector<std::uint32_t>* repaired) {
  GKM_COUNTER_ADD("stream.remove.calls", 1);
  WriterMutexLock guard(mu_);
  GKM_CHECK_MSG(id < ArenaRowsLocked(), "Remove of an out-of-range id");
  GKM_CHECK_MSG(dead_[id] == 0, "Remove of an already-removed id");

  // Snapshot the live out-neighborhood before tombstoning: these nodes are
  // both the likely in-edge owners (reverse repair made most edges mutual)
  // and the replacement candidates for each other. Ascending id order keeps
  // the repair deterministic regardless of heap layout.
  std::vector<std::uint32_t> ring;
  for (const Neighbor& nb : graph_.NeighborsOf(id)) {
    if (dead_[nb.id] == 0) ring.push_back(nb.id);
  }
  std::sort(ring.begin(), ring.end());

  dead_[id] = 1;
  InsertSorted(pending_dead_, id);
  graph_.ClearList(id);
  if (last_inserted_ == id) {
    // The walk's recency seed must stay live; fall back to "none" (random
    // seeds still cover the corpus) until the next insert re-establishes it.
    last_inserted_ = kNoSlot;
  }

  // In-edge repair, reusing the local-join machinery of the insert path:
  // drop the ring's edges to the dead node and cross-link the ring with
  // exact distances, so a node that loses its bridge through `id` is
  // re-attached to the rest of the neighborhood directly. In-edges from
  // outside the ring stay as stale tombstone references — walks skip them
  // and the amortized purge below erases them in bulk.
  const std::size_t d = dim_;
  // SQ8 mode has no fp32 originals: repair distances are exact over the
  // decoded rows — the same value space every committed edge already lives
  // in, so repaired edges rank consistently against walk-committed ones.
  const bool sq8 = sq8_trained_;
  std::vector<float> dec_r(sq8 ? d : 0), dec_s(sq8 ? d : 0);
  for (const std::uint32_t r : ring) {
    bool changed = graph_.RemoveNeighbor(r, id);
    const float* pr;
    if (sq8) {
      Sq8Decode(sq8_quant_,
                sq8_codes_.data() + static_cast<std::size_t>(r) * d, d,
                dec_r.data());
      pr = dec_r.data();
    } else {
      pr = points_.Row(r);
    }
    for (const std::uint32_t s : ring) {
      if (s == r) continue;
      const float* ps;
      if (sq8) {
        Sq8Decode(sq8_quant_,
                  sq8_codes_.data() + static_cast<std::size_t>(s) * d, d,
                  dec_s.data());
        ps = dec_s.data();
      } else {
        ps = points_.Row(s);
      }
      const float dist = L2Sqr(pr, ps, d);
      changed = graph_.Update(r, s, dist) || changed;
    }
    if (changed && repaired != nullptr) repaired->push_back(r);
  }
  if (repaired != nullptr) {
    std::sort(repaired->begin(), repaired->end());
    repaired->erase(std::unique(repaired->begin(), repaired->end()),
                    repaired->end());
  }

  if (pending_dead_.size() >= kPurgeMinPending &&
      pending_dead_.size() * kPurgeDenominator >= ArenaRowsLocked()) {
    PurgeTombstonesLocked();
  }
}

void OnlineKnnGraph::CompactTombstones() {
  WriterMutexLock guard(mu_);
  PurgeTombstonesLocked();
}

void OnlineKnnGraph::PurgeTombstonesLocked() {
  if (pending_dead_.empty()) return;
  GKM_TRACE_SPAN("stream.purge");
  GKM_COUNTER_ADD("stream.purge.tombstones",
                  static_cast<std::int64_t>(pending_dead_.size()));
  // One sweep over every live list: drop edges whose target is tombstoned.
  // Degree lost here is not refilled — the Remove-time join already
  // repaired the neighborhood, and subsequent inserts' reverse-edge repair
  // keeps lists converging — so the sweep stays pure deletion, O(n*kappa).
  const std::size_t n = ArenaRowsLocked();
  std::vector<Neighbor> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (dead_[i]) continue;
    const std::vector<Neighbor>& items = graph_.NeighborsOf(i);
    bool stale = false;
    for (const Neighbor& nb : items) stale = stale || dead_[nb.id] != 0;
    if (!stale) continue;
    kept.clear();
    for (const Neighbor& nb : items) {
      if (dead_[nb.id] == 0) kept.push_back(nb);
    }
    graph_.SetList(i, kept);
  }
  // Every tombstone is now unreferenced: hand the slots to the allocator
  // (both inputs merged descending, matching the free list's order).
  std::vector<std::uint32_t> merged;
  merged.reserve(free_slots_.size() + pending_dead_.size());
  std::merge(free_slots_.begin(), free_slots_.end(), pending_dead_.rbegin(),
             pending_dead_.rend(), std::back_inserter(merged),
             std::greater<std::uint32_t>());
  free_slots_ = std::move(merged);
  pending_dead_.clear();
}

std::vector<Neighbor> OnlineKnnGraph::SearchKnn(const float* q,
                                                std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnn(q, topk, scratch);
}

std::vector<Neighbor> OnlineKnnGraph::SearchKnnLocked(
    const float* q, std::size_t topk, SearchScratch& scratch) const {
  const std::size_t n = ArenaRowsLocked();
  if (n == 0) return {};
  // Local generator: read-only queries never perturb the insert stream
  // (replay determinism), and a fixed corpus size gives a fixed answer.
  Rng rng(params_.seed ^ (n * 0x9e3779b97f4a7c15ULL));
  std::vector<Neighbor> cand =
      CollectCandidates(q, rng, nullptr, scratch, live_seeds_);
  if (cand.size() > topk) cand.resize(topk);
  return cand;
}

std::vector<Neighbor> OnlineKnnGraph::SearchKnn(const float* q,
                                                std::size_t topk,
                                                SearchScratch& scratch) const {
  GKM_TRACE_SPAN("serve.search");
  ReaderMutexLock guard(mu_);
  return SearchKnnLocked(q, topk, scratch);
}

std::vector<std::vector<Neighbor>> OnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnnBatch(queries, topk, scratch);
}

std::vector<std::vector<Neighbor>> OnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk, SearchScratch& scratch) const {
  GKM_CHECK_MSG(queries.cols() == dim_, "query dimension mismatch");
  std::vector<std::vector<Neighbor>> out(queries.rows());
  GKM_TRACE_SPAN("serve.search_batch");
  GKM_COUNTER_ADD("serve.search_batch.queries",
                  static_cast<std::int64_t>(queries.rows()));
  // One reader acquisition for the whole batch. The corpus size is frozen
  // under the lock, so every per-query RNG below matches what a per-query
  // SearchKnn call would have drawn — results are element-wise identical.
  ReaderMutexLock guard(mu_);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    out[i] = SearchKnnLocked(queries.Row(i), topk, scratch);
  }
  return out;
}

const float* OnlineKnnGraph::DecodeToRing(std::uint32_t id) const {
  // Small thread-local ring of decoded rows: successive PointPtr calls
  // rotate through kDecodeRing buffers, so a caller may hold up to
  // kDecodeRing pointers simultaneously (the repo's hottest pattern is two:
  // L2Sqr(Point(a), Point(b))). Pointers are invalidated by the
  // (kDecodeRing+1)-th call on the same thread, like any other scratch.
  constexpr std::size_t kDecodeRing = 8;
  const std::size_t d = dim_;
  thread_local std::vector<float> ring;
  thread_local std::size_t next = 0;
  if (ring.size() != kDecodeRing * d) {
    ring.assign(kDecodeRing * d, 0.0f);
    next = 0;
  }
  float* buf = ring.data() + next * d;
  next = (next + 1) % kDecodeRing;
  Sq8Decode(sq8_quant_, sq8_codes_.data() + static_cast<std::size_t>(id) * d,
            d, buf);
  return buf;
}

void OnlineKnnGraph::EncodeSlotLocked(std::uint32_t id, const float* x) {
  const std::size_t d = dim_;
  if (static_cast<std::size_t>(id) == sq8_norms_.size()) {
    sq8_codes_.resize(sq8_codes_.size() + d);
    float norm = 0.0f;
    Sq8Encode(sq8_quant_, x, d,
              sq8_codes_.data() + static_cast<std::size_t>(id) * d, &norm);
    sq8_norms_.push_back(norm);
  } else {
    GKM_CHECK_MSG(static_cast<std::size_t>(id) < sq8_norms_.size(),
                  "SQ8 encode into a slot past the arena end");
    Sq8Encode(sq8_quant_, x, d,
              sq8_codes_.data() + static_cast<std::size_t>(id) * d,
              &sq8_norms_[id]);
  }
}

void OnlineKnnGraph::TrainSq8Locked() {
  GKM_TRACE_SPAN("stream.sq8.train");
  const std::size_t n = points_.rows();
  const std::size_t d = dim_;
  // Train on the live bootstrap rows only — dead slots would widen the
  // per-dimension range for no benefit. The min/max sweep is
  // order-independent, so the quantizer is deterministic for a given live
  // set regardless of thread count or insertion interleaving.
  std::vector<const float*> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead_[i]) live.push_back(points_.Row(i));
  }
  sq8_quant_ = Sq8TrainGather(live.data(), live.size(), d);
  // Encode every slot (dead ones included, keeping slot indexing dense);
  // then drop the fp32 arena — from here on codes are the only storage.
  sq8_codes_.assign(n * d, 0);
  sq8_norms_.assign(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    Sq8Encode(sq8_quant_, points_.Row(i), d, sq8_codes_.data() + i * d,
              &sq8_norms_[i]);
  }
  sq8_trained_ = true;
  points_ = Matrix(0, dim_);
  GKM_COUNTER_ADD("stream.sq8.train.rows", static_cast<std::int64_t>(n));
}

void OnlineKnnGraph::RequantizeArena() {
  WriterMutexLock guard(mu_);
  if (!sq8_trained_) return;
  GKM_TRACE_SPAN("stream.sq8.requantize");
  const std::size_t n = sq8_norms_.size();
  const std::size_t d = dim_;
  // Decode the whole arena through the OLD quantizer, retrain on the live
  // decoded rows, re-encode everything. One generation of quantization
  // error is baked into the decoded values (codes are not refined against
  // originals, which no longer exist); the payoff is a grid that tracks
  // the drifted distribution, which is what recall depends on.
  std::vector<float> old(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    Sq8Decode(sq8_quant_, sq8_codes_.data() + i * d, d, old.data() + i * d);
  }
  std::vector<const float*> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead_[i]) live.push_back(old.data() + i * d);
  }
  sq8_quant_ = Sq8TrainGather(live.data(), live.size(), d);
  for (std::size_t i = 0; i < n; ++i) {
    Sq8Encode(sq8_quant_, old.data() + i * d, d, sq8_codes_.data() + i * d,
              &sq8_norms_[i]);
  }
  GKM_COUNTER_ADD("stream.sq8.requantize.rows", static_cast<std::int64_t>(n));
}

}  // namespace gkm
