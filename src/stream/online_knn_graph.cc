// Copyright 2026 The gkmeans Authors.

#include "stream/online_knn_graph.h"

#include <algorithm>

#include "common/distance.h"
#include "common/macros.h"

namespace gkm {
namespace {

// Pool entry ordered by distance; `expanded` marks walked candidates.
struct PoolEntry {
  std::uint32_t id;
  float dist;
  bool expanded;
};

}  // namespace

namespace {

// Shared by both constructors: restored params are as untrusted as fresh
// ones, and the walk assumes every one of these.
void ValidateParams(const OnlineGraphParams& params) {
  GKM_CHECK(params.kappa > 0);
  GKM_CHECK(params.beam_width >= params.kappa);
  GKM_CHECK(params.num_seeds > 0);
}

}  // namespace

OnlineKnnGraph::OnlineKnnGraph(std::size_t dim,
                               const OnlineGraphParams& params)
    : params_(params), points_(0, dim), graph_(0, params.kappa),
      rng_(params.seed) {
  GKM_CHECK(dim > 0);
  ValidateParams(params);
}

OnlineKnnGraph::OnlineKnnGraph(Matrix points, KnnGraph graph,
                               const OnlineGraphParams& params,
                               const RngSnapshot& rng)
    : params_(params), points_(std::move(points)), graph_(std::move(graph)) {
  ValidateParams(params);
  GKM_CHECK_MSG(points_.rows() == graph_.num_nodes(),
                "points/graph size mismatch");
  GKM_CHECK(graph_.k() == params.kappa);
  // Edge ids come from an untrusted checkpoint and are dereferenced
  // unchecked by every later walk: reject out-of-range or self edges here.
  const std::size_t n = points_.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : graph_.NeighborsOf(i)) {
      GKM_CHECK_MSG(nb.id < n && nb.id != i, "corrupt graph edge");
    }
  }
  rng_.Restore(rng);
  visit_stamp_.assign(points_.rows(), 0);
}

std::vector<Neighbor> OnlineKnnGraph::CollectCandidates(
    const float* q, Rng& rng, const std::vector<std::uint32_t>* seed_hints,
    std::vector<std::uint32_t>& stamp, std::uint32_t& epoch) const {
  const std::size_t n = points_.rows();
  const std::size_t d = points_.cols();

  if (n <= params_.bootstrap) {
    // Small corpus: exact scan, all points are candidates.
    std::vector<Neighbor> all(n);
    for (std::size_t i = 0; i < n; ++i) {
      all[i] = Neighbor{static_cast<std::uint32_t>(i),
                        L2Sqr(q, points_.Row(i), d)};
    }
    std::sort(all.begin(), all.end());
    return all;
  }

  const std::size_t beam = params_.beam_width;
  ++epoch;
  std::vector<PoolEntry> pool;
  pool.reserve(beam + 1);

  auto try_add = [&](std::uint32_t id) {
    if (stamp[id] == epoch) return;
    stamp[id] = epoch;
    const float dist = L2Sqr(q, points_.Row(id), d);
    if (pool.size() == beam && dist >= pool.back().dist) return;
    const PoolEntry fresh{id, dist, false};
    auto pos = std::lower_bound(pool.begin(), pool.end(), fresh,
                                [](const PoolEntry& a, const PoolEntry& b) {
                                  return a.dist < b.dist;
                                });
    pool.insert(pos, fresh);
    if (pool.size() > beam) pool.pop_back();
  };

  // Hint entry points first: callers with structural knowledge (the
  // streaming clusterer's per-cluster representatives) route the walk
  // straight into the query's region.
  if (seed_hints != nullptr) {
    for (const std::uint32_t h : *seed_hints) {
      if (h < n) try_add(h);
    }
  }
  // Fresh random entry points every walk, so failures to land in the
  // query's mode are independent across inserts. The most recent node is
  // always seeded too — streams are often locally correlated and the
  // newest region is exactly where lists are thinnest.
  for (std::size_t s = 0; s < params_.num_seeds; ++s) {
    try_add(static_cast<std::uint32_t>(rng.Index(n)));
  }
  try_add(static_cast<std::uint32_t>(n - 1));

  for (;;) {
    std::size_t next = pool.size();
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (!pool[p].expanded) {
        next = p;
        break;
      }
    }
    if (next == pool.size()) break;
    pool[next].expanded = true;
    for (const Neighbor& nb : graph_.NeighborsOf(pool[next].id)) {
      try_add(nb.id);
    }
  }

  std::vector<Neighbor> out;
  out.reserve(pool.size());
  for (const PoolEntry& e : pool) out.push_back(Neighbor{e.id, e.dist});
  return out;
}

std::uint32_t OnlineKnnGraph::Insert(
    const float* x, std::vector<std::uint32_t>* touched,
    const std::vector<std::uint32_t>* seed_hints) {
  const std::size_t n_before = points_.rows();
  const std::vector<Neighbor> cand =
      CollectCandidates(x, rng_, seed_hints, visit_stamp_, visit_epoch_);

  const std::uint32_t id = graph_.AddNode();
  points_.AppendRow(x);
  visit_stamp_.push_back(0);

  // Forward edges: the kappa closest candidates become the new node's list.
  const std::size_t take = std::min(params_.kappa, cand.size());
  for (std::size_t j = 0; j < take; ++j) {
    graph_.Update(id, cand[j].id, cand[j].dist);
  }
  // Reverse-edge repair: offer the new point to every node the walk
  // scored. Each Push is O(log kappa) against an already-known distance,
  // and it is what keeps early nodes' lists converging toward the true
  // neighborhood as the corpus fills in around them.
  std::vector<std::uint32_t> adopters;  // ascending distance (cand is sorted)
  for (const Neighbor& nb : cand) {
    if (graph_.Update(nb.id, id, nb.dist)) {
      adopters.push_back(nb.id);
      if (touched != nullptr) touched->push_back(nb.id);
    }
  }

  // Local join (NN-Descent's join step, applied once around each insert):
  // a node whose own insertion walk failed — likely in a rare mode no
  // entry point hit — has a list full of far points; reverse pushes alone
  // only hand it this one new id. Cross-linking each adopter with the new
  // node's accepted neighbor list reconnects such nodes to their real
  // neighborhood through the new point. Bounded to the kappa closest
  // adopters: O(kappa^2) extra distance evaluations.
  if (n_before > params_.bootstrap) {
    const std::size_t d = points_.cols();
    const std::vector<Neighbor> my_list = graph_.SortedNeighbors(id);
    const std::size_t join = std::min(params_.kappa, adopters.size());
    for (std::size_t a = 0; a < join; ++a) {
      const std::uint32_t t = adopters[a];
      for (const Neighbor& l : my_list) {
        if (l.id == t || l.id == id) continue;
        const float dist = L2Sqr(points_.Row(t), points_.Row(l.id), d);
        const bool t_changed = graph_.Update(t, l.id, dist);
        const bool l_changed = graph_.Update(l.id, t, dist);
        if (touched != nullptr) {
          if (t_changed) touched->push_back(t);
          if (l_changed) touched->push_back(l.id);
        }
      }
    }
  }
  return id;
}

std::vector<Neighbor> OnlineKnnGraph::SearchKnn(const float* q,
                                                std::size_t topk) const {
  // Local generator and visited scratch: read-only queries never perturb
  // the insert stream (replay determinism) and never share mutable state
  // with concurrent searches.
  Rng rng(params_.seed ^ (size() * 0x9e3779b97f4a7c15ULL));
  std::vector<std::uint32_t> stamp(points_.rows(), 0);
  std::uint32_t epoch = 0;
  std::vector<Neighbor> cand = CollectCandidates(q, rng, nullptr, stamp, epoch);
  if (cand.size() > topk) cand.resize(topk);
  return cand;
}

}  // namespace gkm
