// Copyright 2026 The gkmeans Authors.
// Versioned binary checkpointing for the streaming subsystem: the whole
// StreamingGkMeans state — ingested vectors, online KNN graph, labels,
// composite-vector statistics, drift baseline, stream cursor and RNG —
// round-trips through one file, so a serving process can restart
// mid-stream and continue bit-for-bit as if never interrupted.
//
// File layout (little-endian; see README "Checkpoint file format"):
//   magic "GKMC" | u32 version (currently 1)
//   params block  — every StreamingGkMeansParams / OnlineGraphParams field
//   cursor block  — windows consumed, bootstrapped flag, RNG snapshots
//                   (clusterer then online graph)
//   points        — io::WriteMatrix (u64 rows, u64 cols, row payloads)
//   graph         — KnnGraph::SaveTo (u64 n, u64 k, per-node sorted lists)
//   labels        — u64 count, u32 per point, then u32 routing
//                   representative per cluster
//   state block   — u64 n, u32 counts[k], f64 composites[k*dim],
//                   f64 composite_norms[k], f64 point_norms[k],
//                   f64 sum_point_norms
//   drift block   — io::WriteMatrix of the previous-window centroids
//   trailer magic "CKPT"
//
// Per-window history (diagnostics only) is intentionally not persisted.

#ifndef GKM_STREAM_CHECKPOINT_H_
#define GKM_STREAM_CHECKPOINT_H_

#include <string>

#include "stream/streaming_gkmeans.h"

namespace gkm {

/// Writes `model`'s full state to `path`. Aborts on I/O failure.
void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model);

/// Restores a model from `path`. Aborts on missing file, bad magic or an
/// unsupported version.
StreamingGkMeans LoadStreamCheckpoint(const std::string& path);

}  // namespace gkm

#endif  // GKM_STREAM_CHECKPOINT_H_
