// Copyright 2026 The gkmeans Authors.
// Versioned binary checkpointing for the streaming subsystem: the whole
// StreamingGkMeans state — ingested vectors, online KNN graph, labels,
// composite-vector statistics, drift baseline, stream cursor, RNG, the
// adaptive-seed policy and the deletion/TTL bookkeeping — round-trips
// through one file, so a serving process can restart mid-stream and
// continue bit-for-bit as if never interrupted.
//
// Two persistence modes share the format:
//
//  - Full snapshots ("GKMC", version 4): one self-contained file.
//    docs/checkpoint-format.md documents the authoritative layout and
//    compatibility rules; v2 (pre-deletion) and v3 (pre-sharding) files
//    still load.
//  - Incremental (delta) checkpoints: a full base snapshot plus an
//    append-only journal ("GKMD") of the stream inputs since the base —
//    per-window ingest records, explicit removals, and optional state
//    digests. Because the model is a pure function of its input sequence,
//    replaying the journal over the base reconstructs the exact state a
//    full snapshot would have stored, at O(window) rather than O(corpus)
//    bytes per checkpoint. StreamDeltaLog::Compact folds the journal back
//    into a fresh base.
//
// Per-window history (diagnostics only) is intentionally not persisted.

#ifndef GKM_STREAM_CHECKPOINT_H_
#define GKM_STREAM_CHECKPOINT_H_

#include <optional>
#include <string>

#include "common/binary_io.h"
#include "stream/streaming_gkmeans.h"

namespace gkm {

/// Writes `model`'s full state to `path`. Aborts on I/O failure.
void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model);

/// Restores a model from `path`. Aborts on any malformed input (missing
/// file, bad magic, unsupported version, invalid params) with the same
/// diagnostic TryLoadStreamCheckpoint would report.
StreamingGkMeans LoadStreamCheckpoint(const std::string& path);

/// Non-aborting load: returns std::nullopt with a diagnostic in `*error`
/// (when non-null) on ANY malformed input — truncation anywhere in the
/// file, size fields that exceed the bytes actually present (checked
/// before every allocation, via io::Reader), implausible headers, and
/// deep payload corruption (invalid graph edges, label/liveness
/// violations — the same ValidateStreamSnapshot gate the constructors
/// abort through). The fuzz harness fuzz/fuzz_gkmc_load.cc holds this
/// function to that contract.
std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(
    const std::string& path, std::string* error = nullptr);

/// Stream variant of the above, reading the checkpoint from an already
/// opened seekable stream (regular file or fmemopen buffer) positioned at
/// the start of the GKMC block. Consumes through the trailer.
std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(
    std::FILE* file, std::string* error = nullptr);

/// Auto-compaction policy for StreamDeltaLog::MaybeCompact. Either trigger
/// set to its zero value is disabled; with both disabled MaybeCompact is a
/// no-op and compaction stays fully manual.
struct DeltaCompactionPolicy {
  /// Size trigger: compact once journal bytes exceed this fraction of the
  /// base snapshot's bytes (e.g. 0.5 folds when the journal reaches half
  /// the base — past that, replay I/O approaches just rewriting the base).
  double max_journal_fraction = 0.0;
  /// Replay-cost trigger: compact once more than this many 'W' window
  /// records would need replaying at resume. Windows dominate replay cost
  /// (each is a full ObserveWindow), so the budget bounds restart latency
  /// to roughly max_replay_windows times the per-window ingest cost.
  std::size_t max_replay_windows = 0;
};

/// Append-only delta journal anchored at a full base snapshot. Usage, on
/// the ingest thread that owns the model:
///
///   StreamDeltaLog log(base, delta, model);     // writes base + header
///   log.SetAutoCompaction({0.5, 256});          // optional policy
///   for each window w:
///     log.AppendWindow(w);                      // journal first...
///     model.ObserveWindow(w);                   // ...then apply
///     log.MaybeCompact(model);                  // policy-driven fold
///   log.AppendRemoval(id); model.RemovePoint(id);   // explicit deletes
///   log.AppendStateCheck(model);                // optional digest record
///   if (log too long) log.Compact(model);       // manual fold
///
/// Journal before apply: a crash between the two replays one extra input,
/// which is idempotent for the resume path only if the caller re-feeds
/// from its own durable source — otherwise accept that the resumed model
/// is one input ahead of the crashed one. TTL expiry needs no records: it
/// replays deterministically from the base's birth windows and cursor.
///
/// ResumeStreamCheckpoint(base, delta) rebuilds the model by loading the
/// base and replaying the journal; the result is bit-identical to the
/// full snapshot a non-delta checkpoint would have produced at the same
/// point (tests/checkpoint_test.cc pins this byte-for-byte).
class StreamDeltaLog {
 public:
  /// Writes a fresh base snapshot of `model` to `base_path` and starts an
  /// empty journal at `delta_path` (truncating any previous one). The
  /// journal header embeds a hash of the base file, so a mismatched
  /// base/delta pair is rejected at resume instead of replaying onto the
  /// wrong state.
  StreamDeltaLog(std::string base_path, std::string delta_path,
                 const StreamingGkMeans& model);

  /// Journals one ingest window (record 'W'). Flushed before returning.
  void AppendWindow(const Matrix& window);

  /// Journals one explicit removal (record 'R'). Flushed before returning.
  void AppendRemoval(std::uint32_t id);

  /// Journals a digest of `model`'s cluster statistics and labels (record
  /// 'C'). Replay recomputes the digest at the same point and fails the
  /// resume on mismatch — a cheap tripwire for determinism bugs and
  /// journal/model divergence. O(k*dim + n) to compute, 8 bytes on disk.
  void AppendStateCheck(const StreamingGkMeans& model);

  /// Folds the journal into the base: rewrites `base_path` from `model`
  /// (which must reflect every journaled record) and truncates the
  /// journal to empty. Bounds replay cost after long uptimes.
  void Compact(const StreamingGkMeans& model);

  /// Installs (or replaces) the auto-compaction policy consulted by
  /// MaybeCompact. Default: both triggers disabled.
  void SetAutoCompaction(const DeltaCompactionPolicy& policy) {
    policy_ = policy;
  }

  /// Runs Compact(model) when the installed policy says so; returns
  /// whether it did. Call *after* applying the journaled input to `model`
  /// — Compact snapshots the model, so folding between AppendWindow and
  /// ObserveWindow would anchor a base that silently drops the in-flight
  /// window.
  bool MaybeCompact(const StreamingGkMeans& model);

  /// Journal bytes written since the current base (header included).
  std::size_t journal_bytes() const { return journal_bytes_; }
  /// Size of the current base snapshot file.
  std::size_t base_bytes() const { return base_bytes_; }
  /// 'W' records in the journal — the replay cost in windows.
  std::size_t replay_windows() const { return replay_windows_; }

 private:
  void StartJournal(const StreamingGkMeans& model);

  std::string base_path_;
  std::string delta_path_;
  io::File f_;
  DeltaCompactionPolicy policy_;
  std::size_t base_bytes_ = 0;
  std::size_t journal_bytes_ = 0;
  std::size_t replay_windows_ = 0;
};

/// Rebuilds a model from a base snapshot plus its delta journal. A missing
/// or empty journal resumes from the base alone. Aborts on malformed input
/// with the diagnostic TryResumeStreamCheckpoint would report.
StreamingGkMeans ResumeStreamCheckpoint(const std::string& base_path,
                                        const std::string& delta_path);

/// Non-aborting resume: reports unreadable bases, header/base mismatches,
/// unknown record tags, digest failures, and — as with
/// TryLoadStreamCheckpoint — truncation or size-field lies anywhere in
/// either file, through `*error`. A journal cut mid-record is a clean
/// error, not an abort (fuzz/fuzz_gkmd_replay.cc holds it to that).
std::optional<StreamingGkMeans> TryResumeStreamCheckpoint(
    const std::string& base_path, const std::string& delta_path,
    std::string* error = nullptr);

/// Stream variant: replays an already opened journal over the base at
/// `base_path`. Unlike the path overload there is no missing-journal
/// fallback — `journal` must be a valid open stream.
std::optional<StreamingGkMeans> TryResumeStreamCheckpoint(
    const std::string& base_path, std::FILE* journal,
    std::string* error = nullptr);

}  // namespace gkm

#endif  // GKM_STREAM_CHECKPOINT_H_
