// Copyright 2026 The gkmeans Authors.
// Versioned binary checkpointing for the streaming subsystem: the whole
// StreamingGkMeans state — ingested vectors, online KNN graph, labels,
// composite-vector statistics, drift baseline, stream cursor, RNG and the
// adaptive-seed policy state — round-trips through one file, so a serving
// process can restart mid-stream and continue bit-for-bit as if never
// interrupted.
//
// File layout (little-endian; see README "Checkpoint file format"):
//   magic "GKMC" | u32 version (currently 2)
//   params block  — every StreamingGkMeansParams / OnlineGraphParams field
//                   except ingest_threads (an execution knob, not model
//                   state: results are thread-count independent)
//   cursor block  — windows consumed, bootstrapped flag, RNG snapshots
//                   (clusterer then online graph), adaptive-seed state
//                   (u64 live_seeds, f64 fail_ewma, u64 audit_tick)
//   points        — io::WriteMatrix (u64 rows, u64 cols, row payloads)
//   graph         — KnnGraph::SaveTo (u64 n, u64 k, per-node sorted lists)
//   labels        — u64 count, u32 per point, then u32 routing
//                   representative per cluster
//   state block   — u64 n, u32 counts[k], f64 composites[k*dim],
//                   f64 composite_norms[k], f64 point_norms[k],
//                   f64 sum_point_norms
//   drift block   — io::WriteMatrix of the previous-window centroids
//   trailer magic "CKPT"
//
// Per-window history (diagnostics only) is intentionally not persisted.

#ifndef GKM_STREAM_CHECKPOINT_H_
#define GKM_STREAM_CHECKPOINT_H_

#include <optional>
#include <string>

#include "stream/streaming_gkmeans.h"

namespace gkm {

/// Writes `model`'s full state to `path`. Aborts on I/O failure.
void SaveStreamCheckpoint(const std::string& path,
                          const StreamingGkMeans& model);

/// Restores a model from `path`. Aborts on any malformed input (missing
/// file, bad magic, unsupported version, invalid params) with the same
/// diagnostic TryLoadStreamCheckpoint would report.
StreamingGkMeans LoadStreamCheckpoint(const std::string& path);

/// Non-aborting load: validates the header, version and every deserialized
/// parameter (kappa/beam/seed/bootstrap invariants) *before* constructing
/// the model, returning std::nullopt with a diagnostic in `*error` (when
/// non-null) on a malformed file instead of tripping GKM_CHECK aborts deep
/// in the constructors. A file truncated mid-block still aborts (the
/// binary-io substrate treats short reads as fatal); deeper payload
/// corruption (e.g. invalid graph edges) is caught by the constructors'
/// own validation.
std::optional<StreamingGkMeans> TryLoadStreamCheckpoint(
    const std::string& path, std::string* error = nullptr);

}  // namespace gkm

#endif  // GKM_STREAM_CHECKPOINT_H_
