// Copyright 2026 The gkmeans Authors.

#include "stream/sharded_online_knn_graph.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm {
namespace {

constexpr std::uint32_t kNoSlot = RemovalState::kNoSlot;

// Per-shard params: identical knobs, decorrelated RNG streams. Shard 0
// keeps the caller's seed verbatim so S=1 reproduces the unsharded graph
// bit-for-bit (seeds feed splitmix64, so +s still yields independent
// streams).
OnlineGraphParams ShardParams(const OnlineGraphParams& base, std::size_t s) {
  OnlineGraphParams p = base;
  p.seed = base.seed + s;
  return p;
}

}  // namespace

std::size_t ShardedArenaBound(const std::size_t* rows_per_shard,
                              std::size_t num_shards) {
  std::size_t bound = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t rows = rows_per_shard[s];
    if (rows == 0) continue;
    bound = std::max(bound, (rows - 1) * num_shards + s + 1);
  }
  return bound;
}

ShardedOnlineKnnGraph::ShardedOnlineKnnGraph(std::size_t dim,
                                             const OnlineGraphParams& params)
    : params_(params) {
  GKM_CHECK_MSG(params.shards >= 1, "shard count must be positive");
  shards_.reserve(params.shards);
  for (std::size_t s = 0; s < params.shards; ++s) {
    shards_.emplace_back(dim, ShardParams(params, s));
  }
}

ShardedOnlineKnnGraph::ShardedOnlineKnnGraph(
    std::vector<OnlineShardParts> parts, const OnlineGraphParams& params)
    : params_(params) {
  GKM_CHECK_MSG(params.shards >= 1 && parts.size() == params.shards,
                "shard parts do not match the configured shard count");
  shards_.reserve(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    OnlineShardParts& part = parts[s];
    shards_.emplace_back(std::move(part.points), std::move(part.graph),
                         ShardParams(params, s), part.rng, part.seeds,
                         part.removal, std::move(part.sq8));
  }
}

std::uint32_t ShardedOnlineKnnGraph::ShardOf(const float* x) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return 0;
  // FNV-1a over the row's bytes: content-addressed, so the partition is a
  // pure function of the point itself.
  const std::size_t len = dim() * sizeof(float);
  const auto* p = reinterpret_cast<const unsigned char*>(x);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % num_shards);
}

std::size_t ShardedOnlineKnnGraph::size() const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].size();
  std::vector<std::size_t> rows(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) rows[s] = shards_[s].size();
  return ShardedArenaBound(rows.data(), num_shards);
}

std::size_t ShardedOnlineKnnGraph::num_alive() const {
  std::size_t alive = 0;
  for (const OnlineKnnGraph& shard : shards_) alive += shard.num_alive();
  return alive;
}

bool ShardedOnlineKnnGraph::IsAlive(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].IsAlive(id.slot);
}

bool ShardedOnlineKnnGraph::IsAliveUnlocked(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].IsAliveUnlocked(id.slot);
}

std::size_t ShardedOnlineKnnGraph::live_num_seeds() const {
  std::size_t live = 0;
  for (const OnlineKnnGraph& shard : shards_) {
    live = std::max(live, shard.live_num_seeds());
  }
  return live;
}

const float* ShardedOnlineKnnGraph::Point(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].PointPtr(id.slot);
}

void ShardedOnlineKnnGraph::RequantizeArena() {
  for (OnlineKnnGraph& shard : shards_) shard.RequantizeArena();
}

void ShardedOnlineKnnGraph::SortedNeighborsInto(
    std::uint32_t g, std::vector<Neighbor>& out) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  shards_[id.shard].graph().SortedNeighborsInto(id.slot, out);
  if (shards_.size() == 1) return;
  for (Neighbor& nb : out) nb.id = ToGlobal(id.shard, nb.id);
}

void ShardedOnlineKnnGraph::AppendNeighborIds(
    std::uint32_t g, std::vector<std::uint32_t>& out) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  for (const Neighbor& nb : shards_[id.shard].graph().NeighborsOf(id.slot)) {
    out.push_back(ToGlobal(id.shard, nb.id));
  }
}

std::uint32_t ShardedOnlineKnnGraph::InsertBatch(
    const Matrix& rows, ThreadPool* pool,
    std::vector<std::uint32_t>* touched,
    const std::vector<std::vector<std::uint32_t>>* seed_hints,
    std::vector<std::uint32_t>* assigned) {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) {
    // Single shard: global ids are slot ids — delegate with zero overhead
    // (and bit-identical behavior to the unsharded graph).
    return shards_[0].InsertBatch(rows, pool, touched, seed_hints, assigned);
  }
  GKM_CHECK_MSG(rows.cols() == dim(), "batch dimension mismatch");
  GKM_CHECK_MSG(seed_hints == nullptr || seed_hints->size() == rows.rows(),
                "one seed-hint vector per row required");
  const std::size_t total = rows.rows();
  if (total == 0) return kNoSlot;
  GKM_TRACE_SPAN("stream.shard.insert_batch");

  // Deterministic partition: input row indices per shard, in row order.
  std::vector<std::vector<std::uint32_t>> rows_of(num_shards);
  for (std::size_t r = 0; r < total; ++r) {
    rows_of[ShardOf(rows.Row(r))].push_back(static_cast<std::uint32_t>(r));
  }
  std::vector<Matrix> shard_rows(num_shards);
  std::vector<std::vector<std::vector<std::uint32_t>>> shard_hints;
  if (seed_hints != nullptr) shard_hints.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<std::uint32_t>& mine = rows_of[s];
    if (mine.empty()) continue;
    shard_rows[s].Reset(mine.size(), rows.cols());
    if (seed_hints != nullptr) shard_hints[s].resize(mine.size());
    for (std::size_t p = 0; p < mine.size(); ++p) {
      shard_rows[s].SetRow(p, rows.Row(mine[p]));
      if (seed_hints == nullptr) continue;
      // Hints are global ids; a walk can only enter its own shard's arena,
      // so foreign-shard hints are dropped and the rest become slots.
      for (const std::uint32_t h : (*seed_hints)[mine[p]]) {
        const GlobalId hid = GlobalId::Split(h, num_shards);
        if (hid.shard == s) shard_hints[s][p].push_back(hid.slot);
      }
    }
  }

  // Multi-writer phase: one writer thread per non-empty shard (the last
  // runs on the calling thread). Each writer commits under its own shard's
  // lock only — run_shard touches nothing but its shard `s` and the
  // per-shard output slots owned by that writer, so no cross-thread state
  // needs a capability here; walk fan-out additionally shares `pool`
  // across writers, which the per-call completion latches in ThreadPool
  // make safe.
  std::vector<std::vector<std::uint32_t>> shard_touched(num_shards);
  std::vector<std::vector<std::uint32_t>> shard_assigned(num_shards);
  auto run_shard = [&](std::size_t s) {
    shards_[s].InsertBatch(shard_rows[s], pool,
                           touched != nullptr ? &shard_touched[s] : nullptr,
                           seed_hints != nullptr ? &shard_hints[s] : nullptr,
                           &shard_assigned[s]);
  };
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!rows_of[s].empty()) active.push_back(s);
  }
  std::vector<std::thread> writers;
  writers.reserve(active.size() > 0 ? active.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < active.size(); ++i) {
    writers.emplace_back(run_shard, active[i]);
  }
  if (!active.empty()) run_shard(active.back());
  for (std::thread& w : writers) w.join();

  // Deterministic merge: assigned ids back into input row order, touched
  // ids translated and deduplicated globally.
  std::vector<std::uint32_t> global_assigned(total, kNoSlot);
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t p = 0; p < rows_of[s].size(); ++p) {
      global_assigned[rows_of[s][p]] =
          ToGlobal(static_cast<std::uint32_t>(s), shard_assigned[s][p]);
    }
  }
  if (assigned != nullptr) {
    assigned->insert(assigned->end(), global_assigned.begin(),
                     global_assigned.end());
  }
  if (touched != nullptr) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      for (const std::uint32_t id : shard_touched[s]) {
        touched->push_back(ToGlobal(static_cast<std::uint32_t>(s), id));
      }
    }
    std::sort(touched->begin(), touched->end());
    touched->erase(std::unique(touched->begin(), touched->end()),
                   touched->end());
  }
  return global_assigned[0];
}

void ShardedOnlineKnnGraph::Remove(std::uint32_t g,
                                   std::vector<std::uint32_t>* repaired) {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) {
    shards_[0].Remove(g, repaired);
    return;
  }
  const GlobalId id = GlobalId::Split(g, num_shards);
  if (repaired == nullptr) {
    shards_[id.shard].Remove(id.slot, nullptr);
    return;
  }
  std::vector<std::uint32_t> local;
  shards_[id.shard].Remove(id.slot, &local);
  for (const std::uint32_t r : local) {
    repaired->push_back(ToGlobal(id.shard, r));
  }
  std::sort(repaired->begin(), repaired->end());
  repaired->erase(std::unique(repaired->begin(), repaired->end()),
                  repaired->end());
}

void ShardedOnlineKnnGraph::CompactTombstones() {
  for (OnlineKnnGraph& shard : shards_) shard.CompactTombstones();
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnn(
    const float* q, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnn(q, topk, scratch);
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnn(
    const float* q, std::size_t topk, SearchScratch& scratch) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].SearchKnn(q, topk, scratch);
  GKM_TRACE_SPAN("serve.shard.search");
  // Sequential fan-out, one shard's reader lock at a time: the query never
  // holds a lock while waiting for another shard's, so a commit in shard s
  // delays it only for the moment it reads shard s. Merge by the Neighbor
  // (dist, id) ordering — deterministic for a fixed corpus.
  std::vector<Neighbor> merged;
  merged.reserve(num_shards * topk);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<Neighbor> part = shards_[s].SearchKnn(q, topk, scratch);
    for (const Neighbor& nb : part) {
      merged.push_back(
          Neighbor{ToGlobal(static_cast<std::uint32_t>(s), nb.id), nb.dist});
    }
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > topk) merged.resize(topk);
  return merged;
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnnInShard(
    std::size_t s, const float* q, std::size_t topk,
    SearchScratch& scratch) const {
  std::vector<Neighbor> out = shards_[s].SearchKnn(q, topk, scratch);
  if (shards_.size() == 1) return out;
  for (Neighbor& nb : out) {
    nb.id = ToGlobal(static_cast<std::uint32_t>(s), nb.id);
  }
  return out;
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnnBatch(queries, topk, scratch);
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk, SearchScratch& scratch) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].SearchKnnBatch(queries, topk, scratch);
  // One reader acquisition per shard per batch; per-shard batch results are
  // element-wise identical to per-query calls, so the per-query merge below
  // equals what SearchKnn would have returned.
  std::vector<std::vector<Neighbor>> merged(queries.rows());
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<std::vector<Neighbor>> part =
        shards_[s].SearchKnnBatch(queries, topk, scratch);
    for (std::size_t i = 0; i < part.size(); ++i) {
      for (const Neighbor& nb : part[i]) {
        merged[i].push_back(
            Neighbor{ToGlobal(static_cast<std::uint32_t>(s), nb.id), nb.dist});
      }
    }
  }
  for (std::vector<Neighbor>& m : merged) {
    std::sort(m.begin(), m.end());
    if (m.size() > topk) m.resize(topk);
  }
  return merged;
}

}  // namespace gkm
