// Copyright 2026 The gkmeans Authors.

#include "stream/sharded_online_knn_graph.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/kernels.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm {
namespace {

constexpr std::uint32_t kNoSlot = RemovalState::kNoSlot;

// Per-shard params: identical knobs, decorrelated RNG streams. Shard 0
// keeps the caller's seed verbatim so S=1 reproduces the unsharded graph
// bit-for-bit (seeds feed splitmix64, so +s still yields independent
// streams).
OnlineGraphParams ShardParams(const OnlineGraphParams& base, std::size_t s) {
  OnlineGraphParams p = base;
  p.seed = base.seed + s;
  return p;
}

}  // namespace

std::size_t ShardedArenaBound(const std::size_t* rows_per_shard,
                              std::size_t num_shards) {
  std::size_t bound = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t rows = rows_per_shard[s];
    if (rows == 0) continue;
    bound = std::max(bound, (rows - 1) * num_shards + s + 1);
  }
  return bound;
}

ShardedOnlineKnnGraph::ShardedOnlineKnnGraph(std::size_t dim,
                                             const OnlineGraphParams& params)
    : params_(params) {
  GKM_CHECK_MSG(params.shards >= 1, "shard count must be positive");
  shards_.reserve(params.shards);
  for (std::size_t s = 0; s < params.shards; ++s) {
    shards_.emplace_back(dim, ShardParams(params, s));
  }
}

ShardedOnlineKnnGraph::ShardedOnlineKnnGraph(
    std::vector<OnlineShardParts> parts, const OnlineGraphParams& params)
    : params_(params) {
  GKM_CHECK_MSG(params.shards >= 1 && parts.size() == params.shards,
                "shard parts do not match the configured shard count");
  shards_.reserve(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    OnlineShardParts& part = parts[s];
    shards_.emplace_back(std::move(part.points), std::move(part.graph),
                         ShardParams(params, s), part.rng, part.seeds,
                         part.removal, std::move(part.sq8),
                         std::move(part.mode_seeds));
  }
}

std::uint32_t ShardedOnlineKnnGraph::ShardOf(const float* x) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return 0;
  // FNV-1a over the row's bytes: content-addressed, so the partition is a
  // pure function of the point itself.
  const std::size_t len = dim() * sizeof(float);
  const auto* p = reinterpret_cast<const unsigned char*>(x);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % num_shards);
}

std::size_t ShardedOnlineKnnGraph::size() const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].size();
  std::vector<std::size_t> rows(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) rows[s] = shards_[s].size();
  return ShardedArenaBound(rows.data(), num_shards);
}

std::size_t ShardedOnlineKnnGraph::num_alive() const {
  std::size_t alive = 0;
  for (const OnlineKnnGraph& shard : shards_) alive += shard.num_alive();
  return alive;
}

bool ShardedOnlineKnnGraph::IsAlive(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].IsAlive(id.slot);
}

bool ShardedOnlineKnnGraph::IsAliveUnlocked(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].IsAliveUnlocked(id.slot);
}

std::size_t ShardedOnlineKnnGraph::live_num_seeds() const {
  std::size_t live = 0;
  for (const OnlineKnnGraph& shard : shards_) {
    live = std::max(live, shard.live_num_seeds());
  }
  return live;
}

const float* ShardedOnlineKnnGraph::Point(std::uint32_t g) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  return shards_[id.shard].PointPtr(id.slot);
}

void ShardedOnlineKnnGraph::RequantizeArena() {
  for (OnlineKnnGraph& shard : shards_) shard.RequantizeArena();
}

void ShardedOnlineKnnGraph::SortedNeighborsInto(
    std::uint32_t g, std::vector<Neighbor>& out) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  shards_[id.shard].graph().SortedNeighborsInto(id.slot, out);
  if (shards_.size() == 1) return;
  for (Neighbor& nb : out) nb.id = ToGlobal(id.shard, nb.id);
}

void ShardedOnlineKnnGraph::AppendNeighborIds(
    std::uint32_t g, std::vector<std::uint32_t>& out) const {
  const GlobalId id = GlobalId::Split(g, shards_.size());
  for (const Neighbor& nb : shards_[id.shard].graph().NeighborsOf(id.slot)) {
    out.push_back(ToGlobal(id.shard, nb.id));
  }
}

std::uint32_t ShardedOnlineKnnGraph::InsertBatch(
    const Matrix& rows, ThreadPool* pool,
    std::vector<std::uint32_t>* touched,
    const std::vector<std::vector<std::uint32_t>>* seed_hints,
    std::vector<std::uint32_t>* assigned,
    const std::vector<std::uint32_t>* placement,
    const std::vector<std::uint32_t>* modes) {
  const std::size_t num_shards = shards_.size();
  GKM_CHECK_MSG(placement == nullptr || placement->size() == rows.rows(),
                "one placement shard per row required");
  GKM_CHECK_MSG(modes == nullptr || modes->size() == rows.rows(),
                "one mode id per row required");
  if (num_shards == 1) {
    // Single shard: global ids are slot ids — delegate with zero overhead
    // (and bit-identical behavior to the unsharded graph).
    return shards_[0].InsertBatch(rows, pool, touched, seed_hints, assigned,
                                  modes);
  }
  GKM_CHECK_MSG(rows.cols() == dim(), "batch dimension mismatch");
  GKM_CHECK_MSG(seed_hints == nullptr || seed_hints->size() == rows.rows(),
                "one seed-hint vector per row required");
  const std::size_t total = rows.rows();
  if (total == 0) return kNoSlot;
  GKM_TRACE_SPAN("stream.shard.insert_batch");

  // Deterministic partition: input row indices per shard, in row order.
  // Explicit placement (cluster-routed assignment) wins over the content
  // hash; both are pure functions of checkpointed state, never of timing.
  std::vector<std::vector<std::uint32_t>> rows_of(num_shards);
  for (std::size_t r = 0; r < total; ++r) {
    std::uint32_t s;
    if (placement != nullptr) {
      s = (*placement)[r];
      GKM_CHECK_MSG(s < num_shards, "placement shard out of range");
    } else {
      s = ShardOf(rows.Row(r));
    }
    rows_of[s].push_back(static_cast<std::uint32_t>(r));
  }
  std::vector<Matrix> shard_rows(num_shards);
  std::vector<std::vector<std::vector<std::uint32_t>>> shard_hints;
  if (seed_hints != nullptr) shard_hints.resize(num_shards);
  std::vector<std::vector<std::uint32_t>> shard_modes;
  if (modes != nullptr) shard_modes.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<std::uint32_t>& mine = rows_of[s];
    if (mine.empty()) continue;
    shard_rows[s].Reset(mine.size(), rows.cols());
    if (seed_hints != nullptr) shard_hints[s].resize(mine.size());
    for (std::size_t p = 0; p < mine.size(); ++p) {
      shard_rows[s].SetRow(p, rows.Row(mine[p]));
      if (modes != nullptr) shard_modes[s].push_back((*modes)[mine[p]]);
      if (seed_hints == nullptr) continue;
      // Hints are global ids; a walk can only enter its own shard's arena,
      // so foreign-shard hints are dropped and the rest become slots.
      for (const std::uint32_t h : (*seed_hints)[mine[p]]) {
        const GlobalId hid = GlobalId::Split(h, num_shards);
        if (hid.shard == s) shard_hints[s][p].push_back(hid.slot);
      }
    }
  }

  // Multi-writer phase: one writer thread per non-empty shard (the last
  // runs on the calling thread). Each writer commits under its own shard's
  // lock only — run_shard touches nothing but its shard `s` and the
  // per-shard output slots owned by that writer, so no cross-thread state
  // needs a capability here; walk fan-out additionally shares `pool`
  // across writers, which the per-call completion latches in ThreadPool
  // make safe.
  std::vector<std::vector<std::uint32_t>> shard_touched(num_shards);
  std::vector<std::vector<std::uint32_t>> shard_assigned(num_shards);
  auto run_shard = [&](std::size_t s) {
    shards_[s].InsertBatch(shard_rows[s], pool,
                           touched != nullptr ? &shard_touched[s] : nullptr,
                           seed_hints != nullptr ? &shard_hints[s] : nullptr,
                           &shard_assigned[s],
                           modes != nullptr ? &shard_modes[s] : nullptr);
  };
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!rows_of[s].empty()) active.push_back(s);
  }
  std::vector<std::thread> writers;
  writers.reserve(active.size() > 0 ? active.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < active.size(); ++i) {
    writers.emplace_back(run_shard, active[i]);
  }
  if (!active.empty()) run_shard(active.back());
  for (std::thread& w : writers) w.join();

  // Deterministic merge: assigned ids back into input row order, touched
  // ids translated and deduplicated globally.
  std::vector<std::uint32_t> global_assigned(total, kNoSlot);
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t p = 0; p < rows_of[s].size(); ++p) {
      global_assigned[rows_of[s][p]] =
          ToGlobal(static_cast<std::uint32_t>(s), shard_assigned[s][p]);
    }
  }
  if (assigned != nullptr) {
    assigned->insert(assigned->end(), global_assigned.begin(),
                     global_assigned.end());
  }
  if (touched != nullptr) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      for (const std::uint32_t id : shard_touched[s]) {
        touched->push_back(ToGlobal(static_cast<std::uint32_t>(s), id));
      }
    }
    std::sort(touched->begin(), touched->end());
    touched->erase(std::unique(touched->begin(), touched->end()),
                   touched->end());
  }
  return global_assigned[0];
}

void ShardedOnlineKnnGraph::Remove(std::uint32_t g,
                                   std::vector<std::uint32_t>* repaired) {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) {
    shards_[0].Remove(g, repaired);
    return;
  }
  const GlobalId id = GlobalId::Split(g, num_shards);
  if (repaired == nullptr) {
    shards_[id.shard].Remove(id.slot, nullptr);
    return;
  }
  std::vector<std::uint32_t> local;
  shards_[id.shard].Remove(id.slot, &local);
  for (const std::uint32_t r : local) {
    repaired->push_back(ToGlobal(id.shard, r));
  }
  std::sort(repaired->begin(), repaired->end());
  repaired->erase(std::unique(repaired->begin(), repaired->end()),
                  repaired->end());
}

void ShardedOnlineKnnGraph::CompactTombstones() {
  for (OnlineKnnGraph& shard : shards_) shard.CompactTombstones();
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnn(
    const float* q, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnn(q, topk, scratch);
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnn(
    const float* q, std::size_t topk, SearchScratch& scratch) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].SearchKnn(q, topk, scratch);
  GKM_TRACE_SPAN("serve.shard.search");
  // Sequential fan-out, one shard's reader lock at a time: the query never
  // holds a lock while waiting for another shard's, so a commit in shard s
  // delays it only for the moment it reads shard s. Merge by the Neighbor
  // (dist, id) ordering — deterministic for a fixed corpus.
  std::vector<Neighbor> merged;
  merged.reserve(num_shards * topk);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<Neighbor> part = shards_[s].SearchKnn(q, topk, scratch);
    for (const Neighbor& nb : part) {
      merged.push_back(
          Neighbor{ToGlobal(static_cast<std::uint32_t>(s), nb.id), nb.dist});
    }
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > topk) merged.resize(topk);
  return merged;
}

std::optional<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnInShard(
    std::size_t s, const float* q, std::size_t topk,
    SearchScratch& scratch) const {
  // A stale or corrupt routing table would otherwise index past the shard
  // vector; answer "no such shard" instead of empty results (which read as
  // "shard holds nothing near q") or an abort.
  if (s >= shards_.size()) return std::nullopt;
  std::vector<Neighbor> out = shards_[s].SearchKnn(q, topk, scratch);
  if (shards_.size() == 1) return out;
  for (Neighbor& nb : out) {
    nb.id = ToGlobal(static_cast<std::uint32_t>(s), nb.id);
  }
  return out;
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnnBatch(queries, topk, scratch);
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatch(
    const Matrix& queries, std::size_t topk, SearchScratch& scratch) const {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) return shards_[0].SearchKnnBatch(queries, topk, scratch);
  // One reader acquisition per shard per batch; per-shard batch results are
  // element-wise identical to per-query calls, so the per-query merge below
  // equals what SearchKnn would have returned.
  std::vector<std::vector<Neighbor>> merged(queries.rows());
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<std::vector<Neighbor>> part =
        shards_[s].SearchKnnBatch(queries, topk, scratch);
    for (std::size_t i = 0; i < part.size(); ++i) {
      for (const Neighbor& nb : part[i]) {
        merged[i].push_back(
            Neighbor{ToGlobal(static_cast<std::uint32_t>(s), nb.id), nb.dist});
      }
    }
  }
  for (std::vector<Neighbor>& m : merged) {
    std::sort(m.begin(), m.end());
    if (m.size() > topk) m.resize(topk);
  }
  return merged;
}

void ShardedOnlineKnnGraph::SetRouter(
    std::shared_ptr<const ShardRouter> router) {
  if (router != nullptr) {
    GKM_CHECK_MSG(router->home.size() == router->active.size() &&
                      router->centroids.rows() == router->home.size(),
                  "router table shape mismatch");
    for (const std::uint32_t s : router->home) {
      GKM_CHECK_MSG(s < shards_.size(), "router home shard out of range");
    }
  }
  WriterMutexLock guard(publish_mu_);
  router_ = std::move(router);
}

std::shared_ptr<const ShardRouter> ShardedOnlineKnnGraph::router() const {
  ReaderMutexLock guard(publish_mu_);
  return router_;
}

std::size_t ShardedOnlineKnnGraph::RouteShards(const ShardRouter& router,
                                               const float* q,
                                               std::uint32_t out[2],
                                               std::vector<float>& dist) const {
  const std::size_t k = router.centroids.rows();
  if (k == 0) return 0;
  dist.resize(k);
  L2SqrBatch(q, router.centroids.Row(0), router.centroids.stride(), k, dim(),
             dist.data());
  // Nearest active cluster (lowest id on ties): its home shard is where
  // graph locality says ~all of q's neighbors live.
  std::size_t c1 = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (router.active[c] == 0) continue;
    if (c1 == k || dist[c] < dist[c1]) c1 = c;
  }
  if (c1 == k) return 0;
  const std::uint32_t s1 = router.home[c1];
  out[0] = s1;
  // Margin-guarded spill: the best active cluster homed on a DIFFERENT
  // shard. A query near a cluster boundary scores two clusters nearly
  // equally; when those clusters live on different shards, searching only
  // one would halve recall exactly where answers straddle the cut.
  std::size_t c2 = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (router.active[c] == 0 || router.home[c] == s1) continue;
    if (c2 == k || dist[c] < dist[c2]) c2 = c;
  }
  if (c2 != k &&
      static_cast<double>(dist[c2]) <=
          (1.0 + router.spill_margin) * static_cast<double>(dist[c1])) {
    out[1] = router.home[c2];
    return 2;
  }
  return 1;
}

std::vector<Neighbor> ShardedOnlineKnnGraph::MergeRouted(
    const std::uint32_t* shard_ids, std::vector<Neighbor>* parts,
    std::size_t count, std::size_t topk) const {
  std::vector<Neighbor> merged;
  if (count == 1) {
    merged = std::move(parts[0]);
    for (Neighbor& nb : merged) nb.id = ToGlobal(shard_ids[0], nb.id);
    if (merged.size() > topk) merged.resize(topk);
    return merged;
  }
  merged.reserve(count * topk);
  for (std::size_t i = 0; i < count; ++i) {
    for (const Neighbor& nb : parts[i]) {
      merged.push_back(Neighbor{ToGlobal(shard_ids[i], nb.id), nb.dist});
    }
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > topk) merged.resize(topk);
  return merged;
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnnRouted(
    const float* q, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnnRouted(q, topk, scratch);
}

std::vector<Neighbor> ShardedOnlineKnnGraph::SearchKnnRouted(
    const float* q, std::size_t topk, SearchScratch& scratch) const {
  const std::shared_ptr<const ShardRouter> router = this->router();
  if (router == nullptr || shards_.size() == 1) {
    return SearchKnn(q, topk, scratch);
  }
  GKM_TRACE_SPAN("serve.shard.search_routed");
  std::uint32_t targets[2];
  const std::size_t count =
      RouteShards(*router, q, targets, scratch.pending_dist);
  if (count == 0) return SearchKnn(q, topk, scratch);
  route_hits_.Add(1);
  GKM_COUNTER_ADD("serve.route.hit", 1);
  if (count == 2) {
    route_spills_.Add(1);
    GKM_COUNTER_ADD("serve.route.spill", 1);
  }
  std::vector<Neighbor> parts[2];
  for (std::size_t i = 0; i < count; ++i) {
    parts[i] = shards_[targets[i]].SearchKnn(q, topk, scratch);
  }
  return MergeRouted(targets, parts, count, topk);
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatchRouted(
    const Matrix& queries, std::size_t topk) const {
  thread_local SearchScratch scratch;
  return SearchKnnBatchRouted(queries, topk, scratch);
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatchRouted(
    const Matrix& queries, std::size_t topk, SearchScratch& scratch) const {
  // One router snapshot for the whole batch, then the per-query routed
  // path. Per-query shard locking (rather than one batch acquisition per
  // shard) is the point: most queries touch one shard, so the fan-out work
  // the merged batch would do simply never happens.
  const std::shared_ptr<const ShardRouter> router = this->router();
  if (router == nullptr || shards_.size() == 1) {
    return SearchKnnBatch(queries, topk, scratch);
  }
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    std::uint32_t targets[2];
    const std::size_t count =
        RouteShards(*router, queries.Row(i), targets, scratch.pending_dist);
    if (count == 0) {
      out[i] = SearchKnn(queries.Row(i), topk, scratch);
      continue;
    }
    route_hits_.Add(1);
    GKM_COUNTER_ADD("serve.route.hit", 1);
    if (count == 2) {
      route_spills_.Add(1);
      GKM_COUNTER_ADD("serve.route.spill", 1);
    }
    std::vector<Neighbor> parts[2];
    for (std::size_t t = 0; t < count; ++t) {
      parts[t] = shards_[targets[t]].SearchKnn(queries.Row(i), topk, scratch);
    }
    out[i] = MergeRouted(targets, parts, count, topk);
  }
  return out;
}

void ShardedOnlineKnnGraph::RefreshReplicas(std::size_t per_shard,
                                            std::uint64_t window) {
  if (per_shard == 0) {
    WriterMutexLock guard(publish_mu_);
    replicas_.reset();
    return;
  }
  GKM_TRACE_SPAN("stream.replica.refresh");
  auto table = std::make_shared<ReplicaTable>();
  table->per_shard = per_shard;
  table->window = window;
  table->router = router();
  table->graphs.reserve(shards_.size() * per_shard);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const OnlineKnnGraph& leader = shards_[s];
    // Snapshot the leader's checkpoint parts and restore-construct each
    // lane from them — the exact mechanism checkpoint resume uses, so a
    // replica's SearchKnn is element-wise identical to the leader's
    // against the same committed state (search draws its RNG from params
    // + arena size, both copied here). Ingest-caller context: the shard
    // is quiescent, which is what the parts accessors require.
    Sq8ArenaParts sq8;
    sq8.trained = leader.sq8_trained();
    if (sq8.trained) {
      sq8.rows = leader.sq8_norms().size();
      sq8.codes = leader.sq8_codes();
      sq8.norms = leader.sq8_norms();
      sq8.quant = leader.sq8_quantizer();
    }
    for (std::size_t r = 0; r < per_shard; ++r) {
      Sq8ArenaParts lane_sq8 = sq8;
      table->graphs.push_back(std::make_unique<OnlineKnnGraph>(
          leader.points(), leader.graph(), ShardParams(params_, s),
          leader.rng_state(), leader.seed_state(), leader.removal_state(),
          std::move(lane_sq8), leader.mode_seed_states()));
    }
  }
  GKM_COUNTER_ADD("stream.replica.refresh", 1);
  WriterMutexLock guard(publish_mu_);
  replicas_ = std::move(table);
}

std::shared_ptr<const ReplicaTable> ShardedOnlineKnnGraph::replica_table()
    const {
  ReaderMutexLock guard(publish_mu_);
  return replicas_;
}

std::vector<std::vector<Neighbor>> ShardedOnlineKnnGraph::SearchKnnBatchReplica(
    const Matrix& queries, std::size_t topk, SearchScratch& scratch) const {
  const std::shared_ptr<const ReplicaTable> table = replica_table();
  if (table == nullptr) {
    // No replicas published: answer from the leader, routed when a router
    // is installed (the common pre-bootstrap / replicas-off path).
    if (router() != nullptr && shards_.size() > 1) {
      return SearchKnnBatchRouted(queries, topk, scratch);
    }
    return SearchKnnBatch(queries, topk, scratch);
  }
  GKM_TRACE_SPAN("serve.shard.search_replica");
  const std::size_t num_shards = shards_.size();
  // Round-robin lane per batch: concurrent workers spread across lanes,
  // and because every lane of a generation is an identical copy, lane
  // choice is invisible in the results.
  const std::size_t lane =
      static_cast<std::size_t>(replica_lane_.Next()) % table->per_shard;
  auto lane_graph = [&](std::size_t s) -> const OnlineKnnGraph& {
    return *table->graphs[s * table->per_shard + lane];
  };
  replica_reads_.Add(queries.rows());
  GKM_COUNTER_ADD("serve.replica.reads",
                  static_cast<std::int64_t>(queries.rows()));
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    const float* q = queries.Row(i);
    std::uint32_t targets[2];
    std::size_t count = 0;
    if (table->router != nullptr && num_shards > 1) {
      count = RouteShards(*table->router, q, targets, scratch.pending_dist);
      if (count != 0) {
        route_hits_.Add(1);
        GKM_COUNTER_ADD("serve.route.hit", 1);
        if (count == 2) {
          route_spills_.Add(1);
          GKM_COUNTER_ADD("serve.route.spill", 1);
        }
      }
    }
    if (count == 0) {
      // Merged fallback over this lane's copies (routing off, or no
      // active cluster yet).
      std::vector<Neighbor> merged;
      merged.reserve(num_shards * topk);
      for (std::size_t s = 0; s < num_shards; ++s) {
        const std::vector<Neighbor> part =
            lane_graph(s).SearchKnn(q, topk, scratch);
        for (const Neighbor& nb : part) {
          merged.push_back(Neighbor{
              ToGlobal(static_cast<std::uint32_t>(s), nb.id), nb.dist});
        }
      }
      std::sort(merged.begin(), merged.end());
      if (merged.size() > topk) merged.resize(topk);
      out[i] = std::move(merged);
      continue;
    }
    std::vector<Neighbor> parts[2];
    for (std::size_t t = 0; t < count; ++t) {
      parts[t] = lane_graph(targets[t]).SearchKnn(q, topk, scratch);
    }
    out[i] = MergeRouted(targets, parts, count, topk);
  }
  return out;
}

}  // namespace gkm
