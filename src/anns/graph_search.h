// Copyright 2026 The gkmeans Authors.
// Greedy best-first ANN search over a KNN graph — the §4.3 application:
// "it takes less than 3ms to fulfill a query ... with its recall above
// 0.9". Standard GNNS-style beam search: maintain a pool of the best L
// candidates, repeatedly expand the closest unexpanded one through its
// graph neighbors, stop when the pool is saturated.

#ifndef GKM_ANNS_GRAPH_SEARCH_H_
#define GKM_ANNS_GRAPH_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "graph/knn_graph.h"

namespace gkm {

/// Options for graph-based ANN search.
struct SearchParams {
  std::size_t topk = 1;       ///< neighbors to return
  std::size_t beam_width = 64;///< candidate pool size L (recall/speed knob)
  std::size_t num_seeds = 16; ///< entry points per query (all force-expanded)
  std::uint64_t seed = 42;
};

/// Per-query diagnostics.
struct SearchStats {
  std::size_t distance_evals = 0;
  std::size_t hops = 0;
};

/// Graph-based approximate nearest neighbor searcher. The graph and base
/// vectors must stay alive for the searcher's lifetime.
class GraphSearcher {
 public:
  GraphSearcher(const Matrix& base, const KnnGraph& graph);

  /// Installs fixed entry points (base row ids). When set, every query
  /// scores all entry points and seeds the beam from the closest
  /// `num_seeds` of them instead of random nodes — on multi-modal data
  /// random entry misses the query's mode entirely, while a few hundred
  /// spread representatives (see SelectEntryPoints) roughly solve routing.
  void SetEntryPoints(std::vector<std::uint32_t> entries);

  /// Finds approximately the `params.topk` nearest base rows to `query`.
  /// Results are sorted ascending by distance.
  std::vector<Neighbor> Search(const float* query, const SearchParams& params,
                               SearchStats* stats = nullptr) const;

  /// Batch helper over a query matrix.
  std::vector<std::vector<Neighbor>> SearchAll(
      const Matrix& queries, const SearchParams& params) const;

 private:
  const Matrix& base_;
  std::uint32_t medoid_;  ///< entry point: row closest to the dataset mean
  std::vector<std::uint32_t> entries_;  ///< optional fixed entry points
  // Undirected adjacency (out-edges ∪ in-edges) in CSR form. A directed
  // KNN graph leaves every node that appears in nobody's top-k list (e.g.
  // outliers) with in-degree 0 and therefore unreachable; searching the
  // symmetrized graph removes that failure mode at O(n k) index cost.
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<std::uint32_t> adj_edges_;
};

/// Picks `count` well-spread entry points for GraphSearcher by clustering
/// `base` with a two-means tree and returning each cluster's medoid (the
/// member closest to the cluster mean). O(n d log count), deterministic.
std::vector<std::uint32_t> SelectEntryPoints(const Matrix& base,
                                             std::size_t count,
                                             std::uint64_t seed = 42);

}  // namespace gkm

#endif  // GKM_ANNS_GRAPH_SEARCH_H_
