// Copyright 2026 The gkmeans Authors.

#include "anns/graph_search.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/kernels.h"
#include "common/macros.h"
#include "common/top_k.h"
#include "kmeans/cluster_state.h"
#include "kmeans/two_means_tree.h"

namespace gkm {
namespace {

// Pool entry ordered by distance; `expanded` marks visited candidates.
struct PoolEntry {
  std::uint32_t id;
  float dist;
  bool expanded;
};

}  // namespace

GraphSearcher::GraphSearcher(const Matrix& base, const KnnGraph& graph)
    : base_(base), medoid_(0) {
  GKM_CHECK(base.rows() == graph.num_nodes());
  GKM_CHECK(base.rows() > 0);
  const std::size_t n = base.rows();

  // Symmetrize the graph into CSR adjacency (see header).
  std::vector<std::uint32_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : graph.NeighborsOf(i)) {
      ++degree[i];
      ++degree[nb.id];
    }
  }
  std::vector<std::uint32_t> raw_offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    raw_offsets[i + 1] = raw_offsets[i] + degree[i];
  }
  std::vector<std::uint32_t> raw_edges(raw_offsets[n]);
  std::vector<std::uint32_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : graph.NeighborsOf(i)) {
      raw_edges[cursor[i]++] = nb.id;
      raw_edges[cursor[nb.id]++] = static_cast<std::uint32_t>(i);
    }
  }
  // Sort + dedup each node's concatenated out/in list.
  adj_offsets_.assign(n + 1, 0);
  adj_edges_.clear();
  adj_edges_.reserve(raw_edges.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = raw_edges.begin() + raw_offsets[i];
    const auto hi = raw_edges.begin() + raw_offsets[i + 1];
    std::sort(lo, hi);
    for (auto it = lo; it != hi; ++it) {
      if (it == lo || *it != *(it - 1)) adj_edges_.push_back(*it);
    }
    adj_offsets_[i + 1] = static_cast<std::uint32_t>(adj_edges_.size());
  }

  // Medoid = row nearest to the global mean; a stable, query-independent
  // entry point that needs one O(n d) pass.
  const std::size_t d = base.cols();
  std::vector<double> mean(d, 0.0);
  for (std::size_t i = 0; i < base.rows(); ++i) {
    const float* x = base.Row(i);
    for (std::size_t j = 0; j < d; ++j) mean[j] += x[j];
  }
  std::vector<float> meanf(d);
  for (std::size_t j = 0; j < d; ++j) {
    meanf[j] = static_cast<float>(mean[j] / static_cast<double>(base.rows()));
  }
  medoid_ = static_cast<std::uint32_t>(NearestRowBatch(
      meanf.data(), base.Row(0), base.stride(), base.rows(), d));
}

std::vector<Neighbor> GraphSearcher::Search(const float* query,
                                            const SearchParams& params,
                                            SearchStats* stats) const {
  const std::size_t d = base_.cols();
  const std::size_t n = base_.rows();
  const std::size_t beam = std::max<std::size_t>(params.beam_width, params.topk);
  GKM_CHECK(params.topk > 0);

  // visited marker per node; allocated per query for thread-safety of
  // concurrent Search calls (n bits is cheap next to the distance work).
  std::vector<char> visited(n, 0);
  std::vector<PoolEntry> pool;
  pool.reserve(beam + 1);
  std::vector<std::uint32_t> pending;
  std::vector<const float*> pending_rows;
  std::vector<float> pending_dist;

  Rng rng(params.seed);
  auto offer = [&](std::uint32_t id, float dist) {
    if (stats != nullptr) ++stats->distance_evals;
    if (pool.size() == beam && dist >= pool.back().dist) return;
    const PoolEntry fresh{id, dist, false};
    auto pos = std::lower_bound(pool.begin(), pool.end(), fresh,
                                [](const PoolEntry& a, const PoolEntry& b) {
                                  return a.dist < b.dist;
                                });
    pool.insert(pos, fresh);
    if (pool.size() > beam) pool.pop_back();
  };
  auto try_add = [&](std::uint32_t id) {
    if (visited[id]) return;
    visited[id] = 1;
    offer(id, L2Sqr(query, base_.Row(id), d));
  };

  // Seed selection. With installed entry points: score them all, take the
  // closest num_seeds. Otherwise: medoid + random nodes. Every seed's
  // neighborhood is expanded immediately — a weak seed may be evicted from
  // the pool before the best-first loop reaches it, yet its neighborhood
  // may hold the path to the query's region.
  std::vector<std::uint32_t> seeds;
  if (!entries_.empty()) {
    // Entry points are scored with one gathered batch, then pushed in
    // entry order — the same TopK content as per-entry scoring.
    pending_rows.clear();
    for (const std::uint32_t e : entries_) pending_rows.push_back(base_.Row(e));
    pending_dist.resize(entries_.size());
    L2SqrBatchGather(query, pending_rows.data(), entries_.size(), d,
                     pending_dist.data());
    TopK nearest_entries(std::min(params.num_seeds, entries_.size()));
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      nearest_entries.Push(entries_[e], pending_dist[e]);
      if (stats != nullptr) ++stats->distance_evals;
    }
    for (const Neighbor& nb : nearest_entries.items()) seeds.push_back(nb.id);
  } else {
    seeds.push_back(medoid_);
    for (std::size_t s = 0; s + 1 < params.num_seeds; ++s) {
      seeds.push_back(static_cast<std::uint32_t>(rng.Index(n)));
    }
  }
  // Hop expansion: unvisited neighbors of the node are scored with one
  // gathered batch and offered in adjacency order — identical pool
  // evolution to per-neighbor try_add.
  auto expand = [&](std::uint32_t node) {
    if (stats != nullptr) ++stats->hops;
    pending.clear();
    pending_rows.clear();
    for (std::uint32_t p = adj_offsets_[node]; p < adj_offsets_[node + 1];
         ++p) {
      const std::uint32_t id = adj_edges_[p];
      if (visited[id]) continue;
      visited[id] = 1;
      pending.push_back(id);
      pending_rows.push_back(base_.Row(id));
    }
    pending_dist.resize(pending.size());
    L2SqrBatchGather(query, pending_rows.data(), pending.size(), d,
                     pending_dist.data());
    for (std::size_t p = 0; p < pending.size(); ++p) {
      offer(pending[p], pending_dist[p]);
    }
  };

  for (const std::uint32_t s : seeds) try_add(s);
  for (const std::uint32_t s : seeds) {
    expand(s);
    for (PoolEntry& e : pool) {
      if (e.id == s) e.expanded = true;
    }
  }

  // Best-first expansion until every pool entry has been expanded.
  for (;;) {
    std::size_t next = pool.size();
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (!pool[p].expanded) {
        next = p;
        break;
      }
    }
    if (next == pool.size()) break;
    pool[next].expanded = true;
    expand(pool[next].id);
  }

  std::vector<Neighbor> out;
  const std::size_t take = std::min(params.topk, pool.size());
  out.reserve(take);
  for (std::size_t p = 0; p < take; ++p) {
    out.push_back(Neighbor{pool[p].id, pool[p].dist});
  }
  return out;
}

void GraphSearcher::SetEntryPoints(std::vector<std::uint32_t> entries) {
  for (const std::uint32_t e : entries) GKM_CHECK(e < base_.rows());
  entries_ = std::move(entries);
}

std::vector<std::vector<Neighbor>> GraphSearcher::SearchAll(
    const Matrix& queries, const SearchParams& params) const {
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Search(queries.Row(q), params);
  }
  return out;
}

std::vector<std::uint32_t> SelectEntryPoints(const Matrix& base,
                                             std::size_t count,
                                             std::uint64_t seed) {
  GKM_CHECK(base.rows() > 0);
  count = std::min(count, base.rows());
  TwoMeansParams params;
  params.k = count;
  params.seed = seed;
  const std::vector<std::uint32_t> labels = TwoMeansTree(base, params);
  ClusterState state(base, labels, count);
  const Matrix centroids = state.Centroids();

  std::vector<std::uint32_t> medoid(count, 0);
  std::vector<float> best(count, std::numeric_limits<float>::max());
  for (std::size_t i = 0; i < base.rows(); ++i) {
    const std::uint32_t r = labels[i];
    const float dist = L2Sqr(base.Row(i), centroids.Row(r), base.cols());
    if (dist < best[r]) {
      best[r] = dist;
      medoid[r] = static_cast<std::uint32_t>(i);
    }
  }
  return medoid;
}

}  // namespace gkm
