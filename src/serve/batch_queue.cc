// Copyright 2026 The gkmeans Authors.
// SearchBatcher implementation. Wall-clock only bounds how long a query
// may wait (CondVar::WaitFor deadline); it never reaches the coalesced
// call or any model state, so serving latency policy cannot perturb
// results or checkpoints (docs/architecture.md determinism contract).

#include "serve/batch_queue.h"

#include "common/macros.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm::serve {

Admission SearchBatcher::TrySubmit(SearchJob job) {
  GKM_CHECK_MSG(job.queries.rows() > 0, "empty search job");
  GKM_CHECK_MSG(job.topk > 0, "search job without topk");
  const std::size_t rows = job.queries.rows();
  {
    MutexLock lock(mu_);
    if (stopped_) return Admission::kStopped;
    if (pending_rows_ + rows > policy_.max_pending) {
      GKM_COUNTER_ADD("serve.batcher.overloaded", 1);
      return Admission::kOverloaded;
    }
    Pending p;
    p.job = std::move(job);
    p.enqueue_ns = obs::MonotonicNanos();
    queue_.push_back(std::move(p));
    pending_rows_ += rows;
  }
  cv_.NotifyOne();
  return Admission::kAccepted;
}

bool SearchBatcher::FlushOnce() {
  std::vector<SearchJob> batch;
  std::size_t batch_rows = 0;
  {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() GKM_REQUIRES(mu_) {
      return stopped_ || !queue_.empty();
    });
    if (queue_.empty()) return false;  // stopped and drained

    // Wait out the coalescing window: full batch, expired delay bound
    // (measured from the OLDEST pending job), or stop — whichever first.
    // The deadline is recomputed each wake because the predicate can win
    // spuriously; stopped_ flushes immediately to drain fast.
    const std::int64_t deadline_ns =
        queue_.front().enqueue_ns + policy_.max_delay_us * 1000;
    while (!stopped_ && pending_rows_ < policy_.max_batch) {
      const std::int64_t now_ns = obs::MonotonicNanos();
      if (now_ns >= deadline_ns) break;
      cv_.WaitFor(mu_, std::chrono::nanoseconds(deadline_ns - now_ns),
                  [this]() GKM_REQUIRES(mu_) {
                    return stopped_ || pending_rows_ >= policy_.max_batch;
                  });
    }

    // Drain whole jobs up to max_batch rows (the last job may overshoot;
    // it is never split, so every job completes from exactly one flush).
    while (!queue_.empty() && batch_rows < policy_.max_batch) {
      batch_rows += queue_.front().job.queries.rows();
      batch.push_back(std::move(queue_.front().job));
      queue_.pop_front();
    }
    pending_rows_ -= batch_rows;

    // Multi-consumer race: while this worker waited out the delay bound
    // (mutex released inside WaitFor), another worker may have drained the
    // whole window. An empty wake is not a stop signal — go around again.
    if (batch.empty()) return !stopped_;
  }

  GKM_TRACE_SPAN("serve.batcher.flush");
  GKM_COUNTER_ADD("serve.batcher.flushes", 1);
  GKM_COUNTER_ADD("serve.batcher.coalesced_rows", batch_rows);
  GKM_HISTOGRAM_RECORD("serve.batcher.batch_rows", batch_rows);

  // Coalesce outside the lock: one search at the group's max top-k.
  const std::size_t dim = batch.front().queries.cols();
  std::uint32_t max_topk = 0;
  for (const SearchJob& job : batch) {
    GKM_CHECK_MSG(job.queries.cols() == dim, "mixed dims in one batch");
    if (job.topk > max_topk) max_topk = job.topk;
  }
  Matrix coalesced;
  coalesced.Reset(batch_rows, dim);
  std::size_t at = 0;
  for (const SearchJob& job : batch) {
    for (std::size_t r = 0; r < job.queries.rows(); ++r) {
      coalesced.SetRow(at++, job.queries.Row(r));
    }
  }

  std::vector<std::vector<Neighbor>> results = fn_(coalesced, max_topk);
  GKM_CHECK_MSG(results.size() == batch_rows, "search dropped queries");

  // Complete each job with its truncated slice, in submission order.
  at = 0;
  for (SearchJob& job : batch) {
    std::vector<std::vector<Neighbor>> slice(job.queries.rows());
    for (std::size_t r = 0; r < slice.size(); ++r) {
      slice[r] = std::move(results[at++]);
      if (slice[r].size() > job.topk) slice[r].resize(job.topk);
    }
    job.done(std::move(slice));
  }
  return true;
}

void SearchBatcher::Stop() {
  {
    MutexLock lock(mu_);
    stopped_ = true;
  }
  cv_.NotifyAll();
}

std::size_t SearchBatcher::pending_rows() const {
  MutexLock lock(mu_);
  return pending_rows_;
}

}  // namespace gkm::serve
