// Copyright 2026 The gkmeans Authors.
// GKMP codec implementation. See protocol.h for the wire grammar and the
// untrusted-input contract; docs/serving.md for the human-readable spec.

#include "serve/protocol.h"

#include <cstring>

#include "common/macros.h"

namespace gkm::serve {
namespace {

// Caps on decoded shape fields, enforced before any allocation. The
// payload byte budget (kMaxPayloadBytes) already bounds total memory; the
// topk cap additionally bounds what a search request can make the server
// allocate per result list.
constexpr std::uint32_t kMaxTopK = 1u << 16;

// --- little-endian scalar append/read over byte buffers --------------------
// The host types are memcpy'd, matching io::Write/ReadRaw: the library's
// wire formats are host-endian (little-endian on every supported target).

template <typename T>
void Append(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

void AppendBytes(std::vector<std::uint8_t>& out, const void* p,
                 std::size_t n) {
  const std::size_t at = out.size();
  out.resize(at + n);
  if (n > 0) std::memcpy(out.data() + at, p, n);
}

/// Cursor over a frame payload: every read is bounds-checked against the
/// bytes actually present, and failure latches — the payload analogue of
/// io::Reader.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - off_; }

  template <typename T>
  bool Read(T* out) {
    if (!ok_ || n_ - off_ < sizeof(T)) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, p_ + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* dst, std::size_t len) {
    if (!ok_ || n_ - off_ < len) {
      ok_ = false;
      return false;
    }
    if (len > 0) std::memcpy(dst, p_ + off_, len);
    off_ += len;
    return true;
  }

  /// Reads `rows x dim` floats into a Matrix (rows padded by Matrix).
  bool ReadRows(Matrix* out, std::uint32_t rows, std::uint32_t dim) {
    // Compare element counts, not byte counts: rows*dim*4 can wrap even
    // in 64 bits when both fields are hostile (2^31 x 2^31).
    const std::uint64_t elems = static_cast<std::uint64_t>(rows) * dim;
    if (!ok_ || elems > remaining() / sizeof(float)) {
      ok_ = false;
      return false;
    }
    out->Reset(rows, dim);
    for (std::uint32_t r = 0; r < rows; ++r) {
      ReadBytes(out->Row(r), dim * sizeof(float));
    }
    return ok_;
  }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

const char* ValidateHeader(std::uint32_t magic, std::uint8_t version,
                           std::uint8_t opcode, std::uint32_t payload_len) {
  if (magic != kProtocolMagic) return "bad frame magic";
  if (version != kProtocolVersion) return "unsupported protocol version";
  if (!IsKnownOpcode(opcode)) return "unknown opcode";
  if (payload_len > kMaxPayloadBytes) return "payload length exceeds limit";
  return nullptr;
}

/// Shared search/batch-search payload body after the topk field.
const char* DecodeQueries(PayloadReader& in, std::uint32_t count,
                          SearchRequest* out) {
  std::uint32_t dim = 0;
  if (!in.Read(&dim)) return "truncated search payload";
  if (count == 0) return "empty query batch";
  if (dim == 0) return "zero query dimension";
  if (!in.ReadRows(&out->queries, count, dim)) {
    return "search payload shorter than its query shape";
  }
  if (in.remaining() != 0) return "trailing bytes after search payload";
  return nullptr;
}

void AppendNeighborList(std::vector<std::uint8_t>& out,
                        const std::vector<Neighbor>& list) {
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(list.size()));
  for (const Neighbor& nb : list) {
    Append<std::uint32_t>(out, nb.id);
    Append<float>(out, nb.dist);
  }
}

}  // namespace

bool IsKnownOpcode(std::uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kSearch:
    case Opcode::kBatchSearch:
    case Opcode::kInsert:
    case Opcode::kRemove:
    case Opcode::kStats:
    case Opcode::kShutdown:
    case Opcode::kSearchResult:
    case Opcode::kBatchSearchResult:
    case Opcode::kInsertResult:
    case Opcode::kRemoveResult:
    case Opcode::kStatsResult:
    case Opcode::kShutdownAck:
    case Opcode::kError:
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Frame level.
// ---------------------------------------------------------------------------

void AppendFrame(std::vector<std::uint8_t>& out, const Frame& f) {
  GKM_CHECK_MSG(f.payload.size() <= kMaxPayloadBytes,
                "frame payload exceeds protocol limit");
  Append<std::uint32_t>(out, kProtocolMagic);
  Append<std::uint8_t>(out, f.version);
  Append<std::uint8_t>(out, static_cast<std::uint8_t>(f.opcode));
  Append<std::uint64_t>(out, f.request_id);
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(f.payload.size()));
  AppendBytes(out, f.payload.data(), f.payload.size());
}

void FrameParser::Feed(const std::uint8_t* data, std::size_t n) {
  if (error_ != nullptr || n == 0) return;
  // Compact once the consumed prefix dominates, so the buffer stays
  // bounded by one frame plus one read's worth of bytes.
  if (head_ > 0 && head_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Status FrameParser::Next(Frame* out) {
  if (error_ != nullptr) return Status::kError;
  if (buffered() < kFrameHeaderBytes) return Status::kNeedMore;

  const std::uint8_t* h = buf_.data() + head_;
  std::uint32_t magic = 0, payload_len = 0;
  std::uint64_t request_id = 0;
  std::memcpy(&magic, h, 4);
  const std::uint8_t version = h[4];
  const std::uint8_t opcode = h[5];
  std::memcpy(&request_id, h + 6, 8);
  std::memcpy(&payload_len, h + 14, 4);

  // Header validation runs before waiting for the payload: a size-lying
  // header fails now instead of making the peer stream 4 GiB first.
  if (const char* why = ValidateHeader(magic, version, opcode, payload_len)) {
    return Fail(why);
  }
  if (buffered() < kFrameHeaderBytes + payload_len) return Status::kNeedMore;

  out->version = version;
  out->opcode = static_cast<Opcode>(opcode);
  out->request_id = request_id;
  out->payload.assign(h + kFrameHeaderBytes,
                      h + kFrameHeaderBytes + payload_len);
  head_ += kFrameHeaderBytes + payload_len;
  return Status::kFrame;
}

bool TryReadFrame(io::Reader& in, Frame* out, const char** error) {
  const char* scratch = nullptr;
  const char** err = error != nullptr ? error : &scratch;
  *err = nullptr;
  if (!in.ok()) {
    *err = "stream already failed";
    return false;
  }
  if (in.remaining() == 0) return false;  // clean EOF, *err stays nullptr

  std::uint32_t magic = 0, payload_len = 0;
  std::uint64_t request_id = 0;
  std::uint8_t version = 0, opcode = 0;
  if (!in.Read(&magic) || !in.Read(&version) || !in.Read(&opcode) ||
      !in.Read(&request_id) || !in.Read(&payload_len)) {
    *err = "truncated frame header";
    return false;
  }
  if (const char* why = ValidateHeader(magic, version, opcode, payload_len)) {
    *err = why;
    return false;
  }
  out->version = version;
  out->opcode = static_cast<Opcode>(opcode);
  out->request_id = request_id;
  if (!in.ReadVector(out->payload, payload_len)) {
    *err = "frame payload shorter than its header's length";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request encoders/decoders.
// ---------------------------------------------------------------------------

Frame MakeSearchRequest(std::uint64_t request_id, std::uint32_t topk,
                        const float* query, std::uint32_t dim) {
  Frame f;
  f.opcode = Opcode::kSearch;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload, topk);
  Append<std::uint32_t>(f.payload, dim);
  AppendBytes(f.payload, query, static_cast<std::size_t>(dim) * sizeof(float));
  return f;
}

Frame MakeBatchSearchRequest(std::uint64_t request_id, std::uint32_t topk,
                             const Matrix& queries) {
  Frame f;
  f.opcode = Opcode::kBatchSearch;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload, topk);
  Append<std::uint32_t>(f.payload, static_cast<std::uint32_t>(queries.rows()));
  Append<std::uint32_t>(f.payload, static_cast<std::uint32_t>(queries.cols()));
  for (std::size_t r = 0; r < queries.rows(); ++r) {
    AppendBytes(f.payload, queries.Row(r), queries.cols() * sizeof(float));
  }
  return f;
}

const char* DecodeSearchRequest(const Frame& f, SearchRequest* out) {
  if (f.opcode != Opcode::kSearch && f.opcode != Opcode::kBatchSearch) {
    return "frame is not a search request";
  }
  PayloadReader in(f.payload.data(), f.payload.size());
  if (!in.Read(&out->topk)) return "truncated search payload";
  if (out->topk == 0 || out->topk > kMaxTopK) return "topk out of range";
  std::uint32_t count = 1;
  if (f.opcode == Opcode::kBatchSearch && !in.Read(&count)) {
    return "truncated search payload";
  }
  return DecodeQueries(in, count, out);
}

Frame MakeInsertRequest(std::uint64_t request_id, const Matrix& rows) {
  Frame f;
  f.opcode = Opcode::kInsert;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload, static_cast<std::uint32_t>(rows.rows()));
  Append<std::uint32_t>(f.payload, static_cast<std::uint32_t>(rows.cols()));
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    AppendBytes(f.payload, rows.Row(r), rows.cols() * sizeof(float));
  }
  return f;
}

const char* DecodeInsertRequest(const Frame& f, InsertRequest* out) {
  if (f.opcode != Opcode::kInsert) return "frame is not an insert request";
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint32_t count = 0, dim = 0;
  if (!in.Read(&count) || !in.Read(&dim)) return "truncated insert payload";
  if (count == 0) return "empty insert window";
  if (dim == 0) return "zero insert dimension";
  if (!in.ReadRows(&out->rows, count, dim)) {
    return "insert payload shorter than its row shape";
  }
  if (in.remaining() != 0) return "trailing bytes after insert payload";
  return nullptr;
}

Frame MakeRemoveRequest(std::uint64_t request_id,
                        const std::vector<std::uint32_t>& ids) {
  Frame f;
  f.opcode = Opcode::kRemove;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload, static_cast<std::uint32_t>(ids.size()));
  AppendBytes(f.payload, ids.data(), ids.size() * sizeof(std::uint32_t));
  return f;
}

const char* DecodeRemoveRequest(const Frame& f, RemoveRequest* out) {
  if (f.opcode != Opcode::kRemove) return "frame is not a remove request";
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint32_t count = 0;
  if (!in.Read(&count)) return "truncated remove payload";
  if (count == 0) return "empty remove request";
  if (in.remaining() != static_cast<std::size_t>(count) * sizeof(std::uint32_t)) {
    return "remove payload does not match its id count";
  }
  out->ids.resize(count);
  in.ReadBytes(out->ids.data(), count * sizeof(std::uint32_t));
  return in.ok() ? nullptr : "truncated remove payload";
}

Frame MakeStatsRequest(std::uint64_t request_id) {
  Frame f;
  f.opcode = Opcode::kStats;
  f.request_id = request_id;
  return f;
}

Frame MakeShutdownRequest(std::uint64_t request_id) {
  Frame f;
  f.opcode = Opcode::kShutdown;
  f.request_id = request_id;
  return f;
}

const char* DecodeEmptyPayload(const Frame& f) {
  return f.payload.empty() ? nullptr : "unexpected payload bytes";
}

// ---------------------------------------------------------------------------
// Response encoders/decoders.
// ---------------------------------------------------------------------------

Frame MakeSearchResponse(std::uint64_t request_id, bool batch,
                         const SearchResponse& resp) {
  Frame f;
  f.opcode = batch ? Opcode::kBatchSearchResult : Opcode::kSearchResult;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload,
                        static_cast<std::uint32_t>(resp.results.size()));
  for (const std::vector<Neighbor>& list : resp.results) {
    AppendNeighborList(f.payload, list);
  }
  return f;
}

const char* DecodeSearchResponse(const Frame& f, SearchResponse* out) {
  if (f.opcode != Opcode::kSearchResult &&
      f.opcode != Opcode::kBatchSearchResult) {
    return "frame is not a search response";
  }
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint32_t count = 0;
  if (!in.Read(&count)) return "truncated search response";
  // Each query contributes at least its u32 list length — the
  // pre-allocation guard for the outer vector.
  if (count > in.remaining() / sizeof(std::uint32_t)) {
    return "search response count exceeds payload";
  }
  out->results.assign(count, {});
  for (std::uint32_t q = 0; q < count; ++q) {
    std::uint32_t k = 0;
    if (!in.Read(&k)) return "truncated search response";
    if (k > in.remaining() / (sizeof(std::uint32_t) + sizeof(float))) {
      return "neighbor count exceeds payload";
    }
    std::vector<Neighbor>& list = out->results[q];
    list.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      if (!in.Read(&list[i].id) || !in.Read(&list[i].dist)) {
        return "truncated neighbor list";
      }
    }
  }
  if (in.remaining() != 0) return "trailing bytes after search response";
  return nullptr;
}

Frame MakeInsertResponse(std::uint64_t request_id,
                         const InsertResponse& resp) {
  Frame f;
  f.opcode = Opcode::kInsertResult;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload,
                        static_cast<std::uint32_t>(resp.assigned.size()));
  AppendBytes(f.payload, resp.assigned.data(),
              resp.assigned.size() * sizeof(std::uint32_t));
  return f;
}

const char* DecodeInsertResponse(const Frame& f, InsertResponse* out) {
  if (f.opcode != Opcode::kInsertResult) {
    return "frame is not an insert response";
  }
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint32_t count = 0;
  if (!in.Read(&count)) return "truncated insert response";
  if (in.remaining() != static_cast<std::size_t>(count) * sizeof(std::uint32_t)) {
    return "insert response does not match its id count";
  }
  out->assigned.resize(count);
  in.ReadBytes(out->assigned.data(), count * sizeof(std::uint32_t));
  return in.ok() ? nullptr : "truncated insert response";
}

Frame MakeRemoveResponse(std::uint64_t request_id,
                         const RemoveResponse& resp) {
  Frame f;
  f.opcode = Opcode::kRemoveResult;
  f.request_id = request_id;
  Append<std::uint32_t>(f.payload,
                        static_cast<std::uint32_t>(resp.removed.size()));
  AppendBytes(f.payload, resp.removed.data(), resp.removed.size());
  return f;
}

const char* DecodeRemoveResponse(const Frame& f, RemoveResponse* out) {
  if (f.opcode != Opcode::kRemoveResult) {
    return "frame is not a remove response";
  }
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint32_t count = 0;
  if (!in.Read(&count)) return "truncated remove response";
  if (in.remaining() != count) {
    return "remove response does not match its flag count";
  }
  out->removed.resize(count);
  in.ReadBytes(out->removed.data(), count);
  return in.ok() ? nullptr : "truncated remove response";
}

Frame MakeStatsResponse(std::uint64_t request_id, const StatsResponse& resp) {
  Frame f;
  f.opcode = Opcode::kStatsResult;
  f.request_id = request_id;
  Append<std::uint64_t>(f.payload, resp.points_seen);
  Append<std::uint64_t>(f.payload, resp.points_alive);
  Append<std::uint64_t>(f.payload, resp.windows);
  Append<std::uint64_t>(f.payload, resp.searches);
  Append<std::uint64_t>(f.payload, resp.inserts);
  Append<std::uint64_t>(f.payload, resp.removes);
  Append<std::uint64_t>(f.payload, resp.overloaded);
  Append<std::uint32_t>(f.payload, resp.dim);
  Append<std::uint32_t>(f.payload, resp.shards);
  Append<std::uint32_t>(f.payload, resp.search_queue_depth);
  Append<std::uint32_t>(f.payload, resp.ingest_queue_depth);
  Append<std::uint8_t>(f.payload, resp.bootstrapped);
  return f;
}

const char* DecodeStatsResponse(const Frame& f, StatsResponse* out) {
  if (f.opcode != Opcode::kStatsResult) {
    return "frame is not a stats response";
  }
  PayloadReader in(f.payload.data(), f.payload.size());
  const bool ok = in.Read(&out->points_seen) && in.Read(&out->points_alive) &&
                  in.Read(&out->windows) && in.Read(&out->searches) &&
                  in.Read(&out->inserts) && in.Read(&out->removes) &&
                  in.Read(&out->overloaded) && in.Read(&out->dim) &&
                  in.Read(&out->shards) && in.Read(&out->search_queue_depth) &&
                  in.Read(&out->ingest_queue_depth) &&
                  in.Read(&out->bootstrapped);
  if (!ok) return "truncated stats response";
  if (in.remaining() != 0) return "trailing bytes after stats response";
  return nullptr;
}

Frame MakeShutdownAck(std::uint64_t request_id) {
  Frame f;
  f.opcode = Opcode::kShutdownAck;
  f.request_id = request_id;
  return f;
}

Frame MakeErrorResponse(std::uint64_t request_id, ErrorCode code,
                        const std::string& message) {
  Frame f;
  f.opcode = Opcode::kError;
  f.request_id = request_id;
  const std::uint16_t len = static_cast<std::uint16_t>(
      message.size() < 0xffff ? message.size() : 0xffff);
  const std::uint16_t wire_code = static_cast<std::uint16_t>(code);
  f.payload.resize(4 + static_cast<std::size_t>(len));
  std::memcpy(f.payload.data(), &wire_code, 2);
  std::memcpy(f.payload.data() + 2, &len, 2);
  if (len > 0) std::memcpy(f.payload.data() + 4, message.data(), len);
  return f;
}

const char* DecodeErrorResponse(const Frame& f, ErrorResponse* out) {
  if (f.opcode != Opcode::kError) return "frame is not an error response";
  PayloadReader in(f.payload.data(), f.payload.size());
  std::uint16_t code = 0, len = 0;
  if (!in.Read(&code) || !in.Read(&len)) return "truncated error response";
  if (in.remaining() != len) {
    return "error response does not match its message length";
  }
  out->code = static_cast<ErrorCode>(code);
  out->message.resize(len);
  in.ReadBytes(out->message.data(), len);
  return in.ok() ? nullptr : "truncated error response";
}

}  // namespace gkm::serve
