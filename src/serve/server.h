// Copyright 2026 The gkmeans Authors.
// The serving daemon: a long-running query/ingest front-end over
// StreamingGkMeans / ShardedOnlineKnnGraph speaking the GKMP protocol
// (serve/protocol.h) on loopback-or-LAN TCP.
//
// Thread model (docs/serving.md#threads):
//
//   accept thread     — accepts connections, one reader thread each
//   connection threads— parse frames (FrameParser), decode, dispatch;
//                       answer stats inline, enqueue search/ingest
//   search workers    — loop SearchBatcher::FlushOnce: coalesce
//                       concurrent queries into one batched search per
//                       flush (amortizing the shard rwlocks and filling
//                       SIMD lanes), complete each query with its
//                       truncated slice. With routed placement + read
//                       replicas, several workers answer from replica
//                       lanes without touching the leader's locks
//   ingest worker     — THE only model mutator: pops accepted insert/
//                       remove ops in queue order, journals each to the
//                       delta log BEFORE applying, then answers. The
//                       model is a pure function of the accepted-op
//                       sequence, which is what makes a restarted server
//                       answer bit-identically (see Lifecycle below).
//
// Back-pressure: both queues are bounded and admission is non-blocking —
// a full queue answers ERROR/kOverloaded immediately (the client saw it:
// no silent drops), and an accepted op is always applied and answered.
//
// Lifecycle: Start() resumes from checkpoint_base(+journal) when the
// base exists, else boots a fresh model. Shutdown() stops admission,
// drains both queues (accepted work still completes), folds the journal
// into a fresh base (StreamDeltaLog::Compact), then closes connections.
// A server restarted from those files serves search results
// byte-identical to one that never stopped.

#ifndef GKM_SERVE_SERVER_H_
#define GKM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "serve/batch_queue.h"
#include "serve/protocol.h"
#include "stream/checkpoint.h"
#include "stream/streaming_gkmeans.h"

namespace gkm::serve {

struct ServerOptions {
  /// Model shape. `dim` is required for a fresh boot and must match the
  /// checkpoint on resume.
  std::size_t dim = 0;
  StreamingGkMeansParams params;

  /// Micro-batching policy of the search path.
  BatchPolicy batch_policy;

  /// Admission cap on queued ingest ops (windows + removal batches).
  std::size_t ingest_queue_capacity = 64;

  /// Search worker threads draining the batcher. One is the classic
  /// single-reader; more only pay off when the model serves lock-free
  /// reads — routed placement plus read replicas (params.read_replicas >
  /// 0), where each flush answers from a replica lane instead of the
  /// writers' shared locks.
  std::size_t search_workers = 1;

  /// Durability: when `checkpoint_base` is non-empty the server resumes
  /// from base(+journal) if the base exists, journals every accepted op
  /// before applying it, and compacts on shutdown. Both paths must be
  /// set together.
  std::string checkpoint_base;
  std::string checkpoint_journal;
  /// Auto-compaction consulted after each applied window (0s = manual).
  DeltaCompactionPolicy compaction;

  /// TCP port to bind on 127.0.0.1 (0 = ephemeral; see Server::port()).
  int port = 0;
};

/// One running daemon. Construction via Start(); destruction shuts down.
class Server {
 public:
  /// Boots the model (fresh or checkpoint resume), binds the listener and
  /// starts every thread. nullptr + `*error` on bind/resume failure.
  static std::unique_ptr<Server> Start(const ServerOptions& opts,
                                       std::string* error);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound port (useful with opts.port == 0).
  int port() const { return port_; }

  /// Blocks until a client's kShutdown request is accepted (or Shutdown()
  /// is called locally). The caller then runs Shutdown() — the daemon
  /// main-loop idiom: Start(); WaitForShutdownRequest(); Shutdown().
  void WaitForShutdownRequest();

  /// Graceful stop: refuse new work, drain accepted work, checkpoint,
  /// close connections, join every thread. Idempotent.
  void Shutdown();

  /// Server statistics snapshot (same data the kStats opcode reports).
  StatsResponse Stats() const;

 private:
  struct Connection;
  struct IngestOp;

  Server() = default;

  bool Init(const ServerOptions& opts, std::string* error);
  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, const Frame& f);
  void SearchWorkerLoop();
  void IngestWorkerLoop();
  void ApplyInsert(IngestOp& op);
  void ApplyRemove(IngestOp& op);

  ServerOptions opts_;
  std::optional<StreamingGkMeans> model_;
  std::optional<StreamDeltaLog> delta_log_;  // engaged iff durable

  int listen_fd_ = -1;
  int port_ = 0;

  std::optional<SearchBatcher> batcher_;
  std::optional<BoundedQueue<IngestOp>> ingest_queue_;

  std::thread accept_thread_;
  std::vector<std::thread> search_workers_;
  std::thread ingest_worker_;

  Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GKM_GUARDED_BY(conns_mu_);

  Mutex lifecycle_mu_;
  CondVar lifecycle_cv_;
  bool shutdown_requested_ GKM_GUARDED_BY(lifecycle_mu_) = false;
  bool teardown_started_ GKM_GUARDED_BY(lifecycle_mu_) = false;
  bool shutdown_done_ GKM_GUARDED_BY(lifecycle_mu_) = false;

  // Stats counters. The model's own windows_seen()/bootstrapped() are
  // ingest-thread-owned, so the server mirrors them into atomics the
  // stats path may read from any connection thread.
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> removes_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<bool> bootstrapped_{false};
};

}  // namespace gkm::serve

#endif  // GKM_SERVE_SERVER_H_
