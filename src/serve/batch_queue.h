// Copyright 2026 The gkmeans Authors.
// The serving daemon's admission-controlled queues, built as pure
// in-process components (no sockets): a generic bounded MPSC queue for
// ingest ops and a micro-batching search queue that coalesces concurrent
// queries into one SearchKnnBatch-shaped call under a max-batch /
// max-delay policy.
//
// Back-pressure contract (docs/serving.md): admission is non-blocking.
// When a queue is at capacity, TrySubmit/TryPush return a refusal the
// caller turns into an explicit OVERLOADED response — requests are never
// silently dropped and producers are never blocked by a slow consumer.
//
// Determinism: the batcher only *groups* queries — each flush runs the
// underlying search once at the max top-k of the group and truncates per
// query, which is exact because a k-prefix of a k'-neighbor list (k<=k')
// equals the k-neighbor list (the search's candidate pool is
// topk-independent; see docs/serving.md#batching). Queries never mutate
// model state, so batching composition cannot perturb checkpoints.

#ifndef GKM_SERVE_BATCH_QUEUE_H_
#define GKM_SERVE_BATCH_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/mutex.h"
#include "common/top_k.h"

namespace gkm::serve {

/// Admission verdicts shared by both queues.
enum class Admission {
  kAccepted,   ///< queued; the consumer will complete it
  kOverloaded, ///< at capacity — answer OVERLOADED, retry later
  kStopped,    ///< shutting down — answer SHUTTING_DOWN
};

/// Bounded multi-producer single-consumer FIFO. Producers never block:
/// TryPush refuses beyond `capacity`. The consumer blocks in PopBlocking
/// until an item or stop arrives; after Stop() the queue drains —
/// already-accepted items are still handed out, so an accepted op is
/// never silently dropped.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  Admission TryPush(T item) {
    {
      MutexLock lock(mu_);
      if (stopped_) return Admission::kStopped;
      if (items_.size() >= capacity_) return Admission::kOverloaded;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return Admission::kAccepted;
  }

  /// Blocks until an item is available (true) or the queue is stopped AND
  /// empty (false). Items accepted before Stop() keep coming out.
  bool PopBlocking(T* out) {
    MutexLock lock(mu_);
    cv_.Wait(mu_, [this]() GKM_REQUIRES(mu_) {
      return stopped_ || !items_.empty();
    });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void Stop() {
    {
      MutexLock lock(mu_);
      stopped_ = true;
    }
    cv_.NotifyAll();
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ GKM_GUARDED_BY(mu_);
  bool stopped_ GKM_GUARDED_BY(mu_) = false;
};

/// Coalescing policy. A flush fires as soon as `max_batch` query rows are
/// pending, or `max_delay_us` after the OLDEST pending row arrived —
/// whichever comes first — so trickle traffic is never parked longer
/// than the delay bound and bursts fill SIMD lanes.
struct BatchPolicy {
  std::size_t max_batch = 64;      ///< query rows per coalesced search
  std::int64_t max_delay_us = 500; ///< oldest-row wait bound
  std::size_t max_pending = 4096;  ///< admission cap on queued rows
};

/// One pending search: `queries` rows at `topk`, completed exactly once
/// via `done` (from the flushing thread) with one Neighbor list per row.
struct SearchJob {
  Matrix queries;
  std::uint32_t topk = 0;
  std::function<void(std::vector<std::vector<Neighbor>>)> done;
};

/// Micro-batching search queue. Producers TrySubmit jobs; consumers loop
/// FlushOnce, which blocks per the policy, coalesces whole jobs into a
/// single Matrix, runs `fn` ONCE at the group's max top-k, and completes
/// each job with its truncated slice. Multiple consumers may loop
/// FlushOnce concurrently (the server's replica read path runs several
/// search workers); each flush drains whole jobs under the lock, so a job
/// is completed by exactly one worker. Drivable synchronously in tests:
/// submit from the same thread, then call FlushOnce.
class SearchBatcher {
 public:
  using SearchFn = std::function<std::vector<std::vector<Neighbor>>(
      const Matrix& queries, std::uint32_t topk)>;

  SearchBatcher(BatchPolicy policy, SearchFn fn)
      : policy_(policy), fn_(std::move(fn)) {}

  /// Non-blocking admission; kOverloaded once pending rows reach
  /// max_pending. A job with more rows than max_batch is still admitted
  /// whole (flushes are whole-job: one oversized flush, never a split).
  Admission TrySubmit(SearchJob job);

  /// Consumer step: waits for work (or Stop), honors the max-batch /
  /// max-delay policy, then flushes one coalesced group. Returns false
  /// only when stopped AND drained (a wake that finds the window already
  /// drained by a sibling worker returns true: go around again). After
  /// Stop() remaining jobs flush immediately without waiting out the
  /// delay bound.
  bool FlushOnce();

  /// Wakes the consumer and refuses new work; accepted jobs still flush.
  void Stop();

  /// Pending query rows (admission metric; the stats opcode reports it).
  std::size_t pending_rows() const;

 private:
  struct Pending {
    SearchJob job;
    std::int64_t enqueue_ns = 0;
  };

  const BatchPolicy policy_;
  const SearchFn fn_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ GKM_GUARDED_BY(mu_);
  std::size_t pending_rows_ GKM_GUARDED_BY(mu_) = 0;
  bool stopped_ GKM_GUARDED_BY(mu_) = false;
};

}  // namespace gkm::serve

#endif  // GKM_SERVE_BATCH_QUEUE_H_
