// Copyright 2026 The gkmeans Authors.
// Synchronous GKMP client: one connection, one outstanding request. The
// test and bench harnesses drive servers through this — concurrency
// comes from running many clients, matching how the daemon batches
// across connections. Every RPC returns a tri-state Status so callers
// can tell a server-side refusal (OVERLOADED — retry later, the request
// was never applied) from a dead transport.

#ifndef GKM_SERVE_CLIENT_H_
#define GKM_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/top_k.h"
#include "serve/protocol.h"

namespace gkm::serve {

class Client {
 public:
  enum class Status {
    kOk,        ///< expected response received
    kRefused,   ///< server answered kError — code/message in last_error()
    kTransport, ///< connection failed mid-RPC; the client is dead
  };

  /// Connects to a loopback server. nullptr + `*error` on failure.
  static std::unique_ptr<Client> Connect(int port, std::string* error);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Search(const float* query, std::size_t dim, std::uint32_t topk,
                std::vector<Neighbor>* out);
  Status BatchSearch(const Matrix& queries, std::uint32_t topk,
                     std::vector<std::vector<Neighbor>>* out);
  /// On kOk, `assigned` holds the global id given to each row (row
  /// order) — the handle for later Remove calls.
  Status Insert(const Matrix& rows, std::vector<std::uint32_t>* assigned);
  Status Remove(const std::vector<std::uint32_t>& ids,
                std::vector<std::uint8_t>* removed);
  Status GetStats(StatsResponse* out);
  /// Requests graceful shutdown; kOk once the server acks.
  Status RequestShutdown();

  /// Details of the last kRefused response.
  const ErrorResponse& last_error() const { return last_error_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends `req` and blocks for the frame answering req.request_id.
  Status Call(const Frame& req, Frame* resp);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameParser parser_;
  ErrorResponse last_error_;
};

}  // namespace gkm::serve

#endif  // GKM_SERVE_CLIENT_H_
