// Copyright 2026 The gkmeans Authors.
// Serving daemon implementation. The protocol and queue logic live in
// their own pure components (protocol.cc, batch_queue.cc); this file is
// only the socket plumbing, the dispatch table, and the lifecycle.
//
// No wall-clock reads here: latency policy (the only time-dependent
// behavior) is entirely inside SearchBatcher, and the model mutates only
// on the ingest worker in queue-acceptance order — so nothing in this
// file can make two runs over the same accepted-op sequence diverge.

#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gkm::serve {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

/// Sends the whole buffer; false on any transport failure (peer gone).
bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

/// One accepted client. The reader thread parses and dispatches; writers
/// (reader itself, search worker, ingest worker) serialize whole frames
/// under `write_mu` so concurrent responses never interleave mid-frame.
struct Server::Connection {
  int fd = -1;
  Mutex write_mu;
  std::thread reader;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void SendFrame(const Frame& f) {
    std::vector<std::uint8_t> wire;
    AppendFrame(wire, f);
    MutexLock lock(write_mu);
    // A failed send means the peer vanished; its reader thread will see
    // the hangup and retire the connection.
    SendAll(fd, wire.data(), wire.size());
  }
};

/// One accepted ingest operation, answered by the ingest worker after the
/// journal-then-apply step.
struct Server::IngestOp {
  bool is_insert = false;
  std::uint64_t request_id = 0;
  Matrix rows;                     // is_insert
  std::vector<std::uint32_t> ids;  // !is_insert
  std::shared_ptr<Connection> conn;
};

std::unique_ptr<Server> Server::Start(const ServerOptions& opts,
                                      std::string* error) {
  std::unique_ptr<Server> server(new Server());
  if (!server->Init(opts, error)) return nullptr;
  return server;
}

bool Server::Init(const ServerOptions& opts, std::string* error) {
  opts_ = opts;
  GKM_CHECK_MSG(opts_.checkpoint_base.empty() ==
                    opts_.checkpoint_journal.empty(),
                "checkpoint base and journal must be set together");

  // Model: resume when a base checkpoint exists, else boot fresh.
  if (FileExists(opts_.checkpoint_base)) {
    std::string resume_error;
    std::optional<StreamingGkMeans> resumed = TryResumeStreamCheckpoint(
        opts_.checkpoint_base, opts_.checkpoint_journal, &resume_error);
    if (!resumed.has_value()) {
      if (error != nullptr) *error = "checkpoint resume: " + resume_error;
      return false;
    }
    if (opts_.dim != 0 && resumed->dim() != opts_.dim) {
      if (error != nullptr) *error = "checkpoint dim mismatch";
      return false;
    }
    model_.emplace(std::move(*resumed));
  } else {
    if (opts_.dim == 0) {
      if (error != nullptr) *error = "fresh server needs a dimension";
      return false;
    }
    model_.emplace(opts_.dim, opts_.params);
  }
  windows_.store(model_->windows_seen(), std::memory_order_relaxed);
  bootstrapped_.store(model_->bootstrapped(), std::memory_order_relaxed);

  // Durability: the delta log anchors a fresh base now (on resume this IS
  // replay-then-compact — the journal folds into the new base and starts
  // empty) and journals every accepted op before the worker applies it.
  if (!opts_.checkpoint_base.empty()) {
    delta_log_.emplace(opts_.checkpoint_base, opts_.checkpoint_journal,
                       *model_);
    delta_log_->SetAutoCompaction(opts_.compaction);
  }

  // The search path prefers the replica table (lock-free snapshot reads,
  // routed when a router is published) and falls back to routed or merged
  // leader search when replicas are off — SearchKnnBatchReplica handles
  // all three cases. Replica/router state is republished after every
  // applied ingest op, and once here so a resumed server answers from the
  // same derived state it shut down with.
  model_->PublishReadState();
  batcher_.emplace(opts_.batch_policy,
                   [this](const Matrix& queries, std::uint32_t topk) {
                     thread_local SearchScratch scratch;  // one per worker
                     return model_->graph().SearchKnnBatchReplica(
                         queries, topk, scratch);
                   });
  ingest_queue_.emplace(opts_.ingest_queue_capacity);

  // Loopback listener.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = "bind/listen failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = std::max<std::size_t>(opts_.search_workers, 1);
  search_workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    search_workers_.emplace_back([this] { SearchWorkerLoop(); });
  }
  ingest_worker_ = std::thread([this] { IngestWorkerLoop(); });
  return true;
}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    GKM_COUNTER_ADD("serve.connections", 1);
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  FrameParser parser;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer closed or teardown shut the socket
    parser.Feed(buf, static_cast<std::size_t>(n));
    Frame frame;
    FrameParser::Status status;
    while ((status = parser.Next(&frame)) == FrameParser::Status::kFrame) {
      HandleFrame(conn, frame);
    }
    if (status == FrameParser::Status::kError) {
      // Framing is unrecoverable: report and hang up. request_id 0 — the
      // offending frame's id is part of what could not be parsed.
      GKM_COUNTER_ADD("serve.protocol_errors", 1);
      conn->SendFrame(
          MakeErrorResponse(0, ErrorCode::kBadRequest, parser.error()));
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
  }
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const Frame& f) {
  GKM_TRACE_SPAN("serve.frame");
  switch (f.opcode) {
    case Opcode::kSearch:
    case Opcode::kBatchSearch: {
      SearchRequest req;
      if (const char* why = DecodeSearchRequest(f, &req)) {
        conn->SendFrame(MakeErrorResponse(f.request_id,
                                          ErrorCode::kBadRequest, why));
        return;
      }
      if (req.queries.cols() != model_->dim()) {
        conn->SendFrame(MakeErrorResponse(
            f.request_id, ErrorCode::kBadRequest, "query dim mismatch"));
        return;
      }
      const bool batch = f.opcode == Opcode::kBatchSearch;
      const std::size_t rows = req.queries.rows();
      SearchJob job;
      job.queries = std::move(req.queries);
      job.topk = req.topk;
      const std::uint64_t request_id = f.request_id;
      job.done = [conn, request_id,
                  batch](std::vector<std::vector<Neighbor>> results) {
        SearchResponse resp;
        resp.results = std::move(results);
        conn->SendFrame(MakeSearchResponse(request_id, batch, resp));
      };
      switch (batcher_->TrySubmit(std::move(job))) {
        case Admission::kAccepted:
          searches_.fetch_add(rows, std::memory_order_relaxed);
          break;
        case Admission::kOverloaded:
          overloaded_.fetch_add(1, std::memory_order_relaxed);
          GKM_COUNTER_ADD("serve.overloaded", 1);
          conn->SendFrame(MakeErrorResponse(
              f.request_id, ErrorCode::kOverloaded, "search queue full"));
          break;
        case Admission::kStopped:
          conn->SendFrame(MakeErrorResponse(
              f.request_id, ErrorCode::kShuttingDown, "server draining"));
          break;
      }
      return;
    }
    case Opcode::kInsert:
    case Opcode::kRemove: {
      IngestOp op;
      op.request_id = f.request_id;
      op.conn = conn;
      if (f.opcode == Opcode::kInsert) {
        InsertRequest req;
        if (const char* why = DecodeInsertRequest(f, &req)) {
          conn->SendFrame(MakeErrorResponse(f.request_id,
                                            ErrorCode::kBadRequest, why));
          return;
        }
        if (req.rows.cols() != model_->dim()) {
          conn->SendFrame(MakeErrorResponse(
              f.request_id, ErrorCode::kBadRequest, "insert dim mismatch"));
          return;
        }
        op.is_insert = true;
        op.rows = std::move(req.rows);
      } else {
        RemoveRequest req;
        if (const char* why = DecodeRemoveRequest(f, &req)) {
          conn->SendFrame(MakeErrorResponse(f.request_id,
                                            ErrorCode::kBadRequest, why));
          return;
        }
        op.ids = std::move(req.ids);
      }
      switch (ingest_queue_->TryPush(std::move(op))) {
        case Admission::kAccepted:
          break;
        case Admission::kOverloaded:
          overloaded_.fetch_add(1, std::memory_order_relaxed);
          GKM_COUNTER_ADD("serve.overloaded", 1);
          conn->SendFrame(MakeErrorResponse(
              f.request_id, ErrorCode::kOverloaded, "ingest queue full"));
          break;
        case Admission::kStopped:
          conn->SendFrame(MakeErrorResponse(
              f.request_id, ErrorCode::kShuttingDown, "server draining"));
          break;
      }
      return;
    }
    case Opcode::kStats: {
      if (DecodeEmptyPayload(f) != nullptr) {
        conn->SendFrame(MakeErrorResponse(
            f.request_id, ErrorCode::kBadRequest, "unexpected payload"));
        return;
      }
      conn->SendFrame(MakeStatsResponse(f.request_id, Stats()));
      return;
    }
    case Opcode::kShutdown: {
      if (DecodeEmptyPayload(f) != nullptr) {
        conn->SendFrame(MakeErrorResponse(
            f.request_id, ErrorCode::kBadRequest, "unexpected payload"));
        return;
      }
      // Ack first, then raise the request — the owner thread runs the
      // actual teardown (WaitForShutdownRequest + Shutdown).
      conn->SendFrame(MakeShutdownAck(f.request_id));
      {
        MutexLock lock(lifecycle_mu_);
        shutdown_requested_ = true;
      }
      lifecycle_cv_.NotifyAll();
      return;
    }
    default:
      // A response opcode as a request: well-framed nonsense.
      conn->SendFrame(MakeErrorResponse(f.request_id, ErrorCode::kBadRequest,
                                        "not a request opcode"));
      return;
  }
}

void Server::SearchWorkerLoop() {
  while (batcher_->FlushOnce()) {
  }
}

void Server::IngestWorkerLoop() {
  IngestOp op;
  while (ingest_queue_->PopBlocking(&op)) {
    if (op.is_insert) {
      ApplyInsert(op);
    } else {
      ApplyRemove(op);
    }
    op = IngestOp();  // drop the connection reference between ops
  }
}

void Server::ApplyInsert(IngestOp& op) {
  GKM_TRACE_SPAN("serve.ingest.insert");
  // Journal BEFORE apply: an op is durable the moment it can have had any
  // observable effect, so restart never loses an answered insert.
  if (delta_log_.has_value()) delta_log_->AppendWindow(op.rows);
  std::vector<std::uint32_t> assigned;
  model_->ObserveWindow(op.rows, &assigned);
  if (delta_log_.has_value()) delta_log_->MaybeCompact(*model_);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  windows_.store(model_->windows_seen(), std::memory_order_relaxed);
  bootstrapped_.store(model_->bootstrapped(), std::memory_order_relaxed);
  InsertResponse resp;
  resp.assigned = std::move(assigned);
  op.conn->SendFrame(MakeInsertResponse(op.request_id, resp));
}

void Server::ApplyRemove(IngestOp& op) {
  GKM_TRACE_SPAN("serve.ingest.remove");
  RemoveResponse resp;
  resp.removed.resize(op.ids.size(), 0);
  for (std::size_t i = 0; i < op.ids.size(); ++i) {
    const std::uint32_t id = op.ids[i];
    // Idempotent removes: a dead or never-assigned id answers 0 rather
    // than failing the batch (RemovePoint requires a live id).
    if (id >= model_->points_seen() || !model_->graph().IsAlive(id)) continue;
    if (delta_log_.has_value()) delta_log_->AppendRemoval(id);
    model_->RemovePoint(id);
    resp.removed[i] = 1;
    removes_.fetch_add(1, std::memory_order_relaxed);
  }
  // Removes bypass ObserveWindow (which republishes internally), so the
  // derived read state — router activity flags, replica snapshots — is
  // refreshed here, once per accepted op. That keeps replica contents a
  // pure function of the accepted-op sequence, which the restart
  // bit-identity gate relies on.
  model_->PublishReadState();
  op.conn->SendFrame(MakeRemoveResponse(op.request_id, resp));
}

StatsResponse Server::Stats() const {
  StatsResponse s;
  s.points_seen = model_->points_seen();
  s.points_alive = model_->points_alive();
  s.windows = windows_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.removes = removes_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.dim = static_cast<std::uint32_t>(model_->dim());
  s.shards = static_cast<std::uint32_t>(model_->params().graph.shards);
  s.search_queue_depth =
      static_cast<std::uint32_t>(batcher_->pending_rows());
  s.ingest_queue_depth = static_cast<std::uint32_t>(ingest_queue_->size());
  s.bootstrapped = bootstrapped_.load(std::memory_order_relaxed) ? 1 : 0;
  return s;
}

void Server::WaitForShutdownRequest() {
  MutexLock lock(lifecycle_mu_);
  lifecycle_cv_.Wait(lifecycle_mu_, [this]() GKM_REQUIRES(lifecycle_mu_) {
    return shutdown_requested_;
  });
}

void Server::Shutdown() {
  {
    MutexLock lock(lifecycle_mu_);
    shutdown_requested_ = true;
    lifecycle_cv_.NotifyAll();
    if (teardown_started_) {
      // Another thread is (or finished) tearing down; wait it out.
      lifecycle_cv_.Wait(lifecycle_mu_, [this]() GKM_REQUIRES(lifecycle_mu_) {
        return shutdown_done_;
      });
      return;
    }
    teardown_started_ = true;
  }

  // 1. Stop accepting connections.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();

  // 2. Refuse new work; in-flight requests answer kShuttingDown.
  batcher_->Stop();
  ingest_queue_->Stop();

  // 3. Drain: every worker completes every accepted op (responses
  // included) before exiting — accepted work is never dropped.
  for (std::thread& w : search_workers_) w.join();
  search_workers_.clear();
  ingest_worker_.join();

  // 4. Checkpoint-on-shutdown: fold the journal into a fresh base. A
  // restart resumes from it and serves bit-identical results.
  if (delta_log_.has_value()) delta_log_->Compact(*model_);

  // 5. Hang up every client and retire the reader threads.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  conns.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;

  {
    MutexLock lock(lifecycle_mu_);
    shutdown_done_ = true;
  }
  lifecycle_cv_.NotifyAll();
}

}  // namespace gkm::serve
