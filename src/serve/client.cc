// Copyright 2026 The gkmeans Authors.
// Synchronous GKMP client implementation.

#include "serve/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace gkm::serve {
namespace {

bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

std::unique_ptr<Client> Client::Connect(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = "connect() failed";
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Status Client::Call(const Frame& req, Frame* resp) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, req);
  if (!SendAll(fd_, wire.data(), wire.size())) return Status::kTransport;

  std::uint8_t buf[64 * 1024];
  for (;;) {
    // Drain already-buffered frames first (a prior read may have pulled
    // more than one frame off the wire).
    Frame frame;
    FrameParser::Status status;
    while ((status = parser_.Next(&frame)) == FrameParser::Status::kFrame) {
      if (frame.request_id != req.request_id) continue;  // stale, skip
      if (frame.opcode == Opcode::kError) {
        if (DecodeErrorResponse(frame, &last_error_) != nullptr) {
          return Status::kTransport;  // malformed error frame
        }
        return Status::kRefused;
      }
      *resp = frame;
      return Status::kOk;
    }
    if (status == FrameParser::Status::kError) return Status::kTransport;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::kTransport;
    parser_.Feed(buf, static_cast<std::size_t>(n));
  }
}

Client::Status Client::Search(const float* query, std::size_t dim,
                              std::uint32_t topk,
                              std::vector<Neighbor>* out) {
  Frame resp;
  const Status s =
      Call(MakeSearchRequest(next_request_id_++, topk, query,
                             static_cast<std::uint32_t>(dim)),
           &resp);
  if (s != Status::kOk) return s;
  SearchResponse decoded;
  if (resp.opcode != Opcode::kSearchResult ||
      DecodeSearchResponse(resp, &decoded) != nullptr ||
      decoded.results.size() != 1) {
    return Status::kTransport;
  }
  *out = std::move(decoded.results[0]);
  return Status::kOk;
}

Client::Status Client::BatchSearch(const Matrix& queries, std::uint32_t topk,
                                   std::vector<std::vector<Neighbor>>* out) {
  Frame resp;
  const Status s =
      Call(MakeBatchSearchRequest(next_request_id_++, topk, queries), &resp);
  if (s != Status::kOk) return s;
  SearchResponse decoded;
  if (resp.opcode != Opcode::kBatchSearchResult ||
      DecodeSearchResponse(resp, &decoded) != nullptr ||
      decoded.results.size() != queries.rows()) {
    return Status::kTransport;
  }
  *out = std::move(decoded.results);
  return Status::kOk;
}

Client::Status Client::Insert(const Matrix& rows,
                              std::vector<std::uint32_t>* assigned) {
  Frame resp;
  const Status s = Call(MakeInsertRequest(next_request_id_++, rows), &resp);
  if (s != Status::kOk) return s;
  InsertResponse decoded;
  if (resp.opcode != Opcode::kInsertResult ||
      DecodeInsertResponse(resp, &decoded) != nullptr ||
      decoded.assigned.size() != rows.rows()) {
    return Status::kTransport;
  }
  *assigned = std::move(decoded.assigned);
  return Status::kOk;
}

Client::Status Client::Remove(const std::vector<std::uint32_t>& ids,
                              std::vector<std::uint8_t>* removed) {
  Frame resp;
  const Status s = Call(MakeRemoveRequest(next_request_id_++, ids), &resp);
  if (s != Status::kOk) return s;
  RemoveResponse decoded;
  if (resp.opcode != Opcode::kRemoveResult ||
      DecodeRemoveResponse(resp, &decoded) != nullptr ||
      decoded.removed.size() != ids.size()) {
    return Status::kTransport;
  }
  *removed = std::move(decoded.removed);
  return Status::kOk;
}

Client::Status Client::GetStats(StatsResponse* out) {
  Frame resp;
  const Status s = Call(MakeStatsRequest(next_request_id_++), &resp);
  if (s != Status::kOk) return s;
  if (resp.opcode != Opcode::kStatsResult ||
      DecodeStatsResponse(resp, out) != nullptr) {
    return Status::kTransport;
  }
  return Status::kOk;
}

Client::Status Client::RequestShutdown() {
  Frame resp;
  const Status s = Call(MakeShutdownRequest(next_request_id_++), &resp);
  if (s != Status::kOk) return s;
  return resp.opcode == Opcode::kShutdownAck ? Status::kOk
                                             : Status::kTransport;
}

}  // namespace gkm::serve
