// Copyright 2026 The gkmeans Authors.
// GKMP — the serving daemon's length-prefixed binary protocol. One framed
// request/response codec, built as a pure in-process component: encoding
// appends to byte vectors, decoding runs either incrementally over fed
// bytes (FrameParser — the socket loop's shape) or off an io::Reader
// (FILE* / fmemopen buffers — the test and fuzz shape). Nothing in this
// header touches a socket, so every protocol rule is unit-testable and
// fuzzable without I/O.
//
// Wire format (little-endian, fixed 18-byte header per frame):
//
//   u32  magic       "GKMP" (0x504d4b47)
//   u8   version     kProtocolVersion
//   u8   opcode      Opcode below
//   u64  request_id  echoed verbatim in the response frame
//   u32  payload_len bytes following the header (<= kMaxPayloadBytes)
//   ...  payload     opcode-specific grammar (docs/serving.md)
//
// Untrusted-input contract (the PR-7 bounded-read rules): every field
// read from the wire is validated before it sizes an allocation — a
// size-lying header, truncated frame, unknown opcode or foreign version
// is a clean, latched error, never an OOM, overflow or crash.
// fuzz/fuzz_serve_frame.cc holds the decoder to that contract.

#ifndef GKM_SERVE_PROTOCOL_H_
#define GKM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/matrix.h"
#include "common/top_k.h"

namespace gkm::serve {

inline constexpr std::uint32_t kProtocolMagic = 0x504d4b47u;  // "GKMP"
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Hard cap on a frame's payload. Bounds the decoder's allocation for any
/// header it ever trusts; a batch of 4096 queries at d=1024 still fits.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 24;  // 16 MiB
inline constexpr std::size_t kFrameHeaderBytes = 18;

/// Request opcodes occupy [1, 0x7f]; responses mirror them with the high
/// bit set; kError answers any request.
enum class Opcode : std::uint8_t {
  kSearch = 1,       ///< one query vector -> top-k neighbors
  kBatchSearch = 2,  ///< query matrix -> top-k per row
  kInsert = 3,       ///< one ingest window (rows appended to the stream)
  kRemove = 4,       ///< explicit removals by global point id
  kStats = 5,        ///< server/model statistics snapshot
  kShutdown = 6,     ///< request graceful shutdown

  kSearchResult = 0x81,
  kBatchSearchResult = 0x82,
  kInsertResult = 0x83,
  kRemoveResult = 0x84,
  kStatsResult = 0x85,
  kShutdownAck = 0x86,
  kError = 0xff,
};

/// True for the opcodes a well-formed peer may put on the wire.
bool IsKnownOpcode(std::uint8_t op);

/// Error codes carried by kError payloads.
enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,   ///< malformed payload (connection stays usable)
  kOverloaded = 2,   ///< admission control rejected the request; retry later
  kShuttingDown = 3, ///< server is draining; no new work accepted
  kInternal = 4,     ///< server-side failure applying a well-formed request
};

/// One decoded frame. `payload` is owned, bounded by kMaxPayloadBytes.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kError;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Frame-level encode/decode.
// ---------------------------------------------------------------------------

/// Appends the wire encoding of `f` to `out`. Aborts (GKM_CHECK) if the
/// payload exceeds kMaxPayloadBytes — encoders below never produce one.
void AppendFrame(std::vector<std::uint8_t>& out, const Frame& f);

/// Incremental frame decoder: feed bytes as they arrive, pull frames out.
/// A protocol violation (bad magic, foreign version, unknown opcode,
/// size-lying header) latches the parser into an error state — framing is
/// lost for good, so the connection must be dropped; truncation is simply
/// kNeedMore until the rest arrives.
class FrameParser {
 public:
  enum class Status { kFrame, kNeedMore, kError };

  /// Appends `n` raw bytes to the internal buffer. No-op once errored.
  void Feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame into `*out`. kFrame: one frame
  /// decoded (call again — several may be buffered). kNeedMore: the buffer
  /// holds only a frame prefix. kError: protocol violation; error() says
  /// what, and every later call returns kError.
  Status Next(Frame* out);

  /// Static description of the violation after kError, nullptr otherwise.
  const char* error() const { return error_; }

  /// Bytes currently buffered (tests; bounded by one max frame + one read).
  std::size_t buffered() const { return buf_.size() - head_; }

 private:
  Status Fail(const char* why) {
    error_ = why;
    return Status::kError;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  // consumed prefix of buf_
  const char* error_ = nullptr;
};

/// Reads one frame from a seekable stream through io::Reader's bounded
/// primitives. Returns false on any malformed or truncated input with a
/// static description in `*error` (when non-null). At end-of-stream
/// (zero bytes remaining) returns false with `*error == nullptr` — the
/// clean-EOF signal file-replay loops key on.
bool TryReadFrame(io::Reader& in, Frame* out, const char** error);

// ---------------------------------------------------------------------------
// Typed payloads. Every Decode* validates the payload completely — shape
// fields cross-checked against the actual byte count before any
// allocation, trailing bytes rejected — and returns nullptr on success or
// a static description of the first violation (the repo's validator
// idiom). Encode* helpers build whole frames.
// ---------------------------------------------------------------------------

/// kSearch / kBatchSearch. kSearch is the count==1 special case on the
/// wire (no count field); both decode into this struct.
struct SearchRequest {
  std::uint32_t topk = 0;
  Matrix queries;  ///< one row per query
};

/// kInsert: one ingest window.
struct InsertRequest {
  Matrix rows;
};

/// kRemove: explicit removals by global id.
struct RemoveRequest {
  std::vector<std::uint32_t> ids;
};

/// kSearchResult / kBatchSearchResult.
struct SearchResponse {
  std::vector<std::vector<Neighbor>> results;  ///< one list per query
};

/// kInsertResult: global ids assigned to the window's rows, in row order.
struct InsertResponse {
  std::vector<std::uint32_t> assigned;
};

/// kRemoveResult: per requested id, 1 if it was alive and is now
/// tombstoned, 0 if it named no live point (idempotent removes).
struct RemoveResponse {
  std::vector<std::uint8_t> removed;
};

/// kStatsResult.
struct StatsResponse {
  std::uint64_t points_seen = 0;   ///< arena slot bound (global ids)
  std::uint64_t points_alive = 0;  ///< live points
  std::uint64_t windows = 0;       ///< ingest windows applied
  std::uint64_t searches = 0;      ///< queries served since boot
  std::uint64_t inserts = 0;       ///< windows accepted since boot
  std::uint64_t removes = 0;       ///< removal ids accepted since boot
  std::uint64_t overloaded = 0;    ///< requests refused by admission control
  std::uint32_t dim = 0;
  std::uint32_t shards = 0;
  std::uint32_t search_queue_depth = 0;
  std::uint32_t ingest_queue_depth = 0;
  std::uint8_t bootstrapped = 0;
};

/// kError.
struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;  ///< <= 64 KiB on the wire (u16 length)
};

Frame MakeSearchRequest(std::uint64_t request_id, std::uint32_t topk,
                        const float* query, std::uint32_t dim);
Frame MakeBatchSearchRequest(std::uint64_t request_id, std::uint32_t topk,
                             const Matrix& queries);
Frame MakeInsertRequest(std::uint64_t request_id, const Matrix& rows);
Frame MakeRemoveRequest(std::uint64_t request_id,
                        const std::vector<std::uint32_t>& ids);
Frame MakeStatsRequest(std::uint64_t request_id);
Frame MakeShutdownRequest(std::uint64_t request_id);

Frame MakeSearchResponse(std::uint64_t request_id, bool batch,
                         const SearchResponse& resp);
Frame MakeInsertResponse(std::uint64_t request_id,
                         const InsertResponse& resp);
Frame MakeRemoveResponse(std::uint64_t request_id,
                         const RemoveResponse& resp);
Frame MakeStatsResponse(std::uint64_t request_id, const StatsResponse& resp);
Frame MakeShutdownAck(std::uint64_t request_id);
Frame MakeErrorResponse(std::uint64_t request_id, ErrorCode code,
                        const std::string& message);

const char* DecodeSearchRequest(const Frame& f, SearchRequest* out);
const char* DecodeInsertRequest(const Frame& f, InsertRequest* out);
const char* DecodeRemoveRequest(const Frame& f, RemoveRequest* out);
/// kStats / kShutdown / kShutdownAck carry no payload; this enforces that.
const char* DecodeEmptyPayload(const Frame& f);
const char* DecodeSearchResponse(const Frame& f, SearchResponse* out);
const char* DecodeInsertResponse(const Frame& f, InsertResponse* out);
const char* DecodeRemoveResponse(const Frame& f, RemoveResponse* out);
const char* DecodeStatsResponse(const Frame& f, StatsResponse* out);
const char* DecodeErrorResponse(const Frame& f, ErrorResponse* out);

}  // namespace gkm::serve

#endif  // GKM_SERVE_PROTOCOL_H_
