// Copyright 2026 The gkmeans Authors.

#include "obs/sampler.h"

#include <cstdio>
#include <utility>

#include "obs/clock.h"

namespace gkm::obs {
namespace {

// Atomic file replace: write the whole payload to `path`.tmp, rename over
// `path`. A concurrent reader sees either the previous complete file or
// the new complete file, never a partial write. Failures are swallowed
// (telemetry must never take the serving process down with it).
void WriteFileAtomic(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  const bool ok =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  const bool closed = std::fclose(f) == 0;
  if (ok && closed) {
    std::rename(tmp.c_str(), path.c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

}  // namespace

StatsSampler::StatsSampler(MetricsRegistry& registry, SamplerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      start_ns_(MonotonicNanos()) {}

StatsSampler::~StatsSampler() { Stop(); }

bool StatsSampler::Start() {
  MutexLock guard(mu_);
  if (running_) return false;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

bool StatsSampler::Stop() {
  {
    MutexLock guard(mu_);
    if (!running_) return false;
    stopping_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  {
    MutexLock guard(mu_);
    running_ = false;
    stopping_ = false;
  }
  // Final flush after the thread is gone, so the last emitted sample
  // reflects everything recorded up to the Stop() call.
  SampleNow();
  return true;
}

bool StatsSampler::running() const {
  MutexLock guard(mu_);
  return running_;
}

void StatsSampler::SampleNow() {
  Emit(registry_.Snapshot());
}

void StatsSampler::Emit(const RegistrySnapshot& snap) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t uptime = MonotonicNanos() - start_ns_;
  if (options_.on_sample) options_.on_sample(snap);
  if (!options_.json_path.empty()) {
    WriteFileAtomic(options_.json_path, snap.ToJson(seq, uptime) + "\n");
  }
  if (options_.text_out != nullptr) {
    const std::string text = snap.ToText();
    std::fprintf(options_.text_out, "--- stats sample %llu (uptime %.1fs)\n%s",
                 static_cast<unsigned long long>(seq),
                 NanosToSeconds(uptime), text.c_str());
    std::fflush(options_.text_out);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void StatsSampler::Loop() {
  // Manual Lock/Unlock instead of a scoped guard: the lock is dropped
  // around the scrape and re-held across the wait, and the analysis checks
  // the hand-over-hand state (held at the loop condition on entry and on
  // every back edge).
  mu_.Lock();
  while (!stopping_) {
    // Scrape outside the lifecycle lock: Snapshot takes the registry's own
    // mutex and sinks may be slow; Stop must stay responsive throughout.
    mu_.Unlock();
    Emit(registry_.Snapshot());
    mu_.Lock();
    cv_.WaitFor(mu_, options_.period,
                [this]() GKM_REQUIRES(mu_) { return stopping_; });
  }
  mu_.Unlock();
}

}  // namespace gkm::obs
