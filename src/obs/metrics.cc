// Copyright 2026 The gkmeans Authors.

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace gkm::obs {
namespace {

// Mantissa thresholds of the 4 sub-buckets per octave: frexp yields
// m in [0.5, 1); sub-bucket j covers m in [2^((j-4)/4), 2^((j-3)/4)).
constexpr double kSub1 = 0.5946035575013605;  // 2^-0.75
constexpr double kSub2 = 0.7071067811865476;  // 2^-0.5
constexpr double kSub3 = 0.8408964152537145;  // 2^-0.25

constexpr int kNumOctaves = 64;

// Relaxed CAS-loop helpers for the double-valued histogram fields. Both
// loops terminate: a failed CAS reloads the latest value, and the quantity
// only ever moves toward the update.
void AtomicAddDouble(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

}  // namespace

// --------------------------------------------------------------- Histogram --

std::size_t Histogram::BucketOf(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int octave = (e - 1) - kMinExp;  // 0-based octave above 2^kMinExp
  if (octave < 0) return 0;
  if (octave >= kNumOctaves) return kNumBuckets - 1;
  int sub = 0;
  if (m >= kSub3) {
    sub = 3;
  } else if (m >= kSub2) {
    sub = 2;
  } else if (m >= kSub1) {
    sub = 1;
  }
  return 1 + static_cast<std::size_t>(octave) * 4 +
         static_cast<std::size_t>(sub);
}

void Histogram::BucketBounds(std::size_t i, double* lower, double* upper) {
  if (i == 0) {
    *lower = 0.0;
    *upper = std::ldexp(1.0, kMinExp);
    return;
  }
  if (i >= kNumBuckets - 1) {
    *lower = std::ldexp(1.0, kMinExp + kNumOctaves);
    *upper = std::numeric_limits<double>::infinity();
    return;
  }
  // Bucket i (1-based among the log buckets) spans one quarter-octave:
  // [2^(kMinExp + (i-1)/4), 2^(kMinExp + i/4)).
  *lower = std::pow(2.0, kMinExp + static_cast<double>(i - 1) / 4.0);
  *upper = std::pow(2.0, kMinExp + static_cast<double>(i) / 4.0);
}

void Histogram::Record(double v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    AtomicAddDouble(sum_, v);
    AtomicMaxDouble(max_, v);
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData d;
  d.buckets.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    d.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

void HistogramData::Merge(const HistogramData& other) {
  if (buckets.empty()) buckets.resize(other.buckets.size(), 0);
  GKM_CHECK_MSG(buckets.size() == other.buckets.size(),
                "histogram merge with mismatched bucket layouts");
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

double HistogramData::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based; q=1 is the max (exact).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen < target) continue;
    if (i + 1 == buckets.size()) return max;  // overflow bucket: exact max
    double lo = 0.0, hi = 0.0;
    Histogram::BucketBounds(i, &lo, &hi);
    // Geometric midpoint, clamped by the exact max (the top occupied
    // bucket's midpoint may exceed it).
    const double mid = i == 0 ? hi * 0.5 : std::sqrt(lo * hi);
    return max > 0.0 ? std::min(mid, max) : mid;
  }
  return max;
}

// ------------------------------------------------------- RegistrySnapshot --

std::string RegistrySnapshot::ToJson(std::uint64_t seq,
                                     std::int64_t uptime_ns) const {
  std::string out = "{\"schema\":\"gkm-stats-v1\",\"seq\":";
  AppendJsonNumber(out, static_cast<double>(seq));
  out += ",\"uptime_ns\":";
  AppendJsonNumber(out, static_cast<double>(uptime_ns));
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":";
    AppendJsonNumber(out, static_cast<double>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":";
    AppendJsonNumber(out, static_cast<double>(v));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":{\"count\":";
    AppendJsonNumber(out, static_cast<double>(h.count));
    out += ",\"mean\":";
    AppendJsonNumber(out, h.Mean());
    out += ",\"max\":";
    AppendJsonNumber(out, h.max);
    out += ",\"p50\":";
    AppendJsonNumber(out, h.Quantile(0.50));
    out += ",\"p90\":";
    AppendJsonNumber(out, h.Quantile(0.90));
    out += ",\"p99\":";
    AppendJsonNumber(out, h.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "%-40s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "%-40s %lld (gauge)\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s n=%llu mean=%.1f p50=%.1f p90=%.1f p99=%.1f "
                  "max=%.1f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.Mean(), h.Quantile(0.5), h.Quantile(0.9),
                  h.Quantile(0.99), h.max);
    out += line;
  }
  return out;
}

// -------------------------------------------------------- MetricsRegistry --

#if GKM_STATS_ENABLED

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock guard(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock guard(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock guard(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  MutexLock guard(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally immortal (never destructed): instrument references are
  // cached in function-local statics across the tree, and destruction
  // order at exit must not be able to dangle them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

#endif  // GKM_STATS_ENABLED

}  // namespace gkm::obs
