// Copyright 2026 The gkmeans Authors.
// RAII latency instrumentation over obs/metrics.h: TracePoint (a named
// span site, resolved against the registry once) and TraceSpan /
// ScopedTimer (record the enclosing scope's duration on destruction).
//
// Cost per span in an instrumented build: two monotonic clock reads plus
// one histogram Record (a handful of relaxed atomics) — cheap enough for
// per-batch and per-query scopes, deliberately NOT placed per-row or
// per-kernel-invocation (see the overhead contract in
// docs/observability.md). Under GKM_NO_STATS everything here is an empty
// inline shell: no clock reads, no atomics, no registry.

#ifndef GKM_OBS_TRACE_H_
#define GKM_OBS_TRACE_H_

#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace gkm::obs {

#if GKM_STATS_ENABLED

/// A named instrumentation site: histogram "<name>_us" + counter
/// "<name>.calls", resolved once. Declare as a function-local static next
/// to the scope it measures and open TraceSpans against it.
class TracePoint {
 public:
  explicit TracePoint(const std::string& name)
      : hist_(MetricsRegistry::Global().GetHistogram(name + "_us")),
        calls_(MetricsRegistry::Global().GetCounter(name + ".calls")) {}

  Histogram& hist() { return hist_; }
  Counter& calls() { return calls_; }

 private:
  Histogram& hist_;
  Counter& calls_;
};

/// Records the span from construction to destruction into `point`'s
/// latency histogram (microseconds) and bumps its call counter.
class TraceSpan {
 public:
  explicit TraceSpan(TracePoint& point)
      : point_(point), start_ns_(MonotonicNanos()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    point_.hist().Record(NanosToMicros(MonotonicNanos() - start_ns_));
    point_.calls().Add(1);
  }

 private:
  TracePoint& point_;
  std::int64_t start_ns_;
};

/// Records the scope's duration (microseconds) into a caller-owned
/// histogram — the registry-free variant for benches and local
/// measurement.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_ns_(MonotonicNanos()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    hist_.Record(NanosToMicros(MonotonicNanos() - start_ns_));
  }

 private:
  Histogram& hist_;
  std::int64_t start_ns_;
};

#else  // !GKM_STATS_ENABLED

class TracePoint {
 public:
  explicit TracePoint(const std::string&) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(TracePoint&) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

/// The concrete Histogram class still exists under GKM_NO_STATS (benches
/// use it directly); only the registry-backed instrumentation layer is
/// stubbed, so this timer still works against a caller-owned histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_ns_(MonotonicNanos()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    hist_.Record(NanosToMicros(MonotonicNanos() - start_ns_));
  }

 private:
  Histogram& hist_;
  std::int64_t start_ns_;
};

#endif  // GKM_STATS_ENABLED

// Statement macro: `GKM_TRACE_SPAN("stream.ingest.walk");` instruments the
// enclosing scope. One use per scope (fixed variable names).
#if GKM_STATS_ENABLED
#define GKM_TRACE_SPAN(name)                            \
  static ::gkm::obs::TracePoint gkm_obs_trace_point(name); \
  ::gkm::obs::TraceSpan gkm_obs_trace_span(gkm_obs_trace_point)
#else
#define GKM_TRACE_SPAN(name) do { } while (0)
#endif

}  // namespace gkm::obs

#endif  // GKM_OBS_TRACE_H_
