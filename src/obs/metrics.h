// Copyright 2026 The gkmeans Authors.
// Low-overhead, thread-safe telemetry primitives and the process-wide
// MetricsRegistry behind them.
//
// Three instrument kinds:
//
//  * Counter — monotonically increasing event count. Add() is a relaxed
//    fetch_add on a per-thread cache-line-padded shard (threads hash to
//    one of kCounterShards lines, so concurrent writers almost never
//    contend); Value() sums the shards at scrape time. Counts are exact:
//    sharding trades scrape-time work for write-path cheapness, never
//    increments.
//
//  * Gauge — a settable level (arena size, live seed count, SIMD tier).
//    One relaxed atomic.
//
//  * Histogram — log-bucketed latency/size distribution: 4 sub-buckets
//    per power of two (worst-case quantile error one bucket, i.e. a
//    factor of 2^(1/4) ~ 19%), covering [2^-16, 2^48) with explicit
//    underflow/overflow buckets, plus an exact count, sum and max.
//    Record() is a handful of relaxed atomic updates; snapshots merge
//    exactly (bucket-wise addition) and answer p50/p90/p99/max queries.
//
// The instruments themselves are always compiled — benches and tests use
// them as plain local measurement tools. What GKM_NO_STATS compiles out is
// the *instrumentation layer*: the registry degrades to no-op handles
// (empty inline Add/Set/Record, no name table, no atomics), so every
// GKM_COUNTER_ADD / TraceSpan site in the library vanishes entirely from
// the build — the escape hatch proving telemetry stays within its
// overhead budget (see docs/observability.md).
//
// Naming scheme ("dotted path, unit suffix"): subsystem.event[_unit],
// e.g. stream.ingest.walk_us, serve.queries, kernels.simd_tier. Units:
// _us microseconds, _bytes bytes; bare names are counts or levels.

#ifndef GKM_OBS_METRICS_H_
#define GKM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#if defined(GKM_NO_STATS)
#define GKM_STATS_ENABLED 0
#else
#define GKM_STATS_ENABLED 1
#endif

namespace gkm::obs {

// ---------------------------------------------------------------------------
// Instruments (always compiled; see file comment).
// ---------------------------------------------------------------------------

inline constexpr std::size_t kCounterShards = 16;  // power of two

/// Index of the calling thread's counter shard: the first thread to call
/// gets shard 0, the next shard 1, ... wrapping at kCounterShards. Distinct
/// live threads below the shard count never share a line.
inline unsigned ThreadShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed) &
      static_cast<unsigned>(kCounterShards - 1);
  return id;
}

/// Sharded monotonic event counter. Thread-safe; Add is wait-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::int64_t n = 1) {
    shards_[ThreadShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exact sum of all shards (relaxed reads: a scrape concurrent with
  /// writers sees each increment either fully or not yet — never torn).
  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

/// Settable level. Thread-safe.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time histogram contents: the mergeable, queryable snapshot
/// form. Bucket i of `buckets` is Histogram's bucket i (see BucketBounds).
struct HistogramData {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Exact-count merge: bucket-wise addition (both sides must come from
  /// Histogram snapshots, so the bucket layout is identical).
  void Merge(const HistogramData& other);

  /// Value at quantile q in [0, 1]: the geometric midpoint of the bucket
  /// holding the rank-ceil(q*count) sample (exact for max; one log-bucket
  /// of relative error, <= 2^(1/8) each side, otherwise). 0 when empty.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Log-bucketed distribution of a non-negative quantity (latencies in
/// microseconds by convention). Thread-safe; Record is lock-free.
class Histogram {
 public:
  /// 1 underflow + 64 octaves x 4 sub-buckets + 1 overflow.
  static constexpr std::size_t kNumBuckets = 1 + 64 * 4 + 1;
  /// Values below 2^kMinExp land in the underflow bucket, values at or
  /// above 2^(kMinExp + 64) in the overflow bucket.
  static constexpr int kMinExp = -16;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Folds one observation in. Non-positive and non-finite values count
  /// into the underflow bucket (they never occur on intended call sites;
  /// the histogram must still never corrupt its state on one).
  void Record(double v);

  /// Bucket index a value falls in — exposed for tests.
  static std::size_t BucketOf(double v);
  /// [lower, upper) value bounds of bucket i — exposed for tests.
  static void BucketBounds(std::size_t i, double* lower, double* upper);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough copy for reporting: relaxed reads concurrent with
  /// writers may straddle an in-flight Record (bucket landed, count not
  /// yet) — bounded by the number of concurrent writers, exact once they
  /// quiesce.
  HistogramData Snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// ---------------------------------------------------------------------------
// Registry snapshots (always compiled; empty under GKM_NO_STATS).
// ---------------------------------------------------------------------------

/// One scrape of every registered instrument, sorted by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Versioned machine-readable form (schema "gkm-stats-v1"): one JSON
  /// object with counters/gauges verbatim and histograms summarized as
  /// {count, mean, max, p50, p90, p99}. `seq` and `uptime_ns` come from
  /// the caller (the sampler's tick counter and monotonic-clock uptime).
  std::string ToJson(std::uint64_t seq, std::int64_t uptime_ns) const;

  /// Human-readable aligned dump of the same content.
  std::string ToText() const;
};

// ---------------------------------------------------------------------------
// MetricsRegistry: the name -> instrument table. This is the GKM_NO_STATS
// seam — the disabled variant hands out no-op handles and records nothing.
// ---------------------------------------------------------------------------

#if GKM_STATS_ENABLED

/// Process-wide instrument table. Get* registers on first use and returns
/// a reference that stays valid for the life of the process (instruments
/// are never removed), so call sites resolve the name once into a static
/// local and pay only the instrument update afterwards.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  /// The process-wide registry (immortal: never destructed, so statically
  /// cached instrument references cannot dangle during shutdown).
  static MetricsRegistry& Global();

 private:
  // Guards the name tables only: the instruments behind the unique_ptrs
  // are internally synchronized (atomics) and returned references outlive
  // the lock by design.
  Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GKM_GUARDED_BY(mu_);
};

#else  // !GKM_STATS_ENABLED

/// No-op instrument handles: same surface as the real ones, empty inline
/// bodies, so instrumented call sites compile to nothing.
struct NoopCounter {
  void Add(std::int64_t = 1) {}
  std::int64_t Value() const { return 0; }
};
struct NoopGauge {
  void Set(std::int64_t) {}
  void Add(std::int64_t = 1) {}
  std::int64_t Value() const { return 0; }
};
struct NoopHistogram {
  void Record(double) {}
  std::uint64_t Count() const { return 0; }
  HistogramData Snapshot() const { return HistogramData(); }
};

class MetricsRegistry {
 public:
  NoopCounter& GetCounter(const std::string&) {
    static NoopCounter c;
    return c;
  }
  NoopGauge& GetGauge(const std::string&) {
    static NoopGauge g;
    return g;
  }
  NoopHistogram& GetHistogram(const std::string&) {
    static NoopHistogram h;
    return h;
  }
  RegistrySnapshot Snapshot() const { return RegistrySnapshot(); }
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
};

#endif  // GKM_STATS_ENABLED

// ---------------------------------------------------------------------------
// Call-site macros: resolve the name once (static local), update through
// the cached handle. Under GKM_NO_STATS the argument expressions are never
// evaluated — instrumentation cannot keep side effects alive in a no-stats
// build, so only pass pure expressions.
// ---------------------------------------------------------------------------

#if GKM_STATS_ENABLED
#define GKM_COUNTER_ADD(name, n)                                       \
  do {                                                                 \
    static ::gkm::obs::Counter& gkm_obs_c =                            \
        ::gkm::obs::MetricsRegistry::Global().GetCounter(name);        \
    gkm_obs_c.Add(n);                                                  \
  } while (0)
#define GKM_GAUGE_SET(name, v)                                         \
  do {                                                                 \
    static ::gkm::obs::Gauge& gkm_obs_g =                              \
        ::gkm::obs::MetricsRegistry::Global().GetGauge(name);          \
    gkm_obs_g.Set(v);                                                  \
  } while (0)
#define GKM_HISTOGRAM_RECORD(name, v)                                  \
  do {                                                                 \
    static ::gkm::obs::Histogram& gkm_obs_h =                          \
        ::gkm::obs::MetricsRegistry::Global().GetHistogram(name);      \
    gkm_obs_h.Record(v);                                               \
  } while (0)
#else
#define GKM_COUNTER_ADD(name, n) do { } while (0)
#define GKM_GAUGE_SET(name, v) do { } while (0)
#define GKM_HISTOGRAM_RECORD(name, v) do { } while (0)
#endif

}  // namespace gkm::obs

#endif  // GKM_OBS_METRICS_H_
