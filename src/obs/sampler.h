// Copyright 2026 The gkmeans Authors.
// StatsSampler: the monitoring daemon of a long-running ingest/serve
// process. A background thread wakes on a fixed period, scrapes the
// MetricsRegistry, and hands the snapshot to every configured sink — a
// caller callback, a human-readable text stream, and/or an atomically
// rewritten JSON file (schema "gkm-stats-v1", tmp + rename so a concurrent
// reader never sees a torn file).
//
// Lifecycle (the hierarchical-monitors daemon shape): construct with
// options, Start() spawns the thread, Stop() takes one final flush sample
// and joins. Both are idempotent — double Start and double Stop are safe
// no-ops returning false — and the destructor stops implicitly, so a
// sampler can guard any scope. The sampler only ever *reads* instruments;
// it perturbs no model state, takes no model locks, and is therefore
// architecturally invisible to the determinism contract.

#ifndef GKM_OBS_SAMPLER_H_
#define GKM_OBS_SAMPLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace gkm::obs {

/// Sinks and cadence of a StatsSampler. At least one sink should be set
/// for the thread to be useful; none is still legal (the sampler then
/// just counts ticks — handy in tests).
struct SamplerOptions {
  /// Time between scrapes. Also the worst-case Stop() latency bound —
  /// Stop wakes the thread immediately via its condition variable.
  std::chrono::milliseconds period{1000};
  /// Called with every snapshot, on the sampler thread. Must not block
  /// for long (the next tick waits on it) and must not call Start/Stop.
  std::function<void(const RegistrySnapshot&)> on_sample;
  /// When non-empty: each tick atomically rewrites this file with the
  /// versioned JSON form of the snapshot (write tmp, rename over).
  std::string json_path;
  /// When non-null: each tick appends the human-readable dump here.
  std::FILE* text_out = nullptr;
};

/// Periodic registry scraper with a clean start/stop lifecycle.
class StatsSampler {
 public:
  explicit StatsSampler(MetricsRegistry& registry, SamplerOptions options);
  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;
  /// Stops the thread if still running.
  ~StatsSampler();

  /// Spawns the sampling thread. Returns false (and does nothing) if it
  /// is already running.
  bool Start();

  /// Takes one final flush sample, stops the thread and joins it. Returns
  /// false (and does nothing) if not running — double-stop safe.
  bool Stop();

  bool running() const;

  /// Samples emitted so far (including the final flush of each Stop).
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

  /// Scrapes and emits once, synchronously on the calling thread — the
  /// same code path a tick runs. Usable whether or not the thread runs.
  void SampleNow();

 private:
  void Emit(const RegistrySnapshot& snap);
  void Loop();

  MetricsRegistry& registry_;
  const SamplerOptions options_;
  const std::int64_t start_ns_;

  // Lifecycle lock: guards the running/stopping flags only — ticks scrape
  // and emit outside it so Stop stays responsive (see Loop).
  Mutex mu_;
  CondVar cv_;
  std::thread thread_;
  bool running_ GKM_GUARDED_BY(mu_) = false;
  bool stopping_ GKM_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace gkm::obs

#endif  // GKM_OBS_SAMPLER_H_
