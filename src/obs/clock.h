// Copyright 2026 The gkmeans Authors.
// The single steady-clock source of the tree. Every elapsed-time
// measurement — common/timer.h stopwatches, the obs ScopedTimer/TraceSpan
// instrumentation, the StatsSampler cadence, bench harness timing — reads
// this one monotonic clock, so latencies recorded in different layers are
// directly comparable and no call site reaches for std::chrono (or, worse,
// a wall clock) on its own.
//
// Telemetry stays off the determinism path by construction: clock reads
// feed metrics and logs only, never any value that is checkpointed,
// journaled, hashed, or used to make a model decision (see
// docs/observability.md, "The overhead and determinism contract").

#ifndef GKM_OBS_CLOCK_H_
#define GKM_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace gkm::obs {

/// Nanoseconds on the process-wide monotonic clock. The epoch is
/// unspecified (steady_clock's); only differences are meaningful.
inline std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Convenience conversions for the common reporting units.
inline double NanosToMicros(std::int64_t ns) {
  return static_cast<double>(ns) * 1e-3;
}
inline double NanosToSeconds(std::int64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace gkm::obs

#endif  // GKM_OBS_CLOCK_H_
