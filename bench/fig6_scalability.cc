// Copyright 2026 The gkmeans Authors.
// Reproduces Fig. 6 + Fig. 7 (scalability on VLAD-like image descriptors):
//   Fig. 6(a)/7(a): time and distortion vs data size n at fixed k
//   Fig. 6(b)/7(b): time and distortion vs cluster count k at fixed n
// Paper shapes: k-means/BKM/Mini-Batch cost grows linearly with k while
// closure and GK-means stay near-constant; GK-means quality tracks BKM;
// Mini-Batch quality degrades badly; the gap widens as k grows.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/lloyd.h"
#include "kmeans/mini_batch.h"

namespace {

struct Row {
  const char* method;
  double seconds;
  double distortion;
};

std::vector<Row> RunAll(const gkm::Matrix& x, std::size_t k,
                        std::size_t iters) {
  std::vector<Row> rows;
  {
    gkm::MiniBatchParams p;
    p.k = k;
    p.batch_size = 1000;
    p.max_iters = iters;
    const auto r = MiniBatchKMeans(x, p);
    rows.push_back({"mini-batch", r.total_seconds, r.distortion});
  }
  {
    gkm::ClosureParams p;
    p.k = k;
    p.num_trees = 3;
    p.leaf_size = 50;
    p.max_iters = iters;
    const auto r = ClosureKMeans(x, p);
    rows.push_back({"closure", r.total_seconds, r.distortion});
  }
  {
    gkm::LloydParams p;
    p.k = k;
    p.max_iters = iters;
    const auto r = LloydKMeans(x, p);
    rows.push_back({"k-means", r.total_seconds, r.distortion});
  }
  {
    gkm::BkmParams p;
    p.k = k;
    p.max_iters = iters;
    const auto r = BoostKMeans(x, p);
    rows.push_back({"bkm", r.total_seconds, r.distortion});
  }
  {
    gkm::PipelineParams p;
    p.k = k;
    p.graph.kappa = 20;
    p.graph.xi = 50;
    p.graph.tau = 6;
    p.clustering.kappa = 20;
    p.clustering.max_iters = iters;
    const auto r = GkMeansCluster(x, p).clustering;
    rows.push_back({"gk-means", r.total_seconds, r.distortion});
  }
  return rows;
}

}  // namespace

int main() {
  gkm::bench::Header("Figures 6 & 7", "scalability: time/distortion vs n and "
                                      "vs k on VLAD-like 512-d data");
  const std::size_t iters = 15;

  // --- Fig. 6(a)/7(a): vary n, fixed k. ---
  const std::size_t fixed_k = 64;
  std::printf("\n=== sweep n (k=%zu, %zu iterations) ===\n", fixed_k, iters);
  std::printf("%-12s %-10s %-12s %-12s\n", "method", "n", "time(s)",
              "distortion");
  std::vector<std::vector<Row>> by_n;
  std::vector<std::size_t> ns;
  for (const std::size_t base : {1000u, 2000u, 5000u, 10000u, 20000u}) {
    const std::size_t n = gkm::bench::ScaledN(base, base);
    ns.push_back(n);
    const gkm::SyntheticData data = gkm::MakeVladLike(n, 512, 42);
    by_n.push_back(RunAll(data.vectors, fixed_k, iters));
    for (const Row& r : by_n.back()) {
      std::printf("%-12s %-10zu %-12.2f %-12.5f\n", r.method, n, r.seconds,
                  r.distortion);
    }
  }

  // --- Fig. 6(b)/7(b): vary k, fixed n. ---
  const std::size_t fixed_n = gkm::bench::ScaledN(10000);
  std::printf("\n=== sweep k (n=%zu, %zu iterations) ===\n", fixed_n, iters);
  std::printf("%-12s %-10s %-12s %-12s\n", "method", "k", "time(s)",
              "distortion");
  const gkm::SyntheticData data = gkm::MakeVladLike(fixed_n, 512, 42);
  std::vector<std::vector<Row>> by_k;
  const std::vector<std::size_t> ks = {32, 64, 128, 256, 512};
  for (const std::size_t k : ks) {
    by_k.push_back(RunAll(data.vectors, k, iters));
    for (const Row& r : by_k.back()) {
      std::printf("%-12s %-10zu %-12.2f %-12.5f\n", r.method, k, r.seconds,
                  r.distortion);
    }
  }

  // --- Shape checks. ---
  std::printf("\nshape checks:\n");
  // k-means time grows ~linearly with k; gk-means stays near-flat.
  const double km_growth = by_k.back()[2].seconds / by_k.front()[2].seconds;
  const double gk_growth = by_k.back()[4].seconds / by_k.front()[4].seconds;
  std::printf("  k-means time grows with k:   %s (%.1fx over %.0fx k range)\n",
              km_growth > 3.0 ? "PASS" : "FAIL", km_growth,
              static_cast<double>(ks.back()) / static_cast<double>(ks.front()));
  std::printf("  gk-means time near-flat in k: %s (%.2fx)\n",
              gk_growth < km_growth / 2.0 ? "PASS" : "FAIL", gk_growth);
  // GK-means beats the O(nkd) family (k-means, BKM) outright at max k.
  // (Our lean closure implementation has a smaller init constant than the
  // authors'; its loss to GK-means shows in distortion, as in Fig. 7(b) /
  // Tab. 2 — see EXPERIMENTS.md.)
  //
  // The crossover point scales with n*k: GK-means pays a near-constant
  // graph+init cost that the O(nkd) family only overtakes once n*k is
  // large enough, and the batched-kernel Lloyd (~3.5x faster than the
  // paper-era baseline) pushed that crossover up. Below the documented
  // scale floor (GKM_SCALE < 0.5, i.e. n*k under ~0.5x the paper's
  // sweep) the gate is reported but not judged — the asymptotic checks
  // above still pin the shapes. See docs/benchmarks.md.
  const double kCrossoverScaleFloor = 0.5;
  const bool gate_crossover = gkm::bench::Scale() >= kCrossoverScaleFloor;
  const auto& last = by_k.back();
  const bool crossover_ok =
      last[4].seconds < std::min(last[2].seconds, last[3].seconds);
  if (gate_crossover) {
    std::printf("  gk beats k-means & bkm at max k: %s (gk %.1fs vs km %.1fs "
                "bkm %.1fs)\n",
                crossover_ok ? "PASS" : "FAIL", last[4].seconds,
                last[2].seconds, last[3].seconds);
  } else {
    std::printf("  gk beats k-means & bkm at max k: SKIP (crossover moves "
                "with n*k; needs GKM_SCALE >= %.2g, have %.2g; measured "
                "gk %.1fs vs km %.1fs bkm %.1fs)\n",
                kCrossoverScaleFloor, gkm::bench::Scale(), last[4].seconds,
                last[2].seconds, last[3].seconds);
  }
  // Quality at max k: gk close to bkm and below closure; mini-batch worst
  // among the converged methods (k-means at 15 random-init iterations may
  // not have converged; the paper runs 30).
  std::printf("  gk quality ~ bkm at max k:   %s (gk/bkm = %.3f)\n",
              last[4].distortion < 1.10 * last[3].distortion ? "PASS" : "FAIL",
              last[4].distortion / last[3].distortion);
  std::printf("  gk beats closure on E at max k: %s (%.5f vs %.5f)\n",
              last[4].distortion < last[1].distortion ? "PASS" : "FAIL",
              last[4].distortion, last[1].distortion);
  std::printf("  mini-batch worst converged method at max k: %s\n",
              last[0].distortion >= std::max({last[1].distortion,
                                              last[3].distortion,
                                              last[4].distortion})
                  ? "PASS"
                  : "FAIL");
  return 0;
}
