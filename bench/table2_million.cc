// Copyright 2026 The gkmeans Authors.
// Reproduces Tab. 2 (the paper's headline): partitioning VLAD10M into 1M
// clusters — here scaled to keep the paper's n/k = 10 ratio. Compares
// KGraph+GK-means, GK-means and closure k-means on init/iteration/total
// time, final distortion E and the recall of the supplied KNN graph
// (sampled over 100 nodes, the paper's protocol).
// Paper shapes: GK-means fastest total and best E; KGraph+GK-means far
// slower init (NN-Descent) yet *higher* graph recall — its E still loses
// to GK-means because Alg. 3's graph carries clustering structure;
// closure k-means sits between on time and worst on E.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/gk_means.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "graph/nn_descent.h"
#include "kmeans/closure_kmeans.h"

namespace {

struct Row {
  const char* method;
  double init_s;
  double iter_s;
  double total_s;
  double distortion;
  double recall;  // -1 = N.A.
};

void Print(const Row& r) {
  std::printf("%-18s %-9.1f %-9.1f %-9.1f %-10.5f ", r.method, r.init_s,
              r.iter_s, r.total_s, r.distortion);
  if (r.recall >= 0.0) {
    std::printf("%-8.2f\n", r.recall);
  } else {
    std::printf("%-8s\n", "N.A.");
  }
}

}  // namespace

int main() {
  const std::size_t n = gkm::bench::ScaledN(30000);
  const std::size_t k = n / 10;  // the paper's 10M -> 1M ratio
  // kappa = 40 (paper: 50): NN-Descent's local-join cost grows
  // quadratically in kappa, which is precisely why the paper's
  // KGraph init is 10x slower than Alg. 3 at equal degree.
  const std::size_t kappa = 40;
  const std::size_t iters = 30;  // all methods early-stop on convergence

  gkm::bench::Header("Table 2", "challenge test: n/k = 10 ultra-fine "
                                "clustering on VLAD-like data");
  std::printf("dataset: VLAD-like n=%zu d=512; k=%zu; kappa=%zu\n\n", n, k,
              kappa);
  const gkm::SyntheticData data = gkm::MakeVladLike(n, 512, 42);
  const gkm::Matrix& x = data.vectors;

  // Sampled graph-recall ground truth (100 probes, as in §5.1).
  gkm::Rng rng(3);
  const std::vector<std::uint32_t> subset = rng.SampleDistinct(n, 100);
  const std::vector<std::uint32_t> subset_nn =
      gkm::ExactNearestForSubset(x, subset);

  std::vector<Row> rows;

  {  // KGraph+GK-means
    gkm::Timer timer;
    gkm::NnDescentParams np;
    np.k = kappa;
    const gkm::KnnGraph g = NnDescent(x, np);
    const double graph_secs = timer.Seconds();
    gkm::GkMeansParams p;
    p.k = k;
    p.kappa = kappa;
    p.max_iters = iters;
    const gkm::ClusteringResult res = GkMeansWithGraph(x, g, p);
    rows.push_back({"KGraph+GK-means", graph_secs + res.init_seconds,
                    res.iter_seconds, graph_secs + res.total_seconds,
                    res.distortion,
                    gkm::SampledRecallAt1(g, subset, subset_nn)});
  }
  {  // GK-means (standard: Alg. 3 graph)
    gkm::Timer timer;
    gkm::GraphBuildParams gp;
    gp.kappa = kappa;
    gp.xi = 50;
    gp.tau = 10;
    const gkm::KnnGraph g = BuildKnnGraph(x, gp);
    const double graph_secs = timer.Seconds();
    gkm::GkMeansParams p;
    p.k = k;
    p.kappa = kappa;
    p.max_iters = iters;
    const gkm::ClusteringResult res = GkMeansWithGraph(x, g, p);
    rows.push_back({"GK-means", graph_secs + res.init_seconds,
                    res.iter_seconds, graph_secs + res.total_seconds,
                    res.distortion,
                    gkm::SampledRecallAt1(g, subset, subset_nn)});
  }
  {  // closure k-means
    gkm::ClosureParams p;
    p.k = k;
    p.num_trees = 3;
    p.leaf_size = 50;
    p.max_iters = iters;
    const gkm::ClusteringResult res = ClosureKMeans(x, p);
    rows.push_back({"Closure k-means", res.init_seconds, res.iter_seconds,
                    res.total_seconds, res.distortion, -1.0});
  }

  std::printf("%-18s %-9s %-9s %-9s %-10s %-8s\n", "Method", "Init(s)",
              "Iter(s)", "Total(s)", "E", "Recall");
  for (const Row& r : rows) Print(r);

  std::printf("\nshape checks:\n");
  // At paper scale NN-Descent's init dominates (27.3h vs 2.7h); the same
  // ordering must hold here at equal graph degree.
  std::printf("  GK-means beats KGraph+GK-means on total time: %s "
              "(%.1fs vs %.1fs)\n",
              rows[1].total_s < rows[0].total_s ? "PASS" : "FAIL",
              rows[1].total_s, rows[0].total_s);
  // Quality: GK-means at worst within 1%% of the (near-exact-graph)
  // KGraph config — the paper even reports it slightly ahead — and
  // clearly below closure.
  std::printf("  GK-means E within 1%% of KGraph+GK-means E: %s "
              "(%.5f vs %.5f)\n",
              rows[1].distortion <= 1.01 * rows[0].distortion ? "PASS"
                                                              : "FAIL",
              rows[1].distortion, rows[0].distortion);
  std::printf("  closure worst E:               %s\n",
              rows[2].distortion >=
                      std::max(rows[0].distortion, rows[1].distortion)
                  ? "PASS"
                  : "FAIL");
  std::printf("  KGraph recall >= Alg.3 recall: %s (%.2f vs %.2f) — higher "
              "recall buys no E advantage\n",
              rows[0].recall >= rows[1].recall ? "PASS" : "FAIL",
              rows[0].recall, rows[1].recall);
  return 0;
}
