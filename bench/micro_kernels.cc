// Copyright 2026 The gkmeans Authors.
// Google-benchmark microbenchmarks for the hot kernels underneath every
// experiment: distance computations at the paper's dimensions and the
// BKM move-gain evaluation. These are sanity gauges for the cost model in
// DESIGN.md, not paper artifacts.

#include <benchmark/benchmark.h>

#include "common/distance.h"
#include "common/rng.h"
#include "dataset/synthetic.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

void BM_L2Sqr(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.UniformFloat();
    b[i] = rng.UniformFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sqr(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_L2Sqr)->Arg(100)->Arg(128)->Arg(512)->Arg(960);

void BM_Dot(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.UniformFloat();
    b[i] = rng.UniformFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_Dot)->Arg(128)->Arg(512);

void BM_NearestRow(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 128;
  const SyntheticData data = MakeSiftLike(k + 1, d, 3);
  Matrix centroids(k, d);
  for (std::size_t r = 0; r < k; ++r) centroids.SetRow(r, data.vectors.Row(r));
  const float* q = data.vectors.Row(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NearestRow(centroids, q));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_NearestRow)->Arg(64)->Arg(1024);

// One BKM candidate evaluation (GainArrive): the inner loop of GK-means.
void BM_GainArrive(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  SyntheticSpec spec;
  spec.n = 256;
  spec.dim = d;
  spec.modes = 8;
  const SyntheticData data = MakeGaussianMixture(spec);
  Rng rng(4);
  const auto labels = BalancedRandomLabels(256, 16, rng);
  ClusterState cs(data.vectors, labels, 16);
  const float* x = data.vectors.Row(0);
  const float xn = NormSqr(x, d);
  std::size_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.GainArrive(x, xn, v));
    v = (v + 1) % 16;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_GainArrive)->Arg(128)->Arg(512);

}  // namespace
}  // namespace gkm

BENCHMARK_MAIN();
