// Copyright 2026 The gkmeans Authors.
// Google-benchmark microbenchmarks for the hot kernels underneath every
// experiment: the one-pair scalar distances, the batched one-to-many and
// blocked kernels of common/kernels.h at the paper's dimensions, and the
// BKM move-gain evaluation. These are sanity gauges for the cost model in
// DESIGN.md, not paper artifacts.
//
// `--smoke` runs a self-contained throughput gate instead of the
// benchmark suite: the dispatched one-to-many batch kernel must beat a
// loop over the per-pair scalar L2Sqr by >= 1.5x at d=128 (the CI
// assertion for the SIMD dispatch actually engaging). Exits non-zero on
// failure, prints the active tier either way.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/distance.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/timer.h"
#include "dataset/synthetic.h"
#include "kmeans/cluster_state.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

Matrix RandomRows(std::size_t n, std::size_t d, std::uint64_t seed) {
  Matrix m(n, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) m.At(i, j) = rng.UniformFloat();
  }
  return m;
}

void BM_L2Sqr(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.UniformFloat();
    b[i] = rng.UniformFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sqr(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_L2Sqr)->Arg(100)->Arg(128)->Arg(512)->Arg(960);

void BM_Dot(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.UniformFloat();
    b[i] = rng.UniformFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_Dot)->Arg(128)->Arg(512);

// One-to-many: per-pair scalar loop (the pre-kernel-layer baseline)...
void BM_L2SqrPerPairLoop(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 64;
  const Matrix rows = RandomRows(n, d, 3);
  const Matrix q = RandomRows(1, d, 4);
  std::vector<float> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = L2Sqr(q.Row(0), rows.Row(i), d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * d);
}
BENCHMARK(BM_L2SqrPerPairLoop)->Arg(100)->Arg(128)->Arg(960);

// ...versus the dispatched one-to-many batch kernel over the same rows.
void BM_L2SqrBatch(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 64;
  const Matrix rows = RandomRows(n, d, 3);
  const Matrix q = RandomRows(1, d, 4);
  std::vector<float> out(n);
  for (auto _ : state) {
    L2SqrBatch(q.Row(0), rows.Row(0), rows.stride(), n, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * d);
}
BENCHMARK(BM_L2SqrBatch)->Arg(100)->Arg(128)->Arg(960);

// Gathered variant at graph-walk candidate counts.
void BM_L2SqrBatchGather(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 128;
  const Matrix rows = RandomRows(256, d, 5);
  const Matrix q = RandomRows(1, d, 6);
  Rng rng(7);
  std::vector<const float*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.Row(rng.Index(256));
  std::vector<float> out(n);
  for (auto _ : state) {
    L2SqrBatchGather(q.Row(0), ptrs.data(), n, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * d);
}
BENCHMARK(BM_L2SqrBatchGather)->Arg(16)->Arg(48);

// Cold gather: candidates scattered across an arena far larger than L2
// cache, a fresh random set each iteration — the memory-bound shape of a
// walk expansion over a big online graph, where the kernel's software
// prefetch of the next block's rows pays (the 256-row case above is
// cache-resident and measures pure compute).
void BM_L2SqrBatchGatherCold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 128;
  const std::size_t arena = 200000;  // ~100 MB of rows
  const Matrix rows = RandomRows(arena, d, 5);
  const Matrix q = RandomRows(1, d, 6);
  Rng rng(7);
  std::vector<const float*> ptrs(n);
  std::vector<float> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.Row(rng.Index(arena));
    L2SqrBatchGather(q.Row(0), ptrs.data(), n, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * d);
}
BENCHMARK(BM_L2SqrBatchGatherCold)->Arg(16)->Arg(48)->Arg(256);

// Many-to-many assignment: scalar NearestRow loop vs the blocked
// dot-trick kernel with cached norms (the Lloyd/mini-batch hot path).
void BM_NearestRow(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 128;
  const SyntheticData data = MakeSiftLike(k + 1, d, 3);
  Matrix centroids(k, d);
  for (std::size_t r = 0; r < k; ++r) centroids.SetRow(r, data.vectors.Row(r));
  const float* q = data.vectors.Row(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NearestRow(centroids, q));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_NearestRow)->Arg(64)->Arg(1024);

void BM_AssignBlocked(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 128;
  const std::size_t n = 512;
  const SyntheticData data = MakeSiftLike(n + k, d, 3);
  Matrix centroids(k, d);
  for (std::size_t r = 0; r < k; ++r) centroids.SetRow(r, data.vectors.Row(r));
  const Matrix points = SliceRows(data.vectors, k, k + n);
  std::vector<float> qnorms(n), cnorms(k);
  RowNormsSqr(points, qnorms.data());
  RowNormsSqr(centroids, cnorms.data());
  std::vector<std::uint32_t> labels(n);
  for (auto _ : state) {
    AssignNearestBlocked(points, centroids, qnorms.data(), cnorms.data(),
                         labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * k);
}
BENCHMARK(BM_AssignBlocked)->Arg(64)->Arg(1024);

// One BKM candidate evaluation (GainArrive): the inner loop of GK-means.
void BM_GainArrive(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  SyntheticSpec spec;
  spec.n = 256;
  spec.dim = d;
  spec.modes = 8;
  const SyntheticData data = MakeGaussianMixture(spec);
  Rng rng(4);
  const auto labels = BalancedRandomLabels(256, 16, rng);
  ClusterState cs(data.vectors, labels, 16);
  const float* x = data.vectors.Row(0);
  const float xn = NormSqr(x, d);
  std::size_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.GainArrive(x, xn, v));
    v = (v + 1) % 16;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * d);
}
BENCHMARK(BM_GainArrive)->Arg(128)->Arg(512);

// --- CI smoke gate ---------------------------------------------------------

int RunSmoke() {
  const std::size_t n = 64, d = 128;
  const Matrix rows = RandomRows(n, d, 3);
  const Matrix q = RandomRows(1, d, 4);
  std::vector<float> out(n);
  const int reps = 120000;

  // Warm both paths, then time. Best-of-3 interleaved windows per path:
  // shared CI runners deschedule whole ~0.1s windows, and the minimum is
  // the standard noise-robust microbenchmark statistic.
  for (int w = 0; w < 1000; ++w) {
    for (std::size_t i = 0; i < n; ++i) out[i] = L2Sqr(q.Row(0), rows.Row(i), d);
    L2SqrBatch(q.Row(0), rows.Row(0), rows.stride(), n, d, out.data());
  }
  double scalar_s = 1e30, batch_s = 1e30;
  for (int round = 0; round < 3; ++round) {
    Timer t;
    for (int r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = L2Sqr(q.Row(0), rows.Row(i), d);
      }
      benchmark::DoNotOptimize(out.data());
    }
    scalar_s = std::min(scalar_s, t.Seconds());
    t.Reset();
    for (int r = 0; r < reps; ++r) {
      L2SqrBatch(q.Row(0), rows.Row(0), rows.stride(), n, d, out.data());
      benchmark::DoNotOptimize(out.data());
    }
    batch_s = std::min(batch_s, t.Seconds());
  }
  const double speedup = scalar_s / batch_s;
  // The active tier is part of every BENCH json (JsonReport adds it), so
  // the smoke line no longer prints its own copy.
  const SimdTier tier = ActiveSimdTier();
  std::printf("kernel smoke: d=%zu n=%zu scalar=%.3fs batch=%.3fs "
              "speedup=%.2fx\n",
              d, n, scalar_s, batch_s, speedup);
  bool ok = false;
  if (tier == SimdTier::kScalar) {
    // Forced-scalar (or no SIMD): the batch path IS the scalar loop; only
    // sanity-check it didn't regress.
    ok = speedup > 0.8;
    std::printf("scalar tier: no speedup expected — %s\n",
                ok ? "PASS" : "FAIL");
  } else {
    ok = speedup >= 1.5;
    std::printf("batched >= 1.5x per-pair scalar: %s\n", ok ? "PASS" : "FAIL");
  }

  bench::JsonReport report("micro_kernels");
  report.Add("d", static_cast<double>(d));
  report.Add("n", static_cast<double>(n));
  report.Add("scalar_secs", scalar_s);
  report.Add("batch_secs", batch_s);
  report.Add("batch_speedup", speedup);
  report.Add("pass", ok ? 1.0 : 0.0);
  report.Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gkm

int main(int argc, char** argv) {
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) return gkm::RunSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
