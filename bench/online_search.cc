// Copyright 2026 The gkmeans Authors.
// Serving-path bench: promotes OnlineKnnGraph::SearchKnn from a debugging
// helper to a measured ANN query engine. Streams a synthetic corpus into
// the online graph (batched, thread-parallel ingest), then serves held-out
// queries three ways and compares recall@10 and QPS:
//   - online SearchKnn, single thread, reused SearchScratch
//   - online SearchKnn, thread-parallel over the pool (per-slot scratch)
//   - anns/GraphSearcher beam search over the same graph + vectors (the
//     batch serving stack, as the reference point)
// Ground truth is brute force. A churn phase then removes 30% of the
// corpus and backfills with fresh points, re-measuring recall against the
// survivors — the deletion/repair path must hold serving quality.
// Shape targets: online recall@10 >= 0.8, post-churn recall@10 >= 0.8.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "anns/graph_search.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "dataset/synthetic.h"
#include "graph/brute_force.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/online_knn_graph.h"
#include "stream/sharded_online_knn_graph.h"
#include "stream/streaming_gkmeans.h"

namespace {

double RecallAt10(const std::vector<std::vector<gkm::Neighbor>>& got,
                  const std::vector<std::vector<gkm::Neighbor>>& truth) {
  std::size_t hit = 0, want = 0;
  for (std::size_t q = 0; q < got.size(); ++q) {
    want += truth[q].size();
    for (const gkm::Neighbor& t : truth[q]) {
      for (const gkm::Neighbor& g : got[q]) {
        if (g.id == t.id) {
          ++hit;
          break;
        }
      }
    }
  }
  return want == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(want);
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke pins the CI smoke workload (build-and-test runs this bench at
  // GKM_SCALE=0.3) so gate scripts get a stable BENCH json.
  gkm::bench::SmokeFromArgs(argc, argv, 0.3);
  const std::size_t n = gkm::bench::ScaledN(20000, 5000);
  const std::size_t nq = 500;
  const std::size_t dim = 32;
  const std::size_t topk = 10;

  gkm::bench::Header("Online serving path",
                     "OnlineKnnGraph::SearchKnn vs anns/graph_search");
  std::printf("dataset: GMM n=%zu d=%zu, %zu held-out queries, top-%zu\n", n,
              dim, nq, topk);

  gkm::SyntheticSpec spec;
  spec.n = n + nq;
  spec.dim = dim;
  spec.modes = 40;
  spec.seed = 7;
  const gkm::SyntheticData data = gkm::MakeGaussianMixture(spec);
  const gkm::Matrix base = gkm::SliceRows(data.vectors, 0, n);
  const gkm::Matrix queries = gkm::SliceRows(data.vectors, n, n + nq);

  // --- Ingest (batched, thread-parallel). ---
  gkm::OnlineGraphParams p;
  p.kappa = 16;
  p.beam_width = 64;
  p.num_seeds = 64;
  gkm::ThreadPool pool;
  gkm::OnlineKnnGraph graph(dim, p);
  gkm::Timer ingest;
  const std::size_t window = 1000;
  for (std::size_t b = 0; b < n; b += window) {
    graph.InsertBatch(gkm::SliceRows(base, b, std::min(b + window, n)), &pool);
  }
  const double ingest_secs = ingest.Seconds();
  std::printf("ingest: %zu points in %.2fs (%.0f pts/s, %zu threads), "
              "adaptive seeds settled at %zu (from %zu)\n",
              n, ingest_secs, static_cast<double>(n) / ingest_secs,
              pool.num_threads(), graph.live_num_seeds(), p.num_seeds);

  const std::vector<std::vector<gkm::Neighbor>> truth =
      gkm::BruteForceSearch(base, queries, topk);

  // --- Online SearchKnn, single thread, reused scratch. Per-query
  // latency lands in a concrete obs::Histogram (works in GKM_NO_STATS
  // builds too), so the json carries p50/p99 alongside QPS. ---
  std::vector<std::vector<gkm::Neighbor>> online(nq);
  gkm::SearchScratch scratch;
  gkm::obs::Histogram query_hist;
  gkm::Timer single;
  for (std::size_t q = 0; q < nq; ++q) {
    gkm::obs::ScopedTimer span(query_hist);
    online[q] = graph.SearchKnn(queries.Row(q), topk, scratch);
  }
  const double single_secs = single.Seconds();
  const gkm::obs::HistogramData query_lat = query_hist.Snapshot();
  const double online_recall = RecallAt10(online, truth);

  // --- Online SearchKnnBatch: one rwlock acquisition per batch of 64. ---
  std::vector<std::vector<gkm::Neighbor>> batched;
  batched.reserve(nq);
  gkm::Timer batch_timer;
  const std::size_t qbatch = 64;
  for (std::size_t b = 0; b < nq; b += qbatch) {
    auto part = graph.SearchKnnBatch(
        gkm::SliceRows(queries, b, std::min(b + qbatch, nq)), topk, scratch);
    for (auto& r : part) batched.push_back(std::move(r));
  }
  const double batched_secs = batch_timer.Seconds();
  const double batched_recall = RecallAt10(batched, truth);

  // --- Online SearchKnn, thread-parallel with per-slot scratch. ---
  std::vector<gkm::SearchScratch> slot_scratch(pool.num_threads());
  std::vector<std::vector<gkm::Neighbor>> parallel(nq);
  gkm::Timer multi;
  pool.ParallelForSlots(0, nq, [&](std::size_t slot, std::size_t q) {
    parallel[q] = graph.SearchKnn(queries.Row(q), topk, slot_scratch[slot]);
  });
  const double multi_secs = multi.Seconds();
  const double parallel_recall = RecallAt10(parallel, truth);

  // --- Batch serving stack over the same graph, as reference. ---
  // Like-for-like budgets: same beam and the same entry-point count the
  // online path's adaptive policy settled on, so the comparison isolates
  // the searchers, not their seed budgets.
  gkm::GraphSearcher searcher(graph.points(), graph.graph());
  gkm::SearchParams srch;
  srch.topk = topk;
  srch.beam_width = p.beam_width;
  srch.num_seeds = graph.live_num_seeds();
  gkm::Timer batch;
  const std::vector<std::vector<gkm::Neighbor>> reference =
      searcher.SearchAll(queries, srch);
  const double batch_secs = batch.Seconds();
  const double reference_recall = RecallAt10(reference, truth);

  std::printf("\n%-28s %-10s %-10s\n", "serving path", "recall@10", "QPS");
  std::printf("%-28s %-10.3f %-10.0f\n", "online SearchKnn (1 thread)",
              online_recall, static_cast<double>(nq) / single_secs);
  std::printf("%-28s %-10.3f %-10.0f\n", "online SearchKnnBatch (64)",
              batched_recall, static_cast<double>(nq) / batched_secs);
  std::printf("%-28s %-10.3f %-10.0f\n", "online SearchKnn (pool)",
              parallel_recall, static_cast<double>(nq) / multi_secs);
  std::printf("%-28s %-10.3f %-10.0f\n", "anns/graph_search",
              reference_recall, static_cast<double>(nq) / batch_secs);

  // --- Churn phase: remove 30% of the corpus, backfill, re-measure. ---
  // Tombstoned nodes must drop out of results immediately, the repair
  // join has to keep the graph navigable, and the amortized purge +
  // slot reuse keep the arena dense (it must not grow past the original
  // corpus even though 30% of it was replaced).
  gkm::Timer churn_timer;
  std::size_t removed = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (id % 10 < 3) {
      graph.Remove(id);
      ++removed;
    }
  }
  // Sweep the stragglers below the auto-purge threshold at a quiet moment
  // so the whole backfill lands in reclaimed slots.
  graph.CompactTombstones();
  gkm::SyntheticSpec refill_spec = spec;
  refill_spec.n = removed;
  refill_spec.seed = 1234;
  const gkm::SyntheticData refill = gkm::MakeGaussianMixture(refill_spec);
  for (std::size_t b = 0; b < removed; b += window) {
    graph.InsertBatch(
        gkm::SliceRows(refill.vectors, b, std::min(b + window, removed)),
        &pool);
  }
  const double churn_secs = churn_timer.Seconds();
  std::printf("\nchurn: removed %zu (30%%) + backfilled %zu in %.2fs "
              "(%.0f ops/s); arena %zu slots, %zu alive\n",
              removed, removed, churn_secs,
              2.0 * static_cast<double>(removed) / churn_secs, graph.size(),
              graph.num_alive());

  // Ground truth over the survivors, mapped back to graph slot ids.
  std::vector<std::uint32_t> alive_ids;
  gkm::Matrix alive(0, dim);
  for (std::uint32_t id = 0; id < graph.size(); ++id) {
    if (!graph.IsAlive(id)) continue;
    alive_ids.push_back(id);
    alive.AppendRow(graph.points().Row(id));
  }
  const std::vector<std::vector<gkm::Neighbor>> churn_truth =
      gkm::BruteForceSearch(alive, queries, topk);
  std::vector<std::vector<gkm::Neighbor>> churn_got(nq);
  gkm::Timer churn_search;
  for (std::size_t q = 0; q < nq; ++q) {
    churn_got[q] = graph.SearchKnn(queries.Row(q), topk, scratch);
  }
  const double churn_search_secs = churn_search.Seconds();
  std::size_t hit = 0, want = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    want += churn_truth[q].size();
    for (const gkm::Neighbor& t : churn_truth[q]) {
      for (const gkm::Neighbor& g : churn_got[q]) {
        if (g.id == alive_ids[t.id]) {
          ++hit;
          break;
        }
      }
    }
  }
  const double churn_recall =
      want == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(want);
  std::printf("%-28s %-10.3f %-10.0f\n", "online SearchKnn post-churn",
              churn_recall, static_cast<double>(nq) / churn_search_secs);

  // --- Sharded serving (S=4): the stall-free multi-writer configuration.
  // Cross-shard SearchKnn fans over 4 independent arenas and merges; the
  // quality bar is the same as the single-arena path, fresh AND after the
  // same 30% churn + backfill cycle (each shard repairs and reuses slots
  // independently). ---
  gkm::OnlineGraphParams sharded_params = p;
  sharded_params.shards = 4;
  gkm::ShardedOnlineKnnGraph sharded(dim, sharded_params);
  std::vector<std::uint32_t> sharded_ids;
  gkm::Timer sharded_ingest;
  for (std::size_t b = 0; b < n; b += window) {
    sharded.InsertBatch(gkm::SliceRows(base, b, std::min(b + window, n)),
                        &pool, nullptr, nullptr, &sharded_ids);
  }
  const double sharded_ingest_secs = sharded_ingest.Seconds();

  std::vector<std::vector<gkm::Neighbor>> sharded_got(nq);
  gkm::Timer sharded_timer;
  for (std::size_t q = 0; q < nq; ++q) {
    sharded_got[q] = sharded.SearchKnn(queries.Row(q), topk, scratch);
  }
  const double sharded_secs = sharded_timer.Seconds();
  std::size_t sharded_hit = 0, sharded_want = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    sharded_want += truth[q].size();
    for (const gkm::Neighbor& t : truth[q]) {
      for (const gkm::Neighbor& g : sharded_got[q]) {
        if (g.id == sharded_ids[t.id]) {
          ++sharded_hit;
          break;
        }
      }
    }
  }
  const double sharded_recall =
      sharded_want == 0 ? 0.0
                        : static_cast<double>(sharded_hit) /
                              static_cast<double>(sharded_want);
  std::printf("\nsharded (S=4): ingest %.0f pts/s; %-10.3f %-10.0f "
              "(recall@10, QPS)\n",
              static_cast<double>(n) / sharded_ingest_secs, sharded_recall,
              static_cast<double>(nq) / sharded_secs);

  // Churn the sharded graph the same way: 30% out (by insertion identity),
  // purge, backfill.
  std::size_t sharded_removed = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    if (r % 10 < 3) {
      sharded.Remove(sharded_ids[r]);
      ++sharded_removed;
    }
  }
  sharded.CompactTombstones();
  for (std::size_t b = 0; b < sharded_removed; b += window) {
    sharded.InsertBatch(
        gkm::SliceRows(refill.vectors, b,
                       std::min(b + window, sharded_removed)),
        &pool);
  }
  std::vector<std::uint32_t> sharded_alive_ids;
  gkm::Matrix sharded_alive(0, dim);
  for (std::uint32_t g = 0; g < sharded.size(); ++g) {
    if (!sharded.IsAlive(g)) continue;
    sharded_alive_ids.push_back(g);
    sharded_alive.AppendRow(sharded.Point(g));
  }
  const std::vector<std::vector<gkm::Neighbor>> sharded_churn_truth =
      gkm::BruteForceSearch(sharded_alive, queries, topk);
  std::size_t schurn_hit = 0, schurn_want = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    const auto got = sharded.SearchKnn(queries.Row(q), topk, scratch);
    schurn_want += sharded_churn_truth[q].size();
    for (const gkm::Neighbor& t : sharded_churn_truth[q]) {
      for (const gkm::Neighbor& g : got) {
        if (g.id == sharded_alive_ids[t.id]) {
          ++schurn_hit;
          break;
        }
      }
    }
  }
  const double sharded_churn_recall =
      schurn_want == 0 ? 0.0
                       : static_cast<double>(schurn_hit) /
                             static_cast<double>(schurn_want);
  std::printf("sharded (S=4) post-churn recall@10: %.3f (%zu alive, arena "
              "%zu)\n",
              sharded_churn_recall, sharded.num_alive(), sharded.size());

  // --- SQ8 quantized arena: the same workload with u8 row storage and
  // asymmetric (fp32 query vs u8 row) kernels. Ground truth is brute force
  // over the DECODED arena — the SQ8 contract is exactness against what
  // the arena stores; pool membership is where quantization error lives.
  // Quality bars: recall@10 >= 0.8 fresh and after the same 30% churn +
  // backfill cycle, arena bytes/point >= 3.5x smaller than fp32, serve QPS
  // >= 0.9x fp32 (timing ratio gated at the documented scale, like every
  // other perf ratio in these benches). ---
  gkm::OnlineGraphParams qp = p;
  qp.storage = gkm::StorageMode::kSq8;
  // The per-dimension quantizer trains on the bootstrap window. The graph
  // default (128 rows) is far too thin a sample for a 40-mode corpus at
  // d=32 — later rows clamp to the trained range and walk quality drops.
  // Train on 1k rows, the same order of magnitude the streaming clusterer's
  // bootstrap feeds it (StreamingGkMeans additionally retrains on drift).
  qp.bootstrap = 1024;
  gkm::OnlineKnnGraph qgraph(dim, qp);
  gkm::Timer sq8_ingest;
  for (std::size_t b = 0; b < n; b += window) {
    qgraph.InsertBatch(gkm::SliceRows(base, b, std::min(b + window, n)),
                       &pool);
  }
  const double sq8_ingest_secs = sq8_ingest.Seconds();

  const std::size_t fp32_bytes = graph.arena_bytes_per_point();
  const std::size_t sq8_bytes = qgraph.arena_bytes_per_point();
  const double arena_ratio =
      static_cast<double>(fp32_bytes) / static_cast<double>(sq8_bytes);

  gkm::Matrix decoded(0, dim);
  for (std::uint32_t id = 0; id < qgraph.size(); ++id) {
    decoded.AppendRow(qgraph.PointPtr(id));
  }
  const std::vector<std::vector<gkm::Neighbor>> sq8_truth =
      gkm::BruteForceSearch(decoded, queries, topk);
  std::vector<std::vector<gkm::Neighbor>> sq8_got(nq);
  gkm::Timer sq8_single;
  for (std::size_t q = 0; q < nq; ++q) {
    sq8_got[q] = qgraph.SearchKnn(queries.Row(q), topk, scratch);
  }
  const double sq8_single_secs = sq8_single.Seconds();
  const double sq8_recall = RecallAt10(sq8_got, sq8_truth);
  const double sq8_rerank_fraction =
      qgraph.sq8_scored() == 0
          ? 0.0
          : static_cast<double>(qgraph.sq8_reranked()) /
                static_cast<double>(qgraph.sq8_scored());

  std::printf("\nSQ8 arena: %zu B/pt vs fp32 %zu B/pt (%.2fx smaller); "
              "ingest %.0f pts/s (fp32 %.0f); rerank fraction %.3f\n",
              sq8_bytes, fp32_bytes, arena_ratio,
              static_cast<double>(n) / sq8_ingest_secs,
              static_cast<double>(n) / ingest_secs, sq8_rerank_fraction);
  std::printf("%-28s %-10.3f %-10.0f\n", "SQ8 SearchKnn (1 thread)",
              sq8_recall, static_cast<double>(nq) / sq8_single_secs);

  // Same churn cycle against the quantized arena: tombstone repair decodes
  // rows, slot reuse re-encodes in place, and walks stay quantized.
  std::size_t sq8_removed = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (id % 10 < 3) {
      qgraph.Remove(id);
      ++sq8_removed;
    }
  }
  qgraph.CompactTombstones();
  for (std::size_t b = 0; b < sq8_removed; b += window) {
    qgraph.InsertBatch(
        gkm::SliceRows(refill.vectors, b, std::min(b + window, sq8_removed)),
        &pool);
  }
  std::vector<std::uint32_t> sq8_alive_ids;
  gkm::Matrix sq8_alive(0, dim);
  for (std::uint32_t id = 0; id < qgraph.size(); ++id) {
    if (!qgraph.IsAlive(id)) continue;
    sq8_alive_ids.push_back(id);
    sq8_alive.AppendRow(qgraph.PointPtr(id));
  }
  const std::vector<std::vector<gkm::Neighbor>> sq8_churn_truth =
      gkm::BruteForceSearch(sq8_alive, queries, topk);
  std::size_t sq8_hit = 0, sq8_want = 0;
  for (std::size_t q = 0; q < nq; ++q) {
    const auto got = qgraph.SearchKnn(queries.Row(q), topk, scratch);
    sq8_want += sq8_churn_truth[q].size();
    for (const gkm::Neighbor& t : sq8_churn_truth[q]) {
      for (const gkm::Neighbor& g : got) {
        if (g.id == sq8_alive_ids[t.id]) {
          ++sq8_hit;
          break;
        }
      }
    }
  }
  const double sq8_churn_recall =
      sq8_want == 0
          ? 0.0
          : static_cast<double>(sq8_hit) / static_cast<double>(sq8_want);
  std::printf("%-28s %-10.3f\n", "SQ8 SearchKnn post-churn", sq8_churn_recall);

  const double sq8_qps_ratio = single_secs / sq8_single_secs;
  const double sq8_ingest_ratio = ingest_secs / sq8_ingest_secs;

  // --- Cluster-routed sharding (S=4): the streaming clusterer homes every
  // cluster on one shard and inserts each point onto its nearest cluster's
  // home, so a routed query searches ONE shard (plus a margin-guarded
  // spill) instead of merging four. Same quality bar as merged search —
  // recall@10 >= 0.8 fresh and after the 30% churn cycle — with the
  // headline claim that routing answers >= 2x the merged QPS. ---
  gkm::StreamingGkMeansParams rp;
  rp.k = 16;
  rp.kappa = 16;
  rp.graph = p;
  rp.graph.shards = 4;
  rp.routed_placement = true;
  rp.migrate_budget = 2048;
  gkm::StreamingGkMeans routed_model(dim, rp);
  std::vector<std::uint32_t> routed_ids;
  routed_ids.reserve(n);
  gkm::Timer routed_ingest;
  for (std::size_t b = 0; b < n; b += window) {
    std::vector<std::uint32_t> ids;
    routed_model.ObserveWindow(
        gkm::SliceRows(base, b, std::min(b + window, n)), &ids);
    routed_ids.insert(routed_ids.end(), ids.begin(), ids.end());
  }
  const double routed_ingest_secs = routed_ingest.Seconds();
  const gkm::ShardedOnlineKnnGraph& rgraph = routed_model.graph();

  // One measurement pass: brute-force truth over the live arena, then the
  // merged and routed paths answer the same queries back to back.
  const auto measure_routed = [&](double* merged_qps, double* routed_qps,
                                  double* merged_recall,
                                  double* routed_recall) {
    std::vector<std::uint32_t> live_ids;
    gkm::Matrix live(0, dim);
    for (std::uint32_t g = 0; g < rgraph.size(); ++g) {
      if (!rgraph.IsAlive(g)) continue;
      live_ids.push_back(g);
      live.AppendRow(rgraph.Point(g));
    }
    const std::vector<std::vector<gkm::Neighbor>> live_truth =
        gkm::BruteForceSearch(live, queries, topk);
    const auto recall_of =
        [&](const std::vector<std::vector<gkm::Neighbor>>& got) {
          std::size_t r_hit = 0, r_want = 0;
          for (std::size_t q = 0; q < nq; ++q) {
            r_want += live_truth[q].size();
            for (const gkm::Neighbor& t : live_truth[q]) {
              for (const gkm::Neighbor& g : got[q]) {
                if (g.id == live_ids[t.id]) {
                  ++r_hit;
                  break;
                }
              }
            }
          }
          return r_want == 0 ? 0.0
                             : static_cast<double>(r_hit) /
                                   static_cast<double>(r_want);
        };
    const int reps = 3;  // timing resolution; answers are deterministic
    std::vector<std::vector<gkm::Neighbor>> merged_got(nq), routed_got(nq);
    gkm::SearchScratch rscratch;
    gkm::Timer merged_timer;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t q = 0; q < nq; ++q) {
        merged_got[q] = rgraph.SearchKnn(queries.Row(q), topk, rscratch);
      }
    }
    *merged_qps = reps * static_cast<double>(nq) / merged_timer.Seconds();
    gkm::Timer routed_timer;
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t q = 0; q < nq; ++q) {
        routed_got[q] = rgraph.SearchKnnRouted(queries.Row(q), topk, rscratch);
      }
    }
    *routed_qps = reps * static_cast<double>(nq) / routed_timer.Seconds();
    *merged_recall = recall_of(merged_got);
    *routed_recall = recall_of(routed_got);
  };

  double merged_qps = 0.0, routed_qps = 0.0;
  double merged_recall = 0.0, routed_recall = 0.0;
  measure_routed(&merged_qps, &routed_qps, &merged_recall, &routed_recall);
  const double spill_rate =
      rgraph.route_hits() + rgraph.route_spills() == 0
          ? 0.0
          : static_cast<double>(rgraph.route_spills()) /
                static_cast<double>(rgraph.route_hits() +
                                    rgraph.route_spills());
  std::printf("\nrouted (S=4, k=%zu): ingest %.0f pts/s, spill rate %.3f\n",
              rp.k, static_cast<double>(n) / routed_ingest_secs, spill_rate);
  std::printf("%-28s %-10.3f %-10.0f\n", "merged SearchKnn (S=4)",
              merged_recall, merged_qps);
  std::printf("%-28s %-10.3f %-10.0f\n", "routed SearchKnn (S=4)",
              routed_recall, routed_qps);

  // Same churn cycle through the clusterer: 30% removed by insertion
  // identity, backfilled through windowed ingest (routed placement, TTL
  // clocks and the migration sweep all exercised).
  std::size_t routed_removed = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (r % 10 < 3 && rgraph.IsAlive(routed_ids[r])) {
      routed_model.RemovePoint(routed_ids[r]);
      ++routed_removed;
    }
  }
  for (std::size_t b = 0; b < routed_removed; b += window) {
    routed_model.ObserveWindow(gkm::SliceRows(
        refill.vectors, b, std::min(b + window, routed_removed)));
  }
  double churn_merged_qps = 0.0, churn_routed_qps = 0.0;
  double churn_merged_recall = 0.0, churn_routed_recall = 0.0;
  measure_routed(&churn_merged_qps, &churn_routed_qps, &churn_merged_recall,
                 &churn_routed_recall);
  const double routed_qps_ratio = routed_qps / merged_qps;
  std::printf("%-28s %-10.3f %-10.0f\n", "merged post-churn (S=4)",
              churn_merged_recall, churn_merged_qps);
  std::printf("%-28s %-10.3f %-10.0f\n", "routed post-churn (S=4)",
              churn_routed_recall, churn_routed_qps);

  // Element-wise determinism: pooled serving with per-slot scratch must
  // return exactly the serial answers, not merely the same recall — and
  // the batch API must be a pure lock-amortization of the per-query path.
  const bool pool_identical = parallel == online;
  const bool batch_identical = batched == online;
  const bool arena_dense = graph.size() == n && graph.num_alive() == n;
  std::printf("\nshape checks:\n");
  std::printf("  online recall@10 >= 0.8:  %s\n",
              online_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  pool results match serial: %s\n",
              pool_identical ? "PASS" : "FAIL");
  std::printf("  batch results match serial: %s\n",
              batch_identical ? "PASS" : "FAIL");
  std::printf("  post-churn recall@10 >= 0.8 (30%% churn): %s\n",
              churn_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  slot reuse keeps arena dense: %s\n",
              arena_dense ? "PASS" : "FAIL");
  std::printf("  sharded (S=4) recall@10 >= 0.8 fresh:     %s\n",
              sharded_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  sharded (S=4) recall@10 >= 0.8 post-churn: %s\n",
              sharded_churn_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  SQ8 arena >= 3.5x smaller:  %s (%.2fx)\n",
              arena_ratio >= 3.5 ? "PASS" : "FAIL", arena_ratio);
  std::printf("  SQ8 recall@10 >= 0.8 fresh: %s\n",
              sq8_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  SQ8 recall@10 >= 0.8 post-churn: %s\n",
              sq8_churn_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  routed (S=4) recall@10 >= 0.8 fresh:     %s\n",
              routed_recall >= 0.8 ? "PASS" : "FAIL");
  std::printf("  routed (S=4) recall@10 >= 0.8 post-churn: %s\n",
              churn_routed_recall >= 0.8 ? "PASS" : "FAIL");
  // Timing ratios are only meaningful at the documented scale on a real
  // multi-core box; CI smoke runs (GKM_SCALE < 1) report but don't gate,
  // matching the speedup-floor pattern in stream_throughput.
  const std::size_t cores = std::thread::hardware_concurrency();
  const bool can_gate_sq8_qps = cores >= 4 && gkm::bench::Scale() >= 1.0;
  bool sq8_qps_ok = true;
  if (can_gate_sq8_qps) {
    sq8_qps_ok = sq8_qps_ratio >= 0.9;
    std::printf("  SQ8 serve QPS >= 0.9x fp32: %s (%.2fx)\n",
                sq8_qps_ok ? "PASS" : "FAIL", sq8_qps_ratio);
  } else {
    std::printf("  SQ8 serve QPS >= 0.9x fp32: SKIPPED "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), sq8_qps_ratio);
  }
  bool routed_qps_ok = true;
  if (can_gate_sq8_qps) {
    routed_qps_ok = routed_qps_ratio >= 2.0;
    std::printf("  routed QPS >= 2.0x merged (S=4): %s (%.2fx)\n",
                routed_qps_ok ? "PASS" : "FAIL", routed_qps_ratio);
  } else {
    std::printf("  routed QPS >= 2.0x merged (S=4): SKIPPED "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), routed_qps_ratio);
  }
  const bool pass = online_recall >= 0.8 && pool_identical &&
                    batch_identical && churn_recall >= 0.8 && arena_dense &&
                    sharded_recall >= 0.8 && sharded_churn_recall >= 0.8 &&
                    arena_ratio >= 3.5 && sq8_recall >= 0.8 &&
                    sq8_churn_recall >= 0.8 && sq8_qps_ok &&
                    routed_recall >= 0.8 && churn_routed_recall >= 0.8 &&
                    routed_qps_ok;

  gkm::bench::JsonReport report("online_search");
  report.Add("n", static_cast<double>(n));
  report.Add("num_queries", static_cast<double>(nq));
  report.Add("ingest_pts_per_sec", static_cast<double>(n) / ingest_secs);
  report.Add("recall_at_10", online_recall);
  report.Add("qps", static_cast<double>(nq) / single_secs);
  report.Add("qps_batch64", static_cast<double>(nq) / batched_secs);
  report.Add("qps_pool", static_cast<double>(nq) / multi_secs);
  report.Add("p50_us", query_lat.Quantile(0.5));
  report.Add("p99_us", query_lat.Quantile(0.99));
  report.Add("recall_at_10_post_churn", churn_recall);
  report.Add("recall_at_10_sharded", sharded_recall);
  report.Add("arena_bytes_per_point", static_cast<double>(sq8_bytes));
  report.Add("arena_bytes_per_point_fp32", static_cast<double>(fp32_bytes));
  report.Add("sq8_arena_ratio", arena_ratio);
  report.Add("sq8_rerank_fraction", sq8_rerank_fraction);
  report.Add("recall_at_10_sq8", sq8_recall);
  report.Add("recall_at_10_sq8_post_churn", sq8_churn_recall);
  report.Add("qps_sq8", static_cast<double>(nq) / sq8_single_secs);
  report.Add("sq8_qps_ratio", sq8_qps_ratio);
  report.Add("sq8_ingest_ratio", sq8_ingest_ratio);
  report.Add("recall_at_10_routed", routed_recall);
  report.Add("recall_at_10_routed_post_churn", churn_routed_recall);
  report.Add("qps_routed", routed_qps);
  report.Add("qps_merged_s4", merged_qps);
  report.Add("routed_qps_ratio", routed_qps_ratio);
  report.Add("route_spill_rate", spill_rate);
  report.Add("pass", pass ? 1.0 : 0.0);
  report.Write();

  return pass ? 0 : 1;
}
