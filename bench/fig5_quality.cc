// Copyright 2026 The gkmeans Authors.
// Reproduces Fig. 5: average distortion as a function of (a/c/e) iteration
// and (b/d/f) wall-clock time on SIFT1M-, GloVe1M- and GIST1M-like data
// (scaled), for Mini-Batch, closure k-means, k-means, BKM,
// KGraph+GK-means and GK-means. k = n/100 as in the paper (10,000 clusters
// per 1M points). Paper shapes: BKM best distortion; GK-means within a
// hair of BKM and fastest; Mini-Batch clearly worst; KGraph+GK-means ~=
// GK-means but slower end-to-end.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/gk_means.h"
#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "graph/nn_descent.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/lloyd.h"
#include "kmeans/mini_batch.h"

namespace {

void PrintTrace(const gkm::ClusteringResult& res) {
  gkm::bench::PrintSeriesHeader("iteration", "distortion | elapsed(s)",
                                res.method.c_str());
  for (const gkm::IterStat& s : res.trace) {
    if (s.distortion < 0.0) continue;  // Mini-Batch off-cadence entries
    std::printf("%-12zu %-12.5f %-10.2f\n", s.iteration + 1, s.distortion,
                s.elapsed_seconds);
  }
  std::printf("final: E=%.5f total=%.2fs (init %.2fs + iter %.2fs)\n",
              res.distortion, res.total_seconds, res.init_seconds,
              res.iter_seconds);
}

void RunDataset(const std::string& family, std::size_t n,
                std::size_t iters, std::size_t points_per_cluster) {
  // The paper pairs n=1M with k=10,000 (k/kappa = 200). A proportional
  // k = n/100 at laptop scale would collapse that ratio to ~10 and hide
  // the k-independence of GK-means, so we keep k/kappa >= 25 instead.
  const std::size_t k = std::max<std::size_t>(16, n / points_per_cluster);
  std::printf("\n---------------- dataset %s: n=%zu k=%zu ----------------\n",
              family.c_str(), n, k);
  const gkm::SyntheticData data = gkm::MakeByFamily(family, n, 42);
  const gkm::Matrix& x = data.vectors;
  std::vector<gkm::ClusteringResult> all;

  {
    gkm::MiniBatchParams p;
    p.k = k;
    p.batch_size = 1000;
    p.max_iters = iters;
    p.eval_every = 5;
    all.push_back(MiniBatchKMeans(x, p));
  }
  {
    gkm::ClosureParams p;
    p.k = k;
    p.num_trees = 3;
    p.leaf_size = 50;
    p.max_iters = iters;
    all.push_back(ClosureKMeans(x, p));
  }
  {
    gkm::LloydParams p;
    p.k = k;
    p.max_iters = iters;
    all.push_back(LloydKMeans(x, p));
  }
  {
    gkm::BkmParams p;
    p.k = k;
    p.max_iters = iters;
    all.push_back(BoostKMeans(x, p));
  }
  {
    // KGraph+GK-means: NN-Descent graph, then BKM-mode Alg. 2. The graph
    // cost is charged to init, as in the paper's accounting.
    gkm::Timer timer;
    gkm::NnDescentParams np;
    np.k = 20;
    const gkm::KnnGraph g = NnDescent(x, np);
    const double graph_secs = timer.Seconds();
    gkm::GkMeansParams p;
    p.k = k;
    p.kappa = 20;
    p.max_iters = iters;
    gkm::ClusteringResult res = GkMeansWithGraph(x, g, p);
    res.method = "kgraph+gk-means";
    res.init_seconds += graph_secs;
    res.total_seconds += graph_secs;
    for (gkm::IterStat& s : res.trace) s.elapsed_seconds += graph_secs;
    all.push_back(std::move(res));
  }
  {
    gkm::PipelineParams p;
    p.k = k;
    p.graph.kappa = 20;
    p.graph.xi = 50;
    p.graph.tau = 8;
    p.clustering.kappa = 20;
    p.clustering.max_iters = iters;
    all.push_back(GkMeansCluster(x, p).clustering);
  }

  for (const auto& res : all) PrintTrace(res);

  // Shape checks for this dataset.
  const double mb = all[0].distortion, closure = all[1].distortion,
               km = all[2].distortion, bkm = all[3].distortion,
               kgraph_gk = all[4].distortion, gk = all[5].distortion;
  std::printf("\nshape checks (%s):\n", family.c_str());
  std::printf("  BKM best distortion:        %s (bkm %.4f vs min-others %.4f)\n",
              bkm <= std::min({mb, closure, km, gk, kgraph_gk}) * 1.02
                  ? "PASS"
                  : "FAIL",
              bkm, std::min({mb, closure, km, gk, kgraph_gk}));
  std::printf("  GK within 10%% of BKM:       %s (gk/bkm = %.3f)\n",
              gk < 1.10 * bkm ? "PASS" : "FAIL", gk / bkm);
  std::printf("  Mini-Batch worst:           %s\n",
              mb >= std::max({closure, km, bkm, gk, kgraph_gk}) ? "PASS"
                                                                : "FAIL");
  // Timing checks mirror what Fig. 5(b/d/f) actually plots: the paper
  // excludes k-means/BKM/Mini-Batch from the time axis ("efficiency ...
  // not on the same level"); the k-scaling of those methods is checked in
  // the Fig. 6 bench. Here: GK must reach its (BKM-grade) distortion in a
  // fraction of BKM's time, and at worst be comparable to the NN-Descent
  // supplied configuration.
  std::printf("  GK much faster than BKM:     %s (gk %.1fs vs bkm %.1fs; "
              "km %.1fs, closure %.1fs)\n",
              all[5].total_seconds < 0.5 * all[3].total_seconds ? "PASS"
                                                                : "FAIL",
              all[5].total_seconds, all[3].total_seconds,
              all[2].total_seconds, all[1].total_seconds);
  std::printf("  GK <= 1.5x KGraph+GK time:   %s (%.1fs vs %.1fs)\n",
              all[5].total_seconds < 1.5 * all[4].total_seconds ? "PASS"
                                                                : "FAIL",
              all[5].total_seconds, all[4].total_seconds);
}

}  // namespace

int main() {
  gkm::bench::Header("Figure 5", "distortion vs iteration and vs time, six "
                                 "methods, three corpora");
  const std::size_t iters = 30;
  RunDataset("sift", gkm::bench::ScaledN(20000), iters, 40);
  RunDataset("glove", gkm::bench::ScaledN(20000), iters, 40);
  // GIST is scaled to fewer points (d=960 dominates cost); k is raised
  // proportionally so the k >> kappa regime is preserved.
  RunDataset("gist", gkm::bench::ScaledN(6000), iters, 15);
  return 0;
}
