// Copyright 2026 The gkmeans Authors.
// Ablations for §4.4 ("Discussion on Parameters") plus the §1/§2 claims
// about triangle-inequality accelerations:
//   (1) kappa sweep: quality stabilizes once enough neighbors are consulted
//       while cost grows with kappa;
//   (2) xi sweep: larger build-clusters improve the graph but cost more;
//   (3) tau sweep: more evolution rounds improve recall with diminishing
//       returns;
//   (4) Elkan/Hamerly vs Lloyd: identical assignments, lower time, but
//       memory/cost that grows with k (why the paper dismisses them for
//       very large k).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/gk_means.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "kmeans/bisecting.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/init.h"
#include "kmeans/kd_kmeans.h"
#include "kmeans/lloyd.h"
#include "kmeans/two_means_tree.h"

int main() {
  const std::size_t n = gkm::bench::ScaledN(15000);
  const std::size_t k = n / 100;
  gkm::bench::Header("Section 4.4 ablations",
                     "kappa / xi / tau trade-offs + exact accelerations");
  std::printf("dataset: SIFT-like n=%zu d=128; k=%zu\n", n, k);
  const gkm::SyntheticData data = gkm::MakeSiftLike(n, 128, 42);
  const gkm::Matrix& x = data.vectors;

  // Sampled recall ground truth.
  gkm::Rng rng(5);
  const std::vector<std::uint32_t> subset = rng.SampleDistinct(n, 300);
  const std::vector<std::uint32_t> subset_nn =
      gkm::ExactNearestForSubset(x, subset);

  // --- (1) kappa sweep (graph fixed, clustering kappa varies). ---
  {
    gkm::GraphBuildParams gp;
    gp.kappa = 50;
    gp.xi = 50;
    gp.tau = 8;
    const gkm::KnnGraph g = BuildKnnGraph(x, gp);
    gkm::bench::PrintSeriesHeader("kappa", "E | iter time(s)", "kappa sweep");
    for (const std::size_t kappa : {5u, 10u, 20u, 40u, 50u}) {
      gkm::GkMeansParams p;
      p.k = k;
      p.kappa = kappa;
      p.max_iters = 30;
      const gkm::ClusteringResult res = GkMeansWithGraph(x, g, p);
      std::printf("%-12zu %-12.2f %-10.2f\n", kappa, res.distortion,
                  res.iter_seconds);
    }
  }

  // --- (2) xi sweep (cluster size during graph construction). ---
  gkm::bench::PrintSeriesHeader("xi", "recall@1 | build time(s)", "xi sweep");
  for (const std::size_t xi : {20u, 40u, 50u, 80u, 100u}) {
    gkm::Timer timer;
    gkm::GraphBuildParams gp;
    gp.kappa = 20;
    gp.xi = xi;
    gp.tau = 6;
    const gkm::KnnGraph g = BuildKnnGraph(x, gp);
    std::printf("%-12zu %-12.4f %-10.2f\n", xi,
                gkm::SampledRecallAt1(g, subset, subset_nn), timer.Seconds());
  }

  // --- (3) tau sweep. ---
  gkm::bench::PrintSeriesHeader("tau", "recall@1 | build time(s)", "tau sweep");
  for (const std::size_t tau : {2u, 4u, 8u, 16u, 32u}) {
    gkm::Timer timer;
    gkm::GraphBuildParams gp;
    gp.kappa = 20;
    gp.xi = 50;
    gp.tau = tau;
    const gkm::KnnGraph g = BuildKnnGraph(x, gp);
    std::printf("%-12zu %-12.4f %-10.2f\n", tau,
                gkm::SampledRecallAt1(g, subset, subset_nn), timer.Seconds());
  }

  // --- (4) exact accelerations vs Lloyd across k. ---
  std::printf("\n# exact accelerations (identical output to Lloyd)\n");
  std::printf("%-8s %-12s %-12s %-12s %-14s\n", "k", "lloyd(s)", "elkan(s)",
              "hamerly(s)", "elkan mem (MB)");
  for (const std::size_t kk : {16u, 64u, 256u}) {
    gkm::LloydParams lp;
    lp.k = kk;
    lp.max_iters = 15;
    const double lloyd_s = LloydKMeans(x, lp).total_seconds;
    gkm::ElkanParams ep;
    ep.k = kk;
    ep.max_iters = 15;
    const double elkan_s = ElkanKMeans(x, ep).total_seconds;
    gkm::HamerlyParams hp;
    hp.k = kk;
    hp.max_iters = 15;
    const double hamerly_s = HamerlyKMeans(x, hp).total_seconds;
    const double elkan_mb =
        static_cast<double>(n * kk * sizeof(float) + kk * kk * sizeof(float)) /
        (1024.0 * 1024.0);
    std::printf("%-8zu %-12.2f %-12.2f %-12.2f %-14.1f\n", kk, lloyd_s,
                elkan_s, hamerly_s, elkan_mb);
  }
  std::printf("\nNote the O(n k) bound memory of Elkan growing linearly in "
              "k — the paper's §1 argument\nfor why triangle-inequality "
              "accelerations stop scaling at very large k.\n");

  // --- (5) KD-tree k-means across dimensionality (§2.1, Kanungo [35]):
  // "only feasible when the dimension of data is in few tens". ---
  std::printf("\n# KD-tree k-means vs dimensionality (n=8000, k=128, "
              "overlapping data)\n");
  std::printf("%-8s %-16s %-14s %-12s\n", "d", "avg c compared", "kd time(s)",
              "lloyd time(s)");
  for (const std::size_t dim : {4u, 16u, 64u, 128u}) {
    gkm::SyntheticSpec spec;
    spec.n = 8000;
    spec.dim = dim;
    spec.modes = 50;
    spec.center_spread = 1.2;
    spec.cluster_spread = 1.0;
    spec.seed = 99;
    const gkm::SyntheticData dd = gkm::MakeGaussianMixture(spec);
    gkm::KdKMeansParams kp;
    kp.k = 128;
    kp.max_iters = 10;
    gkm::KdKMeansStats stats;
    const double kd_s = KdKMeans(dd.vectors, kp, &stats).total_seconds;
    gkm::LloydParams lp;
    lp.k = 128;
    lp.max_iters = 10;
    const double lloyd_s = LloydKMeans(dd.vectors, lp).total_seconds;
    std::printf("%-8zu %-16.1f %-14.2f %-12.2f\n", dim,
                stats.avg_centroids_compared.back(), kd_s, lloyd_s);
  }
  std::printf("(pruning collapses toward k=128 as d grows — the curse of "
              "dimensionality)\n");

  // --- (6) Hierarchical family vs flat optimization (§2.1/§3.2). ---
  std::printf("\n# hierarchical vs flat (SIFT-like n=%zu, k=%zu)\n", n, k);
  std::printf("%-12s %-12s %-10s\n", "method", "E", "time(s)");
  {
    gkm::BisectingParams p;
    p.k = k;
    const auto r = BisectingKMeans(x, p);
    std::printf("%-12s %-12.2f %-10.2f\n", "bisecting", r.distortion,
                r.total_seconds);
  }
  {
    gkm::TwoMeansParams p;
    p.k = k;
    const auto r = TwoMeansTreeClustering(x, p);
    std::printf("%-12s %-12.2f %-10.2f\n", "2m-tree", r.distortion,
                r.total_seconds);
  }
  {
    gkm::BkmParams p;
    p.k = k;
    p.max_iters = 30;
    const auto r = BoostKMeans(x, p);
    std::printf("%-12s %-12.2f %-10.2f\n", "bkm", r.distortion,
                r.total_seconds);
  }

  // --- (7) Seeding strategies: cost and seed-quantization quality. ---
  std::printf("\n# seeding: random vs k-means++ vs k-means|| (k=%zu)\n", k);
  std::printf("%-12s %-14s %-12s\n", "seeding", "seed time(s)", "final E");
  for (const char* mode : {"random", "++", "||"}) {
    gkm::Rng seed_rng(4);
    gkm::Timer timer;
    gkm::Matrix seeds;
    if (std::string(mode) == "random") {
      seeds = RandomCentroids(x, k, seed_rng);
    } else if (std::string(mode) == "++") {
      seeds = KMeansPlusPlus(x, k, seed_rng);
    } else {
      seeds = KMeansParallel(x, k, 5, 2.0, seed_rng);
    }
    const double seed_secs = timer.Seconds();
    const auto labels = AssignAll(x, seeds);
    const double e0 = gkm::AverageDistortion(x, labels, k);
    std::printf("%-12s %-14.2f %-12.2f\n", mode, seed_secs, e0);
  }
  return 0;
}
