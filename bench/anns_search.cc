// Copyright 2026 The gkmeans Authors.
// Reproduces the §4.3 ANNS claims: the Alg. 3 graph, though built for
// clustering, supports approximate nearest neighbor search with recall
// comparable to an NN-Descent graph at a fraction of the construction
// cost. Reports construction time and the recall/latency frontier of
// greedy search over both graphs.

#include <cstdio>
#include <vector>

#include "anns/graph_search.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "graph/brute_force.h"
#include "graph/nn_descent.h"
#include "graph/nsw.h"
#include "graph/rp_forest.h"

namespace {

void Frontier(const char* name, const gkm::Matrix& base,
              const gkm::KnnGraph& graph, const gkm::Matrix& queries,
              const std::vector<std::vector<gkm::Neighbor>>& truth,
              const std::vector<std::uint32_t>& entries) {
  gkm::GraphSearcher searcher(base, graph);
  searcher.SetEntryPoints(entries);
  gkm::bench::PrintSeriesHeader("beam", "recall@1 | dists | ms/query", name);
  for (const std::size_t beam : {8u, 16u, 32u, 64u, 128u}) {
    gkm::SearchParams sp;
    sp.topk = 1;
    sp.beam_width = beam;
    std::size_t hits = 0, dists = 0;
    gkm::Timer timer;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      gkm::SearchStats stats;
      const auto got = searcher.Search(queries.Row(q), sp, &stats);
      hits += (!got.empty() && got[0].id == truth[q][0].id) ? 1 : 0;
      dists += stats.distance_evals;
    }
    const double secs = timer.Seconds();
    std::printf("%-12zu %-10.3f %-8.0f %-10.3f\n", beam,
                static_cast<double>(hits) / static_cast<double>(queries.rows()),
                static_cast<double>(dists) / static_cast<double>(queries.rows()),
                secs * 1e3 / static_cast<double>(queries.rows()));
  }
}

}  // namespace

int main() {
  const std::size_t n = gkm::bench::ScaledN(20000);
  const std::size_t nq = 200;
  gkm::bench::Header("Section 4.3", "ANN search over the Alg. 3 graph vs an "
                                    "NN-Descent graph");
  std::printf("base: SIFT-like n=%zu d=128; %zu queries\n", n, nq);
  // Base and queries split from one sample so they share a distribution.
  const gkm::SyntheticData all = gkm::MakeSiftLike(n + nq, 128, 1);
  const gkm::Matrix base = gkm::SliceRows(all.vectors, 0, n);
  const gkm::Matrix queries = gkm::SliceRows(all.vectors, n, n + nq);
  const auto truth = gkm::BruteForceSearch(base, queries, 1);

  // ANNS-grade graphs use the paper's kappa ~= 50 regime, where
  // NN-Descent's local joins (quadratic in kappa) dominate its cost while
  // Alg. 3's cost is governed by xi and tau, not kappa.
  const std::size_t kappa = 40;
  gkm::Timer t1;
  gkm::GraphBuildParams gp;
  gp.kappa = kappa;
  gp.xi = 50;
  gp.tau = 12;
  const gkm::KnnGraph alg3 = BuildKnnGraph(base, gp);
  const double alg3_secs = t1.Seconds();

  gkm::Timer t2;
  gkm::NnDescentParams np;
  np.k = kappa;
  const gkm::KnnGraph nnd = NnDescent(base, np);
  const double nnd_secs = t2.Seconds();

  gkm::Timer t3;
  gkm::NswParams sw;
  sw.degree = kappa;
  // ef chosen so the NSW graph reaches search utility comparable to the
  // KNN graphs — the construction-cost comparison is meaningless at a
  // quality level nobody would deploy.
  sw.ef_construction = 200;
  const gkm::KnnGraph nsw = NswBuild(base, sw);
  const double nsw_secs = t3.Seconds();

  gkm::Timer t4;
  gkm::RpForestParams rp;
  rp.num_trees = 8;
  rp.leaf_size = 50;
  const gkm::KnnGraph rpg = RpForestGraph(base, kappa, rp);
  const double rp_secs = t4.Seconds();

  std::printf("\nconstruction time: Alg.3 %.2fs | NN-Descent %.2fs | "
              "NSW %.2fs | RP-forest %.2fs\n",
              alg3_secs, nnd_secs, nsw_secs, rp_secs);

  // Shared medoid entry points (2M-tree representatives): routing into the
  // right region is an entry problem, not a graph-quality problem.
  const std::vector<std::uint32_t> entries =
      gkm::SelectEntryPoints(base, 256);

  Frontier("Alg.3 graph", base, alg3, queries, truth, entries);
  Frontier("NN-Descent graph", base, nnd, queries, truth, entries);
  Frontier("NSW graph", base, nsw, queries, truth, entries);
  Frontier("RP-forest graph ([42][43])", base, rpg, queries, truth, entries);

  // The paper's §4.3 claim: Alg. 3 is "at least two times faster than NN
  // Descent [32] and small world graph construction [34]". The RP-forest
  // baseline shows the opposite trade-off (§2.2): cheap but low recall.
  std::printf("\nshape checks:\n");
  std::printf("  Alg.3 build cheaper than NN-Descent: %s (%.2fs vs %.2fs)\n",
              alg3_secs < nnd_secs ? "PASS" : "FAIL", alg3_secs, nnd_secs);
  std::printf("  Alg.3 build cheaper than NSW:        %s (%.2fs vs %.2fs)\n",
              alg3_secs < nsw_secs ? "PASS" : "FAIL", alg3_secs, nsw_secs);
  return 0;
}
