// Copyright 2026 The gkmeans Authors.
// Reproduces Fig. 4 (configuration test): clustering distortion as a
// function of the supplied KNN graph's recall, for three configurations —
//   KGraph+GK-means : graph from NN-Descent, clustering = BKM-mode Alg. 2
//   GK-means        : graph from Alg. 3,     clustering = BKM-mode Alg. 2
//   GK-means-       : graph from Alg. 3,     clustering = traditional mode
// Graphs of increasing recall are produced by sweeping the builders'
// iteration counts. Paper shapes: distortion falls as recall rises;
// BKM-mode dominates traditional mode; at equal recall the Alg. 3 graph
// clusters at least as well as the NN-Descent graph.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/gk_means.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "graph/nn_descent.h"

namespace {

struct Point {
  double recall;
  double distortion;
};

}  // namespace

int main() {
  const std::size_t n = gkm::bench::ScaledN(20000);
  const std::size_t k = n / 100;  // paper: 10,000 clusters on 1M points
  const std::size_t kappa = 20;

  gkm::bench::Header("Figure 4", "distortion vs supplied-graph recall for "
                                 "three GK-means configurations");
  std::printf("dataset: SIFT-like, n=%zu d=128; k=%zu, kappa=%zu\n", n, k,
              kappa);
  const gkm::SyntheticData data = gkm::MakeSiftLike(n, 128, 42);

  // Sampled recall ground truth (the paper's VLAD10M protocol, §5.1).
  const std::size_t probes = 500;
  gkm::Rng rng(7);
  const std::vector<std::uint32_t> subset = rng.SampleDistinct(n, probes);
  const std::vector<std::uint32_t> subset_nn =
      gkm::ExactNearestForSubset(data.vectors, subset);

  auto cluster_with = [&](const gkm::KnnGraph& g, bool traditional) {
    gkm::GkMeansParams p;
    p.k = k;
    p.kappa = kappa;
    p.max_iters = 30;
    p.traditional = traditional;
    return GkMeansWithGraph(data.vectors, g, p).distortion;
  };
  auto recall_of = [&](const gkm::KnnGraph& g) {
    return gkm::SampledRecallAt1(g, subset, subset_nn);
  };

  std::vector<Point> run_alg3_bkm, run_alg3_trad, run_kgraph;

  std::printf("\nsweeping Alg. 3 graphs (tau = 1..12)...\n");
  for (const std::size_t tau : {1u, 2u, 4u, 6u, 9u, 12u}) {
    gkm::GraphBuildParams gp;
    gp.kappa = kappa;
    gp.xi = 50;
    gp.tau = tau;
    const gkm::KnnGraph g = BuildKnnGraph(data.vectors, gp);
    const double rec = recall_of(g);
    run_alg3_bkm.push_back({rec, cluster_with(g, false)});
    run_alg3_trad.push_back({rec, cluster_with(g, true)});
  }

  std::printf("sweeping NN-Descent graphs (iters = 1..8)...\n");
  for (const std::size_t iters : {1u, 2u, 3u, 5u, 8u}) {
    gkm::NnDescentParams np;
    np.k = kappa;
    np.max_iters = iters;
    const gkm::KnnGraph g = NnDescent(data.vectors, np);
    run_kgraph.push_back({recall_of(g), cluster_with(g, false)});
  }

  auto print_series = [](const char* name, const std::vector<Point>& pts) {
    gkm::bench::PrintSeriesHeader("recall", "distortion", name);
    for (const Point& p : pts) {
      std::printf("%-12.4f %-14.2f\n", p.recall, p.distortion);
    }
  };
  print_series("KGraph+GK-means", run_kgraph);
  print_series("GK-means", run_alg3_bkm);
  print_series("GK-means-", run_alg3_trad);

  std::printf("\nshape checks:\n");
  const bool falls =
      run_alg3_bkm.back().distortion < run_alg3_bkm.front().distortion;
  std::printf("  higher recall -> lower distortion (GK-means): %s\n",
              falls ? "PASS" : "FAIL");
  double bkm_worst = 0.0, trad_best = 1e300;
  for (const Point& p : run_alg3_bkm) bkm_worst = std::max(bkm_worst, p.distortion);
  for (const Point& p : run_alg3_trad) trad_best = std::min(trad_best, p.distortion);
  std::printf("  BKM-mode dominates traditional mode:          %s "
              "(worst BKM %.1f vs best trad %.1f)\n",
              bkm_worst < trad_best ? "PASS" : "FAIL", bkm_worst, trad_best);
  return 0;
}
