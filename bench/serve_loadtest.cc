// Copyright 2026 The gkmeans Authors.
// Serving-daemon load test: mixed query + ingest + churn traffic against
// an in-process gkm::serve::Server over loopback TCP, measuring
// end-to-end RPC latency (p50/p99), sustained query throughput, and the
// admission-control refusal rate, plus a query-only comparison of the
// routed+replica read path against the single-reader merged baseline.
// Emits BENCH_serve_loadtest.json (schema gkm-bench-v1: p50_us, p99_us,
// qps, overload_rate, routed_qps, merged_qps, routed_merged_qps_ratio).
//
// Two gate tiers:
//   always on — the protocol's correctness contract: zero transport
//     failures, every refusal explicit (client-side tallies must equal
//     the server's own counters: no silent drops), and a server
//     restarted from its shutdown checkpoint answering a fixed probe
//     set bit-identically to the uninterrupted server.
//   cores >= 4 && GKM_SCALE >= 1 — p99 latency and QPS floors (reduced-
//     scale smoke runs on small CI machines report but do not gate, the
//     same floor pattern as bench_stream_throughput).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/matrix.h"
#include "dataset/synthetic.h"
#include "obs/clock.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

constexpr std::size_t kDim = 32;
constexpr std::uint32_t kTopK = 10;
constexpr std::size_t kSeedWindow = 100;   // rows per bootstrap insert
constexpr std::size_t kLoadWindow = 50;    // rows per mixed-phase insert
constexpr std::size_t kChurnPerWindow = 10;
constexpr std::size_t kQueryThreads = 4;
constexpr std::size_t kProbeQueries = 64;

void Die(const std::string& msg) {
  std::fprintf(stderr, "bench_serve_loadtest: FAIL — %s\n", msg.c_str());
  std::exit(1);
}

gkm::Matrix MakeData(std::size_t n, std::uint64_t seed) {
  gkm::SyntheticSpec spec;
  spec.n = n;
  spec.dim = kDim;
  spec.modes = 12;
  spec.seed = seed;
  return gkm::MakeGaussianMixture(spec).vectors;
}

gkm::serve::ServerOptions Options(const std::string& base,
                                  const std::string& journal) {
  gkm::serve::ServerOptions opts;
  opts.dim = kDim;
  opts.params.k = 8;
  opts.params.bootstrap_min = 400;
  opts.params.epochs_per_window = 1;
  opts.params.graph.kappa = 10;
  opts.params.graph.beam_width = 32;
  opts.params.graph.num_seeds = 24;
  opts.params.graph.bootstrap = 64;
  opts.params.graph.seed = 17;
  opts.params.graph.shards = 2;
  opts.batch_policy.max_batch = 32;
  opts.batch_policy.max_delay_us = 500;
  opts.checkpoint_base = base;
  opts.checkpoint_journal = journal;
  return opts;
}

std::unique_ptr<gkm::serve::Client> MustConnect(int port) {
  std::string error;
  std::unique_ptr<gkm::serve::Client> client =
      gkm::serve::Client::Connect(port, &error);
  if (client == nullptr) Die("connect: " + error);
  return client;
}

// Client-side tallies, compared against the server's own counters at the
// end — agreement is the "no silent drops" gate: every request either
// got its answer or an explicit refusal the client saw.
struct Tally {
  std::atomic<std::uint64_t> search_rows_ok{0};
  std::atomic<std::uint64_t> insert_windows_ok{0};
  std::atomic<std::uint64_t> removed_ids_ok{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> transport{0};
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = gkm::bench::SmokeFromArgs(argc, argv, 0.2);
  gkm::bench::Header("serve_loadtest",
                     "GKMP daemon under mixed query+ingest+churn load");

  const std::size_t seed_n =
      (gkm::bench::ScaledN(2500, 800) / kSeedWindow) * kSeedWindow;
  const std::size_t load_windows = gkm::bench::ScaledN(40, 10);
  const std::size_t searches_per_thread = gkm::bench::ScaledN(400, 120);
  const std::size_t cores = std::thread::hardware_concurrency();

  const std::string base = "serve_loadtest_base.gkmc";
  const std::string journal = "serve_loadtest_journal.gkmd";
  std::remove(base.c_str());
  std::remove(journal.c_str());

  std::string error;
  std::unique_ptr<gkm::serve::Server> server =
      gkm::serve::Server::Start(Options(base, journal), &error);
  if (server == nullptr) Die("start: " + error);

  Tally tally;

  // --- bootstrap: seed the model through the protocol -----------------------
  const gkm::Matrix seed_data = MakeData(seed_n, 1);
  std::size_t seed_windows = 0;
  {
    std::unique_ptr<gkm::serve::Client> seeder = MustConnect(server->port());
    for (std::size_t b = 0; b < seed_n; b += kSeedWindow, ++seed_windows) {
      const gkm::Matrix rows = gkm::SliceRows(seed_data, b, b + kSeedWindow);
      std::vector<std::uint32_t> assigned;
      tally.issued.fetch_add(1);
      if (seeder->Insert(rows, &assigned) != gkm::serve::Client::Status::kOk) {
        Die("seed insert refused or failed");
      }
      tally.insert_windows_ok.fetch_add(1);
    }
  }

  // --- mixed phase: concurrent queries, ingest, and churn -------------------
  const gkm::Matrix load_data = MakeData(load_windows * kLoadWindow, 2);
  const gkm::Matrix query_data =
      MakeData(kQueryThreads * searches_per_thread, 3);
  std::vector<std::vector<std::uint64_t>> latencies_ns(kQueryThreads);

  const std::uint64_t t0 = gkm::obs::MonotonicNanos();

  std::thread ingester([&] {
    std::unique_ptr<gkm::serve::Client> client = MustConnect(server->port());
    std::vector<std::uint32_t> my_ids;  // churn only ids this thread owns
    std::size_t next_churn = 0;
    for (std::size_t w = 0; w < load_windows; ++w) {
      const gkm::Matrix rows = gkm::SliceRows(load_data, w * kLoadWindow,
                                              (w + 1) * kLoadWindow);
      // Retry refused ingest: accepted-or-explicitly-refused is the
      // contract, and every refusal must show up in the server tally.
      for (;;) {
        std::vector<std::uint32_t> assigned;
        tally.issued.fetch_add(1);
        const gkm::serve::Client::Status s = client->Insert(rows, &assigned);
        if (s == gkm::serve::Client::Status::kOk) {
          tally.insert_windows_ok.fetch_add(1);
          my_ids.insert(my_ids.end(), assigned.begin(), assigned.end());
          break;
        }
        if (s != gkm::serve::Client::Status::kRefused) {
          tally.transport.fetch_add(1);
          return;
        }
        tally.refused.fetch_add(1);
        std::this_thread::yield();
      }
      if (my_ids.size() >= next_churn + kChurnPerWindow) {
        const std::vector<std::uint32_t> doomed(
            my_ids.begin() + next_churn,
            my_ids.begin() + next_churn + kChurnPerWindow);
        next_churn += kChurnPerWindow;
        for (;;) {
          std::vector<std::uint8_t> removed;
          tally.issued.fetch_add(1);
          const gkm::serve::Client::Status s = client->Remove(doomed, &removed);
          if (s == gkm::serve::Client::Status::kOk) {
            for (std::uint8_t r : removed) {
              if (r == 0) Die("churn removed an id that was not alive");
            }
            tally.removed_ids_ok.fetch_add(removed.size());
            break;
          }
          if (s != gkm::serve::Client::Status::kRefused) {
            tally.transport.fetch_add(1);
            return;
          }
          tally.refused.fetch_add(1);
          std::this_thread::yield();
        }
      }
    }
  });

  std::vector<std::thread> queriers;
  for (std::size_t t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      std::unique_ptr<gkm::serve::Client> client = MustConnect(server->port());
      latencies_ns[t].reserve(searches_per_thread);
      for (std::size_t q = 0; q < searches_per_thread; ++q) {
        const float* query =
            query_data.Row(t * searches_per_thread + q);
        std::vector<gkm::Neighbor> got;
        tally.issued.fetch_add(1);
        const std::uint64_t start = gkm::obs::MonotonicNanos();
        const gkm::serve::Client::Status s =
            client->Search(query, kDim, kTopK, &got);
        if (s == gkm::serve::Client::Status::kOk) {
          latencies_ns[t].push_back(gkm::obs::MonotonicNanos() - start);
          tally.search_rows_ok.fetch_add(1);
        } else if (s == gkm::serve::Client::Status::kRefused) {
          tally.refused.fetch_add(1);  // explicit OVERLOADED, not counted
        } else {
          tally.transport.fetch_add(1);
          return;
        }
      }
    });
  }

  ingester.join();
  for (std::thread& th : queriers) th.join();
  const double mixed_secs =
      static_cast<double>(gkm::obs::MonotonicNanos() - t0) * 1e-9;

  if (tally.transport.load() != 0) Die("transport failures under load");

  // --- fixed probe set, then checkpoint shutdown + restart ------------------
  const gkm::Matrix probes = MakeData(kProbeQueries, 4);
  std::vector<std::vector<gkm::Neighbor>> before;
  {
    std::unique_ptr<gkm::serve::Client> client = MustConnect(server->port());
    tally.issued.fetch_add(1);
    if (client->BatchSearch(probes, kTopK, &before) !=
        gkm::serve::Client::Status::kOk) {
      Die("probe batch search failed");
    }
    tally.search_rows_ok.fetch_add(kProbeQueries);

    // No-silent-drops gate: the server's counters must equal what the
    // clients saw acknowledged or refused.
    gkm::serve::StatsResponse stats;
    if (client->GetStats(&stats) != gkm::serve::Client::Status::kOk) {
      Die("stats rpc failed");
    }
    if (stats.searches != tally.search_rows_ok.load()) {
      Die("server search count disagrees with client tally");
    }
    if (stats.inserts != tally.insert_windows_ok.load()) {
      Die("server insert count disagrees with client tally");
    }
    if (stats.removes != tally.removed_ids_ok.load()) {
      Die("server remove count disagrees with client tally");
    }
    if (stats.overloaded != tally.refused.load()) {
      Die("server overload count disagrees with client tally");
    }
    const std::uint64_t want_alive = seed_n + load_windows * kLoadWindow -
                                     tally.removed_ids_ok.load();
    if (stats.points_alive != want_alive) {
      Die("live point count disagrees with applied inserts/removes");
    }
  }
  const std::uint64_t alive_before =
      seed_n + load_windows * kLoadWindow - tally.removed_ids_ok.load();
  server->Shutdown();
  server.reset();

  // Restart-from-checkpoint gate: the resumed server must answer the
  // probe set bit-identically (ids and distances).
  server = gkm::serve::Server::Start(Options(base, journal), &error);
  if (server == nullptr) Die("restart: " + error);
  {
    std::unique_ptr<gkm::serve::Client> client = MustConnect(server->port());
    std::vector<std::vector<gkm::Neighbor>> after;
    if (client->BatchSearch(probes, kTopK, &after) !=
        gkm::serve::Client::Status::kOk) {
      Die("probe batch search after restart failed");
    }
    if (after.size() != before.size()) Die("probe result count changed");
    for (std::size_t q = 0; q < before.size(); ++q) {
      if (after[q].size() != before[q].size()) {
        Die("restart changed a probe's result length");
      }
      for (std::size_t i = 0; i < before[q].size(); ++i) {
        if (after[q][i].id != before[q][i].id ||
            after[q][i].dist != before[q][i].dist) {
          Die("restart is not bit-identical to the uninterrupted server");
        }
      }
    }
    gkm::serve::StatsResponse stats;
    if (client->GetStats(&stats) != gkm::serve::Client::Status::kOk) {
      Die("stats rpc after restart failed");
    }
    if (stats.points_alive != alive_before) {
      Die("restart changed the live point count");
    }
  }
  server->Shutdown();
  server.reset();
  std::remove(base.c_str());
  std::remove(journal.c_str());

  // --- replica fan-out: query-only throughput comparison --------------------
  // Two fresh servers over the same corpus: the classic single-reader
  // merged baseline vs routed placement + one read replica per shard with
  // four search workers answering from replica lanes. Same client load (4
  // query threads); the ratio is the replica-path headline.
  const auto query_only_qps = [&](bool routed) {
    gkm::serve::ServerOptions opts = Options("", "");  // ephemeral, no journal
    opts.params.graph.shards = 4;
    if (routed) {
      opts.params.routed_placement = true;
      opts.params.read_replicas = 1;
      opts.search_workers = 4;
    }
    std::string err;
    std::unique_ptr<gkm::serve::Server> srv =
        gkm::serve::Server::Start(opts, &err);
    if (srv == nullptr) Die("replica-compare start: " + err);
    {
      std::unique_ptr<gkm::serve::Client> seeder = MustConnect(srv->port());
      for (std::size_t b = 0; b < seed_n; b += kSeedWindow) {
        std::vector<std::uint32_t> assigned;
        if (seeder->Insert(gkm::SliceRows(seed_data, b, b + kSeedWindow),
                           &assigned) != gkm::serve::Client::Status::kOk) {
          Die("replica-compare seed insert failed");
        }
      }
    }
    std::atomic<std::uint64_t> answered{0};
    std::atomic<bool> broken{false};
    const std::uint64_t start_ns = gkm::obs::MonotonicNanos();
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kQueryThreads; ++t) {
      threads.emplace_back([&, t] {
        std::unique_ptr<gkm::serve::Client> client =
            MustConnect(srv->port());
        for (std::size_t q = 0; q < searches_per_thread; ++q) {
          const float* query = query_data.Row(t * searches_per_thread + q);
          std::vector<gkm::Neighbor> got;
          const gkm::serve::Client::Status s =
              client->Search(query, kDim, kTopK, &got);
          if (s == gkm::serve::Client::Status::kOk) {
            answered.fetch_add(1);
          } else if (s != gkm::serve::Client::Status::kRefused) {
            broken.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    const double secs =
        static_cast<double>(gkm::obs::MonotonicNanos() - start_ns) * 1e-9;
    srv->Shutdown();
    srv.reset();
    if (broken.load()) Die("replica-compare transport failure");
    if (answered.load() == 0) Die("replica-compare: no accepted searches");
    return static_cast<double>(answered.load()) / secs;
  };
  const double merged_qps = query_only_qps(false);
  const double routed_qps = query_only_qps(true);
  const double routed_merged_qps_ratio = routed_qps / merged_qps;
  std::printf("\nquery-only fan-out (S=4, %zu threads): merged single-reader "
              "%.0f qps, routed+replicas %.0f qps (%.2fx)\n",
              kQueryThreads, merged_qps, routed_qps, routed_merged_qps_ratio);

  // --- metrics --------------------------------------------------------------
  std::vector<std::uint64_t> all_ns;
  for (const std::vector<std::uint64_t>& v : latencies_ns) {
    all_ns.insert(all_ns.end(), v.begin(), v.end());
  }
  if (all_ns.empty()) Die("no accepted searches — nothing to measure");
  std::sort(all_ns.begin(), all_ns.end());
  const double p50_us =
      static_cast<double>(all_ns[all_ns.size() / 2]) * 1e-3;
  const double p99_us =
      static_cast<double>(all_ns[all_ns.size() * 99 / 100]) * 1e-3;
  const double qps =
      static_cast<double>(all_ns.size()) / mixed_secs;
  const double overload_rate =
      static_cast<double>(tally.refused.load()) /
      static_cast<double>(tally.issued.load());

  std::printf("\nmixed phase: %zu searches, %zu ingest windows x %zu rows, "
              "%llu churn removals over %.2fs (%zu cores)\n",
              all_ns.size(), load_windows, kLoadWindow,
              static_cast<unsigned long long>(tally.removed_ids_ok.load()),
              mixed_secs, cores);
  std::printf("latency p50 %.0f us, p99 %.0f us; %.0f qps; overload rate "
              "%.4f (%llu refused, all explicit)\n",
              p50_us, p99_us, qps, overload_rate,
              static_cast<unsigned long long>(tally.refused.load()));
  std::printf("no-silent-drop accounting: OK; restart bit-identity: OK\n");

  gkm::bench::JsonReport report("serve_loadtest");
  report.Add("p50_us", p50_us);
  report.Add("p99_us", p99_us);
  report.Add("qps", qps);
  report.Add("overload_rate", overload_rate);
  report.Add("routed_qps", routed_qps);
  report.Add("merged_qps", merged_qps);
  report.Add("routed_merged_qps_ratio", routed_merged_qps_ratio);
  const std::string path = report.Write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());

  // Perf gates only where they mean something: a warm multi-core machine
  // at full scale. Smoke runs on small shared CI runners report only.
  const bool can_gate = cores >= 4 && gkm::bench::Scale() >= 1.0;
  if (can_gate) {
    if (p99_us > 25000.0) Die("p99 latency gate: > 25ms under mixed load");
    if (qps < 1000.0) Die("throughput gate: < 1000 qps under mixed load");
    if (routed_merged_qps_ratio < 1.5) {
      Die("replica fan-out gate: routed+replica qps < 1.5x single-reader");
    }
    std::printf("perf gates: OK (p99 <= 25ms, qps >= 1000, replica fan-out "
                ">= 1.5x)\n");
  } else {
    std::printf("perf gates skipped (need >= 4 cores and GKM_SCALE >= 1; "
                "%zu cores, scale %.2g)\n",
                cores, gkm::bench::Scale());
  }
  (void)smoke;
  return 0;
}
