// Copyright 2026 The gkmeans Authors.
// Streaming subsystem bench: streams >= 50k synthetic points through
// StreamingGkMeans in windows, reporting ingest throughput (points/sec),
// per-window distortion evolution, and the end-to-end quality gap against
// the batch GK-means pipeline (Alg. 3 + Alg. 2) run once over the same
// data. Also round-trips a checkpoint mid-stream and verifies the restored
// model finishes the stream with an identical clustering.
//
// Shape targets: streamed SSE within 10% of batch; checkpoint restore
// exact; parallel results bit-identical to serial; graph ingest >= 2x and
// the full pipeline >= 1x the 1-thread rate at 4 threads; SQ8 ingest
// within 0.9x of fp32 with byte-exact v5 checkpoints. Timing ratios gate
// only on >= 4 cores at full scale (see the per-gate comments).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/streaming_gkmeans.h"

namespace {

void Feed(gkm::StreamingGkMeans& model, const gkm::Matrix& data,
          std::size_t begin, std::size_t end, std::size_t window) {
  for (; begin < end; begin += window) {
    const std::size_t stop = std::min(begin + window, end);
    model.ObserveWindow(gkm::SliceRows(data, begin, stop));
  }
}

std::size_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<std::size_t>(size);
}

std::vector<char> ReadBytesOrDie(const std::string& path) {
  std::vector<char> bytes(FileBytes(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr || std::fread(bytes.data(), 1, bytes.size(), f) !=
                          bytes.size()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke pins the CI smoke workload (the scale build-and-test already
  // runs via GKM_SCALE=0.2) so gate scripts get a stable BENCH json.
  gkm::bench::SmokeFromArgs(argc, argv, 0.2);
  const std::size_t n = gkm::bench::ScaledN(50000, 50000);
  const std::size_t dim = 32;
  const std::size_t k = 64;
  const std::size_t window = 1000;

  gkm::bench::Header("Streaming subsystem",
                     "GK-means over a window stream vs the batch pipeline");
  std::printf("dataset: GMM n=%zu d=%zu; k=%zu, window=%zu\n", n, dim, k,
              window);

  gkm::SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = k;
  spec.seed = 3;
  const gkm::SyntheticData data = gkm::MakeGaussianMixture(spec);

  gkm::StreamingGkMeansParams sp;
  sp.k = k;
  sp.kappa = 16;
  sp.graph.kappa = 16;
  sp.graph.beam_width = 48;
  sp.bootstrap_min = 2000;
  // Production-shaped maintenance budget: enough split/merge ops per
  // window that the model keeps tracking the mode structure as the corpus
  // grows far beyond the bootstrap sample.
  sp.max_splits_per_window = 16;

  // --- Parallel ingest scaling: same stream at 1 and 4 walk threads. ---
  // Two measurements. (1) Graph ingest (OnlineKnnGraph::InsertBatch),
  // the path the thread pool actually parallelizes (~15% serial commit):
  // this carries the >= 2x speedup gate. (2) The full streaming pipeline,
  // whose Delta-I epochs are sequential by design: reported for context,
  // gated only on being bit-identical to the serial run (thread count is
  // an execution knob, not model state). Speedup gates apply only on
  // hardware that can actually run 4 walkers.
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t scale_n = std::min<std::size_t>(n / 2, 25000);
  double graph_speedup = 0.0;
  bool graph_identical = true;
  double pipeline_speedup = 0.0;
  bool parallel_identical = false;
  {
    gkm::ThreadPool pool1(1);
    gkm::ThreadPool pool4(4);
    gkm::OnlineKnnGraph g1(dim, sp.graph);
    gkm::OnlineKnnGraph g4(dim, sp.graph);
    gkm::Timer t1;
    for (std::size_t b = 0; b < scale_n; b += window) {
      g1.InsertBatch(gkm::SliceRows(data.vectors, b,
                                    std::min(b + window, scale_n)), &pool1);
    }
    const double secs1 = t1.Seconds();
    gkm::Timer t4;
    for (std::size_t b = 0; b < scale_n; b += window) {
      g4.InsertBatch(gkm::SliceRows(data.vectors, b,
                                    std::min(b + window, scale_n)), &pool4);
    }
    const double secs4 = t4.Seconds();
    graph_speedup = secs1 / secs4;
    for (std::size_t i = 0; i < scale_n && graph_identical; ++i) {
      graph_identical =
          g1.graph().SortedNeighbors(i) == g4.graph().SortedNeighbors(i);
    }
    std::printf("\ngraph ingest (%zu points, %zu cores): 1 thread %.0f "
                "pts/s, 4 threads %.0f pts/s (%.2fx)\n",
                scale_n, cores, static_cast<double>(scale_n) / secs1,
                static_cast<double>(scale_n) / secs4, graph_speedup);
  }
  // --- Sharded multi-writer ingest: 4 shards committed by 4 concurrent
  // writer threads vs the single-shard single-writer path, both fanning
  // their walks over the same 4-thread pool. Sharding parallelizes the
  // serial commit fraction (and walks smaller per-shard graphs), so
  // multi-writer ingest must clear 1.5x the single-shard rate wherever 4
  // writers can actually run. Also re-checked: for a FIXED shard count the
  // pool size changes nothing (per-shard edges byte-identical). ---
  double shard_speedup = 0.0;
  bool shard_identical = true;
  {
    gkm::ThreadPool pool1(1);
    gkm::ThreadPool pool4(4);
    gkm::OnlineGraphParams sg = sp.graph;
    sg.shards = 1;
    gkm::ShardedOnlineKnnGraph g1(dim, sg);
    sg.shards = 4;
    gkm::ShardedOnlineKnnGraph g4(dim, sg);
    gkm::ShardedOnlineKnnGraph g4_serial(dim, sg);
    gkm::Timer t1;
    for (std::size_t b = 0; b < scale_n; b += window) {
      g1.InsertBatch(gkm::SliceRows(data.vectors, b,
                                    std::min(b + window, scale_n)), &pool4);
    }
    const double secs1 = t1.Seconds();
    gkm::Timer t4;
    for (std::size_t b = 0; b < scale_n; b += window) {
      g4.InsertBatch(gkm::SliceRows(data.vectors, b,
                                    std::min(b + window, scale_n)), &pool4);
    }
    const double secs4 = t4.Seconds();
    for (std::size_t b = 0; b < scale_n; b += window) {
      g4_serial.InsertBatch(gkm::SliceRows(data.vectors, b,
                                           std::min(b + window, scale_n)),
                            &pool1);
    }
    shard_speedup = secs1 / secs4;
    for (std::size_t s = 0; s < 4 && shard_identical; ++s) {
      const gkm::OnlineKnnGraph& a = g4.shard(s);
      const gkm::OnlineKnnGraph& b = g4_serial.shard(s);
      shard_identical = a.size() == b.size();
      for (std::size_t i = 0; i < a.size() && shard_identical; ++i) {
        shard_identical =
            a.graph().SortedNeighbors(i) == b.graph().SortedNeighbors(i);
      }
    }
    std::printf("sharded ingest (%zu points): single shard %.0f pts/s, "
                "4 shards x 4 writers %.0f pts/s (%.2fx)\n",
                scale_n, static_cast<double>(scale_n) / secs1,
                static_cast<double>(scale_n) / secs4, shard_speedup);
  }
  {
    gkm::StreamingGkMeansParams one = sp;
    one.ingest_threads = 1;
    gkm::StreamingGkMeansParams four = sp;
    four.ingest_threads = 4;
    gkm::StreamingGkMeans m1(dim, one);
    gkm::Timer t1;
    Feed(m1, data.vectors, 0, scale_n, window);
    const double secs1 = t1.Seconds();
    gkm::StreamingGkMeans m4(dim, four);
    gkm::Timer t4;
    Feed(m4, data.vectors, 0, scale_n, window);
    const double secs4 = t4.Seconds();
    pipeline_speedup = secs1 / secs4;
    parallel_identical = m1.labels() == m4.labels() &&
                         m1.Distortion() == m4.Distortion();
    std::printf("full pipeline (ingest + epochs): 1 thread %.0f pts/s, "
                "4 threads %.0f pts/s (%.2fx)\n",
                static_cast<double>(scale_n) / secs1,
                static_cast<double>(scale_n) / secs4, pipeline_speedup);
  }

  // --- SQ8 quantized arena: the same stream through the u8 storage mode.
  // Ingest must stay within 0.9x of fp32 — the walk scores become integer
  // SADs (cheaper per candidate) but every batch adds an encode pass and
  // the final pool re-ranks through decoded fp32 rows. A mid-stream
  // checkpoint must round-trip byte-identically AND be byte-identical
  // across ingest thread counts: codes, norms and quantizer are integer
  // state and the walk pool carries a strict (dist, id) total order, so
  // neither scheduling nor tie arrival order can leak into the file. The
  // same argument covers SIMD tiers (asymmetric kernels accumulate in
  // integers; the forced-scalar CI job runs this binary to prove it). ---
  double sq8_ingest_ratio = 0.0;
  bool sq8_ckpt_identical = false;
  bool sq8_threads_identical = false;
  {
    gkm::StreamingGkMeansParams qp = sp;
    qp.graph.storage = gkm::StorageMode::kSq8;
    // Same rationale as bench_online_search: the 128-row default trains
    // the quantizer on too thin a sample for this 64-mode stream.
    qp.graph.bootstrap = 1024;
    gkm::StreamingGkMeans fbase(dim, sp);
    gkm::Timer tf;
    Feed(fbase, data.vectors, 0, scale_n, window);
    const double fp32_secs = tf.Seconds();
    gkm::StreamingGkMeans q1(dim, qp);
    gkm::Timer tq;
    Feed(q1, data.vectors, 0, scale_n, window);
    const double sq8_secs = tq.Seconds();
    sq8_ingest_ratio = fp32_secs / sq8_secs;

    gkm::StreamingGkMeansParams qp4 = qp;
    qp4.ingest_threads = 4;
    gkm::StreamingGkMeans q4(dim, qp4);
    Feed(q4, data.vectors, 0, scale_n, window);

    const std::string qa = "/tmp/gkm_stream_sq8_a.ckpt";
    const std::string qb = "/tmp/gkm_stream_sq8_b.ckpt";
    gkm::SaveStreamCheckpoint(qa, q1);
    gkm::SaveStreamCheckpoint(qb, q4);
    sq8_threads_identical = ReadBytesOrDie(qa) == ReadBytesOrDie(qb);
    gkm::StreamingGkMeans qr = gkm::LoadStreamCheckpoint(qa);
    gkm::SaveStreamCheckpoint(qb, qr);
    sq8_ckpt_identical = ReadBytesOrDie(qa) == ReadBytesOrDie(qb);
    std::remove(qa.c_str());
    std::remove(qb.c_str());
    std::printf("sq8 ingest (%zu points): fp32 %.0f pts/s, sq8 %.0f pts/s "
                "(%.2fx)\n",
                scale_n, static_cast<double>(scale_n) / fp32_secs,
                static_cast<double>(scale_n) / sq8_secs, sq8_ingest_ratio);
  }

  // --- Stream the first half, checkpoint, stream the rest. ---
  gkm::StreamingGkMeans model(dim, sp);
  gkm::Timer ingest;
  Feed(model, data.vectors, 0, n / 2, window);

  const std::string ckpt = "/tmp/gkm_stream_throughput.ckpt";
  gkm::Timer save_timer;
  gkm::SaveStreamCheckpoint(ckpt, model);
  const double save_secs = save_timer.Seconds();
  gkm::Timer load_timer;
  gkm::StreamingGkMeans resumed = gkm::LoadStreamCheckpoint(ckpt);
  const double load_secs = load_timer.Seconds();
  std::remove(ckpt.c_str());

  Feed(model, data.vectors, n / 2, n, window);
  const double stream_secs = ingest.Seconds() - save_secs - load_secs;
  const double stream_e_raw = model.Distortion();

  gkm::Timer consolidate;
  model.Consolidate(3);
  const double consolidate_secs = consolidate.Seconds();
  const double stream_e = model.Distortion();

  std::printf("\nstreaming: %.2fs ingest (%.0f points/sec), %.2fs "
              "consolidation\n",
              stream_secs, static_cast<double>(n) / stream_secs,
              consolidate_secs);
  std::printf("online graph: %zu nodes, %zu edges (degree %zu)\n",
              model.graph().size(), model.graph().shard(0).graph().NumEdges(),
              model.graph().shard(0).graph().k());
  std::printf("checkpoint: save %.3fs, load %.3fs\n", save_secs, load_secs);

  gkm::bench::PrintSeriesHeader("window", "distortion", "streaming GK-means");
  const auto& history = model.history();
  for (std::size_t w = 0; w < history.size(); w += 5) {
    if (history[w].distortion > 0.0) {
      std::printf("%-12zu %-14.4f\n", w, history[w].distortion);
    }
  }

  // --- Finish the stream on the restored model: must match exactly.
  // The restored copy also drives the incremental-checkpoint path: its
  // second half is journaled window by window into a GKMD delta log, and
  // the resumed base+journal chain must reproduce the full snapshot of the
  // finished model byte for byte — at O(window) instead of O(corpus) bytes
  // per checkpoint. ---
  const std::string delta_base = "/tmp/gkm_stream_delta_base.ckpt";
  const std::string delta_journal = "/tmp/gkm_stream_delta.gkmd";
  gkm::Timer delta_timer;
  gkm::StreamDeltaLog dlog(delta_base, delta_journal, resumed);
  std::size_t delta_windows = 0;
  for (std::size_t b = n / 2; b < n; b += window) {
    const gkm::Matrix w = gkm::SliceRows(data.vectors, b, std::min(b + window, n));
    dlog.AppendWindow(w);
    resumed.ObserveWindow(w);
    ++delta_windows;
  }
  dlog.AppendStateCheck(resumed);
  const double delta_secs = delta_timer.Seconds();

  const std::string full_a = "/tmp/gkm_stream_full_a.ckpt";
  const std::string full_b = "/tmp/gkm_stream_full_b.ckpt";
  gkm::SaveStreamCheckpoint(full_a, resumed);
  const std::size_t full_bytes = FileBytes(full_a);
  const std::size_t journal_bytes = FileBytes(delta_journal);
  gkm::Timer delta_load_timer;
  gkm::StreamingGkMeans delta_resumed =
      gkm::ResumeStreamCheckpoint(delta_base, delta_journal);
  const double delta_load_secs = delta_load_timer.Seconds();
  gkm::SaveStreamCheckpoint(full_b, delta_resumed);
  std::vector<char> bytes_a = ReadBytesOrDie(full_a);
  std::vector<char> bytes_b = ReadBytesOrDie(full_b);
  const bool delta_identical = bytes_a == bytes_b;
  std::printf("\ndelta checkpoints: %zu windows journaled in %.2fs "
              "(%.0f bytes/window vs %.0f for a full snapshot rewrite, "
              "%.1fx smaller); chain replay %.2fs\n",
              delta_windows, delta_secs,
              static_cast<double>(journal_bytes) /
                  static_cast<double>(delta_windows),
              static_cast<double>(full_bytes),
              static_cast<double>(full_bytes) * delta_windows /
                  static_cast<double>(journal_bytes),
              delta_load_secs);
  for (const char* f : {delta_base.c_str(), delta_journal.c_str(),
                        full_a.c_str(), full_b.c_str()}) {
    std::remove(f);
  }

  resumed.Consolidate(3);
  const bool identical = resumed.labels() == model.labels() &&
                         resumed.Distortion() == model.Distortion();

  // --- Batch reference on the same data. ---
  gkm::PipelineParams bp;
  bp.k = k;
  bp.clustering.kappa = sp.kappa;
  bp.graph.kappa = sp.kappa;
  bp.graph.tau = 6;
  gkm::Timer batch_timer;
  const gkm::PipelineResult batch = gkm::GkMeansCluster(data.vectors, bp);
  const double batch_secs = batch_timer.Seconds();
  const double batch_e = batch.clustering.distortion;

  // --- Serving probe: per-query SearchKnn latency against the finished
  // graph. Latency/QPS only — recall@10 needs ground truth and lives in
  // bench_online_search's json. The concrete obs::Histogram is used
  // directly (not via the registry), so the probe reports quantiles in
  // GKM_NO_STATS builds too — which is what the overhead gate compares.
  const std::size_t probe_queries = std::min<std::size_t>(n, 2000);
  gkm::obs::Histogram serve_hist;
  gkm::Timer serve_timer;
  for (std::size_t i = 0; i < probe_queries; ++i) {
    gkm::obs::ScopedTimer span(serve_hist);
    model.graph().SearchKnn(data.vectors.Row(i), 10);
  }
  const double serve_secs = serve_timer.Seconds();
  const gkm::obs::HistogramData serve_lat = serve_hist.Snapshot();
  std::printf("\nserving probe: %zu queries, %.0f qps, p50 %.0f us, "
              "p99 %.0f us\n",
              probe_queries, static_cast<double>(probe_queries) / serve_secs,
              serve_lat.Quantile(0.5), serve_lat.Quantile(0.99));

  std::printf("\nbatch GK-means: %.2fs, distortion %.4f\n", batch_secs,
              batch_e);
  std::printf("streaming:      distortion %.4f raw, %.4f consolidated "
              "(gap %+.2f%%)\n",
              stream_e_raw, stream_e, 100.0 * (stream_e - batch_e) / batch_e);

  // The speedup gate needs 4 schedulable walkers and a full-scale
  // workload: reduced-scale smoke runs (CI's GKM_SCALE=0.2 on shared
  // 4-vCPU runners, where SMT and noisy neighbors sit right at the 2x
  // ceiling) print the measurement but do not turn it into an exit code.
  const bool can_gate_speedup = cores >= 4 && gkm::bench::Scale() >= 1.0;
  std::printf("\nshape checks:\n");
  std::printf("  streamed SSE within 10%% of batch:      %s\n",
              stream_e <= batch_e * 1.10 ? "PASS" : "FAIL");
  std::printf("  checkpoint restore continues identically: %s\n",
              identical ? "PASS" : "FAIL");
  std::printf("  delta chain resumes bit-identical:        %s\n",
              delta_identical ? "PASS" : "FAIL");
  std::printf("  parallel ingest identical to serial:      %s\n",
              parallel_identical && graph_identical ? "PASS" : "FAIL");
  if (can_gate_speedup) {
    std::printf("  graph ingest >= 2x at 4 threads:          %s (%.2fx)\n",
                graph_speedup >= 2.0 ? "PASS" : "FAIL", graph_speedup);
  } else {
    std::printf("  graph ingest >= 2x at 4 threads:          SKIP "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), graph_speedup);
  }
  // Full-pipeline floor. Span profiling (stream.ingest.*) puts the window
  // at ~60% pooled walk, ~22% serial commit, rest sequential Delta-I
  // epochs — an Amdahl ceiling near 1.8x even at perfect walk scaling. At
  // smoke scale the 1000-row windows leave the parallel section too short
  // to amortize per-window pool dispatch, which is where the historical
  // 0.94x came from; that is a measurement floor, not a regression. At
  // full scale on >= 4 cores the pipeline must at least break even.
  if (can_gate_speedup) {
    std::printf("  full pipeline >= 1x at 4 threads:         %s (%.2fx)\n",
                pipeline_speedup >= 1.0 ? "PASS" : "FAIL", pipeline_speedup);
  } else {
    std::printf("  full pipeline >= 1x at 4 threads:         SKIP "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), pipeline_speedup);
  }
  std::printf("  sharded ingest identical across pools:    %s\n",
              shard_identical ? "PASS" : "FAIL");
  // Multi-writer gate: same floor pattern as the speedup gates. The
  // sharded/unsharded comparison runs a fixed workload, but at smoke
  // scale the per-shard graphs are small enough that commit serialization
  // no longer dominates and the measured ratio (~1.0x) says nothing about
  // the contended regime the gate protects — so reduced-scale runs report
  // the number without turning it into an exit code.
  const bool can_gate_shards = cores >= 4 && gkm::bench::Scale() >= 1.0;
  if (can_gate_shards) {
    std::printf("  multi-writer >= 1.5x single shard (4T):   %s (%.2fx)\n",
                shard_speedup >= 1.5 ? "PASS" : "FAIL", shard_speedup);
  } else {
    std::printf("  multi-writer >= 1.5x single shard (4T):   SKIP "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), shard_speedup);
  }
  std::printf("  sq8 checkpoint round-trips byte-exact:    %s\n",
              sq8_ckpt_identical ? "PASS" : "FAIL");
  std::printf("  sq8 checkpoint identical across threads:  %s\n",
              sq8_threads_identical ? "PASS" : "FAIL");
  if (can_gate_speedup) {
    std::printf("  sq8 ingest >= 0.9x fp32:                  %s (%.2fx)\n",
                sq8_ingest_ratio >= 0.9 ? "PASS" : "FAIL", sq8_ingest_ratio);
  } else {
    std::printf("  sq8 ingest >= 0.9x fp32:                  SKIP "
                "(need >= 4 cores and GKM_SCALE >= 1; %zu cores, scale "
                "%.2g; measured %.2fx)\n",
                cores, gkm::bench::Scale(), sq8_ingest_ratio);
  }
  const bool pass = stream_e <= batch_e * 1.10 && identical &&
                    delta_identical && parallel_identical &&
                    graph_identical && shard_identical &&
                    sq8_ckpt_identical && sq8_threads_identical &&
                    (!can_gate_speedup || (graph_speedup >= 2.0 &&
                                           pipeline_speedup >= 1.0 &&
                                           sq8_ingest_ratio >= 0.9)) &&
                    (!can_gate_shards || shard_speedup >= 1.5);

  gkm::bench::JsonReport report("stream_throughput");
  report.Add("n", static_cast<double>(n));
  report.Add("ingest_pts_per_sec", static_cast<double>(n) / stream_secs);
  report.Add("graph_speedup_4t", graph_speedup);
  report.Add("shard_speedup_4t", shard_speedup);
  report.Add("pipeline_speedup_4t", pipeline_speedup);
  report.Add("sq8_ingest_ratio", sq8_ingest_ratio);
  report.Add("stream_distortion", stream_e);
  report.Add("batch_distortion", batch_e);
  report.Add("ckpt_save_secs", save_secs);
  report.Add("ckpt_load_secs", load_secs);
  report.Add("journal_bytes_per_window",
             static_cast<double>(journal_bytes) /
                 static_cast<double>(delta_windows));
  report.Add("serve_qps", static_cast<double>(probe_queries) / serve_secs);
  report.Add("serve_p50_us", serve_lat.Quantile(0.5));
  report.Add("serve_p99_us", serve_lat.Quantile(0.99));
  report.Add("pass", pass ? 1.0 : 0.0);
  report.Write();

  return pass ? 0 : 1;
}
