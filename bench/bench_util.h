// Copyright 2026 The gkmeans Authors.
// Shared plumbing for the paper-reproduction bench harnesses: scale
// selection (GKM_SCALE env multiplies workload sizes so the same binaries
// run laptop-fast by default and paper-scale on big machines), tabular
// printing in the shape of the paper's figures/tables, and the
// machine-readable result emitter (schema "gkm-bench-v1") that CI gates
// read — each bench run writes BENCH_<name>.json next to the binary's
// working directory (or into $GKM_BENCH_DIR).

#ifndef GKM_BENCH_BENCH_UTIL_H_
#define GKM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/kernels.h"

namespace gkm::bench {

/// Process-wide scale override; 0 means "none, use the environment".
/// Set by --smoke (see SmokeFromArgs) so a smoke run pins its workload
/// regardless of the caller's GKM_SCALE.
inline double& ScaleOverride() {
  static double s = 0.0;
  return s;
}

/// Multiplicative workload scale: the --smoke override when set, else the
/// GKM_SCALE environment variable (default 1.0). Every bench multiplies
/// its n (and where appropriate k) by this, so GKM_SCALE=10 approaches
/// paper scale.
inline double Scale() {
  if (ScaleOverride() > 0.0) return ScaleOverride();
  const char* env = std::getenv("GKM_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0.0 ? s : 1.0;
}

/// Consumes a `--smoke` flag: when present, pins the scale to
/// `smoke_scale` (a small fixed workload CI can gate on) and returns
/// true. Call before the first Scale() use.
inline bool SmokeFromArgs(int argc, char** argv, double smoke_scale) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      ScaleOverride() = smoke_scale;
      return true;
    }
  }
  return false;
}

/// n scaled and clamped to a minimum.
inline std::size_t ScaledN(std::size_t base, std::size_t min_n = 1000) {
  const auto n = static_cast<std::size_t>(static_cast<double>(base) * Scale());
  return n < min_n ? min_n : n;
}

/// Prints the standard bench header naming the paper artifact reproduced.
inline void Header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(workload scale %.2gx; set GKM_SCALE to change)\n", Scale());
  std::printf("==============================================================\n");
}

/// Prints a named numeric series as aligned columns (one row per entry) —
/// the textual equivalent of one curve in a paper figure.
inline void PrintSeriesHeader(const char* x_name, const char* y_name,
                              const char* series) {
  std::printf("\n# series: %s\n%-12s %-14s\n", series, x_name, y_name);
}

// ---------------------------------------------------------------------------
// Machine-readable results: schema "gkm-bench-v1".
//
// One flat JSON object per bench run:
//   {"schema":"gkm-bench-v1","bench":"<name>","scale":<x>,
//    "simd_tier":"<scalar|avx2|avx512|neon>","metrics":{<key>:<number>,...}}
// Metric keys are bench-specific but stable (documented in
// docs/observability.md); CI overhead/quality gates parse these files, so
// renaming a key is a schema change and must bump the version string.
// ---------------------------------------------------------------------------

/// Collects named numeric results and writes BENCH_<name>.json into
/// $GKM_BENCH_DIR (cwd when unset). Keys keep insertion order.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the file; returns the path (empty string on I/O failure —
  /// benches report but do not abort, the textual output still stands).
  std::string Write() const {
    std::string dir;
    if (const char* env = std::getenv("GKM_BENCH_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    const std::string path = dir + "BENCH_" + bench_name_ + ".json";

    std::string out = "{\"schema\":\"gkm-bench-v1\",\"bench\":\"";
    out += bench_name_;
    out += "\",\"scale\":";
    AppendNumber(out, Scale());
    out += ",\"simd_tier\":\"";
    out += SimdTierName(ActiveSimdTier());
    out += "\",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += metrics_[i].first;
      out += "\":";
      AppendNumber(out, metrics_[i].second);
    }
    out += "}}\n";

    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return "";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) return "";
    std::printf("\n[bench-json] wrote %s\n", path.c_str());
    return path;
  }

 private:
  static void AppendNumber(std::string& out, double v) {
    char buf[40];
    if (std::isfinite(v) && v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 9.0e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
    }
    out += buf;
  }

  std::string bench_name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace gkm::bench

#endif  // GKM_BENCH_BENCH_UTIL_H_
