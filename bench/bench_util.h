// Copyright 2026 The gkmeans Authors.
// Shared plumbing for the paper-reproduction bench harnesses: scale
// selection (GKM_SCALE env multiplies workload sizes so the same binaries
// run laptop-fast by default and paper-scale on big machines), and tabular
// printing in the shape of the paper's figures/tables.

#ifndef GKM_BENCH_BENCH_UTIL_H_
#define GKM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gkm::bench {

/// Multiplicative workload scale from the GKM_SCALE environment variable
/// (default 1.0). Every bench multiplies its n (and where appropriate k)
/// by this, so GKM_SCALE=10 approaches paper scale.
inline double Scale() {
  const char* env = std::getenv("GKM_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0.0 ? s : 1.0;
}

/// n scaled and clamped to a minimum.
inline std::size_t ScaledN(std::size_t base, std::size_t min_n = 1000) {
  const auto n = static_cast<std::size_t>(static_cast<double>(base) * Scale());
  return n < min_n ? min_n : n;
}

/// Prints the standard bench header naming the paper artifact reproduced.
inline void Header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(workload scale %.2gx; set GKM_SCALE to change)\n", Scale());
  std::printf("==============================================================\n");
}

/// Prints a named numeric series as aligned columns (one row per entry) —
/// the textual equivalent of one curve in a paper figure.
inline void PrintSeriesHeader(const char* x_name, const char* y_name,
                              const char* series) {
  std::printf("\n# series: %s\n%-12s %-14s\n", series, x_name, y_name);
}

}  // namespace gkm::bench

#endif  // GKM_BENCH_BENCH_UTIL_H_
