// Copyright 2026 The gkmeans Authors.
// Reproduces Fig. 1: the probability that a sample and its rank-r nearest
// neighbor fall into the same cluster, under (a) traditional k-means and
// (b) a two-means tree, with cluster size fixed to ~50 (SIFT100K protocol).
// The paper's observation: both curves sit far above the random collision
// rate (50/n) and decay with rank — the premise of GK-means.

#include <cstdio>

#include "bench_util.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "kmeans/lloyd.h"
#include "kmeans/two_means_tree.h"

int main() {
  const std::size_t n = gkm::bench::ScaledN(10000);
  const std::size_t cluster_size = 50;
  const std::size_t k = n / cluster_size;
  const std::size_t max_rank = 150;

  gkm::bench::Header("Figure 1", "co-occurrence of a sample and its rank-r "
                                 "nearest neighbor in one cluster");
  std::printf("dataset: SIFT-like, n=%zu d=128; cluster size=%zu (k=%zu)\n",
              n, cluster_size, k);
  const gkm::SyntheticData data = gkm::MakeSiftLike(n, 128, 42);

  std::printf("computing exact top-%zu graph (ground truth)...\n", max_rank);
  const gkm::KnnGraph truth = gkm::BruteForceGraph(data.vectors, max_rank);

  std::printf("clustering with traditional k-means...\n");
  gkm::LloydParams lp;
  lp.k = k;
  lp.max_iters = 20;
  const gkm::ClusteringResult km = gkm::LloydKMeans(data.vectors, lp);

  std::printf("clustering with two-means tree...\n");
  gkm::TwoMeansParams tp;
  tp.k = k;
  const gkm::ClusteringResult tm =
      gkm::TwoMeansTreeClustering(data.vectors, tp);

  const auto p_km =
      gkm::CoOccurrenceByRank(truth, km.assignments, max_rank);
  const auto p_tm =
      gkm::CoOccurrenceByRank(truth, tm.assignments, max_rank);

  const double random_rate =
      static_cast<double>(cluster_size) / static_cast<double>(n);
  std::printf("\nrandom collision rate: %.6f\n", random_rate);
  std::printf("%-8s %-14s %-14s\n", "rank", "P[k-means]", "P[2M-tree]");
  for (std::size_t r = 0; r < max_rank; r += (r < 10 ? 1 : 10)) {
    std::printf("%-8zu %-14.4f %-14.4f\n", r + 1, p_km[r], p_tm[r]);
  }

  // Paper-shape checks (reported, not asserted).
  std::printf("\nshape checks:\n");
  std::printf("  P(rank1)>=10x random: k-means %s (%.3f), 2M-tree %s (%.3f)\n",
              p_km[0] >= 10 * random_rate ? "PASS" : "FAIL", p_km[0],
              p_tm[0] >= 10 * random_rate ? "PASS" : "FAIL", p_tm[0]);
  std::printf("  decays with rank:     k-means %s, 2M-tree %s\n",
              p_km[0] > p_km[max_rank - 1] ? "PASS" : "FAIL",
              p_tm[0] > p_tm[max_rank - 1] ? "PASS" : "FAIL");
  return 0;
}
