// Copyright 2026 The gkmeans Authors.
// Reproduces Tab. 1 (dataset overview) for the synthetic stand-ins used in
// every bench, printing the scaled sizes actually exercised plus summary
// statistics confirming the family post-transforms (value ranges, norms).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/distance.h"
#include "dataset/synthetic.h"

namespace {

void Describe(const char* name, const char* paper_name,
              const char* paper_scale, const gkm::SyntheticData& data) {
  const gkm::Matrix& m = data.vectors;
  float lo = 1e30f, hi = -1e30f;
  double norm_sum = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    norm_sum += std::sqrt(gkm::NormSqr(row, m.cols()));
  }
  std::printf("%-10s %-10s %-8zu %-6zu %-12s [%8.2f, %8.2f] %-10.3f\n", name,
              paper_name, m.rows(), m.cols(), paper_scale, lo, hi,
              norm_sum / static_cast<double>(m.rows()));
}

}  // namespace

int main() {
  gkm::bench::Header("Table 1", "overview of datasets (synthetic stand-ins "
                                "for the paper's corpora)");
  const std::size_t n = gkm::bench::ScaledN(20000);
  std::printf("%-10s %-10s %-8s %-6s %-12s %-20s %-10s\n", "family",
              "paper", "size", "dim", "paper size", "value range",
              "mean norm");
  Describe("sift", "SIFT1M", "1M", gkm::MakeSiftLike(n, 128, 42));
  Describe("vlad", "VLAD10M", "10M", gkm::MakeVladLike(n, 512, 42));
  Describe("glove", "Glove1M", "1M", gkm::MakeGloveLike(n, 100, 42));
  Describe("gist", "GIST1M", "1M", gkm::MakeGistLike(n / 2, 960, 42));
  std::printf("\nAll stand-ins are Zipf-weighted Gaussian mixtures with "
              "family-specific post-transforms;\nsee DESIGN.md (data "
              "substitution) for the correspondence argument.\n");
  return 0;
}
