// Copyright 2026 The gkmeans Authors.
// Reproduces Fig. 2: during Alg. 3's intertwined evolution, KNN-graph
// recall@1 and the round-clustering distortion as functions of tau. The
// paper's shape: recall climbs above ~0.6 within ~5 rounds while
// distortion drops sharply, then both plateau.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"

int main() {
  const std::size_t n = gkm::bench::ScaledN(10000);
  const std::size_t tau = 30;

  gkm::bench::Header("Figure 2", "graph recall and clustering distortion vs "
                                 "tau (intertwined evolution)");
  std::printf("dataset: SIFT-like, n=%zu d=128; kappa=20, xi=50\n", n);
  const gkm::SyntheticData data = gkm::MakeSiftLike(n, 128, 42);

  std::printf("computing exact top-1 ground truth...\n");
  const gkm::KnnGraph truth = gkm::BruteForceGraph(data.vectors, 1);

  gkm::GraphBuildParams p;
  p.kappa = 20;
  p.xi = 50;
  p.tau = tau;
  gkm::GraphBuildStats stats;
  std::vector<double> recall(tau, 0.0);
  gkm::BuildKnnGraph(data.vectors, p, &stats,
                     [&](std::size_t round, const gkm::KnnGraph& g) {
                       recall[round] = gkm::GraphRecallAt1(g, truth);
                     });

  std::printf("\n%-6s %-10s %-16s %-12s\n", "tau", "recall@1",
              "round distortion", "elapsed(s)");
  for (std::size_t t = 0; t < tau; ++t) {
    std::printf("%-6zu %-10.4f %-16.2f %-12.2f\n", t + 1, recall[t],
                stats.round_distortion[t], stats.round_seconds[t]);
  }

  std::printf("\nshape checks:\n");
  std::printf("  recall@tau=5 > 0.6:      %s (%.3f)\n",
              recall[4] > 0.6 ? "PASS" : "FAIL", recall[4]);
  std::printf("  recall plateaus:         %s (tau30-tau10 = %.3f)\n",
              recall[tau - 1] - recall[9] < 0.15 ? "PASS" : "FAIL",
              recall[tau - 1] - recall[9]);
  std::printf("  distortion drops >=5%%:   %s (first %.1f -> last %.1f)\n",
              stats.round_distortion.back() <
                      0.95 * stats.round_distortion.front()
                  ? "PASS"
                  : "FAIL",
              stats.round_distortion.front(), stats.round_distortion.back());
  return 0;
}
