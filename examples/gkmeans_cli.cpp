// Copyright 2026 The gkmeans Authors.
//
// Command-line clustering tool: the artifact a downstream user actually
// runs. Reads vectors from .fvecs/.bvecs, clusters with a chosen method,
// writes labels (.ivecs, one record) and centroids (.fvecs), prints a
// summary.
//
// Usage:
//   gkmeans_cli <input.fvecs|input.bvecs> --k <k> [options]
// Options:
//   --method gk|bkm|lloyd|minibatch|closure|elkan|hamerly|2m   (default gk)
//   --iters N        max iterations (default 30)
//   --kappa N        GK-means neighbors / graph degree (default 50)
//   --xi N           Alg. 3 cluster size (default 50)
//   --tau N          Alg. 3 rounds (default 10)
//   --seed N         RNG seed (default 42)
//   --labels PATH    write assignments as .ivecs
//   --centroids PATH write centroids as .fvecs
//   --graph PATH     write/reuse the KNN graph (gk method only)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "dataset/io.h"
#include "eval/metrics.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/lloyd.h"
#include "kmeans/mini_batch.h"
#include "kmeans/two_means_tree.h"

namespace {

struct Options {
  std::string input;
  std::string method = "gk";
  std::size_t k = 0;
  std::size_t iters = 30;
  std::size_t kappa = 50;
  std::size_t xi = 50;
  std::size_t tau = 10;
  std::uint64_t seed = 42;
  std::string labels_path;
  std::string centroids_path;
  std::string graph_path;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.fvecs|input.bvecs> --k <k> "
               "[--method gk|bkm|lloyd|minibatch|closure|elkan|hamerly|2m] "
               "[--iters N] [--kappa N] [--xi N] [--tau N] [--seed N] "
               "[--labels out.ivecs] [--centroids out.fvecs] "
               "[--graph graph.bin]\n",
               argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  if (argc < 2) Usage(argv[0]);
  Options opt;
  opt.input = argv[1];
  for (int a = 2; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) Usage(argv[0]);
      return argv[++a];
    };
    if (flag == "--k") {
      opt.k = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--method") {
      opt.method = next();
    } else if (flag == "--iters") {
      opt.iters = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--kappa") {
      opt.kappa = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--xi") {
      opt.xi = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--tau") {
      opt.tau = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--labels") {
      opt.labels_path = next();
    } else if (flag == "--centroids") {
      opt.centroids_path = next();
    } else if (flag == "--graph") {
      opt.graph_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage(argv[0]);
    }
  }
  if (opt.k == 0) Usage(argv[0]);
  return opt;
}

gkm::ClusteringResult Run(const gkm::Matrix& x, const Options& opt) {
  if (opt.method == "gk") {
    gkm::PipelineParams p;
    p.k = opt.k;
    p.graph.kappa = opt.kappa;
    p.graph.xi = opt.xi;
    p.graph.tau = opt.tau;
    p.graph.seed = opt.seed;
    p.clustering.kappa = opt.kappa;
    p.clustering.max_iters = opt.iters;
    p.clustering.seed = opt.seed;
    gkm::PipelineResult res = GkMeansCluster(x, p);
    if (!opt.graph_path.empty()) res.graph.Save(opt.graph_path);
    return std::move(res.clustering);
  }
  if (opt.method == "bkm") {
    gkm::BkmParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return BoostKMeans(x, p);
  }
  if (opt.method == "lloyd") {
    gkm::LloydParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return LloydKMeans(x, p);
  }
  if (opt.method == "minibatch") {
    gkm::MiniBatchParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return MiniBatchKMeans(x, p);
  }
  if (opt.method == "closure") {
    gkm::ClosureParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return ClosureKMeans(x, p);
  }
  if (opt.method == "elkan") {
    gkm::ElkanParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return ElkanKMeans(x, p);
  }
  if (opt.method == "hamerly") {
    gkm::HamerlyParams p;
    p.k = opt.k;
    p.max_iters = opt.iters;
    p.seed = opt.seed;
    return HamerlyKMeans(x, p);
  }
  if (opt.method == "2m") {
    gkm::TwoMeansParams p;
    p.k = opt.k;
    p.seed = opt.seed;
    return TwoMeansTreeClustering(x, p);
  }
  std::fprintf(stderr, "unknown method: %s\n", opt.method.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Parse(argc, argv);

  const bool is_bvecs = opt.input.size() > 6 &&
                        opt.input.compare(opt.input.size() - 6, 6, ".bvecs") == 0;
  std::printf("loading %s ...\n", opt.input.c_str());
  const gkm::Matrix x =
      is_bvecs ? gkm::ReadBvecs(opt.input) : gkm::ReadFvecs(opt.input);
  std::printf("  %zu vectors, %zu dims\n", x.rows(), x.cols());

  std::printf("clustering with %s (k=%zu)...\n", opt.method.c_str(), opt.k);
  const gkm::ClusteringResult res = Run(x, opt);

  const gkm::ClusterSizeStats sizes =
      gkm::SummarizeClusterSizes(res.assignments, opt.k);
  std::printf("done: %zu iterations, %.2fs (init %.2fs + iter %.2fs)\n",
              res.iterations, res.total_seconds, res.init_seconds,
              res.iter_seconds);
  std::printf("distortion E = %.6f; cluster sizes min/mean/max = "
              "%zu/%.1f/%zu (%zu empty)\n",
              res.distortion, sizes.min, sizes.mean, sizes.max, sizes.empty);

  if (!opt.labels_path.empty()) {
    std::vector<std::int32_t> row(res.assignments.begin(),
                                  res.assignments.end());
    gkm::WriteIvecs(opt.labels_path, {row});
    std::printf("labels -> %s\n", opt.labels_path.c_str());
  }
  if (!opt.centroids_path.empty()) {
    gkm::WriteFvecs(opt.centroids_path, res.centroids);
    std::printf("centroids -> %s\n", opt.centroids_path.c_str());
  }
  return 0;
}
