// Copyright 2026 The gkmeans Authors.
//
// Quickstart: cluster a synthetic 128-d dataset into 200 clusters with the
// full GK-means pipeline (Alg. 3 graph construction + Alg. 2 clustering)
// and compare against plain Lloyd k-means.
//
// Usage: quickstart [n] [k]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/lloyd.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  // Large k is the regime the paper targets: the GK-means advantage over
  // Lloyd grows linearly with k.
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : n / 40;

  std::printf("Generating %zu SIFT-like 128-d vectors...\n", n);
  const gkm::SyntheticData data = gkm::MakeSiftLike(n);

  // --- GK-means: build the KNN graph, then cluster with its support. ---
  gkm::PipelineParams params;
  params.k = k;
  params.graph.kappa = 20;
  params.graph.xi = 50;
  params.graph.tau = 6;
  params.clustering.kappa = 20;
  params.clustering.max_iters = 30;

  std::printf("Running GK-means (k=%zu, kappa=%zu, tau=%zu)...\n", k,
              params.graph.kappa, params.graph.tau);
  const gkm::PipelineResult gk = gkm::GkMeansCluster(data.vectors, params);
  std::printf("  graph build : %6.2fs\n", gk.graph_seconds);
  std::printf("  clustering  : %6.2fs (%zu iterations)\n",
              gk.clustering.total_seconds - gk.graph_seconds,
              gk.clustering.iterations);
  std::printf("  distortion E: %.1f\n", gk.clustering.distortion);

  // --- Baseline: traditional k-means on the same data. ---
  gkm::LloydParams lloyd;
  lloyd.k = k;
  lloyd.max_iters = 30;
  std::printf("Running traditional k-means...\n");
  const gkm::ClusteringResult km = gkm::LloydKMeans(data.vectors, lloyd);
  std::printf("  clustering  : %6.2fs (%zu iterations)\n", km.total_seconds,
              km.iterations);
  std::printf("  distortion E: %.1f\n", km.distortion);

  std::printf("\nGK-means speed-up over k-means: %.1fx  (distortion ratio %.3f)\n",
              km.total_seconds / gk.clustering.total_seconds,
              gk.clustering.distortion / km.distortion);

  const gkm::ClusterSizeStats sizes =
      gkm::SummarizeClusterSizes(gk.clustering.assignments, k);
  std::printf("GK-means cluster sizes: min=%zu mean=%.1f max=%zu empty=%zu\n",
              sizes.min, sizes.mean, sizes.max, sizes.empty);
  return 0;
}
