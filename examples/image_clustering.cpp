// Copyright 2026 The gkmeans Authors.
//
// Web-scale image clustering scenario (the paper's §1 motivation: visual
// vocabulary construction / image linking). Clusters VLAD-like global
// image descriptors into many clusters — the regime where k is too large
// for classic k-means — and reports the quality/time trade-off of
// GK-means against closure k-means and Mini-Batch.
//
// Real data can be supplied as an .fvecs file:
//   image_clustering path/to/vlad.fvecs [k]
// otherwise a VLAD-like synthetic corpus is generated.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/pipeline.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/mini_batch.h"

namespace {

void Report(const char* name, const gkm::ClusteringResult& res,
            std::size_t k) {
  const gkm::ClusterSizeStats sizes =
      gkm::SummarizeClusterSizes(res.assignments, k);
  std::printf("%-14s time %7.2fs (init %6.2fs + iter %6.2fs)  E=%.5f  "
              "sizes[min/mean/max]=%zu/%.0f/%zu empty=%zu\n",
              name, res.total_seconds, res.init_seconds, res.iter_seconds,
              res.distortion, sizes.min, sizes.mean, sizes.max, sizes.empty);
}

}  // namespace

int main(int argc, char** argv) {
  gkm::Matrix vectors;
  if (argc > 1 && std::strstr(argv[1], ".fvecs") != nullptr) {
    std::printf("Loading %s ...\n", argv[1]);
    vectors = gkm::ReadFvecs(argv[1]);
  } else {
    const std::size_t n =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;
    std::printf("Generating %zu VLAD-like 512-d image descriptors...\n", n);
    vectors = gkm::MakeVladLike(n).vectors;
  }
  const std::size_t k =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : vectors.rows() / 30;
  std::printf("Clustering %zu x %zu into k=%zu clusters\n\n", vectors.rows(),
              vectors.cols(), k);

  {
    gkm::PipelineParams p;
    p.k = k;
    p.graph.kappa = 20;
    p.graph.xi = 50;
    p.graph.tau = 6;
    p.clustering.kappa = 20;
    p.clustering.max_iters = 30;
    const gkm::PipelineResult res = gkm::GkMeansCluster(vectors, p);
    Report("GK-means", res.clustering, k);
  }
  {
    gkm::ClosureParams p;
    p.k = k;
    p.num_trees = 3;
    p.leaf_size = 50;
    p.max_iters = 30;
    Report("closure", gkm::ClosureKMeans(vectors, p), k);
  }
  {
    gkm::MiniBatchParams p;
    p.k = k;
    p.batch_size = 1000;
    p.max_iters = 30;
    Report("mini-batch", gkm::MiniBatchKMeans(vectors, p), k);
  }
  return 0;
}
