// Copyright 2026 The gkmeans Authors.
//
// Text-embedding vocabulary construction (the paper's Glove1M scenario):
// cluster GloVe-like word embeddings into a large codebook. Text
// embeddings overlap far more than visual descriptors, making this the
// adversarial case for neighborhood-pruned clustering — the example prints
// how much quality GK-means gives up against full BKM here, and how the
// kappa knob trades speed for quality (§4.4).
//
// Usage: text_vocabulary [n] [k]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "kmeans/boost_kmeans.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;

  std::printf("Generating %zu GloVe-like 100-d word embeddings...\n", n);
  const gkm::SyntheticData data = gkm::MakeGloveLike(n, 100, 7);

  std::printf("Reference: full boost k-means (k=%zu)...\n", k);
  gkm::BkmParams bp;
  bp.k = k;
  bp.max_iters = 30;
  const gkm::ClusteringResult bkm = gkm::BoostKMeans(data.vectors, bp);
  std::printf("  BKM        time %7.2fs  E=%.5f\n", bkm.total_seconds,
              bkm.distortion);

  std::printf("\nGK-means with increasing neighbor budget kappa:\n");
  std::printf("%-8s %-10s %-10s %-12s\n", "kappa", "time(s)", "E",
              "E/E_bkm");
  for (const std::size_t kappa : {5u, 10u, 20u, 40u}) {
    gkm::PipelineParams p;
    p.k = k;
    p.graph.kappa = kappa;
    p.graph.xi = 50;
    p.graph.tau = 8;
    p.clustering.kappa = kappa;
    p.clustering.max_iters = 30;
    const gkm::PipelineResult res = gkm::GkMeansCluster(data.vectors, p);
    std::printf("%-8zu %-10.2f %-10.5f %-12.4f\n", kappa,
                res.clustering.total_seconds, res.clustering.distortion,
                res.clustering.distortion / bkm.distortion);
  }
  std::printf("\nLarger kappa -> candidate sets closer to all-k scan -> "
              "distortion approaches BKM at higher cost.\n");
  return 0;
}
