// Copyright 2026 The gkmeans Authors.
// Streaming subsystem walkthrough: cluster a continuously-arriving vector
// stream with StreamingGkMeans, watch per-window diagnostics, checkpoint
// mid-stream, and restart from the checkpoint as a server would after a
// crash or deploy.
//
//   ./example_stream_cluster [n] [k] [window]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "stream/checkpoint.h"
#include "stream/streaming_gkmeans.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  const std::size_t window =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 500;
  const std::size_t dim = 24;
  const std::size_t bootstrap_min = std::max<std::size_t>(4 * k, 512);
  if (n < 2 * bootstrap_min || k < 2 || window == 0) {
    std::fprintf(stderr,
                 "usage: %s [n] [k] [window]\n"
                 "  n >= %zu (twice the bootstrap threshold for k=%zu), "
                 "k >= 2, window >= 1\n",
                 argv[0], 2 * bootstrap_min, k);
    return 1;
  }

  std::printf("streaming %zu synthetic points (d=%zu) into k=%zu clusters, "
              "windows of %zu\n\n", n, dim, k, window);
  gkm::SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = k;
  spec.seed = 7;
  const gkm::SyntheticData data = gkm::MakeGaussianMixture(spec);

  gkm::StreamingGkMeansParams params;
  params.k = k;
  params.kappa = 12;
  params.graph.kappa = 12;
  params.bootstrap_min = bootstrap_min;

  // Phase 1: stream the first half, as if serving live traffic.
  gkm::StreamingGkMeans model(dim, params);
  for (std::size_t begin = 0; begin < n / 2; begin += window) {
    const std::size_t end = std::min(begin + window, n / 2);
    model.ObserveWindow(gkm::SliceRows(data.vectors, begin, end));
    const gkm::WindowStats& ws = model.history().back();
    if (ws.window % 3 == 0 && model.bootstrapped()) {
      std::printf("window %3zu: %5zu pts, touched %5zu, moves %4zu, "
                  "E=%.3f%s\n",
                  ws.window, ws.points, ws.touched, ws.moves, ws.distortion,
                  ws.drifted > 0 ? " [drift]" : "");
    }
  }

  // Phase 2: checkpoint and "restart the server".
  const std::string ckpt = "/tmp/gkm_stream_example.ckpt";
  gkm::SaveStreamCheckpoint(ckpt, model);
  std::printf("\ncheckpointed %zu points at window %zu -> %s\n",
              model.points_seen(), model.windows_seen(), ckpt.c_str());
  gkm::StreamingGkMeans restarted = gkm::LoadStreamCheckpoint(ckpt);
  std::remove(ckpt.c_str());
  std::printf("restored: %zu points, distortion %.3f (matches: %s)\n\n",
              restarted.points_seen(), restarted.Distortion(),
              restarted.Distortion() == model.Distortion() ? "yes" : "no");

  // Phase 3: the restored instance finishes the stream.
  for (std::size_t begin = n / 2; begin < n; begin += window) {
    const std::size_t end = std::min(begin + window, n);
    restarted.ObserveWindow(gkm::SliceRows(data.vectors, begin, end));
  }
  restarted.Consolidate(2);

  const gkm::ClusteringResult res = restarted.Result();
  const gkm::ClusterSizeStats sizes =
      gkm::SummarizeClusterSizes(res.assignments, k);
  std::printf("final: %zu points in %zu clusters, distortion %.3f\n",
              restarted.points_seen(), k, res.distortion);
  std::printf("cluster sizes: min %zu / mean %.1f / max %zu (%zu empty)\n",
              sizes.min, sizes.mean, sizes.max, sizes.empty);

  // Serving: route a fresh query to its cluster via the online graph.
  const gkm::SyntheticData probe = gkm::MakeGaussianMixture(
      {.n = 1, .dim = dim, .modes = k, .seed = 99});
  const auto nn = restarted.graph().SearchKnn(probe.vectors.Row(0), 3);
  std::printf("\nquery routed to cluster %u via nearest stored points "
              "[%u %u %u]\n",
              restarted.labels()[nn[0].id], nn[0].id, nn[1].id, nn[2].id);
  return 0;
}
