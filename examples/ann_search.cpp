// Copyright 2026 The gkmeans Authors.
//
// Approximate nearest neighbor search with the Alg. 3 graph (§4.3): build
// the KNN graph with GK-means' intertwined construction, then answer
// queries with greedy graph search at several beam widths, reporting
// recall@1 and per-query latency against brute-force ground truth.
//
// Usage: ann_search [n] [num_queries]

#include <cstdio>
#include <cstdlib>

#include "anns/graph_search.h"
#include "common/timer.h"
#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "graph/brute_force.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::size_t nq = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;

  std::printf("Generating %zu SIFT-like base vectors + %zu queries...\n", n, nq);
  // Base and queries must share one distribution: generate together, split.
  const gkm::SyntheticData all = gkm::MakeSiftLike(n + nq, 128, 1);
  const gkm::Matrix base = gkm::SliceRows(all.vectors, 0, n);
  const gkm::Matrix queries = gkm::SliceRows(all.vectors, n, n + nq);

  std::printf("Building KNN graph with Alg. 3 (kappa=20, xi=50, tau=12)...\n");
  gkm::GraphBuildParams gp;
  gp.kappa = 20;
  gp.xi = 50;
  gp.tau = 12;  // ANNS-grade graphs want more rounds (§4.4)
  gkm::Timer build_timer;
  const gkm::KnnGraph graph = gkm::BuildKnnGraph(base, gp);
  std::printf("  graph built in %.2fs\n", build_timer.Seconds());

  std::printf("Computing brute-force ground truth for %zu queries...\n", nq);
  const auto truth = gkm::BruteForceSearch(base, queries, 1);

  gkm::GraphSearcher searcher(base, graph);
  searcher.SetEntryPoints(gkm::SelectEntryPoints(base, 256));
  std::printf("\n%-12s %-10s %-14s %-12s\n", "beam", "recall@1", "avg dists",
              "avg latency");
  for (const std::size_t beam : {8u, 16u, 32u, 64u, 128u}) {
    gkm::SearchParams sp;
    sp.topk = 1;
    sp.beam_width = beam;
    std::size_t hits = 0;
    std::size_t dists = 0;
    gkm::Timer timer;
    for (std::size_t q = 0; q < nq; ++q) {
      gkm::SearchStats stats;
      const auto got = searcher.Search(queries.Row(q), sp, &stats);
      hits += (!got.empty() && got[0].id == truth[q][0].id) ? 1 : 0;
      dists += stats.distance_evals;
    }
    const double secs = timer.Seconds();
    std::printf("%-12zu %-10.3f %-14.0f %9.3f ms\n", beam,
                static_cast<double>(hits) / static_cast<double>(nq),
                static_cast<double>(dists) / static_cast<double>(nq),
                secs * 1e3 / static_cast<double>(nq));
  }
  return 0;
}
