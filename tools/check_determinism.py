#!/usr/bin/env python3
# Copyright 2026 The gkmeans Authors.
"""Determinism lint for the gkmeans tree.

The library's contract is that results — cluster assignments, checkpoint
bytes, journal digests — are a pure function of the input stream and the
seeds in the params structs (docs/determinism.md). This lint rejects the
source patterns that silently break that contract:

  banned-random    rand()/std::random_device/std:: <random> engines and
                   distributions anywhere in src/ outside src/common/rng.*
                   — all randomness flows through the seeded gkm::Rng.
  banned-clock     std::chrono / clock_gettime / gettimeofday / time()
                   outside the files allowlisted below — wall/steady time
                   must never feed model state, only telemetry and waits.
  unordered-state  std::unordered_map/set in the state-carrying dirs
                   (src/stream, src/graph, src/core, src/kmeans,
                   src/anns): hash-iteration order is libstdc++-version
                   dependent, so anything iterated out of one can leak
                   nondeterminism into checkpointed state. Membership-only
                   use is possible but too easy to get wrong near state;
                   use a sorted vector or justify with a det-ok comment.
  fma-outside-kernels
                   explicit FMA (std::fma, __builtin_fma, _mm*fmadd)
                   outside src/common/kernels.cc — contraction changes
                   rounding, and only the kernels file pins the scalar
                   reference path it must match bit-for-bit.
  fp-contract      CMakeLists.txt must compile the library with
                   -ffp-contract=off (GCC defaults to =fast, which may
                   fuse a*b+c differently across targets).
  stats-hygiene    arguments of GKM_COUNTER_ADD / GKM_GAUGE_SET /
                   GKM_HISTOGRAM_RECORD / GKM_TRACE_SPAN must be free of
                   side effects (++/--/assignment): the macros expand to
                   nothing under GKM_NO_STATS, so a side effect in an
                   argument would make the no-stats build diverge.

Suppression: append `// det-ok: <reason>` to a line to exempt it. A bare
`det-ok` with no reason is itself an error — the justification is the
point. File-level exemptions for banned-clock live in CLOCK_ALLOWLIST
below, each with its reason.

Usage:
  tools/check_determinism.py [repo_root]   # lint the tree (default: repo)
  tools/check_determinism.py --self-test   # verify every rule still fires
"""

import os
import re
import sys
import tempfile

# Files allowed to touch clock APIs, with why. Everything here is timing
# control or telemetry — none of these values reach checkpointed state.
CLOCK_ALLOWLIST = {
    "src/obs/clock.h": "the tree's single steady-clock source",
    "src/obs/sampler.h": "sampler cadence (chrono::milliseconds period) "
                         "and scrape deadlines — telemetry only",
    "src/common/mutex.h": "CondVar::WaitFor duration parameter — a wait "
                          "bound, never model state",
    "src/common/thread_pool.h": "worker idle-wait bounds — never model "
                                "state",
    "src/serve/batch_queue.cc": "micro-batch flush deadlines "
                                "(chrono::nanoseconds wait bounds) — "
                                "batching latency policy, never model "
                                "state",
}

# Randomness may only live in the seeded generator itself.
RNG_ALLOWLIST = ("src/common/rng.h", "src/common/rng.cc")

# Dirs whose containers can end up in checkpoints/journals.
STATE_DIRS = ("src/stream/", "src/graph/", "src/core/", "src/kmeans/",
              "src/anns/")

KERNELS_FILE = "src/common/kernels.cc"

RANDOM_RE = re.compile(
    r"\b(?:std::)?(?:s?rand)\s*\(|std::random_device|std::mt19937"
    r"|std::minstd_rand|std::default_random_engine"
    r"|std::(?:uniform_int|uniform_real|normal|bernoulli)_distribution")
CLOCK_RE = re.compile(
    r"std::chrono|\bclock_gettime\s*\(|\bgettimeofday\s*\("
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)")
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)")
FMA_RE = re.compile(r"\bstd::fma[fl]?\s*\(|__builtin_fmaf?\b"
                    r"|_mm\d*_(?:fn?madd|fn?msub)_p[sd]\b")
STATS_MACRO_RE = re.compile(
    r"\b(GKM_COUNTER_ADD|GKM_GAUGE_SET|GKM_HISTOGRAM_RECORD"
    r"|GKM_TRACE_SPAN)\s*\(")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/&|^])=(?![=])")
DET_OK_RE = re.compile(r"//\s*det-ok(?P<reason>:.*)?$")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so tokens inside them never match."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def macro_args(code, start):
    """Returns the balanced-paren argument text starting at code[start]
    (which must be '('), or None if unbalanced."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[start + 1:i]
    return None


def lint_file(rel, text, violations):
    code = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    code_lines = code.splitlines()

    def check(lineno, rule, message):
        raw = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        m = DET_OK_RE.search(raw)
        if m:
            if not m.group("reason") or not m.group("reason")[1:].strip():
                violations.append((rel, lineno, "det-ok",
                                   "bare det-ok without a reason"))
            return
        violations.append((rel, lineno, rule, message))

    in_state_dir = any(rel.startswith(d) for d in STATE_DIRS)
    for idx, line in enumerate(code_lines, start=1):
        if rel not in RNG_ALLOWLIST and RANDOM_RE.search(line):
            check(idx, "banned-random",
                  "randomness outside src/common/rng.* — use the seeded "
                  "gkm::Rng")
        if rel not in CLOCK_ALLOWLIST and CLOCK_RE.search(line):
            check(idx, "banned-clock",
                  "clock API outside the allowlist — time must never "
                  "feed model state (see gkm::obs::MonotonicNanos)")
        if in_state_dir and UNORDERED_RE.search(line):
            check(idx, "unordered-state",
                  "unordered container in a state-carrying dir — "
                  "iteration order is not deterministic across stdlibs")
        if rel != KERNELS_FILE and FMA_RE.search(line):
            check(idx, "fma-outside-kernels",
                  "explicit FMA outside src/common/kernels.cc changes "
                  "rounding vs the scalar reference path")

    for m in STATS_MACRO_RE.finditer(code):
        args = macro_args(code, m.end() - 1)
        if args is None:
            continue
        if SIDE_EFFECT_RE.search(args):
            lineno = code.count("\n", 0, m.start()) + 1
            check(lineno, "stats-hygiene",
                  f"side effect in {m.group(1)} argument — it vanishes "
                  "under GKM_NO_STATS")


def lint_tree(root):
    violations = []
    src = os.path.join(root, "src")
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                lint_file(rel, f.read(), violations)
    cmake = os.path.join(root, "CMakeLists.txt")
    if os.path.exists(cmake):
        with open(cmake, encoding="utf-8") as f:
            if "-ffp-contract=off" not in f.read():
                violations.append(
                    ("CMakeLists.txt", 0, "fp-contract",
                     "library must be compiled with -ffp-contract=off"))
    return violations


def self_test():
    """Seeds one violation per rule into a scratch tree and asserts the
    lint flags each — so a refactor of the regexes cannot silently turn
    the lint into a no-op."""
    cases = {
        "src/stream/bad_random.cc": (
            "int f() { return std::mt19937(7)(); }\n", "banned-random"),
        "src/stream/bad_clock.cc": (
            "auto t = std::chrono::steady_clock::now();\n", "banned-clock"),
        "src/stream/bad_unordered.h": (
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> state_;\n", "unordered-state"),
        "src/stream/bad_fma.cc": (
            "double g(double a) { return std::fma(a, a, 1.0); }\n",
            "fma-outside-kernels"),
        "src/stream/bad_stats.cc": (
            "void h(int n) { GKM_COUNTER_ADD(\"x\", ++n); }\n",
            "stats-hygiene"),
        "src/stream/bad_det_ok.cc": (
            "auto t = std::chrono::seconds(1);  // det-ok\n", "det-ok"),
    }
    clean = {
        # Comments, strings, and justified suppressions must not fire.
        "src/stream/fine.cc":
            "// mentions std::chrono and rand() in a comment only\n"
            "const char* s = \"std::random_device\";\n"
            "auto d = std::chrono::seconds(1);  // det-ok: test fixture\n"
            "void h(long n) { GKM_COUNTER_ADD(\"x\", n * 2); }\n",
    }
    failures = []
    with tempfile.TemporaryDirectory() as root:
        for rel, (text, _) in {**cases,
                               **{k: (v, None) for k, v in clean.items()}
                               }.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        with open(os.path.join(root, "CMakeLists.txt"), "w",
                  encoding="utf-8") as f:
            f.write("# no contract flag here\n")
        found = lint_tree(root)
        rules_hit = {(rel, rule) for rel, _, rule, _ in found}
        for rel, (_, rule) in cases.items():
            if (rel, rule) not in rules_hit:
                failures.append(f"expected {rule} to fire on {rel}")
        if ("CMakeLists.txt", "fp-contract") not in rules_hit:
            failures.append("expected fp-contract to fire")
        for rel in clean:
            hits = [v for v in found if v[0] == rel]
            if hits:
                failures.append(f"false positive on {rel}: {hits}")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test ok: every rule fires and clean code passes")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = lint_tree(root)
    for rel, lineno, rule, message in violations:
        print(f"{rel}:{lineno}: [{rule}] {message}", file=sys.stderr)
    if violations:
        print(f"\n{len(violations)} determinism violation(s). Fix them or "
              "append '// det-ok: <reason>'.", file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
