#!/usr/bin/env python3
# Copyright 2026 The gkmeans Authors.
"""Internal link checker for the docs suite.

Scans README.md and docs/*.md for markdown links, verifies that every
relative link resolves to an existing file, and that every `#fragment`
(on a relative link or an intra-document anchor) matches a heading in
the target file using GitHub's anchor rules. External links (scheme://)
are not fetched. Exits non-zero listing every broken reference — the CI
docs job runs this so cross-references cannot rot silently.

Usage: tools/check_docs_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, drop punctuation,
    spaces to hyphens (inline code/emphasis markers stripped)."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(1)))
    return anchors


def links_of(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    doc_files = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        doc_files += sorted(
            os.path.join(docs_dir, f)
            for f in os.listdir(docs_dir)
            if f.endswith(".md")
        )

    errors = []
    checked = 0
    for doc in doc_files:
        if not os.path.isfile(doc):
            errors.append(f"{doc}: listed doc file missing")
            continue
        base = os.path.dirname(doc)
        for lineno, target in links_of(doc):
            if re.match(r"^[a-z][a-z0-9+.-]*://", target) or target.startswith(
                "mailto:"
            ):
                continue  # external
            checked += 1
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(dest):
                    errors.append(
                        f"{os.path.relpath(doc, root)}:{lineno}: broken link "
                        f"-> {target} (no such file)"
                    )
                    continue
            else:
                dest = doc  # intra-document anchor
            if fragment:
                if not dest.endswith(".md"):
                    continue  # cannot verify anchors in non-markdown targets
                if github_anchor(fragment) not in anchors_of(dest):
                    errors.append(
                        f"{os.path.relpath(doc, root)}:{lineno}: broken anchor "
                        f"-> {target} (no heading '#{fragment}' in "
                        f"{os.path.relpath(dest, root)})"
                    )

    for e in errors:
        print(e)
    print(
        f"checked {checked} internal links across {len(doc_files)} files: "
        f"{len(errors)} broken"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
