#!/usr/bin/env python3
# Copyright 2026 The gkmeans Authors.
"""Validates BENCH_*.json artifacts against the gkm-bench-v1 schema.

Usage: check_bench_json.py FILE [FILE...]

Each file must be a single JSON object with:
  schema     == "gkm-bench-v1"
  bench      non-empty string
  scale      positive number
  simd_tier  one of scalar/avx2/avx512/neon
  metrics    object of finite-number (or null) values, non-empty

Benches with quantized-arena coverage must additionally emit their SQ8
metrics (REQUIRED_KEYS below), so a refactor that silently drops the SQ8
section from a bench fails this check instead of passing vacuously.

Exits non-zero with a per-file report on any violation, so CI catches a
bench that silently stopped emitting (or emits a malformed) result file.
"""

import json
import math
import sys

VALID_TIERS = {"scalar", "avx2", "avx512", "neon"}

# Per-bench metrics that must be present (value may be null for
# non-finite measurements, but the key itself has to exist).
REQUIRED_KEYS = {
    "online_search": [
        "arena_bytes_per_point",
        "sq8_rerank_fraction",
        "sq8_arena_ratio",
        "recall_at_10_sq8",
        "recall_at_10_sq8_post_churn",
        # Cluster-routed sharding: the single-shard fast path must report
        # its recall (fresh + post-churn) and its QPS edge over the merged
        # fan-out, or the routed section silently vanished.
        "recall_at_10_routed",
        "recall_at_10_routed_post_churn",
        "qps_routed",
        "qps_merged_s4",
        "routed_qps_ratio",
    ],
    "stream_throughput": [
        "sq8_ingest_ratio",
    ],
    # The serving daemon's load-test contract (docs/serving.md): latency
    # percentiles, sustained throughput, and the admission-control
    # refusal rate. A loadtest that stops measuring one of these would
    # otherwise pass vacuously.
    "serve_loadtest": [
        "p50_us",
        "p99_us",
        "qps",
        "overload_rate",
        # Replica read path: routed+replica fan-out vs the single-reader
        # merged baseline over the same corpus.
        "routed_qps",
        "merged_qps",
        "routed_merged_qps_ratio",
    ],
}


def check(path: str) -> list:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]

    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("schema") != "gkm-bench-v1":
        errors.append(f"schema is {doc.get('schema')!r}, want 'gkm-bench-v1'")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("missing/empty 'bench' name")
    scale = doc.get("scale")
    if not isinstance(scale, (int, float)) or not scale > 0:
        errors.append(f"'scale' is {scale!r}, want a positive number")
    if doc.get("simd_tier") not in VALID_TIERS:
        errors.append(
            f"'simd_tier' is {doc.get('simd_tier')!r}, want one of "
            f"{sorted(VALID_TIERS)}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append("'metrics' missing, not an object, or empty")
    else:
        for key, value in metrics.items():
            if value is None:  # emitter writes null for non-finite values
                continue
            if not isinstance(value, (int, float)) or (
                    isinstance(value, float) and not math.isfinite(value)):
                errors.append(f"metric {key!r} is {value!r}, want a number")
        for key in REQUIRED_KEYS.get(doc.get("bench"), []):
            if key not in metrics:
                errors.append(f"required metric {key!r} missing")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(f"usage: {argv[0]} FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check(path)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for e in errors:
                print(f"  - {e}")
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
