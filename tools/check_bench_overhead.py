#!/usr/bin/env python3
# Copyright 2026 The gkmeans Authors.
"""Gates telemetry overhead: instrumented vs GKM_NO_STATS bench results.

Usage:
  check_bench_overhead.py INSTRUMENTED.json[,MORE.json...] \\
      BASELINE.json[,MORE.json...] \\
      [--metric ingest_pts_per_sec] [--min-ratio 0.97]

Both inputs are gkm-bench-v1 files from the SAME bench run in the two
build configs on the same machine. Each side accepts a comma-separated
list of repeat runs; the best (max) value per side is compared, which
filters out one-off scheduler noise on shared CI runners. The gate
passes when
    best(instrumented[metric]) / best(baseline[metric]) >= min_ratio
i.e. compiling the telemetry in costs at most (1 - min_ratio) of the
throughput metric. See the overhead contract in docs/observability.md.
"""

import argparse
import json
import sys


def load_metric(path: str, metric: str) -> float:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "gkm-bench-v1":
        raise ValueError(f"{path}: not a gkm-bench-v1 file")
    value = doc.get("metrics", {}).get(metric)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{path}: metric {metric!r} is {value!r}, "
                         "want a positive number")
    return float(value)


def best_metric(paths: str, metric: str) -> float:
    return max(load_metric(p, metric) for p in paths.split(","))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("instrumented",
                        help="json(s) from the default build, comma-separated")
    parser.add_argument("baseline",
                        help="json(s) from the GKM_NO_STATS build, "
                             "comma-separated")
    parser.add_argument("--metric", default="ingest_pts_per_sec")
    parser.add_argument("--min-ratio", type=float, default=0.97)
    args = parser.parse_args()

    try:
        with_stats = best_metric(args.instrumented, args.metric)
        no_stats = best_metric(args.baseline, args.metric)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 2

    ratio = with_stats / no_stats
    verdict = "PASS" if ratio >= args.min_ratio else "FAIL"
    print(f"{verdict}: {args.metric} instrumented={with_stats:.1f} "
          f"no-stats={no_stats:.1f} ratio={ratio:.4f} "
          f"(gate >= {args.min_ratio})")
    return 0 if ratio >= args.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
