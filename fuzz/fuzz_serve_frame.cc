// Copyright 2026 The gkmeans Authors.
// libFuzzer harness for the GKMP wire codec (serve/protocol.h): every
// byte string fed to the frame layer must produce frames, kNeedMore, or
// a clean latched error — never an abort, crash, or unbounded
// allocation. Three consumers run over each input:
//
//   1. FrameParser fed the whole buffer at once, drained to exhaustion.
//   2. The same parser re-fed byte-at-a-time — the incremental path must
//      agree with the bulk path frame-for-frame (resync and compaction
//      bugs show up as divergence, caught by the GKM_CHECKs below).
//   3. TryReadFrame over fmemopen, exercising the io::Reader path the
//      offline tools use.
//
// Every decoded frame is then routed through its typed Decode* validator
// so the payload grammars (shape cross-checks, overflow guards,
// trailing-byte rejection) get fuzzed too, not just the 18-byte header.
//
// Build with -DGKM_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// GKM_FUZZ_STANDALONE supplies a main() that replays the files given on
// the command line (the checked-in corpus doubles as a regression suite).

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/binary_io.h"
#include "common/macros.h"
#include "serve/protocol.h"

namespace {

using gkm::serve::Frame;
using gkm::serve::FrameParser;
using gkm::serve::Opcode;

// Runs the typed payload validator matching the frame's opcode. The
// return value (nullptr vs error string) is irrelevant to the fuzzer —
// both are legal — we only require that validation terminates without
// tripping a sanitizer.
void DecodeTyped(const Frame& f) {
  switch (f.opcode) {
    case Opcode::kSearch:
    case Opcode::kBatchSearch: {
      gkm::serve::SearchRequest out;
      (void)gkm::serve::DecodeSearchRequest(f, &out);
      break;
    }
    case Opcode::kInsert: {
      gkm::serve::InsertRequest out;
      (void)gkm::serve::DecodeInsertRequest(f, &out);
      break;
    }
    case Opcode::kRemove: {
      gkm::serve::RemoveRequest out;
      (void)gkm::serve::DecodeRemoveRequest(f, &out);
      break;
    }
    case Opcode::kStats:
    case Opcode::kShutdown:
    case Opcode::kShutdownAck:
      (void)gkm::serve::DecodeEmptyPayload(f);
      break;
    case Opcode::kSearchResult:
    case Opcode::kBatchSearchResult: {
      gkm::serve::SearchResponse out;
      (void)gkm::serve::DecodeSearchResponse(f, &out);
      break;
    }
    case Opcode::kInsertResult: {
      gkm::serve::InsertResponse out;
      (void)gkm::serve::DecodeInsertResponse(f, &out);
      break;
    }
    case Opcode::kRemoveResult: {
      gkm::serve::RemoveResponse out;
      (void)gkm::serve::DecodeRemoveResponse(f, &out);
      break;
    }
    case Opcode::kStatsResult: {
      gkm::serve::StatsResponse out;
      (void)gkm::serve::DecodeStatsResponse(f, &out);
      break;
    }
    case Opcode::kError: {
      gkm::serve::ErrorResponse out;
      (void)gkm::serve::DecodeErrorResponse(f, &out);
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // 1. Bulk feed.
  FrameParser bulk;
  bulk.Feed(data, size);
  std::vector<Frame> frames;
  Frame f;
  FrameParser::Status status;
  while ((status = bulk.Next(&f)) == FrameParser::Status::kFrame) {
    DecodeTyped(f);
    frames.push_back(f);
  }
  const bool bulk_errored = status == FrameParser::Status::kError;

  // 2. Byte-at-a-time feed must yield the identical frame sequence and
  // terminal state — chunking is a transport artifact the parser must
  // never surface.
  FrameParser trickle;
  std::size_t matched = 0;
  bool trickle_errored = false;
  for (std::size_t i = 0; i < size && !trickle_errored; ++i) {
    trickle.Feed(data + i, 1);
    while ((status = trickle.Next(&f)) == FrameParser::Status::kFrame) {
      GKM_CHECK_MSG(matched < frames.size(),
                    "trickle parse produced an extra frame");
      const Frame& ref = frames[matched++];
      GKM_CHECK_MSG(f.opcode == ref.opcode &&
                        f.request_id == ref.request_id &&
                        f.payload == ref.payload,
                    "trickle parse diverged from bulk parse");
    }
    trickle_errored = status == FrameParser::Status::kError;
  }
  GKM_CHECK_MSG(matched == frames.size(), "trickle parse lost frames");
  GKM_CHECK_MSG(trickle_errored == bulk_errored,
                "trickle/bulk terminal states diverged");

  // 3. io::Reader path (the one offline replay tools use).
  if (size > 0) {
    std::FILE* mem =
        fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
    if (mem != nullptr) {
      gkm::io::Reader in(mem);
      const char* err = nullptr;
      while (gkm::serve::TryReadFrame(in, &f, &err)) DecodeTyped(f);
      std::fclose(mem);
    }
  }
  return 0;
}

#ifdef GKM_FUZZ_STANDALONE

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<std::uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      bytes.push_back(static_cast<std::uint8_t>(c));
    }
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif  // GKM_FUZZ_STANDALONE
