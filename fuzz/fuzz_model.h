// Copyright 2026 The gkmeans Authors.
// Deterministic miniature model shared by the fuzz harnesses and the seed
// corpus generator (fuzz/make_corpus.cc). fuzz_gkmd_replay.cc rebuilds the
// exact same base checkpoint at startup that make_corpus wrote the journal
// seeds against, so their base-hash binding survives into the fuzz run.
// Keep every constant here in sync across harness and generator by never
// duplicating them — change this file, then regenerate the corpus
// (`make_fuzz_corpus <repo>/fuzz/corpus`).

#ifndef GKM_FUZZ_FUZZ_MODEL_H_
#define GKM_FUZZ_FUZZ_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "dataset/synthetic.h"
#include "stream/streaming_gkmeans.h"

namespace gkmfuzz {

constexpr std::size_t kDim = 6;
constexpr std::size_t kWindowRows = 16;
// Windows fed into the base model; FuzzWindows() returns two extra so the
// corpus generator can journal post-base ingest records.
constexpr std::size_t kBaseWindows = 4;
constexpr std::size_t kExtraWindows = 2;

inline gkm::StreamingGkMeansParams FuzzParams(std::size_t shards) {
  gkm::StreamingGkMeansParams p;
  p.k = 3;
  p.kappa = 4;
  p.graph.kappa = 4;
  p.graph.beam_width = 12;
  p.graph.num_seeds = 8;
  p.graph.bootstrap = 16;
  p.graph.seed = 11;
  p.graph.shards = shards;
  p.bootstrap_min = 32;  // must exceed 2k
  p.bootstrap_epochs = 2;
  p.bisect_epochs = 2;
  p.route_hints = 2;
  p.seed = 5;
  return p;
}

inline std::vector<gkm::Matrix> FuzzWindows() {
  gkm::SyntheticSpec spec;
  spec.n = kWindowRows * (kBaseWindows + kExtraWindows);
  spec.dim = kDim;
  spec.modes = 3;
  spec.seed = 13;
  const gkm::SyntheticData data = gkm::MakeGaussianMixture(spec);
  std::vector<gkm::Matrix> windows;
  for (std::size_t w = 0; w < kBaseWindows + kExtraWindows; ++w) {
    windows.push_back(
        gkm::SliceRows(data.vectors, w * kWindowRows, (w + 1) * kWindowRows));
  }
  return windows;
}

/// Bootstrapped model with tombstones: kBaseWindows windows ingested, two
/// points removed. The state every GKMC/GKMD seed in the corpus derives
/// from.
inline gkm::StreamingGkMeans MakeFuzzBase(std::size_t shards) {
  gkm::StreamingGkMeans model(kDim, FuzzParams(shards));
  const std::vector<gkm::Matrix> windows = FuzzWindows();
  for (std::size_t w = 0; w < kBaseWindows; ++w) {
    model.ObserveWindow(windows[w]);
  }
  model.RemovePoint(3);
  model.RemovePoint(10);
  return model;
}

}  // namespace gkmfuzz

#endif  // GKM_FUZZ_FUZZ_MODEL_H_
