// Copyright 2026 The gkmeans Authors.
// Seed-corpus generator for the checkpoint fuzz harnesses. Usage:
//
//   make_fuzz_corpus <output-dir>      # typically <repo>/fuzz/corpus
//
// Writes GKMC seeds under <out>/gkmc_load/, GKMD journal seeds under
// <out>/gkmd_replay/, and GKMP wire-frame seeds under <out>/serve_frame/.
// The checkpoint seeds all derive from the deterministic model in
// fuzz/fuzz_model.h so the journal seeds' base-hash binding matches the
// base fuzz_gkmd_replay.cc rebuilds at startup. Current-version (v4 for
// fp32 arenas, v5 for SQ8) checkpoints come from the real writer; v2/v3
// layouts are handcrafted here because the writer no longer emits them —
// each file is loaded back through the Try* entry points before the
// generator exits, so a drifted legacy layout fails generation instead of
// checking in a dead seed.

#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "fuzz_model.h"
#include "serve/protocol.h"
#include "stream/checkpoint.h"
#include "stream/streaming_gkmeans.h"

namespace {

void Die(const std::string& msg) {
  std::fprintf(stderr, "make_fuzz_corpus: %s\n", msg.c_str());
  std::exit(1);
}

void MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    Die("cannot create " + path);
  }
}

void CopyFile(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) Die("cannot read " + from);
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) Die("cannot write " + to);
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (std::fwrite(buf, 1, n, out) != n) Die("short write to " + to);
  }
  std::fclose(in);
  std::fclose(out);
}

// --- legacy (v2/v3) writers -------------------------------------------------
// Mirrors the layout documented in docs/checkpoint-format.md: v3 is v4
// without the shard section table, v2 is additionally without the
// ttl_windows/graph.shards params fields and the removal block.

void WriteLegacyParams(std::FILE* f, const gkm::StreamingGkMeansParams& p,
                       std::uint32_t version) {
  gkm::io::WriteRaw<std::uint64_t>(f, p.k);
  gkm::io::WriteRaw<std::uint64_t>(f, p.kappa);
  gkm::io::WriteRaw<std::uint64_t>(f, p.graph.kappa);
  gkm::io::WriteRaw<std::uint64_t>(f, p.graph.beam_width);
  gkm::io::WriteRaw<std::uint64_t>(f, p.graph.num_seeds);
  gkm::io::WriteRaw<std::uint64_t>(f, p.graph.bootstrap);
  gkm::io::WriteRaw<std::uint64_t>(f, p.graph.seed);
  gkm::io::WriteRaw<std::uint64_t>(f, p.epochs_per_window);
  gkm::io::WriteRaw<std::uint64_t>(f, p.bootstrap_min);
  gkm::io::WriteRaw<std::uint64_t>(f, p.bootstrap_epochs);
  gkm::io::WriteRaw<std::uint64_t>(f, p.bisect_epochs);
  gkm::io::WriteRaw<double>(f, p.drift_threshold);
  gkm::io::WriteRaw<std::uint64_t>(f, p.max_extra_epochs);
  gkm::io::WriteRaw<std::uint64_t>(f, p.max_splits_per_window);
  gkm::io::WriteRaw<double>(f, p.split_gain_factor);
  gkm::io::WriteRaw<std::uint64_t>(f, p.route_hints);
  gkm::io::WriteRaw<std::uint64_t>(f, p.history_limit);
  gkm::io::WriteRaw<std::uint64_t>(f, p.seed);
  if (version >= 3) gkm::io::WriteRaw<std::uint64_t>(f, p.ttl_windows);
}

void WriteRngSnap(std::FILE* f, const gkm::RngSnapshot& r) {
  gkm::io::WriteArray(f, r.s, 4);
  gkm::io::WriteRaw<std::uint8_t>(f, r.have_spare ? 1 : 0);
  gkm::io::WriteRaw<double>(f, r.spare);
}

void WriteIds(std::FILE* f, const std::vector<std::uint32_t>& ids) {
  gkm::io::WriteRaw<std::uint64_t>(f, ids.size());
  gkm::io::WriteArray(f, ids.data(), ids.size());
}

void WriteLegacyCheckpoint(const std::string& path,
                           const gkm::StreamSnapshot& snap,
                           std::uint32_t version) {
  if (snap.shards.size() != 1) Die("legacy formats are single-shard");
  const gkm::OnlineShardParts& shard0 = snap.shards[0];
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) Die("cannot write " + path);

  gkm::io::WriteArray(f, "GKMC", 4);
  gkm::io::WriteRaw<std::uint32_t>(f, version);
  WriteLegacyParams(f, snap.params, version);

  gkm::io::WriteRaw<std::uint64_t>(f, snap.windows);
  gkm::io::WriteRaw<std::uint8_t>(f, snap.bootstrapped ? 1 : 0);
  WriteRngSnap(f, snap.rng);
  WriteRngSnap(f, shard0.rng);
  gkm::io::WriteRaw<std::uint64_t>(f, shard0.seeds.live_seeds);
  gkm::io::WriteRaw<double>(f, shard0.seeds.fail_ewma);
  gkm::io::WriteRaw<std::uint64_t>(f, shard0.seeds.audit_tick);

  gkm::io::WriteMatrix(f, shard0.points);
  shard0.graph.SaveTo(f);
  gkm::io::WriteRaw<std::uint64_t>(f, snap.labels.size());
  gkm::io::WriteArray(f, snap.labels.data(), snap.labels.size());
  gkm::io::WriteArray(f, snap.cluster_reps.data(), snap.cluster_reps.size());

  gkm::io::WriteRaw<std::uint64_t>(f, snap.n);
  gkm::io::WriteArray(f, snap.counts.data(), snap.counts.size());
  gkm::io::WriteArray(f, snap.composites.data(), snap.composites.size());
  gkm::io::WriteArray(f, snap.composite_norms.data(),
                      snap.composite_norms.size());
  gkm::io::WriteArray(f, snap.point_norms.data(), snap.point_norms.size());
  gkm::io::WriteRaw<double>(f, snap.sum_point_norms);

  gkm::io::WriteMatrix(f, snap.prev_centroids);

  if (version >= 3) {
    WriteIds(f, shard0.removal.pending_dead);
    WriteIds(f, shard0.removal.free_slots);
    gkm::io::WriteRaw<std::uint32_t>(f, shard0.removal.last_inserted);
    gkm::io::WriteRaw<std::uint64_t>(f, snap.birth_windows.size());
    gkm::io::WriteArray(f, snap.birth_windows.data(),
                        snap.birth_windows.size());
  }

  gkm::io::WriteArray(f, "CKPT", 4);
  std::fclose(f);
}

void CheckLoads(const std::string& path) {
  std::string error;
  if (!gkm::TryLoadStreamCheckpoint(path, &error)) {
    Die(path + " does not load back: " + error);
  }
}

// --- GKMP frame seeds -------------------------------------------------------

// Writes `frames` as one wire stream and verifies the stream parses back
// into the same number of frames with no parser error — a drifted codec
// fails generation instead of checking in a dead seed.
void WriteFrameSeed(const std::string& path,
                    const std::vector<gkm::serve::Frame>& frames) {
  std::vector<std::uint8_t> wire;
  for (const gkm::serve::Frame& f : frames) {
    gkm::serve::AppendFrame(wire, f);
  }

  gkm::serve::FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  gkm::serve::Frame parsed;
  std::size_t n = 0;
  gkm::serve::FrameParser::Status status;
  while ((status = parser.Next(&parsed)) ==
         gkm::serve::FrameParser::Status::kFrame) {
    ++n;
  }
  if (status == gkm::serve::FrameParser::Status::kError) {
    Die(path + " seed does not parse back: " + parser.error());
  }
  if (n != frames.size()) Die(path + " seed round-trip lost frames");

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) Die("cannot write " + path);
  if (!wire.empty() &&
      std::fwrite(wire.data(), 1, wire.size(), f) != wire.size()) {
    Die("short write to " + path);
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "fuzz/corpus";
  const std::string gkmc = out + "/gkmc_load";
  const std::string gkmd = out + "/gkmd_replay";
  MakeDir(out);
  MakeDir(gkmc);
  MakeDir(gkmd);

  const std::vector<gkm::Matrix> windows = gkmfuzz::FuzzWindows();

  // v4 current-format seeds straight from the writer: the canonical
  // single-shard base (identical to the replay harness's), a 3-shard
  // arena, and a pre-bootstrap cursor.
  gkm::StreamingGkMeans base = gkmfuzz::MakeFuzzBase(1);
  gkm::SaveStreamCheckpoint(gkmc + "/v4_s1.gkmc", base);
  CheckLoads(gkmc + "/v4_s1.gkmc");

  gkm::SaveStreamCheckpoint(gkmc + "/v4_s3.gkmc", gkmfuzz::MakeFuzzBase(3));
  CheckLoads(gkmc + "/v4_s3.gkmc");

  gkm::StreamingGkMeans young(gkmfuzz::kDim, gkmfuzz::FuzzParams(1));
  young.ObserveWindow(windows[0]);  // 16 points < bootstrap_min
  gkm::SaveStreamCheckpoint(gkmc + "/v4_prebootstrap.gkmc", young);
  CheckLoads(gkmc + "/v4_prebootstrap.gkmc");

  // v5 SQ8 seeds (the writer emits v5 only for quantized arenas): a
  // trained post-removal model — the 16-row graph bootstrap trains the
  // quantizer on the first window — plus an untrained cursor whose arena
  // is still staging fp32 rows, so the loader's trained/untrained branch
  // and the codes/norms/quantizer sections all sit in the corpus.
  gkm::StreamingGkMeansParams qp = gkmfuzz::FuzzParams(1);
  qp.graph.storage = gkm::StorageMode::kSq8;
  gkm::StreamingGkMeans sq8(gkmfuzz::kDim, qp);
  for (std::size_t w = 0; w < gkmfuzz::kBaseWindows; ++w) {
    sq8.ObserveWindow(windows[w]);
  }
  sq8.RemovePoint(3);
  gkm::SaveStreamCheckpoint(gkmc + "/v5_sq8.gkmc", sq8);
  CheckLoads(gkmc + "/v5_sq8.gkmc");

  gkm::StreamingGkMeans sq8_young(gkmfuzz::kDim, qp);
  sq8_young.ObserveWindow(gkm::SliceRows(windows[0], 0, 8));  // < bootstrap
  gkm::SaveStreamCheckpoint(gkmc + "/v5_sq8_untrained.gkmc", sq8_young);
  CheckLoads(gkmc + "/v5_sq8_untrained.gkmc");

  // Legacy seeds. v2 predates deletion, so it snapshots a model with no
  // removals (tombstones without a removal block would fail liveness
  // validation — correctly); v3 carries the tombstoned state.
  gkm::StreamingGkMeans clean(gkmfuzz::kDim, gkmfuzz::FuzzParams(1));
  for (std::size_t w = 0; w < gkmfuzz::kBaseWindows; ++w) {
    clean.ObserveWindow(windows[w]);
  }
  WriteLegacyCheckpoint(gkmc + "/v2.gkmc", clean.Snapshot(), 2);
  CheckLoads(gkmc + "/v2.gkmc");
  WriteLegacyCheckpoint(gkmc + "/v3.gkmc", base.Snapshot(), 3);
  CheckLoads(gkmc + "/v3.gkmc");

  // Journal seeds, bound to the same base the replay harness regenerates.
  // Scratch base/journal live in the output dir and are cleaned up after.
  const std::string tmp_base = out + "/scratch_base.gkmc";
  const std::string tmp_journal = out + "/scratch_journal.gkmd";
  {
    gkm::StreamDeltaLog log(tmp_base, tmp_journal, base);
    CopyFile(tmp_journal, gkmd + "/header_only.gkmd");

    log.AppendWindow(windows[gkmfuzz::kBaseWindows]);
    base.ObserveWindow(windows[gkmfuzz::kBaseWindows]);
    log.AppendStateCheck(base);
    log.AppendRemoval(5);
    base.RemovePoint(5);
    log.AppendWindow(windows[gkmfuzz::kBaseWindows + 1]);
    base.ObserveWindow(windows[gkmfuzz::kBaseWindows + 1]);
    log.AppendStateCheck(base);
    CopyFile(tmp_journal, gkmd + "/ingest_remove_digest.gkmd");
  }
  for (const char* name : {"header_only.gkmd", "ingest_remove_digest.gkmd"}) {
    std::string error;
    if (!gkm::TryResumeStreamCheckpoint(tmp_base, gkmd + "/" + name,
                                        &error)) {
      Die(std::string(name) + " does not replay: " + error);
    }
  }
  std::remove(tmp_base.c_str());
  std::remove(tmp_journal.c_str());

  // GKMP frame seeds for fuzz_serve_frame: one seed per frame type from
  // the real encoders so the fuzzer starts from every opcode's grammar,
  // plus a multi-frame stream (resync/compaction coverage). Derived from
  // the same deterministic fuzz windows as the checkpoint seeds.
  const std::string gkmp = out + "/serve_frame";
  MakeDir(gkmp);
  namespace serve = gkm::serve;
  const gkm::Matrix queries = gkm::SliceRows(windows[0], 0, 3);
  WriteFrameSeed(gkmp + "/search.gkmp",
                 {serve::MakeSearchRequest(1, 10, queries.Row(0),
                                           gkmfuzz::kDim)});
  WriteFrameSeed(gkmp + "/batch_search.gkmp",
                 {serve::MakeBatchSearchRequest(2, 5, queries)});
  WriteFrameSeed(gkmp + "/insert.gkmp", {serve::MakeInsertRequest(3, queries)});
  WriteFrameSeed(gkmp + "/remove.gkmp",
                 {serve::MakeRemoveRequest(4, {0, 7, 123456})});
  WriteFrameSeed(gkmp + "/stats.gkmp", {serve::MakeStatsRequest(5)});
  WriteFrameSeed(gkmp + "/shutdown.gkmp", {serve::MakeShutdownRequest(6)});

  serve::SearchResponse batch_results;
  batch_results.results.resize(queries.rows());
  for (std::size_t q = 0; q < batch_results.results.size(); ++q) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      batch_results.results[q].push_back(
          {static_cast<std::uint32_t>(8 * q + i), 0.25f * (i + 1)});
    }
  }
  serve::SearchResponse single_result;
  single_result.results.push_back(batch_results.results[0]);
  WriteFrameSeed(gkmp + "/search_result.gkmp",
                 {serve::MakeSearchResponse(1, /*batch=*/false,
                                            single_result)});
  WriteFrameSeed(gkmp + "/batch_search_result.gkmp",
                 {serve::MakeSearchResponse(2, /*batch=*/true,
                                            batch_results)});
  serve::InsertResponse inserted;
  inserted.assigned = {10, 11, 12};
  WriteFrameSeed(gkmp + "/insert_result.gkmp",
                 {serve::MakeInsertResponse(3, inserted)});
  serve::RemoveResponse removed;
  removed.removed = {1, 1, 0};
  WriteFrameSeed(gkmp + "/remove_result.gkmp",
                 {serve::MakeRemoveResponse(4, removed)});
  serve::StatsResponse stats;
  stats.points_seen = 300;
  stats.points_alive = 297;
  stats.windows = 3;
  stats.searches = 42;
  stats.inserts = 3;
  stats.removes = 3;
  stats.overloaded = 1;
  stats.dim = gkmfuzz::kDim;
  stats.shards = 2;
  stats.bootstrapped = 1;
  WriteFrameSeed(gkmp + "/stats_result.gkmp",
                 {serve::MakeStatsResponse(5, stats)});
  WriteFrameSeed(gkmp + "/shutdown_ack.gkmp", {serve::MakeShutdownAck(6)});
  WriteFrameSeed(gkmp + "/error.gkmp",
                 {serve::MakeErrorResponse(7, serve::ErrorCode::kOverloaded,
                                           "search queue full")});
  WriteFrameSeed(gkmp + "/pipeline.gkmp",
                 {serve::MakeStatsRequest(8),
                  serve::MakeSearchRequest(9, 3, queries.Row(1),
                                           gkmfuzz::kDim),
                  serve::MakeRemoveRequest(10, {2}),
                  serve::MakeShutdownRequest(11)});

  std::printf("corpus written under %s\n", out.c_str());
  return 0;
}
