// Copyright 2026 The gkmeans Authors.
// libFuzzer harness for TryLoadStreamCheckpoint: every byte string must
// produce either a model or a clean error — never an abort, crash,
// unbounded allocation, or leak. The input is served through fmemopen so
// no filesystem round-trip is needed per execution.
//
// Build with -DGKM_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// GKM_FUZZ_STANDALONE supplies a main() that replays the files given on
// the command line (the checked-in corpus doubles as a regression suite).

#include <cstdint>
#include <cstdio>
#include <string>

#include "stream/checkpoint.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers
  std::FILE* f = fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
  if (f == nullptr) return 0;
  std::string error;
  (void)gkm::TryLoadStreamCheckpoint(f, &error);
  std::fclose(f);
  return 0;
}

#ifdef GKM_FUZZ_STANDALONE
#include <cstdlib>
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<std::uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif  // GKM_FUZZ_STANDALONE
