// Copyright 2026 The gkmeans Authors.
// libFuzzer harness for the delta-journal replay path: a fixed valid base
// checkpoint (regenerated deterministically at startup from
// fuzz/fuzz_model.h, byte-identical to the one the corpus seeds were
// journaled against) plus a fuzzed journal must produce either a resumed
// model or a clean error — never an abort or crash. A journal cut mid-
// record, lying about record sizes, or carrying unknown tags is the
// expected input here, not the exception.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz_model.h"
#include "stream/checkpoint.h"

namespace {

std::string g_base_path;

void EnsureBase() {
  if (!g_base_path.empty()) return;
  const char* tmp = std::getenv("TMPDIR");
  g_base_path = std::string(tmp != nullptr ? tmp : "/tmp") +
                "/gkm_fuzz_gkmd_base." + std::to_string(getpid()) + ".gkmc";
  gkm::SaveStreamCheckpoint(g_base_path, gkmfuzz::MakeFuzzBase(1));
}

}  // namespace

extern "C" int LLVMFuzzerInitialize(int*, char***) {
  EnsureBase();
  return 0;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;  // fmemopen rejects zero-length buffers
  EnsureBase();  // standalone builds never call LLVMFuzzerInitialize
  std::FILE* journal = fmemopen(const_cast<std::uint8_t*>(data), size, "rb");
  if (journal == nullptr) return 0;
  std::string error;
  (void)gkm::TryResumeStreamCheckpoint(g_base_path, journal, &error);
  std::fclose(journal);
  return 0;
}

#ifdef GKM_FUZZ_STANDALONE
#include <vector>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::vector<std::uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
#endif  // GKM_FUZZ_STANDALONE
