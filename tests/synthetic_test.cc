// Copyright 2026 The gkmeans Authors.
// Tests for the synthetic dataset generators: shapes, determinism, family
// post-transform contracts, and the presence of exploitable cluster
// structure (the property every experiment depends on).

#include "dataset/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "eval/metrics.h"

namespace gkm {
namespace {

TEST(SyntheticTest, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 32;
  spec.modes = 10;
  const SyntheticData data = MakeGaussianMixture(spec);
  EXPECT_EQ(data.vectors.rows(), 500u);
  EXPECT_EQ(data.vectors.cols(), 32u);
  EXPECT_EQ(data.mode_of.size(), 500u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 16;
  spec.seed = 99;
  const SyntheticData a = MakeGaussianMixture(spec);
  const SyntheticData b = MakeGaussianMixture(spec);
  EXPECT_TRUE(a.vectors == b.vectors);
  EXPECT_EQ(a.mode_of, b.mode_of);
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 16;
  spec.seed = 1;
  const SyntheticData a = MakeGaussianMixture(spec);
  spec.seed = 2;
  const SyntheticData b = MakeGaussianMixture(spec);
  EXPECT_FALSE(a.vectors == b.vectors);
}

TEST(SyntheticTest, ModeIdsWithinRangeOrNoise) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.modes = 7;
  spec.noise_fraction = 0.2;
  const SyntheticData data = MakeGaussianMixture(spec);
  std::size_t noise = 0;
  for (const auto m : data.mode_of) {
    EXPECT_LE(m, 7u);  // modes use [0,7), noise uses sentinel 7
    noise += m == 7u ? 1 : 0;
  }
  // ~20% noise expected; allow wide slack at n=300.
  EXPECT_GT(noise, 20u);
  EXPECT_LT(noise, 130u);
}

TEST(SyntheticTest, SiftLikeIsNonNegativeIntegerGrid) {
  const SyntheticData data = MakeSiftLike(200, 128, 5);
  EXPECT_EQ(data.family, "sift");
  EXPECT_EQ(data.vectors.cols(), 128u);
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    for (std::size_t j = 0; j < 128; ++j) {
      const float v = data.vectors.At(i, j);
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 255.0f);
      EXPECT_EQ(v, std::round(v));
    }
  }
}

TEST(SyntheticTest, GistLikeIsNonNegative) {
  const SyntheticData data = MakeGistLike(100, 960, 5);
  EXPECT_EQ(data.vectors.cols(), 960u);
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    for (std::size_t j = 0; j < 960; ++j) {
      EXPECT_GE(data.vectors.At(i, j), 0.0f);
    }
  }
}

TEST(SyntheticTest, GloveLikeIsUnitNorm) {
  const SyntheticData data = MakeGloveLike(150, 100, 5);
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    EXPECT_NEAR(NormSqr(data.vectors.Row(i), 100), 1.0f, 1e-3f);
  }
}

TEST(SyntheticTest, VladLikeIsUnitNormWithEnergyDecay) {
  const SyntheticData data = MakeVladLike(200, 512, 5);
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
    EXPECT_NEAR(NormSqr(data.vectors.Row(i), 512), 1.0f, 1e-3f);
    const float* row = data.vectors.Row(i);
    for (std::size_t j = 0; j < 256; ++j) head += row[j] * row[j];
    for (std::size_t j = 256; j < 512; ++j) tail += row[j] * row[j];
  }
  EXPECT_GT(head, tail);  // leading coordinates carry more energy
}

TEST(SyntheticTest, MakeByFamilyDispatch) {
  EXPECT_EQ(MakeByFamily("sift", 50).vectors.cols(), 128u);
  EXPECT_EQ(MakeByFamily("gist", 50).vectors.cols(), 960u);
  EXPECT_EQ(MakeByFamily("glove", 50).vectors.cols(), 100u);
  EXPECT_EQ(MakeByFamily("vlad", 50).vectors.cols(), 512u);
  EXPECT_EQ(MakeByFamily("gmm", 50).vectors.cols(), 128u);
}

// The property all experiments rest on: clustering by generating mode must
// beat a random partition by a wide margin — i.e. the data has structure.
TEST(SyntheticTest, ModesExplainVariance) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 32;
  spec.modes = 20;
  spec.noise_fraction = 0.0;
  const SyntheticData data = MakeGaussianMixture(spec);
  const double by_mode =
      AverageDistortion(data.vectors, data.mode_of, spec.modes + 1);
  std::vector<std::uint32_t> random_labels(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    random_labels[i] = static_cast<std::uint32_t>(i % (spec.modes + 1));
  }
  const double by_random =
      AverageDistortion(data.vectors, random_labels, spec.modes + 1);
  EXPECT_LT(by_mode, 0.5 * by_random);
}

}  // namespace
}  // namespace gkm
