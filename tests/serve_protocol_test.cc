// Copyright 2026 The gkmeans Authors.
// GKMP codec contract tests: every frame type round-trips through both
// decode paths (incremental FrameParser and io::Reader/fmemopen), and
// malformed input — truncated frames, size-lying headers, unknown
// opcodes, foreign versions, shape fields that disagree with the byte
// count — is rejected with a clean static error, never an abort, OOM or
// over-allocation (the PR-7 bounded-read rules applied to the wire).
// fuzz/fuzz_serve_frame.cc drives the same decoders with random bytes.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/matrix.h"
#include "gtest/gtest.h"
#include "serve/protocol.h"

namespace gkm::serve {
namespace {

Matrix MakeRows(std::size_t rows, std::size_t dim, float base) {
  Matrix m;
  m.Reset(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      m.Row(r)[c] = base + static_cast<float>(r * dim + c) * 0.25f;
    }
  }
  return m;
}

/// Encodes `f`, feeds the bytes to a FrameParser, returns the re-decoded
/// frame; fails the test unless exactly one clean frame comes out.
Frame RoundTrip(const Frame& f) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, f);
  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Status::kFrame);
  EXPECT_EQ(parser.error(), nullptr);
  Frame extra;
  EXPECT_EQ(parser.Next(&extra), FrameParser::Status::kNeedMore);
  EXPECT_EQ(out.version, f.version);
  EXPECT_EQ(out.opcode, f.opcode);
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.payload, f.payload);
  return out;
}

TEST(ServeProtocol, SearchRequestRoundTrip) {
  const Matrix q = MakeRows(1, 7, 1.0f);
  const Frame f = RoundTrip(MakeSearchRequest(42, 5, q.Row(0), 7));
  SearchRequest req;
  ASSERT_EQ(DecodeSearchRequest(f, &req), nullptr);
  EXPECT_EQ(req.topk, 5u);
  ASSERT_EQ(req.queries.rows(), 1u);
  ASSERT_EQ(req.queries.cols(), 7u);
  EXPECT_EQ(std::memcmp(req.queries.Row(0), q.Row(0), 7 * sizeof(float)), 0);
}

TEST(ServeProtocol, BatchSearchRequestRoundTrip) {
  const Matrix q = MakeRows(3, 4, -2.0f);
  const Frame f = RoundTrip(MakeBatchSearchRequest(7, 10, q));
  SearchRequest req;
  ASSERT_EQ(DecodeSearchRequest(f, &req), nullptr);
  EXPECT_EQ(req.topk, 10u);
  ASSERT_EQ(req.queries.rows(), 3u);
  ASSERT_EQ(req.queries.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(std::memcmp(req.queries.Row(r), q.Row(r), 4 * sizeof(float)), 0);
  }
}

TEST(ServeProtocol, InsertRequestRoundTrip) {
  const Matrix rows = MakeRows(5, 3, 0.5f);
  const Frame f = RoundTrip(MakeInsertRequest(9, rows));
  InsertRequest req;
  ASSERT_EQ(DecodeInsertRequest(f, &req), nullptr);
  ASSERT_EQ(req.rows.rows(), 5u);
  ASSERT_EQ(req.rows.cols(), 3u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(std::memcmp(req.rows.Row(r), rows.Row(r), 3 * sizeof(float)), 0);
  }
}

TEST(ServeProtocol, RemoveRequestRoundTrip) {
  const std::vector<std::uint32_t> ids = {3, 1, 4, 1, 5};
  const Frame f = RoundTrip(MakeRemoveRequest(11, ids));
  RemoveRequest req;
  ASSERT_EQ(DecodeRemoveRequest(f, &req), nullptr);
  EXPECT_EQ(req.ids, ids);
}

TEST(ServeProtocol, EmptyPayloadFramesRoundTrip) {
  EXPECT_EQ(DecodeEmptyPayload(RoundTrip(MakeStatsRequest(1))), nullptr);
  EXPECT_EQ(DecodeEmptyPayload(RoundTrip(MakeShutdownRequest(2))), nullptr);
  EXPECT_EQ(DecodeEmptyPayload(RoundTrip(MakeShutdownAck(3))), nullptr);
}

TEST(ServeProtocol, SearchResponseRoundTrip) {
  SearchResponse resp;
  resp.results = {{{7, 0.5f}, {2, 1.5f}}, {}, {{0, 0.0f}}};
  for (const bool batch : {false, true}) {
    const Frame f = RoundTrip(MakeSearchResponse(21, batch, resp));
    EXPECT_EQ(f.opcode,
              batch ? Opcode::kBatchSearchResult : Opcode::kSearchResult);
    SearchResponse out;
    ASSERT_EQ(DecodeSearchResponse(f, &out), nullptr);
    EXPECT_EQ(out.results, resp.results);
  }
}

TEST(ServeProtocol, InsertResponseRoundTrip) {
  InsertResponse resp;
  resp.assigned = {10, 11, 12};
  InsertResponse out;
  ASSERT_EQ(DecodeInsertResponse(RoundTrip(MakeInsertResponse(5, resp)), &out),
            nullptr);
  EXPECT_EQ(out.assigned, resp.assigned);
}

TEST(ServeProtocol, RemoveResponseRoundTrip) {
  RemoveResponse resp;
  resp.removed = {1, 0, 1};
  RemoveResponse out;
  ASSERT_EQ(DecodeRemoveResponse(RoundTrip(MakeRemoveResponse(6, resp)), &out),
            nullptr);
  EXPECT_EQ(out.removed, resp.removed);
}

TEST(ServeProtocol, StatsResponseRoundTrip) {
  StatsResponse resp;
  resp.points_seen = 1000;
  resp.points_alive = 900;
  resp.windows = 10;
  resp.searches = 12345;
  resp.inserts = 11;
  resp.removes = 100;
  resp.overloaded = 3;
  resp.dim = 32;
  resp.shards = 4;
  resp.search_queue_depth = 7;
  resp.ingest_queue_depth = 2;
  resp.bootstrapped = 1;
  StatsResponse out;
  ASSERT_EQ(DecodeStatsResponse(RoundTrip(MakeStatsResponse(8, resp)), &out),
            nullptr);
  EXPECT_EQ(out.points_seen, resp.points_seen);
  EXPECT_EQ(out.points_alive, resp.points_alive);
  EXPECT_EQ(out.windows, resp.windows);
  EXPECT_EQ(out.searches, resp.searches);
  EXPECT_EQ(out.inserts, resp.inserts);
  EXPECT_EQ(out.removes, resp.removes);
  EXPECT_EQ(out.overloaded, resp.overloaded);
  EXPECT_EQ(out.dim, resp.dim);
  EXPECT_EQ(out.shards, resp.shards);
  EXPECT_EQ(out.search_queue_depth, resp.search_queue_depth);
  EXPECT_EQ(out.ingest_queue_depth, resp.ingest_queue_depth);
  EXPECT_EQ(out.bootstrapped, resp.bootstrapped);
}

TEST(ServeProtocol, ErrorResponseRoundTrip) {
  const Frame f =
      RoundTrip(MakeErrorResponse(13, ErrorCode::kOverloaded, "queue full"));
  ErrorResponse out;
  ASSERT_EQ(DecodeErrorResponse(f, &out), nullptr);
  EXPECT_EQ(out.code, ErrorCode::kOverloaded);
  EXPECT_EQ(out.message, "queue full");
}

TEST(ServeProtocol, ErrorMessageTruncatedToU16) {
  const std::string huge(100000, 'x');
  const Frame f = RoundTrip(MakeErrorResponse(1, ErrorCode::kInternal, huge));
  ErrorResponse out;
  ASSERT_EQ(DecodeErrorResponse(f, &out), nullptr);
  EXPECT_EQ(out.message.size(), 0xffffu);
}

// --- incremental parsing ---------------------------------------------------

TEST(ServeProtocol, ByteAtATimeFeedingYieldsSameFrames) {
  std::vector<std::uint8_t> wire;
  const Matrix q = MakeRows(2, 3, 4.0f);
  AppendFrame(wire, MakeBatchSearchRequest(1, 4, q));
  AppendFrame(wire, MakeStatsRequest(2));
  AppendFrame(wire, MakeRemoveRequest(3, {9}));

  FrameParser parser;
  std::vector<Frame> frames;
  for (const std::uint8_t b : wire) {
    parser.Feed(&b, 1);
    Frame f;
    while (parser.Next(&f) == FrameParser::Status::kFrame) {
      frames.push_back(f);
    }
    ASSERT_EQ(parser.error(), nullptr);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].opcode, Opcode::kBatchSearch);
  EXPECT_EQ(frames[1].opcode, Opcode::kStats);
  EXPECT_EQ(frames[2].opcode, Opcode::kRemove);
  EXPECT_EQ(frames[2].request_id, 3u);
  // Everything consumed: buffer holds no leftover bytes.
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ServeProtocol, MultipleFramesInOneFeed) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  AppendFrame(wire, MakeShutdownRequest(2));
  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame a, b, c;
  EXPECT_EQ(parser.Next(&a), FrameParser::Status::kFrame);
  EXPECT_EQ(parser.Next(&b), FrameParser::Status::kFrame);
  EXPECT_EQ(parser.Next(&c), FrameParser::Status::kNeedMore);
  EXPECT_EQ(a.request_id, 1u);
  EXPECT_EQ(b.request_id, 2u);
}

TEST(ServeProtocol, TruncationIsNeedMoreNotError) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeRemoveRequest(4, {1, 2, 3}));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameParser parser;
    parser.Feed(wire.data(), cut);
    Frame f;
    EXPECT_EQ(parser.Next(&f), FrameParser::Status::kNeedMore) << cut;
    EXPECT_EQ(parser.error(), nullptr) << cut;
    // Delivering the rest completes the frame.
    parser.Feed(wire.data() + cut, wire.size() - cut);
    EXPECT_EQ(parser.Next(&f), FrameParser::Status::kFrame) << cut;
  }
}

TEST(ServeProtocol, BadMagicLatchesError) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  wire[0] ^= 0xff;
  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Status::kError);
  EXPECT_STREQ(parser.error(), "bad frame magic");
  // Latched: feeding a valid frame afterwards cannot resurrect framing.
  std::vector<std::uint8_t> good;
  AppendFrame(good, MakeStatsRequest(2));
  parser.Feed(good.data(), good.size());
  EXPECT_EQ(parser.Next(&f), FrameParser::Status::kError);
}

TEST(ServeProtocol, ForeignVersionRejected) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  wire[4] = kProtocolVersion + 1;
  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Status::kError);
  EXPECT_STREQ(parser.error(), "unsupported protocol version");
}

TEST(ServeProtocol, UnknownOpcodeRejected) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  wire[5] = 0x7e;  // no such request opcode
  FrameParser parser;
  parser.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Status::kError);
  EXPECT_STREQ(parser.error(), "unknown opcode");
}

TEST(ServeProtocol, SizeLyingHeaderRejectedBeforePayloadArrives) {
  // A header claiming a 4 GiB-ish payload must fail from the header
  // alone — the parser never waits for (or allocates) the claimed bytes.
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  const std::uint32_t lie = kMaxPayloadBytes + 1;
  std::memcpy(wire.data() + 14, &lie, 4);
  FrameParser parser;
  parser.Feed(wire.data(), kFrameHeaderBytes);  // header only
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Status::kError);
  EXPECT_STREQ(parser.error(), "payload length exceeds limit");
}

// --- io::Reader path -------------------------------------------------------

/// Round-trips `wire` through fmemopen + TryReadFrame.
std::vector<Frame> ReadAll(const std::vector<std::uint8_t>& wire,
                           const char** final_error) {
  io::File f(fmemopen(const_cast<std::uint8_t*>(wire.data()), wire.size(),
                      "rb"));
  EXPECT_NE(f, nullptr);
  io::Reader reader(f.get());
  std::vector<Frame> frames;
  Frame frame;
  while (TryReadFrame(reader, &frame, final_error)) {
    frames.push_back(frame);
  }
  return frames;
}

TEST(ServeProtocol, TryReadFrameStreamRoundTrip) {
  std::vector<std::uint8_t> wire;
  const Matrix q = MakeRows(1, 2, 0.0f);
  AppendFrame(wire, MakeSearchRequest(1, 3, q.Row(0), 2));
  AppendFrame(wire, MakeShutdownRequest(2));
  const char* error = nullptr;
  const std::vector<Frame> frames = ReadAll(wire, &error);
  EXPECT_EQ(error, nullptr) << error;  // clean EOF
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].opcode, Opcode::kSearch);
  EXPECT_EQ(frames[1].opcode, Opcode::kShutdown);
}

TEST(ServeProtocol, TryReadFrameTruncatedHeader) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  wire.resize(kFrameHeaderBytes - 3);
  const char* error = nullptr;
  EXPECT_TRUE(ReadAll(wire, &error).empty());
  ASSERT_NE(error, nullptr);
  EXPECT_STREQ(error, "truncated frame header");
}

TEST(ServeProtocol, TryReadFrameTruncatedPayload) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeRemoveRequest(1, {1, 2, 3, 4}));
  wire.resize(wire.size() - 5);
  const char* error = nullptr;
  EXPECT_TRUE(ReadAll(wire, &error).empty());
  ASSERT_NE(error, nullptr);
  EXPECT_STREQ(error, "frame payload shorter than its header's length");
}

TEST(ServeProtocol, TryReadFrameSizeLyingHeader) {
  std::vector<std::uint8_t> wire;
  AppendFrame(wire, MakeStatsRequest(1));
  const std::uint32_t lie = kMaxPayloadBytes + 7;
  std::memcpy(wire.data() + 14, &lie, 4);
  const char* error = nullptr;
  EXPECT_TRUE(ReadAll(wire, &error).empty());
  ASSERT_NE(error, nullptr);
  EXPECT_STREQ(error, "payload length exceeds limit");
}

// --- payload validators ----------------------------------------------------

TEST(ServeProtocol, DecodeRejectsWrongOpcode) {
  const Frame stats = MakeStatsRequest(1);
  SearchRequest sreq;
  InsertRequest ireq;
  RemoveRequest rreq;
  EXPECT_NE(DecodeSearchRequest(stats, &sreq), nullptr);
  EXPECT_NE(DecodeInsertRequest(stats, &ireq), nullptr);
  EXPECT_NE(DecodeRemoveRequest(stats, &rreq), nullptr);
  const Matrix q = MakeRows(1, 2, 0.0f);
  EXPECT_NE(DecodeEmptyPayload(MakeSearchRequest(1, 3, q.Row(0), 2)), nullptr);
}

TEST(ServeProtocol, DecodeSearchRejectsBadShapes) {
  const Matrix q = MakeRows(1, 4, 0.0f);
  SearchRequest req;
  {  // topk == 0
    Frame f = MakeSearchRequest(1, 0, q.Row(0), 4);
    EXPECT_STREQ(DecodeSearchRequest(f, &req), "topk out of range");
  }
  {  // absurd topk
    Frame f = MakeSearchRequest(1, 1u << 30, q.Row(0), 4);
    EXPECT_STREQ(DecodeSearchRequest(f, &req), "topk out of range");
  }
  {  // zero dim
    Frame f = MakeSearchRequest(1, 3, q.Row(0), 0);
    EXPECT_STREQ(DecodeSearchRequest(f, &req), "zero query dimension");
  }
  {  // empty batch
    Matrix empty;
    empty.Reset(0, 4);
    Frame f = MakeBatchSearchRequest(1, 3, empty);
    EXPECT_STREQ(DecodeSearchRequest(f, &req), "empty query batch");
  }
  {  // dim field lies relative to the byte count (shape x bytes cross-check)
    Frame f = MakeSearchRequest(1, 3, q.Row(0), 4);
    const std::uint32_t lie = 400;
    std::memcpy(f.payload.data() + 4, &lie, 4);
    EXPECT_STREQ(DecodeSearchRequest(f, &req),
                 "search payload shorter than its query shape");
  }
  {  // trailing bytes after a well-formed body
    Frame f = MakeSearchRequest(1, 3, q.Row(0), 4);
    f.payload.push_back(0);
    EXPECT_STREQ(DecodeSearchRequest(f, &req),
                 "trailing bytes after search payload");
  }
  {  // truncated: payload ends inside the query vector
    Frame f = MakeSearchRequest(1, 3, q.Row(0), 4);
    f.payload.resize(f.payload.size() - 1);
    EXPECT_STREQ(DecodeSearchRequest(f, &req),
                 "search payload shorter than its query shape");
  }
}

TEST(ServeProtocol, DecodeBatchSearchCountOverflowRejected) {
  // count * dim overflowing 32 bits must not wrap into a small
  // allocation: the cross-check runs in 64-bit against the byte count.
  Frame f;
  f.opcode = Opcode::kBatchSearch;
  const std::uint32_t topk = 1, count = 1u << 31, dim = 1u << 31;
  f.payload.resize(12);
  std::memcpy(f.payload.data(), &topk, 4);
  std::memcpy(f.payload.data() + 4, &count, 4);
  std::memcpy(f.payload.data() + 8, &dim, 4);
  SearchRequest req;
  EXPECT_STREQ(DecodeSearchRequest(f, &req),
               "search payload shorter than its query shape");
}

TEST(ServeProtocol, DecodeInsertRejectsBadShapes) {
  InsertRequest req;
  {  // count lies
    Frame f = MakeInsertRequest(1, MakeRows(2, 3, 0.0f));
    const std::uint32_t lie = 1000;
    std::memcpy(f.payload.data(), &lie, 4);
    EXPECT_STREQ(DecodeInsertRequest(f, &req),
                 "insert payload shorter than its row shape");
  }
  {  // empty window
    Matrix empty;
    empty.Reset(0, 3);
    Frame f = MakeInsertRequest(1, empty);
    EXPECT_STREQ(DecodeInsertRequest(f, &req), "empty insert window");
  }
  {  // truncated header
    Frame f = MakeInsertRequest(1, MakeRows(2, 3, 0.0f));
    f.payload.resize(6);
    EXPECT_STREQ(DecodeInsertRequest(f, &req), "truncated insert payload");
  }
}

TEST(ServeProtocol, DecodeRemoveRejectsBadShapes) {
  RemoveRequest req;
  {  // count lies high
    Frame f = MakeRemoveRequest(1, {1, 2});
    const std::uint32_t lie = 0xffffffffu;
    std::memcpy(f.payload.data(), &lie, 4);
    EXPECT_STREQ(DecodeRemoveRequest(f, &req),
                 "remove payload does not match its id count");
  }
  {  // count lies low (trailing bytes)
    Frame f = MakeRemoveRequest(1, {1, 2});
    const std::uint32_t lie = 1;
    std::memcpy(f.payload.data(), &lie, 4);
    EXPECT_STREQ(DecodeRemoveRequest(f, &req),
                 "remove payload does not match its id count");
  }
  {  // empty removal list
    Frame f = MakeRemoveRequest(1, {1});
    const std::uint32_t zero = 0;
    std::memcpy(f.payload.data(), &zero, 4);
    f.payload.resize(4);
    EXPECT_STREQ(DecodeRemoveRequest(f, &req), "empty remove request");
  }
}

TEST(ServeProtocol, DecodeSearchResponseRejectsCountLies) {
  SearchResponse resp;
  resp.results = {{{1, 0.5f}}};
  SearchResponse out;
  {  // outer count lies high — caught before the outer vector allocates
    Frame f = MakeSearchResponse(1, false, resp);
    const std::uint32_t lie = 0xffffffffu;
    std::memcpy(f.payload.data(), &lie, 4);
    EXPECT_STREQ(DecodeSearchResponse(f, &out),
                 "search response count exceeds payload");
  }
  {  // inner k lies high — caught before the neighbor list allocates
    Frame f = MakeSearchResponse(1, false, resp);
    const std::uint32_t lie = 0x10000000u;
    std::memcpy(f.payload.data() + 4, &lie, 4);
    EXPECT_STREQ(DecodeSearchResponse(f, &out),
                 "neighbor count exceeds payload");
  }
  {  // trailing garbage
    Frame f = MakeSearchResponse(1, false, resp);
    f.payload.push_back(0xab);
    EXPECT_STREQ(DecodeSearchResponse(f, &out),
                 "trailing bytes after search response");
  }
}

TEST(ServeProtocol, DecodeStatsResponseRejectsWrongSize) {
  StatsResponse resp;
  StatsResponse out;
  Frame f = MakeStatsResponse(1, resp);
  f.payload.resize(f.payload.size() - 1);
  EXPECT_STREQ(DecodeStatsResponse(f, &out), "truncated stats response");
  Frame g = MakeStatsResponse(1, resp);
  g.payload.push_back(0);
  EXPECT_STREQ(DecodeStatsResponse(g, &out),
               "trailing bytes after stats response");
}

TEST(ServeProtocol, DecodeErrorResponseRejectsLengthLies) {
  ErrorResponse out;
  Frame f = MakeErrorResponse(1, ErrorCode::kBadRequest, "abc");
  const std::uint16_t lie = 0xffff;
  std::memcpy(f.payload.data() + 2, &lie, 2);
  EXPECT_STREQ(DecodeErrorResponse(f, &out),
               "error response does not match its message length");
}

}  // namespace
}  // namespace gkm::serve
