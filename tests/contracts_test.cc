// Copyright 2026 The gkmeans Authors.
// Cross-cutting contract tests: (1) every clustering method reports a
// distortion that matches independent recomputation from its assignments
// (method-parameterized), (2) GKM_CHECK aborts on contract violations
// (death tests), (3) the graph builder's early-stop extension.

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "core/pipeline.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/lloyd.h"
#include "kmeans/mini_batch.h"
#include "kmeans/two_means_tree.h"

namespace gkm {
namespace {

constexpr std::size_t kN = 300;
constexpr std::size_t kK = 12;

SyntheticData TestData() {
  SyntheticSpec spec;
  spec.n = kN;
  spec.dim = 10;
  spec.modes = 12;
  spec.seed = 777;
  return MakeGaussianMixture(spec);
}

using MethodFn = std::function<ClusteringResult(const Matrix&)>;

struct MethodCase {
  const char* name;
  MethodFn run;
};

// Every method must satisfy the same postconditions; parameterize over the
// whole family.
class MethodContractTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(MethodContractTest, ReportedDistortionMatchesRecomputation) {
  const SyntheticData data = TestData();
  const ClusteringResult res = GetParam().run(data.vectors);
  const double recomputed =
      AverageDistortion(data.vectors, res.assignments, kK);
  EXPECT_NEAR(res.distortion, recomputed,
              1e-3 * std::max(1.0, recomputed));
}

TEST_P(MethodContractTest, AssignmentsInRangeAndComplete) {
  const SyntheticData data = TestData();
  const ClusteringResult res = GetParam().run(data.vectors);
  ASSERT_EQ(res.assignments.size(), kN);
  for (const auto a : res.assignments) EXPECT_LT(a, kK);
  EXPECT_EQ(res.centroids.rows(), kK);
  EXPECT_EQ(res.centroids.cols(), data.vectors.cols());
}

TEST_P(MethodContractTest, TimingFieldsConsistent) {
  const SyntheticData data = TestData();
  const ClusteringResult res = GetParam().run(data.vectors);
  EXPECT_GE(res.total_seconds, 0.0);
  EXPECT_NEAR(res.total_seconds, res.init_seconds + res.iter_seconds,
              0.05 + 0.2 * res.total_seconds);
  EXPECT_GE(res.iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodContractTest,
    ::testing::Values(
        MethodCase{"lloyd",
                   [](const Matrix& x) {
                     LloydParams p;
                     p.k = kK;
                     p.max_iters = 15;
                     return LloydKMeans(x, p);
                   }},
        MethodCase{"bkm",
                   [](const Matrix& x) {
                     BkmParams p;
                     p.k = kK;
                     p.max_iters = 15;
                     return BoostKMeans(x, p);
                   }},
        MethodCase{"minibatch",
                   [](const Matrix& x) {
                     MiniBatchParams p;
                     p.k = kK;
                     p.batch_size = 50;
                     p.max_iters = 40;
                     return MiniBatchKMeans(x, p);
                   }},
        MethodCase{"closure",
                   [](const Matrix& x) {
                     ClosureParams p;
                     p.k = kK;
                     p.leaf_size = 20;
                     p.max_iters = 15;
                     return ClosureKMeans(x, p);
                   }},
        MethodCase{"elkan",
                   [](const Matrix& x) {
                     ElkanParams p;
                     p.k = kK;
                     p.max_iters = 15;
                     return ElkanKMeans(x, p);
                   }},
        MethodCase{"hamerly",
                   [](const Matrix& x) {
                     HamerlyParams p;
                     p.k = kK;
                     p.max_iters = 15;
                     return HamerlyKMeans(x, p);
                   }},
        MethodCase{"two_means",
                   [](const Matrix& x) {
                     TwoMeansParams p;
                     p.k = kK;
                     return TwoMeansTreeClustering(x, p);
                   }},
        MethodCase{"gk_means",
                   [](const Matrix& x) {
                     PipelineParams p;
                     p.k = kK;
                     p.graph.kappa = 8;
                     p.graph.xi = 20;
                     p.graph.tau = 3;
                     p.clustering.kappa = 8;
                     p.clustering.max_iters = 15;
                     return GkMeansCluster(x, p).clustering;
                   }}),
    [](const ::testing::TestParamInfo<MethodCase>& info) {
      return std::string(info.param.name);
    });

// --- Contract-violation death tests. ---

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, LloydRejectsKGreaterThanN) {
  const SyntheticData data = TestData();
  LloydParams p;
  p.k = kN + 1;
  EXPECT_DEATH(LloydKMeans(data.vectors, p), "GKM_CHECK");
}

TEST(ContractDeathTest, GkMeansRejectsGraphSizeMismatch) {
  const SyntheticData data = TestData();
  const KnnGraph wrong(kN / 2, 4);
  GkMeansParams p;
  p.k = 4;
  EXPECT_DEATH(GkMeansWithGraph(data.vectors, wrong, p), "mismatch");
}

TEST(ContractDeathTest, GraphBuilderRejectsDegenerateXi) {
  const SyntheticData data = TestData();
  GraphBuildParams p;
  p.xi = 1;
  EXPECT_DEATH(BuildKnnGraph(data.vectors, p), "GKM_CHECK");
}

TEST(ContractDeathTest, MetricsRejectLabelOutOfRange) {
  Matrix m(3, 2);
  const std::vector<std::uint32_t> labels = {0, 1, 7};
  EXPECT_DEATH(AverageDistortion(m, labels, 2), "GKM_CHECK");
}

TEST(ContractDeathTest, ReadFvecsRejectsMissingFile) {
  EXPECT_DEATH(
      { auto m = ReadFvecs("/nonexistent/definitely/missing.fvecs"); },
      "missing.fvecs");
}

// --- Graph-builder early-stop extension. ---

TEST(GraphBuilderEarlyStopTest, StopsBeforeTauWhenConverged) {
  const SyntheticData data = TestData();
  GraphBuildParams p;
  p.kappa = 6;
  p.xi = 15;
  p.tau = 40;               // far beyond convergence
  p.early_stop_delta = 0.01;
  GraphBuildStats stats;
  BuildKnnGraph(data.vectors, p, &stats);
  EXPECT_LT(stats.round_updates.size(), 40u);
  // Update counts decay to below the threshold.
  EXPECT_LT(stats.round_updates.back(),
            static_cast<std::size_t>(0.01 * kN * 6) + 1);
  EXPECT_GT(stats.round_updates.front(), stats.round_updates.back());
}

TEST(GraphBuilderEarlyStopTest, QualityComparableToFullTau) {
  const SyntheticData data = TestData();
  const KnnGraph truth = BruteForceGraph(data.vectors, 1);
  GraphBuildParams p;
  p.kappa = 6;
  p.xi = 15;
  p.tau = 20;
  const double full = GraphRecallAt1(BuildKnnGraph(data.vectors, p), truth);
  p.early_stop_delta = 0.005;
  const double early = GraphRecallAt1(BuildKnnGraph(data.vectors, p), truth);
  EXPECT_GT(early, full - 0.08);
}

}  // namespace
}  // namespace gkm
