// Copyright 2026 The gkmeans Authors.
// Tests for the 2M tree: exact-k output, near-equal sizes after every
// bisection, determinism, and quality sanity versus a random partition.

#include "kmeans/two_means_tree.h"

#include <set>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 500, std::uint64_t seed = 50) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 8;
  spec.modes = 10;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

TEST(TwoMeansTreeTest, ProducesExactlyKClusters) {
  const SyntheticData data = SmallData();
  for (const std::size_t k : {2u, 3u, 7u, 16u, 33u}) {
    TwoMeansParams p;
    p.k = k;
    const auto labels = TwoMeansTree(data.vectors, p);
    std::set<std::uint32_t> unique(labels.begin(), labels.end());
    EXPECT_EQ(unique.size(), k) << "k=" << k;
  }
}

// Always splitting the largest cluster at the median keeps all sizes within
// a factor-2 band: max <= 2 * min + O(1).
TEST(TwoMeansTreeTest, SizesNearEqual) {
  const SyntheticData data = SmallData(1000, 51);
  TwoMeansParams p;
  p.k = 20;  // 1000/20 = 50 per cluster
  const auto labels = TwoMeansTree(data.vectors, p);
  const ClusterSizeStats sizes = SummarizeClusterSizes(labels, 20);
  EXPECT_EQ(sizes.empty, 0u);
  EXPECT_GE(sizes.min, 25u);
  EXPECT_LE(sizes.max, 100u);
}

TEST(TwoMeansTreeTest, PowerOfTwoKGivesPerfectBalance) {
  const SyntheticData data = SmallData(512, 52);
  TwoMeansParams p;
  p.k = 16;
  const auto labels = TwoMeansTree(data.vectors, p);
  const ClusterSizeStats sizes = SummarizeClusterSizes(labels, 16);
  EXPECT_EQ(sizes.min, 32u);
  EXPECT_EQ(sizes.max, 32u);
}

TEST(TwoMeansTreeTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(200, 53);
  TwoMeansParams p;
  p.k = 8;
  p.seed = 5;
  EXPECT_EQ(TwoMeansTree(data.vectors, p), TwoMeansTree(data.vectors, p));
}

TEST(TwoMeansTreeTest, BetterThanRandomPartition) {
  const SyntheticData data = SmallData(800, 54);
  TwoMeansParams p;
  p.k = 16;
  const auto labels = TwoMeansTree(data.vectors, p);
  Rng rng(1);
  const auto random_labels = BalancedRandomLabels(800, 16, rng);
  EXPECT_LT(AverageDistortion(data.vectors, labels, 16),
            0.9 * AverageDistortion(data.vectors, random_labels, 16));
}

TEST(TwoMeansTreeTest, KEqualsOneAndN) {
  const SyntheticData data = SmallData(20, 55);
  TwoMeansParams p;
  p.k = 1;
  auto labels = TwoMeansTree(data.vectors, p);
  for (const auto l : labels) EXPECT_EQ(l, 0u);
  p.k = 20;
  labels = TwoMeansTree(data.vectors, p);
  std::set<std::uint32_t> unique(labels.begin(), labels.end());
  EXPECT_EQ(unique.size(), 20u);  // all singletons
}

TEST(TwoMeansTreeTest, ClusteringWrapperFillsResult) {
  const SyntheticData data = SmallData(150, 56);
  TwoMeansParams p;
  p.k = 5;
  const ClusteringResult res = TwoMeansTreeClustering(data.vectors, p);
  EXPECT_EQ(res.method, "2m-tree");
  EXPECT_EQ(res.centroids.rows(), 5u);
  EXPECT_NEAR(res.distortion,
              AverageDistortion(data.vectors, res.assignments, 5), 1e-5);
}

TEST(TwoMeansTreeTest, ExternalRngAdvances) {
  // Two consecutive calls sharing one Rng must produce different trees
  // (this is what drives Alg. 3's partition diversity across rounds).
  const SyntheticData data = SmallData(300, 57);
  TwoMeansParams p;
  p.k = 10;
  Rng rng(1);
  const auto a = TwoMeansTree(data.vectors, p, rng);
  const auto b = TwoMeansTree(data.vectors, p, rng);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gkm
