// Copyright 2026 The gkmeans Authors.
// Cross-module integration tests: the full method comparison the paper's
// evaluation rests on, run end-to-end on one dataset at test scale, plus
// family sweeps as parameterized properties.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"
#include "graph/nn_descent.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/closure_kmeans.h"
#include "kmeans/lloyd.h"
#include "kmeans/mini_batch.h"

namespace gkm {
namespace {

// One shared mid-size dataset (built once: brute-force GT is the pricey
// part).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Overlap ratio (center vs cluster spread) ~3, matching real
    // descriptor statistics: the KNN graph stays connected, which is the
    // regime the paper's pruning arguments assume.
    SyntheticSpec spec;
    spec.n = 1200;
    spec.dim = 16;
    spec.modes = 40;
    spec.center_spread = 3.0;
    spec.cluster_spread = 1.0;
    spec.seed = 140;
    data_ = new SyntheticData(MakeGaussianMixture(spec));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SyntheticData* data_;
  static constexpr std::size_t kK = 24;
};

const SyntheticData* IntegrationTest::data_ = nullptr;

// The ordering the whole paper hinges on: BKM <= GK-means << Mini-Batch,
// with GK-means close to BKM (Fig. 5 shape).
TEST_F(IntegrationTest, QualityOrderingAcrossMethods) {
  const Matrix& x = data_->vectors;

  BkmParams bp;
  bp.k = kK;
  bp.max_iters = 30;
  const double bkm = BoostKMeans(x, bp).distortion;

  // kappa must exceed the expected cluster size (n/k = 50) by enough for
  // neighbor lists to spill into adjacent clusters — that spill is what
  // generates move candidates (§4.4 recommends kappa ~= xi = 50).
  PipelineParams pp;
  pp.k = kK;
  pp.graph.kappa = 30;
  pp.graph.xi = 50;
  pp.graph.tau = 8;
  pp.clustering.kappa = 30;
  pp.clustering.max_iters = 30;
  const double gk = GkMeansCluster(x, pp).clustering.distortion;

  MiniBatchParams mp;
  mp.k = kK;
  mp.batch_size = 100;
  mp.max_iters = 30;
  const double mb = MiniBatchKMeans(x, mp).distortion;

  EXPECT_LE(bkm, gk * 1.02);   // BKM is the quality reference
  EXPECT_LT(gk, 1.12 * bkm);   // GK-means trails it only slightly
  EXPECT_LT(gk, mb);           // and clearly beats Mini-Batch
}

// "KGraph+GK-means" (NN-Descent supplied graph) achieves similar quality
// to the standard configuration (Fig. 4/5 finding).
TEST_F(IntegrationTest, KGraphConfigurationComparable) {
  const Matrix& x = data_->vectors;

  NnDescentParams np;
  np.k = 12;
  const KnnGraph kgraph = NnDescent(x, np);
  GkMeansParams gp;
  gp.k = kK;
  gp.kappa = 12;
  gp.max_iters = 30;
  const double with_kgraph = GkMeansWithGraph(x, kgraph, gp).distortion;

  PipelineParams pp;
  pp.k = kK;
  pp.graph.kappa = 12;
  pp.graph.xi = 25;
  pp.graph.tau = 6;
  pp.clustering.kappa = 12;
  pp.clustering.max_iters = 30;
  const double standard = GkMeansCluster(x, pp).clustering.distortion;

  EXPECT_LT(std::abs(with_kgraph - standard) / standard, 0.10);
}

// Co-occurrence observation (Fig. 1): under a k-means partition with
// ~50-point clusters, a point's top-ranked neighbors co-occur far more
// often than random collision rate.
TEST_F(IntegrationTest, CoOccurrenceObservationHolds) {
  const Matrix& x = data_->vectors;
  const std::size_t k = x.rows() / 50;
  LloydParams lp;
  lp.k = k;
  lp.max_iters = 15;
  const ClusteringResult km = LloydKMeans(x, lp);
  const KnnGraph truth = BruteForceGraph(x, 20);
  const auto prob = CoOccurrenceByRank(truth, km.assignments, 20);
  const double random_rate = 50.0 / static_cast<double>(x.rows());
  EXPECT_GT(prob[0], 20 * random_rate);
  EXPECT_GE(prob[0], prob[19] - 1e-12);
}

// Family sweep: the pipeline must work across all four corpus families
// (different dims, signs, normalization).
class FamilyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyTest, PipelineRunsAndBeatsRandomPartition) {
  const SyntheticData data = MakeByFamily(GetParam(), 400, 150);
  PipelineParams p;
  p.k = 10;
  p.graph.kappa = 8;
  p.graph.xi = 20;
  p.graph.tau = 3;
  p.clustering.kappa = 8;
  p.clustering.max_iters = 15;
  const PipelineResult res = GkMeansCluster(data.vectors, p);

  std::vector<std::uint32_t> random_labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    random_labels[i] = static_cast<std::uint32_t>(i % 10);
  }
  EXPECT_LT(res.clustering.distortion,
            AverageDistortion(data.vectors, random_labels, 10));
  EXPECT_EQ(SummarizeClusterSizes(res.clustering.assignments, 10).empty, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyTest,
                         ::testing::Values("sift", "gist", "glove", "vlad"));

// Closure k-means sits between GK-means and Mini-Batch in quality on
// clusterable data (Fig. 7 ordering), at small scale with slack.
TEST_F(IntegrationTest, ClosureBetweenGkAndMiniBatch) {
  const Matrix& x = data_->vectors;
  ClosureParams cp;
  cp.k = kK;
  cp.leaf_size = 30;
  cp.max_iters = 30;
  const double closure = ClosureKMeans(x, cp).distortion;

  MiniBatchParams mp;
  mp.k = kK;
  mp.batch_size = 100;
  mp.max_iters = 30;
  const double mb = MiniBatchKMeans(x, mp).distortion;
  EXPECT_LT(closure, mb);
}

}  // namespace
}  // namespace gkm
