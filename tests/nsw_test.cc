// Copyright 2026 The gkmeans Authors.
// Tests for the flat navigable-small-world graph builder ([34]).

#include "graph/nsw.h"

#include <gtest/gtest.h>

#include "anns/graph_search.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 800, std::uint64_t seed = 500) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 12;
  spec.modes = 10;
  spec.center_spread = 2.5;
  spec.cluster_spread = 1.0;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

TEST(NswTest, StructuralInvariants) {
  const SyntheticData data = SmallData(400, 501);
  NswParams p;
  p.degree = 8;
  const KnnGraph g = NswBuild(data.vectors, p);
  EXPECT_EQ(g.num_nodes(), 400u);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto nbs = g.SortedNeighbors(i);
    EXPECT_LE(nbs.size(), 8u);
    EXPECT_GE(nbs.size(), 1u);  // every inserted node is connected
    for (const Neighbor& nb : nbs) EXPECT_NE(nb.id, i);
  }
}

TEST(NswTest, GoodGraphRecall) {
  const SyntheticData data = SmallData();
  const KnnGraph truth = BruteForceGraph(data.vectors, 1);
  NswParams p;
  p.degree = 12;
  p.ef_construction = 48;
  const KnnGraph g = NswBuild(data.vectors, p);
  // NSW optimizes *navigability*, not adjacency exactness: its links are
  // the best candidates seen at insertion time, so list recall trails a
  // KNN graph (search recall is what NSW is good at — tested below). It
  // must still dwarf a random graph.
  KnnGraph random(data.vectors.rows(), 12);
  Rng rng(1);
  random.InitRandom(data.vectors, rng);
  const double nsw_recall = GraphRecallAt1(g, truth);
  EXPECT_GT(nsw_recall, 0.35);
  EXPECT_GT(nsw_recall, GraphRecallAt1(random, truth) + 0.2);
}

TEST(NswTest, ServesAnnSearchWell) {
  const SyntheticData all = SmallData(850, 502);
  Matrix base = SliceRows(all.vectors, 0, 800);
  Matrix queries = SliceRows(all.vectors, 800, 850);
  NswParams p;
  p.degree = 12;
  p.ef_construction = 48;
  const KnnGraph g = NswBuild(base, p);
  const GraphSearcher searcher(base, g);
  const auto truth = BruteForceSearch(base, queries, 1);
  SearchParams sp;
  sp.topk = 1;
  sp.beam_width = 48;
  std::size_t hits = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    hits += searcher.Search(queries.Row(q), sp)[0].id == truth[q][0].id;
  }
  EXPECT_GE(hits, 42u);  // >= 0.84 recall
}

TEST(NswTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(300, 503);
  NswParams p;
  p.degree = 6;
  p.seed = 11;
  const KnnGraph a = NswBuild(data.vectors, p);
  const KnnGraph b = NswBuild(data.vectors, p);
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.SortedNeighbors(i), b.SortedNeighbors(i));
  }
}

TEST(NswTest, StatsCountDistanceEvals) {
  const SyntheticData data = SmallData(200, 504);
  NswParams p;
  p.degree = 6;
  NswStats stats;
  NswBuild(data.vectors, p, &stats);
  EXPECT_GT(stats.distance_evals, 200u);
}

}  // namespace
}  // namespace gkm
