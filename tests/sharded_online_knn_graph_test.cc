// Copyright 2026 The gkmeans Authors.
// Tests for the sharded online graph: global-id arithmetic, deterministic
// content-hash partitioning, S=1 delegation equivalence, multi-writer
// determinism across pool thread counts, cross-shard search merging, and
// removal/compaction through the global-id facade.

#include "stream/sharded_online_knn_graph.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dataset/synthetic.h"
#include "graph/brute_force.h"

namespace gkm {
namespace {

constexpr std::size_t kDim = 12;

SyntheticData Data(std::size_t n, std::uint64_t seed = 5) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = kDim;
  spec.modes = 8;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

OnlineGraphParams SmallParams(std::size_t shards) {
  OnlineGraphParams p;
  p.kappa = 8;
  p.beam_width = 24;
  p.num_seeds = 16;
  p.bootstrap = 64;
  p.seed = 11;
  p.shards = shards;
  return p;
}

void Ingest(ShardedOnlineKnnGraph& graph, const Matrix& rows,
            ThreadPool* pool, std::size_t window = 200) {
  for (std::size_t b = 0; b < rows.rows(); b += window) {
    graph.InsertBatch(SliceRows(rows, b, std::min(b + window, rows.rows())),
                      pool);
  }
}

TEST(ShardedOnlineKnnGraphTest, GlobalIdRoundTrips) {
  for (const std::size_t shards : {1u, 2u, 5u}) {
    for (const std::uint32_t g : {0u, 1u, 7u, 12345u}) {
      const GlobalId id = GlobalId::Split(g, shards);
      EXPECT_LT(id.shard, shards);
      EXPECT_EQ(GlobalId::Join(id.shard, id.slot, shards), g);
    }
  }
}

TEST(ShardedOnlineKnnGraphTest, ShardAssignmentIsDeterministicContentHash) {
  const SyntheticData data = Data(600);
  ShardedOnlineKnnGraph a(kDim, SmallParams(4));
  ShardedOnlineKnnGraph b(kDim, SmallParams(4));
  std::set<std::uint32_t> seen;
  for (std::size_t r = 0; r < data.vectors.rows(); ++r) {
    const std::uint32_t s = a.ShardOf(data.vectors.Row(r));
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, b.ShardOf(data.vectors.Row(r)));  // instance-independent
    seen.insert(s);
  }
  // A content hash over hundreds of rows must touch every shard.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardedOnlineKnnGraphTest, SingleShardMatchesUnshardedGraph) {
  // S=1 is a pure delegation: every edge and every search result must be
  // identical to a raw OnlineKnnGraph fed the same stream.
  const SyntheticData data = Data(500);
  OnlineKnnGraph raw(kDim, SmallParams(1));
  ShardedOnlineKnnGraph sharded(kDim, SmallParams(1));
  for (std::size_t b = 0; b < 500; b += 100) {
    raw.InsertBatch(SliceRows(data.vectors, b, b + 100), nullptr);
  }
  Ingest(sharded, data.vectors, nullptr, 100);

  ASSERT_EQ(sharded.size(), raw.size());
  EXPECT_EQ(sharded.num_alive(), raw.num_alive());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(sharded.shard(0).graph().SortedNeighbors(i),
              raw.graph().SortedNeighbors(i));
  }
  SearchScratch scratch;
  const SyntheticData queries = Data(16, 99);
  for (std::size_t q = 0; q < 16; ++q) {
    EXPECT_EQ(sharded.SearchKnn(queries.vectors.Row(q), 10, scratch),
              raw.SearchKnn(queries.vectors.Row(q), 10, scratch));
  }
}

TEST(ShardedOnlineKnnGraphTest, InsertBatchAssignsConsistentGlobalIds) {
  const SyntheticData data = Data(400);
  ShardedOnlineKnnGraph graph(kDim, SmallParams(3));
  std::vector<std::uint32_t> assigned;
  graph.InsertBatch(data.vectors, nullptr, nullptr, nullptr, &assigned);

  ASSERT_EQ(assigned.size(), 400u);
  std::set<std::uint32_t> unique(assigned.begin(), assigned.end());
  EXPECT_EQ(unique.size(), assigned.size());
  for (std::size_t r = 0; r < assigned.size(); ++r) {
    const std::uint32_t g = assigned[r];
    // The id's shard component matches the content hash, and the stored
    // vector is the row that was inserted.
    EXPECT_EQ(g % 3, graph.ShardOf(data.vectors.Row(r)));
    EXPECT_TRUE(graph.IsAlive(g));
    const float* stored = graph.Point(g);
    for (std::size_t j = 0; j < kDim; ++j) {
      EXPECT_EQ(stored[j], data.vectors.Row(r)[j]);
    }
  }
  EXPECT_EQ(graph.num_alive(), 400u);
  EXPECT_GE(graph.size(), 400u);
}

TEST(ShardedOnlineKnnGraphTest, MultiWriterIngestIsThreadCountInvariant) {
  // The determinism contract at S=4: pool size (and the concurrent shard
  // writers) must not change a single committed edge.
  const SyntheticData data = Data(1200);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ShardedOnlineKnnGraph serial(kDim, SmallParams(4));
  ShardedOnlineKnnGraph parallel(kDim, SmallParams(4));
  Ingest(serial, data.vectors, &pool1);
  Ingest(parallel, data.vectors, &pool4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < 4; ++s) {
    const OnlineKnnGraph& a = serial.shard(s);
    const OnlineKnnGraph& b = parallel.shard(s);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(a.points() == b.points());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.graph().SortedNeighbors(i), b.graph().SortedNeighbors(i));
    }
  }
}

TEST(ShardedOnlineKnnGraphTest, CrossShardSearchMergesExactlyBelowBootstrap) {
  // While every shard is below its brute-force bootstrap threshold the
  // per-shard searches are exact scans, so the merged cross-shard result
  // must equal global brute force — the merge itself is provably lossless.
  const SyntheticData data = Data(150);
  ShardedOnlineKnnGraph graph(kDim, SmallParams(3));
  std::vector<std::uint32_t> assigned;
  graph.InsertBatch(data.vectors, nullptr, nullptr, nullptr, &assigned);

  const SyntheticData queries = Data(20, 31);
  const std::vector<std::vector<Neighbor>> truth =
      BruteForceSearch(data.vectors, queries.vectors, 10);
  SearchScratch scratch;
  for (std::size_t q = 0; q < 20; ++q) {
    const std::vector<Neighbor> got =
        graph.SearchKnn(queries.vectors.Row(q), 10, scratch);
    ASSERT_EQ(got.size(), truth[q].size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Brute-force ids are input-row ids; map through the assignment.
      EXPECT_EQ(got[i].id, assigned[truth[q][i].id]);
      EXPECT_EQ(got[i].dist, truth[q][i].dist);
    }
  }
}

TEST(ShardedOnlineKnnGraphTest, BatchSearchMatchesPerQuerySearch) {
  const SyntheticData data = Data(900);
  ShardedOnlineKnnGraph graph(kDim, SmallParams(4));
  Ingest(graph, data.vectors, nullptr);
  const SyntheticData queries = Data(32, 77);
  SearchScratch scratch;
  const auto batched = graph.SearchKnnBatch(queries.vectors, 10, scratch);
  ASSERT_EQ(batched.size(), 32u);
  for (std::size_t q = 0; q < 32; ++q) {
    EXPECT_EQ(batched[q], graph.SearchKnn(queries.vectors.Row(q), 10, scratch));
  }
}

TEST(ShardedOnlineKnnGraphTest, RemovalAndSlotReuseWorkThroughGlobalIds) {
  const SyntheticData data = Data(800);
  ShardedOnlineKnnGraph graph(kDim, SmallParams(4));
  Ingest(graph, data.vectors, nullptr);
  const std::size_t arena_before = graph.size();

  // Remove ~30% of live points by global id.
  std::vector<std::uint32_t> removed;
  for (std::uint32_t g = 0; g < graph.size(); ++g) {
    if (g % 10 < 3 && graph.IsAlive(g)) {
      graph.Remove(g);
      removed.push_back(g);
    }
  }
  EXPECT_EQ(graph.num_alive(), 800 - removed.size());
  for (const std::uint32_t g : removed) EXPECT_FALSE(graph.IsAlive(g));

  // Tombstoned points must drop out of search results immediately.
  SearchScratch scratch;
  const SyntheticData queries = Data(16, 3);
  for (std::size_t q = 0; q < 16; ++q) {
    for (const Neighbor& nb :
         graph.SearchKnn(queries.vectors.Row(q), 10, scratch)) {
      EXPECT_TRUE(graph.IsAlive(nb.id));
    }
  }

  // Purge + backfill: freed slots are reused shard-locally. The backfill
  // hashes to shards independently of where the removals landed, so the
  // global bound may grow by the (small) cross-shard imbalance — but far
  // less than the no-reuse growth of removed.size() slots.
  graph.CompactTombstones();
  const SyntheticData refill = Data(removed.size(), 1234);
  Ingest(graph, refill.vectors, nullptr);
  EXPECT_EQ(graph.num_alive(), 800u);
  EXPECT_LT(graph.size(), arena_before + removed.size() / 2);
}

TEST(ShardedOnlineKnnGraphTest, TouchedAndRepairedIdsAreGlobalSortedUnique) {
  const SyntheticData data = Data(600);
  ShardedOnlineKnnGraph graph(kDim, SmallParams(3));
  Ingest(graph, SliceRows(data.vectors, 0, 500), nullptr);

  std::vector<std::uint32_t> touched;
  graph.InsertBatch(SliceRows(data.vectors, 500, 600), nullptr, &touched);
  EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
  EXPECT_EQ(std::adjacent_find(touched.begin(), touched.end()),
            touched.end());
  for (const std::uint32_t g : touched) EXPECT_LT(g, graph.size());

  std::vector<std::uint32_t> repaired;
  for (std::uint32_t g = 0; g < 40; ++g) {
    if (graph.IsAlive(g)) graph.Remove(g, &repaired);
  }
  EXPECT_TRUE(std::is_sorted(repaired.begin(), repaired.end()));
  EXPECT_EQ(std::adjacent_find(repaired.begin(), repaired.end()),
            repaired.end());
  for (const std::uint32_t g : repaired) EXPECT_LT(g, graph.size());
}

TEST(ShardedOnlineKnnGraphTest, ForeignShardSeedHintsAreDroppedSafely) {
  // Hints are global ids; rows only accept hints living in their own
  // shard. Passing every inserted id as a hint for every row must neither
  // crash nor perturb determinism.
  const SyntheticData data = Data(400);
  ShardedOnlineKnnGraph plain(kDim, SmallParams(2));
  ShardedOnlineKnnGraph hinted(kDim, SmallParams(2));
  std::vector<std::uint32_t> assigned;
  plain.InsertBatch(SliceRows(data.vectors, 0, 300), nullptr, nullptr,
                    nullptr, &assigned);
  hinted.InsertBatch(SliceRows(data.vectors, 0, 300), nullptr);

  const Matrix tail = SliceRows(data.vectors, 300, 400);
  const std::vector<std::vector<std::uint32_t>> hints(
      tail.rows(), std::vector<std::uint32_t>(assigned.begin(),
                                              assigned.begin() + 8));
  hinted.InsertBatch(tail, nullptr, nullptr, &hints);
  EXPECT_EQ(hinted.num_alive(), 400u);
}

}  // namespace
}  // namespace gkm
