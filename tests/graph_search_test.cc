// Copyright 2026 The gkmeans Authors.
// Tests for the greedy graph ANN search (§4.3 application).

#include "anns/graph_search.h"

#include <set>

#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "dataset/synthetic.h"
#include "graph/brute_force.h"

namespace gkm {
namespace {

// Overlapping clusters (center_spread comparable to cluster_spread) keep
// the KNN graph connected, as on real descriptor data; a pure KNN graph
// over widely-separated blobs is disconnected and no graph search can
// cross components. Queries are drawn from the same mixture by splitting
// one generated set.
SyntheticData SmallData(std::size_t n = 800, std::uint64_t seed = 130) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 12;
  spec.modes = 16;
  spec.center_spread = 1.8;
  spec.cluster_spread = 1.0;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

// Splits one same-distribution sample into base (first n) + queries (rest).
struct Split {
  Matrix base;
  Matrix queries;
};
Split MakeSplit(std::size_t n, std::size_t nq, std::uint64_t seed) {
  const SyntheticData all = SmallData(n + nq, seed);
  Split out;
  out.base.Reset(n, all.vectors.cols());
  out.queries.Reset(nq, all.vectors.cols());
  for (std::size_t i = 0; i < n; ++i) out.base.SetRow(i, all.vectors.Row(i));
  for (std::size_t q = 0; q < nq; ++q) {
    out.queries.SetRow(q, all.vectors.Row(n + q));
  }
  return out;
}

TEST(GraphSearchTest, ExactGraphHighRecall) {
  const Split split = MakeSplit(800, 50, 130);
  // Degree-16 graph: raw KNN graphs need moderate density for greedy
  // navigability (degree 10 strands ~15% of queries at local minima).
  const KnnGraph graph = BruteForceGraph(split.base, 16);
  const GraphSearcher searcher(split.base, graph);

  const auto truth = BruteForceSearch(split.base, split.queries, 1);
  SearchParams p;
  p.topk = 1;
  p.beam_width = 96;
  p.num_seeds = 24;
  std::size_t hits = 0;
  for (std::size_t q = 0; q < split.queries.rows(); ++q) {
    const auto got = searcher.Search(split.queries.Row(q), p);
    ASSERT_EQ(got.size(), 1u);
    hits += got[0].id == truth[q][0].id ? 1 : 0;
  }
  EXPECT_GE(hits, 45u);  // >= 0.9 recall on an exact graph
}

TEST(GraphSearchTest, Alg3GraphGoodRecall) {
  // The §4.3 claim: a graph from Alg. 3 supports ANN search well.
  const Split split = MakeSplit(1000, 50, 132);
  GraphBuildParams gp;
  gp.kappa = 12;
  gp.xi = 25;
  gp.tau = 8;
  const KnnGraph graph = BuildKnnGraph(split.base, gp);
  const GraphSearcher searcher(split.base, graph);

  const auto truth = BruteForceSearch(split.base, split.queries, 1);
  SearchParams p;
  p.topk = 1;
  p.beam_width = 48;
  p.num_seeds = 16;
  std::size_t hits = 0;
  for (std::size_t q = 0; q < split.queries.rows(); ++q) {
    const auto got = searcher.Search(split.queries.Row(q), p);
    hits += got[0].id == truth[q][0].id ? 1 : 0;
  }
  EXPECT_GE(hits, 40u);  // >= 0.8 on the approximate graph
}

TEST(GraphSearchTest, ResultsSortedAndDistancesCorrect) {
  // Single-mode data: the KNN graph is one connected component, so
  // searching for a base vector must retrieve that very vector.
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 12;
  spec.modes = 1;
  spec.seed = 134;
  const SyntheticData base = MakeGaussianMixture(spec);
  const KnnGraph graph = BruteForceGraph(base.vectors, 8);
  const GraphSearcher searcher(base.vectors, graph);
  SearchParams p;
  p.topk = 5;
  p.beam_width = 16;
  const auto got = searcher.Search(base.vectors.Row(7), p);
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].dist, got[i].dist);
  }
  // Searching for a base vector itself must find it at distance 0.
  EXPECT_EQ(got[0].id, 7u);
  EXPECT_EQ(got[0].dist, 0.0f);
}

TEST(GraphSearchTest, WiderBeamNotWorse) {
  const Split split = MakeSplit(600, 40, 135);
  GraphBuildParams gp;
  gp.kappa = 8;
  gp.xi = 20;
  gp.tau = 4;
  const KnnGraph graph = BuildKnnGraph(split.base, gp);
  const GraphSearcher searcher(split.base, graph);
  const auto truth = BruteForceSearch(split.base, split.queries, 1);

  auto recall_at_beam = [&](std::size_t beam) {
    SearchParams p;
    p.topk = 1;
    p.beam_width = beam;
    std::size_t hits = 0;
    for (std::size_t q = 0; q < split.queries.rows(); ++q) {
      hits += searcher.Search(split.queries.Row(q), p)[0].id ==
                      truth[q][0].id
                  ? 1
                  : 0;
    }
    return hits;
  };
  EXPECT_GE(recall_at_beam(64) + 2, recall_at_beam(4));
}

TEST(GraphSearchTest, StatsAreTracked) {
  const SyntheticData base = SmallData(200, 137);
  const KnnGraph graph = BruteForceGraph(base.vectors, 6);
  const GraphSearcher searcher(base.vectors, graph);
  SearchParams p;
  p.topk = 3;
  p.beam_width = 8;
  SearchStats stats;
  searcher.Search(base.vectors.Row(0), p, &stats);
  EXPECT_GT(stats.distance_evals, 0u);
  EXPECT_GT(stats.hops, 0u);
}

TEST(GraphSearchTest, SelectEntryPointsAreValidAndSpread) {
  const SyntheticData base = SmallData(500, 140);
  const auto entries = SelectEntryPoints(base.vectors, 32);
  EXPECT_EQ(entries.size(), 32u);
  std::set<std::uint32_t> unique(entries.begin(), entries.end());
  EXPECT_EQ(unique.size(), 32u);  // 2M-tree medoids are distinct
  for (const auto e : entries) EXPECT_LT(e, 500u);
}

TEST(GraphSearchTest, SelectEntryPointsCountClamped) {
  const SyntheticData base = SmallData(20, 141);
  EXPECT_EQ(SelectEntryPoints(base.vectors, 100).size(), 20u);
}

TEST(GraphSearchTest, EntryPointsImproveRecallOnMultiModalData) {
  // Many modes + random seeding: routing failures dominate; medoid entry
  // points recover them.
  SyntheticSpec spec;
  spec.n = 1550;
  spec.dim = 12;
  spec.modes = 60;
  spec.seed = 142;
  const SyntheticData all = MakeGaussianMixture(spec);
  const Matrix base = SliceRows(all.vectors, 0, 1500);
  const Matrix queries = SliceRows(all.vectors, 1500, 1550);
  const KnnGraph graph = BruteForceGraph(base, 10);
  const auto truth = BruteForceSearch(base, queries, 1);

  SearchParams p;
  p.topk = 1;
  p.beam_width = 24;
  p.num_seeds = 8;
  auto recall = [&](bool with_entries) {
    GraphSearcher searcher(base, graph);
    if (with_entries) searcher.SetEntryPoints(SelectEntryPoints(base, 128));
    std::size_t hits = 0;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      hits += searcher.Search(queries.Row(q), p)[0].id == truth[q][0].id;
    }
    return hits;
  };
  const std::size_t without = recall(false);
  const std::size_t with = recall(true);
  EXPECT_GE(with + 2, without);  // never meaningfully worse
  EXPECT_GE(with, 45u);          // and reliably high
}

TEST(GraphSearchTest, SearchAllShapes) {
  const SyntheticData base = SmallData(150, 138);
  const SyntheticData queries = SmallData(9, 139);
  const KnnGraph graph = BruteForceGraph(base.vectors, 5);
  const GraphSearcher searcher(base.vectors, graph);
  SearchParams p;
  p.topk = 4;
  const auto all = searcher.SearchAll(queries.vectors, p);
  ASSERT_EQ(all.size(), 9u);
  for (const auto& r : all) EXPECT_EQ(r.size(), 4u);
}

}  // namespace
}  // namespace gkm
