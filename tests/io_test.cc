// Copyright 2026 The gkmeans Authors.
// Round-trip tests for the *vecs readers/writers.

#include "dataset/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"

namespace gkm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, FvecsRoundTrip) {
  const SyntheticData data = MakeGaussianMixture({.n = 37, .dim = 9, .modes = 3});
  const std::string path = TempPath("roundtrip.fvecs");
  WriteFvecs(path, data.vectors);
  const Matrix back = ReadFvecs(path);
  EXPECT_TRUE(back == data.vectors);
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMaxRowsTruncates) {
  const SyntheticData data = MakeGaussianMixture({.n = 20, .dim = 4, .modes = 2});
  const std::string path = TempPath("trunc.fvecs");
  WriteFvecs(path, data.vectors);
  const Matrix back = ReadFvecs(path, 5);
  EXPECT_EQ(back.rows(), 5u);
  EXPECT_EQ(back.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(back.At(2, j), data.vectors.At(2, j));
  }
  std::remove(path.c_str());
}

TEST(IoTest, BvecsRoundTripOnByteData) {
  // SIFT-like data is already on the integer grid [0,255].
  const SyntheticData data = MakeSiftLike(25, 16, 3);
  const std::string path = TempPath("roundtrip.bvecs");
  WriteBvecs(path, data.vectors);
  const Matrix back = ReadBvecs(path);
  EXPECT_TRUE(back == data.vectors);
  std::remove(path.c_str());
}

TEST(IoTest, BvecsClampsOutOfRange) {
  Matrix m(1, 3);
  m.At(0, 0) = -5.0f;
  m.At(0, 1) = 300.0f;
  m.At(0, 2) = 42.4f;
  const std::string path = TempPath("clamp.bvecs");
  WriteBvecs(path, m);
  const Matrix back = ReadBvecs(path);
  EXPECT_EQ(back.At(0, 0), 0.0f);
  EXPECT_EQ(back.At(0, 1), 255.0f);
  EXPECT_EQ(back.At(0, 2), 42.0f);
  std::remove(path.c_str());
}

TEST(IoTest, IvecsRoundTrip) {
  const std::vector<std::vector<std::int32_t>> rows = {
      {1, 2, 3}, {4, 5, 6}, {-1, 0, 7}};
  const std::string path = TempPath("roundtrip.ivecs");
  WriteIvecs(path, rows);
  const auto back = ReadIvecs(path);
  EXPECT_EQ(back, rows);
  std::remove(path.c_str());
}

TEST(IoTest, EmptyFvecsFileYieldsEmptyMatrix) {
  const std::string path = TempPath("empty.fvecs");
  WriteFvecs(path, Matrix());
  const Matrix back = ReadFvecs(path);
  EXPECT_EQ(back.rows(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gkm
