// Copyright 2026 The gkmeans Authors.
// Tests for the BKM composite-vector bookkeeping: the Eqn. 2/3/4
// identities, incremental-vs-rebuild agreement, and gain correctness
// verified against explicit objective recomputation.

#include "kmeans/cluster_state.h"

#include <gtest/gtest.h>

#include "common/distance.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/init.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 200, std::size_t dim = 8) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = 5;
  spec.seed = 4;
  return MakeGaussianMixture(spec);
}

TEST(ClusterStateTest, CountsMatchLabels) {
  const SyntheticData data = SmallData();
  Rng rng(1);
  const auto labels = BalancedRandomLabels(200, 10, rng);
  ClusterState state(data.vectors, labels, 10);
  EXPECT_EQ(state.k(), 10u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(state.CountOf(r), 20u);  // balanced
    total += state.CountOf(r);
  }
  EXPECT_EQ(total, 200u);
}

// The central identity: E (Eqn. 4 via centroids) == (sum||x||^2 - I)/n.
TEST(ClusterStateTest, DistortionIdentityHolds) {
  const SyntheticData data = SmallData(300, 12);
  Rng rng(2);
  const auto labels = BalancedRandomLabels(300, 7, rng);
  ClusterState state(data.vectors, labels, 7);
  const double direct = AverageDistortion(data.vectors, labels, 7);
  EXPECT_NEAR(state.Distortion(), direct, 1e-6 * std::max(1.0, direct));
}

TEST(ClusterStateTest, CentroidsAreClusterMeans) {
  const SyntheticData data = SmallData(50, 4);
  std::vector<std::uint32_t> labels(50);
  for (std::size_t i = 0; i < 50; ++i) labels[i] = i < 30 ? 0 : 1;
  ClusterState state(data.vectors, labels, 2);
  const Matrix c = state.Centroids();
  for (std::size_t j = 0; j < 4; ++j) {
    double mean0 = 0.0;
    for (std::size_t i = 0; i < 30; ++i) mean0 += data.vectors.At(i, j);
    mean0 /= 30.0;
    EXPECT_NEAR(c.At(0, j), mean0, 1e-4);
  }
}

TEST(ClusterStateTest, MoveKeepsStateConsistentWithRebuild) {
  const SyntheticData data = SmallData(120, 6);
  Rng rng(3);
  auto labels = BalancedRandomLabels(120, 6, rng);
  ClusterState state(data.vectors, labels, 6);

  // Apply 200 random (legal) moves incrementally.
  for (int m = 0; m < 200; ++m) {
    const std::size_t i = rng.Index(120);
    const std::uint32_t u = labels[i];
    if (state.CountOf(u) < 2) continue;
    const auto v = static_cast<std::uint32_t>(rng.Index(6));
    if (v == u) continue;
    state.Move(data.vectors.Row(i), u, v);
    labels[i] = v;
  }
  ClusterState fresh(data.vectors, labels, 6);
  EXPECT_NEAR(state.ObjectiveI(), fresh.ObjectiveI(),
              1e-6 * std::max(1.0, fresh.ObjectiveI()));
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(state.CountOf(r), fresh.CountOf(r));
    EXPECT_NEAR(state.CompositeNormSqr(r), fresh.CompositeNormSqr(r),
                1e-5 * std::max(1.0, fresh.CompositeNormSqr(r)));
  }
}

// Delta-I computed via GainArrive+GainLeave must equal the objective
// difference measured by recomputation from scratch.
TEST(ClusterStateTest, GainMatchesObjectiveDifference) {
  const SyntheticData data = SmallData(90, 5);
  Rng rng(5);
  auto labels = BalancedRandomLabels(90, 5, rng);
  for (int trial = 0; trial < 50; ++trial) {
    ClusterState state(data.vectors, labels, 5);
    const std::size_t i = rng.Index(90);
    const std::uint32_t u = labels[i];
    if (state.CountOf(u) < 2) continue;
    auto v = static_cast<std::uint32_t>(rng.Index(5));
    if (v == u) continue;

    const float* x = data.vectors.Row(i);
    const float xn = NormSqr(x, 5);
    const double predicted =
        state.GainArrive(x, xn, v) + state.GainLeave(x, xn, u);

    const double before = state.ObjectiveI();
    labels[i] = v;
    ClusterState after(data.vectors, labels, 5);
    const double actual = after.ObjectiveI() - before;
    EXPECT_NEAR(predicted, actual, 1e-5 * std::max(1.0, std::abs(actual)))
        << "trial " << trial;
    labels[i] = u;  // restore
  }
}

TEST(ClusterStateTest, GainArriveOnEmptyClusterIsPointNorm) {
  const SyntheticData data = SmallData(30, 4);
  std::vector<std::uint32_t> labels(30, 0);  // cluster 1 empty
  ClusterState state(data.vectors, labels, 2);
  const float* x = data.vectors.Row(0);
  const float xn = NormSqr(x, 4);
  EXPECT_NEAR(state.GainArrive(x, xn, 1), xn, 1e-5 * std::max(1.0f, xn));
}

TEST(ClusterStateTest, SingletonClusterDistortionZeroContribution) {
  Matrix m(3, 2);
  m.At(0, 0) = 1.0f;
  m.At(1, 0) = 5.0f;
  m.At(2, 0) = 9.0f;
  const std::vector<std::uint32_t> labels = {0, 1, 2};
  ClusterState state(m, labels, 3);
  EXPECT_NEAR(state.Distortion(), 0.0, 1e-9);
}

TEST(ClusterStateTest, AddPointGrowthMatchesBatchConstruction) {
  // Growing an empty state one sample at a time must land on the same
  // statistics as constructing from the full label vector.
  const SyntheticData data = SmallData(120, 6);
  Rng rng(9);
  const auto labels = BalancedRandomLabels(120, 8, rng);
  ClusterState batch(data.vectors, labels, 8);

  ClusterState grown(6, 8);
  for (std::size_t i = 0; i < 120; ++i) {
    grown.AddPoint(data.vectors.Row(i), labels[i]);
  }
  EXPECT_EQ(grown.n(), 120u);
  EXPECT_EQ(grown.counts(), batch.counts());
  EXPECT_NEAR(grown.Distortion(), batch.Distortion(),
              1e-9 * (1.0 + batch.Distortion()));
  EXPECT_NEAR(grown.ObjectiveI(), batch.ObjectiveI(),
              1e-9 * (1.0 + batch.ObjectiveI()));
}

TEST(ClusterStateTest, ClusterSseSumsToTotalSse) {
  const SyntheticData data = SmallData(150, 6);
  Rng rng(2);
  const auto labels = BalancedRandomLabels(150, 6, rng);
  ClusterState state(data.vectors, labels, 6);
  double total = 0.0;
  for (std::size_t r = 0; r < 6; ++r) total += state.ClusterSse(r);
  EXPECT_NEAR(total / 150.0, state.Distortion(),
              1e-9 * (1.0 + state.Distortion()));
}

TEST(ClusterStateTest, MergeClustersPreservesInvariants) {
  const SyntheticData data = SmallData(100, 5);
  Rng rng(3);
  auto labels = BalancedRandomLabels(100, 4, rng);
  ClusterState state(data.vectors, labels, 4);
  const double sum_norms = state.SumPointNormSqr();

  state.MergeClusters(0, 3);
  for (auto& l : labels) {
    if (l == 3) l = 0;
  }
  ClusterState merged(data.vectors, labels, 4);
  EXPECT_EQ(state.CountOf(3), 0u);
  EXPECT_EQ(state.counts(), merged.counts());
  EXPECT_NEAR(state.Distortion(), merged.Distortion(),
              1e-9 * (1.0 + merged.Distortion()));
  EXPECT_DOUBLE_EQ(state.SumPointNormSqr(), sum_norms);
}

TEST(ClusterStateTest, RemovePointUndoesAddPoint) {
  // The streaming deletion path: retiring a subset must land on the same
  // statistics as never having admitted it (up to double rounding of the
  // +=/-= pair).
  const SyntheticData data = SmallData(120, 6);
  Rng rng(11);
  const auto labels = BalancedRandomLabels(120, 8, rng);

  ClusterState survivors(6, 8);
  ClusterState churned(6, 8);
  for (std::size_t i = 0; i < 120; ++i) {
    churned.AddPoint(data.vectors.Row(i), labels[i]);
    if (i % 3 != 0) survivors.AddPoint(data.vectors.Row(i), labels[i]);
  }
  for (std::size_t i = 0; i < 120; ++i) {
    if (i % 3 == 0) churned.RemovePoint(data.vectors.Row(i), labels[i]);
  }
  EXPECT_EQ(churned.n(), survivors.n());
  EXPECT_EQ(churned.counts(), survivors.counts());
  EXPECT_NEAR(churned.Distortion(), survivors.Distortion(),
              1e-9 * (1.0 + survivors.Distortion()));
  EXPECT_NEAR(churned.SumPointNormSqr(), survivors.SumPointNormSqr(),
              1e-9 * (1.0 + survivors.SumPointNormSqr()));
}

TEST(ClusterStateTest, RemovePointMayEmptyACluster) {
  // Unlike BKM moves, decay is allowed to empty a cluster; the emptied
  // cluster must contribute nothing and stay usable for re-seeding.
  const SyntheticData data = SmallData(20, 4);
  ClusterState state(4, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    state.AddPoint(data.vectors.Row(i), i < 5 ? 0 : 1);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    state.RemovePoint(data.vectors.Row(i), 0);
  }
  EXPECT_EQ(state.CountOf(0), 0u);
  EXPECT_EQ(state.n(), 15u);
  EXPECT_DOUBLE_EQ(state.ClusterSse(0), 0.0);
  // Re-seeding drops a member back in.
  state.AddPoint(data.vectors.Row(0), 0);
  EXPECT_EQ(state.CountOf(0), 1u);
}

TEST(ClusterStateTest, RestoreRawReproducesStateExactly) {
  const SyntheticData data = SmallData(80, 5);
  Rng rng(5);
  const auto labels = BalancedRandomLabels(80, 5, rng);
  ClusterState state(data.vectors, labels, 5);

  ClusterState back(5, 5);
  back.RestoreRaw(state.n(), state.composites(), state.counts(),
                  state.composite_norms(), state.point_norms(),
                  state.SumPointNormSqr());
  EXPECT_DOUBLE_EQ(back.Distortion(), state.Distortion());
  EXPECT_DOUBLE_EQ(back.ObjectiveI(), state.ObjectiveI());
  EXPECT_TRUE(back.Centroids() == state.Centroids());
}

}  // namespace
}  // namespace gkm
