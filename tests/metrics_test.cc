// Copyright 2026 The gkmeans Authors.
// Tests for the evaluation metrics (§5.1 protocol).

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "graph/brute_force.h"

namespace gkm {
namespace {

TEST(MetricsTest, AverageDistortionHandComputed) {
  Matrix m(4, 1);
  m.At(0, 0) = 0.0f;
  m.At(1, 0) = 2.0f;   // cluster 0: mean 1, dists 1,1
  m.At(2, 0) = 10.0f;
  m.At(3, 0) = 14.0f;  // cluster 1: mean 12, dists 4,4
  const std::vector<std::uint32_t> labels = {0, 0, 1, 1};
  EXPECT_NEAR(AverageDistortion(m, labels, 2), (1.0 + 1.0 + 4.0 + 4.0) / 4.0,
              1e-9);
}

TEST(MetricsTest, AverageDistortionIgnoresEmptyClusters) {
  Matrix m(2, 1);
  m.At(0, 0) = 1.0f;
  m.At(1, 0) = 3.0f;
  const std::vector<std::uint32_t> labels = {0, 0};
  EXPECT_NEAR(AverageDistortion(m, labels, 5), 1.0, 1e-9);  // clusters 1..4 empty
}

TEST(MetricsTest, InertiaUsesGivenCentroids) {
  Matrix m(2, 1);
  m.At(0, 0) = 0.0f;
  m.At(1, 0) = 4.0f;
  Matrix c(1, 1);
  c.At(0, 0) = 1.0f;
  const std::vector<std::uint32_t> labels = {0, 0};
  EXPECT_NEAR(Inertia(m, c, labels), (1.0 + 9.0) / 2.0, 1e-9);
}

TEST(MetricsTest, RecallAt1PerfectAndZero) {
  const SyntheticData data = MakeGaussianMixture({.n = 60, .dim = 6, .modes = 4});
  const KnnGraph truth = BruteForceGraph(data.vectors, 3);
  EXPECT_DOUBLE_EQ(GraphRecallAt1(truth, truth), 1.0);

  // A graph whose lists deliberately exclude each node's true top-1.
  KnnGraph bad(60, 2);
  for (std::size_t i = 0; i < 60; ++i) {
    const auto top = truth.SortedNeighbors(i);
    for (std::uint32_t j = 0; j < 60 && bad.NeighborsOf(i).size() < 2; ++j) {
      if (j != i && j != top[0].id) {
        bad.Update(i, j, 1000.0f + j);  // arbitrary distances
      }
    }
  }
  EXPECT_DOUBLE_EQ(GraphRecallAt1(bad, truth), 0.0);
}

TEST(MetricsTest, RecallAtKPartialCredit) {
  const SyntheticData data = MakeGaussianMixture({.n = 50, .dim = 6, .modes = 4});
  const KnnGraph truth = BruteForceGraph(data.vectors, 4);
  // Keep only the top-2 of each true list: recall@4 should be 0.5.
  KnnGraph half(50, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto top = truth.SortedNeighbors(i);
    half.SetList(i, {top[0], top[1]});
  }
  EXPECT_NEAR(GraphRecallAtK(half, truth, 4), 0.5, 1e-9);
}

TEST(MetricsTest, SampledRecallMatchesFullOnSameSubset) {
  const SyntheticData data = MakeGaussianMixture({.n = 80, .dim = 6, .modes = 5});
  const KnnGraph truth = BruteForceGraph(data.vectors, 2);
  const std::vector<std::uint32_t> subset = {3, 17, 42, 60};
  const auto nn = ExactNearestForSubset(data.vectors, subset);
  EXPECT_DOUBLE_EQ(SampledRecallAt1(truth, subset, nn), 1.0);
}

TEST(MetricsTest, CoOccurrenceAllSameClusterIsOne) {
  const SyntheticData data = MakeGaussianMixture({.n = 40, .dim = 4, .modes = 2});
  const KnnGraph truth = BruteForceGraph(data.vectors, 5);
  const std::vector<std::uint32_t> labels(40, 0);  // one big cluster
  const auto prob = CoOccurrenceByRank(truth, labels, 5);
  ASSERT_EQ(prob.size(), 5u);
  for (const double p : prob) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(MetricsTest, CoOccurrenceDecaysWithRank) {
  // On clusterable data with a sensible partition, nearer neighbors
  // co-occur more often — the Fig. 1 shape.
  SyntheticSpec spec;
  spec.n = 1500;
  spec.dim = 10;
  spec.modes = 30;
  spec.seed = 9;
  const SyntheticData data = MakeGaussianMixture(spec);
  const KnnGraph truth = BruteForceGraph(data.vectors, 50);
  const auto prob = CoOccurrenceByRank(truth, data.mode_of, 50);
  double head = 0.0, tail = 0.0;
  for (std::size_t r = 0; r < 10; ++r) head += prob[r];
  for (std::size_t r = 40; r < 50; ++r) tail += prob[r];
  EXPECT_GT(head, tail);
  EXPECT_GT(prob[0], 0.5);  // top-1 co-occurs with high probability
}

TEST(MetricsTest, ClusterSizeStats) {
  const std::vector<std::uint32_t> labels = {0, 0, 0, 1, 2, 2};
  const ClusterSizeStats stats = SummarizeClusterSizes(labels, 4);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 3u);
  EXPECT_EQ(stats.empty, 1u);
  EXPECT_NEAR(stats.mean, 6.0 / 4.0, 1e-9);
}

}  // namespace
}  // namespace gkm
