// Copyright 2026 The gkmeans Authors.
// Tests for the exact (ground-truth) KNN machinery.

#include "graph/brute_force.h"

#include <gtest/gtest.h>

#include "common/distance.h"
#include "dataset/synthetic.h"

namespace gkm {
namespace {

// On a tiny hand-made instance the exact graph is verifiable by eye.
TEST(BruteForceTest, LineOfPoints) {
  Matrix m(4, 1);
  m.At(0, 0) = 0.0f;
  m.At(1, 0) = 1.0f;
  m.At(2, 0) = 2.5f;
  m.At(3, 0) = 10.0f;
  const KnnGraph g = BruteForceGraph(m, 2, 1);
  EXPECT_EQ(g.SortedNeighbors(0)[0].id, 1u);
  EXPECT_EQ(g.SortedNeighbors(1)[0].id, 0u);
  EXPECT_EQ(g.SortedNeighbors(2)[0].id, 1u);
  EXPECT_EQ(g.SortedNeighbors(3)[0].id, 2u);
}

TEST(BruteForceTest, GraphHasNoSelfLoopsAndFullLists) {
  const SyntheticData data = MakeGaussianMixture({.n = 50, .dim = 4, .modes = 3});
  const KnnGraph g = BruteForceGraph(data.vectors, 6);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto nbs = g.SortedNeighbors(i);
    EXPECT_EQ(nbs.size(), 6u);
    for (const Neighbor& nb : nbs) EXPECT_NE(nb.id, i);
  }
}

TEST(BruteForceTest, ThreadCountDoesNotChangeResult) {
  const SyntheticData data = MakeGaussianMixture({.n = 80, .dim = 8, .modes = 5});
  const KnnGraph g1 = BruteForceGraph(data.vectors, 4, 1);
  const KnnGraph g4 = BruteForceGraph(data.vectors, 4, 4);
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(g1.SortedNeighbors(i), g4.SortedNeighbors(i));
  }
}

TEST(BruteForceTest, SearchReturnsSortedTrueNeighbors) {
  const SyntheticData base = MakeGaussianMixture({.n = 100, .dim = 8, .modes = 5});
  const SyntheticData queries =
      MakeGaussianMixture({.n = 10, .dim = 8, .modes = 5, .seed = 77});
  const auto results = BruteForceSearch(base.vectors, queries.vectors, 5);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t q = 0; q < 10; ++q) {
    ASSERT_EQ(results[q].size(), 5u);
    for (std::size_t r = 1; r < 5; ++r) {
      EXPECT_LE(results[q][r - 1].dist, results[q][r].dist);
    }
    // Verify the top-1 by direct scan.
    float best = 1e30f;
    std::uint32_t arg = 0;
    for (std::size_t j = 0; j < 100; ++j) {
      const float dist =
          L2Sqr(queries.vectors.Row(q), base.vectors.Row(j), 8);
      if (dist < best) {
        best = dist;
        arg = static_cast<std::uint32_t>(j);
      }
    }
    EXPECT_EQ(results[q][0].id, arg);
  }
}

TEST(BruteForceTest, ExactNearestForSubsetMatchesFullGraph) {
  const SyntheticData data = MakeGaussianMixture({.n = 70, .dim = 6, .modes = 4});
  const KnnGraph g = BruteForceGraph(data.vectors, 1);
  const std::vector<std::uint32_t> subset = {0, 13, 42, 69};
  const auto nn = ExactNearestForSubset(data.vectors, subset);
  ASSERT_EQ(nn.size(), subset.size());
  for (std::size_t s = 0; s < subset.size(); ++s) {
    EXPECT_EQ(nn[s], g.SortedNeighbors(subset[s])[0].id);
  }
}

}  // namespace
}  // namespace gkm
