// Copyright 2026 The gkmeans Authors.
// Tests for the deterministic RNG: reproducibility, range contracts and
// basic statistical sanity (not a PRNG test battery — just what the
// library's algorithms rely on).

#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gkm {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntBoundOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> hist(bound, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++hist[rng.UniformInt(bound)];
  for (const int h : hist) {
    EXPECT_NEAR(h, draws / static_cast<int>(bound), draws / 100);
  }
}

TEST(RngTest, UniformFloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.UniformFloat();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(RngTest, GaussianMomentsCloseToStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / draws;
  const double var = sum2 / draws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // Vanishingly unlikely to be identity.
  bool moved = false;
  for (int i = 0; i < 100; ++i) moved |= v[i] != i;
  EXPECT_TRUE(moved);
}

TEST(RngTest, SampleDistinctProducesDistinctInRange) {
  Rng rng(21);
  for (const auto& [n, count] : std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 10}, {100, 5}, {1000, 500}, {50, 1}}) {
    const auto sample = rng.SampleDistinct(n, count);
    EXPECT_EQ(sample.size(), count);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (const auto s : sample) EXPECT_LT(s, n);
  }
}

TEST(RngTest, SampleDistinctZeroCount) {
  Rng rng(2);
  EXPECT_TRUE(rng.SampleDistinct(5, 0).empty());
}

TEST(RngTest, SampleDistinctCoversUniformly) {
  // Each element of [0,20) should be picked roughly equally often.
  Rng rng(33);
  std::vector<int> hits(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto s : rng.SampleDistinct(20, 3)) ++hits[s];
  }
  for (const int h : hits) {
    EXPECT_NEAR(h, trials * 3 / 20, trials / 25);
  }
}

}  // namespace
}  // namespace gkm
