// Copyright 2026 The gkmeans Authors.
// Tests for the NN-Descent (KGraph) baseline: structural invariants,
// recall against the exact graph, convergence behaviour.

#include "graph/nn_descent.h"

#include <set>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "graph/brute_force.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 600, std::uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 16;
  spec.modes = 12;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

TEST(NnDescentTest, StructuralInvariants) {
  const SyntheticData data = SmallData();
  NnDescentParams p;
  p.k = 8;
  const KnnGraph g = NnDescent(data.vectors, p);
  EXPECT_EQ(g.num_nodes(), data.vectors.rows());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto nbs = g.SortedNeighbors(i);
    EXPECT_EQ(nbs.size(), 8u);
    std::set<std::uint32_t> ids;
    for (const Neighbor& nb : nbs) {
      EXPECT_NE(nb.id, i);
      ids.insert(nb.id);
    }
    EXPECT_EQ(ids.size(), 8u);
  }
}

TEST(NnDescentTest, BeatsRandomGraphByFar) {
  const SyntheticData data = SmallData();
  const KnnGraph truth = BruteForceGraph(data.vectors, 10);

  NnDescentParams p;
  p.k = 10;
  const KnnGraph nnd = NnDescent(data.vectors, p);

  KnnGraph random(data.vectors.rows(), 10);
  Rng rng(5);
  random.InitRandom(data.vectors, rng);

  const double nnd_recall = GraphRecallAt1(nnd, truth);
  const double random_recall = GraphRecallAt1(random, truth);
  EXPECT_GT(nnd_recall, 0.90);
  EXPECT_LT(random_recall, 0.30);
}

TEST(NnDescentTest, RecallAtKHigh) {
  const SyntheticData data = SmallData(500, 23);
  const KnnGraph truth = BruteForceGraph(data.vectors, 10);
  NnDescentParams p;
  p.k = 10;
  const KnnGraph nnd = NnDescent(data.vectors, p);
  EXPECT_GT(GraphRecallAtK(nnd, truth, 10), 0.80);
}

TEST(NnDescentTest, UpdatesDecayAcrossRounds) {
  const SyntheticData data = SmallData();
  NnDescentParams p;
  p.k = 10;
  NnDescentStats stats;
  NnDescent(data.vectors, p, &stats);
  ASSERT_GE(stats.updates_per_round.size(), 2u);
  // Convergent behaviour: the last round applies far fewer updates than
  // the first.
  EXPECT_LT(stats.updates_per_round.back(),
            stats.updates_per_round.front() / 4);
  EXPECT_GT(stats.distance_evals, 0u);
}

TEST(NnDescentTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(300, 9);
  NnDescentParams p;
  p.k = 6;
  p.seed = 123;
  const KnnGraph a = NnDescent(data.vectors, p);
  const KnnGraph b = NnDescent(data.vectors, p);
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.SortedNeighbors(i), b.SortedNeighbors(i));
  }
}

TEST(NnDescentTest, MaxItersZeroLeavesRandomGraph) {
  const SyntheticData data = SmallData(300, 9);
  NnDescentParams p;
  p.k = 6;
  p.max_iters = 0;
  const KnnGraph g = NnDescent(data.vectors, p);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.SortedNeighbors(i).size(), 6u);
  }
}

}  // namespace
}  // namespace gkm
