// Copyright 2026 The gkmeans Authors.
// Tests for the §2.1 related-work baselines: bisecting k-means, KD-tree
// accelerated k-means, and scalable k-means++ (k-means||) seeding.

#include <gtest/gtest.h>

#include "common/distance.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/bisecting.h"
#include "kmeans/boost_kmeans.h"
#include "kmeans/init.h"
#include "kmeans/kd_kmeans.h"
#include "kmeans/lloyd.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 500, std::size_t dim = 10,
                        std::uint64_t seed = 300) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.modes = 12;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

// --- Bisecting k-means. ---

TEST(BisectingTest, ProducesExactlyKNonEmptyClusters) {
  const SyntheticData data = SmallData();
  for (const std::size_t k : {2u, 5u, 17u, 40u}) {
    BisectingParams p;
    p.k = k;
    const ClusteringResult res = BisectingKMeans(data.vectors, p);
    EXPECT_EQ(SummarizeClusterSizes(res.assignments, k).empty, 0u) << k;
    EXPECT_EQ(res.centroids.rows(), k);
  }
}

TEST(BisectingTest, DistortionMatchesRecomputation) {
  const SyntheticData data = SmallData();
  BisectingParams p;
  p.k = 15;
  const ClusteringResult res = BisectingKMeans(data.vectors, p);
  EXPECT_NEAR(res.distortion,
              AverageDistortion(data.vectors, res.assignments, 15),
              1e-4 * std::max(1.0, res.distortion));
}

// The §2.1 criticism: hierarchical bisecting "breaks the Lloyd's
// condition" and lands at worse optima than flat optimization — on
// *overlapping* (descriptor-like) data. On well-separated blobs the split
// hierarchy can coincide with the true structure and the handicap
// disappears, so the test uses realistic overlap.
TEST(BisectingTest, WorseThanBkmButBetterThanRandom) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.dim = 10;
  spec.modes = 40;
  spec.center_spread = 2.0;
  spec.cluster_spread = 1.0;
  spec.seed = 301;
  const SyntheticData data = MakeGaussianMixture(spec);
  double bisect_total = 0.0, bkm_total = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    BisectingParams bp;
    bp.k = 20;
    bp.seed = s;
    bisect_total += BisectingKMeans(data.vectors, bp).distortion;
    BkmParams kp;
    kp.k = 20;
    kp.max_iters = 30;
    kp.seed = s;
    bkm_total += BoostKMeans(data.vectors, kp).distortion;
  }
  EXPECT_GT(bisect_total, bkm_total);  // breaks Lloyd's condition

  Rng rng(1);
  const auto random_labels = BalancedRandomLabels(800, 20, rng);
  EXPECT_LT(bisect_total / 3.0,
            AverageDistortion(data.vectors, random_labels, 20));
}

TEST(BisectingTest, KEqualsNAllSingletons) {
  const SyntheticData data = SmallData(30, 6, 302);
  BisectingParams p;
  p.k = 30;
  const ClusteringResult res = BisectingKMeans(data.vectors, p);
  const ClusterSizeStats sizes = SummarizeClusterSizes(res.assignments, 30);
  EXPECT_EQ(sizes.max, 1u);
  EXPECT_NEAR(res.distortion, 0.0, 1e-9);
}

TEST(BisectingTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(200, 8, 303);
  BisectingParams p;
  p.k = 9;
  p.seed = 5;
  EXPECT_EQ(BisectingKMeans(data.vectors, p).assignments,
            BisectingKMeans(data.vectors, p).assignments);
}

// --- KD-tree accelerated k-means. ---

TEST(KdKMeansTest, MatchesLloydExactly) {
  const SyntheticData data = SmallData(400, 8, 304);
  for (const std::uint64_t seed : {1ull, 2ull}) {
    LloydParams lp;
    lp.k = 10;
    lp.max_iters = 12;
    lp.seed = seed;
    KdKMeansParams kp;
    kp.k = 10;
    kp.max_iters = 12;
    kp.seed = seed;
    const ClusteringResult lloyd = LloydKMeans(data.vectors, lp);
    const ClusteringResult kd = KdKMeans(data.vectors, kp);
    if (SummarizeClusterSizes(lloyd.assignments, 10).min == 0) continue;
    EXPECT_EQ(kd.assignments, lloyd.assignments) << "seed " << seed;
  }
}

// §2.1: pruning works in low dimension, collapses at descriptor scale.
// Uses overlapping data — on widely-separated blobs the blob structure
// rescues the tree even in high dimension, which is not the regime the
// paper (or real descriptors) care about.
TEST(KdKMeansTest, PruningDependsOnDimension) {
  auto overlapping = [](std::size_t dim, std::uint64_t seed) {
    SyntheticSpec spec;
    spec.n = 2000;
    spec.dim = dim;
    spec.modes = 30;
    spec.center_spread = 1.2;
    spec.cluster_spread = 1.0;
    spec.seed = seed;
    return MakeGaussianMixture(spec);
  };
  KdKMeansParams p;
  p.k = 64;
  p.max_iters = 5;

  KdKMeansStats low_stats;
  const SyntheticData low = overlapping(4, 305);
  KdKMeans(low.vectors, p, &low_stats);

  KdKMeansStats high_stats;
  const SyntheticData high = overlapping(128, 306);
  KdKMeans(high.vectors, p, &high_stats);

  const double low_avg = low_stats.avg_centroids_compared.back();
  const double high_avg = high_stats.avg_centroids_compared.back();
  EXPECT_LT(low_avg, 24.0);    // far fewer than k=64 at d=4
  EXPECT_GT(high_avg, 32.0);   // most of k at d=128
  EXPECT_GT(high_avg, 2.0 * low_avg);
}

TEST(KdKMeansTest, StatsPerIteration) {
  const SyntheticData data = SmallData(300, 6, 307);
  KdKMeansParams p;
  p.k = 8;
  p.max_iters = 7;
  KdKMeansStats stats;
  const ClusteringResult res = KdKMeans(data.vectors, p, &stats);
  EXPECT_EQ(stats.avg_centroids_compared.size(), res.iterations);
  for (const double avg : stats.avg_centroids_compared) {
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, 8.0);
  }
}

// --- k-means|| seeding. ---

TEST(KMeansParallelTest, ProducesKCentroids) {
  const SyntheticData data = SmallData(600, 10, 308);
  Rng rng(2);
  const Matrix c = KMeansParallel(data.vectors, 25, 5, 2.0, rng);
  EXPECT_EQ(c.rows(), 25u);
  EXPECT_EQ(c.cols(), 10u);
}

TEST(KMeansParallelTest, SeedQualityComparableToKMeansPlusPlus) {
  // k-means|| was designed to match ++ quality with fewer passes; check
  // the seed quantization error is within a modest factor.
  const SyntheticData data = SmallData(800, 10, 309);
  double pp_cost = 0.0, par_cost = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    Rng rng_a(s), rng_b(s);
    const Matrix pp = KMeansPlusPlus(data.vectors, 16, rng_a);
    const Matrix par = KMeansParallel(data.vectors, 16, 5, 2.0, rng_b);
    for (std::size_t i = 0; i < data.vectors.rows(); ++i) {
      float d1 = 0.0f, d2 = 0.0f;
      NearestRow(pp, data.vectors.Row(i), &d1);
      NearestRow(par, data.vectors.Row(i), &d2);
      pp_cost += d1;
      par_cost += d2;
    }
  }
  EXPECT_LT(par_cost, 1.5 * pp_cost);
}

TEST(KMeansParallelTest, WorksWhenOversamplingUndershoots) {
  // Tiny rounds/oversample: phase 1 may produce < k candidates; the
  // uniform top-up must still deliver k centroids.
  const SyntheticData data = SmallData(100, 6, 310);
  Rng rng(3);
  const Matrix c = KMeansParallel(data.vectors, 40, 1, 0.1, rng);
  EXPECT_EQ(c.rows(), 40u);
}

TEST(KMeansParallelTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(200, 8, 311);
  Rng a(9), b(9);
  EXPECT_TRUE(KMeansParallel(data.vectors, 10, 4, 2.0, a) ==
              KMeansParallel(data.vectors, 10, 4, 2.0, b));
}

}  // namespace
}  // namespace gkm
