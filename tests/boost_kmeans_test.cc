// Copyright 2026 The gkmeans Authors.
// Tests for boost k-means: monotone objective, convergence, quality edge
// over Lloyd (the §3.1 claim), and non-empty-cluster invariant.

#include "kmeans/boost_kmeans.h"

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "kmeans/lloyd.h"

namespace gkm {
namespace {

SyntheticData SmallData(std::size_t n = 400, std::uint64_t seed = 40) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 10;
  spec.modes = 10;
  spec.seed = seed;
  return MakeGaussianMixture(spec);
}

TEST(BoostKMeansTest, BasicContract) {
  const SyntheticData data = SmallData();
  BkmParams p;
  p.k = 10;
  const ClusteringResult res = BoostKMeans(data.vectors, p);
  EXPECT_EQ(res.assignments.size(), 400u);
  EXPECT_EQ(res.centroids.rows(), 10u);
  EXPECT_EQ(res.method, "bkm");
  for (const auto a : res.assignments) EXPECT_LT(a, 10u);
}

// BKM only applies moves with Delta-I > 0, so distortion must be strictly
// non-increasing across epochs (up to fp noise).
TEST(BoostKMeansTest, DistortionMonotoneNonIncreasing) {
  const SyntheticData data = SmallData();
  BkmParams p;
  p.k = 12;
  p.max_iters = 20;
  const ClusteringResult res = BoostKMeans(data.vectors, p);
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_LE(res.trace[i].distortion,
              res.trace[i - 1].distortion + 1e-9)
        << "epoch " << i;
  }
}

TEST(BoostKMeansTest, ConvergesToZeroMoves) {
  const SyntheticData data = SmallData(200, 41);
  BkmParams p;
  p.k = 5;
  p.max_iters = 100;
  const ClusteringResult res = BoostKMeans(data.vectors, p);
  EXPECT_EQ(res.trace.back().moves, 0u);
  EXPECT_LT(res.iterations, 100u);  // converged before the cap
}

TEST(BoostKMeansTest, NeverEmptiesClusters) {
  const SyntheticData data = SmallData(120, 42);
  BkmParams p;
  p.k = 40;
  p.max_iters = 30;
  const ClusteringResult res = BoostKMeans(data.vectors, p);
  const ClusterSizeStats sizes = SummarizeClusterSizes(res.assignments, 40);
  EXPECT_EQ(sizes.empty, 0u);
  EXPECT_GE(sizes.min, 1u);
}

// The paper adopts BKM because it reaches lower distortion than Lloyd
// (§3.1). Compare over a few seeds to avoid flakiness.
TEST(BoostKMeansTest, BeatsLloydOnAverage) {
  const SyntheticData data = SmallData(600, 43);
  double bkm_total = 0.0, lloyd_total = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    BkmParams bp;
    bp.k = 15;
    bp.max_iters = 30;
    bp.seed = s;
    bkm_total += BoostKMeans(data.vectors, bp).distortion;
    LloydParams lp;
    lp.k = 15;
    lp.max_iters = 30;
    lp.seed = s;
    lloyd_total += LloydKMeans(data.vectors, lp).distortion;
  }
  EXPECT_LT(bkm_total, lloyd_total * 1.02);
}

TEST(BoostKMeansTest, HonorsInitLabels) {
  const SyntheticData data = SmallData(90, 44);
  BkmParams p;
  p.k = 3;
  p.max_iters = 0;  // no optimization: labels pass through
  p.init_labels.assign(90, 0);
  for (std::size_t i = 30; i < 60; ++i) p.init_labels[i] = 1;
  for (std::size_t i = 60; i < 90; ++i) p.init_labels[i] = 2;
  const ClusteringResult res = BoostKMeans(data.vectors, p);
  EXPECT_EQ(res.assignments, p.init_labels);
}

TEST(BoostKMeansTest, DeterministicForSeed) {
  const SyntheticData data = SmallData(150, 45);
  BkmParams p;
  p.k = 6;
  p.seed = 7;
  const ClusteringResult a = BoostKMeans(data.vectors, p);
  const ClusteringResult b = BoostKMeans(data.vectors, p);
  EXPECT_EQ(a.assignments, b.assignments);
}

}  // namespace
}  // namespace gkm
